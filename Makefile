GO ?= go

# Tool versions are pinned here (not in ci.yml) so local runs and CI
# install the same thing.
STATICCHECK_VERSION ?= 2023.1.7

.PHONY: check vet vet-reed vet-reed-test fuzz-smoke tools staticcheck build test race chaos crash-recovery fmt-check vuln cover bench-smoke bench-mux bench-json bench-ratchet admin-smoke clean

# check is the CI gate: vet, project-specific static analysis, build
# everything, race-enabled tests.
check: vet vet-reed build race

vet:
	$(GO) vet ./...

# vet-reed runs the project's own static-analysis suite (tools/reed-vet):
# key-material hygiene, context-first APIs, lock-scope discipline, metric
# naming, retry-path error classification, buffer-pool lifecycle,
# durability-before-ack ordering, idempotency-table agreement, and
# secret zeroization. See DESIGN.md "Static analysis". Exits non-zero
# on any diagnostic. The suite then self-hosts: the analyzers run over
# their own module too, so the tool is held to the invariants it
# enforces. Set VET_SARIF=<repo-relative path> to also write a SARIF
# 2.1.0 log for the main-module run (CI uploads it as an artifact).
VET_SARIF ?=
vet-reed:
	cd tools/reed-vet && $(GO) run . -dir ../.. $(if $(VET_SARIF),-sarif ../../$(VET_SARIF)) ./...
	cd tools/reed-vet && $(GO) run . -dir . ./...

# vet-reed-test runs the analyzer suite's own tests: golden-file fixture
# expectations plus the meta-test asserting the repo is diagnostic-free.
vet-reed-test:
	cd tools/reed-vet && $(GO) test ./...

# fuzz-smoke discovers every native fuzz target in the module
# (go test -list '^Fuzz') and runs each for a short burst — a cheap CI
# regression net on the codepaths that face attacker-controlled bytes,
# with no hand-maintained target list to fall out of date. FUZZTIME=10m
# turns the smoke into the nightly soak (see
# .github/workflows/nightly.yml).
FUZZTIME ?= 30s
fuzz-smoke:
	@FUZZTIME=$(FUZZTIME) sh scripts/fuzz_smoke.sh

# tools installs the pinned lint/scan tools (CI calls this; local runs
# may prefer their own versions and skip it).
tools:
	$(GO) install honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION)
	$(GO) install golang.org/x/vuln/cmd/govulncheck@latest

# staticcheck runs honnef.co/go/tools if installed; CI installs the
# pinned version, and locally it degrades to a note instead of failing
# the build.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION))"; \
	fi

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# chaos runs the fault-injection suite twice under the race detector:
# scripted connection cuts (internal/netem) fire at deterministic byte
# offsets while uploads/downloads run, exercising reconnect and retry.
# -count=2 proves the seeded faults are reproducible, not flaky; the
# nightly workflow raises CHAOS_COUNT to 4.
CHAOS_COUNT ?= 2
chaos:
	$(GO) test -race -run 'Chaos|Fault' -count=$(CHAOS_COUNT) ./...

# crash-recovery boots a real deployment on disk backends, uploads a
# corpus with duplicate content, SIGKILLs the storage servers (once at
# rest, once mid-upload), restarts them on the same directories, and
# asserts the dedup accounting and every acknowledged file survived.
crash-recovery:
	@sh scripts/crash_recovery.sh

# fmt-check fails if any file needs gofmt.
fmt-check:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# vuln runs govulncheck if installed; locally it degrades to a note.
vuln:
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "govulncheck not installed; skipping (go install golang.org/x/vuln/cmd/govulncheck@latest)"; \
	fi

# cover writes an aggregate coverage profile to cover.out.
cover:
	$(GO) test -coverprofile=cover.out ./...
	$(GO) tool cover -func=cover.out | tail -1

# bench-smoke runs one iteration of the Figure 7 upload/download
# benchmark as a cheap end-to-end exercise of the full data path.
bench-smoke:
	$(GO) test -run NONE -bench=Fig7 -benchtime=1x .

# bench-mux measures request pipelining over one connection with an
# emulated 2 ms propagation delay: inflight=1 is the lockstep baseline,
# inflight>=8 should beat it by well over 2x.
bench-mux:
	$(GO) test -run NONE -bench=BenchmarkMuxedGets -benchtime=3x ./internal/server/

# bench-json runs the pipeline, mux, shard, OPRF-keygen, and
# warm-upload benchmarks
# and archives machine-readable results (cmd/reed-benchjson), for
# diffing runs across commits or machines. The committed BENCH_*.json
# files are the ratchet baselines — refresh them here intentionally,
# never by accident. Each suite runs -count=3 and keeps the best value
# per metric (-bestof), so a baseline is never inflated by one noisy
# repeat.
bench-json:
	$(GO) test -run NONE -bench=BenchmarkStreamingUpload -benchtime=1x -count=3 . \
		| $(GO) run ./cmd/reed-benchjson -bestof -o BENCH_pipeline.json
	$(GO) test -run NONE -bench=BenchmarkMuxedGets -benchtime=3x -count=3 ./internal/server/ \
		| $(GO) run ./cmd/reed-benchjson -bestof -o BENCH_mux.json
	$(GO) test -run NONE -bench=BenchmarkShardedPut -benchtime=1x -count=3 . \
		| $(GO) run ./cmd/reed-benchjson -bestof -o BENCH_shard.json
	$(GO) test -run NONE -bench=BenchmarkKeygenPerChunk -benchtime=1000x -count=3 ./internal/oprf/ \
		| $(GO) run ./cmd/reed-benchjson -bestof -o BENCH_oprf.json
	$(GO) test -run NONE -bench=BenchmarkWarmUpload -benchtime=1x -count=3 . \
		| $(GO) run ./cmd/reed-benchjson -bestof -o BENCH_warm.json

# bench-ratchet re-runs the archived benchmarks and fails if any
# direction-classified metric regresses more than 15% against the
# committed BENCH_*.json baselines (override with TOLERANCE=0.30).
bench-ratchet:
	@sh scripts/bench_ratchet.sh

# admin-smoke boots a real reed-server with the admin endpoint enabled
# and checks /metrics (valid JSON), /metrics?format=text, and /healthz
# from the outside. CI runs this; it needs only curl and go.
admin-smoke:
	@sh scripts/admin_smoke.sh

clean:
	$(GO) clean ./...
	rm -f cover.out
