GO ?= go

.PHONY: check vet build test race bench-smoke clean

# check is the CI gate: vet, build everything, race-enabled tests.
check: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench-smoke runs one iteration of the Figure 7 upload/download
# benchmark as a cheap end-to-end exercise of the full data path.
bench-smoke:
	$(GO) test -run NONE -bench=Fig7 -benchtime=1x .

clean:
	$(GO) clean ./...
