GO ?= go

.PHONY: check vet staticcheck build test race bench-smoke bench-mux clean

# check is the CI gate: vet, build everything, race-enabled tests.
check: vet build race

vet:
	$(GO) vet ./...

# staticcheck runs honnef.co/go/tools if installed; CI installs it, and
# locally it degrades to a note instead of failing the build.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench-smoke runs one iteration of the Figure 7 upload/download
# benchmark as a cheap end-to-end exercise of the full data path.
bench-smoke:
	$(GO) test -run NONE -bench=Fig7 -benchtime=1x .

# bench-mux measures request pipelining over one connection with an
# emulated 2 ms propagation delay: inflight=1 is the lockstep baseline,
# inflight>=8 should beat it by well over 2x.
bench-mux:
	$(GO) test -run NONE -bench=BenchmarkMuxedGets -benchtime=3x ./internal/server/

clean:
	$(GO) clean ./...
