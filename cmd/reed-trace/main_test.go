package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestGenerateAndStat(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"generate", "-out", dir, "-days", "5", "-users", "2", "-user-mb", "1"}); err != nil {
		t.Fatalf("generate: %v", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var snaps int
	for _, e := range entries {
		if filepath.Ext(e.Name()) == ".snapshot" {
			snaps++
		}
	}
	if snaps != 10 {
		t.Fatalf("snapshot files = %d, want 10", snaps)
	}
	if err := run([]string{"stat", "-dir", dir}); err != nil {
		t.Fatalf("stat: %v", err)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	d1, d2 := t.TempDir(), t.TempDir()
	for _, dir := range []string{d1, d2} {
		if err := run([]string{"generate", "-out", dir, "-days", "2", "-users", "1", "-user-mb", "1", "-seed", "9"}); err != nil {
			t.Fatal(err)
		}
	}
	names, err := os.ReadDir(d1)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range names {
		b1, err := os.ReadFile(filepath.Join(d1, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		b2, err := os.ReadFile(filepath.Join(d2, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if string(b1) != string(b2) {
			t.Fatalf("%s differs across identical-seed runs", e.Name())
		}
	}
}

func TestCLIErrors(t *testing.T) {
	if err := run(nil); err == nil {
		t.Fatal("no args accepted")
	}
	if err := run([]string{"bogus"}); err == nil {
		t.Fatal("unknown subcommand accepted")
	}
	if err := run([]string{"generate"}); err == nil {
		t.Fatal("generate without -out accepted")
	}
	if err := run([]string{"stat", "-dir", t.TempDir()}); err == nil {
		t.Fatal("stat on empty dir accepted")
	}
}
