// Command reed-trace generates and inspects synthetic FSL-style backup
// traces: the workload substrate behind the paper's trace-driven
// experiments (Section VI-B).
//
// The real FSL Fslhomes dataset is an external download of daily
// chunk-fingerprint snapshots; this tool writes statistically similar
// snapshots to disk in REED's snapshot format, so trace-driven runs can
// be repeated, shared, and diffed.
//
// Usage:
//
//	reed-trace generate -out ./trace -days 30 -users 9 -user-mb 48
//	reed-trace stat -dir ./trace
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/fingerprint"
	"repro/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "reed-trace:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		return errors.New("usage: reed-trace <generate|stat> [flags]")
	}
	switch args[0] {
	case "generate":
		return cmdGenerate(args[1:])
	case "stat":
		return cmdStat(args[1:])
	default:
		return fmt.Errorf("unknown subcommand %q", args[0])
	}
}

func cmdGenerate(args []string) error {
	fs := flag.NewFlagSet("generate", flag.ContinueOnError)
	var (
		out    = fs.String("out", "", "output directory")
		days   = fs.Int("days", 30, "number of daily snapshots")
		users  = fs.Int("users", 9, "number of users")
		userMB = fs.Int("user-mb", 48, "logical MB per user per day")
		seed   = fs.Int64("seed", 1, "generator seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *out == "" {
		return errors.New("-out required")
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		return err
	}

	cfg := trace.DefaultConfig()
	cfg.Days = *days
	cfg.Users = *users
	cfg.BytesPerUserDay = uint64(*userMB) << 20
	cfg.Seed = *seed
	gen, err := trace.NewGenerator(cfg)
	if err != nil {
		return err
	}

	var totalChunks, totalBytes uint64
	for day := 0; day < *days; day++ {
		snaps, err := gen.Day(day)
		if err != nil {
			return err
		}
		for _, snap := range snaps {
			name := fmt.Sprintf("%s-day%03d.snapshot", snap.User, snap.Day)
			if err := os.WriteFile(filepath.Join(*out, name), snap.Marshal(), 0o644); err != nil {
				return err
			}
			totalChunks += uint64(len(snap.Chunks))
			totalBytes += snap.LogicalBytes()
		}
	}
	fmt.Printf("wrote %d snapshots (%d users x %d days): %d chunks, %.2f GB logical\n",
		*days**users, *users, *days, totalChunks, float64(totalBytes)/(1<<30))
	return nil
}

func cmdStat(args []string) error {
	fs := flag.NewFlagSet("stat", flag.ContinueOnError)
	dir := fs.String("dir", "", "trace directory")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dir == "" {
		return errors.New("-dir required")
	}
	entries, err := os.ReadDir(*dir)
	if err != nil {
		return err
	}
	var names []string
	for _, e := range entries {
		if filepath.Ext(e.Name()) == ".snapshot" {
			names = append(names, e.Name())
		}
	}
	if len(names) == 0 {
		return fmt.Errorf("no .snapshot files in %s", *dir)
	}
	sort.Strings(names)

	var (
		logical, physical uint64
		snapshots         int
		unique            = make(map[fingerprint.Fingerprint]bool)
		users             = make(map[string]bool)
		maxDay            int
	)
	for _, name := range names {
		blob, err := os.ReadFile(filepath.Join(*dir, name))
		if err != nil {
			return err
		}
		snap, err := trace.UnmarshalSnapshot(blob)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		snapshots++
		users[snap.User] = true
		if snap.Day > maxDay {
			maxDay = snap.Day
		}
		for _, c := range snap.Chunks {
			logical += uint64(c.Size)
			if !unique[c.FP] {
				unique[c.FP] = true
				physical += uint64(c.Size)
			}
		}
	}
	fmt.Printf("snapshots:      %d (%d users, %d days)\n", snapshots, len(users), maxDay+1)
	fmt.Printf("logical data:   %.3f GB\n", float64(logical)/(1<<30))
	fmt.Printf("unique data:    %.3f GB (%d chunks)\n", float64(physical)/(1<<30), len(unique))
	fmt.Printf("dedup saving:   %.2f%%\n", 100*(1-float64(physical)/float64(logical)))
	return nil
}
