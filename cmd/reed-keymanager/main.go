// Command reed-keymanager runs the REED key manager: the dedicated
// service that turns blinded chunk fingerprints into MLE keys via an
// oblivious PRF (blinded RSA signatures, as in DupLESS).
//
// The key manager never learns fingerprints or content. Per-client rate
// limiting defends against online brute-force probing from compromised
// clients.
//
// Usage:
//
//	reed-keymanager -listen :9002 -bits 1024 -rate 10000
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"

	reed "repro"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "reed-keymanager:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		listen    = flag.String("listen", ":9002", "address to listen on")
		bits      = flag.Int("bits", 1024, "RSA modulus size for the OPRF key")
		rate      = flag.Float64("rate", 0, "per-client key generations per second (0 = unlimited)")
		adminAddr = flag.String("admin", "", "admin HTTP address for /metrics, /healthz, /debug/pprof (e.g. 127.0.0.1:9091; empty = disabled)")
	)
	flag.Parse()

	reg := reed.NewMetricsRegistry()
	srv, err := reed.NewKeyManagerServer(*bits, *rate, reed.WithKeyManagerMetrics(reg))
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	log.Printf("key manager listening on %s (rsa=%d bits, rate=%v/s)", ln.Addr(), *bits, *rate)

	if *adminAddr != "" {
		adm, err := reed.StartAdmin(*adminAddr, reg.Snapshot, nil)
		if err != nil {
			return fmt.Errorf("admin endpoint: %w", err)
		}
		defer adm.Close()
		log.Printf("admin endpoint on http://%s/metrics (unauthenticated; keep it loopback or firewalled)", adm.Addr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	select {
	case s := <-sig:
		log.Printf("received %v, shutting down", s)
		srv.Shutdown()
		return nil
	case err := <-errc:
		return err
	}
}
