// Command reed-client is the user-facing CLI for a REED deployment:
// key provisioning, uploads, downloads, rekeying, and storage
// statistics.
//
// A deployment is provisioned once by an administrator:
//
//	reed-client init-authority -state /etc/reed
//	reed-client issue -state /etc/reed -user alice
//	reed-client issue -state /etc/reed -user bob
//	reed-client publish -state /etc/reed -users alice,bob
//
// which creates the authority, per-user credentials (private access key
// + key-regression owner), and the public-key bundle encryptors use.
// Users then operate against running reed-server / reed-keymanager
// processes. -servers takes a comma-separated shard list: with more
// than one address the client routes each chunk to its owning shard on
// a consistent-hash ring, so every client must be given the same list
// (order does not matter, membership does):
//
//	reed-client upload -state /etc/reed -user alice \
//	    -servers 10.0.0.1:9000,10.0.0.2:9000 -keystore 10.0.0.3:9001 \
//	    -km 10.0.0.4:9002 -policy "or(alice, bob)" \
//	    -file backup.tar -as /backups/day1.tar
//	reed-client download ... -path /backups/day1.tar -out restored.tar
//	reed-client verify ... -path /backups/day1.tar
//	reed-client rekey ... -path /backups/day1.tar -policy alice -active
//	reed-client rm ... -path /backups/day1.tar
//	reed-client ls ...
//	reed-client stats -servers 10.0.0.1:9000 -keystore 10.0.0.3:9001 -km 10.0.0.4:9002 -state /etc/reed -user alice
//
// Interrupting a running command (Ctrl-C) cancels the operation: an
// interrupted upload leaves no partial file visible remotely.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"strings"

	reed "repro"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := run(ctx, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "reed-client:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string) error {
	if len(args) == 0 {
		return errors.New("usage: reed-client <init-authority|issue|publish|upload|download|verify|rekey|rm|ls|stats> [flags]")
	}
	switch args[0] {
	case "init-authority":
		return cmdInitAuthority(args[1:])
	case "issue":
		return cmdIssue(args[1:])
	case "publish":
		return cmdPublish(args[1:])
	case "upload":
		return cmdUpload(ctx, args[1:])
	case "download":
		return cmdDownload(ctx, args[1:])
	case "rekey":
		return cmdRekey(ctx, args[1:])
	case "verify":
		return cmdVerify(ctx, args[1:])
	case "rm":
		return cmdDelete(ctx, args[1:])
	case "ls":
		return cmdList(ctx, args[1:])
	case "stats":
		return cmdStats(ctx, args[1:])
	default:
		return fmt.Errorf("unknown subcommand %q", args[0])
	}
}

// --- provisioning ---

func cmdInitAuthority(args []string) error {
	fs := flag.NewFlagSet("init-authority", flag.ContinueOnError)
	state := fs.String("state", "", "state directory")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *state == "" {
		return errors.New("-state required")
	}
	if err := os.MkdirAll(*state, 0o700); err != nil {
		return err
	}
	path := filepath.Join(*state, "authority.key")
	if _, err := os.Stat(path); err == nil {
		return fmt.Errorf("authority already exists at %s", path)
	}
	authority, err := reed.NewAuthority()
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, authority.Marshal(), 0o600); err != nil {
		return err
	}
	fmt.Println("authority created:", path)
	return nil
}

func cmdIssue(args []string) error {
	fs := flag.NewFlagSet("issue", flag.ContinueOnError)
	state := fs.String("state", "", "state directory")
	user := fs.String("user", "", "user identity")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *state == "" || *user == "" {
		return errors.New("-state and -user required")
	}
	authority, err := loadAuthority(*state)
	if err != nil {
		return err
	}

	access := authority.IssueKey(*user, []string{*user})
	if err := os.WriteFile(userPath(*state, *user, "access"), access.Marshal(), 0o600); err != nil {
		return err
	}
	owner, err := reed.NewOwner()
	if err != nil {
		return err
	}
	if err := os.WriteFile(userPath(*state, *user, "owner"), owner.Marshal(), 0o600); err != nil {
		return err
	}
	fmt.Printf("issued credentials for %s\n", *user)
	return nil
}

func cmdPublish(args []string) error {
	fs := flag.NewFlagSet("publish", flag.ContinueOnError)
	state := fs.String("state", "", "state directory")
	users := fs.String("users", "", "comma-separated user identities")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *state == "" || *users == "" {
		return errors.New("-state and -users required")
	}
	authority, err := loadAuthority(*state)
	if err != nil {
		return err
	}
	bundle := authority.PublicKeys(strings.Split(*users, ","))
	path := filepath.Join(*state, "pubkeys.bin")
	if err := os.WriteFile(path, bundle.Marshal(), 0o644); err != nil {
		return err
	}
	fmt.Println("public key bundle written:", path)
	return nil
}

// --- data path ---

// connFlags holds the flags shared by upload/download/rekey/stats.
type connFlags struct {
	state    *string
	user     *string
	servers  *string
	keystore *string
	km       *string
	scheme   *string
}

func addConnFlags(fs *flag.FlagSet) connFlags {
	return connFlags{
		state:    fs.String("state", "", "state directory"),
		user:     fs.String("user", "", "user identity"),
		servers:  fs.String("servers", "", "comma-separated storage shard addresses (same list on every client)"),
		keystore: fs.String("keystore", "", "key-store server address"),
		km:       fs.String("km", "", "key manager address"),
		scheme:   fs.String("scheme", "enhanced", "encryption scheme: basic or enhanced"),
	}
}

func (cf connFlags) connect() (*reed.Client, func() error, error) {
	if *cf.state == "" || *cf.user == "" || *cf.servers == "" || *cf.keystore == "" || *cf.km == "" {
		return nil, nil, errors.New("-state, -user, -servers, -keystore, and -km required")
	}
	var scheme reed.Scheme
	switch *cf.scheme {
	case "basic":
		scheme = reed.SchemeBasic
	case "enhanced":
		scheme = reed.SchemeEnhanced
	default:
		return nil, nil, fmt.Errorf("unknown scheme %q", *cf.scheme)
	}

	accessBytes, err := os.ReadFile(userPath(*cf.state, *cf.user, "access"))
	if err != nil {
		return nil, nil, fmt.Errorf("load access key: %w", err)
	}
	access, err := reed.UnmarshalAccessKey(accessBytes)
	if err != nil {
		return nil, nil, err
	}
	ownerBytes, err := os.ReadFile(userPath(*cf.state, *cf.user, "owner"))
	if err != nil {
		return nil, nil, fmt.Errorf("load owner: %w", err)
	}
	owner, err := reed.UnmarshalOwner(ownerBytes)
	if err != nil {
		return nil, nil, err
	}
	bundleBytes, err := os.ReadFile(filepath.Join(*cf.state, "pubkeys.bin"))
	if err != nil {
		return nil, nil, fmt.Errorf("load public key bundle (run publish first): %w", err)
	}
	bundle, err := reed.UnmarshalPublicKeyBundle(bundleBytes)
	if err != nil {
		return nil, nil, err
	}

	client, err := reed.NewClient(context.Background(), reed.ClientConfig{
		UserID:         *cf.user,
		Scheme:         scheme,
		DataServers:    strings.Split(*cf.servers, ","),
		KeyStoreServer: *cf.keystore,
		KeyManager:     *cf.km,
		PrivateKey:     access,
		Directory:      bundle,
		Owner:          owner,
		Metrics:        reed.NewMetricsRegistry(),
	})
	if err != nil {
		return nil, nil, err
	}
	// saveOwner persists the (possibly wound) owner chain on exit.
	saveOwner := func() error {
		defer client.Close()
		return os.WriteFile(userPath(*cf.state, *cf.user, "owner"), owner.Marshal(), 0o600)
	}
	return client, saveOwner, nil
}

func cmdUpload(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("upload", flag.ContinueOnError)
	cf := addConnFlags(fs)
	file := fs.String("file", "", "local file to upload")
	as := fs.String("as", "", "remote path")
	polText := fs.String("policy", "", "access policy, e.g. \"or(alice, bob)\"")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *file == "" || *as == "" || *polText == "" {
		return errors.New("-file, -as, and -policy required")
	}
	pol, err := reed.ParsePolicy(*polText)
	if err != nil {
		return err
	}
	client, finish, err := cf.connect()
	if err != nil {
		return err
	}
	defer finish()

	f, err := os.Open(*file)
	if err != nil {
		return err
	}
	defer f.Close()
	res, err := client.Upload(ctx, *as, f, pol)
	if err != nil {
		return err
	}
	fmt.Printf("uploaded %s as %s: %d bytes, %d chunks (%d duplicate), key version %d, %.2fs\n",
		*file, *as, res.LogicalBytes, res.Chunks, res.DuplicateChunks, res.KeyVersion,
		res.Elapsed.Seconds())
	printRetryStats(res.Retry)
	return nil
}

// printRetryStats surfaces fault recovery when any happened; a healthy
// run prints nothing.
func printRetryStats(r reed.RetryStats) {
	if r.Reconnects == 0 && r.RetriedCalls == 0 && r.RetriedBatches == 0 {
		return
	}
	fmt.Printf("recovered from network faults: %d reconnects, %d retried calls, %d re-sent batches\n",
		r.Reconnects, r.RetriedCalls, r.RetriedBatches)
}

func cmdDownload(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("download", flag.ContinueOnError)
	cf := addConnFlags(fs)
	path := fs.String("path", "", "remote path")
	out := fs.String("out", "", "local output file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *path == "" || *out == "" {
		return errors.New("-path and -out required")
	}
	client, finish, err := cf.connect()
	if err != nil {
		return err
	}
	defer finish()

	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	res, err := client.DownloadTo(ctx, *path, f)
	if err != nil {
		f.Close()
		os.Remove(*out)
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("downloaded %s to %s: %d bytes, %.2fs\n",
		*path, *out, res.LogicalBytes, res.Elapsed.Seconds())
	printRetryStats(res.Retry)
	return nil
}

func cmdRekey(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("rekey", flag.ContinueOnError)
	cf := addConnFlags(fs)
	path := fs.String("path", "", "remote path")
	polText := fs.String("policy", "", "new access policy")
	active := fs.Bool("active", false, "active revocation (re-encrypt stubs now)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *path == "" || *polText == "" {
		return errors.New("-path and -policy required")
	}
	pol, err := reed.ParsePolicy(*polText)
	if err != nil {
		return err
	}
	client, finish, err := cf.connect()
	if err != nil {
		return err
	}
	defer finish()

	res, err := client.Rekey(ctx, *path, pol, *active)
	if err != nil {
		return err
	}
	mode := "lazy"
	if *active {
		mode = "active"
	}
	fmt.Printf("rekeyed %s (%s): key version %d -> %d", *path, mode, res.OldVersion, res.NewVersion)
	if *active {
		fmt.Printf(", %d stub bytes re-encrypted", res.StubBytes)
	}
	fmt.Printf(", %.2fs\n", res.Elapsed.Seconds())
	return nil
}

// cmdDelete securely deletes a file: the key state and stub file are
// destroyed (cryptographic deletion), then unreferenced chunks are
// garbage-collected.
func cmdDelete(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("rm", flag.ContinueOnError)
	cf := addConnFlags(fs)
	path := fs.String("path", "", "remote path")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *path == "" {
		return errors.New("-path required")
	}
	client, finish, err := cf.connect()
	if err != nil {
		return err
	}
	defer finish()

	res, err := client.Delete(ctx, *path)
	if err != nil {
		return err
	}
	fmt.Printf("deleted %s: %d chunk references dropped, %d chunks reclaimed\n",
		*path, res.Chunks, res.FreedChunks)
	return nil
}

// cmdVerify downloads a file, checks every chunk's integrity (the
// all-or-nothing transforms detect any tamper), and discards the data.
func cmdVerify(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("verify", flag.ContinueOnError)
	cf := addConnFlags(fs)
	path := fs.String("path", "", "remote path")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *path == "" {
		return errors.New("-path required")
	}
	client, finish, err := cf.connect()
	if err != nil {
		return err
	}
	defer finish()

	res, err := client.DownloadTo(ctx, *path, io.Discard)
	if err != nil {
		return fmt.Errorf("verification failed: %w", err)
	}
	fmt.Printf("%s: %d bytes intact\n", *path, res.LogicalBytes)
	return nil
}

func cmdList(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("ls", flag.ContinueOnError)
	cf := addConnFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	client, finish, err := cf.connect()
	if err != nil {
		return err
	}
	defer finish()

	names, err := client.List(ctx)
	if err != nil {
		return err
	}
	for _, n := range names {
		fmt.Println(n)
	}
	return nil
}

func cmdStats(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("stats", flag.ContinueOnError)
	cf := addConnFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	client, finish, err := cf.connect()
	if err != nil {
		return err
	}
	defer finish()

	stats, err := client.ServerStats(ctx)
	if err != nil {
		return err
	}
	// Stats arrive shard by shard (ring order) with the key-store
	// server last; label each row with the shard's address so per-shard
	// imbalance is visible, not averaged away.
	health := client.ShardHealth()
	var logical, physical, stub uint64
	for i, s := range stats {
		role := "keystore"
		if i < len(health) {
			role = "shard " + health[i].Addr
			if health[i].Down {
				role += " (down)"
			}
		}
		fmt.Printf("%-28s puts=%d dup=%d logical=%d physical=%d stub=%d\n",
			role, s.TotalPuts, s.DedupedPuts, s.LogicalBytes, s.PhysicalBytes, s.StubBytes)
		logical += s.LogicalBytes
		physical += s.PhysicalBytes
		stub += s.StubBytes
	}
	if logical > 0 {
		saving := 1 - float64(physical+stub)/float64(logical)
		fmt.Printf("total: logical=%d stored=%d saving=%.2f%%\n", logical, physical+stub, saving*100)
	}

	// Cluster-wide metrics, one section per source (this client, the
	// key manager, each shard by address, the key store) rather than
	// one anonymous merge. Uninstrumented servers contribute empty
	// snapshots, so on an old deployment a section simply stays empty.
	sources, err := client.ClusterMetricsBySource(ctx)
	if err != nil {
		return fmt.Errorf("cluster metrics: %w", err)
	}
	for _, src := range sources {
		if text := src.Snapshot.Text(); text != "" {
			fmt.Printf("\nmetrics [%s]:\n", src.Source)
			fmt.Print(text)
		}
	}
	return nil
}

// --- helpers ---

func loadAuthority(state string) (*reed.Authority, error) {
	b, err := os.ReadFile(filepath.Join(state, "authority.key"))
	if err != nil {
		return nil, fmt.Errorf("load authority (run init-authority first): %w", err)
	}
	return reed.UnmarshalAuthority(b)
}

func userPath(state, user, kind string) string {
	return filepath.Join(state, fmt.Sprintf("%s.%s", user, kind))
}
