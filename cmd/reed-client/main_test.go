package main

import (
	"bytes"
	"context"
	"math/rand"
	"net"
	"os"
	"path/filepath"
	"testing"

	reed "repro"
)

// startDeployment boots servers for the CLI to talk to.
func startDeployment(t *testing.T) (dataAddrs string, keyAddr, kmAddr string) {
	t.Helper()
	km, err := reed.NewKeyManagerServer(1024, 0)
	if err != nil {
		t.Fatal(err)
	}
	kmLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = km.Serve(kmLn) }()
	t.Cleanup(km.Shutdown)

	var addrs []string
	for i := 0; i < 2; i++ {
		srv, err := reed.NewStorageServer(reed.NewMemoryBackend())
		if err != nil {
			t.Fatal(err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go func() { _ = srv.Serve(ln) }()
		t.Cleanup(func() { _ = srv.Shutdown() })
		addrs = append(addrs, ln.Addr().String())
	}

	keySrv, err := reed.NewStorageServer(reed.NewMemoryBackend())
	if err != nil {
		t.Fatal(err)
	}
	keyLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = keySrv.Serve(keyLn) }()
	t.Cleanup(func() { _ = keySrv.Shutdown() })

	return addrs[0] + "," + addrs[1], keyLn.Addr().String(), kmLn.Addr().String()
}

// TestCLIWorkflow drives the complete CLI surface: provisioning, upload,
// download, rekey, stats.
func TestCLIWorkflow(t *testing.T) {
	servers, keyAddr, kmAddr := startDeployment(t)
	state := t.TempDir()

	// Provisioning.
	if err := run(context.Background(), []string{"init-authority", "-state", state}); err != nil {
		t.Fatalf("init-authority: %v", err)
	}
	if err := run(context.Background(), []string{"init-authority", "-state", state}); err == nil {
		t.Fatal("second init-authority should refuse to overwrite")
	}
	for _, user := range []string{"alice", "bob"} {
		if err := run(context.Background(), []string{"issue", "-state", state, "-user", user}); err != nil {
			t.Fatalf("issue %s: %v", user, err)
		}
	}
	if err := run(context.Background(), []string{"publish", "-state", state, "-users", "alice,bob"}); err != nil {
		t.Fatalf("publish: %v", err)
	}

	// Upload.
	src := filepath.Join(state, "input.bin")
	data := make([]byte, 256<<10)
	rand.New(rand.NewSource(1)).Read(data)
	if err := os.WriteFile(src, data, 0o644); err != nil {
		t.Fatal(err)
	}
	conn := []string{
		"-state", state, "-servers", servers, "-keystore", keyAddr, "-km", kmAddr,
	}
	if err := run(context.Background(), append([]string{"upload", "-user", "alice",
		"-file", src, "-as", "/cli/file.bin", "-policy", "or(alice, bob)"}, conn...)); err != nil {
		t.Fatalf("upload: %v", err)
	}

	// Download as each authorized user.
	for _, user := range []string{"alice", "bob"} {
		out := filepath.Join(state, "out-"+user+".bin")
		if err := run(context.Background(), append([]string{"download", "-user", user,
			"-path", "/cli/file.bin", "-out", out}, conn...)); err != nil {
			t.Fatalf("download as %s: %v", user, err)
		}
		got, err := os.ReadFile(out)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("download as %s: data mismatch", user)
		}
	}

	// Rekey: revoke bob (active).
	if err := run(context.Background(), append([]string{"rekey", "-user", "alice",
		"-path", "/cli/file.bin", "-policy", "alice", "-active"}, conn...)); err != nil {
		t.Fatalf("rekey: %v", err)
	}
	out := filepath.Join(state, "out-after.bin")
	if err := run(context.Background(), append([]string{"download", "-user", "alice",
		"-path", "/cli/file.bin", "-out", out}, conn...)); err != nil {
		t.Fatalf("download after rekey: %v", err)
	}
	if err := run(context.Background(), append([]string{"download", "-user", "bob",
		"-path", "/cli/file.bin", "-out", out}, conn...)); err == nil {
		t.Fatal("revoked user downloaded via CLI")
	}

	// Listing.
	if err := run(context.Background(), append([]string{"ls", "-user", "alice"}, conn...)); err != nil {
		t.Fatalf("ls: %v", err)
	}

	// Stats.
	if err := run(context.Background(), append([]string{"stats", "-user", "alice"}, conn...)); err != nil {
		t.Fatalf("stats: %v", err)
	}
}

func TestCLIErrors(t *testing.T) {
	if err := run(context.Background(), nil); err == nil {
		t.Fatal("no args accepted")
	}
	if err := run(context.Background(), []string{"bogus"}); err == nil {
		t.Fatal("unknown subcommand accepted")
	}
	if err := run(context.Background(), []string{"issue", "-state", t.TempDir(), "-user", "x"}); err == nil {
		t.Fatal("issue without authority accepted")
	}
	if err := run(context.Background(), []string{"upload"}); err == nil {
		t.Fatal("upload without flags accepted")
	}
	if err := run(context.Background(), []string{"init-authority"}); err == nil {
		t.Fatal("init-authority without -state accepted")
	}
}

// TestCLIOwnerPersistsAcrossRekeys verifies that the owner's key chain
// version survives CLI process "restarts" (state reloaded from disk).
func TestCLIOwnerPersistsAcrossRekeys(t *testing.T) {
	servers, keyAddr, kmAddr := startDeployment(t)
	state := t.TempDir()
	if err := run(context.Background(), []string{"init-authority", "-state", state}); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), []string{"issue", "-state", state, "-user", "alice"}); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), []string{"publish", "-state", state, "-users", "alice"}); err != nil {
		t.Fatal(err)
	}

	src := filepath.Join(state, "in.bin")
	if err := os.WriteFile(src, bytes.Repeat([]byte("z"), 32<<10), 0o644); err != nil {
		t.Fatal(err)
	}
	conn := []string{"-state", state, "-servers", servers, "-keystore", keyAddr, "-km", kmAddr}
	if err := run(context.Background(), append([]string{"upload", "-user", "alice",
		"-file", src, "-as", "/p", "-policy", "alice"}, conn...)); err != nil {
		t.Fatal(err)
	}
	// Each rekey is a separate "process"; winding must persist so the
	// chain version strictly grows and downloads keep working.
	for i := 0; i < 3; i++ {
		if err := run(context.Background(), append([]string{"rekey", "-user", "alice",
			"-path", "/p", "-policy", "alice"}, conn...)); err != nil {
			t.Fatalf("rekey %d: %v", i, err)
		}
	}
	out := filepath.Join(state, "out.bin")
	if err := run(context.Background(), append([]string{"download", "-user", "alice",
		"-path", "/p", "-out", out}, conn...)); err != nil {
		t.Fatalf("download after rekeys: %v", err)
	}
}
