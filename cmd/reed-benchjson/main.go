// Command reed-benchjson converts `go test -bench` text output into a
// stable JSON document, so benchmark results can be archived, diffed,
// and plotted without scraping Go's human-oriented format.
//
// Usage:
//
//	go test -run NONE -bench=BenchmarkStreamingUpload . | reed-benchjson -o BENCH_pipeline.json
//
// Every benchmark line becomes one record with its name, iteration
// count, and all reported value/unit pairs (ns/op, MB/s, B/op,
// allocs/op, and any custom b.ReportMetric units). Context lines
// (goos, goarch, pkg, cpu) are carried through as metadata. Input that
// contains no benchmark lines is an error — it usually means the
// -bench pattern matched nothing.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

func main() {
	if err := run(os.Stdin, os.Stdout, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "reed-benchjson:", err)
		os.Exit(1)
	}
}

// Result is one parsed benchmark line.
type Result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Report is the output document.
type Report struct {
	GoOS       string   `json:"goos,omitempty"`
	GoArch     string   `json:"goarch,omitempty"`
	Pkg        string   `json:"pkg,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
}

func run(in io.Reader, out io.Writer, args []string) error {
	fs := flag.NewFlagSet("reed-benchjson", flag.ContinueOnError)
	outPath := fs.String("o", "", "output file (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	report, err := parse(in)
	if err != nil {
		return err
	}
	b, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if *outPath == "" {
		_, err = out.Write(b)
		return err
	}
	if err := os.WriteFile(*outPath, b, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(out, "wrote %d benchmark(s) to %s\n", len(report.Benchmarks), *outPath)
	return nil
}

// parse reads `go test -bench` output. Lines it does not recognize
// (test chatter, PASS/ok trailers) are skipped, so piping a full test
// run through is safe.
func parse(in io.Reader) (*Report, error) {
	r := &Report{Benchmarks: []Result{}}
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			r.GoOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			r.GoArch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			r.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			r.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			res, ok := parseBenchLine(line)
			if ok {
				r.Benchmarks = append(r.Benchmarks, res)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(r.Benchmarks) == 0 {
		return nil, fmt.Errorf("no benchmark lines in input (did -bench match anything?)")
	}
	return r, nil
}

// parseBenchLine parses one result line:
//
//	BenchmarkName/sub-8   10   123456 ns/op   120.5 MB/s   64 B/op   2 allocs/op
//
// i.e. name, iteration count, then value/unit pairs.
func parseBenchLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	res := Result{Name: fields[0], Iterations: iters, Metrics: make(map[string]float64)}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		res.Metrics[fields[i+1]] = v
	}
	return res, true
}
