// Command reed-benchjson converts `go test -bench` text output into a
// stable JSON document, so benchmark results can be archived, diffed,
// and plotted without scraping Go's human-oriented format.
//
// Usage:
//
//	go test -run NONE -bench=BenchmarkStreamingUpload . | reed-benchjson -o BENCH_pipeline.json
//
// Every benchmark line becomes one record with its name, iteration
// count, and all reported value/unit pairs (ns/op, MB/s, B/op,
// allocs/op, and any custom b.ReportMetric units). Context lines
// (goos, goarch, pkg, cpu) are carried through as metadata. Input that
// contains no benchmark lines is an error — it usually means the
// -bench pattern matched nothing.
//
// With -compare, the parsed input is additionally ratcheted against a
// committed baseline document:
//
//	go test -run NONE -bench=... . | reed-benchjson -compare BENCH_pipeline.json -tolerance 0.15
//
// Every benchmark in the baseline must appear in the current run (a
// rename or deletion fails the ratchet rather than silently dropping
// coverage) and is checked metric by metric: time- and allocation-style
// units (ns/op, B/op, allocs/op) may not grow by more than the
// tolerance, throughput-style units (MB/s and custom *MBps* /
// *speedup* metrics) may not shrink by more than it. Any regression is
// printed and the exit status is non-zero, so CI fails loudly instead
// of letting performance drift.
//
// -bestof merges repeated benchmark names — as produced by
// `go test -count=3` — keeping each metric's best value (max for
// throughput, min for times/allocations), which de-flakes the ratchet
// on noisy runners. -summary FILE appends a per-metric markdown delta
// table, suitable for $GITHUB_STEP_SUMMARY.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

func main() {
	if err := run(os.Stdin, os.Stdout, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "reed-benchjson:", err)
		os.Exit(1)
	}
}

// Result is one parsed benchmark line.
type Result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Report is the output document.
type Report struct {
	GoOS       string   `json:"goos,omitempty"`
	GoArch     string   `json:"goarch,omitempty"`
	Pkg        string   `json:"pkg,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
}

func run(in io.Reader, out io.Writer, args []string) error {
	fs := flag.NewFlagSet("reed-benchjson", flag.ContinueOnError)
	outPath := fs.String("o", "", "output file (default stdout)")
	comparePath := fs.String("compare", "", "baseline JSON to ratchet against (exit 1 on regression)")
	tolerance := fs.Float64("tolerance", 0.15, "allowed fractional regression per metric with -compare")
	bestOf := fs.Bool("bestof", false, "merge repeated benchmark names (go test -count=N), keeping each metric's best value")
	summaryPath := fs.String("summary", "", "with -compare, append a markdown delta table to this file (e.g. $GITHUB_STEP_SUMMARY)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	report, err := parse(in)
	if err != nil {
		return err
	}
	if *bestOf {
		report = mergeBestOf(report)
	}
	if *comparePath != "" {
		baseline, err := loadReport(*comparePath)
		if err != nil {
			return err
		}
		return compare(out, baseline, report, *tolerance, *summaryPath)
	}
	b, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if *outPath == "" {
		_, err = out.Write(b)
		return err
	}
	if err := os.WriteFile(*outPath, b, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(out, "wrote %d benchmark(s) to %s\n", len(report.Benchmarks), *outPath)
	return nil
}

// loadReport reads a previously archived JSON document.
func loadReport(path string) (*Report, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("baseline %s unreadable: %w (renamed? regenerate with 'make bench-json' and commit it)", path, err)
	}
	var r Report
	if err := json.Unmarshal(b, &r); err != nil {
		return nil, fmt.Errorf("baseline %s: %w", path, err)
	}
	if len(r.Benchmarks) == 0 {
		return nil, fmt.Errorf("baseline %s holds no benchmarks", path)
	}
	return &r, nil
}

// metricDirection classifies a unit: -1 means lower is better (times,
// allocations), +1 means higher is better (throughput, speedups), 0
// means unratcheted (counts, sizes, and units we cannot classify).
func metricDirection(unit string) int {
	switch unit {
	case "ns/op", "B/op", "allocs/op":
		return -1
	case "MB/s":
		return +1
	}
	if strings.Contains(unit, "MBps") || strings.Contains(unit, "speedup") {
		return +1
	}
	return 0
}

// mergeBestOf folds repeated benchmark names (as emitted by
// `go test -count=N`) into a single record per name, keeping each
// metric's best value: max where higher is better, min where lower is
// better, and the first observation for unratcheted units. Comparing
// best-of-N against the baseline de-flakes the ratchet: one noisy run
// cannot fail CI when its siblings hit the baseline.
func mergeBestOf(r *Report) *Report {
	merged := &Report{GoOS: r.GoOS, GoArch: r.GoArch, Pkg: r.Pkg, CPU: r.CPU, Benchmarks: []Result{}}
	index := make(map[string]int)
	for _, b := range r.Benchmarks {
		i, seen := index[b.Name]
		if !seen {
			index[b.Name] = len(merged.Benchmarks)
			cp := Result{Name: b.Name, Iterations: b.Iterations, Metrics: make(map[string]float64, len(b.Metrics))}
			for unit, v := range b.Metrics {
				cp.Metrics[unit] = v
			}
			merged.Benchmarks = append(merged.Benchmarks, cp)
			continue
		}
		dst := &merged.Benchmarks[i]
		for unit, v := range b.Metrics {
			old, ok := dst.Metrics[unit]
			if !ok {
				dst.Metrics[unit] = v
				continue
			}
			switch dir := metricDirection(unit); {
			case dir > 0 && v > old:
				dst.Metrics[unit] = v
			case dir < 0 && v < old:
				dst.Metrics[unit] = v
			}
		}
	}
	return merged
}

// deltaRow is one line of the -summary markdown table.
type deltaRow struct {
	bench, unit string
	was, now    float64
	change      float64 // fractional, (now-was)/was
	status      string  // "ok", "REGRESSION", or "unratcheted"
}

// compare ratchets current against baseline. Every baseline benchmark
// must be present in the current run — a rename or deletion is a hard
// error, not a silent coverage drop — and every direction-classified
// metric present in both may not regress beyond the tolerance. New
// benchmarks in the current run (not yet archived) pass through
// untouched.
func compare(out io.Writer, baseline, current *Report, tolerance float64, summaryPath string) error {
	base := make(map[string]Result, len(baseline.Benchmarks))
	for _, b := range baseline.Benchmarks {
		base[b.Name] = b
	}
	seen := make(map[string]bool, len(base))
	var rows []deltaRow
	var regressions, checked int
	for _, cur := range current.Benchmarks {
		old, ok := base[cur.Name]
		if !ok {
			continue
		}
		seen[cur.Name] = true
		units := make([]string, 0, len(old.Metrics))
		for unit := range old.Metrics {
			units = append(units, unit)
		}
		sort.Strings(units)
		for _, unit := range units {
			was := old.Metrics[unit]
			now, ok := cur.Metrics[unit]
			if !ok || was <= 0 {
				continue
			}
			dir := metricDirection(unit)
			row := deltaRow{bench: cur.Name, unit: unit, was: was, now: now, change: (now - was) / was}
			if dir == 0 {
				row.status = "unratcheted"
				rows = append(rows, row)
				continue
			}
			checked++
			row.status = "ok"
			if float64(dir)*row.change < -tolerance {
				regressions++
				row.status = "REGRESSION"
				fmt.Fprintf(out, "REGRESSION %s %s: %.4g -> %.4g (%+.1f%%, tolerance %.0f%%)\n",
					cur.Name, unit, was, now, row.change*100, tolerance*100)
			}
			rows = append(rows, row)
		}
	}
	if summaryPath != "" {
		if err := writeSummary(summaryPath, rows, tolerance); err != nil {
			return err
		}
	}
	var missing []string
	for _, b := range baseline.Benchmarks {
		if !seen[b.Name] {
			missing = append(missing, b.Name)
		}
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		return fmt.Errorf("baseline benchmark(s) missing from current run: %s (renamed or removed? refresh the baseline with 'make bench-json')",
			strings.Join(missing, ", "))
	}
	if checked == 0 {
		return fmt.Errorf("no comparable metrics between baseline and current run")
	}
	if regressions > 0 {
		return fmt.Errorf("%d metric(s) regressed beyond %.0f%%", regressions, tolerance*100)
	}
	fmt.Fprintf(out, "bench ratchet ok: %d metric(s) within %.0f%% of baseline\n", checked, tolerance*100)
	return nil
}

// writeSummary appends a markdown per-metric delta table to path. The
// file is opened in append mode so several ratchet suites can share one
// $GITHUB_STEP_SUMMARY.
func writeSummary(path string, rows []deltaRow, tolerance float64) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("summary %s: %w", path, err)
	}
	defer f.Close()
	var sb strings.Builder
	fmt.Fprintf(&sb, "| benchmark | metric | baseline | current | delta | status |\n")
	fmt.Fprintf(&sb, "|---|---|---:|---:|---:|---|\n")
	for _, r := range rows {
		status := r.status
		if status == "REGRESSION" {
			status = "**REGRESSION**"
		}
		fmt.Fprintf(&sb, "| %s | %s | %.4g | %.4g | %+.1f%% | %s |\n",
			r.bench, r.unit, r.was, r.now, r.change*100, status)
	}
	fmt.Fprintf(&sb, "\n_tolerance ±%.0f%% on direction-classified metrics_\n\n", tolerance*100)
	_, err = f.WriteString(sb.String())
	return err
}

// parse reads `go test -bench` output. Lines it does not recognize
// (test chatter, PASS/ok trailers) are skipped, so piping a full test
// run through is safe.
func parse(in io.Reader) (*Report, error) {
	r := &Report{Benchmarks: []Result{}}
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			r.GoOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			r.GoArch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			r.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			r.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			res, ok := parseBenchLine(line)
			if ok {
				r.Benchmarks = append(r.Benchmarks, res)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(r.Benchmarks) == 0 {
		return nil, fmt.Errorf("no benchmark lines in input (did -bench match anything?)")
	}
	return r, nil
}

// parseBenchLine parses one result line:
//
//	BenchmarkName/sub-8   10   123456 ns/op   120.5 MB/s   64 B/op   2 allocs/op
//
// i.e. name, iteration count, then value/unit pairs.
func parseBenchLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	res := Result{Name: fields[0], Iterations: iters, Metrics: make(map[string]float64)}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		res.Metrics[fields[i+1]] = v
	}
	return res, true
}
