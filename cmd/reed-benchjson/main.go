// Command reed-benchjson converts `go test -bench` text output into a
// stable JSON document, so benchmark results can be archived, diffed,
// and plotted without scraping Go's human-oriented format.
//
// Usage:
//
//	go test -run NONE -bench=BenchmarkStreamingUpload . | reed-benchjson -o BENCH_pipeline.json
//
// Every benchmark line becomes one record with its name, iteration
// count, and all reported value/unit pairs (ns/op, MB/s, B/op,
// allocs/op, and any custom b.ReportMetric units). Context lines
// (goos, goarch, pkg, cpu) are carried through as metadata. Input that
// contains no benchmark lines is an error — it usually means the
// -bench pattern matched nothing.
//
// With -compare, the parsed input is additionally ratcheted against a
// committed baseline document:
//
//	go test -run NONE -bench=... . | reed-benchjson -compare BENCH_pipeline.json -tolerance 0.15
//
// Every benchmark present in both documents is checked metric by
// metric: time- and allocation-style units (ns/op, B/op, allocs/op)
// may not grow by more than the tolerance, throughput-style units
// (MB/s and custom *MBps* / *speedup* metrics) may not shrink by more
// than it. Any regression is printed and the exit status is non-zero,
// so CI fails loudly instead of letting performance drift.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

func main() {
	if err := run(os.Stdin, os.Stdout, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "reed-benchjson:", err)
		os.Exit(1)
	}
}

// Result is one parsed benchmark line.
type Result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Report is the output document.
type Report struct {
	GoOS       string   `json:"goos,omitempty"`
	GoArch     string   `json:"goarch,omitempty"`
	Pkg        string   `json:"pkg,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
}

func run(in io.Reader, out io.Writer, args []string) error {
	fs := flag.NewFlagSet("reed-benchjson", flag.ContinueOnError)
	outPath := fs.String("o", "", "output file (default stdout)")
	comparePath := fs.String("compare", "", "baseline JSON to ratchet against (exit 1 on regression)")
	tolerance := fs.Float64("tolerance", 0.15, "allowed fractional regression per metric with -compare")
	if err := fs.Parse(args); err != nil {
		return err
	}

	report, err := parse(in)
	if err != nil {
		return err
	}
	if *comparePath != "" {
		baseline, err := loadReport(*comparePath)
		if err != nil {
			return err
		}
		return compare(out, baseline, report, *tolerance)
	}
	b, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if *outPath == "" {
		_, err = out.Write(b)
		return err
	}
	if err := os.WriteFile(*outPath, b, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(out, "wrote %d benchmark(s) to %s\n", len(report.Benchmarks), *outPath)
	return nil
}

// loadReport reads a previously archived JSON document.
func loadReport(path string) (*Report, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(b, &r); err != nil {
		return nil, fmt.Errorf("baseline %s: %w", path, err)
	}
	if len(r.Benchmarks) == 0 {
		return nil, fmt.Errorf("baseline %s holds no benchmarks", path)
	}
	return &r, nil
}

// metricDirection classifies a unit: -1 means lower is better (times,
// allocations), +1 means higher is better (throughput, speedups), 0
// means unratcheted (counts, sizes, and units we cannot classify).
func metricDirection(unit string) int {
	switch unit {
	case "ns/op", "B/op", "allocs/op":
		return -1
	case "MB/s":
		return +1
	}
	if strings.Contains(unit, "MBps") || strings.Contains(unit, "speedup") {
		return +1
	}
	return 0
}

// compare ratchets current against baseline. Only benchmarks and
// metrics present in both documents participate; a regression beyond
// the tolerance in either direction-classified unit fails the run.
func compare(out io.Writer, baseline, current *Report, tolerance float64) error {
	base := make(map[string]Result, len(baseline.Benchmarks))
	for _, b := range baseline.Benchmarks {
		base[b.Name] = b
	}
	var regressions, checked int
	for _, cur := range current.Benchmarks {
		old, ok := base[cur.Name]
		if !ok {
			continue
		}
		for unit, was := range old.Metrics {
			now, ok := cur.Metrics[unit]
			dir := metricDirection(unit)
			if !ok || dir == 0 || was <= 0 {
				continue
			}
			checked++
			change := (now - was) / was
			if float64(dir)*change < -tolerance {
				regressions++
				fmt.Fprintf(out, "REGRESSION %s %s: %.4g -> %.4g (%+.1f%%, tolerance %.0f%%)\n",
					cur.Name, unit, was, now, change*100, tolerance*100)
			}
		}
	}
	if checked == 0 {
		return fmt.Errorf("no comparable metrics between baseline and current run")
	}
	if regressions > 0 {
		return fmt.Errorf("%d metric(s) regressed beyond %.0f%%", regressions, tolerance*100)
	}
	fmt.Fprintf(out, "bench ratchet ok: %d metric(s) within %.0f%% of baseline\n", checked, tolerance*100)
	return nil
}

// parse reads `go test -bench` output. Lines it does not recognize
// (test chatter, PASS/ok trailers) are skipped, so piping a full test
// run through is safe.
func parse(in io.Reader) (*Report, error) {
	r := &Report{Benchmarks: []Result{}}
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			r.GoOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			r.GoArch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			r.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			r.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			res, ok := parseBenchLine(line)
			if ok {
				r.Benchmarks = append(r.Benchmarks, res)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(r.Benchmarks) == 0 {
		return nil, fmt.Errorf("no benchmark lines in input (did -bench match anything?)")
	}
	return r, nil
}

// parseBenchLine parses one result line:
//
//	BenchmarkName/sub-8   10   123456 ns/op   120.5 MB/s   64 B/op   2 allocs/op
//
// i.e. name, iteration count, then value/unit pairs.
func parseBenchLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	res := Result{Name: fields[0], Iterations: iters, Metrics: make(map[string]float64)}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		res.Metrics[fields[i+1]] = v
	}
	return res, true
}
