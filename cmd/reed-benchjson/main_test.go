package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R)
BenchmarkStreamingUpload/seg=1MiB-8         	      10	 123456789 ns/op	 120.50 MB/s
BenchmarkMuxedGets/inflight=8-8             	       3	   9876543 ns/op	      64 B/op	       2 allocs/op
--- some test chatter that must be ignored
PASS
ok  	repro	1.234s
`

func TestParse(t *testing.T) {
	r, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if r.GoOS != "linux" || r.GoArch != "amd64" || r.Pkg != "repro" {
		t.Fatalf("metadata = %q/%q/%q", r.GoOS, r.GoArch, r.Pkg)
	}
	if len(r.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(r.Benchmarks))
	}
	up := r.Benchmarks[0]
	if up.Name != "BenchmarkStreamingUpload/seg=1MiB-8" || up.Iterations != 10 {
		t.Fatalf("first result = %+v", up)
	}
	if up.Metrics["ns/op"] != 123456789 || up.Metrics["MB/s"] != 120.50 {
		t.Fatalf("first metrics = %v", up.Metrics)
	}
	if got := r.Benchmarks[1].Metrics["allocs/op"]; got != 2 {
		t.Fatalf("allocs/op = %v, want 2", got)
	}
}

func TestParseRejectsEmpty(t *testing.T) {
	if _, err := parse(strings.NewReader("PASS\nok  \trepro\t0.1s\n")); err == nil {
		t.Fatal("want error when no benchmark lines present")
	}
}

func TestRunWritesFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	var out bytes.Buffer
	if err := run(strings.NewReader(sample), &out, []string{"-o", path}); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(b, &rep); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if len(rep.Benchmarks) != 2 {
		t.Fatalf("file has %d benchmarks, want 2", len(rep.Benchmarks))
	}
	if !strings.Contains(out.String(), "wrote 2 benchmark(s)") {
		t.Fatalf("stdout = %q", out.String())
	}
}
