package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R)
BenchmarkStreamingUpload/seg=1MiB-8         	      10	 123456789 ns/op	 120.50 MB/s
BenchmarkMuxedGets/inflight=8-8             	       3	   9876543 ns/op	      64 B/op	       2 allocs/op
--- some test chatter that must be ignored
PASS
ok  	repro	1.234s
`

func TestParse(t *testing.T) {
	r, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if r.GoOS != "linux" || r.GoArch != "amd64" || r.Pkg != "repro" {
		t.Fatalf("metadata = %q/%q/%q", r.GoOS, r.GoArch, r.Pkg)
	}
	if len(r.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(r.Benchmarks))
	}
	up := r.Benchmarks[0]
	if up.Name != "BenchmarkStreamingUpload/seg=1MiB-8" || up.Iterations != 10 {
		t.Fatalf("first result = %+v", up)
	}
	if up.Metrics["ns/op"] != 123456789 || up.Metrics["MB/s"] != 120.50 {
		t.Fatalf("first metrics = %v", up.Metrics)
	}
	if got := r.Benchmarks[1].Metrics["allocs/op"]; got != 2 {
		t.Fatalf("allocs/op = %v, want 2", got)
	}
}

func TestParseRejectsEmpty(t *testing.T) {
	if _, err := parse(strings.NewReader("PASS\nok  \trepro\t0.1s\n")); err == nil {
		t.Fatal("want error when no benchmark lines present")
	}
}

func TestRunWritesFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	var out bytes.Buffer
	if err := run(strings.NewReader(sample), &out, []string{"-o", path}); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(b, &rep); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if len(rep.Benchmarks) != 2 {
		t.Fatalf("file has %d benchmarks, want 2", len(rep.Benchmarks))
	}
	if !strings.Contains(out.String(), "wrote 2 benchmark(s)") {
		t.Fatalf("stdout = %q", out.String())
	}
}

// writeBaseline archives the sample run as a baseline file.
func writeBaseline(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "baseline.json")
	var out bytes.Buffer
	if err := run(strings.NewReader(sample), &out, []string{"-o", path}); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCompareWithinTolerance(t *testing.T) {
	path := writeBaseline(t)
	// 10% slower ns/op and 10% lower MB/s: inside the 15% default.
	drifted := strings.NewReplacer(
		"123456789 ns/op", "135802467 ns/op",
		"120.50 MB/s", "108.45 MB/s",
	).Replace(sample)
	var out bytes.Buffer
	if err := run(strings.NewReader(drifted), &out, []string{"-compare", path}); err != nil {
		t.Fatalf("10%% drift rejected: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "bench ratchet ok") {
		t.Fatalf("output = %q", out.String())
	}
}

func TestCompareFailsOnRegression(t *testing.T) {
	path := writeBaseline(t)
	// Throughput down 20%: beyond tolerance, must fail and name the
	// metric.
	regressed := strings.Replace(sample, "120.50 MB/s", "96.40 MB/s", 1)
	var out bytes.Buffer
	err := run(strings.NewReader(regressed), &out, []string{"-compare", path})
	if err == nil {
		t.Fatalf("20%% throughput regression accepted\n%s", out.String())
	}
	if !strings.Contains(out.String(), "REGRESSION") || !strings.Contains(out.String(), "MB/s") {
		t.Fatalf("output = %q", out.String())
	}
}

func TestCompareFailsOnSlowdown(t *testing.T) {
	path := writeBaseline(t)
	regressed := strings.Replace(sample, "123456789 ns/op", "160493825 ns/op", 1)
	var out bytes.Buffer
	if err := run(strings.NewReader(regressed), &out, []string{"-compare", path}); err == nil {
		t.Fatalf("30%% ns/op regression accepted\n%s", out.String())
	}
}

func TestCompareFailsWhenBaselineBenchmarkMissing(t *testing.T) {
	path := writeBaseline(t)
	// A benchmark present in the baseline but renamed in the current
	// run is a silent coverage drop — the ratchet must refuse it and
	// name the missing benchmark.
	renamed := strings.Replace(sample, "BenchmarkMuxedGets", "BenchmarkRenamed", 1)
	var out bytes.Buffer
	err := run(strings.NewReader(renamed), &out, []string{"-compare", path})
	if err == nil {
		t.Fatalf("renamed baseline benchmark accepted\n%s", out.String())
	}
	if !strings.Contains(err.Error(), "BenchmarkMuxedGets") || !strings.Contains(err.Error(), "missing from current run") {
		t.Fatalf("error = %v, want it to name the missing benchmark", err)
	}
}

func TestCompareFailsOnMissingBaselineFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "nope", "BENCH_gone.json")
	var out bytes.Buffer
	err := run(strings.NewReader(sample), &out, []string{"-compare", path})
	if err == nil {
		t.Fatal("missing baseline file accepted")
	}
	if !strings.Contains(err.Error(), path) || !strings.Contains(err.Error(), "make bench-json") {
		t.Fatalf("error = %v, want the path and the regeneration hint", err)
	}
}

func TestCompareUnknownUnitNotRatcheted(t *testing.T) {
	// A metric whose unit has no direction (here peak_MB_basic) may
	// drift arbitrarily without failing the ratchet.
	withCustom := strings.Replace(sample, "120.50 MB/s", "120.50 MB/s\t      4.0 peak_MB_basic", 1)
	path := filepath.Join(t.TempDir(), "baseline.json")
	var out bytes.Buffer
	if err := run(strings.NewReader(withCustom), &out, []string{"-o", path}); err != nil {
		t.Fatal(err)
	}
	drifted := strings.Replace(withCustom, "4.0 peak_MB_basic", "400.0 peak_MB_basic", 1)
	out.Reset()
	if err := run(strings.NewReader(drifted), &out, []string{"-compare", path}); err != nil {
		t.Fatalf("100x drift in unratcheted unit failed the ratchet: %v\n%s", err, out.String())
	}
}

func TestBestOfMergesRepeatedRuns(t *testing.T) {
	// Three -count=3 style repeats of one benchmark: best-of must keep
	// the min ns/op and max MB/s across them.
	input := `goos: linux
BenchmarkStreamingUpload-8	10	300 ns/op	100.0 MB/s
BenchmarkStreamingUpload-8	10	200 ns/op	 90.0 MB/s
BenchmarkStreamingUpload-8	10	250 ns/op	110.0 MB/s
PASS
`
	var out bytes.Buffer
	if err := run(strings.NewReader(input), &out, []string{"-bestof"}); err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 1 {
		t.Fatalf("merged to %d benchmarks, want 1", len(rep.Benchmarks))
	}
	m := rep.Benchmarks[0].Metrics
	if m["ns/op"] != 200 || m["MB/s"] != 110 {
		t.Fatalf("best-of metrics = %v, want ns/op=200 MB/s=110", m)
	}
}

func TestBestOfDeflakesCompare(t *testing.T) {
	path := writeBaseline(t)
	// One noisy repeat regresses 40%, but its sibling matches the
	// baseline: best-of must pass where a raw compare would fail.
	noisy := sample + strings.NewReplacer(
		"123456789 ns/op", "172839504 ns/op",
		"120.50 MB/s", "84.35 MB/s",
	).Replace(sample)
	var out bytes.Buffer
	if err := run(strings.NewReader(noisy), &out, []string{"-compare", path, "-bestof"}); err != nil {
		t.Fatalf("best-of did not absorb the noisy repeat: %v\n%s", err, out.String())
	}
	out.Reset()
	if err := run(strings.NewReader(noisy), &out, []string{"-compare", path}); err == nil {
		t.Fatal("raw compare of noisy input passed; best-of test proves nothing")
	}
}

func TestSummaryTableWritten(t *testing.T) {
	base := writeBaseline(t)
	summary := filepath.Join(t.TempDir(), "summary.md")
	regressed := strings.Replace(sample, "120.50 MB/s", "96.40 MB/s", 1)
	var out bytes.Buffer
	if err := run(strings.NewReader(regressed), &out, []string{"-compare", base, "-summary", summary}); err == nil {
		t.Fatal("regression accepted")
	}
	b, err := os.ReadFile(summary)
	if err != nil {
		t.Fatal(err)
	}
	got := string(b)
	for _, want := range []string{
		"| benchmark | metric |",
		"| BenchmarkStreamingUpload/seg=1MiB-8 | MB/s |",
		"**REGRESSION**",
		"| BenchmarkMuxedGets/inflight=8-8 | ns/op |",
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("summary missing %q:\n%s", want, got)
		}
	}
	// Append mode: a second suite's table lands in the same file.
	if err := run(strings.NewReader(sample), &out, []string{"-compare", base, "-summary", summary}); err != nil {
		t.Fatal(err)
	}
	b2, _ := os.ReadFile(summary)
	if n := strings.Count(string(b2), "| benchmark | metric |"); n != 2 {
		t.Fatalf("summary has %d tables after two runs, want 2 (append mode)", n)
	}
}

func TestMetricDirection(t *testing.T) {
	cases := map[string]int{
		"ns/op":             -1,
		"B/op":              -1,
		"allocs/op":         -1,
		"MB/s":              +1,
		"agg_MBps_4shard":   +1,
		"pipe_MBps_basic":   +1,
		"speedup_basic":     +1,
		"peak_MB_basic":     0,
		"overhead_pct_stub": 0,
	}
	for unit, want := range cases {
		if got := metricDirection(unit); got != want {
			t.Errorf("metricDirection(%q) = %d, want %d", unit, got, want)
		}
	}
}
