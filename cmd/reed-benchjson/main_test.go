package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R)
BenchmarkStreamingUpload/seg=1MiB-8         	      10	 123456789 ns/op	 120.50 MB/s
BenchmarkMuxedGets/inflight=8-8             	       3	   9876543 ns/op	      64 B/op	       2 allocs/op
--- some test chatter that must be ignored
PASS
ok  	repro	1.234s
`

func TestParse(t *testing.T) {
	r, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if r.GoOS != "linux" || r.GoArch != "amd64" || r.Pkg != "repro" {
		t.Fatalf("metadata = %q/%q/%q", r.GoOS, r.GoArch, r.Pkg)
	}
	if len(r.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(r.Benchmarks))
	}
	up := r.Benchmarks[0]
	if up.Name != "BenchmarkStreamingUpload/seg=1MiB-8" || up.Iterations != 10 {
		t.Fatalf("first result = %+v", up)
	}
	if up.Metrics["ns/op"] != 123456789 || up.Metrics["MB/s"] != 120.50 {
		t.Fatalf("first metrics = %v", up.Metrics)
	}
	if got := r.Benchmarks[1].Metrics["allocs/op"]; got != 2 {
		t.Fatalf("allocs/op = %v, want 2", got)
	}
}

func TestParseRejectsEmpty(t *testing.T) {
	if _, err := parse(strings.NewReader("PASS\nok  \trepro\t0.1s\n")); err == nil {
		t.Fatal("want error when no benchmark lines present")
	}
}

func TestRunWritesFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	var out bytes.Buffer
	if err := run(strings.NewReader(sample), &out, []string{"-o", path}); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(b, &rep); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if len(rep.Benchmarks) != 2 {
		t.Fatalf("file has %d benchmarks, want 2", len(rep.Benchmarks))
	}
	if !strings.Contains(out.String(), "wrote 2 benchmark(s)") {
		t.Fatalf("stdout = %q", out.String())
	}
}

// writeBaseline archives the sample run as a baseline file.
func writeBaseline(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "baseline.json")
	var out bytes.Buffer
	if err := run(strings.NewReader(sample), &out, []string{"-o", path}); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCompareWithinTolerance(t *testing.T) {
	path := writeBaseline(t)
	// 10% slower ns/op and 10% lower MB/s: inside the 15% default.
	drifted := strings.NewReplacer(
		"123456789 ns/op", "135802467 ns/op",
		"120.50 MB/s", "108.45 MB/s",
	).Replace(sample)
	var out bytes.Buffer
	if err := run(strings.NewReader(drifted), &out, []string{"-compare", path}); err != nil {
		t.Fatalf("10%% drift rejected: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "bench ratchet ok") {
		t.Fatalf("output = %q", out.String())
	}
}

func TestCompareFailsOnRegression(t *testing.T) {
	path := writeBaseline(t)
	// Throughput down 20%: beyond tolerance, must fail and name the
	// metric.
	regressed := strings.Replace(sample, "120.50 MB/s", "96.40 MB/s", 1)
	var out bytes.Buffer
	err := run(strings.NewReader(regressed), &out, []string{"-compare", path})
	if err == nil {
		t.Fatalf("20%% throughput regression accepted\n%s", out.String())
	}
	if !strings.Contains(out.String(), "REGRESSION") || !strings.Contains(out.String(), "MB/s") {
		t.Fatalf("output = %q", out.String())
	}
}

func TestCompareFailsOnSlowdown(t *testing.T) {
	path := writeBaseline(t)
	regressed := strings.Replace(sample, "123456789 ns/op", "160493825 ns/op", 1)
	var out bytes.Buffer
	if err := run(strings.NewReader(regressed), &out, []string{"-compare", path}); err == nil {
		t.Fatalf("30%% ns/op regression accepted\n%s", out.String())
	}
}

func TestCompareIgnoresUnknownAndMissing(t *testing.T) {
	path := writeBaseline(t)
	// A renamed benchmark drops out of the comparison entirely; the
	// remaining one still ratchets.
	renamed := strings.Replace(sample, "BenchmarkMuxedGets", "BenchmarkRenamed", 1)
	var out bytes.Buffer
	if err := run(strings.NewReader(renamed), &out, []string{"-compare", path}); err != nil {
		t.Fatalf("renamed benchmark broke the ratchet: %v\n%s", err, out.String())
	}
}

func TestMetricDirection(t *testing.T) {
	cases := map[string]int{
		"ns/op":             -1,
		"B/op":              -1,
		"allocs/op":         -1,
		"MB/s":              +1,
		"agg_MBps_4shard":   +1,
		"pipe_MBps_basic":   +1,
		"speedup_basic":     +1,
		"peak_MB_basic":     0,
		"overhead_pct_stub": 0,
	}
	for unit, want := range cases {
		if got := metricDirection(unit); got != want {
			t.Errorf("metricDirection(%q) = %d, want %d", unit, got, want)
		}
	}
}
