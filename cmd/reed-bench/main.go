// Command reed-bench regenerates every figure of the REED paper's
// evaluation (DSN'16, Section VI) against this implementation and
// prints the same series the paper plots.
//
// Data volumes are scaled (default: a 64 MB file stands in for the
// paper's 2 GB, and the trace replays 9 users over fewer days); raise
// -file-mb / -trace-days toward paper scale when you have the time
// budget. The testbed's 1 Gb/s LAN is emulated by default so
// network-bound plateaus land where the paper's do.
//
// Usage:
//
//	reed-bench                 # all experiments at default scale
//	reed-bench -run fig7       # one experiment
//	reed-bench -file-mb 256 -trace-days 147 -link=true
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/netem"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "reed-bench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		runSel    = flag.String("run", "all", "experiment: all, fig5a, fig5b, fig6, fig7, fig7c, fig8a, fig8b, fig8c, fig9, fig10, stream, shard, warm, ablations")
		fileMB    = flag.Int("file-mb", 64, "file size in MB standing in for the paper's 2 GB")
		servers   = flag.Int("servers", 4, "number of data-store servers")
		link      = flag.Bool("link", true, "emulate the paper's 1 Gb/s LAN (~116 MB/s effective)")
		traceDays = flag.Int("trace-days", 30, "days of the synthetic FSL-style trace for fig9")
		traceMB   = flag.Int("trace-user-mb", 4, "logical MB per user per day in the trace")
		seed      = flag.Int64("seed", 1, "workload seed")
	)
	flag.Parse()

	o := experiments.Options{
		FileBytes:   *fileMB << 20,
		DataServers: *servers,
		Seed:        *seed,
	}
	if *link {
		o.LinkBandwidth = netem.GigabitEffective
	}
	to := experiments.TraceOptions{
		Days:            *traceDays,
		BytesPerUserDay: uint64(*traceMB) << 20,
		Seed:            *seed,
	}

	fmt.Printf("reed-bench: file=%dMB servers=%d link=%v trace=%dd x %dMB/user/day\n\n",
		*fileMB, *servers, *link, *traceDays, *traceMB)

	want := func(name string) bool { return *runSel == "all" || *runSel == name }
	type exp struct {
		name string
		fn   func(experiments.Options, experiments.TraceOptions) error
	}
	all := []exp{
		{"fig5a", runFig5a},
		{"fig5b", runFig5b},
		{"fig6", runFig6},
		{"fig7", runFig7},
		{"fig7c", runFig7c},
		{"fig8a", runFig8a},
		{"fig8b", runFig8b},
		{"fig8c", runFig8c},
		{"fig9", runFig9},
		{"fig10", runFig10},
		{"stream", runStream},
		{"shard", runShard},
		{"warm", runWarm},
		{"ablations", runAblations},
	}
	var ran int
	for _, e := range all {
		if !want(e.name) {
			continue
		}
		start := time.Now()
		if err := e.fn(o, to); err != nil {
			return fmt.Errorf("%s: %w", e.name, err)
		}
		fmt.Printf("  [%s completed in %v]\n\n", e.name, time.Since(start).Round(time.Millisecond))
		ran++
	}
	if ran == 0 {
		return fmt.Errorf("unknown experiment %q", *runSel)
	}
	return nil
}

func header(title string) {
	fmt.Println(title)
	fmt.Println(strings.Repeat("-", len(title)))
}

func runFig5a(o experiments.Options, _ experiments.TraceOptions) error {
	header("Figure 5(a): MLE key generation speed vs average chunk size (batch=256)")
	points, err := experiments.Fig5aKeyGenVsChunkSize(o)
	if err != nil {
		return err
	}
	fmt.Printf("%-14s %-10s %s\n", "chunk size", "chunks", "speed")
	for _, p := range points {
		fmt.Printf("%-14s %-10d %.2f MB/s\n", fmt.Sprintf("%d KB", p.ChunkKB), p.Chunks, p.MBps)
	}
	return nil
}

func runFig5b(o experiments.Options, _ experiments.TraceOptions) error {
	header("Figure 5(b): MLE key generation speed vs batch size (8 KB chunks)")
	points, err := experiments.Fig5bKeyGenVsBatchSize(o)
	if err != nil {
		return err
	}
	fmt.Printf("%-12s %s\n", "batch", "speed")
	for _, p := range points {
		fmt.Printf("%-12d %.2f MB/s\n", p.BatchSize, p.MBps)
	}
	return nil
}

func runFig6(o experiments.Options, _ experiments.TraceOptions) error {
	header("Figure 6: encryption speed vs average chunk size (2 threads)")
	points, err := experiments.Fig6EncryptionSpeed(o)
	if err != nil {
		return err
	}
	fmt.Printf("%-12s %-12s %s\n", "chunk size", "scheme", "speed")
	for _, p := range points {
		fmt.Printf("%-12s %-12s %.0f MB/s\n", fmt.Sprintf("%d KB", p.ChunkKB), p.Scheme, p.MBps)
	}
	return nil
}

func runFig7(o experiments.Options, _ experiments.TraceOptions) error {
	header("Figure 7(a,b): upload (1st/2nd) and download speed vs chunk size")
	points, err := experiments.Fig7UploadDownload(o)
	if err != nil {
		return err
	}
	fmt.Printf("%-12s %-12s %-14s %-14s %s\n", "chunk size", "scheme", "upload 1st", "upload 2nd", "download")
	for _, p := range points {
		fmt.Printf("%-12s %-12s %-14s %-14s %.1f MB/s\n",
			fmt.Sprintf("%d KB", p.ChunkKB), p.Scheme,
			fmt.Sprintf("%.1f MB/s", p.FirstUpMBps),
			fmt.Sprintf("%.1f MB/s", p.SecondUpMBps),
			p.DownloadMBps)
	}
	return nil
}

func runFig7c(o experiments.Options, _ experiments.TraceOptions) error {
	header("Figure 7(c): aggregate upload speed vs number of clients (enhanced)")
	points, err := experiments.Fig7cMultiClient(o, nil)
	if err != nil {
		return err
	}
	fmt.Printf("%-10s %-16s %s\n", "clients", "1st upload", "2nd upload")
	for _, p := range points {
		fmt.Printf("%-10d %-16s %.1f MB/s\n", p.Clients,
			fmt.Sprintf("%.1f MB/s", p.FirstUpMBps), p.SecondUpMBps)
	}
	return nil
}

func runStream(o experiments.Options, _ experiments.TraceOptions) error {
	header("Streaming pipeline: cold upload speed, segment pipeline vs sequential")
	points, err := experiments.StreamingUpload(o)
	if err != nil {
		return err
	}
	fmt.Printf("%-12s %-10s %-14s %-14s %-10s %s\n",
		"scheme", "segment", "pipelined", "sequential", "speedup", "peak buffered")
	for _, p := range points {
		fmt.Printf("%-12s %-10s %-14s %-14s %-10s %.1f MB\n",
			p.Scheme, fmt.Sprintf("%d MB", p.SegmentMB),
			fmt.Sprintf("%.1f MB/s", p.PipelinedMBps),
			fmt.Sprintf("%.1f MB/s", p.SequentialMBps),
			fmt.Sprintf("%.2fx", p.Speedup), p.PeakBufferedMB)
	}
	return nil
}

func runShard(o experiments.Options, _ experiments.TraceOptions) error {
	header("Shard saturation: aggregate PUT speed vs shard count (3 clients, per-shard ports)")
	// The per-shard ingress port must be the bottleneck; the gigabit
	// client-link emulation would hide it.
	o.LinkBandwidth = 0
	points, err := experiments.ShardSaturation(o, []int{1, 2, 4}, 3)
	if err != nil {
		return err
	}
	fmt.Printf("%-10s %-10s %s\n", "shards", "clients", "aggregate")
	for _, p := range points {
		fmt.Printf("%-10d %-10d %.1f MB/s\n", p.Shards, p.Clients, p.AggregateMBps)
	}
	return nil
}

func runWarm(o experiments.Options, _ experiments.TraceOptions) error {
	header("Two-phase upload: cold vs warm re-upload (whole-file fast path)")
	points, err := experiments.WarmUpload(o)
	if err != nil {
		return err
	}
	fmt.Printf("%-8s %-12s %-14s %s\n", "phase", "upload", "wire bytes", "whole-file hit")
	for _, p := range points {
		fmt.Printf("%-8s %-12s %-14s %v\n", p.Phase,
			fmt.Sprintf("%.1f MB/s", p.UploadMBps),
			fmt.Sprintf("%.1f MB", float64(p.WireBytes)/(1<<20)), p.WholeFileHit)
	}
	return nil
}

func printRekey(points []experiments.RekeyPoint, xLabel string) {
	fmt.Printf("%-14s %-12s %s\n", xLabel, "lazy", "active")
	for _, p := range points {
		fmt.Printf("%-14d %-12s %.3f s\n", p.X, fmt.Sprintf("%.3f s", p.LazySec), p.ActiveSec)
	}
}

func runFig8a(o experiments.Options, _ experiments.TraceOptions) error {
	header("Figure 8(a): rekeying delay vs total users (20% revoked)")
	points, err := experiments.Fig8aRekeyVsUsers(o, nil)
	if err != nil {
		return err
	}
	printRekey(points, "users")
	return nil
}

func runFig8b(o experiments.Options, _ experiments.TraceOptions) error {
	header("Figure 8(b): rekeying delay vs revocation ratio (500 users)")
	points, err := experiments.Fig8bRekeyVsRatio(o, 0, nil)
	if err != nil {
		return err
	}
	printRekey(points, "ratio %")
	return nil
}

func runFig8c(o experiments.Options, _ experiments.TraceOptions) error {
	header("Figure 8(c): rekeying delay vs file size (500 users, 20% revoked)")
	points, err := experiments.Fig8cRekeyVsFileSize(o, 0, nil)
	if err != nil {
		return err
	}
	printRekey(points, "file MB")
	return nil
}

func runFig9(o experiments.Options, to experiments.TraceOptions) error {
	header("Figure 9: cumulative storage overhead over daily backups (trace-driven)")
	days, err := experiments.Fig9StorageOverhead(o, to)
	if err != nil {
		return err
	}
	const gb = 1 << 30
	fmt.Printf("%-6s %-14s %-14s %-12s %s\n", "day", "logical", "physical", "stub", "saving")
	for i, d := range days {
		// Print a sparse series like the paper's log-scale plot.
		if len(days) > 12 && i%(len(days)/10) != 0 && i != len(days)-1 {
			continue
		}
		fmt.Printf("%-6d %-14s %-14s %-12s %.2f%%\n", d.Day,
			fmt.Sprintf("%.3f GB", float64(d.LogicalBytes)/gb),
			fmt.Sprintf("%.3f GB", float64(d.PhysicalBytes)/gb),
			fmt.Sprintf("%.3f GB", float64(d.StubBytes)/gb),
			d.Saving()*100)
	}
	last := days[len(days)-1]
	fmt.Printf("total saving after %d days: %.2f%% (paper: 98.6%% over 147 days)\n",
		last.Day, last.Saving()*100)
	return nil
}

func runFig10(o experiments.Options, to experiments.TraceOptions) error {
	header("Figure 10: trace-driven upload/download speed over days")
	days, err := experiments.Fig10TraceDriven(o, to)
	if err != nil {
		return err
	}
	fmt.Printf("%-6s %-14s %s\n", "day", "upload", "download")
	for _, d := range days {
		fmt.Printf("%-6d %-14s %.1f MB/s\n", d.Day,
			fmt.Sprintf("%.1f MB/s", d.UploadMBps), d.DownloadMBps)
	}
	return nil
}

func runAblations(o experiments.Options, _ experiments.TraceOptions) error {
	header("Ablation: key-generation request batching")
	batching, err := experiments.AblationBatching(o)
	if err != nil {
		return err
	}
	for _, p := range batching {
		fmt.Printf("batch=%-6d %.2f MB/s\n", p.BatchSize, p.MBps)
	}
	fmt.Println()

	header("Ablation: MLE key cache (second upload of identical data)")
	cache, err := experiments.AblationKeyCache(o)
	if err != nil {
		return err
	}
	for _, p := range cache {
		fmt.Printf("cache=%-6v %.1f MB/s\n", p.CacheEnabled, p.SecondUpMBps)
	}
	fmt.Println()

	header("Ablation: encryption worker threads (8 KB chunks)")
	threads, err := experiments.AblationThreads(o, nil)
	if err != nil {
		return err
	}
	for _, p := range threads {
		fmt.Printf("workers=%-4d %-10s %.0f MB/s\n", p.Workers, p.Scheme, p.MBps)
	}
	fmt.Println()

	header("Ablation: stub size (storage tax and active rekey cost)")
	stubs, err := experiments.AblationStubSize(o, nil)
	if err != nil {
		return err
	}
	for _, p := range stubs {
		fmt.Printf("stub=%-4dB overhead=%.3f%% active-rekey=%.3fs\n",
			p.StubSize, p.StorageOverheadPct, p.ActiveRekeySec)
	}
	return nil
}
