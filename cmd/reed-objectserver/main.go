// Command reed-objectserver runs a minimal S3-style object server over
// a local backend: blobs live at /{namespace}/{name} and respond to
// PUT/GET/HEAD/DELETE, namespace listing at /{namespace}/, and ranged
// GETs via standard Range headers.
//
// It exists so a reed-server can be pointed at an http:// backend DSN
// without standing up real object storage:
//
//	reed-objectserver -listen :9100 -dir /var/lib/reed-objects
//	reed-server -backend http://127.0.0.1:9100
//
// With no -dir, objects live in memory and vanish on exit.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/store"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "reed-objectserver:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		listen = flag.String("listen", ":9100", "address to listen on")
		dir    = flag.String("dir", "", "storage directory (empty = in-memory)")
	)
	flag.Parse()

	var backend store.Backend = store.NewMemory()
	if *dir != "" {
		var err error
		backend, err = store.NewDisk(*dir)
		if err != nil {
			return err
		}
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	srv := &http.Server{
		Handler:           store.NewObjectHandler(backend),
		ReadHeaderTimeout: 10 * time.Second,
	}
	log.Printf("object server listening on %s (dir=%q)", ln.Addr(), *dir)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	select {
	case s := <-sig:
		log.Printf("received %v, shutting down", s)
		if err := srv.Close(); err != nil {
			return err
		}
		return backend.Close()
	case err := <-errc:
		return err
	}
}
