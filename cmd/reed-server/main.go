// Command reed-server runs a REED storage server: server-side
// deduplication of trimmed packages plus blob storage for recipes, stub
// files, and key states.
//
// The paper's deployment runs four of these as data-store servers and a
// fifth as the key-store server; the roles differ only in which requests
// clients send, so there is a single binary.
//
// Usage:
//
//	reed-server -listen :9000 -backend disk:///var/lib/reed
//	reed-server -listen :9000 -backend http://10.0.0.5:9100/reed
//
// The default backend (mem://) lives in memory and vanishes on exit
// (useful for experiments). -dir DIR remains as a deprecated alias for
// -backend disk://DIR. On startup the server recovers its dedup index
// from the last checkpoint plus the write-ahead log, so a kill -9 loses
// no acknowledged data on a durable backend.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"

	reed "repro"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "reed-server:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		listen     = flag.String("listen", ":9000", "address to listen on")
		backendDSN = flag.String("backend", "", "backend DSN: mem://, disk:///path, or http://host/bucket (default mem://)")
		dir        = flag.String("dir", "", "storage directory (deprecated alias for -backend disk://DIR)")
		adminAddr  = flag.String("admin", "", "admin HTTP address for /metrics, /healthz, /debug/pprof (e.g. 127.0.0.1:9090; empty = disabled)")
	)
	flag.Parse()
	ctx := context.Background()

	dsn := *backendDSN
	switch {
	case dsn != "" && *dir != "":
		return fmt.Errorf("-backend and -dir are mutually exclusive")
	case dsn == "" && *dir != "":
		dsn = "disk://" + *dir
	case dsn == "":
		dsn = "mem://"
	}
	backend, err := reed.OpenBackend(ctx, dsn)
	if err != nil {
		return err
	}

	reg := reed.NewMetricsRegistry()
	srv, err := reed.OpenStorageServer(ctx, backend, reed.WithStorageMetrics(reg))
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	log.Printf("storage server listening on %s (backend=%s)", ln.Addr(), dsn)

	if *adminAddr != "" {
		adm, err := reed.StartAdmin(*adminAddr, reg.Snapshot, nil)
		if err != nil {
			return fmt.Errorf("admin endpoint: %w", err)
		}
		defer adm.Close()
		log.Printf("admin endpoint on http://%s/metrics (unauthenticated; keep it loopback or firewalled)", adm.Addr())
	}

	// Flush containers and the dedup index on SIGINT/SIGTERM.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	select {
	case s := <-sig:
		log.Printf("received %v, shutting down", s)
		return srv.Shutdown()
	case err := <-errc:
		return err
	}
}
