package main

import (
	"testing"

	"reedvet/analyzers"
	"reedvet/load"
	"reedvet/runner"
)

// TestRepoIsClean is the meta-test: the full suite over the real
// repository must report nothing. Any new violation in the main
// module fails this test (and `make vet-reed` in CI).
func TestRepoIsClean(t *testing.T) {
	pkgs, err := load.Packages("../..", "./...")
	if err != nil {
		t.Fatalf("load repo: %v", err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("loaded only %d packages; expected the full module", len(pkgs))
	}
	diags, err := runner.Run(pkgs, analyzers.All())
	if err != nil {
		t.Fatalf("run suite: %v", err)
	}
	for _, d := range diags {
		t.Errorf("repo violation: %s", d)
	}
}

// TestAnalyzerRegistry pins the suite composition: exactly the nine
// documented analyzers, resolvable by name.
func TestAnalyzerRegistry(t *testing.T) {
	wantNames := []string{
		"keyhygiene", "ctxrule", "lockguard", "metricname", "errclass",
		"bufpool", "durack", "idemtable", "zeroize",
	}
	all := analyzers.All()
	if len(all) != len(wantNames) {
		t.Fatalf("suite has %d analyzers, want %d", len(all), len(wantNames))
	}
	for i, n := range wantNames {
		if all[i].Name != n {
			t.Errorf("analyzer %d = %q, want %q", i, all[i].Name, n)
		}
		if all[i].Doc == "" {
			t.Errorf("analyzer %q has no Doc", n)
		}
	}
	if analyzers.ByName([]string{"keyhygiene", "errclass"}) == nil {
		t.Error("ByName rejected valid names")
	}
	if analyzers.ByName([]string{"nope"}) != nil {
		t.Error("ByName accepted an unknown name")
	}
}
