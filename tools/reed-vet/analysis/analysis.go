// Package analysis is a deliberately small, dependency-free subset of
// golang.org/x/tools/go/analysis: just enough structure to write
// project-specific analyzers and drive them over type-checked packages.
//
// The container this project builds in has no module proxy access, so
// reed-vet cannot depend on x/tools. The types here mirror the x/tools
// API surface (Analyzer with a Run func over a Pass that carries the
// FileSet, syntax, and go/types information) so that, should x/tools
// become available, the analyzers port by changing imports only.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one named check.
type Analyzer struct {
	// Name is the analyzer's identifier, printed with each diagnostic
	// and usable with the -only flag.
	Name string
	// Doc is a one-paragraph description of what the analyzer enforces
	// and why REED needs it.
	Doc string
	// Run inspects one package and reports findings via pass.Report.
	Run func(*Pass) error
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Report delivers one diagnostic to the driver.
	Report func(Diagnostic)
	// Facts is the analyzer's cross-package fact store for this run.
	// The runner visits packages in dependency order (imports first),
	// so a pass over internal/cluster can read facts that the passes
	// over internal/proto and internal/server exported — the mechanism
	// behind the interprocedural analyzers (idemtable's canonical
	// table, client request summaries). Nil only when a Pass is built
	// by hand outside the runner.
	Facts *Facts
}

// Facts is a per-analyzer, per-run key/value store for summaries that
// must cross package boundaries. Keys are analyzer-chosen strings;
// values are whatever summary type the analyzer defines. A store is
// private to one analyzer: two analyzers never see each other's facts.
type Facts struct {
	m map[string]any
}

// NewFacts returns an empty fact store.
func NewFacts() *Facts { return &Facts{m: make(map[string]any)} }

// Put records a fact under key, replacing any previous value.
func (f *Facts) Put(key string, v any) { f.m[key] = v }

// Get returns the fact stored under key.
func (f *Facts) Get(key string) (any, bool) {
	v, ok := f.m[key]
	return v, ok
}

// Reportf reports a diagnostic at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Position resolves a token.Pos against the pass's FileSet.
func (p *Pass) Position(pos token.Pos) token.Position {
	return p.Fset.Position(pos)
}

// Diagnostic is one finding. The driver fills Analyzer and Position
// when collecting.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string
	Position token.Position
}

// String renders a diagnostic in the canonical file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (%s)",
		d.Position.Filename, d.Position.Line, d.Position.Column, d.Message, d.Analyzer)
}
