// Command reed-vet runs REED's project-specific static-analysis suite
// over a Go module: five analyzers enforcing the invariants the
// compiler cannot see (key hygiene, context discipline, lock
// discipline, metric naming, error classification). See DESIGN.md
// "Static analysis" for the catalog.
//
// Usage:
//
//	reed-vet [-dir DIR] [-only a,b] [patterns ...]
//
// Patterns default to ./... relative to -dir (default "."). Exits 1
// if any diagnostic is reported, 2 on operational errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"reedvet/analyzers"
	"reedvet/load"
	"reedvet/runner"
)

func main() {
	dir := flag.String("dir", ".", "module directory to analyze")
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Parse()

	suite := analyzers.All()
	if *list {
		for _, a := range suite {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *only != "" {
		suite = analyzers.ByName(strings.Split(*only, ","))
		if suite == nil {
			fmt.Fprintf(os.Stderr, "reed-vet: unknown analyzer in -only=%s\n", *only)
			os.Exit(2)
		}
	}

	pkgs, err := load.Packages(*dir, flag.Args()...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "reed-vet:", err)
		os.Exit(2)
	}
	diags, err := runner.Run(pkgs, suite)
	if err != nil {
		fmt.Fprintln(os.Stderr, "reed-vet:", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d.String())
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "reed-vet: %d diagnostic(s) in %d package(s)\n", len(diags), len(pkgs))
		os.Exit(1)
	}
}
