// Command reed-vet runs REED's project-specific static-analysis suite
// over a Go module: nine analyzers enforcing the invariants the
// compiler cannot see (key hygiene, context discipline, lock
// discipline, metric naming, error classification, buffer-pool
// lifecycle, durability acknowledgment ordering, idempotency-table
// agreement, secret zeroization). See DESIGN.md "Static analysis" for
// the catalog.
//
// Usage:
//
//	reed-vet [-dir DIR] [-only a,b] [-sarif FILE] [patterns ...]
//
// Patterns default to ./... relative to -dir (default "."). Exits 1
// if any diagnostic is reported, 2 on operational errors. With -sarif,
// the diagnostics are additionally written to FILE as a SARIF 2.1.0
// log with repo-root-relative URIs ("-" writes to stdout); the log is
// written even when the run is clean, so CI can upload it
// unconditionally.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"reedvet/analyzers"
	"reedvet/load"
	"reedvet/runner"
	"reedvet/sarif"
)

func main() {
	dir := flag.String("dir", ".", "module directory to analyze")
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list analyzers and exit")
	sarifOut := flag.String("sarif", "", "also write a SARIF 2.1.0 log to this file (\"-\" for stdout)")
	flag.Parse()

	suite := analyzers.All()
	if *list {
		for _, a := range suite {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *only != "" {
		suite = analyzers.ByName(strings.Split(*only, ","))
		if suite == nil {
			fmt.Fprintf(os.Stderr, "reed-vet: unknown analyzer in -only=%s\n", *only)
			os.Exit(2)
		}
	}

	pkgs, err := load.Packages(*dir, flag.Args()...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "reed-vet:", err)
		os.Exit(2)
	}
	res, err := runner.RunAll(pkgs, suite, analyzers.Names())
	if err != nil {
		fmt.Fprintln(os.Stderr, "reed-vet:", err)
		os.Exit(2)
	}
	for _, d := range res.Diags {
		fmt.Println(d.String())
	}

	if *sarifOut != "" {
		if err := writeSarif(*sarifOut, *dir, res); err != nil {
			fmt.Fprintln(os.Stderr, "reed-vet: sarif:", err)
			os.Exit(2)
		}
	}

	reportIgnores(res.Ignores)
	if len(res.Diags) > 0 {
		fmt.Fprintf(os.Stderr, "reed-vet: %d diagnostic(s) in %d package(s)\n", len(res.Diags), res.Packages)
		os.Exit(1)
	}
}

// writeSarif renders the run as SARIF rooted at the analyzed module.
func writeSarif(path, root string, res *runner.Result) error {
	var w io.Writer = os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return sarif.Write(w, root, analyzers.All(), res.Diags)
}

// reportIgnores prints the active-ignore census: how many structured
// `//reed-vet:ignore` directives are currently muting each analyzer.
// Silence means no invariant is escape-hatched anywhere.
func reportIgnores(ignores map[string]int) {
	if len(ignores) == 0 {
		return
	}
	names := make([]string, 0, len(ignores))
	total := 0
	for n, c := range ignores {
		names = append(names, n)
		total += c
	}
	sort.Strings(names)
	parts := make([]string, 0, len(names))
	for _, n := range names {
		parts = append(parts, fmt.Sprintf("%s=%d", n, ignores[n]))
	}
	fmt.Fprintf(os.Stderr, "reed-vet: %d active ignore directive(s): %s\n", total, strings.Join(parts, " "))
}
