// Package load turns Go package patterns into parsed, type-checked
// packages without depending on golang.org/x/tools/go/packages.
//
// It shells out to the go tool — `go list -export -deps -json` — which
// both enumerates the packages and compiles export data for every
// dependency (standard library included). Target packages are then
// parsed from source and type-checked with go/types, resolving imports
// through the gc export data via the standard library's go/importer.
// Only the targets get syntax trees; dependencies are loaded from
// export data, which is all the analyzers need.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
)

// Package is one parsed, type-checked target package.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
	// TypeErrors collects soft type-check errors. Analysis proceeds
	// when possible, but the driver treats these as fatal: analyzers
	// must not silently run over half-typed code.
	TypeErrors []error
}

// listedPackage is the subset of `go list -json` output the loader
// needs.
type listedPackage struct {
	ImportPath string
	Name       string
	Dir        string
	Export     string
	GoFiles    []string
	CgoFiles   []string
	Standard   bool
	DepOnly    bool
	Incomplete bool
	Error      *struct{ Err string }
}

// Packages loads every package matched by patterns, rooted at dir.
func Packages(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}

	// Import resolution: every dependency's compiled export data,
	// keyed by import path. Targets are compiled too; their export
	// entries are harmless (the type-checker never asks for a package
	// it is currently checking).
	exports := make(map[string]string, len(listed))
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}

	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("load: no export data for %q", path)
		}
		return os.Open(f)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)

	var pkgs []*Package
	for _, lp := range listed {
		if lp.DepOnly || lp.Standard || lp.Name == "" {
			continue
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("load: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if len(lp.CgoFiles) > 0 {
			return nil, fmt.Errorf("load: %s uses cgo, unsupported", lp.ImportPath)
		}
		if len(lp.GoFiles) == 0 {
			continue
		}
		pkg, err := typecheck(fset, imp, lp)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].ImportPath < pkgs[j].ImportPath })
	return pkgs, nil
}

// goList runs `go list -export -deps -json` and decodes its output
// stream.
func goList(dir string, patterns []string) ([]*listedPackage, error) {
	args := append([]string{"list", "-export", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("load: go list: %v\n%s", err, stderr.String())
	}
	dec := json.NewDecoder(&stdout)
	var out []*listedPackage
	for {
		lp := new(listedPackage)
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("load: decode go list output: %v", err)
		}
		out = append(out, lp)
	}
	return out, nil
}

// typecheck parses lp's files and type-checks them against export
// data.
func typecheck(fset *token.FileSet, imp types.Importer, lp *listedPackage) (*Package, error) {
	files := make([]*ast.File, 0, len(lp.GoFiles))
	for _, name := range lp.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("load: parse %s: %v", name, err)
		}
		files = append(files, f)
	}

	pkg := &Package{
		ImportPath: lp.ImportPath,
		Dir:        lp.Dir,
		Fset:       fset,
		Files:      files,
		Info: &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Implicits:  make(map[ast.Node]types.Object),
			Scopes:     make(map[ast.Node]*types.Scope),
		},
	}
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	tpkg, err := conf.Check(lp.ImportPath, fset, files, pkg.Info)
	if err != nil && len(pkg.TypeErrors) == 0 {
		pkg.TypeErrors = append(pkg.TypeErrors, err)
	}
	pkg.Types = tpkg
	return pkg, nil
}
