package sarif_test

import (
	"bytes"
	"encoding/json"
	"go/token"
	"strings"
	"testing"

	"reedvet/analysis"
	"reedvet/analyzers"
	"reedvet/sarif"
)

func TestWrite(t *testing.T) {
	diags := []analysis.Diagnostic{
		{
			Message:  "secret leaked",
			Analyzer: "keyhygiene",
			Position: token.Position{Filename: "/repo/internal/mle/mle.go", Line: 12, Column: 3},
		},
		{
			Message:  "outside the root",
			Analyzer: "ctxrule",
			Position: token.Position{Filename: "/elsewhere/x.go", Line: 1, Column: 1},
		},
	}
	var buf bytes.Buffer
	if err := sarif.Write(&buf, "/repo", analyzers.All(), diags); err != nil {
		t.Fatalf("Write: %v", err)
	}

	var log struct {
		Schema  string `json:"$schema"`
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				Level     string `json:"level"`
				Message   struct{ Text string }
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine   int `json:"startLine"`
							StartColumn int `json:"startColumn"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if log.Version != "2.1.0" || !strings.Contains(log.Schema, "sarif-schema-2.1.0") {
		t.Errorf("wrong version/schema: %q %q", log.Version, log.Schema)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("got %d runs, want 1", len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "reed-vet" {
		t.Errorf("driver name = %q", run.Tool.Driver.Name)
	}
	// Every registered analyzer plus the directive pseudo-rule.
	if want := len(analyzers.All()) + 1; len(run.Tool.Driver.Rules) != want {
		t.Errorf("got %d rules, want %d", len(run.Tool.Driver.Rules), want)
	}
	if len(run.Results) != 2 {
		t.Fatalf("got %d results, want 2", len(run.Results))
	}
	r0 := run.Results[0]
	if r0.RuleID != "keyhygiene" || r0.Level != "error" {
		t.Errorf("result 0 ruleId/level = %q/%q", r0.RuleID, r0.Level)
	}
	loc := r0.Locations[0].PhysicalLocation
	if loc.ArtifactLocation.URI != "internal/mle/mle.go" {
		t.Errorf("in-root URI = %q, want repo-relative", loc.ArtifactLocation.URI)
	}
	if loc.Region.StartLine != 12 || loc.Region.StartColumn != 3 {
		t.Errorf("region = %+v", loc.Region)
	}
	if uri := run.Results[1].Locations[0].PhysicalLocation.ArtifactLocation.URI; uri != "/elsewhere/x.go" {
		t.Errorf("out-of-root URI = %q, want absolute", uri)
	}
}

func TestWriteCleanRun(t *testing.T) {
	var buf bytes.Buffer
	if err := sarif.Write(&buf, ".", analyzers.All(), nil); err != nil {
		t.Fatalf("Write: %v", err)
	}
	var log map[string]any
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatalf("clean log is not valid JSON: %v", err)
	}
	runs := log["runs"].([]any)
	results := runs[0].(map[string]any)["results"].([]any)
	if len(results) != 0 {
		t.Errorf("clean run has %d results", len(results))
	}
}
