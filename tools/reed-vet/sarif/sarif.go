// Package sarif renders reed-vet diagnostics as a SARIF 2.1.0 log, the
// interchange format CI code-scanning UIs ingest. One run per log, one
// reportingDescriptor per analyzer, one result per diagnostic, with
// artifact URIs rewritten relative to the repository root so the same
// log resolves on any checkout.
package sarif

import (
	"encoding/json"
	"io"
	"path/filepath"
	"sort"
	"strings"

	"reedvet/analysis"
)

const (
	schemaURI = "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json"
	version   = "2.1.0"
)

// Log is the SARIF top-level object.
type Log struct {
	Schema  string `json:"$schema"`
	Version string `json:"version"`
	Runs    []Run  `json:"runs"`
}

type Run struct {
	Tool    Tool     `json:"tool"`
	Results []Result `json:"results"`
}

type Tool struct {
	Driver Driver `json:"driver"`
}

type Driver struct {
	Name           string `json:"name"`
	InformationURI string `json:"informationUri,omitempty"`
	Rules          []Rule `json:"rules"`
}

type Rule struct {
	ID               string  `json:"id"`
	ShortDescription Message `json:"shortDescription"`
}

type Result struct {
	RuleID    string     `json:"ruleId"`
	Level     string     `json:"level"`
	Message   Message    `json:"message"`
	Locations []Location `json:"locations"`
}

type Message struct {
	Text string `json:"text"`
}

type Location struct {
	PhysicalLocation PhysicalLocation `json:"physicalLocation"`
}

type PhysicalLocation struct {
	ArtifactLocation ArtifactLocation `json:"artifactLocation"`
	Region           Region           `json:"region"`
}

type ArtifactLocation struct {
	URI string `json:"uri"`
}

type Region struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// Write renders diags as one SARIF run. root is the repository root;
// diagnostic file paths under it become slash-separated relative URIs.
// Only analyzers that could have produced diagnostics are listed as
// rules, keeping the rule table in sync with the run's suite.
func Write(w io.Writer, root string, suite []*analysis.Analyzer, diags []analysis.Diagnostic) error {
	rules := make([]Rule, 0, len(suite)+1)
	for _, a := range suite {
		rules = append(rules, Rule{ID: a.Name, ShortDescription: Message{Text: a.Doc}})
	}
	// The runner reports malformed/unknown ignore directives under the
	// pseudo-analyzer "directive"; give those results a rule too.
	rules = append(rules, Rule{ID: "directive",
		ShortDescription: Message{Text: "reed-vet:ignore directives must name an analyzer and a reason"}})
	sort.Slice(rules, func(i, j int) bool { return rules[i].ID < rules[j].ID })

	absRoot, err := filepath.Abs(root)
	if err != nil {
		return err
	}
	results := make([]Result, 0, len(diags))
	for _, d := range diags {
		results = append(results, Result{
			RuleID:  d.Analyzer,
			Level:   "error",
			Message: Message{Text: d.Message},
			Locations: []Location{{PhysicalLocation: PhysicalLocation{
				ArtifactLocation: ArtifactLocation{URI: relURI(absRoot, d.Position.Filename)},
				Region:           Region{StartLine: d.Position.Line, StartColumn: d.Position.Column},
			}}},
		})
	}

	log := Log{
		Schema:  schemaURI,
		Version: version,
		Runs: []Run{{
			Tool:    Tool{Driver: Driver{Name: "reed-vet", Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}

// relURI rewrites path relative to absRoot with forward slashes; paths
// outside the root stay absolute (still a valid file URI target).
func relURI(absRoot, path string) string {
	abs, err := filepath.Abs(path)
	if err != nil {
		return filepath.ToSlash(path)
	}
	rel, err := filepath.Rel(absRoot, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(abs)
	}
	return filepath.ToSlash(rel)
}
