// Package runner executes analyzers over loaded packages and collects
// their diagnostics: the shared engine behind the reed-vet CLI, the
// analysistest harness, and the repo meta-test.
package runner

import (
	"fmt"
	"go/token"
	"regexp"
	"sort"
	"strings"

	"reedvet/analysis"
	"reedvet/load"
)

// ignoreMarker introduces a suppression directive. The directive is
// structured — `//reed-vet:ignore <analyzer> — <reason>` — and
// suppresses only the named analyzer's diagnostics on its own line or
// the line directly below. It is the escape hatch for the rare sites
// where an invariant is deliberately broken; the mandatory reason
// documents why. Bare or analyzer-less forms are reported as errors so
// a directive can never silently mute the whole suite.
const ignoreMarker = "//reed-vet:ignore"

// directiveRE parses the structured form: the analyzer name, a dash
// separator (em dash or ASCII hyphens), and a non-empty reason.
var directiveRE = regexp.MustCompile(`^//reed-vet:ignore\s+([A-Za-z][A-Za-z0-9]*)\s+(?:—|--?)\s*(\S.*)$`)

// Result is one full run's outcome.
type Result struct {
	// Diags are the surviving diagnostics, sorted by position.
	// Malformed ignore directives are included as diagnostics from the
	// pseudo-analyzer "directive" so they fail the run like any other
	// finding.
	Diags []analysis.Diagnostic
	// Ignores counts the active ignore directives per analyzer across
	// every analyzed package, so the CLI can report how much of each
	// invariant is escape-hatched.
	Ignores map[string]int
	// Packages is how many target packages were analyzed.
	Packages int
}

// Run applies every analyzer to every package and returns the
// surviving diagnostics sorted by position (compatibility wrapper
// around RunAll).
func Run(pkgs []*load.Package, analyzers []*analysis.Analyzer) ([]analysis.Diagnostic, error) {
	res, err := RunAll(pkgs, analyzers, nil)
	if err != nil {
		return nil, err
	}
	return res.Diags, nil
}

// RunAll applies every analyzer to every package in dependency order
// (imports before importers, so analyzers can pass facts from a
// package to its dependents) and returns the surviving diagnostics
// plus the per-analyzer ignore census. Packages with type errors abort
// the run: analyzing half-typed code yields nonsense.
//
// knownNames is the full analyzer registry used to validate ignore
// directives; a directive may legitimately name an analyzer that is
// not part of this run (e.g. under -only). Nil derives the set from
// the analyzers actually running.
func RunAll(pkgs []*load.Package, analyzers []*analysis.Analyzer, knownNames []string) (*Result, error) {
	pkgs = topoSort(pkgs)
	res := &Result{Ignores: make(map[string]int), Packages: len(pkgs)}

	if knownNames == nil {
		for _, a := range analyzers {
			knownNames = append(knownNames, a.Name)
		}
	}
	known := make(map[string]bool, len(knownNames))
	for _, n := range knownNames {
		known[n] = true
	}

	facts := make(map[*analysis.Analyzer]*analysis.Facts, len(analyzers))
	for _, a := range analyzers {
		facts[a] = analysis.NewFacts()
	}

	for _, pkg := range pkgs {
		if len(pkg.TypeErrors) > 0 {
			return nil, fmt.Errorf("runner: %s has type errors: %v", pkg.ImportPath, pkg.TypeErrors[0])
		}
		ignored, bad := directives(pkg, known)
		res.Diags = append(res.Diags, bad...)
		for _, d := range ignored {
			res.Ignores[d.analyzer]++
		}
		for _, a := range analyzers {
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				Facts:     facts[a],
			}
			name := a.Name
			pass.Report = func(d analysis.Diagnostic) {
				d.Analyzer = name
				d.Position = pkg.Fset.Position(d.Pos)
				for _, dir := range ignored {
					if dir.analyzer == name && dir.file == d.Position.Filename &&
						(dir.line == d.Position.Line || dir.line+1 == d.Position.Line) {
						return
					}
				}
				res.Diags = append(res.Diags, d)
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("runner: %s on %s: %v", a.Name, pkg.ImportPath, err)
			}
		}
	}
	sort.Slice(res.Diags, func(i, j int) bool {
		a, b := res.Diags[i].Position, res.Diags[j].Position
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return res.Diags[i].Analyzer < res.Diags[j].Analyzer
	})
	return res, nil
}

// directive is one parsed, well-formed ignore directive: it suppresses
// diagnostics from exactly one analyzer on its own line and the next.
type directive struct {
	analyzer string
	file     string
	line     int
}

// directives extracts every ignore directive in the package. Malformed
// forms — no analyzer name, an unknown analyzer, or a missing reason —
// come back as diagnostics: they fail the run instead of silently
// suppressing nothing (or worse, everything).
func directives(pkg *load.Package, known map[string]bool) ([]directive, []analysis.Diagnostic) {
	var out []directive
	var bad []analysis.Diagnostic
	report := func(pos token.Pos, format string, args ...any) {
		bad = append(bad, analysis.Diagnostic{
			Pos:      pos,
			Message:  fmt.Sprintf(format, args...),
			Analyzer: "directive",
			Position: pkg.Fset.Position(pos),
		})
	}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignoreMarker) {
					continue
				}
				m := directiveRE.FindStringSubmatch(c.Text)
				if m == nil {
					report(c.Pos(), "malformed ignore directive; use `//reed-vet:ignore <analyzer> — <reason>`")
					continue
				}
				if !known[m[1]] {
					report(c.Pos(), "ignore directive names unknown analyzer %q", m[1])
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				out = append(out, directive{analyzer: m[1], file: pos.Filename, line: pos.Line})
			}
		}
	}
	return out, bad
}

// topoSort orders target packages so that every package follows its
// in-target-set imports. Dependency order is what lets an analyzer
// export facts from internal/proto and consume them in internal/server
// within a single run. Ties (and packages outside the target set)
// resolve by the loader's deterministic import-path order.
func topoSort(pkgs []*load.Package) []*load.Package {
	byPath := make(map[string]*load.Package, len(pkgs))
	for _, p := range pkgs {
		byPath[p.ImportPath] = p
	}
	out := make([]*load.Package, 0, len(pkgs))
	state := make(map[string]int, len(pkgs)) // 0 unvisited, 1 visiting, 2 done
	var visit func(p *load.Package)
	visit = func(p *load.Package) {
		switch state[p.ImportPath] {
		case 1, 2:
			return // import cycles are impossible in valid Go; 1 only recurs on bad input
		}
		state[p.ImportPath] = 1
		if p.Types != nil {
			for _, imp := range p.Types.Imports() {
				if dep, ok := byPath[imp.Path()]; ok {
					visit(dep)
				}
			}
		}
		state[p.ImportPath] = 2
		out = append(out, p)
	}
	for _, p := range pkgs {
		visit(p)
	}
	return out
}
