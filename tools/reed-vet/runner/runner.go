// Package runner executes analyzers over loaded packages and collects
// their diagnostics: the shared engine behind the reed-vet CLI, the
// analysistest harness, and the repo meta-test.
package runner

import (
	"fmt"
	"sort"
	"strings"

	"reedvet/analysis"
	"reedvet/load"
)

// ignoreMarker suppresses any diagnostic reported on its own line or
// the line directly below. It is the escape hatch for the rare sites
// where an invariant is deliberately broken (documented next to the
// marker), e.g. a context.Background() at a lifecycle root.
const ignoreMarker = "//reed-vet:ignore"

// Run applies every analyzer to every package and returns the
// surviving diagnostics sorted by position. Packages with type errors
// abort the run: analyzing half-typed code yields nonsense.
func Run(pkgs []*load.Package, analyzers []*analysis.Analyzer) ([]analysis.Diagnostic, error) {
	var diags []analysis.Diagnostic
	for _, pkg := range pkgs {
		if len(pkg.TypeErrors) > 0 {
			return nil, fmt.Errorf("runner: %s has type errors: %v", pkg.ImportPath, pkg.TypeErrors[0])
		}
		ignored := ignoredLines(pkg)
		for _, a := range analyzers {
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
			}
			name := a.Name
			pass.Report = func(d analysis.Diagnostic) {
				d.Analyzer = name
				d.Position = pkg.Fset.Position(d.Pos)
				if ignored[lineKey{d.Position.Filename, d.Position.Line}] {
					return
				}
				diags = append(diags, d)
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("runner: %s on %s: %v", a.Name, pkg.ImportPath, err)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Position, diags[j].Position
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}

type lineKey struct {
	file string
	line int
}

// ignoredLines maps every line governed by an ignore marker: the
// marker's own line (trailing-comment style) and the next line
// (standalone-comment style).
func ignoredLines(pkg *load.Package) map[lineKey]bool {
	out := make(map[lineKey]bool)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignoreMarker) {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				out[lineKey{pos.Filename, pos.Line}] = true
				out[lineKey{pos.Filename, pos.Line + 1}] = true
			}
		}
	}
	return out
}
