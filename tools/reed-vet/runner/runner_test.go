package runner

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"

	"reedvet/load"
)

// parseFixture builds a minimal load.Package from inline source, just
// enough for the directive scanner (Fset + Files).
func parseFixture(t *testing.T, src string) *load.Package {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fixture.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse fixture: %v", err)
	}
	return &load.Package{ImportPath: "fixture", Fset: fset, Files: []*ast.File{f}}
}

func TestDirectiveParsing(t *testing.T) {
	known := map[string]bool{"ctxrule": true, "lockguard": true}
	cases := []struct {
		name      string
		comment   string
		analyzer  string // parsed analyzer for well-formed directives
		wantError string // substring of the expected diagnostic, "" if none
	}{
		{"em dash", "//reed-vet:ignore ctxrule — lifecycle root", "ctxrule", ""},
		{"double hyphen", "//reed-vet:ignore lockguard -- checked under parent lock", "lockguard", ""},
		{"single hyphen", "//reed-vet:ignore ctxrule - reason here", "ctxrule", ""},
		{"bare", "//reed-vet:ignore", "", "malformed ignore directive"},
		{"analyzer only", "//reed-vet:ignore ctxrule", "", "malformed ignore directive"},
		{"no analyzer", "//reed-vet:ignore — some reason", "", "malformed ignore directive"},
		{"missing reason", "//reed-vet:ignore ctxrule —", "", "malformed ignore directive"},
		{"legacy free text", "//reed-vet:ignore index open owns its lifecycle", "", "malformed ignore directive"},
		{"unknown analyzer", "//reed-vet:ignore nosuch — reason", "", `unknown analyzer "nosuch"`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			pkg := parseFixture(t, "package p\n\n"+tc.comment+"\nvar _ = 0\n")
			dirs, bad := directives(pkg, known)
			if tc.wantError != "" {
				if len(dirs) != 0 || len(bad) != 1 {
					t.Fatalf("got %d directives, %d errors; want 0 directives, 1 error", len(dirs), len(bad))
				}
				if !strings.Contains(bad[0].Message, tc.wantError) {
					t.Errorf("error %q does not mention %q", bad[0].Message, tc.wantError)
				}
				if bad[0].Analyzer != "directive" {
					t.Errorf("error attributed to %q, want pseudo-analyzer \"directive\"", bad[0].Analyzer)
				}
				return
			}
			if len(bad) != 0 {
				t.Fatalf("unexpected directive errors: %v", bad)
			}
			if len(dirs) != 1 || dirs[0].analyzer != tc.analyzer {
				t.Fatalf("got directives %+v, want one for %q", dirs, tc.analyzer)
			}
		})
	}
}

func TestDirectiveLineScope(t *testing.T) {
	src := `package p

//reed-vet:ignore ctxrule — suppresses this line and the next
var _ = 0
`
	pkg := parseFixture(t, src)
	dirs, bad := directives(pkg, map[string]bool{"ctxrule": true})
	if len(bad) != 0 || len(dirs) != 1 {
		t.Fatalf("got %d directives, %d errors", len(dirs), len(bad))
	}
	if dirs[0].line != 3 || dirs[0].file != "fixture.go" {
		t.Errorf("directive anchored at %s:%d, want fixture.go:3", dirs[0].file, dirs[0].line)
	}
}
