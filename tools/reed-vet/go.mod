module reedvet

go 1.22
