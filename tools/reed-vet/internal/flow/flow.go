// Package flow is the lightweight interprocedural dataflow layer under
// the v2 analyzers (bufpool, durack, idemtable, zeroize). It has three
// parts:
//
//   - Index: the package's call graph substrate — a map from function
//     objects to their declarations, so analyzers can walk into callees.
//   - Summarizer: memoized bottom-up computation of per-function
//     transfer summaries ("does this helper Put its buffer parameter?",
//     "does this helper Commit the store?"), with cycle cut-off.
//   - Walker: a generic all-paths traversal of one function body that
//     threads analyzer-defined state through every statement in source
//     order, forking at branches and reporting each path's terminal
//     state. It is the engine behind "on every return path" invariants.
//
// The walker enumerates paths rather than solving a join lattice:
// REED's functions are small, and per-path states make "exactly one
// PutBuffer on all paths" or "Wipe before every return" direct to
// express. A path budget bounds the worst case; when it is exhausted
// the walk stops early, under-approximating (no false positives).
package flow

import (
	"go/ast"
	"go/types"
)

// Index maps every function and method declared in the package to its
// declaration: the substrate for intra-package interprocedural walks.
func Index(files []*ast.File, info *types.Info) map[*types.Func]*ast.FuncDecl {
	idx := make(map[*types.Func]*ast.FuncDecl)
	for _, f := range files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Name == nil {
				continue
			}
			if fn, ok := info.Defs[fd.Name].(*types.Func); ok {
				idx[fn] = fd
			}
		}
	}
	return idx
}

// Summarizer memoizes a bottom-up per-function summary of type T.
// Compute is invoked at most once per function; recursive cycles and
// functions with no visible declaration yield Unknown, so analyzers
// degrade to "assume nothing" rather than diverge or guess.
type Summarizer[T any] struct {
	// Idx resolves functions to declarations (see Index).
	Idx map[*types.Func]*ast.FuncDecl
	// Compute derives the summary from a declaration. It may consult
	// s.Of for callees; cycles resolve to Unknown.
	Compute func(fn *types.Func, decl *ast.FuncDecl) T
	// External resolves summaries for functions without a local
	// declaration — the analyzer's bridge to cross-package facts.
	// Nil, or a false second result, falls back to Unknown.
	External func(fn *types.Func) (T, bool)
	// Unknown is the no-information summary.
	Unknown T

	memo    map[*types.Func]T
	running map[*types.Func]bool
}

// Of returns fn's summary, computing and caching it on first use.
func (s *Summarizer[T]) Of(fn *types.Func) T {
	if fn == nil {
		return s.Unknown
	}
	if s.memo == nil {
		s.memo = make(map[*types.Func]T)
		s.running = make(map[*types.Func]bool)
	}
	if v, ok := s.memo[fn]; ok {
		return v
	}
	decl, ok := s.Idx[fn]
	if !ok || decl.Body == nil {
		if s.External != nil {
			if v, ok := s.External(fn); ok {
				s.memo[fn] = v
				return v
			}
		}
		s.memo[fn] = s.Unknown
		return s.Unknown
	}
	if s.running[fn] {
		return s.Unknown // recursion: cut the cycle conservatively
	}
	s.running[fn] = true
	v := s.Compute(fn, decl)
	delete(s.running, fn)
	s.memo[fn] = v
	return v
}

// DefaultMaxPaths bounds path enumeration per function body. REED
// functions stay far under this; pathological nests stop early.
const DefaultMaxPaths = 4096

// Walker enumerates every control-flow path through a function body in
// source order, threading a state S through analyzer callbacks.
//
// Semantics, chosen to keep "must happen before every return" checks
// free of false positives:
//
//   - Loops run their body at most once per path (plus the
//     zero-iteration path when the loop can be skipped); violations
//     inside a body are still seen, repeated iterations add nothing
//     for the invariants checked here.
//   - break/continue/goto/fallthrough and panic abandon the path
//     without calling End: the walker under-approximates rather than
//     report a "missing cleanup" on a path that in truth rejoins.
//   - Conditions and other control expressions are surfaced to the
//     Stmt hook wrapped in a synthetic ast.ExprStmt, so hooks observe
//     every evaluated expression without AST special cases.
type Walker[S any] struct {
	// Clone deep-copies a state at a control-flow fork.
	Clone func(S) S
	// Stmt processes one straight-line statement (assignments, calls,
	// defer, go, synthetic condition wrappers, and the return
	// statement itself just before End) and yields the successor
	// state.
	Stmt func(S, ast.Stmt) S
	// End receives each path's terminal state: ret is the terminating
	// return statement, or nil when control falls off the end of the
	// body.
	End func(S, *ast.ReturnStmt)
	// MaxPaths overrides DefaultMaxPaths when positive.
	MaxPaths int

	budget int
}

// Walk enumerates the paths of body starting from state init.
func (w *Walker[S]) Walk(body *ast.BlockStmt, init S) {
	if body == nil {
		return
	}
	w.budget = w.MaxPaths
	if w.budget <= 0 {
		w.budget = DefaultMaxPaths
	}
	w.list(body.List, init, func(s S) {
		if w.End != nil {
			w.End(s, nil)
		}
	})
}

func (w *Walker[S]) list(stmts []ast.Stmt, s S, k func(S)) {
	if w.budget <= 0 {
		return
	}
	if len(stmts) == 0 {
		k(s)
		return
	}
	w.stmt(stmts[0], s, func(s2 S) { w.list(stmts[1:], s2, k) })
}

// cond surfaces a control expression to the Stmt hook via a synthetic
// wrapper, preserving positions.
func (w *Walker[S]) cond(s S, x ast.Expr) S {
	if x == nil {
		return s
	}
	return w.Stmt(s, &ast.ExprStmt{X: x})
}

func (w *Walker[S]) stmt(st ast.Stmt, s S, k func(S)) {
	if w.budget <= 0 {
		return
	}
	switch st := st.(type) {
	case *ast.BlockStmt:
		w.list(st.List, s, k)

	case *ast.LabeledStmt:
		w.stmt(st.Stmt, s, k)

	case *ast.IfStmt:
		if st.Init != nil {
			s = w.Stmt(s, st.Init)
		}
		s = w.cond(s, st.Cond)
		w.budget--
		then := w.Clone(s)
		w.list(st.Body.List, then, k)
		if st.Else != nil {
			w.stmt(st.Else, w.Clone(s), k)
		} else {
			k(s)
		}

	case *ast.ForStmt:
		if st.Init != nil {
			s = w.Stmt(s, st.Init)
		}
		s = w.cond(s, st.Cond)
		w.budget--
		once := w.Clone(s)
		w.list(st.Body.List, once, func(s2 S) {
			if st.Post != nil {
				s2 = w.Stmt(s2, st.Post)
			}
			if st.Cond == nil {
				return // `for {}`: falls out only via break, which abandons
			}
			k(s2)
		})
		if st.Cond != nil {
			k(s) // zero iterations
		}

	case *ast.RangeStmt:
		s = w.cond(s, st.X)
		w.budget--
		once := w.Clone(s)
		w.list(st.Body.List, once, k)
		k(s) // empty range

	case *ast.SwitchStmt:
		if st.Init != nil {
			s = w.Stmt(s, st.Init)
		}
		s = w.cond(s, st.Tag)
		w.switchBody(st.Body, s, k)

	case *ast.TypeSwitchStmt:
		if st.Init != nil {
			s = w.Stmt(s, st.Init)
		}
		s = w.Stmt(s, st.Assign)
		w.switchBody(st.Body, s, k)

	case *ast.SelectStmt:
		for _, c := range st.Body.List {
			cc := c.(*ast.CommClause)
			w.budget--
			branch := w.Clone(s)
			if cc.Comm != nil {
				branch = w.Stmt(branch, cc.Comm)
			}
			w.list(cc.Body, branch, k)
		}
		if len(st.Body.List) == 0 {
			k(s)
		}

	case *ast.ReturnStmt:
		s = w.Stmt(s, st)
		if w.End != nil {
			w.End(s, st)
		}

	case *ast.BranchStmt:
		// break/continue/goto/fallthrough: abandon the path rather
		// than claim it terminates here.

	case *ast.ExprStmt:
		if isPanic(st.X) {
			w.Stmt(s, st)
			return // panic abandons the path; defers still ran, hooks model that
		}
		k(w.Stmt(s, st))

	default:
		// Straight-line statement: assign, decl, defer, go, send,
		// inc/dec, empty.
		k(w.Stmt(s, st))
	}
}

// switchBody forks one path per case clause, plus a fall-through path
// when no default exists.
func (w *Walker[S]) switchBody(body *ast.BlockStmt, s S, k func(S)) {
	hasDefault := false
	for _, c := range body.List {
		cc := c.(*ast.CaseClause)
		if cc.List == nil {
			hasDefault = true
		}
		w.budget--
		branch := w.Clone(s)
		for _, x := range cc.List {
			branch = w.cond(branch, x)
		}
		w.list(cc.Body, branch, k)
	}
	if !hasDefault {
		k(s)
	}
}

// isPanic reports whether x is a call to the panic builtin.
func isPanic(x ast.Expr) bool {
	call, ok := ast.Unparen(x).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "panic" && id.Obj == nil
}

// ReceiverOf returns the named receiver type of a method, unwrapping
// pointers, or nil for plain functions.
func ReceiverOf(fn *types.Func) *types.Named {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

// ParamIndex returns which parameter of fn's signature the object v
// is, or -1 when v is not a parameter.
func ParamIndex(fn *types.Func, v *types.Var) int {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return -1
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if sig.Params().At(i) == v {
			return i
		}
	}
	return -1
}
