package flow

import (
	"go/ast"
	"go/parser"
	"go/token"
	"sort"
	"strings"
	"testing"
)

// traceWalk walks the body of the first function in src, recording for
// each path the sequence of top-level call names it passed through,
// suffixed with "!" for an explicit return or "." for fall-off.
func traceWalk(t *testing.T, src string) []string {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "w.go", "package p\n"+src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	var body *ast.BlockStmt
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok {
			body = fd.Body
			break
		}
	}
	var paths []string
	w := &Walker[[]string]{
		Clone: func(s []string) []string { return append([]string(nil), s...) },
		Stmt: func(s []string, st ast.Stmt) []string {
			ast.Inspect(st, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok {
						s = append(s, id.Name)
					}
				}
				return true
			})
			return s
		},
		End: func(s []string, ret *ast.ReturnStmt) {
			mark := "."
			if ret != nil {
				mark = "!"
			}
			paths = append(paths, strings.Join(s, " ")+mark)
		},
	}
	w.Walk(body, nil)
	sort.Strings(paths)
	return paths
}

func TestWalkerIfForks(t *testing.T) {
	got := traceWalk(t, `
func f(c bool) {
	a()
	if c {
		b()
		return
	}
	d()
}`)
	want := []string{"a b!", "a d."}
	if strings.Join(got, "|") != strings.Join(want, "|") {
		t.Errorf("paths = %v, want %v", got, want)
	}
}

func TestWalkerCondCallsSeen(t *testing.T) {
	got := traceWalk(t, `
func f() {
	if check() {
		return
	}
}`)
	want := []string{"check!", "check."}
	if strings.Join(got, "|") != strings.Join(want, "|") {
		t.Errorf("paths = %v, want %v", got, want)
	}
}

func TestWalkerLoopZeroAndOnce(t *testing.T) {
	got := traceWalk(t, `
func f(n int) {
	for i := 0; i < n; i++ {
		body()
	}
	after()
}`)
	want := []string{"after.", "body after."}
	sort.Strings(want)
	if strings.Join(got, "|") != strings.Join(want, "|") {
		t.Errorf("paths = %v, want %v", got, want)
	}
}

func TestWalkerBreakAbandons(t *testing.T) {
	// The break path must not reach End: otherwise every cleanup-after-
	// loop pattern would be a false positive.
	got := traceWalk(t, `
func f(xs []int) {
	for range xs {
		if bad() {
			break
		}
		body()
	}
	after()
}`)
	for _, p := range got {
		if strings.Contains(p, "bad") && !strings.Contains(p, "after") {
			t.Errorf("break path leaked to End: %q", p)
		}
	}
	joined := strings.Join(got, "|")
	if !strings.Contains(joined, "after.") {
		t.Errorf("no path reached after(): %v", got)
	}
}

func TestWalkerSwitchNoDefaultFallsThrough(t *testing.T) {
	got := traceWalk(t, `
func f(n int) {
	switch tag() {
	case 1:
		one()
	case 2:
		two()
	}
	after()
}`)
	want := []string{"tag after.", "tag one after.", "tag two after."}
	sort.Strings(want)
	if strings.Join(got, "|") != strings.Join(want, "|") {
		t.Errorf("paths = %v, want %v", got, want)
	}
}

func TestWalkerPanicAbandons(t *testing.T) {
	got := traceWalk(t, `
func f(c bool) {
	a()
	if c {
		panic("boom")
	}
	after()
}`)
	want := []string{"a after."}
	if strings.Join(got, "|") != strings.Join(want, "|") {
		t.Errorf("paths = %v, want %v", got, want)
	}
}

func TestWalkerBudgetStopsExplosion(t *testing.T) {
	var b strings.Builder
	b.WriteString("func f(c bool) {\n")
	for i := 0; i < 40; i++ {
		b.WriteString("\tif c {\n\t\ta()\n\t}\n")
	}
	b.WriteString("}")
	// 2^40 paths uncapped; the budget must cut enumeration off.
	got := traceWalk(t, b.String())
	if len(got) > DefaultMaxPaths {
		t.Fatalf("budget failed: %d paths enumerated", len(got))
	}
}
