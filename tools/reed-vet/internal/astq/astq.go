// Package astq holds the small type- and AST-query helpers the
// analyzers share: resolving a call's callee, matching package paths
// by suffix, and unwrapping expressions.
package astq

import (
	"go/ast"
	"go/types"
	"strings"
)

// PathMatches reports whether pkgPath ends with one of the given
// path suffixes at a path-segment boundary. Suffix matching (rather
// than exact matching) lets the same analyzer govern both the real
// module ("repro/internal/client") and the test fixture module
// ("reedvet.fixtures/internal/client").
func PathMatches(pkgPath string, suffixes ...string) bool {
	for _, s := range suffixes {
		if pkgPath == s || strings.HasSuffix(pkgPath, "/"+s) {
			return true
		}
	}
	return false
}

// Callee resolves the function or method a call invokes, or nil for
// indirect calls (function values, method values via interfaces still
// resolve to the interface method).
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fn
	case *ast.SelectorExpr:
		id = fn.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// IsPkgFunc reports whether the call invokes a function or method
// named fname declared in a package whose path matches pkgSuffix
// (PathMatches semantics; exact stdlib paths like "fmt" also work).
func IsPkgFunc(info *types.Info, call *ast.CallExpr, pkgSuffix string, fnames ...string) bool {
	fn := Callee(info, call)
	if fn == nil || fn.Pkg() == nil || !PathMatches(fn.Pkg().Path(), pkgSuffix) {
		return false
	}
	for _, n := range fnames {
		if fn.Name() == n {
			return true
		}
	}
	return false
}

// NamedType unwraps pointers and aliases and returns the named type
// of t, or nil.
func NamedType(t types.Type) *types.Named {
	if ptr, ok := types.Unalias(t).(*types.Pointer); ok {
		t = ptr.Elem()
	}
	n, _ := types.Unalias(t).(*types.Named)
	return n
}

// IsNamed reports whether t (possibly behind a pointer) is the named
// type tname declared in a package matching pkgSuffix.
func IsNamed(t types.Type, pkgSuffix, tname string) bool {
	n := NamedType(t)
	if n == nil || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Name() == tname && PathMatches(n.Obj().Pkg().Path(), pkgSuffix)
}

// ReceiverType returns the type of the receiver expression of a
// method call's selector, or nil.
func ReceiverType(info *types.Info, call *ast.CallExpr) types.Type {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	tv, ok := info.Types[sel.X]
	if !ok {
		return nil
	}
	return tv.Type
}

// IsNilLiteral reports whether e is the predeclared nil.
func IsNilLiteral(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[ast.Unparen(e)]
	return ok && tv.IsNil()
}
