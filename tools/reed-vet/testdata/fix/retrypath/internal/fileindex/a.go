// Package fileindex is an errclass fixture modelling the whole-file
// index. Its lookups ride the Redialer's retryable RPC path, so
// flattening an error with %v severs the errors.Is chain the retry
// logic consults. Its import path suffix (internal/fileindex) puts it
// in errclass's scope; it lives under retrypath/ so the ctxrule
// fixture at internal/fileindex keeps its own want-set.
package fileindex

import (
	"fmt"

	"reedvet.fixtures/internal/retry"
)

func decodeErr(off int, err error) error {
	return fmt.Errorf("fileindex: record at %d: %v", off, err) // want `error formatted with %v`
}

func decodeWrapped(off int, err error) error {
	return fmt.Errorf("fileindex: record at %d: %w", off, err)
}

func snapshotCorrupt(err error) error {
	return retry.Permanent(fmt.Errorf("fileindex: snapshot corrupt: %v", err))
}
