module reedvet.fixtures

go 1.22
