// Package proto is the durack fixture's wire stand-in.
package proto

type MsgType uint8

const (
	MsgError MsgType = iota
	MsgPutChunksResp
	MsgGetChunksResp
	MsgRegisterFileResp
)
