// Package fileindex is the durack fixture's WAL-backed whole-file
// index.
package fileindex

import "context"

type Index struct{ n int }

func (ix *Index) Register(ctx context.Context, key [32]byte, name string) error {
	ix.n++
	return ctx.Err()
}

func (ix *Index) Lookup(key [32]byte) (string, bool) { return "", false }

func (ix *Index) Commit(ctx context.Context) error { return ctx.Err() }
