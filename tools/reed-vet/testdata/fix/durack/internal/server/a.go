// Package server is the durack fixture: handlers that do and do not
// seal their WAL mutations before acking.
package server

import (
	"context"

	"reedvet.fixtures/durack/internal/dedup"
	"reedvet.fixtures/durack/internal/fileindex"
	"reedvet.fixtures/durack/internal/proto"
)

type Server struct {
	chunks *dedup.Store
	files  *fileindex.Index
}

// putChunks is the canonical good shape: mutate, commit, then ack.
func (s *Server) putChunks(ctx context.Context, payload []byte) (proto.MsgType, []byte) {
	var fp [16]byte
	if _, err := s.chunks.Put(ctx, fp, payload); err != nil {
		return proto.MsgError, nil
	}
	if err := s.chunks.Commit(ctx); err != nil {
		return proto.MsgError, nil
	}
	return proto.MsgPutChunksResp, nil
}

// getChunks never mutates, so no commit is required.
func (s *Server) getChunks(ctx context.Context, payload []byte) (proto.MsgType, []byte) {
	var fp [16]byte
	data, err := s.chunks.Get(ctx, fp)
	if err != nil {
		return proto.MsgError, nil
	}
	return proto.MsgGetChunksResp, data
}

// putNoCommit acks a mutation that was never sealed.
func (s *Server) putNoCommit(ctx context.Context, payload []byte) (proto.MsgType, []byte) {
	var fp [16]byte
	if _, err := s.chunks.Put(ctx, fp, payload); err != nil {
		return proto.MsgError, nil
	}
	return proto.MsgPutChunksResp, nil // want `replies success before Store.Commit`
}

// commitOneBranch seals only the fast path; the other ack is bare.
func (s *Server) commitOneBranch(ctx context.Context, payload []byte) (proto.MsgType, []byte) {
	var fp [16]byte
	dup, err := s.chunks.Put(ctx, fp, payload)
	if err != nil {
		return proto.MsgError, nil
	}
	if dup {
		if err := s.chunks.Commit(ctx); err != nil {
			return proto.MsgError, nil
		}
		return proto.MsgPutChunksResp, nil
	}
	return proto.MsgPutChunksResp, nil // want `replies success before Store.Commit`
}

// registerFile commits the other WAL-backed store.
func (s *Server) registerFile(ctx context.Context, payload []byte) (proto.MsgType, []byte) {
	var key [32]byte
	if err := s.files.Register(ctx, key, string(payload)); err != nil {
		return proto.MsgError, nil
	}
	if err := s.files.Commit(ctx); err != nil {
		return proto.MsgError, nil
	}
	return proto.MsgRegisterFileResp, nil
}

// registerNoCommit leaves the file index unsealed.
func (s *Server) registerNoCommit(ctx context.Context, payload []byte) (proto.MsgType, []byte) {
	var key [32]byte
	if err := s.files.Register(ctx, key, string(payload)); err != nil {
		return proto.MsgError, nil
	}
	return proto.MsgRegisterFileResp, nil // want `replies success before Index.Commit`
}

// viaHelper mutates and seals through helpers: the summaries carry
// the dirty/commit effects back into the handler walk.
func (s *Server) viaHelper(ctx context.Context, payload []byte) (proto.MsgType, []byte) {
	if err := s.stage(ctx, payload); err != nil {
		return proto.MsgError, nil
	}
	if err := s.seal(ctx); err != nil {
		return proto.MsgError, nil
	}
	return proto.MsgPutChunksResp, nil
}

// viaHelperNoSeal mutates through a helper and forgets the seal.
func (s *Server) viaHelperNoSeal(ctx context.Context, payload []byte) (proto.MsgType, []byte) {
	if err := s.stage(ctx, payload); err != nil {
		return proto.MsgError, nil
	}
	return proto.MsgPutChunksResp, nil // want `replies success before Store.Commit`
}

// sealedHelper both mutates and commits: callers are clean.
func (s *Server) viaSealedHelper(ctx context.Context, payload []byte) (proto.MsgType, []byte) {
	if err := s.stageAndSeal(ctx, payload); err != nil {
		return proto.MsgError, nil
	}
	return proto.MsgPutChunksResp, nil
}

func (s *Server) stage(ctx context.Context, payload []byte) error {
	var fp [16]byte
	_, err := s.chunks.Put(ctx, fp, payload)
	return err
}

func (s *Server) seal(ctx context.Context) error { return s.chunks.Commit(ctx) }

func (s *Server) stageAndSeal(ctx context.Context, payload []byte) error {
	if err := s.stage(ctx, payload); err != nil {
		return err
	}
	return s.chunks.Commit(ctx)
}
