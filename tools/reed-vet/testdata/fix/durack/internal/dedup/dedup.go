// Package dedup is the durack fixture's WAL-backed chunk store: it
// has a Commit method, so mutations must be sealed before a handler
// acks.
package dedup

import "context"

type Store struct{ n int }

func (s *Store) Put(ctx context.Context, fp [16]byte, data []byte) (bool, error) {
	s.n++
	return false, ctx.Err()
}

func (s *Store) Deref(ctx context.Context, fp [16]byte) (int, error) {
	s.n--
	return s.n, ctx.Err()
}

func (s *Store) Get(ctx context.Context, fp [16]byte) ([]byte, error) {
	return nil, ctx.Err()
}

func (s *Store) Commit(ctx context.Context) error { return ctx.Err() }
