// Package metricuser is the metricname fixture: it registers metrics
// against the stub registry with both conforming and violating names.
package metricuser

import "reedvet.fixtures/internal/metrics"

func register(r *metrics.Registry) {
	r.Counter("requests_total")
	r.Counter("RequestsTotal")     // want `not snake_case`
	r.Counter("requests_now")      // want `lacks a unit suffix`
	r.Counter("bad__double_total") // want `not snake_case`

	r.Gauge("queue_depth")
	r.Gauge("pipeline_bytes_in_flight")
	r.Gauge("queue_items") // want `lacks a unit suffix`

	r.Histogram("rpc_latency")
	r.Histogram("rpc_time") // want `lacks a unit suffix`

	r.SetCounterFunc("cache_hits", nil)
	r.SetCounterFunc("cache_hits", nil) // want `already registered`
	r.SetGaugeFunc("dedup_savings_ratio", nil)

	r.Counter("boot_total")
	r.SetCounterFunc("boot_total", nil) // want `already registered`

	// Two plain instruments sharing a family is documented
	// get-or-create sharing, not a duplicate.
	r.Counter("shared_total")
	r.Counter("shared_total")

	metrics.NewOpSet(r, "rpc", nil)
	metrics.NewOpSet(r, "RPC", nil) // want `not snake_case`
	_ = metrics.Label("rpc_latency", "op", "Get")

	const derived = "derived_chunk_bytes"
	r.Counter(derived) // constants fold: still checked (and passes)

	dynamic := pick()
	r.Counter(dynamic) // non-constant names are out of scope
}

func pick() string { return "x" }
