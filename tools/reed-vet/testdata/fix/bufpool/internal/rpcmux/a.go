// Package rpcmux is the bufpool fixture: positive and negative cases
// for the pooled-buffer ownership protocol.
package rpcmux

import (
	"io"

	"reedvet.fixtures/bufpool/internal/proto"
)

// writeFrame is the canonical good shape: get, derive, use, put on
// every path.
func writeFrame(w io.Writer, payload []byte) error {
	buf := proto.GetBuffer()
	assembled, err := proto.AppendFrame((*buf)[:0], payload)
	if err == nil {
		*buf = assembled
		_, err = w.Write(assembled)
	}
	proto.PutBuffer(buf)
	return err
}

// deferredPut is the other good shape: ownership released by defer.
func deferredPut(payload []byte) {
	buf := proto.GetBuffer()
	defer proto.PutBuffer(buf)
	*buf = append((*buf)[:0], payload...)
}

// putBothBranches puts exactly once on each path.
func putBothBranches(c bool) {
	buf := proto.GetBuffer()
	if c {
		proto.PutBuffer(buf)
	} else {
		proto.PutBuffer(buf)
	}
}

// perIteration scopes ownership to one loop body.
func perIteration(w io.Writer, msgs [][]byte) {
	for _, m := range msgs {
		buf := proto.GetBuffer()
		*buf = append((*buf)[:0], m...)
		w.Write(*buf)
		proto.PutBuffer(buf)
	}
}

// leakOnError forgets the buffer on the early-return path.
func leakOnError(w io.Writer, payload []byte) error {
	buf := proto.GetBuffer() // want `not returned by PutBuffer on every path`
	assembled, err := proto.AppendFrame((*buf)[:0], payload)
	if err != nil {
		return err
	}
	_, err = w.Write(assembled)
	proto.PutBuffer(buf)
	return err
}

// doublePut returns the same buffer twice.
func doublePut() {
	buf := proto.GetBuffer()
	proto.PutBuffer(buf)
	proto.PutBuffer(buf) // want `double PutBuffer`
}

// useAfterPut touches recycled memory.
func useAfterPut(w io.Writer) {
	buf := proto.GetBuffer()
	*buf = append((*buf)[:0], 1, 2, 3)
	proto.PutBuffer(buf)
	w.Write(*buf) // want `use of pooled buffer buf after PutBuffer`
}

// deferredDouble puts explicitly and again via the deferred put.
func deferredDouble() {
	buf := proto.GetBuffer()
	defer proto.PutBuffer(buf)
	proto.PutBuffer(buf) // want `again by a deferred PutBuffer`
}

// returnRecycled hands back memory the deferred put is about to
// recycle.
func returnRecycled() []byte {
	buf := proto.GetBuffer()
	defer proto.PutBuffer(buf)
	out := append((*buf)[:0], 42)
	return out // want `returning data backed by pooled buffer`
}

// viaHelper releases through a helper: the summary says release puts
// its parameter on all paths, so this is clean.
func viaHelper(payload []byte) {
	buf := proto.GetBuffer()
	*buf = append((*buf)[:0], payload...)
	release(buf)
}

func release(b *[]byte) {
	proto.PutBuffer(b)
}

// viaAcquire owns the buffer a helper minted and returns it.
func viaAcquire() {
	buf := acquire()
	proto.PutBuffer(buf)
}

func acquire() *[]byte {
	return proto.GetBuffer()
}

// leakFromAcquire owns the helper-minted buffer but never returns it.
func leakFromAcquire() {
	buf := acquire() // want `not returned by PutBuffer on every path`
	_ = buf
}

// holder demonstrates ownership transfer: storing the pointer moves
// responsibility to the holder, so the function itself is clean.
type holder struct{ buf *[]byte }

func escapes() *holder {
	buf := proto.GetBuffer()
	return &holder{buf: buf}
}
