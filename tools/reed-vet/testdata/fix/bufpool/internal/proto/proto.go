// Package proto is the bufpool fixture's stand-in for the real wire
// package: the pool API plus one append-style encoder.
package proto

var pool [][]byte

// GetBuffer hands out a scratch buffer the caller owns.
func GetBuffer() *[]byte {
	b := make([]byte, 0, 64)
	return &b
}

// PutBuffer returns a buffer to the pool.
func PutBuffer(b *[]byte) {
	if b == nil {
		return
	}
	pool = append(pool, (*b)[:0])
}

// AppendFrame appends an encoded frame to dst, returning the grown
// slice (append-style: the result shares dst's backing array).
func AppendFrame(dst []byte, payload []byte) ([]byte, error) {
	return append(dst, payload...), nil
}
