// Package client is a lockguard fixture modelling the CAONT worker
// pool: jobs are handed to workers over a channel, so a submit while
// holding a pipeline lock can deadlock against a worker that needs the
// same lock. Its import path suffix (internal/client) puts it in
// lockguard's scope; it lives under pipe/ so the ctxrule fixture at
// internal/client keeps its own want-set.
package client

import (
	"context"
	"sync"
	"time"
)

// workPool mirrors the real client pool: a jobs channel drained by a
// fixed worker set, and a stop channel for shutdown.
type workPool struct {
	jobs chan func()
	stop chan struct{}
}

type pipeline struct {
	mu      sync.Mutex
	pending []func()
	pool    *workPool
}

// submitUnderLockBad is the deadlock shape the rule exists for: every
// worker could be blocked on p.mu inside a running job, so the send
// never completes and the lock is never released.
func (p *pipeline) submitUnderLockBad(job func()) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.pending = append(p.pending, job)
	p.pool.jobs <- job // want `channel send while holding p.mu`
}

// selectSubmitUnderLockBad: a select does not make the send safe — the
// stop arm only helps at shutdown, not against a saturated pool.
func (p *pipeline) selectSubmitUnderLockBad(job func()) {
	p.mu.Lock()
	defer p.mu.Unlock()
	select {
	case p.pool.jobs <- job: // want `channel send while holding p.mu`
	case <-p.pool.stop:
	}
}

// stageThenSubmitOK is the required discipline: mutate shared pipeline
// state under the lock, release it, then hand the job to the pool.
func (p *pipeline) stageThenSubmitOK(job func()) {
	p.mu.Lock()
	p.pending = append(p.pending, job)
	p.mu.Unlock()
	select {
	case p.pool.jobs <- job:
	case <-p.pool.stop:
		go job()
	}
}

// spawnUnderLockOK: a goroutine launched under the lock does not itself
// hold it, so its send is fine.
func (p *pipeline) spawnUnderLockOK(job func()) {
	p.mu.Lock()
	defer p.mu.Unlock()
	go func() { p.pool.jobs <- job }()
}

// waitUnderLockBad: blocking on a context-taking call (a key fetch,
// say) inside the critical section stalls every worker needing p.mu.
func (p *pipeline) waitUnderLockBad(ctx context.Context) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.fetchKeys(ctx) // want `context-taking`
}

// drainOK: receiving results needs no lock at all here.
func (p *pipeline) drainOK(results chan int) int {
	total := 0
	for v := range results {
		p.mu.Lock()
		total += v
		p.mu.Unlock()
	}
	return total
}

// sleepUnderLockBad keeps the backoff-under-lock case covered in the
// pipeline package too.
func (p *pipeline) sleepUnderLockBad() {
	p.mu.Lock()
	time.Sleep(time.Millisecond) // want `time.Sleep while holding p.mu`
	p.mu.Unlock()
}

func (p *pipeline) fetchKeys(ctx context.Context) { _ = ctx }
