// Package plainlib sits outside every scoped path: ctxrule, lockguard,
// and errclass must stay silent here.
package plainlib

import (
	"context"
	"fmt"
	"sync"
)

var mu sync.Mutex

func Background() context.Context { return context.Background() }

func Wrap(err error) error { return fmt.Errorf("plainlib: %v", err) }

func Send(ch chan int) {
	mu.Lock()
	defer mu.Unlock()
	ch <- 1
}
