// Package proto is the idemtable fixture with a malformed canonical
// table: a request classified twice (via a second switch — duplicate
// cases in one switch would not compile), a response type in the
// table, and a request never classified.
package proto

type MsgType uint8

const (
	MsgError MsgType = iota
	MsgPutChunksReq
	MsgPutChunksResp
	MsgGetChunksReq
	MsgGetChunksResp
	MsgDerefChunksReq
	MsgDerefChunksResp
)

func Idempotent(typ MsgType) bool { // want `MsgDerefChunksReq has no idempotency classification`
	switch typ {
	case MsgGetChunksReq, MsgPutChunksResp: // want `MsgPutChunksResp is not a request type`
		return true
	case MsgPutChunksReq:
		return false
	}
	switch typ {
	case MsgGetChunksReq: // want `MsgGetChunksReq is classified twice`
		return true
	}
	return false
}
