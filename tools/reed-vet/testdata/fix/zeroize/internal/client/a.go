// Package client is the zeroize fixture: //reed:secret sources must
// reach core.Wipe on every return path, directly, via defer, or
// through a helper that wipes its parameter on all of its own paths.
package client

import (
	"errors"

	"reedvet.fixtures/zeroize/internal/core"
)

type keyState struct{ v [32]byte }

func (s *keyState) Key() [32]byte { return s.v }

func deriveKey() [32]byte { return [32]byte{} }

func mayFail() error { return errors.New("boom") }

type vault struct{ stored [32]byte }

// deferredWipe is the canonical good shape: defer pins the wipe to
// every subsequent exit, including the early error return.
func deferredWipe(s *keyState) error {
	k := s.Key() //reed:secret — transient file-key copy
	defer core.Wipe(k[:])
	if err := mayFail(); err != nil {
		return err
	}
	return nil
}

// wipeBothBranches wipes explicitly on each return path.
func wipeBothBranches(s *keyState) error {
	k := s.Key() //reed:secret — transient file-key copy
	if err := mayFail(); err != nil {
		core.Wipe(k[:])
		return err
	}
	core.Wipe(k[:])
	return nil
}

// destroy wipes its parameter on every path: callers may discharge a
// secret through it.
func destroy(k []byte) {
	core.Wipe(k)
}

// viaHelper discharges the secret through destroy's summary.
func viaHelper(s *keyState) {
	k := s.Key() //reed:secret — transient file-key copy
	destroy(k[:])
}

// viaDeferredHelper discharges through a deferred wiping helper.
func viaDeferredHelper(s *keyState) error {
	k := s.Key() //reed:secret — transient file-key copy
	defer destroy(k[:])
	if err := mayFail(); err != nil {
		return err
	}
	return nil
}

// returned hands the key to the caller: ownership moves with it.
func returned(s *keyState) [32]byte {
	k := s.Key() //reed:secret — caller takes ownership
	return k
}

// storedInField hands the key to the vault, which owns erasure now.
func storedInField(s *keyState, v *vault) {
	k := s.Key() //reed:secret — vault takes ownership
	v.stored = k
}

// unmarked copies are outside the invariant: no marker, no tracking.
func unmarked(s *keyState) {
	k := s.Key()
	_ = k
}

// leak never wipes at all.
func leak(s *keyState) {
	//reed:secret — transient file-key copy
	k := s.Key() // want `secret k from a //reed:secret source is not wiped by core.Wipe on every return path`
	_ = k
}

// leakOnError wipes the success path but not the early error return.
func leakOnError(s *keyState) error {
	//reed:secret — transient file-key copy
	k := s.Key() // want `secret k from a //reed:secret source is not wiped by core.Wipe on every return path`
	if err := mayFail(); err != nil {
		return err
	}
	core.Wipe(k[:])
	return nil
}

// halfDestroy wipes its parameter only on the error path, so its
// summary carries no wipe guarantee.
func halfDestroy(k []byte) error {
	if err := mayFail(); err != nil {
		core.Wipe(k)
		return err
	}
	return nil
}

// viaBadHelper leans on a helper that does not wipe on all paths.
func viaBadHelper(s *keyState) error {
	//reed:secret — transient file-key copy
	k := s.Key() // want `secret k from a //reed:secret source is not wiped by core.Wipe on every return path`
	return halfDestroy(k[:])
}
