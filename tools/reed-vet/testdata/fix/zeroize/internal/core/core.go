// Package core is the zeroize fixture's stand-in for the real core
// package: just the wipe primitive.
package core

// Wipe zeroes b in place.
func Wipe(b []byte) {
	for i := range b {
		b[i] = 0
	}
}
