// Package rpcmux is the idemtable fixture's transport root: the Call
// shape (MsgType + idempotent bool) is what the analyzer anchors on.
package rpcmux

import (
	"context"

	"reedvet.fixtures/idem/internal/proto"
)

type Redialer struct{}

// Call issues one RPC; idempotent governs transparent re-issue.
func (r *Redialer) Call(ctx context.Context, typ proto.MsgType, payload []byte, want proto.MsgType, idempotent bool) ([]byte, error) {
	_ = idempotent
	return nil, ctx.Err()
}
