// Package cluster is the idemtable fixture's routing layer: Router
// methods must consult downErr exactly when they issue non-idempotent
// requests.
package cluster

import (
	"context"
	"errors"

	"reedvet.fixtures/idem/internal/server"
)

type Router struct {
	conns []*server.Client
	down  []bool
}

// downErr is the fail-fast gate for down-marked shards.
func (r *Router) downErr(s int) error {
	if r.down[s] {
		return errors.New("shard down")
	}
	return nil
}

// PutChunks issues a non-idempotent request and gates on downErr.
func (r *Router) PutChunks(ctx context.Context, payload []byte) ([]byte, error) {
	if err := r.downErr(0); err != nil {
		return nil, err
	}
	return r.conns[0].PutChunks(ctx, payload)
}

// GetChunks is read-only: always tries, which heals the down mark.
func (r *Router) GetChunks(ctx context.Context, payload []byte) ([]byte, error) {
	return r.conns[0].GetChunks(ctx, payload)
}

// PutChunksUngated issues a non-idempotent request with no fail-fast
// gate.
func (r *Router) PutChunksUngated(ctx context.Context, payload []byte) ([]byte, error) { // want `issues non-idempotent MsgPutChunksReq without consulting downErr`
	return r.conns[0].PutChunks(ctx, payload)
}

// StatsGated wrongly gates an idempotent-only method.
func (r *Router) StatsGated(ctx context.Context) ([]byte, error) { // want `consults downErr but issues only idempotent requests`
	if err := r.downErr(0); err != nil {
		return nil, err
	}
	return r.conns[0].Stats(ctx)
}
