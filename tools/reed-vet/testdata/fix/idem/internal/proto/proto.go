// Package proto is the idemtable fixture's wire stand-in with a
// well-formed canonical table.
package proto

type MsgType uint8

const (
	MsgError MsgType = iota
	MsgPutChunksReq
	MsgPutChunksResp
	MsgGetChunksReq
	MsgGetChunksResp
	MsgDeleteBlobReq
	MsgDeleteBlobResp
	MsgStatsReq
	MsgStatsResp
)

// Idempotent is the canonical classification.
func Idempotent(typ MsgType) bool {
	switch typ {
	case MsgGetChunksReq, MsgStatsReq:
		return true
	case MsgPutChunksReq, MsgDeleteBlobReq:
		return false
	}
	return false
}
