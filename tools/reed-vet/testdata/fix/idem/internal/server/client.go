// Package server is the idemtable fixture's client layer: a
// forwarding helper plus per-method literal flags that must agree
// with proto.Idempotent.
package server

import (
	"context"

	"reedvet.fixtures/idem/internal/proto"
	"reedvet.fixtures/idem/internal/rpcmux"
)

type Client struct{ mux *rpcmux.Redialer }

// call forwards its type and flag into the transport: the analyzer
// summarizes it so per-method sites below are checked.
func (c *Client) call(ctx context.Context, typ proto.MsgType, payload []byte, want proto.MsgType, idempotent bool) ([]byte, error) {
	return c.mux.Call(ctx, typ, payload, want, idempotent)
}

// PutChunks matches the table: non-idempotent.
func (c *Client) PutChunks(ctx context.Context, payload []byte) ([]byte, error) {
	return c.call(ctx, proto.MsgPutChunksReq, payload, proto.MsgPutChunksResp, false)
}

// GetChunks matches the table: idempotent.
func (c *Client) GetChunks(ctx context.Context, payload []byte) ([]byte, error) {
	return c.call(ctx, proto.MsgGetChunksReq, payload, proto.MsgGetChunksResp, true)
}

// DeleteBlob drifts from the table: classified non-idempotent but
// issued with transparent re-issue enabled.
func (c *Client) DeleteBlob(ctx context.Context, payload []byte) ([]byte, error) {
	return c.call(ctx, proto.MsgDeleteBlobReq, payload, proto.MsgDeleteBlobResp, true) // want `MsgDeleteBlobReq issued with idempotent=true`
}

// fixedCall pins the flag inside the helper, keymanager-style; the
// summary carries the fixed flag to its call sites.
func (c *Client) fixedCall(ctx context.Context, typ proto.MsgType, want proto.MsgType) ([]byte, error) {
	return c.mux.Call(ctx, typ, nil, want, true)
}

// Stats matches the table through the fixed-flag helper.
func (c *Client) Stats(ctx context.Context) ([]byte, error) {
	return c.fixedCall(ctx, proto.MsgStatsReq, proto.MsgStatsResp)
}

// PutViaFixed drifts: a non-idempotent request through the
// always-re-issue helper.
func (c *Client) PutViaFixed(ctx context.Context) ([]byte, error) {
	return c.fixedCall(ctx, proto.MsgPutChunksReq, proto.MsgPutChunksResp) // want `MsgPutChunksReq issued with idempotent=true`
}
