// Package retry stubs the real internal/retry surface the errclass
// analyzer recognizes as explicit classification.
package retry

// Permanent marks err as non-retryable.
func Permanent(err error) error { return err }
