// Package dedup is a lockguard fixture: its import path suffix puts
// it in scope for the lock-discipline rules.
package dedup

import (
	"context"
	"net"
	"sync"
	"time"
)

type Store struct {
	mu   sync.Mutex
	conn net.Conn
	ch   chan int
}

func (s *Store) deferredBad(ctx context.Context) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ch <- 1                    // want `channel send while holding s.mu`
	s.conn.Write(nil)            // want `net.Conn I/O while holding s.mu`
	time.Sleep(time.Millisecond) // want `time.Sleep while holding s.mu`
	s.fetch(ctx)                 // want `context-taking`
}

func (s *Store) pairedBad() {
	s.mu.Lock()
	s.ch <- 1 // want `channel send while holding s.mu`
	s.mu.Unlock()
}

func (s *Store) unlockThenSendOK(ctx context.Context) {
	s.mu.Lock()
	v := s.snapshot()
	s.mu.Unlock()
	s.ch <- v
	s.fetch(ctx)
}

func (s *Store) goroutineOK() {
	s.mu.Lock()
	defer s.mu.Unlock()
	go func() { s.ch <- 1 }() // the spawned goroutine does not hold s.mu
}

func (s *Store) branchBad(cond bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if cond {
		s.conn.Write(nil) // want `net.Conn I/O while holding s.mu`
	}
}

func (s *Store) selectSendBad() {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case s.ch <- 1: // want `channel send while holding s.mu`
	default:
	}
}

func (s *Store) fetch(ctx context.Context) { _ = ctx }
func (s *Store) snapshot() int             { return 0 }

type Disk struct {
	stripes [8]sync.RWMutex
	conn    net.Conn
}

func (d *Disk) stripeBad(i int) {
	mu := &d.stripes[i]
	mu.RLock()
	defer mu.RUnlock()
	d.conn.Write(nil) // want `net.Conn I/O while holding mu`
}

func (d *Disk) stripeOK(i int) int {
	mu := &d.stripes[i]
	mu.RLock()
	n := len(d.stripes)
	mu.RUnlock()
	d.conn.Write(nil)
	return n
}
