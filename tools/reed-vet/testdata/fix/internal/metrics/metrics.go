// Package metrics is a stub of the real internal/metrics API surface:
// the metricname analyzer resolves constructors by package-path
// suffix and method name, so this fixture exercises the same
// detection as the real registry.
package metrics

type (
	Registry  struct{}
	Counter   struct{}
	Gauge     struct{}
	Histogram struct{}
	OpSet     struct{}
)

func (r *Registry) Counter(name string, kv ...string) *Counter                 { return nil }
func (r *Registry) Gauge(name string, kv ...string) *Gauge                     { return nil }
func (r *Registry) Histogram(name string, kv ...string) *Histogram             { return nil }
func (r *Registry) SetCounterFunc(name string, fn func() uint64)               {}
func (r *Registry) SetGaugeFunc(name string, fn func() float64)                {}
func NewOpSet(r *Registry, prefix string, names []string, kv ...string) *OpSet { return nil }
func Label(family string, kv ...string) string                                 { return family }
