// Package cluster is an errclass fixture: the shard router sits on the
// retryable RPC path, so flattening an error with %v would sever the
// errors.Is chain the retry and health logic depend on.
package cluster

import (
	"errors"
	"fmt"

	"reedvet.fixtures/internal/retry"
)

var errShardDown = errors.New("cluster: shard down")

func routeErr(shard int, err error) error {
	return fmt.Errorf("cluster: shard %d: %v", shard, err) // want `error formatted with %v`
}

func routeWrapped(shard int, err error) error {
	return fmt.Errorf("cluster: shard %d: %w", shard, err)
}

func downWrapped(addr string, err error) error {
	return fmt.Errorf("%w: %s: %w", errShardDown, addr, err)
}

func classified(err error) error {
	return retry.Permanent(fmt.Errorf("cluster: bad placement: %v", err))
}
