// Package client is a ctxrule fixture: its import path suffix puts it
// in scope for the context rules.
package client

import (
	"context"
	"net"
)

func Fetch(name string, ctx context.Context) error { // want `context.Context must be the first parameter`
	return ctx.Err()
}

func Get(ctx context.Context, name string) error { return ctx.Err() }

func background() context.Context {
	return context.Background() // want `context.Background in a library package`
}

func todo() context.Context {
	return context.TODO() // want `context.TODO in a library package`
}

func lifecycleRoot() context.Context {
	//reed-vet:ignore ctxrule — fixture lifecycle root, justified escape hatch
	return context.Background()
}

// wrongAnalyzer carries a directive naming a different analyzer:
// scoping is per-analyzer, so ctxrule still fires.
func wrongAnalyzer() context.Context {
	//reed-vet:ignore lockguard — names another analyzer, must not suppress ctxrule
	return context.Background() // want `context.Background in a library package`
}

func DialPeer(addr string) (net.Conn, error) {
	return net.Dial("tcp", addr) // want `DialPeer dials without a context`
}

func DialPeerCtx(ctx context.Context, addr string) (net.Conn, error) {
	var d net.Dialer
	return d.DialContext(ctx, "tcp", addr)
}

// Redialer returns a closure for reconnect paths: closures run long
// after the original context died, so the FuncLit body is exempt.
func Redialer(addr string) func() (net.Conn, error) {
	return func() (net.Conn, error) { return net.Dial("tcp", addr) }
}

// dialInternal is unexported: rule 3 only governs the exported API.
func dialInternal(addr string) (net.Conn, error) {
	return net.Dial("tcp", addr)
}
