// Package rpcmux is the errclass fixture: its import path suffix puts
// it on the retryable RPC path.
package rpcmux

import (
	"errors"
	"fmt"

	"reedvet.fixtures/internal/retry"
)

var errBase = errors.New("rpcmux: base")

func wrapV(err error) error {
	return fmt.Errorf("rpcmux: call failed: %v", err) // want `error formatted with %v`
}

func wrapS(err error) error {
	return fmt.Errorf("rpcmux: call failed: %s", err) // want `error formatted with %s`
}

func wrapQ(err error) error {
	return fmt.Errorf("rpcmux: call failed: %q", err) // want `error formatted with %q`
}

func wrapW(err error) error {
	return fmt.Errorf("rpcmux: call failed: %w", err)
}

func wrapDoubleW(err error) error {
	return fmt.Errorf("%w: read side: %w", errBase, err)
}

func wrapMixed(err error) error {
	return fmt.Errorf("%w: read side: %v", errBase, err) // want `error formatted with %v`
}

func classifiedOK(err error) error {
	return retry.Permanent(fmt.Errorf("rpcmux: malformed frame: %v", err))
}

func nonErrorArgsOK(n int) error {
	return fmt.Errorf("rpcmux: %d frames, want %s, %08b flags", n, "three", 7)
}

type frameErr struct{ n int }

func (e *frameErr) Error() string { return "frame" }

func concreteErr(e *frameErr) error {
	return fmt.Errorf("rpcmux: %v", e) // want `error formatted with %v`
}
