// Package store is a ctxrule fixture: the PR-6 Backend redesign made
// every storage operation ctx-first, and its import path suffix puts
// the package in scope for the context rules.
package store

import "context"

func Put(ns, name string, ctx context.Context, blob []byte) error { // want `context.Context must be the first parameter`
	return ctx.Err()
}

func Get(ctx context.Context, ns, name string) ([]byte, error) {
	return nil, ctx.Err()
}

func open() error {
	ctx := context.Background() // want `context.Background in a library package`
	return ctx.Err()
}

func sweep() error {
	return context.TODO().Err() // want `context.TODO in a library package`
}
