// Package ring is a ctxrule fixture: the consistent-hash ring package
// is pure computation, so any context or dialing sneaking in is a
// design smell the analyzer must catch.
package ring

import (
	"context"
	"net"
)

func Owner(fp [32]byte, members []string) int { return 0 }

func Rebalance(plan string, ctx context.Context) error { // want `context.Context must be the first parameter`
	return ctx.Err()
}

func RebalanceCtx(ctx context.Context, plan string) error { return ctx.Err() }

func snapshot() context.Context {
	return context.Background() // want `context.Background in a library package`
}

func ProbeMember(addr string) (net.Conn, error) {
	return net.Dial("tcp", addr) // want `ProbeMember dials without a context`
}
