// Package fileindex is a ctxrule fixture: the whole-file index sits
// on the server's RPC path (CheckFile/RegisterFile), so its import
// path suffix puts it in scope for the context rules.
package fileindex

import "context"

// Key stands in for the real whole-file index key.
type Key struct{ Size uint64 }

func Lookup(key Key, ctx context.Context) (string, bool) { // want `context.Context must be the first parameter`
	_ = ctx.Err()
	return "", false
}

func Register(ctx context.Context, key Key, name string) error { return ctx.Err() }

func recoverWAL() error {
	ctx := context.Background() // want `context.Background in a library package`
	return ctx.Err()
}

func openRoot() context.Context {
	//reed-vet:ignore ctxrule — index open owns its recovery lifecycle, fixture escape hatch
	return context.Background()
}
