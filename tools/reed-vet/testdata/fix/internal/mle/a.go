// Package mle is a keyhygiene fixture: its import path suffix
// (internal/mle) makes the bare names key/keys/secret/stub secret
// here, and the named type Key is always secret.
package mle

import (
	"bytes"
	"crypto/subtle"
	"fmt"
	"log"
)

// Key mirrors the real mle key type.
type Key []byte

func compareBad(key, other []byte) bool {
	return bytes.Equal(key, other) // want `compared with bytes.Equal`
}

func compareGood(key, other []byte) bool {
	return subtle.ConstantTimeCompare(key, other) == 1
}

func compareTyped(k Key, want []byte) bool {
	return bytes.Equal(k, want) // want `compared with bytes.Equal`
}

func compareArrays(masterKey, published [32]byte) bool {
	return masterKey == published // want `compared with ==`
}

func nilCheckOK(key []byte) bool {
	return key == nil // shape check, not content comparison
}

func logBad(mleKey []byte) {
	fmt.Printf("derived key %x\n", mleKey) // want `passed to fmt.Printf`
	log.Println("cache insert", mleKey)    // want `passed to log.Println`
}

func logLenOK(mleKey []byte) {
	fmt.Printf("derived %d key bytes\n", len(mleKey)) // lengths are public
}

func stringifyBad(secret []byte) string {
	return "prefix-" + string(secret) // want `converted to string`
}

func sliceBad(fileKey [32]byte) error {
	return fmt.Errorf("file key %x unusable", fileKey[:]) // want `passed to fmt.Errorf`
}

type sealed struct {
	//reed:secret
	material []byte
	public   []byte
}

func markerBad(s sealed) {
	fmt.Println(s.material) // want `passed to fmt.Println`
	fmt.Println(s.public)   // unmarked sibling field is fine
}

type box struct {
	key []byte
}

func (b box) String() string {
	return fmt.Sprintf("box(%d)", len(b.key)) // want `referenced in String\(\)`
}

type crate struct {
	count int
}

func (c crate) String() string {
	return fmt.Sprintf("crate(%d)", c.count) // no secrets: fine
}
