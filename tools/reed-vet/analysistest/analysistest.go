// Package analysistest runs analyzers over fixture packages and
// checks their diagnostics against golden expectations written as
// trailing comments in the fixtures, x/tools-style:
//
//	bad()  // want `regexp` `second regexp`
//
// Each quoted regexp must match one diagnostic reported on that line;
// diagnostics without a matching expectation, and expectations
// without a matching diagnostic, fail the test.
package analysistest

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"reedvet/analysis"
	"reedvet/analyzers"
	"reedvet/load"
	"reedvet/runner"
)

// Run loads the packages matched by patterns under dir and applies
// the analyzers, comparing against want-comments.
func Run(t *testing.T, dir string, patterns []string, as ...*analysis.Analyzer) {
	t.Helper()
	pkgs, err := load.Packages(dir, patterns...)
	if err != nil {
		t.Fatalf("load fixtures: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("no fixture packages matched %v under %s", patterns, dir)
	}
	res, err := runner.RunAll(pkgs, as, analyzers.Names())
	if err != nil {
		t.Fatalf("run analyzers: %v", err)
	}
	diags := res.Diags

	wants := collectWants(t, pkgs)
	for _, d := range diags {
		key := lineKey{d.Position.Filename, d.Position.Line}
		if !wants.match(key, d.Message) {
			t.Errorf("unexpected diagnostic at %s", d)
		}
	}
	for key, res := range wants {
		for _, w := range res {
			if !w.matched {
				t.Errorf("%s:%d: expected diagnostic matching %q, got none", key.file, key.line, w.re)
			}
		}
	}
}

type lineKey struct {
	file string
	line int
}

type want struct {
	re      *regexp.Regexp
	matched bool
}

type wantMap map[lineKey][]*want

// match consumes one unmatched expectation on key that matches msg.
func (m wantMap) match(key lineKey, msg string) bool {
	for _, w := range m[key] {
		if !w.matched && w.re.MatchString(msg) {
			w.matched = true
			return true
		}
	}
	return false
}

// collectWants extracts `// want "re"...` expectations from every
// fixture file.
func collectWants(t *testing.T, pkgs []*load.Package) wantMap {
	t.Helper()
	out := wantMap{}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text, ok := strings.CutPrefix(c.Text, "// want ")
					if !ok {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					key := lineKey{pos.Filename, pos.Line}
					res, err := parseWants(text)
					if err != nil {
						t.Fatalf("%s:%d: bad want comment: %v", pos.Filename, pos.Line, err)
					}
					out[key] = append(out[key], res...)
				}
			}
		}
	}
	return out
}

// parseWants parses a space-separated list of quoted regexps
// (double-quoted or backquoted).
func parseWants(s string) ([]*want, error) {
	var out []*want
	for {
		s = strings.TrimSpace(s)
		if s == "" {
			return out, nil
		}
		q, rest, err := quotedPrefix(s)
		if err != nil {
			return nil, err
		}
		re, err := regexp.Compile(q)
		if err != nil {
			return nil, fmt.Errorf("bad regexp %q: %v", q, err)
		}
		out = append(out, &want{re: re})
		s = rest
	}
}

// quotedPrefix splits one leading quoted string off s.
func quotedPrefix(s string) (unquoted, rest string, err error) {
	prefix, err := strconv.QuotedPrefix(s)
	if err != nil {
		return "", "", fmt.Errorf("expected quoted regexp at %q", s)
	}
	unq, err := strconv.Unquote(prefix)
	if err != nil {
		return "", "", err
	}
	return unq, s[len(prefix):], nil
}
