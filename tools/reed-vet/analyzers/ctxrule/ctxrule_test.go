package ctxrule_test

import (
	"testing"

	"reedvet/analysistest"
	"reedvet/analyzers/ctxrule"
)

func TestFixtures(t *testing.T) {
	analysistest.Run(t, "../../testdata/fix",
		[]string{"./internal/client", "./internal/store", "./internal/ring", "./internal/fileindex", "./plainlib"}, ctxrule.Analyzer)
}
