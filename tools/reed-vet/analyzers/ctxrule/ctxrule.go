// Package ctxrule enforces REED's context discipline in the network-
// facing library packages (internal/client, internal/server,
// internal/keymanager, internal/rpcmux, internal/store, internal/ring,
// internal/cluster, internal/fileindex).
//
// The PR-1 API redesign made every blocking operation ctx-first so
// uploads, downloads, and rekey operations cancel cleanly; a single
// function that ignores cancellation (or roots itself in
// context.Background) reintroduces the hangs that redesign removed.
// Three rules:
//
//  1. if a function takes a context.Context, it is the first
//     parameter;
//  2. library code never calls context.Background() or context.TODO()
//     — the caller's context is threaded down (lifecycle roots that
//     genuinely own a context use the //reed-vet:ignore escape hatch
//     with a justification comment);
//  3. an exported function that dials (net.Dial / net.DialTimeout /
//     (*net.Dialer).Dial) takes a context and uses DialContext.
//     Redial closures are exempt: they run long after the original
//     context died, so a FuncLit body is not charged to its enclosing
//     function.
package ctxrule

import (
	"go/ast"
	"go/types"

	"reedvet/analysis"
	"reedvet/internal/astq"
)

var Analyzer = &analysis.Analyzer{
	Name: "ctxrule",
	Doc:  "ctx-first signatures and no context.Background in network-facing library packages",
	Run:  run,
}

// scopedPkgs are the package-path suffixes the rules govern.
var scopedPkgs = []string{
	"internal/client", "internal/server", "internal/keymanager", "internal/rpcmux",
	"internal/store", "internal/ring", "internal/cluster", "internal/fileindex",
}

func run(pass *analysis.Pass) error {
	if !astq.PathMatches(pass.Pkg.Path(), scopedPkgs...) {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok {
				checkFunc(pass, fd)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if astq.IsPkgFunc(pass.TypesInfo, call, "context", "Background", "TODO") {
					pass.Reportf(call.Pos(), "context.%s in a library package; thread the caller's context instead", astq.Callee(pass.TypesInfo, call).Name())
				}
			}
			return true
		})
	}
	return nil
}

// isCtxType reports whether t is context.Context.
func isCtxType(t types.Type) bool {
	return astq.IsNamed(t, "context", "Context")
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	params := fd.Type.Params
	hasCtx := false
	if params != nil {
		argIdx := 0
		for _, field := range params.List {
			n := len(field.Names)
			if n == 0 {
				n = 1
			}
			if t, ok := pass.TypesInfo.Types[field.Type]; ok && isCtxType(t.Type) {
				hasCtx = true
				if argIdx != 0 {
					pass.Reportf(field.Pos(), "context.Context must be the first parameter of %s", fd.Name.Name)
				}
			}
			argIdx += n
		}
	}

	// Rule 3: exported dialers must accept a context.
	if !fd.Name.IsExported() || hasCtx || fd.Body == nil {
		return
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // redial closures run under their own lifetime
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		// Covers net.Dial, net.DialTimeout, and (*net.Dialer).Dial —
		// all resolve to *types.Func objects in package net.
		if astq.IsPkgFunc(pass.TypesInfo, call, "net", "Dial", "DialTimeout") {
			pass.Reportf(call.Pos(), "%s dials without a context; take ctx as the first parameter and use DialContext", fd.Name.Name)
		}
		return true
	})
}
