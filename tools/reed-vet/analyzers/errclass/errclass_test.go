package errclass_test

import (
	"testing"

	"reedvet/analysistest"
	"reedvet/analyzers/errclass"
)

func TestFixtures(t *testing.T) {
	analysistest.Run(t, "../../testdata/fix",
		[]string{"./internal/rpcmux", "./internal/cluster", "./plainlib"}, errclass.Analyzer)
}
