package errclass_test

import (
	"testing"

	"reedvet/analysistest"
	"reedvet/analyzers/errclass"
)

func TestFixtures(t *testing.T) {
	// retrypath/internal/fileindex lives in its own tree so the ctxrule
	// fixture at ./internal/fileindex keeps a disjoint want-set.
	analysistest.Run(t, "../../testdata/fix",
		[]string{"./internal/rpcmux", "./internal/cluster", "./retrypath/internal/fileindex", "./plainlib"}, errclass.Analyzer)
}
