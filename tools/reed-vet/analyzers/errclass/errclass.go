// Package errclass keeps error classification intact on the
// retryable RPC paths (internal/rpcmux, internal/server,
// internal/keymanager, internal/client, internal/cluster,
// internal/fileindex).
//
// The Redialer re-issues idempotent calls after a transport fault and
// consults errors.Is/As to decide what is retryable (retry.Permanent,
// proto.RemoteError, net.ErrClosed, context cancellation). Formatting
// an error with %v or %s flattens it to text and severs that chain:
// the caller then retries permanent failures or gives up on transient
// ones. The rule: in these packages, every error argument to
// fmt.Errorf is wrapped with %w — or the whole Errorf is explicitly
// classified by passing it straight to retry.Permanent.
package errclass

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"

	"reedvet/analysis"
	"reedvet/internal/astq"
)

var Analyzer = &analysis.Analyzer{
	Name: "errclass",
	Doc:  "errors on retryable RPC paths wrap with %w or classify via retry.Permanent",
	Run:  run,
}

// scopedPkgs are the retry-sensitive packages (path suffixes).
var scopedPkgs = []string{
	"internal/rpcmux", "internal/server", "internal/keymanager", "internal/client",
	"internal/cluster", "internal/fileindex",
}

func run(pass *analysis.Pass) error {
	if !astq.PathMatches(pass.Pkg.Path(), scopedPkgs...) {
		return nil
	}
	for _, f := range pass.Files {
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return false
			}
			stack = append(stack, n)
			if call, ok := n.(*ast.CallExpr); ok {
				checkErrorf(pass, call, stack)
			}
			return true
		})
	}
	return nil
}

func checkErrorf(pass *analysis.Pass, call *ast.CallExpr, stack []ast.Node) {
	info := pass.TypesInfo
	if !astq.IsPkgFunc(info, call, "fmt", "Errorf") || len(call.Args) < 2 {
		return
	}
	lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
	if !ok {
		return
	}
	if lit.Kind != token.STRING {
		return
	}
	format, err := strconv.Unquote(lit.Value)
	if err != nil {
		return
	}
	verbs := parseVerbs(format)

	// Explicit classification exempts the whole call: the enclosing
	// retry.Permanent marks it non-retryable on purpose.
	if inPermanent(info, stack) {
		return
	}

	for i, argExpr := range call.Args[1:] {
		if !isErrorType(info, argExpr) {
			continue
		}
		if i >= len(verbs) {
			break // malformed format; vet proper flags it
		}
		if v := verbs[i]; v == 'v' || v == 's' || v == 'q' {
			pass.Reportf(argExpr.Pos(), "error formatted with %%%c loses errors.Is/As classification on a retryable path; wrap with %%w or mark retry.Permanent", v)
		}
	}
}

// inPermanent reports whether the innermost enclosing call (other
// than the Errorf itself) is retry.Permanent.
func inPermanent(info *types.Info, stack []ast.Node) bool {
	// stack[len-1] is the Errorf call; look for a direct parent call.
	for i := len(stack) - 2; i >= 0; i-- {
		switch n := stack[i].(type) {
		case *ast.CallExpr:
			return astq.IsPkgFunc(info, n, "internal/retry", "Permanent") ||
				astq.IsPkgFunc(info, n, "retry", "Permanent")
		case *ast.ParenExpr:
			continue
		default:
			return false
		}
	}
	return false
}

func isErrorType(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	named, ok := types.Unalias(tv.Type).(*types.Named)
	if ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error" {
		return true
	}
	// Concrete error implementations passed directly also count.
	errType := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	return types.Implements(tv.Type, errType)
}

// parseVerbs extracts the verb letter for each argument-consuming
// directive in a Printf format string, in argument order. Width and
// precision stars consume arguments too and are recorded as '*'.
func parseVerbs(format string) []byte {
	var verbs []byte
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		if i >= len(format) {
			break
		}
		if format[i] == '%' {
			continue
		}
		// flags, width, precision
		for i < len(format) {
			c := format[i]
			if c == '*' {
				verbs = append(verbs, '*')
				i++
				continue
			}
			if c == '#' || c == '+' || c == '-' || c == ' ' || c == '0' ||
				c == '.' || (c >= '0' && c <= '9') {
				i++
				continue
			}
			break
		}
		if i < len(format) {
			verbs = append(verbs, format[i])
		}
	}
	return verbs
}
