package keyhygiene_test

import (
	"testing"

	"reedvet/analysistest"
	"reedvet/analyzers/keyhygiene"
)

func TestFixtures(t *testing.T) {
	analysistest.Run(t, "../../testdata/fix", []string{"./internal/mle"}, keyhygiene.Analyzer)
}
