// Package keyhygiene enforces REED's key-material hygiene rules.
//
// The system's security argument (REED paper §V; Li et al.'s
// frequency-analysis attacks) depends on what an adversary can
// observe. Key material — MLE keys, CAONT hash keys, file keys,
// stubs, OPRF secrets — must therefore never reach an observable
// channel:
//
//   - no secret value may flow into fmt/log formatting or into a
//     String/Error/GoString method (logs and error strings end up in
//     crash reports, admin endpoints, and client output);
//   - secrets must be compared in constant time via crypto/subtle,
//     never with bytes.Equal or ==/!= (early-exit comparison leaks a
//     byte-position timing oracle, the classic MAC-forgery enabler).
//
// A value is considered secret when its identifier names key material
// (mleKey, fileKey, hashKey, …; or the bare names key/stub/secret
// inside the key-handling packages), when its type is a known secret
// type (mle.Key, oprf.ServerKey, abe.PrivateKey), or when its
// declaration carries a "//reed:secret" marker comment.
package keyhygiene

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"

	"reedvet/analysis"
	"reedvet/internal/astq"
)

var Analyzer = &analysis.Analyzer{
	Name: "keyhygiene",
	Doc:  "key material must not be formatted, logged, stringified, or compared non-constant-time",
	Run:  run,
}

// secretNameRE matches identifiers that unambiguously name key
// material anywhere in the tree.
var secretNameRE = regexp.MustCompile(`(?i)^(mle|file|hash|conv|convergent|oprf|master|secret|priv|private|old|new)_?key(s)?$`)

// bareSecretNames are generic identifiers treated as secret only
// inside sensitivePkgs, where "key" really does mean cryptographic
// key.
var bareSecretNames = map[string]bool{
	"key": true, "keys": true, "secret": true, "stub": true, "stubs": true,
}

// sensitivePkgs are the key-handling packages (path suffixes).
var sensitivePkgs = []string{
	"internal/aont", "internal/mle", "internal/core", "internal/keycache",
	"internal/keymanager", "internal/oprf", "internal/client",
	"internal/keyreg", "internal/abe", "internal/shamir", "internal/baseline",
}

// secretTypes are named types whose values are always secret.
var secretTypes = []struct{ pkg, name string }{
	{"internal/mle", "Key"},
	{"internal/oprf", "ServerKey"},
	{"internal/abe", "PrivateKey"},
}

// secretMarker marks a declaration as holding secret material.
const secretMarker = "//reed:secret"

// fmtPkgs are packages whose formatting functions count as observable
// sinks.
var fmtPkgs = map[string]bool{"fmt": true, "log": true, "log/slog": true}

type checker struct {
	pass      *analysis.Pass
	sensitive bool
	// marked holds file:line positions carrying the secret marker;
	// declarations on the marker's line or the line below are secret.
	marked map[string]map[int]bool
}

func run(pass *analysis.Pass) error {
	c := &checker{
		pass:      pass,
		sensitive: astq.PathMatches(pass.Pkg.Path(), sensitivePkgs...),
		marked:    map[string]map[int]bool{},
	}
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, cm := range cg.List {
				if strings.HasPrefix(cm.Text, secretMarker) {
					p := pass.Position(cm.Pos())
					if c.marked[p.Filename] == nil {
						c.marked[p.Filename] = map[int]bool{}
					}
					c.marked[p.Filename][p.Line] = true
				}
			}
		}
	}
	for _, f := range pass.Files {
		ast.Inspect(f, c.check)
	}
	return nil
}

func (c *checker) check(n ast.Node) bool {
	switch n := n.(type) {
	case *ast.CallExpr:
		c.checkCall(n)
	case *ast.BinaryExpr:
		c.checkCompare(n)
	case *ast.FuncDecl:
		c.checkStringer(n)
	}
	return true
}

// checkCall flags bytes.Equal on secrets, secrets passed to
// fmt/log sinks, and string(secret) conversions.
func (c *checker) checkCall(call *ast.CallExpr) {
	info := c.pass.TypesInfo

	// string(secret): the conversion that turns key bytes into a
	// loggable/concatenatable value.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Kind() == types.String {
			if name, yes := c.isSecret(call.Args[0]); yes {
				c.pass.Reportf(call.Pos(), "secret %q converted to string; key material must stay []byte and never enter strings", name)
			}
		}
		return
	}

	if astq.IsPkgFunc(info, call, "bytes", "Equal") {
		for _, arg := range call.Args {
			if name, yes := c.isSecret(arg); yes {
				c.pass.Reportf(call.Pos(), "secret %q compared with bytes.Equal; use crypto/subtle.ConstantTimeCompare", name)
				return
			}
		}
		return
	}

	// fmt/log sinks: package-level functions and *log.Logger /
	// *slog.Logger methods alike resolve to a *types.Func in one of
	// fmtPkgs.
	if fn := astq.Callee(info, call); fn != nil && fn.Pkg() != nil && fmtPkgs[fn.Pkg().Path()] {
		for _, arg := range call.Args {
			if name, yes := c.isSecret(arg); yes {
				c.pass.Reportf(arg.Pos(), "secret %q passed to %s.%s; key material must not be formatted or logged", name, fn.Pkg().Name(), fn.Name())
			}
		}
	}
}

// checkCompare flags ==/!= with a secret operand (timing oracle on
// comparable arrays and strings). Comparisons against nil are shape
// checks, not content comparisons, and stay legal.
func (c *checker) checkCompare(b *ast.BinaryExpr) {
	if b.Op != token.EQL && b.Op != token.NEQ {
		return
	}
	info := c.pass.TypesInfo
	if astq.IsNilLiteral(info, b.X) || astq.IsNilLiteral(info, b.Y) {
		return
	}
	for _, side := range []ast.Expr{b.X, b.Y} {
		if name, yes := c.isSecret(side); yes {
			c.pass.Reportf(b.Pos(), "secret %q compared with %s; use crypto/subtle.ConstantTimeCompare", name, b.Op)
			return
		}
	}
}

// checkStringer flags any secret referenced inside a String, Error,
// or GoString method: their results are destined for logs by
// definition.
func (c *checker) checkStringer(fd *ast.FuncDecl) {
	if fd.Recv == nil || fd.Body == nil {
		return
	}
	switch fd.Name.Name {
	case "String", "Error", "GoString":
	default:
		return
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if name, yes := c.isSecret(id); yes {
				c.pass.Reportf(id.Pos(), "secret %q referenced in %s(); key material must not reach stringers", name, fd.Name.Name)
			}
		}
		return true
	})
}

// isSecret reports whether e denotes secret key material, and under
// what name.
func (c *checker) isSecret(e ast.Expr) (string, bool) {
	e = ast.Unparen(e)
	if sl, ok := e.(*ast.SliceExpr); ok { // fileKey[:] is as secret as fileKey
		e = ast.Unparen(sl.X)
	}

	var id *ast.Ident
	switch e := e.(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return "", false
	}

	obj := c.pass.TypesInfo.Uses[id]
	if obj == nil {
		obj = c.pass.TypesInfo.Defs[id]
	}
	v, ok := obj.(*types.Var)
	if !ok {
		return "", false
	}

	for _, st := range secretTypes {
		if astq.IsNamed(v.Type(), st.pkg, st.name) {
			return id.Name, true
		}
	}
	if secretNameRE.MatchString(id.Name) {
		return id.Name, true
	}
	if c.sensitive && bareSecretNames[id.Name] {
		return id.Name, true
	}
	if v.Pos().IsValid() {
		p := c.pass.Position(v.Pos())
		if lines := c.marked[p.Filename]; lines != nil && (lines[p.Line] || lines[p.Line-1]) {
			return id.Name, true
		}
	}
	return "", false
}
