// Package metricname enforces the metric naming convention from
// DESIGN.md §7 ("Naming conventions") at the call sites that mint
// names: snake_case families with a unit/kind suffix appropriate to
// the instrument, and snapshot-function registrations
// (SetCounterFunc/SetGaugeFunc) bound exactly once per name — a
// second registration silently overwrites the first, so the duplicate
// is a bug, not a merge.
//
// Checked constructors (package internal/metrics): Registry.Counter,
// Registry.Gauge, Registry.Histogram, Registry.SetCounterFunc,
// Registry.SetGaugeFunc, NewOpSet (prefix), Label (family). Only
// compile-time-constant names are checked; dynamically built names
// are out of scope.
package metricname

import (
	"go/ast"
	"go/constant"
	"go/token"
	"regexp"
	"strings"

	"reedvet/analysis"
	"reedvet/internal/astq"
)

var Analyzer = &analysis.Analyzer{
	Name: "metricname",
	Doc:  "metric names are snake_case with unit suffixes and func-backed instruments register once",
	Run:  run,
}

// snakeRE is the base shape every family name and OpSet prefix obeys.
var snakeRE = regexp.MustCompile(`^[a-z][a-z0-9]*(_[a-z0-9]+)*$`)

// suffixes per instrument kind; a name passes if it ends with any
// entry for its kind. These mirror the DESIGN.md §7 catalog.
var (
	counterSuffixes = []string{
		"_total", "_errors", "_bytes", "_chunks", "_drops", "_puts", "_gets",
		"_hits", "_misses", "_evictions", "_reconnects", "_retries", "_calls",
		"_batches", "_evaluations", "_containers", "_ops", "_frees",
	}
	gaugeSuffixes = []string{
		"_bytes", "_ratio", "_count", "_inflight", "_in_flight",
		"_connections", "_inflation", "_depth",
	}
	histogramSuffixes = []string{"_latency", "_seconds", "_ms", "_ns"}
)

func run(pass *analysis.Pass) error {
	// seen maps a registered name to its first binding within this
	// package.
	seen := map[string]registration{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			checkCall(pass, call, seen)
			return true
		})
	}
	return nil
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr, seen map[string]registration) {
	info := pass.TypesInfo
	fn := astq.Callee(info, call)
	if fn == nil || fn.Pkg() == nil || !astq.PathMatches(fn.Pkg().Path(), "internal/metrics") {
		return
	}

	var nameArg ast.Expr
	var kindSuffixes []string
	kind := fn.Name()
	switch kind {
	case "Counter", "SetCounterFunc":
		nameArg, kindSuffixes = arg(call, 0), counterSuffixes
	case "Gauge", "SetGaugeFunc":
		nameArg, kindSuffixes = arg(call, 0), gaugeSuffixes
	case "Histogram":
		nameArg, kindSuffixes = arg(call, 0), histogramSuffixes
	case "NewOpSet":
		nameArg, kindSuffixes = arg(call, 1), nil // prefix: shape only
	case "Label":
		nameArg, kindSuffixes = arg(call, 0), nil // family: shape only
	default:
		return
	}
	name, ok := constString(pass, nameArg)
	if !ok {
		return
	}

	if !snakeRE.MatchString(name) {
		pass.Reportf(nameArg.Pos(), "metric name %q is not snake_case (DESIGN.md §7)", name)
	} else if kindSuffixes != nil && !hasAnySuffix(name, kindSuffixes) {
		pass.Reportf(nameArg.Pos(), "%s name %q lacks a unit suffix (want one of %s; DESIGN.md §7)",
			kind, name, strings.Join(kindSuffixes, " "))
	}

	// Exactly-once: a Set*Func overwrites any earlier binding of the
	// same name silently, and a plain instrument sharing a func-backed
	// name reports whichever wrote the snapshot map last. Two plain
	// instruments sharing a name are fine — that is the documented
	// get-or-create sharing.
	if kind == "SetCounterFunc" || kind == "SetGaugeFunc" || kind == "Counter" || kind == "Gauge" {
		isFunc := strings.HasPrefix(kind, "Set")
		prev, dup := seen[name]
		if dup && (isFunc || prev.wasFunc) {
			p := pass.Position(prev.pos)
			pass.Reportf(nameArg.Pos(), "metric %q already registered at %s:%d; func-backed instruments bind exactly once per name",
				name, p.Filename, p.Line)
		}
		if !dup || isFunc {
			seen[name] = registration{pos: nameArg.Pos(), wasFunc: isFunc}
		}
	}
}

// registration records where a metric name was first bound and
// whether that binding was function-backed.
type registration struct {
	pos     token.Pos
	wasFunc bool
}

// arg returns the i'th argument or nil.
func arg(call *ast.CallExpr, i int) ast.Expr {
	if i >= len(call.Args) {
		return nil
	}
	return call.Args[i]
}

// constString evaluates e as a compile-time string constant.
func constString(pass *analysis.Pass, e ast.Expr) (string, bool) {
	if e == nil {
		return "", false
	}
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

func hasAnySuffix(name string, suffixes []string) bool {
	for _, s := range suffixes {
		if strings.HasSuffix(name, s) {
			return true
		}
	}
	return false
}
