package metricname_test

import (
	"testing"

	"reedvet/analysistest"
	"reedvet/analyzers/metricname"
)

func TestFixtures(t *testing.T) {
	analysistest.Run(t, "../../testdata/fix",
		[]string{"./metricuser", "./internal/metrics"}, metricname.Analyzer)
}
