package bufpool_test

import (
	"testing"

	"reedvet/analysistest"
	"reedvet/analyzers/bufpool"
)

func TestFixtures(t *testing.T) {
	// The bufpool tree is separate from the other fixtures so its
	// want-set stays disjoint.
	analysistest.Run(t, "../../testdata/fix", []string{"./bufpool/..."}, bufpool.Analyzer)
}
