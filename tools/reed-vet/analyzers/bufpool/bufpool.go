// Package bufpool enforces the pooled-buffer ownership protocol that
// DESIGN.md §"buffer pools" states in prose: every proto.GetBuffer
// result is returned by exactly one proto.PutBuffer on every path, the
// buffer (and slices derived from it) is never used after PutBuffer,
// and no buffer is put twice. The analysis is interprocedural: a
// helper that puts its *[]byte parameter on all paths counts as the
// put, and a helper that returns a live pooled buffer makes its caller
// the owner.
package bufpool

import (
	"go/ast"
	"go/token"
	"go/types"

	"reedvet/analysis"
	"reedvet/internal/astq"
	"reedvet/internal/flow"
)

var Analyzer = &analysis.Analyzer{
	Name: "bufpool",
	Doc:  "proto.GetBuffer must be matched by exactly one PutBuffer on all paths, with no use-after-Put",
	Run:  run,
}

// protoPkg is the package (by path suffix) that owns the pool.
const protoPkg = "internal/proto"

// status of one tracked pooled buffer along one path.
const (
	live    = iota // owned here, not yet returned
	put            // returned to the pool
	escaped        // ownership transferred (stored, sent, passed on)
)

// bufInfo is one tracked buffer's per-path state.
type bufInfo struct {
	origin      token.Pos // the GetBuffer (or pooled-return call) site
	name        string
	status      int
	deferredPut bool // a deferred PutBuffer will run at path end
	fromParam   int  // parameter index when the buffer entered as a param, else -1
}

// state is the walker state: tracked buffers plus the []byte values
// derived from them (slices of the backing array, Append results).
type state struct {
	bufs    map[*types.Var]*bufInfo
	derived map[*types.Var]*types.Var // derived var -> buffer var
}

func (s *state) clone() *state {
	ns := &state{
		bufs:    make(map[*types.Var]*bufInfo, len(s.bufs)),
		derived: make(map[*types.Var]*types.Var, len(s.derived)),
	}
	for v, b := range s.bufs {
		cp := *b
		ns.bufs[v] = &cp
	}
	for v, o := range s.derived {
		ns.derived[v] = o
	}
	return ns
}

// summary is the interprocedural transfer function of one callee.
type summary struct {
	// putsParam[i] is true when the function calls PutBuffer on its
	// i-th parameter on every path.
	putsParam map[int]bool
	// returnsPooled means every return hands back a live pooled
	// buffer as the sole (or first) result.
	returnsPooled bool
}

func (s summary) trivial() bool { return len(s.putsParam) == 0 && !s.returnsPooled }

// factKey names a function's summary in the cross-package fact store.
func factKey(fn *types.Func) string { return fn.FullName() }

type checker struct {
	pass *analysis.Pass
	idx  map[*types.Func]*ast.FuncDecl
	sums *flow.Summarizer[summary]
	// interesting marks functions that transitively touch the pool;
	// everything else is skipped wholesale.
	interesting map[*types.Func]bool
	// seen dedups reports across enumerated paths.
	seen map[string]bool
}

func run(pass *analysis.Pass) error {
	c := &checker{
		pass: pass,
		idx:  flow.Index(pass.Files, pass.TypesInfo),
		seen: make(map[string]bool),
	}
	c.markInteresting()
	c.sums = &flow.Summarizer[summary]{
		Idx: c.idx,
		Compute: func(fn *types.Func, decl *ast.FuncDecl) summary {
			if !c.interesting[fn] {
				return summary{}
			}
			return c.analyze(fn, decl, false)
		},
		External: func(fn *types.Func) (summary, bool) {
			if pass.Facts == nil {
				return summary{}, false
			}
			v, ok := pass.Facts.Get(factKey(fn))
			if !ok {
				return summary{}, false
			}
			return v.(summary), true
		},
	}

	for fn, decl := range c.idx {
		if !c.interesting[fn] {
			continue
		}
		sum := c.analyze(fn, decl, true)
		if pass.Facts != nil && fn.Exported() && !sum.trivial() {
			pass.Facts.Put(factKey(fn), sum)
		}
	}
	return nil
}

// markInteresting finds every function that mentions the pool directly
// or calls a local function that does, to fixpoint.
func (c *checker) markInteresting() {
	c.interesting = make(map[*types.Func]bool)
	calls := make(map[*types.Func][]*types.Func) // caller -> local callees
	for fn, decl := range c.idx {
		if decl.Body == nil {
			continue
		}
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if astq.IsPkgFunc(c.pass.TypesInfo, call, protoPkg, "GetBuffer", "PutBuffer") {
				c.interesting[fn] = true
			} else if callee := astq.Callee(c.pass.TypesInfo, call); callee != nil {
				if _, local := c.idx[callee]; local {
					calls[fn] = append(calls[fn], callee)
				} else if c.pass.Facts != nil {
					if _, ok := c.pass.Facts.Get(factKey(callee)); ok {
						c.interesting[fn] = true // uses a summarized cross-package helper
					}
				}
			}
			return true
		})
	}
	for changed := true; changed; {
		changed = false
		for fn, callees := range calls {
			if c.interesting[fn] {
				continue
			}
			for _, callee := range callees {
				if c.interesting[callee] {
					c.interesting[fn] = true
					changed = true
					break
				}
			}
		}
	}
}

// analyze walks fn's body, optionally reporting diagnostics, and
// returns its transfer summary.
func (c *checker) analyze(fn *types.Func, decl *ast.FuncDecl, report bool) summary {
	if decl.Body == nil {
		return summary{}
	}
	init := &state{bufs: map[*types.Var]*bufInfo{}, derived: map[*types.Var]*types.Var{}}

	// Parameters of pool-pointer type enter live-from-param: their
	// fate across all paths becomes the summary.
	sig := fn.Type().(*types.Signature)
	for i := 0; i < sig.Params().Len(); i++ {
		p := sig.Params().At(i)
		if isPoolPtr(p.Type()) {
			init.bufs[p] = &bufInfo{origin: p.Pos(), name: p.Name(), status: live, fromParam: i}
		}
	}

	paths := 0
	putOnAll := make(map[int]bool) // param index -> put on every path so far
	for i := 0; i < sig.Params().Len(); i++ {
		if isPoolPtr(sig.Params().At(i).Type()) {
			putOnAll[i] = true
		}
	}
	returnsPooledAll := true
	sawReturn := false

	w := &flow.Walker[*walkState]{
		Clone: func(s *walkState) *walkState { return &walkState{st: s.st.clone(), retPooled: s.retPooled} },
		Stmt: func(s *walkState, stmt ast.Stmt) *walkState {
			c.step(s, stmt, report)
			return s
		},
		End: func(s *walkState, ret *ast.ReturnStmt) {
			paths++
			for v, b := range s.st.bufs {
				if b.deferredPut && b.status == live {
					b.status = put
				}
				if b.fromParam >= 0 {
					if b.status != put {
						putOnAll[b.fromParam] = false
					}
					continue
				}
				if b.status == live && report {
					c.reportOnce(b.origin, "pooled buffer %s from proto.GetBuffer is not returned by PutBuffer on every path", b.name)
				}
				_ = v
			}
			if ret != nil {
				sawReturn = true
				if !s.retPooled {
					returnsPooledAll = false
				}
			} else {
				returnsPooledAll = false
			}
		},
	}
	w.Walk(decl.Body, &walkState{st: init})

	sum := summary{putsParam: map[int]bool{}}
	for i, ok := range putOnAll {
		if ok && paths > 0 {
			sum.putsParam[i] = true
		}
	}
	sum.returnsPooled = sawReturn && returnsPooledAll && resultIsPoolPtr(sig)
	return sum
}

// walkState wraps the buffer state with a per-path flag for "the
// return statement just walked handed back a live pooled buffer".
type walkState struct {
	st        *state
	retPooled bool
}

func isPoolPtr(t types.Type) bool {
	p, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	s, ok := p.Elem().Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

func resultIsPoolPtr(sig *types.Signature) bool {
	return sig.Results().Len() >= 1 && isPoolPtr(sig.Results().At(0).Type())
}

func (c *checker) reportOnce(pos token.Pos, format string, args ...any) {
	p := c.pass.Position(pos)
	key := p.String() + format
	if c.seen[key] {
		return
	}
	c.seen[key] = true
	c.pass.Reportf(pos, format, args...)
}

// step interprets one straight-line statement.
func (c *checker) step(s *walkState, stmt ast.Stmt, report bool) {
	switch stmt := stmt.(type) {
	case *ast.AssignStmt:
		c.assign(s, stmt.Lhs, stmt.Rhs, report)
	case *ast.DeclStmt:
		if gd, ok := stmt.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok && len(vs.Values) > 0 {
					lhs := make([]ast.Expr, len(vs.Names))
					for i, n := range vs.Names {
						lhs[i] = n
					}
					c.assign(s, lhs, vs.Values, report)
				}
			}
		}
	case *ast.ExprStmt:
		c.scan(s, stmt.X, false, report)
	case *ast.DeferStmt:
		c.deferred(s, stmt.Call, report)
	case *ast.GoStmt:
		// The goroutine outlives this path: everything it touches is
		// an ownership transfer.
		c.scan(s, stmt.Call.Fun, true, report)
		for _, a := range stmt.Call.Args {
			c.scan(s, a, true, report)
		}
	case *ast.ReturnStmt:
		c.returned(s, stmt, report)
	case *ast.SendStmt:
		c.scan(s, stmt.Chan, false, report)
		c.scan(s, stmt.Value, true, report)
	case *ast.IncDecStmt:
		c.scan(s, stmt.X, false, report)
	default:
		ast.Inspect(stmt, func(n ast.Node) bool {
			if x, ok := n.(ast.Expr); ok {
				c.scan(s, x, true, report)
				return false
			}
			return true
		})
	}
}

// assign interprets one (possibly tuple) assignment.
func (c *checker) assign(s *walkState, lhs, rhs []ast.Expr, report bool) {
	// Single-call forms can mint a new owner: x := proto.GetBuffer(),
	// or x := helper() where helper returns a live pooled buffer.
	if len(rhs) == 1 {
		if call, ok := ast.Unparen(rhs[0]).(*ast.CallExpr); ok {
			if v := c.lhsVar(lhs[0]); v != nil {
				if astq.IsPkgFunc(c.pass.TypesInfo, call, protoPkg, "GetBuffer") {
					c.retire(s, v, report)
					s.st.bufs[v] = &bufInfo{origin: call.Pos(), name: v.Name(), status: live, fromParam: -1}
					for _, a := range call.Args {
						c.scan(s, a, false, report)
					}
					return
				}
				if callee := astq.Callee(c.pass.TypesInfo, call); callee != nil && c.sums.Of(callee).returnsPooled {
					c.callUses(s, call, report)
					c.retire(s, v, report)
					s.st.bufs[v] = &bufInfo{origin: call.Pos(), name: v.Name(), status: live, fromParam: -1}
					return
				}
			}
		}
	}
	for i, r := range rhs {
		var lv *types.Var
		if i < len(lhs) {
			lv = c.lhsVar(lhs[i])
		}
		if owner := c.ownerOf(s, r); owner != nil {
			c.useCheck(s, r.Pos(), owner, report)
			if call, ok := ast.Unparen(r).(*ast.CallExpr); ok {
				for _, a := range call.Args {
					c.scan(s, a, false, report)
				}
			}
			if lv != nil {
				c.retire(s, lv, report)
				delete(s.st.bufs, lv)
				s.st.derived[lv] = owner
				continue
			}
			// Derived data stored into a structure: fine while live —
			// DESIGN requires the store side to copy.
			c.scan(s, r, false, report)
			continue
		}
		c.scan(s, r, false, report)
		if lv != nil {
			// Reassignment kills any previous tracking of the variable.
			c.retire(s, lv, report)
			delete(s.st.bufs, lv)
			delete(s.st.derived, lv)
		}
	}
	// LHS expressions that are not plain idents still evaluate
	// (e.g. *buf = assembled uses buf).
	for _, l := range lhs {
		if _, ok := ast.Unparen(l).(*ast.Ident); !ok {
			c.scan(s, l, false, report)
		}
	}
}

// retire reports a live buffer that is about to lose its variable.
func (c *checker) retire(s *walkState, v *types.Var, report bool) {
	if b, ok := s.st.bufs[v]; ok && b.status == live && !b.deferredPut && b.fromParam < 0 && report {
		c.reportOnce(b.origin, "pooled buffer %s is overwritten while still live (missing PutBuffer)", b.name)
	}
}

// lhsVar resolves an assignment target to its variable object, or nil
// for blank or non-ident targets.
func (c *checker) lhsVar(x ast.Expr) *types.Var {
	id, ok := ast.Unparen(x).(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	if v, ok := c.pass.TypesInfo.Defs[id].(*types.Var); ok {
		return v
	}
	v, _ := c.pass.TypesInfo.Uses[id].(*types.Var)
	return v
}

// ownerOf resolves which tracked buffer (if any) backs the value of x:
// the buffer itself, a deref/slice/index of it, a derived variable, a
// builtin append over derived data, or a proto.Append* helper fed
// derived data.
func (c *checker) ownerOf(s *walkState, x ast.Expr) *types.Var {
	switch x := ast.Unparen(x).(type) {
	case *ast.Ident:
		if v, ok := c.pass.TypesInfo.Uses[x].(*types.Var); ok {
			if _, tracked := s.st.bufs[v]; tracked {
				return v
			}
			if o, ok := s.st.derived[v]; ok {
				return o
			}
		}
	case *ast.StarExpr:
		return c.ownerOf(s, x.X)
	case *ast.SliceExpr:
		return c.ownerOf(s, x.X)
	case *ast.IndexExpr:
		return c.ownerOf(s, x.X)
	case *ast.CallExpr:
		if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok && id.Name == "append" {
			if _, isBuiltin := c.pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin && len(x.Args) > 0 {
				return c.ownerOf(s, x.Args[0])
			}
		}
		// proto.Append* helpers return their first argument's backing
		// array, per the package's append-style contract.
		if fn := astq.Callee(c.pass.TypesInfo, x); fn != nil && fn.Pkg() != nil &&
			astq.PathMatches(fn.Pkg().Path(), protoPkg) && len(x.Args) > 0 &&
			len(fn.Name()) > 6 && fn.Name()[:6] == "Append" {
			return c.ownerOf(s, x.Args[0])
		}
	}
	return nil
}

// useCheck flags any touch of a buffer that is already back in the
// pool.
func (c *checker) useCheck(s *walkState, pos token.Pos, owner *types.Var, report bool) {
	if b, ok := s.st.bufs[owner]; ok && b.status == put && report {
		c.reportOnce(pos, "use of pooled buffer %s after PutBuffer", b.name)
	}
}

// scan interprets an expression for uses, puts, and escapes. escape
// marks contexts where a tracked buffer pointer leaving means
// ownership transfer.
func (c *checker) scan(s *walkState, x ast.Expr, escape bool, report bool) {
	switch x := ast.Unparen(x).(type) {
	case nil:
	case *ast.Ident:
		v, _ := c.pass.TypesInfo.Uses[x].(*types.Var)
		if v == nil {
			return
		}
		if b, ok := s.st.bufs[v]; ok {
			c.useCheck(s, x.Pos(), v, report)
			if escape && b.status == live {
				b.status = escaped
			}
			return
		}
		if o, ok := s.st.derived[v]; ok {
			c.useCheck(s, x.Pos(), o, report)
		}
	case *ast.StarExpr:
		c.scan(s, x.X, false, report)
	case *ast.SliceExpr:
		c.scan(s, x.X, false, report)
		c.scan(s, x.Low, false, report)
		c.scan(s, x.High, false, report)
		c.scan(s, x.Max, false, report)
	case *ast.IndexExpr:
		c.scan(s, x.X, false, report)
		c.scan(s, x.Index, false, report)
	case *ast.SelectorExpr:
		c.scan(s, x.X, false, report)
	case *ast.UnaryExpr:
		c.scan(s, x.X, escape, report)
	case *ast.BinaryExpr:
		c.scan(s, x.X, false, report)
		c.scan(s, x.Y, false, report)
	case *ast.TypeAssertExpr:
		c.scan(s, x.X, escape, report)
	case *ast.CompositeLit:
		for _, e := range x.Elts {
			if kv, ok := e.(*ast.KeyValueExpr); ok {
				c.scan(s, kv.Value, true, report)
				continue
			}
			c.scan(s, e, true, report)
		}
	case *ast.FuncLit:
		// A closure capturing the buffer may run at any time:
		// ownership transfers.
		ast.Inspect(x.Body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			if v, ok := c.pass.TypesInfo.Uses[id].(*types.Var); ok {
				if b, tracked := s.st.bufs[v]; tracked && b.status == live {
					b.status = escaped
				}
			}
			return true
		})
	case *ast.CallExpr:
		c.call(s, x, report)
	default:
		ast.Inspect(x, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				c.scan(s, id, escape, report)
			}
			return true
		})
	}
}

// call interprets one call expression: PutBuffer transitions, summary
// applications, and escapes for unknown callees.
func (c *checker) call(s *walkState, call *ast.CallExpr, report bool) {
	info := c.pass.TypesInfo
	if astq.IsPkgFunc(info, call, protoPkg, "PutBuffer") && len(call.Args) == 1 {
		if v := c.argVar(s, call.Args[0]); v != nil {
			c.putTransition(s, v, call.Args[0].Pos(), report)
			return
		}
	}
	if astq.IsPkgFunc(info, call, protoPkg, "GetBuffer") {
		// Bare GetBuffer() whose result is dropped leaks immediately.
		if report {
			c.reportOnce(call.Pos(), "proto.GetBuffer result discarded: buffer leaks")
		}
		return
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			for _, a := range call.Args {
				c.scan(s, a, false, report)
			}
			return
		}
	}
	callee := astq.Callee(info, call)
	var sum summary
	if callee != nil {
		sum = c.sums.Of(callee)
	}
	c.scan(s, call.Fun, false, report)
	for i, a := range call.Args {
		if sum.putsParam[i] {
			if v := c.argVar(s, a); v != nil {
				c.putTransition(s, v, a.Pos(), report)
				continue
			}
		}
		c.scan(s, a, true, report)
	}
}

// callUses scans a call's arguments for uses without escape semantics
// (used when the call itself is the tracked origin).
func (c *checker) callUses(s *walkState, call *ast.CallExpr, report bool) {
	for _, a := range call.Args {
		c.scan(s, a, true, report)
	}
}

// argVar resolves a call argument to a tracked buffer variable.
func (c *checker) argVar(s *walkState, x ast.Expr) *types.Var {
	id, ok := ast.Unparen(x).(*ast.Ident)
	if !ok {
		return nil
	}
	v, _ := c.pass.TypesInfo.Uses[id].(*types.Var)
	if v == nil {
		return nil
	}
	if _, tracked := s.st.bufs[v]; !tracked {
		return nil
	}
	return v
}

// putTransition moves a buffer to put, reporting double-puts.
func (c *checker) putTransition(s *walkState, v *types.Var, pos token.Pos, report bool) {
	b := s.st.bufs[v]
	if report {
		switch {
		case b.status == put:
			c.reportOnce(pos, "double PutBuffer on pooled buffer %s", b.name)
		case b.deferredPut:
			c.reportOnce(pos, "pooled buffer %s is PutBuffer'd here and again by a deferred PutBuffer", b.name)
		}
	}
	if b.status == live {
		b.status = put
	}
}

// deferred interprets a defer statement.
func (c *checker) deferred(s *walkState, call *ast.CallExpr, report bool) {
	info := c.pass.TypesInfo
	if astq.IsPkgFunc(info, call, protoPkg, "PutBuffer") && len(call.Args) == 1 {
		if v := c.argVar(s, call.Args[0]); v != nil {
			b := s.st.bufs[v]
			if report {
				switch {
				case b.deferredPut:
					c.reportOnce(call.Pos(), "duplicate deferred PutBuffer on pooled buffer %s", b.name)
				case b.status == put:
					c.reportOnce(call.Pos(), "deferred PutBuffer on pooled buffer %s already returned to the pool", b.name)
				}
			}
			b.deferredPut = true
			return
		}
	}
	callee := astq.Callee(info, call)
	var sum summary
	if callee != nil {
		sum = c.sums.Of(callee)
	}
	for i, a := range call.Args {
		if sum.putsParam[i] {
			if v := c.argVar(s, a); v != nil {
				s.st.bufs[v].deferredPut = true
				continue
			}
		}
		c.scan(s, a, true, report)
	}
}

// returned interprets a return statement: returning the buffer pointer
// transfers ownership; returning derived data whose backing buffer is
// (or is about to be) recycled is a bug.
func (c *checker) returned(s *walkState, ret *ast.ReturnStmt, report bool) {
	for i, r := range ret.Results {
		if v := c.argVar(s, r); v != nil {
			b := s.st.bufs[v]
			if b.status == put && report {
				c.reportOnce(r.Pos(), "use of pooled buffer %s after PutBuffer", b.name)
			}
			if b.status == live && !b.deferredPut {
				b.status = escaped
				if i == 0 {
					s.retPooled = true
				}
			}
			continue
		}
		if call, ok := ast.Unparen(r).(*ast.CallExpr); ok &&
			astq.IsPkgFunc(c.pass.TypesInfo, call, protoPkg, "GetBuffer") {
			if i == 0 {
				s.retPooled = true
			}
			continue
		}
		if owner := c.ownerOf(s, r); owner != nil {
			b := s.st.bufs[owner]
			if report && (b.status == put || b.deferredPut) {
				c.reportOnce(r.Pos(), "returning data backed by pooled buffer %s that is returned to the pool", b.name)
			}
			continue
		}
		c.scan(s, r, true, report)
	}
}
