package idemtable_test

import (
	"testing"

	"reedvet/analysistest"
	"reedvet/analyzers/idemtable"
)

func TestFixtures(t *testing.T) {
	// Two trees: idem has a well-formed table with drifted call sites
	// and mis-gated Router methods; idembad has a malformed table.
	analysistest.Run(t, "../../testdata/fix",
		[]string{"./idem/...", "./idembad/..."}, idemtable.Analyzer)
}
