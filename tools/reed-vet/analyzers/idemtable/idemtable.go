// Package idemtable enforces a single source of truth for RPC
// idempotency. proto.Idempotent is the canonical table; this analyzer
// checks three things across packages:
//
//  1. Table shape: every MsgType request constant is classified in
//     proto.Idempotent exactly once, and only request types appear.
//  2. Call-site agreement: wherever a request is issued with a literal
//     idempotency flag (directly to rpcmux's Call, or through
//     forwarding helpers like server.Client.call and
//     keymanager.Client.call whose flag is fixed inside), the flag
//     must match the canonical table.
//  3. Router gating: a cluster.Router method that issues any
//     non-idempotent request must consult downErr (fail fast on a
//     down-marked shard), and a method issuing only idempotent
//     requests must not — idempotent reads are what heal the mark.
//
// The analysis is interprocedural across packages: forwarding-helper
// summaries and issued-request sets flow from internal/proto through
// internal/server into internal/cluster via the runner's
// dependency-ordered fact store.
package idemtable

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"reedvet/analysis"
	"reedvet/internal/astq"
	"reedvet/internal/flow"
)

var Analyzer = &analysis.Analyzer{
	Name: "idemtable",
	Doc:  "every MsgType has exactly one idempotency classification and all retry tables agree with proto.Idempotent",
	Run:  run,
}

// table is one proto package's canonical classification, keyed by
// request constant name.
type table map[string]bool

// fwd is a function's idempotency transfer summary.
type fwd struct {
	// typParam / idemParam are the function's own parameter indices
	// that flow into the wire-type and idempotency-flag slots of an
	// underlying rpcmux call; -1 when absent.
	typParam, idemParam int
	// idemFixed pins the flag to a literal inside the function
	// (keymanager.Client.call hardcodes true).
	idemFixed *bool
	// issues lists the (request, flag) pairs the function sends with
	// both sides resolved, transitively through callees.
	issues map[string]bool
	// valid marks a usable summary.
	valid bool
}

func noFwd() fwd { return fwd{typParam: -1, idemParam: -1} }

type checker struct {
	pass  *analysis.Pass
	idx   map[*types.Func]*ast.FuncDecl
	sums  *flow.Summarizer[fwd]
	table table
}

func run(pass *analysis.Pass) error {
	c := &checker{pass: pass, idx: flow.Index(pass.Files, pass.TypesInfo)}

	if astq.PathMatches(pass.Pkg.Path(), "internal/proto") {
		c.checkTable()
	}
	c.table = c.findTable()

	c.sums = &flow.Summarizer[fwd]{
		Idx:     c.idx,
		Unknown: noFwd(),
		Compute: func(fn *types.Func, decl *ast.FuncDecl) fwd { return c.summarize(fn, decl) },
		External: func(fn *types.Func) (fwd, bool) {
			if base, ok := rpcmuxBase(fn); ok {
				return base, true
			}
			if pass.Facts != nil {
				if v, ok := pass.Facts.Get("fwd:" + fn.FullName()); ok {
					return v.(fwd), true
				}
			}
			return noFwd(), false
		},
	}

	// Summarize every local function: this is also where call sites
	// with fully-resolved (type, flag) pairs are checked against the
	// table.
	for fn := range c.idx {
		sum := c.sums.Of(fn)
		if pass.Facts != nil && fn.Exported() && sum.valid {
			pass.Facts.Put("fwd:"+fn.FullName(), sum)
		}
	}

	if astq.PathMatches(pass.Pkg.Path(), "internal/cluster") {
		c.checkRouter()
	}
	return nil
}

// findTable locates the canonical table of the proto package this
// package uses: its own when it is the proto package, otherwise the
// directly imported one.
func (c *checker) findTable() table {
	if c.pass.Facts == nil {
		return nil
	}
	if astq.PathMatches(c.pass.Pkg.Path(), "internal/proto") {
		if v, ok := c.pass.Facts.Get("table:" + c.pass.Pkg.Path()); ok {
			return v.(table)
		}
		return nil
	}
	for _, imp := range c.pass.Pkg.Imports() {
		if astq.PathMatches(imp.Path(), "internal/proto") {
			if v, ok := c.pass.Facts.Get("table:" + imp.Path()); ok {
				return v.(table)
			}
		}
	}
	return nil
}

// checkTable parses and validates proto.Idempotent in the current
// (proto) package, then publishes it.
func (c *checker) checkTable() {
	reqConsts := c.requestConsts()
	var decl *ast.FuncDecl
	for fn, d := range c.idx {
		if fn.Name() == "Idempotent" && flow.ReceiverOf(fn) == nil {
			decl = d
			break
		}
	}
	if decl == nil {
		if len(reqConsts) > 0 {
			c.pass.Reportf(c.pass.Files[0].Name.Pos(),
				"package declares %d MsgType request constants but no Idempotent classification table", len(reqConsts))
		}
		return
	}

	tbl := table{}
	classified := map[string]token.Pos{}
	for _, stmt := range decl.Body.List {
		sw, ok := stmt.(*ast.SwitchStmt)
		if !ok {
			continue
		}
		for _, cl := range sw.Body.List {
			cc := cl.(*ast.CaseClause)
			if cc.List == nil {
				c.pass.Reportf(cc.Pos(), "Idempotent must classify request types explicitly, not via default")
				continue
			}
			verdict, ok := caseVerdict(cc)
			if !ok {
				c.pass.Reportf(cc.Pos(), "Idempotent case must be a single `return true` or `return false`")
				continue
			}
			for _, x := range cc.List {
				name, pos := constName(c.pass.TypesInfo, x)
				if name == "" {
					c.pass.Reportf(x.Pos(), "Idempotent case entry is not a MsgType constant")
					continue
				}
				if !strings.HasSuffix(name, "Req") {
					c.pass.Reportf(pos, "%s is not a request type and does not belong in the idempotency table", name)
					continue
				}
				if prev, dup := classified[name]; dup {
					c.pass.Reportf(pos, "%s is classified twice in Idempotent (previously at %s)", name, c.pass.Position(prev))
					continue
				}
				classified[name] = pos
				tbl[name] = verdict
			}
		}
	}
	var missing []string
	for name := range reqConsts {
		if _, ok := classified[name]; !ok {
			missing = append(missing, name)
		}
	}
	sort.Strings(missing)
	for _, name := range missing {
		c.pass.Reportf(decl.Name.Pos(), "%s has no idempotency classification in Idempotent", name)
	}
	if c.pass.Facts != nil {
		c.pass.Facts.Put("table:"+c.pass.Pkg.Path(), tbl)
	}
}

// requestConsts collects the package's MsgType constants named *Req.
func (c *checker) requestConsts() map[string]token.Pos {
	out := map[string]token.Pos{}
	scope := c.pass.Pkg.Scope()
	for _, name := range scope.Names() {
		cst, ok := scope.Lookup(name).(*types.Const)
		if !ok || !strings.HasSuffix(name, "Req") {
			continue
		}
		if n := astq.NamedType(cst.Type()); n != nil && n.Obj().Name() == "MsgType" {
			out[name] = cst.Pos()
		}
	}
	return out
}

// caseVerdict extracts the single `return <bool>` of a case body.
func caseVerdict(cc *ast.CaseClause) (bool, bool) {
	if len(cc.Body) != 1 {
		return false, false
	}
	ret, ok := cc.Body[0].(*ast.ReturnStmt)
	if !ok || len(ret.Results) != 1 {
		return false, false
	}
	id, ok := ast.Unparen(ret.Results[0]).(*ast.Ident)
	if !ok {
		return false, false
	}
	switch id.Name {
	case "true":
		return true, true
	case "false":
		return false, true
	}
	return false, false
}

// constName resolves an expression to a MsgType constant name.
func constName(info *types.Info, x ast.Expr) (string, token.Pos) {
	var id *ast.Ident
	switch x := ast.Unparen(x).(type) {
	case *ast.Ident:
		id = x
	case *ast.SelectorExpr:
		id = x.Sel
	default:
		return "", token.NoPos
	}
	cst, ok := info.Uses[id].(*types.Const)
	if !ok {
		return "", token.NoPos
	}
	if n := astq.NamedType(cst.Type()); n == nil || n.Obj().Name() != "MsgType" {
		return "", token.NoPos
	}
	return cst.Name(), id.Pos()
}

// rpcmuxBase recognizes the transport-layer root by shape: an
// internal/rpcmux function taking a MsgType and an idempotency bool.
func rpcmuxBase(fn *types.Func) (fwd, bool) {
	if fn.Pkg() == nil || !astq.PathMatches(fn.Pkg().Path(), "internal/rpcmux") {
		return noFwd(), false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return noFwd(), false
	}
	typIdx, boolIdx := -1, -1
	for i := 0; i < sig.Params().Len(); i++ {
		t := sig.Params().At(i).Type()
		if typIdx < 0 {
			if n := astq.NamedType(t); n != nil && n.Obj().Name() == "MsgType" &&
				n.Obj().Pkg() != nil && astq.PathMatches(n.Obj().Pkg().Path(), "internal/proto") {
				typIdx = i
			}
		}
		if boolIdx < 0 {
			if b, ok := t.Underlying().(*types.Basic); ok && b.Kind() == types.Bool {
				boolIdx = i
			}
		}
	}
	if typIdx < 0 || boolIdx < 0 {
		return noFwd(), false
	}
	return fwd{typParam: typIdx, idemParam: boolIdx, issues: map[string]bool{}, valid: true}, true
}

// summarize computes one function's fwd summary, checking any call
// site it fully resolves along the way.
func (c *checker) summarize(fn *types.Func, decl *ast.FuncDecl) fwd {
	if base, ok := rpcmuxBase(fn); ok {
		return base
	}
	sum := noFwd()
	sum.issues = map[string]bool{}
	if decl.Body == nil {
		return sum
	}
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // closures are separate schedules; Router handles its own
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := astq.Callee(c.pass.TypesInfo, call)
		if callee == nil {
			return true
		}
		f2 := c.sums.Of(callee)
		if !f2.valid {
			return true
		}
		sum.valid = true
		for name, idem := range f2.issues {
			sum.issues[name] = idem
		}
		typName, typParam := c.resolveTyp(fn, call, f2)
		idemVal, idemParam := c.resolveIdem(fn, call, f2)
		switch {
		case typName != "" && idemVal != nil:
			sum.issues[typName] = *idemVal
			c.checkIssue(call, typName, *idemVal)
		case typParam >= 0:
			sum.typParam, sum.idemParam, sum.idemFixed = typParam, idemParam, idemVal
		}
		return true
	})
	return sum
}

// resolveTyp resolves the wire-type slot of a call through f2: a
// constant name, or the caller's own parameter index.
func (c *checker) resolveTyp(fn *types.Func, call *ast.CallExpr, f2 fwd) (string, int) {
	if f2.typParam < 0 || f2.typParam >= len(call.Args) {
		return "", -1
	}
	arg := call.Args[f2.typParam]
	if name, _ := constName(c.pass.TypesInfo, arg); name != "" {
		return name, -1
	}
	if id, ok := ast.Unparen(arg).(*ast.Ident); ok {
		if v, ok := c.pass.TypesInfo.Uses[id].(*types.Var); ok {
			if i := flow.ParamIndex(fn, v); i >= 0 {
				return "", i
			}
		}
	}
	return "", -1
}

// resolveIdem resolves the idempotency-flag slot: a fixed bool, or the
// caller's own parameter index.
func (c *checker) resolveIdem(fn *types.Func, call *ast.CallExpr, f2 fwd) (*bool, int) {
	if f2.idemFixed != nil {
		return f2.idemFixed, -1
	}
	if f2.idemParam < 0 || f2.idemParam >= len(call.Args) {
		return nil, -1
	}
	arg := ast.Unparen(call.Args[f2.idemParam])
	if id, ok := arg.(*ast.Ident); ok {
		switch id.Name {
		case "true":
			v := true
			return &v, -1
		case "false":
			v := false
			return &v, -1
		}
		if v, ok := c.pass.TypesInfo.Uses[id].(*types.Var); ok {
			if i := flow.ParamIndex(fn, v); i >= 0 {
				return nil, i
			}
		}
	}
	return nil, -1
}

// checkIssue compares one fully-resolved call site with the canonical
// table.
func (c *checker) checkIssue(call *ast.CallExpr, typName string, idem bool) {
	if c.table == nil {
		return
	}
	want, ok := c.table[typName]
	if !ok {
		if strings.HasSuffix(typName, "Req") {
			c.pass.Reportf(call.Pos(), "%s is issued here but has no classification in proto.Idempotent", typName)
		}
		return
	}
	if want != idem {
		c.pass.Reportf(call.Pos(),
			"%s issued with idempotent=%v but proto.Idempotent classifies it as %v", typName, idem, want)
	}
}

// checkRouter enforces the down-marking contract on cluster.Router
// methods.
func (c *checker) checkRouter() {
	for fn, decl := range c.idx {
		recv := flow.ReceiverOf(fn)
		if recv == nil || recv.Obj().Name() != "Router" || decl.Body == nil {
			continue
		}
		issues := map[string]bool{}
		callsDown := false
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := astq.Callee(c.pass.TypesInfo, call)
			if callee == nil {
				return true
			}
			if callee.Name() == "downErr" && flow.ReceiverOf(callee) != nil &&
				flow.ReceiverOf(callee).Obj().Name() == "Router" {
				callsDown = true
				return true
			}
			f2 := c.sums.Of(callee)
			if !f2.valid {
				return true
			}
			for name, idem := range f2.issues {
				issues[name] = idem
			}
			if name, _ := c.resolveTyp(fn, call, f2); name != "" {
				if v, _ := c.resolveIdem(fn, call, f2); v != nil {
					issues[name] = *v
				}
			}
			return true
		})
		if len(issues) == 0 {
			continue
		}
		var nonIdem []string
		for name, idem := range issues {
			if !idem {
				nonIdem = append(nonIdem, name)
			}
		}
		sort.Strings(nonIdem)
		if len(nonIdem) > 0 && !callsDown {
			c.pass.Reportf(decl.Name.Pos(),
				"Router.%s issues non-idempotent %s without consulting downErr (fail-fast gating)",
				fn.Name(), strings.Join(nonIdem, ", "))
		}
		if len(nonIdem) == 0 && callsDown {
			c.pass.Reportf(decl.Name.Pos(),
				"Router.%s consults downErr but issues only idempotent requests, which should always try (they heal the mark)",
				fn.Name())
		}
	}
}
