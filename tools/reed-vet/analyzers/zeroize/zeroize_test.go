package zeroize_test

import (
	"testing"

	"reedvet/analysistest"
	"reedvet/analyzers/zeroize"
)

func TestFixtures(t *testing.T) {
	analysistest.Run(t, "../../testdata/fix",
		[]string{"./zeroize/..."}, zeroize.Analyzer)
}
