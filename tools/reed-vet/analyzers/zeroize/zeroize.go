// Package zeroize enforces REED's key-erasure invariant: every value
// produced by a `//reed:secret`-marked assignment must reach core.Wipe
// on every return path of the function that created it.
//
// Rekeying's security argument (REED paper §IV-B) is that revoked users
// lose access to future data *and* that compromised client memory
// exposes as little past key material as possible. core.Wipe bounds the
// exposure window of transient key copies — file keys unwound for a
// download, old/new key pairs during a rekey pass — but only if every
// exit path actually runs it. A forgotten early return keeps the key
// alive until the GC gets around to the frame, exactly the window Wipe
// exists to close.
//
// The analyzer tracks, per control-flow path (flow.Walker):
//
//   - sources: the variables assigned on a marker line (the line
//     carrying `//reed:secret` or the line directly below it);
//   - wipes: direct or deferred calls to core.Wipe(v) / core.Wipe(v[:]),
//     or calls passing the secret to a helper whose summary
//     (flow.Summarizer, bridged across packages via Facts) wipes that
//     parameter on all of its own return paths;
//   - ownership transfers: returning the secret or storing it into a
//     field, map, slice element, or global hands responsibility to the
//     new owner and ends local tracking.
//
// A path that ends with a live, unwiped, untransferred secret is a
// violation, reported once at the marked source line.
package zeroize

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"reedvet/analysis"
	"reedvet/internal/astq"
	"reedvet/internal/flow"
)

var Analyzer = &analysis.Analyzer{
	Name: "zeroize",
	Doc:  "//reed:secret values must reach core.Wipe on every return path",
	Run:  run,
}

// secretMarker is the declaration marker shared with keyhygiene.
const secretMarker = "//reed:secret"

// summary is a function's wipe transfer behavior: which parameters it
// wipes (directly or via defer) on every one of its return paths.
type summary struct {
	wipesParam map[int]bool
}

// secretInfo tracks one secret value along one path.
type secretInfo struct {
	name   string
	origin token.Pos
	wiped  bool // core.Wipe ran, was deferred, or a wiping helper took it
}

type state struct {
	secrets map[*types.Var]*secretInfo
}

func (s *state) clone() *state {
	ns := &state{secrets: make(map[*types.Var]*secretInfo, len(s.secrets))}
	for v, info := range s.secrets {
		cp := *info
		ns.secrets[v] = &cp
	}
	return ns
}

type checker struct {
	pass *analysis.Pass
	idx  map[*types.Func]*ast.FuncDecl
	sum  *flow.Summarizer[summary]
	// marked holds file:line positions carrying the secret marker;
	// standalone holds the subset whose line carries no code, which
	// also mark the line below.
	marked     map[string]map[int]bool
	standalone map[string]map[int]bool
	// reported dedups diagnostics across the paths of one function.
	reported map[token.Pos]bool
}

func run(pass *analysis.Pass) error {
	c := &checker{
		pass:       pass,
		idx:        flow.Index(pass.Files, pass.TypesInfo),
		marked:     map[string]map[int]bool{},
		standalone: map[string]map[int]bool{},
		reported:   map[token.Pos]bool{},
	}
	c.sum = &flow.Summarizer[summary]{
		Idx:      c.idx,
		Compute:  c.summarize,
		External: c.external,
		Unknown:  summary{},
	}
	for _, f := range pass.Files {
		// Lines holding code: a marker sharing its line with code is a
		// trailing marker and must not bleed into the statement below.
		code := map[int]bool{}
		for _, d := range f.Decls {
			ast.Inspect(d, func(n ast.Node) bool {
				if n != nil {
					code[pass.Position(n.Pos()).Line] = true
				}
				return true
			})
		}
		for _, cg := range f.Comments {
			for _, cm := range cg.List {
				if !strings.HasPrefix(cm.Text, secretMarker) {
					continue
				}
				p := pass.Position(cm.Pos())
				if c.marked[p.Filename] == nil {
					c.marked[p.Filename] = map[int]bool{}
					c.standalone[p.Filename] = map[int]bool{}
				}
				c.marked[p.Filename][p.Line] = true
				if !code[p.Line] {
					c.standalone[p.Filename][p.Line] = true
				}
			}
		}
	}
	for fn, decl := range c.idx {
		if decl.Body == nil {
			continue
		}
		c.analyze(decl)
		// Export the wipe summary so other packages' helpers resolve
		// through Facts even without a local declaration.
		if fn.Exported() {
			if s := c.sum.Of(fn); len(s.wipesParam) > 0 {
				pass.Facts.Put("wipe:"+fn.FullName(), s)
			}
		}
	}
	return nil
}

// external resolves wipe summaries for cross-package helpers from the
// Facts their defining package exported.
func (c *checker) external(fn *types.Func) (summary, bool) {
	if v, ok := c.pass.Facts.Get("wipe:" + fn.FullName()); ok {
		if s, ok := v.(summary); ok {
			return s, true
		}
	}
	return summary{}, false
}

// analyze walks one function and reports secrets that miss core.Wipe on
// some path.
func (c *checker) analyze(decl *ast.FuncDecl) {
	// Fast prescan: skip functions with no marker anywhere in range.
	if !c.hasMarkedLine(decl) {
		return
	}
	w := &flow.Walker[*state]{
		Clone: (*state).clone,
		Stmt:  c.step,
		End: func(s *state, _ *ast.ReturnStmt) {
			for _, info := range s.secrets {
				if !info.wiped && !c.reported[info.origin] {
					c.reported[info.origin] = true
					c.pass.Reportf(info.origin,
						"secret %s from a //reed:secret source is not wiped by core.Wipe on every return path", info.name)
				}
			}
		},
	}
	w.Walk(decl.Body, &state{secrets: map[*types.Var]*secretInfo{}})
}

// hasMarkedLine reports whether any marker line falls inside decl.
func (c *checker) hasMarkedLine(decl *ast.FuncDecl) bool {
	start := c.pass.Position(decl.Pos())
	end := c.pass.Position(decl.End())
	lines := c.marked[start.Filename]
	for line := range lines {
		if line >= start.Line && line <= end.Line {
			return true
		}
	}
	return false
}

// summarize computes which of fn's parameters are wiped on every return
// path, so callers may discharge their own secrets through it.
func (c *checker) summarize(fn *types.Func, decl *ast.FuncDecl) summary {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Params().Len() == 0 {
		return summary{}
	}
	// Pre-register every byte-ish parameter as a pseudo-secret and see
	// which survive unwiped on any path.
	init := &state{secrets: map[*types.Var]*secretInfo{}}
	for i := 0; i < sig.Params().Len(); i++ {
		p := sig.Params().At(i)
		init.secrets[p] = &secretInfo{name: p.Name(), origin: p.Pos()}
	}
	wipedAll := map[*types.Var]bool{}
	first := true
	w := &flow.Walker[*state]{
		Clone: (*state).clone,
		Stmt:  c.step,
		End: func(s *state, _ *ast.ReturnStmt) {
			for v, info := range s.secrets {
				if first {
					wipedAll[v] = info.wiped
				} else if !info.wiped {
					wipedAll[v] = false
				}
			}
			first = false
		},
	}
	w.Walk(decl.Body, init)
	if first {
		return summary{} // no path reached an end (budget, all-panic)
	}
	out := summary{wipesParam: map[int]bool{}}
	for v, ok := range wipedAll {
		if ok {
			if i := flow.ParamIndex(fn, v); i >= 0 {
				out.wipesParam[i] = true
			}
		}
	}
	if len(out.wipesParam) == 0 {
		return summary{}
	}
	return out
}

// step is the per-statement transfer function shared by the reporting
// walk and the summarizer walk.
func (c *checker) step(s *state, st ast.Stmt) *state {
	switch st := st.(type) {
	case *ast.AssignStmt:
		c.scanCalls(s, st)
		c.transfers(s, st)
		c.sources(s, st)
	case *ast.DeclStmt:
		c.declSources(s, st)
	case *ast.ExprStmt:
		c.scanCalls(s, st)
	case *ast.DeferStmt:
		c.wipeCall(s, st.Call)
	case *ast.GoStmt:
		// A goroutine taking the secret owns its lifetime now.
		c.escapeArgs(s, st.Call)
	case *ast.ReturnStmt:
		c.scanCalls(s, st)
		for _, r := range st.Results {
			if v := c.secretIn(s, r); v != nil {
				delete(s.secrets, v) // ownership moves to the caller
			}
		}
	default:
		c.scanCalls(s, st)
	}
	return s
}

// sources registers LHS variables of assignments sitting on a marker
// line (or directly below one) as tracked secrets.
func (c *checker) sources(s *state, st *ast.AssignStmt) {
	if !c.onMarkedLine(st.Pos()) {
		return
	}
	for _, lhs := range st.Lhs {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		obj := c.pass.TypesInfo.Defs[id]
		if obj == nil {
			obj = c.pass.TypesInfo.Uses[id]
		}
		if v, ok := obj.(*types.Var); ok {
			s.secrets[v] = &secretInfo{name: id.Name, origin: id.Pos()}
		}
	}
}

// declSources handles `var k = ...` forms on marker lines.
func (c *checker) declSources(s *state, st *ast.DeclStmt) {
	gd, ok := st.Decl.(*ast.GenDecl)
	if !ok || gd.Tok != token.VAR {
		return
	}
	if !c.onMarkedLine(st.Pos()) {
		return
	}
	for _, spec := range gd.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok || len(vs.Values) == 0 {
			continue // a bare `var k Key` holds no secret yet
		}
		for _, id := range vs.Names {
			if v, ok := c.pass.TypesInfo.Defs[id].(*types.Var); ok {
				s.secrets[v] = &secretInfo{name: id.Name, origin: id.Pos()}
			}
		}
	}
}

// onMarkedLine reports whether pos sits on a trailing marker line or
// directly under a standalone marker comment.
func (c *checker) onMarkedLine(pos token.Pos) bool {
	p := c.pass.Position(pos)
	if lines := c.marked[p.Filename]; lines != nil && lines[p.Line] {
		return true
	}
	alone := c.standalone[p.Filename]
	return alone != nil && alone[p.Line-1]
}

// transfers ends tracking when a secret is stored into a field, index,
// dereference, or package-level variable: the new owner is responsible
// for its erasure (keycache, for instance, wipes on eviction).
func (c *checker) transfers(s *state, st *ast.AssignStmt) {
	for i, rhs := range st.Rhs {
		v := c.secretIn(s, rhs)
		if v == nil || i >= len(st.Lhs) {
			continue
		}
		switch lhs := ast.Unparen(st.Lhs[i]).(type) {
		case *ast.Ident:
			if obj, ok := c.pass.TypesInfo.Uses[lhs].(*types.Var); ok && obj.Parent() == obj.Pkg().Scope() {
				delete(s.secrets, v) // stored into a global
			}
		case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
			delete(s.secrets, v)
		}
	}
}

// scanCalls visits every call expression inside st, applying wipe and
// escape handling.
func (c *checker) scanCalls(s *state, st ast.Stmt) {
	ast.Inspect(st, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			c.wipeCall(s, call)
		}
		return true
	})
}

// wipeCall marks secrets wiped when call is core.Wipe or a helper whose
// summary wipes the corresponding parameter on all paths. Composite
// literals and channel sends that capture the secret transfer
// ownership.
func (c *checker) wipeCall(s *state, call *ast.CallExpr) {
	info := c.pass.TypesInfo
	if astq.IsPkgFunc(info, call, "internal/core", "Wipe") && len(call.Args) == 1 {
		if v := c.secretIn(s, call.Args[0]); v != nil {
			if si := s.secrets[v]; si != nil {
				si.wiped = true
			}
		}
		return
	}
	fn := astq.Callee(info, call)
	if fn == nil {
		return
	}
	sum := c.sum.Of(fn)
	if len(sum.wipesParam) == 0 {
		return
	}
	sig := fn.Type().(*types.Signature)
	for i, arg := range call.Args {
		if i >= sig.Params().Len() {
			break // variadic tail never carries a wipe guarantee
		}
		if !sum.wipesParam[i] {
			continue
		}
		if v := c.secretIn(s, arg); v != nil {
			if si := s.secrets[v]; si != nil {
				si.wiped = true
			}
		}
	}
}

// escapeArgs drops tracking for secrets handed to a goroutine.
func (c *checker) escapeArgs(s *state, call *ast.CallExpr) {
	for _, arg := range call.Args {
		if v := c.secretIn(s, arg); v != nil {
			delete(s.secrets, v)
		}
	}
}

// secretIn resolves e to a tracked secret variable, unwrapping slicing
// (k[:]), parens, and unary address-of.
func (c *checker) secretIn(s *state, e ast.Expr) *types.Var {
	e = ast.Unparen(e)
	for {
		switch x := e.(type) {
		case *ast.SliceExpr:
			e = ast.Unparen(x.X)
			continue
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				e = ast.Unparen(x.X)
				continue
			}
		}
		break
	}
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	obj := c.pass.TypesInfo.Uses[id]
	if obj == nil {
		obj = c.pass.TypesInfo.Defs[id]
	}
	v, ok := obj.(*types.Var)
	if !ok || s.secrets[v] == nil {
		return nil
	}
	return v
}
