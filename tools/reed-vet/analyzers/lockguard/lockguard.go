// Package lockguard flags blocking operations performed while holding
// a storage-layer mutex — the deadlock-and-latency class the PR-2
// lock split (dedup.Store.mu vs cacheMu, store.Disk stripe locks) was
// designed to eliminate.
//
// Within internal/dedup, internal/store, internal/keycache, and
// internal/client (whose CAONT worker pool hands jobs over a channel),
// while a sync.Mutex/RWMutex is held the function must not:
//
//   - send on a channel (another goroutine may need the same lock to
//     drain it);
//   - write to or read from a net.Conn (a stalled peer extends the
//     critical section indefinitely);
//   - call into an RPC client or any context-taking function (these
//     block on the network by design);
//   - sleep.
//
// The analysis is intra-procedural and syntactic about lock regions:
// a region opens at x.Lock()/x.RLock() and closes at the matching
// x.Unlock()/x.RUnlock(); a deferred unlock holds the lock to the end
// of the function. Function literals are analyzed as their own
// functions — a goroutine spawned under a lock does not itself hold
// the lock.
package lockguard

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"reedvet/analysis"
	"reedvet/internal/astq"
)

var Analyzer = &analysis.Analyzer{
	Name: "lockguard",
	Doc:  "no channel sends, conn I/O, RPCs, or sleeps while holding a storage-layer lock",
	Run:  run,
}

// scopedPkgs are the packages the rule governs: the storage layer plus
// the client pipeline, where a pool submit under a pipeline lock would
// deadlock against workers that need the same lock.
var scopedPkgs = []string{"internal/dedup", "internal/store", "internal/keycache", "internal/client"}

func run(pass *analysis.Pass) error {
	if !astq.PathMatches(pass.Pkg.Path(), scopedPkgs...) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					checkBody(pass, n.Body)
				}
				return false // checkBody recurses into nested FuncLits itself
			case *ast.FuncLit:
				checkBody(pass, n.Body)
				return false
			}
			return true
		})
	}
	return nil
}

// checkBody walks one function body in source order tracking held
// locks.
func checkBody(pass *analysis.Pass, body *ast.BlockStmt) {
	held := map[string]bool{} // lock expression string -> held
	walkStmts(pass, body.List, held)
}

func walkStmts(pass *analysis.Pass, stmts []ast.Stmt, held map[string]bool) {
	for _, s := range stmts {
		walkStmt(pass, s, held)
	}
}

// walkStmt updates the held set for lock/unlock statements and scans
// everything else for violations while locks are held.
func walkStmt(pass *analysis.Pass, s ast.Stmt, held map[string]bool) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if name, op, ok := lockOp(pass.TypesInfo, s.X); ok {
			switch op {
			case "Lock", "RLock":
				held[name] = true
			case "Unlock", "RUnlock":
				delete(held, name)
			}
			return
		}
		scan(pass, s, held)
	case *ast.DeferStmt:
		if _, op, ok := lockOp(pass.TypesInfo, s.Call); ok && (op == "Unlock" || op == "RUnlock") {
			return // releases at function exit: lock stays held for the walk
		}
		// Deferred work runs after the locks are released.
	case *ast.BlockStmt:
		walkStmts(pass, s.List, held)
	case *ast.IfStmt:
		scanExpr(pass, s.Cond, held)
		inner := copyHeld(held)
		walkStmt(pass, s.Body, inner)
		if s.Else != nil {
			walkStmt(pass, s.Else, copyHeld(held))
		}
	case *ast.ForStmt:
		walkStmt(pass, s.Body, copyHeld(held))
	case *ast.RangeStmt:
		walkStmt(pass, s.Body, copyHeld(held))
	case *ast.SwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				walkStmts(pass, cc.Body, copyHeld(held))
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				walkStmts(pass, cc.Body, copyHeld(held))
			}
		}
	case *ast.SelectStmt:
		// A select whose every armed case is a receive merely waits;
		// sends inside are flagged by scan below. Bodies run with the
		// same locks held.
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				if len(held) > 0 && cc.Comm != nil {
					if send, ok := cc.Comm.(*ast.SendStmt); ok {
						report(pass, send.Pos(), "channel send", held)
					}
				}
				walkStmts(pass, cc.Body, copyHeld(held))
			}
		}
	case *ast.GoStmt:
		// The goroutine body does not hold our locks; its FuncLit is
		// analyzed separately with an empty held set.
	default:
		scan(pass, s, held)
	}
}

// scan inspects a statement (not a control-flow container) for
// violations under held locks.
func scan(pass *analysis.Pass, n ast.Node, held map[string]bool) {
	if len(held) == 0 {
		return
	}
	ast.Inspect(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SendStmt:
			report(pass, m.Pos(), "channel send", held)
		case *ast.CallExpr:
			checkCall(pass, m, held)
		}
		return true
	})
}

func scanExpr(pass *analysis.Pass, e ast.Expr, held map[string]bool) {
	if e != nil {
		scan(pass, e, held)
	}
}

// checkCall flags blocking calls: net.Conn methods, RPC-client
// methods, context-taking functions, time.Sleep.
func checkCall(pass *analysis.Pass, call *ast.CallExpr, held map[string]bool) {
	info := pass.TypesInfo
	if astq.IsPkgFunc(info, call, "time", "Sleep") {
		report(pass, call.Pos(), "time.Sleep", held)
		return
	}
	if recv := astq.ReceiverType(info, call); recv != nil && isNetConn(recv) {
		report(pass, call.Pos(), "net.Conn I/O", held)
		return
	}
	fn := astq.Callee(info, call)
	if fn == nil {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Params().Len() == 0 {
		return
	}
	if astq.IsNamed(sig.Params().At(0).Type(), "context", "Context") {
		report(pass, call.Pos(), "call to context-taking (blocking) "+fn.Name(), held)
	}
}

// isNetConn reports whether t is net.Conn or a named type from
// package net implementing it.
func isNetConn(t types.Type) bool {
	return astq.IsNamed(t, "net", "Conn") || astq.IsNamed(t, "net", "TCPConn") || astq.IsNamed(t, "net", "UnixConn")
}

// lockOp recognizes x.Lock()/x.RLock()/x.Unlock()/x.RUnlock() on a
// sync.Mutex or sync.RWMutex and returns the lock's expression string
// as its identity.
func lockOp(info *types.Info, e ast.Expr) (name, op string, ok bool) {
	call, isCall := ast.Unparen(e).(*ast.CallExpr)
	if !isCall {
		return "", "", false
	}
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", "", false
	}
	tv, okT := info.Types[sel.X]
	if !okT {
		return "", "", false
	}
	if !astq.IsNamed(tv.Type, "sync", "Mutex") && !astq.IsNamed(tv.Type, "sync", "RWMutex") {
		return "", "", false
	}
	return types.ExprString(sel.X), sel.Sel.Name, true
}

func copyHeld(held map[string]bool) map[string]bool {
	out := make(map[string]bool, len(held))
	for k, v := range held {
		out[k] = v
	}
	return out
}

func report(pass *analysis.Pass, pos token.Pos, what string, held map[string]bool) {
	names := make([]string, 0, len(held))
	for k := range held {
		names = append(names, k)
	}
	sort.Strings(names)
	pass.Reportf(pos, "%s while holding %s; move blocking work outside the critical section", what, strings.Join(names, ", "))
}
