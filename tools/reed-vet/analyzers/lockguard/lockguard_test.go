package lockguard_test

import (
	"testing"

	"reedvet/analysistest"
	"reedvet/analyzers/lockguard"
)

func TestFixtures(t *testing.T) {
	// pipe/internal/client is the CAONT worker-pool fixture; it lives in
	// its own tree so the ctxrule fixture at ./internal/client keeps a
	// disjoint want-set.
	analysistest.Run(t, "../../testdata/fix",
		[]string{"./internal/dedup", "./pipe/internal/client", "./plainlib"}, lockguard.Analyzer)
}
