package lockguard_test

import (
	"testing"

	"reedvet/analysistest"
	"reedvet/analyzers/lockguard"
)

func TestFixtures(t *testing.T) {
	analysistest.Run(t, "../../testdata/fix",
		[]string{"./internal/dedup", "./plainlib"}, lockguard.Analyzer)
}
