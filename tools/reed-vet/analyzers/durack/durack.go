// Package durack enforces the reply-is-the-ack durability invariant:
// a server RPC handler that mutates a WAL-backed store (the dedup
// index, the whole-file index) must reach that store's Commit before
// returning a success response — once the client sees the reply, the
// mutation must survive kill -9. The analysis is interprocedural
// within the package: helpers that mutate or commit on the handler's
// behalf are summarized.
package durack

import (
	"go/ast"
	"go/token"
	"go/types"

	"reedvet/analysis"
	"reedvet/internal/astq"
	"reedvet/internal/flow"
)

var Analyzer = &analysis.Analyzer{
	Name: "durack",
	Doc:  "mutating RPC handlers must Commit WAL-backed stores before replying success",
	Run:  run,
}

// walStorePkgs are the packages whose exported types with a Commit
// method are WAL-backed stores.
var walStorePkgs = []string{"internal/dedup", "internal/fileindex"}

// mutators are the store methods that stage durable mutations; commits
// are the methods that seal them.
var mutators = map[string]bool{
	"Put": true, "Deref": true, "Ref": true, "Register": true, "Delete": true,
}
var commits = map[string]bool{"Commit": true, "Flush": true}

// state tracks, along one path, which stores carry uncommitted
// mutations and which have a commit deferred to path end.
type state struct {
	dirty    map[*types.Named]token.Pos // store type -> first uncommitted mutation
	deferred map[*types.Named]bool
}

func (s *state) clone() *state {
	ns := &state{
		dirty:    make(map[*types.Named]token.Pos, len(s.dirty)),
		deferred: make(map[*types.Named]bool, len(s.deferred)),
	}
	for k, v := range s.dirty {
		ns.dirty[k] = v
	}
	for k := range s.deferred {
		ns.deferred[k] = true
	}
	return ns
}

// summary is a helper's transfer function: the stores it may dirty on
// some path, and the stores it commits on every path.
type summary struct {
	dirties    map[*types.Named]token.Pos
	commitsAll map[*types.Named]bool
}

type checker struct {
	pass *analysis.Pass
	idx  map[*types.Func]*ast.FuncDecl
	sums *flow.Summarizer[summary]
	seen map[string]bool
}

func run(pass *analysis.Pass) error {
	if !astq.PathMatches(pass.Pkg.Path(), "internal/server") {
		return nil
	}
	c := &checker{
		pass: pass,
		idx:  flow.Index(pass.Files, pass.TypesInfo),
		seen: make(map[string]bool),
	}
	c.sums = &flow.Summarizer[summary]{
		Idx: c.idx,
		Compute: func(fn *types.Func, decl *ast.FuncDecl) summary {
			return c.summarize(decl)
		},
	}
	for fn, decl := range c.idx {
		if c.isHandler(fn) {
			c.checkHandler(fn, decl)
		}
	}
	return nil
}

// isHandler matches the handler shape: results (proto.MsgType, []byte).
func (c *checker) isHandler(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() != 2 {
		return false
	}
	r0 := astq.NamedType(sig.Results().At(0).Type())
	if r0 == nil || r0.Obj().Name() != "MsgType" || r0.Obj().Pkg() == nil ||
		!astq.PathMatches(r0.Obj().Pkg().Path(), "internal/proto") {
		return false
	}
	s, ok := sig.Results().At(1).Type().Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

// walStore resolves a method callee's receiver to a WAL-backed store
// type, or nil.
func walStore(fn *types.Func) *types.Named {
	recv := flow.ReceiverOf(fn)
	if recv == nil || recv.Obj().Pkg() == nil {
		return nil
	}
	if !astq.PathMatches(recv.Obj().Pkg().Path(), walStorePkgs...) {
		return nil
	}
	for i := 0; i < recv.NumMethods(); i++ {
		if recv.Method(i).Name() == "Commit" {
			return recv
		}
	}
	return nil
}

// checkHandler walks one handler and reports success returns that
// leave a store dirty.
func (c *checker) checkHandler(fn *types.Func, decl *ast.FuncDecl) {
	w := &flow.Walker[*state]{
		Clone: func(s *state) *state { return s.clone() },
		Stmt: func(s *state, stmt ast.Stmt) *state {
			c.step(s, stmt)
			return s
		},
		End: func(s *state, ret *ast.ReturnStmt) {
			for n := range s.deferred {
				delete(s.dirty, n)
			}
			if ret == nil || len(ret.Results) != 2 {
				return
			}
			if !isSuccess(c.pass.TypesInfo, ret.Results[0]) {
				return
			}
			for n, mut := range s.dirty {
				c.reportOnce(ret.Pos(),
					"handler %s replies success before %s.Commit (uncommitted mutation at %s)",
					fn.Name(), n.Obj().Name(), c.pass.Position(mut))
			}
		},
	}
	w.Walk(decl.Body, &state{dirty: map[*types.Named]token.Pos{}, deferred: map[*types.Named]bool{}})
}

// isSuccess classifies the first return result. Only a resolved
// MsgType constant other than proto.MsgError counts as a success
// reply; MsgError is failure, and anything else (call results,
// variables holding a forwarded handler's reply) is unknown and
// skipped — the handler that minted the constant is the one checked.
func isSuccess(info *types.Info, x ast.Expr) bool {
	var id *ast.Ident
	switch x := ast.Unparen(x).(type) {
	case *ast.Ident:
		id = x
	case *ast.SelectorExpr:
		id = x.Sel
	default:
		return false
	}
	cst, ok := info.Uses[id].(*types.Const)
	if !ok {
		return false
	}
	return cst.Name() != "MsgError"
}

// step folds one statement's store calls into the path state.
func (c *checker) step(s *state, stmt ast.Stmt) {
	if d, ok := stmt.(*ast.DeferStmt); ok {
		if fn := astq.Callee(c.pass.TypesInfo, d.Call); fn != nil && commits[fn.Name()] {
			if n := walStore(fn); n != nil {
				s.deferred[n] = true
			}
		}
		return
	}
	c.inspectCalls(stmt, func(call *ast.CallExpr) {
		fn := astq.Callee(c.pass.TypesInfo, call)
		if fn == nil {
			return
		}
		if n := walStore(fn); n != nil {
			switch {
			case mutators[fn.Name()]:
				if _, dirty := s.dirty[n]; !dirty {
					s.dirty[n] = call.Pos()
				}
			case commits[fn.Name()]:
				delete(s.dirty, n)
			}
			return
		}
		if _, local := c.idx[fn]; local {
			sum := c.sums.Of(fn)
			for n, pos := range sum.dirties {
				if _, dirty := s.dirty[n]; !dirty {
					s.dirty[n] = pos
				}
			}
			for n := range sum.commitsAll {
				delete(s.dirty, n)
			}
		}
	})
}

// inspectCalls visits every call in stmt in source order, skipping
// closure bodies: a FuncLit runs on its own schedule, not on this
// path.
func (c *checker) inspectCalls(stmt ast.Stmt, f func(*ast.CallExpr)) {
	ast.Inspect(stmt, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			f(call)
		}
		return true
	})
}

// summarize computes a helper's transfer function.
func (c *checker) summarize(decl *ast.FuncDecl) summary {
	sum := summary{dirties: map[*types.Named]token.Pos{}, commitsAll: map[*types.Named]bool{}}
	paths := 0
	var committedPerPath []map[*types.Named]bool
	w := &flow.Walker[*state]{
		Clone: func(s *state) *state { return s.clone() },
		Stmt: func(s *state, stmt ast.Stmt) *state {
			c.stepSummary(s, stmt, &sum)
			return s
		},
		End: func(s *state, ret *ast.ReturnStmt) {
			// A path returning a non-nil error is an error path: the
			// caller branches it into a failure reply, so it does not
			// weaken the "commits on every success path" summary.
			if isErrorReturn(c.pass.TypesInfo, ret) {
				return
			}
			paths++
			committed := make(map[*types.Named]bool, len(s.deferred))
			for n := range s.deferred {
				committed[n] = true
			}
			for n := range s.dirty {
				delete(committed, n)
			}
			committedPerPath = append(committedPerPath, committed)
		},
	}
	w.Walk(decl.Body, &state{dirty: map[*types.Named]token.Pos{}, deferred: map[*types.Named]bool{}})
	if paths == 0 {
		return sum
	}
	all := committedPerPath[0]
	for _, m := range committedPerPath[1:] {
		for n := range all {
			if !m[n] {
				delete(all, n)
			}
		}
	}
	sum.commitsAll = all
	return sum
}

// stepSummary folds one statement into a helper summary walk: dirty
// records mutations still uncommitted, deferred records commits seen
// on this path (by any means).
func (c *checker) stepSummary(s *state, stmt ast.Stmt, sum *summary) {
	handle := func(call *ast.CallExpr) {
		fn := astq.Callee(c.pass.TypesInfo, call)
		if fn == nil {
			return
		}
		if n := walStore(fn); n != nil {
			switch {
			case mutators[fn.Name()]:
				if _, ok := sum.dirties[n]; !ok {
					sum.dirties[n] = call.Pos()
				}
				s.dirty[n] = call.Pos()
			case commits[fn.Name()]:
				delete(s.dirty, n)
				s.deferred[n] = true // "committed on this path"
			}
			return
		}
		if _, local := c.idx[fn]; local {
			nested := c.sums.Of(fn)
			for n, pos := range nested.dirties {
				if _, ok := sum.dirties[n]; !ok {
					sum.dirties[n] = pos
				}
				s.dirty[n] = pos
			}
			for n := range nested.commitsAll {
				delete(s.dirty, n)
				s.deferred[n] = true
			}
		}
	}
	if d, ok := stmt.(*ast.DeferStmt); ok {
		if fn := astq.Callee(c.pass.TypesInfo, d.Call); fn != nil && commits[fn.Name()] {
			if n := walStore(fn); n != nil {
				s.deferred[n] = true
			}
		}
		return
	}
	c.inspectCalls(stmt, handle)
}

// isErrorReturn reports whether ret hands back a named error value
// (the `return err` idiom). Literal nils, call results, and
// non-error-typed results all count as potential success paths.
func isErrorReturn(info *types.Info, ret *ast.ReturnStmt) bool {
	if ret == nil || len(ret.Results) == 0 {
		return false
	}
	last := ast.Unparen(ret.Results[len(ret.Results)-1])
	var id *ast.Ident
	switch last := last.(type) {
	case *ast.Ident:
		id = last
	case *ast.SelectorExpr:
		id = last.Sel
	default:
		return false
	}
	if _, isNil := info.Uses[id].(*types.Nil); isNil {
		return false
	}
	t := info.TypeOf(last)
	if t == nil {
		return false
	}
	errI, _ := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	return errI != nil && types.Implements(t, errI)
}

func (c *checker) reportOnce(pos token.Pos, format string, args ...any) {
	p := c.pass.Position(pos)
	key := p.String() + format
	if c.seen[key] {
		return
	}
	c.seen[key] = true
	c.pass.Reportf(pos, format, args...)
}
