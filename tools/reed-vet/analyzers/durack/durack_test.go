package durack_test

import (
	"testing"

	"reedvet/analysistest"
	"reedvet/analyzers/durack"
)

func TestFixtures(t *testing.T) {
	analysistest.Run(t, "../../testdata/fix", []string{"./durack/..."}, durack.Analyzer)
}
