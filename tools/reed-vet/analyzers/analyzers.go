// Package analyzers registers the reed-vet suite.
package analyzers

import (
	"reedvet/analysis"
	"reedvet/analyzers/bufpool"
	"reedvet/analyzers/ctxrule"
	"reedvet/analyzers/durack"
	"reedvet/analyzers/errclass"
	"reedvet/analyzers/idemtable"
	"reedvet/analyzers/keyhygiene"
	"reedvet/analyzers/lockguard"
	"reedvet/analyzers/metricname"
	"reedvet/analyzers/zeroize"
)

// All returns every analyzer in the suite, in reporting order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		keyhygiene.Analyzer,
		ctxrule.Analyzer,
		lockguard.Analyzer,
		metricname.Analyzer,
		errclass.Analyzer,
		bufpool.Analyzer,
		durack.Analyzer,
		idemtable.Analyzer,
		zeroize.Analyzer,
	}
}

// Names returns every registered analyzer name: the authoritative set
// for validating `//reed-vet:ignore <analyzer>` directives, which may
// legitimately name analyzers outside the current run's subset.
func Names() []string {
	all := All()
	out := make([]string, len(all))
	for i, a := range all {
		out[i] = a.Name
	}
	return out
}

// ByName returns the named analyzers, or nil if any name is unknown.
func ByName(names []string) []*analysis.Analyzer {
	idx := map[string]*analysis.Analyzer{}
	for _, a := range All() {
		idx[a.Name] = a
	}
	var out []*analysis.Analyzer
	for _, n := range names {
		a, ok := idx[n]
		if !ok {
			return nil
		}
		out = append(out, a)
	}
	return out
}
