// Package analyzers registers the reed-vet suite.
package analyzers

import (
	"reedvet/analysis"
	"reedvet/analyzers/ctxrule"
	"reedvet/analyzers/errclass"
	"reedvet/analyzers/keyhygiene"
	"reedvet/analyzers/lockguard"
	"reedvet/analyzers/metricname"
)

// All returns every analyzer in the suite, in reporting order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		keyhygiene.Analyzer,
		ctxrule.Analyzer,
		lockguard.Analyzer,
		metricname.Analyzer,
		errclass.Analyzer,
	}
}

// ByName returns the named analyzers, or nil if any name is unknown.
func ByName(names []string) []*analysis.Analyzer {
	idx := map[string]*analysis.Analyzer{}
	for _, a := range All() {
		idx[a.Name] = a
	}
	var out []*analysis.Analyzer
	for _, n := range names {
		a, ok := idx[n]
		if !ok {
			return nil
		}
		out = append(out, a)
	}
	return out
}
