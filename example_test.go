package reed_test

import (
	"bytes"
	"context"
	"fmt"
	"net"

	reed "repro"
)

// ctx is the default context test call sites run under.
var ctx = context.Background()

// Example demonstrates the complete REED lifecycle against an
// in-process deployment: provision, upload, deduplicate, download, and
// revoke.
func Example() {
	// Deployment (one key manager, one data server, one key store; a
	// production setup runs these as separate processes — see
	// cmd/reed-server and cmd/reed-keymanager).
	km, err := reed.NewKeyManagerServer(1024, 0)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	kmLn, _ := net.Listen("tcp", "127.0.0.1:0")
	go func() { _ = km.Serve(kmLn) }()
	defer km.Shutdown()

	dataSrv, _ := reed.NewStorageServer(reed.NewMemoryBackend())
	dataLn, _ := net.Listen("tcp", "127.0.0.1:0")
	go func() { _ = dataSrv.Serve(dataLn) }()
	defer dataSrv.Shutdown()

	keySrv, _ := reed.NewStorageServer(reed.NewMemoryBackend())
	keyLn, _ := net.Listen("tcp", "127.0.0.1:0")
	go func() { _ = keySrv.Serve(keyLn) }()
	defer keySrv.Shutdown()

	// Access control.
	authority, _ := reed.NewAuthority()
	owner, _ := reed.NewOwner()

	client, err := reed.NewClient(context.Background(), reed.ClientConfig{
		UserID:         "alice",
		Scheme:         reed.SchemeEnhanced,
		DataServers:    []string{dataLn.Addr().String()},
		KeyStoreServer: keyLn.Addr().String(),
		KeyManager:     kmLn.Addr().String(),
		PrivateKey:     authority.IssueKey("alice", []string{"alice"}),
		Directory:      authority,
		Owner:          owner,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	defer client.Close()

	// Upload, shared with bob; then revoke bob.
	data := bytes.Repeat([]byte("backup data "), 10000)
	res, err := client.Upload(ctx, "/demo.bin", bytes.NewReader(data), reed.PolicyForUsers("alice", "bob"))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("uploaded %d bytes in %d chunks\n", res.LogicalBytes, res.Chunks)

	got, err := client.Download(ctx, "/demo.bin")
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("downloaded %d bytes intact: %v\n", len(got), bytes.Equal(got, data))

	rk, err := client.Rekey(ctx, "/demo.bin", reed.PolicyForUsers("alice"), reed.ActiveRevocation)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("rekeyed: version %d -> %d\n", rk.OldVersion, rk.NewVersion)

	// Output:
	// uploaded 120000 bytes in 8 chunks
	// downloaded 120000 bytes intact: true
	// rekeyed: version 1 -> 2
}

// ExampleParsePolicy shows the policy language.
func ExampleParsePolicy() {
	pol, err := reed.ParsePolicy("and(dept-genomics, or(alice, bob, 2of(x, y, z)))")
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(pol.String())
	fmt.Println("leaves:", pol.CountLeaves())
	// Output:
	// and(dept-genomics, or(alice, bob, 2of(x, y, z)))
	// leaves: 6
}
