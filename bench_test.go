package reed_test

// One testing.B benchmark per figure of the paper's evaluation
// (Section VI), plus the ablations DESIGN.md calls out. Each benchmark
// drives the same harness as cmd/reed-bench at a reduced default scale
// (set REED_BENCH_MB to raise it, e.g. REED_BENCH_MB=64) and reports the
// figure's series as custom metrics, so `go test -bench=.` regenerates
// the paper's curves end to end.

import (
	"fmt"
	"os"
	"strconv"
	"sync"
	"testing"

	"repro/internal/experiments"
	"repro/internal/netem"
	"repro/internal/oprf"
)

var (
	benchKeyOnce sync.Once
	benchKMKey   *oprf.ServerKey
)

// benchOptions builds the shared experiment options. The file size
// stands in for the paper's 2 GB test file.
func benchOptions(b *testing.B) experiments.Options {
	b.Helper()
	benchKeyOnce.Do(func() {
		key, err := oprf.GenerateServerKey(oprf.DefaultBits, nil)
		if err != nil {
			b.Fatalf("oprf key: %v", err)
		}
		benchKMKey = key
	})
	fileMB := 8
	if env := os.Getenv("REED_BENCH_MB"); env != "" {
		if v, err := strconv.Atoi(env); err == nil && v > 0 {
			fileMB = v
		}
	}
	// REED_BENCH_LINK_MBPS overrides the emulated client link: 0 removes
	// the throttle entirely (the "unthrottled ceiling" runs recorded in
	// EXPERIMENTS.md), any other value is MB/s. Default is the paper's
	// 116 MB/s effective gigabit LAN.
	linkBW := float64(netem.GigabitEffective)
	if env := os.Getenv("REED_BENCH_LINK_MBPS"); env != "" {
		if v, err := strconv.Atoi(env); err == nil && v >= 0 {
			linkBW = float64(v) * (1 << 20)
		}
	}
	return experiments.Options{
		FileBytes:     fileMB << 20,
		DataServers:   4,
		KMKey:         benchKMKey,
		LinkBandwidth: linkBW,
		Seed:          1,
	}
}

// BenchmarkFig5aKeyGenChunkSize reproduces Figure 5(a): MLE key
// generation speed versus average chunk size, batch fixed at 256.
func BenchmarkFig5aKeyGenChunkSize(b *testing.B) {
	o := benchOptions(b)
	for i := 0; i < b.N; i++ {
		points, err := experiments.Fig5aKeyGenVsChunkSize(o)
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range points {
			b.ReportMetric(p.MBps, fmt.Sprintf("MBps_%dKB", p.ChunkKB))
		}
	}
}

// BenchmarkFig5bKeyGenBatchSize reproduces Figure 5(b): key generation
// speed versus batch size, 8 KB chunks.
func BenchmarkFig5bKeyGenBatchSize(b *testing.B) {
	o := benchOptions(b)
	for i := 0; i < b.N; i++ {
		points, err := experiments.Fig5bKeyGenVsBatchSize(o)
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range points {
			b.ReportMetric(p.MBps, fmt.Sprintf("MBps_batch%d", p.BatchSize))
		}
	}
}

// BenchmarkFig6Encryption reproduces Figure 6: basic vs enhanced
// encryption speed across chunk sizes, two worker threads.
func BenchmarkFig6Encryption(b *testing.B) {
	o := benchOptions(b)
	for i := 0; i < b.N; i++ {
		points, err := experiments.Fig6EncryptionSpeed(o)
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range points {
			b.ReportMetric(p.MBps, fmt.Sprintf("MBps_%s_%dKB", p.Scheme, p.ChunkKB))
		}
	}
}

// BenchmarkFig7aUpload and BenchmarkFig7bDownload reproduce Figures
// 7(a) and 7(b): single-client upload (first and second) and download
// speeds. One harness run produces both figures; the two benchmarks
// report the respective series.
func BenchmarkFig7aUpload(b *testing.B) {
	o := benchOptions(b)
	for i := 0; i < b.N; i++ {
		points, err := experiments.Fig7UploadDownload(o)
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range points {
			b.ReportMetric(p.FirstUpMBps, fmt.Sprintf("up1_MBps_%s_%dKB", p.Scheme, p.ChunkKB))
			b.ReportMetric(p.SecondUpMBps, fmt.Sprintf("up2_MBps_%s_%dKB", p.Scheme, p.ChunkKB))
		}
	}
}

func BenchmarkFig7bDownload(b *testing.B) {
	o := benchOptions(b)
	for i := 0; i < b.N; i++ {
		points, err := experiments.Fig7UploadDownload(o)
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range points {
			b.ReportMetric(p.DownloadMBps, fmt.Sprintf("down_MBps_%s_%dKB", p.Scheme, p.ChunkKB))
		}
	}
}

// BenchmarkFig7cMultiClient reproduces Figure 7(c): aggregate upload
// speed versus the number of concurrent clients.
func BenchmarkFig7cMultiClient(b *testing.B) {
	o := benchOptions(b)
	for i := 0; i < b.N; i++ {
		points, err := experiments.Fig7cMultiClient(o, []int{1, 2, 4, 8})
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range points {
			b.ReportMetric(p.FirstUpMBps, fmt.Sprintf("agg1_MBps_%dclients", p.Clients))
			b.ReportMetric(p.SecondUpMBps, fmt.Sprintf("agg2_MBps_%dclients", p.Clients))
		}
	}
}

// BenchmarkFig8aRekeyUsers reproduces Figure 8(a): rekeying delay versus
// total users at a 20% revocation ratio.
func BenchmarkFig8aRekeyUsers(b *testing.B) {
	o := benchOptions(b)
	for i := 0; i < b.N; i++ {
		points, err := experiments.Fig8aRekeyVsUsers(o, []int{100, 300, 500})
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range points {
			b.ReportMetric(p.LazySec, fmt.Sprintf("lazy_s_%dusers", p.X))
			b.ReportMetric(p.ActiveSec, fmt.Sprintf("active_s_%dusers", p.X))
		}
	}
}

// BenchmarkFig8bRekeyRatio reproduces Figure 8(b): rekeying delay versus
// revocation ratio with 500 users.
func BenchmarkFig8bRekeyRatio(b *testing.B) {
	o := benchOptions(b)
	for i := 0; i < b.N; i++ {
		points, err := experiments.Fig8bRekeyVsRatio(o, 0, []int{5, 20, 50})
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range points {
			b.ReportMetric(p.LazySec, fmt.Sprintf("lazy_s_%dpct", p.X))
			b.ReportMetric(p.ActiveSec, fmt.Sprintf("active_s_%dpct", p.X))
		}
	}
}

// BenchmarkFig8cRekeyFileSize reproduces Figure 8(c): rekeying delay
// versus rekeyed file size with 500 users.
func BenchmarkFig8cRekeyFileSize(b *testing.B) {
	o := benchOptions(b)
	for i := 0; i < b.N; i++ {
		points, err := experiments.Fig8cRekeyVsFileSize(o, 0, []int{1, 4, 8})
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range points {
			b.ReportMetric(p.LazySec, fmt.Sprintf("lazy_s_%dMB", p.X))
			b.ReportMetric(p.ActiveSec, fmt.Sprintf("active_s_%dMB", p.X))
		}
	}
}

// BenchmarkFig9StorageOverhead reproduces Figure 9: cumulative storage
// saving over daily trace-driven backups.
func BenchmarkFig9StorageOverhead(b *testing.B) {
	o := benchOptions(b)
	to := experiments.TraceOptions{Days: 20, BytesPerUserDay: 2 << 20}
	for i := 0; i < b.N; i++ {
		days, err := experiments.Fig9StorageOverhead(o, to)
		if err != nil {
			b.Fatal(err)
		}
		last := days[len(days)-1]
		b.ReportMetric(last.Saving()*100, "saving_pct")
		b.ReportMetric(float64(last.PhysicalBytes)/(1<<20), "physical_MB")
		b.ReportMetric(float64(last.StubBytes)/(1<<20), "stub_MB")
	}
}

// BenchmarkFig10TraceDriven reproduces Figure 10: trace-driven upload
// and download speed over seven days of backups.
func BenchmarkFig10TraceDriven(b *testing.B) {
	o := benchOptions(b)
	to := experiments.TraceOptions{Users: 4, Days: 7, BytesPerUserDay: 1 << 20}
	for i := 0; i < b.N; i++ {
		days, err := experiments.Fig10TraceDriven(o, to)
		if err != nil {
			b.Fatal(err)
		}
		for _, d := range days {
			b.ReportMetric(d.UploadMBps, fmt.Sprintf("up_MBps_day%d", d.Day))
			b.ReportMetric(d.DownloadMBps, fmt.Sprintf("down_MBps_day%d", d.Day))
		}
	}
}

// BenchmarkStreamingUpload measures the segment pipeline against the
// sequential single-segment baseline (cold uploads, emulated LAN). The
// speedup column is the acceptance metric for the streaming engine.
func BenchmarkStreamingUpload(b *testing.B) {
	o := benchOptions(b)
	for i := 0; i < b.N; i++ {
		points, err := experiments.StreamingUpload(o)
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range points {
			b.ReportMetric(p.PipelinedMBps, fmt.Sprintf("pipe_MBps_%s", p.Scheme))
			b.ReportMetric(p.SequentialMBps, fmt.Sprintf("seq_MBps_%s", p.Scheme))
			b.ReportMetric(p.Speedup, fmt.Sprintf("speedup_%s", p.Scheme))
			b.ReportMetric(p.PeakBufferedMB, fmt.Sprintf("peak_MB_%s", p.Scheme))
		}
	}
}

// BenchmarkWarmUpload measures the two-phase upload protocol: a cold
// upload of unique data against a warm re-upload of the same bytes,
// which the whole-file index collapses to a recipe clone. The
// acceptance metrics are asserted in-benchmark: the warm upload must
// run at least 10x faster and put at least 95% fewer trimmed-package
// bytes on the wire (per the client's own metrics registry).
func BenchmarkWarmUpload(b *testing.B) {
	o := benchOptions(b)
	for i := 0; i < b.N; i++ {
		points, err := experiments.WarmUpload(o)
		if err != nil {
			b.Fatal(err)
		}
		cold, warm := points[0], points[1]
		if cold.WholeFileHit {
			b.Fatal("cold upload took the fast path")
		}
		if !warm.WholeFileHit {
			b.Fatal("warm upload missed the whole-file index")
		}
		speedup := warm.UploadMBps / cold.UploadMBps
		if speedup < 10 {
			b.Fatalf("warm upload only %.1fx faster than cold (%.1f vs %.1f MB/s), want >= 10x",
				speedup, warm.UploadMBps, cold.UploadMBps)
		}
		if warm.WireBytes*20 > cold.WireBytes {
			b.Fatalf("warm upload sent %d wire bytes vs cold %d, want >= 95%% fewer",
				warm.WireBytes, cold.WireBytes)
		}
		b.ReportMetric(cold.UploadMBps, "up_MBps_cold")
		b.ReportMetric(warm.UploadMBps, "up_MBps_warm")
		b.ReportMetric(speedup, "warm_speedup")
		b.ReportMetric(float64(cold.WireBytes)/(1<<20), "wire_MB_cold")
		b.ReportMetric(float64(warm.WireBytes)/(1<<20), "wire_MB_warm")
	}
}

// BenchmarkShardedPut measures aggregate PUT throughput from
// concurrent clients against 1-shard and 4-shard deployments with
// emulated per-shard ingress ports. The 4-shard aggregate exceeding the
// 1-shard baseline is the acceptance metric for the consistent-hash
// ring: routing must turn extra shards into extra bandwidth.
func BenchmarkShardedPut(b *testing.B) {
	o := benchOptions(b)
	// Per-shard port bandwidth comes from ShardSaturation's default
	// (24 MB/s); the gigabit client-link default would leave the shard
	// ports unconstrained and measure only client-side crypto.
	o.LinkBandwidth = 0
	for i := 0; i < b.N; i++ {
		points, err := experiments.ShardSaturation(o, []int{1, 4}, 3)
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range points {
			b.ReportMetric(p.AggregateMBps, fmt.Sprintf("agg_MBps_%dshard", p.Shards))
		}
		if points[len(points)-1].AggregateMBps <= points[0].AggregateMBps {
			b.Fatalf("4-shard aggregate %.1f MB/s does not exceed 1-shard %.1f MB/s",
				points[len(points)-1].AggregateMBps, points[0].AggregateMBps)
		}
	}
}

// BenchmarkAblationNoBatching quantifies request batching.
func BenchmarkAblationNoBatching(b *testing.B) {
	o := benchOptions(b)
	for i := 0; i < b.N; i++ {
		points, err := experiments.AblationBatching(o)
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range points {
			b.ReportMetric(p.MBps, fmt.Sprintf("MBps_batch%d", p.BatchSize))
		}
	}
}

// BenchmarkAblationNoKeyCache quantifies the MLE key cache.
func BenchmarkAblationNoKeyCache(b *testing.B) {
	o := benchOptions(b)
	for i := 0; i < b.N; i++ {
		points, err := experiments.AblationKeyCache(o)
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range points {
			b.ReportMetric(p.SecondUpMBps, fmt.Sprintf("up2_MBps_cache_%v", p.CacheEnabled))
		}
	}
}

// BenchmarkAblationThreads sweeps encryption worker counts.
func BenchmarkAblationThreads(b *testing.B) {
	o := benchOptions(b)
	for i := 0; i < b.N; i++ {
		points, err := experiments.AblationThreads(o, []int{1, 2, 4})
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range points {
			b.ReportMetric(p.MBps, fmt.Sprintf("MBps_%s_%dw", p.Scheme, p.Workers))
		}
	}
}

// BenchmarkAblationStubSize sweeps the stub size.
func BenchmarkAblationStubSize(b *testing.B) {
	o := benchOptions(b)
	for i := 0; i < b.N; i++ {
		points, err := experiments.AblationStubSize(o, []int{32, 64, 128})
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range points {
			b.ReportMetric(p.StorageOverheadPct, fmt.Sprintf("overhead_pct_stub%d", p.StubSize))
			b.ReportMetric(p.ActiveRekeySec, fmt.Sprintf("active_s_stub%d", p.StubSize))
		}
	}
}
