// Package reed is a rekeying-aware encrypted deduplication storage
// system: a Go implementation of REED (Li, Qin, Lee, and Li, "Rekeying
// for Encrypted Deduplication Storage", DSN 2016).
//
// # Why REED
//
// Encrypted deduplication storage derives each chunk's encryption key
// from the chunk itself (message-locked encryption) so identical chunks
// produce identical ciphertexts and deduplicate. That determinism makes
// rekeying — revoking users, replacing compromised keys — fundamentally
// awkward: renewing the key derivation breaks deduplication, while
// re-encrypting every stored chunk is prohibitively expensive.
//
// REED transforms each chunk with a deterministic all-or-nothing
// transform keyed by its MLE key, splits the result into a large
// deduplicable trimmed package and a tiny stub (64 bytes per chunk), and
// encrypts only the stubs under a renewable per-file key. Rekeying a
// file of any size then costs only its stub file: REED's paper measures
// 3.4 s to actively rekey an 8 GB file, against minutes for full
// re-encryption.
//
// # Components
//
// A deployment consists of:
//
//   - storage servers (NewStorageServer) — deduplicate trimmed packages
//     into 4 MB containers and hold recipes, stub files, and key states;
//     the paper runs four data servers plus one key-store server;
//   - a key manager (NewKeyManagerServer) — serves MLE keys through an
//     oblivious PRF (blinded RSA signatures) so it never learns chunk
//     fingerprints, and can rate-limit to resist brute force;
//   - an authority (NewAuthority) — issues per-user access keys for
//     CP-ABE-style policy encryption of file key states;
//   - clients (NewClient) — chunk, encrypt, upload, download, and rekey
//     files.
//
// # Quick start
//
// See examples/quickstart for a complete runnable program. Every client
// operation takes a context.Context first; cancel it to abort cleanly.
// In sketch:
//
//	ctx := context.Background()
//	authority, _ := reed.NewAuthority()
//	owner, _ := reed.NewOwner()
//	client, _ := reed.NewClient(ctx, reed.ClientConfig{
//		UserID:         "alice",
//		Scheme:         reed.SchemeEnhanced,
//		DataServers:    []string{"10.0.0.1:9000", "10.0.0.2:9000"},
//		KeyStoreServer: "10.0.0.3:9001",
//		KeyManager:     "10.0.0.4:9002",
//		PrivateKey:     authority.IssueKey("alice", []string{"alice"}),
//		Directory:      authority,
//		Owner:          owner,
//	})
//	client.Upload(ctx, "/backup/day1.tar", file, reed.PolicyForUsers("alice", "bob"))
//	client.DownloadTo(ctx, "/backup/day1.tar", out)
//	client.Rekey(ctx, "/backup/day1.tar", reed.PolicyForUsers("alice"), reed.ActiveRevocation)
//
// Uploads stream through a bounded segment pipeline (chunking, OPRF key
// fetch, CAONT encryption, and striped upload overlap), so memory stays
// O(ClientConfig.SegmentBytes) regardless of file size; DownloadTo
// streams symmetrically with windowed prefetch.
//
// # Migration from the v0 API
//
// v0 methods took no context and Download returned the whole file:
//
//	res, err := client.Upload(path, r, pol)        // v0
//	res, err := client.Upload(ctx, path, r, pol)   // v1
//
//	data, err := client.Download(path)             // v0
//	data, err := client.Download(ctx, path)        // v1 (buffers)
//	res, err := client.DownloadTo(ctx, path, w)    // v1 (streams)
//
// Result types changed too: byte counts are int64 (UploadResult's
// LogicalBytes was uint64), DeleteResult.FreedChunks is an int (was
// uint64), RekeyResult and GroupRekeyResult count stub bytes as
// StubBytes int64, and every result carries an Elapsed time.Duration.
// Callers that never cancel can pass context.Background() everywhere
// and behave exactly as before.
//
// # Encryption schemes
//
// SchemeBasic keys the transform directly with the MLE key: fastest, but
// an adversary who learns a chunk's MLE key can recover most of that
// chunk from its trimmed package. SchemeEnhanced first MLE-encrypts the
// chunk and transforms ciphertext-plus-key under a hash key, so a leaked
// MLE key alone reveals nothing; it costs one extra AES pass (the paper
// measures basic ≈24% faster at 8 KB chunks, with network-bound upload
// speeds essentially identical).
//
// # Revocation
//
// Rekey with LazyRevocation only replaces the policy-encrypted key
// state: revoked users lose access to the new state while authorized
// users derive older file keys via key regression, and stubs are
// re-encrypted on the file's next update. ActiveRevocation additionally
// re-encrypts the stub file immediately.
package reed

import (
	"context"
	"fmt"
	"net/http"
	"net/url"

	"repro/internal/abe"
	"repro/internal/admin"
	"repro/internal/audit"
	"repro/internal/chunker"
	"repro/internal/client"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/keymanager"
	"repro/internal/keyreg"
	"repro/internal/metrics"
	"repro/internal/oprf"
	"repro/internal/policy"
	"repro/internal/proto"
	"repro/internal/retry"
	"repro/internal/server"
	"repro/internal/store"
)

// Core client types.
type (
	// Client performs uploads, downloads, and rekeying against a REED
	// deployment.
	Client = client.Client
	// ClientConfig configures a Client; see client.Config for field
	// documentation.
	ClientConfig = client.Config
	// UploadResult summarizes an upload.
	UploadResult = client.UploadResult
	// DownloadResult summarizes a download.
	DownloadResult = client.DownloadResult
	// RekeyResult summarizes a rekey operation.
	RekeyResult = client.RekeyResult
	// Scheme selects the chunk encryption scheme.
	Scheme = core.Scheme
	// Policy is an access tree controlling who can recover a file key.
	Policy = policy.Node
	// Authority issues access keys and publishes attribute public keys.
	Authority = abe.Authority
	// AccessKey is a user's private access key.
	AccessKey = abe.PrivateKey
	// Owner holds a user's private derivation key for key regression.
	Owner = keyreg.Owner
	// ChunkerOptions tunes content-defined chunking.
	ChunkerOptions = chunker.Options
	// ServerStats reports a server's deduplication counters.
	ServerStats = proto.Stats
	// AuditBook holds single-use remote-data-checking tickets
	// (generated at upload when ClientConfig.AuditTickets is set; spend
	// them with Client.Audit).
	AuditBook = audit.Book
	// DeleteResult summarizes a secure deletion.
	DeleteResult = client.DeleteResult
	// GroupRekeyResult summarizes a group rekey.
	GroupRekeyResult = client.GroupRekeyResult
	// RetryStats reports the fault recovery an operation needed:
	// reconnects, transparently re-issued RPCs, and re-sent upload
	// batches (all zero on a healthy network).
	RetryStats = client.RetryStats
	// RetryPolicy bounds reconnect/retry backoff after connection
	// faults (ClientConfig.Retry); the zero value uses sensible
	// defaults.
	RetryPolicy = retry.Policy
)

// Server-side types.
type (
	// Backend is the blob store behind a storage server.
	Backend = store.Backend
	// StorageServer deduplicates chunks and stores file metadata.
	StorageServer = server.Server
	// KeyManagerServer serves MLE keys via the oblivious PRF.
	KeyManagerServer = keymanager.Server
	// StorageServerOption configures a StorageServer
	// (e.g. WithStorageMetrics).
	StorageServerOption = server.Option
	// KeyManagerOption configures a KeyManagerServer
	// (e.g. WithKeyManagerMetrics).
	KeyManagerOption = keymanager.ServerOption
)

// Observability types (see internal/metrics and internal/admin).
type (
	// MetricsRegistry collects a process's counters, gauges, and latency
	// histograms. Create one with NewMetricsRegistry, hand it to a
	// server option or ClientConfig.Metrics, and read it via Snapshot.
	MetricsRegistry = metrics.Registry
	// MetricsSnapshot is a point-in-time, JSON-serializable view of a
	// registry; snapshots from several processes merge with
	// MergeSnapshots.
	MetricsSnapshot = metrics.Snapshot
	// AdminServer is an opt-in HTTP debugging surface (/metrics,
	// /healthz, /debug/pprof) started with StartAdmin.
	AdminServer = admin.Server
	// SourceMetrics is one source's labeled snapshot in
	// Client.ClusterMetricsBySource: the client itself, "keymanager",
	// each storage shard by address, and "keystore".
	SourceMetrics = client.SourceMetrics
	// ShardHealth is the router's view of one storage shard
	// (Client.ShardHealth): its address, consecutive transport
	// failures, and whether non-idempotent operations currently fail
	// fast against it.
	ShardHealth = cluster.ShardHealth
)

// Encryption schemes.
const (
	// SchemeBasic is the faster scheme, vulnerable to MLE-key leakage.
	SchemeBasic = core.SchemeBasic
	// SchemeEnhanced resists MLE-key leakage at the cost of one extra
	// AES pass per chunk.
	SchemeEnhanced = core.SchemeEnhanced
)

// Revocation modes for Client.Rekey.
const (
	// LazyRevocation defers stub re-encryption to the file's next
	// update.
	LazyRevocation = false
	// ActiveRevocation re-encrypts the stub file immediately.
	ActiveRevocation = true
)

// DefaultStubSize is the per-chunk stub size (64 bytes).
const DefaultStubSize = core.DefaultStubSize

// NewClient connects a client to a deployment. ctx bounds the initial
// connection handshakes, not the client's lifetime.
func NewClient(ctx context.Context, cfg ClientConfig) (*Client, error) {
	return client.New(ctx, cfg)
}

// NewAuthority creates the deployment's access-control authority.
func NewAuthority() (*Authority, error) {
	return abe.NewAuthority(nil)
}

// NewOwner creates a user's key-regression owner state (the private
// derivation key plus the initial key state).
func NewOwner() (*Owner, error) {
	return keyreg.NewOwner(keyreg.DefaultBits, nil)
}

// PolicyForUsers builds the default REED per-file policy: any of the
// named users may access the file.
func PolicyForUsers(users ...string) *Policy {
	return policy.OrOfUsers(users)
}

// ParsePolicy parses the textual policy language, e.g.
// "and(dept-genomics, or(alice, bob))".
func ParsePolicy(s string) (*Policy, error) {
	return policy.Parse(s)
}

// PublicKeyBundle is a published set of attribute public keys. It
// satisfies the client Directory, so encryptors need only the bundle,
// never the authority's master secret.
type PublicKeyBundle = abe.PublicKeys

// UnmarshalAuthority restores an authority from Authority.Marshal output.
func UnmarshalAuthority(b []byte) (*Authority, error) {
	return abe.UnmarshalAuthority(b)
}

// UnmarshalAccessKey restores a user's access key from
// AccessKey.Marshal output.
func UnmarshalAccessKey(b []byte) (*AccessKey, error) {
	return abe.UnmarshalPrivateKey(b)
}

// UnmarshalOwner restores a key-regression owner from Owner.Marshal
// output.
func UnmarshalOwner(b []byte) (*Owner, error) {
	return keyreg.UnmarshalOwner(b)
}

// UnmarshalPublicKeyBundle restores a bundle from
// PublicKeyBundle.Marshal output.
func UnmarshalPublicKeyBundle(b []byte) (PublicKeyBundle, error) {
	return abe.UnmarshalPublicKeys(b)
}

// BackendOption configures OpenBackend.
type BackendOption func(*backendConfig)

type backendConfig struct {
	httpClient *http.Client
	noFsync    bool
}

// WithHTTPClient sets the HTTP client used by http:// and https://
// backends (default http.DefaultClient).
func WithHTTPClient(c *http.Client) BackendOption {
	return func(cfg *backendConfig) { cfg.httpClient = c }
}

// WithoutFsync disables fsync on disk:// backends. Blob writes remain
// atomic (write-to-temp + rename) but lose power-failure durability;
// use only for throwaway stores such as test fixtures and benchmarks.
func WithoutFsync() BackendOption {
	return func(cfg *backendConfig) { cfg.noFsync = true }
}

// OpenBackend constructs a Backend from a DSN:
//
//	mem://                      in-memory, ephemeral
//	disk:///var/lib/reed        durable local store rooted at the path
//	http://host:port/bucket     S3-style HTTP object server
//	https://host/bucket         same, over TLS
//
// ctx bounds construction only; the backend's own operations take their
// callers' contexts.
func OpenBackend(ctx context.Context, dsn string, opts ...BackendOption) (Backend, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	var cfg backendConfig
	for _, o := range opts {
		o(&cfg)
	}
	u, err := url.Parse(dsn)
	if err != nil {
		return nil, fmt.Errorf("reed: backend DSN %q: %w", dsn, err)
	}
	switch u.Scheme {
	case "mem":
		if u.Host != "" || u.Path != "" {
			return nil, fmt.Errorf("reed: backend DSN %q: mem:// takes no path", dsn)
		}
		return store.NewMemory(), nil
	case "disk":
		if u.Host != "" {
			return nil, fmt.Errorf("reed: backend DSN %q: disk DSNs are disk:///abs/path or disk://relative/path", dsn)
		}
		dir := u.Path
		if dir == "" {
			dir = u.Opaque
		}
		if dir == "" {
			return nil, fmt.Errorf("reed: backend DSN %q: missing directory", dsn)
		}
		var diskOpts []store.DiskOption
		if cfg.noFsync {
			diskOpts = append(diskOpts, store.WithNoSync())
		}
		return store.NewDisk(dir, diskOpts...)
	case "http", "https":
		return store.NewHTTP(dsn, cfg.httpClient)
	default:
		return nil, fmt.Errorf("reed: backend DSN %q: unknown scheme %q (supported: mem:// | disk:// | http:// | https://)", dsn, u.Scheme)
	}
}

// NewMemoryBackend returns an in-memory Backend (tests, benchmarks,
// ephemeral deployments).
//
// Deprecated: use OpenBackend(ctx, "mem://").
func NewMemoryBackend() Backend {
	return store.NewMemory()
}

// NewDiskBackend returns a Backend persisting blobs under dir.
//
// Deprecated: use OpenBackend(ctx, "disk://"+dir).
func NewDiskBackend(dir string) (Backend, error) {
	return store.NewDisk(dir)
}

// OpenStorageServer builds a storage server over a backend. ctx bounds
// startup — including crash recovery of the dedup index (snapshot load,
// WAL replay, container scrub) — not the server's lifetime. Call Serve
// with a net.Listener to start it, Shutdown to stop.
func OpenStorageServer(ctx context.Context, backend Backend, opts ...StorageServerOption) (*StorageServer, error) {
	return server.New(ctx, backend, opts...)
}

// NewStorageServer builds a storage server over a backend.
//
// Deprecated: use OpenStorageServer, which takes a context bounding
// startup recovery.
func NewStorageServer(backend Backend, opts ...StorageServerOption) (*StorageServer, error) {
	return server.New(context.Background(), backend, opts...)
}

// NewKeyManagerServer builds a key manager with a fresh OPRF key of the
// given RSA modulus size (0 selects the paper's 1024 bits). Rate
// limiting, when positive, caps per-client key generations per second.
func NewKeyManagerServer(rsaBits int, rateLimit float64, opts ...KeyManagerOption) (*KeyManagerServer, error) {
	if rsaBits <= 0 {
		rsaBits = oprf.DefaultBits
	}
	key, err := oprf.GenerateServerKey(rsaBits, nil)
	if err != nil {
		return nil, fmt.Errorf("reed: key manager key: %w", err)
	}
	if rateLimit > 0 {
		opts = append(opts, keymanager.WithRateLimit(rateLimit, rateLimit))
	}
	return keymanager.NewServer(key, opts...), nil
}

// NewMetricsRegistry creates an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return metrics.NewRegistry() }

// MergeSnapshots combines snapshots from several processes into one
// cluster-wide view: counters and gauges sum, histograms merge
// bucket-wise.
func MergeSnapshots(snaps ...MetricsSnapshot) MetricsSnapshot {
	return metrics.Merge(snaps...)
}

// WithStorageMetrics instruments a storage server with the registry:
// per-op dispatch latency, connection and in-flight gauges, and
// deduplication effectiveness (logical vs physical bytes, container
// count, GC reclamation).
func WithStorageMetrics(reg *MetricsRegistry) StorageServerOption {
	return server.WithMetrics(reg)
}

// WithKeyManagerMetrics instruments a key manager with the registry:
// per-op dispatch latency, connection gauges, OPRF evaluation and
// rate-limit-drop counters.
func WithKeyManagerMetrics(reg *MetricsRegistry) KeyManagerOption {
	return keymanager.WithMetrics(reg)
}

// StartAdmin serves the admin debugging plane (JSON /metrics, /healthz,
// /debug/pprof) for a snapshot source on addr. It is opt-in and
// unauthenticated: bind loopback (e.g. "127.0.0.1:9090") unless the
// network is trusted. healthy may be nil (always healthy); a non-nil
// error from it turns /healthz into a 503. Close the returned server
// to stop.
func StartAdmin(addr string, snapshot func() MetricsSnapshot, healthy func() error) (*AdminServer, error) {
	return admin.Start(addr, snapshot, healthy)
}
