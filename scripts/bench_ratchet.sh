#!/bin/sh
# bench_ratchet.sh — fail when benchmarks regress against the committed
# baselines.
#
# Re-runs the archived benchmark suites (pipeline streaming upload, mux
# pipelining, sharded PUT saturation) and ratchets each against its
# committed BENCH_*.json via `reed-benchjson -compare`: any direction-
# classified metric (ns/op up, MB/s or *MBps* down) drifting past the
# tolerance exits non-zero and names the offender.
#
# Usage:
#   scripts/bench_ratchet.sh            # 15% tolerance (the CI gate)
#   TOLERANCE=0.30 scripts/bench_ratchet.sh
#
# Refresh the baselines intentionally with `make bench-json` and commit
# the changed BENCH_*.json files alongside the change that shifted them.
set -eu

TOLERANCE=${TOLERANCE:-0.15}
cd "$(dirname "$0")/.."

ratchet() {
    name=$1 baseline=$2 pattern=$3 benchtime=$4 pkg=$5
    if [ ! -f "$baseline" ]; then
        echo "bench-ratchet: missing baseline $baseline (run 'make bench-json' and commit it)" >&2
        exit 1
    fi
    echo "== $name (vs $baseline, tolerance $TOLERANCE)"
    go test -run NONE -bench="$pattern" -benchtime="$benchtime" "$pkg" \
        | go run ./cmd/reed-benchjson -compare "$baseline" -tolerance "$TOLERANCE"
}

ratchet pipeline BENCH_pipeline.json BenchmarkStreamingUpload 1x .
ratchet mux      BENCH_mux.json      BenchmarkMuxedGets       3x ./internal/server/
ratchet shard    BENCH_shard.json    BenchmarkShardedPut      1x .

echo "bench-ratchet: all suites within tolerance"
