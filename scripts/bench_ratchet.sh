#!/bin/sh
# bench_ratchet.sh — fail when benchmarks regress against the committed
# baselines.
#
# Re-runs the archived benchmark suites (pipeline streaming upload, mux
# pipelining, sharded PUT saturation, OPRF keygen, two-phase warm
# upload) and ratchets each
# against its committed BENCH_*.json via `reed-benchjson -compare`: any
# direction-classified metric (ns/op up, MB/s or *MBps* down) drifting
# past the tolerance exits non-zero and names the offender.
#
# De-flaking: every suite runs three times (-count=3) and the BEST value
# per metric (max throughput, min time) is compared against the
# baseline, so one noisy repeat on a loaded runner cannot fail CI — a
# real regression shows up in all three repeats.
#
# When $GITHUB_STEP_SUMMARY is set (as it is on GitHub runners), each
# suite appends a per-metric markdown delta table there, so the job
# summary shows exactly how far every metric moved even when the ratchet
# passes.
#
# Usage:
#   scripts/bench_ratchet.sh            # 15% tolerance (the CI gate)
#   TOLERANCE=0.30 scripts/bench_ratchet.sh
#
# Refresh the baselines intentionally with `make bench-json` and commit
# the changed BENCH_*.json files alongside the change that shifted them.
set -eu

TOLERANCE=${TOLERANCE:-0.15}
cd "$(dirname "$0")/.."

SUMMARY_ARGS=""
if [ -n "${GITHUB_STEP_SUMMARY:-}" ]; then
    SUMMARY_ARGS="-summary $GITHUB_STEP_SUMMARY"
fi

ratchet() {
    name=$1 baseline=$2 pattern=$3 benchtime=$4 pkg=$5
    if [ ! -f "$baseline" ]; then
        echo "bench-ratchet: missing baseline $baseline (run 'make bench-json' and commit it)" >&2
        exit 1
    fi
    echo "== $name (best of 3 vs $baseline, tolerance $TOLERANCE)"
    if [ -n "${GITHUB_STEP_SUMMARY:-}" ]; then
        printf '### bench ratchet: %s\n\n' "$name" >> "$GITHUB_STEP_SUMMARY"
    fi
    # shellcheck disable=SC2086  # SUMMARY_ARGS is deliberately word-split
    go test -run NONE -bench="$pattern" -benchtime="$benchtime" -count=3 "$pkg" \
        | go run ./cmd/reed-benchjson -bestof -compare "$baseline" -tolerance "$TOLERANCE" $SUMMARY_ARGS
}

ratchet pipeline BENCH_pipeline.json BenchmarkStreamingUpload 1x    .
ratchet mux      BENCH_mux.json      BenchmarkMuxedGets       3x    ./internal/server/
ratchet shard    BENCH_shard.json    BenchmarkShardedPut      1x    .
ratchet oprf     BENCH_oprf.json     BenchmarkKeygenPerChunk  1000x ./internal/oprf/
ratchet warm     BENCH_warm.json     BenchmarkWarmUpload      1x    .

echo "bench-ratchet: all suites within tolerance"
