#!/bin/sh
# fuzz_smoke.sh — auto-discover and smoke-run every native fuzz target.
#
# `go test -fuzz` accepts exactly one target per invocation, so a fixed
# Makefile list silently stops covering targets added later. Instead we
# ask each package which Fuzz* functions it declares
# (go test -list '^Fuzz') and run every one for $FUZZTIME. A minimum
# target count guards the discovery itself: if a refactor ever makes
# the listing come up short, the smoke fails loudly instead of
# shrinking to nothing.
set -eu

GO=${GO:-go}
FUZZTIME=${FUZZTIME:-30s}
# The seed corpus already has at least this many attacker-facing
# parser/crypto targets; discovery reporting fewer means it is broken.
MIN_TARGETS=${MIN_TARGETS:-5}

total=0
failed=0

# -list prints matching test/fuzz function names, one per line, plus an
# "ok <pkg>" trailer; keep only Fuzz* lines.
for pkg in $($GO list ./...); do
    targets=$($GO test -list '^Fuzz' "$pkg" | grep '^Fuzz' || true)
    [ -z "$targets" ] && continue
    for t in $targets; do
        total=$((total + 1))
        echo "==> $pkg $t (fuzztime $FUZZTIME)"
        if ! $GO test -run NONE -fuzz "^${t}\$" -fuzztime "$FUZZTIME" "$pkg"; then
            failed=$((failed + 1))
        fi
    done
done

if [ "$total" -lt "$MIN_TARGETS" ]; then
    echo "fuzz-smoke: discovered only $total fuzz target(s); expected at least $MIN_TARGETS — discovery is broken or targets were deleted" >&2
    exit 1
fi
if [ "$failed" -gt 0 ]; then
    echo "fuzz-smoke: $failed of $total fuzz target(s) failed" >&2
    exit 1
fi
echo "fuzz-smoke: $total fuzz target(s) passed"
