#!/bin/sh
# admin_smoke.sh — end-to-end check of the admin introspection plane.
#
# Boots a real reed-server with -admin enabled, then verifies from the
# outside that /healthz answers 200, /metrics serves parseable JSON
# with the expected top-level keys, and /metrics?format=text renders.
# Any non-200 status or unparseable body fails the script.
#
# Needs: go, curl, and jq or python3 (for JSON validation).
set -eu

ADMIN_ADDR=${ADMIN_ADDR:-127.0.0.1:19095}
LISTEN_ADDR=${LISTEN_ADDR:-127.0.0.1:19005}
BIN=$(mktemp -d)/reed-server
METRICS=$(mktemp)

cleanup() {
    [ -n "${SRV_PID:-}" ] && kill "$SRV_PID" 2>/dev/null || true
    rm -f "$METRICS"
    rm -rf "$(dirname "$BIN")"
}
trap cleanup EXIT INT TERM

echo "building reed-server..."
go build -o "$BIN" ./cmd/reed-server

"$BIN" -listen "$LISTEN_ADDR" -admin "$ADMIN_ADDR" &
SRV_PID=$!

# Wait for the admin listener (the server binds before serving, so a
# short poll suffices; bail out if the process died).
i=0
until curl -fsS -o /dev/null "http://$ADMIN_ADDR/healthz" 2>/dev/null; do
    i=$((i + 1))
    if [ "$i" -ge 50 ]; then
        echo "admin endpoint never came up on $ADMIN_ADDR" >&2
        exit 1
    fi
    kill -0 "$SRV_PID" 2>/dev/null || { echo "reed-server exited early" >&2; exit 1; }
    sleep 0.1
done

echo "checking /healthz..."
body=$(curl -fsS "http://$ADMIN_ADDR/healthz")
[ "$body" = "ok" ] || { echo "/healthz body = '$body', want 'ok'" >&2; exit 1; }

echo "checking /metrics (JSON)..."
curl -fsS "http://$ADMIN_ADDR/metrics" >"$METRICS"
if command -v jq >/dev/null 2>&1; then
    jq -e 'has("counters") and has("gauges") and has("histograms")' "$METRICS" >/dev/null \
        || { echo "/metrics JSON missing counters/gauges/histograms keys" >&2; cat "$METRICS" >&2; exit 1; }
else
    python3 -c 'import json,sys; s=json.load(open(sys.argv[1])); assert {"counters","gauges","histograms"} <= set(s), s.keys()' "$METRICS" \
        || { echo "/metrics JSON invalid" >&2; cat "$METRICS" >&2; exit 1; }
fi

echo "checking /metrics?format=text..."
text=$(curl -fsS "http://$ADMIN_ADDR/metrics?format=text")
echo "$text" | grep -q "server_connections" \
    || { echo "text rendering missing server_connections gauge" >&2; echo "$text" >&2; exit 1; }

echo "checking /debug/pprof/ is served..."
curl -fsS -o /dev/null "http://$ADMIN_ADDR/debug/pprof/"

echo "admin smoke: OK"
