#!/bin/sh
# crash_recovery.sh — end-to-end kill -9 recovery check.
#
# Provisions a real deployment (key manager + key-store reed-server +
# data reed-server on disk backends), uploads a corpus with known
# duplicate content, snapshots the dedup accounting from the admin
# endpoint, then SIGKILLs both storage servers mid-flight and restarts
# them on the same directories. The run fails unless:
#
#   - every pre-kill dedup metric (unique chunks, containers, savings
#     ratio, ref inflation, logical/physical bytes, put counters) is
#     bit-identical after recovery;
#   - every acknowledged upload downloads byte-identical;
#   - a second SIGKILL in the middle of an upload still leaves the
#     server functional: old files download, new uploads land.
#
# Needs: go, curl, python3.
set -eu

DATA_ADDR=${DATA_ADDR:-127.0.0.1:19220}
KEYSTORE_ADDR=${KEYSTORE_ADDR:-127.0.0.1:19221}
KM_ADDR=${KM_ADDR:-127.0.0.1:19222}
DATA_ADMIN=${DATA_ADMIN:-127.0.0.1:19230}
KEYSTORE_ADMIN=${KEYSTORE_ADMIN:-127.0.0.1:19231}
KM_ADMIN=${KM_ADMIN:-127.0.0.1:19232}

WORK=$(mktemp -d)
BIN=$WORK/bin
STATE=$WORK/state
DATA_DIR=$WORK/data
KEYSTORE_DIR=$WORK/keystore
CORPUS=$WORK/corpus
OUT=$WORK/restored
mkdir -p "$BIN" "$CORPUS" "$OUT"

DATA_PID=
KEYSTORE_PID=
KM_PID=

cleanup() {
    for pid in "$DATA_PID" "$KEYSTORE_PID" "$KM_PID"; do
        [ -n "$pid" ] && kill -9 "$pid" 2>/dev/null || true
    done
    rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

wait_healthz() { # addr
    i=0
    until curl -fsS -o /dev/null "http://$1/healthz" 2>/dev/null; do
        i=$((i + 1))
        [ "$i" -ge 100 ] && { echo "server on $1 never became healthy" >&2; exit 1; }
        sleep 0.1
    done
}

start_storage() {
    "$BIN/reed-server" -listen "$DATA_ADDR" -backend "disk://$DATA_DIR" -admin "$DATA_ADMIN" &
    DATA_PID=$!
    "$BIN/reed-server" -listen "$KEYSTORE_ADDR" -backend "disk://$KEYSTORE_DIR" -admin "$KEYSTORE_ADMIN" &
    KEYSTORE_PID=$!
    wait_healthz "$DATA_ADMIN"
    wait_healthz "$KEYSTORE_ADMIN"
}

# snapshot_metrics prints the recoverable dedup accounting of one
# server as sorted key=value lines, so recovery can be checked with a
# plain diff.
snapshot_metrics() { # admin-addr
    curl -fsS "http://$1/metrics" | python3 -c '
import json, sys
s = json.load(sys.stdin)
g, c = s.get("gauges", {}), s.get("counters", {})
for k in ("dedup_unique_chunk_count", "dedup_container_count",
          "dedup_savings_ratio", "dedup_ref_inflation",
          "dedup_logical_bytes", "dedup_physical_bytes"):
    print(f"{k}={g.get(k)!r}")
for k in ("dedup_total_puts", "dedup_deduped_puts",
          "dedup_gc_freed_chunks", "dedup_gc_reclaimed_bytes"):
    print(f"{k}={c.get(k)!r}")
'
}

client() { # subcommand [args...]
    sub=$1; shift
    "$BIN/reed-client" "$sub" -state "$STATE" -user alice \
        -servers "$DATA_ADDR" -keystore "$KEYSTORE_ADDR" -km "$KM_ADDR" "$@"
}

echo "building binaries..."
go build -o "$BIN/reed-server" ./cmd/reed-server
go build -o "$BIN/reed-client" ./cmd/reed-client
go build -o "$BIN/reed-keymanager" ./cmd/reed-keymanager

echo "provisioning authority state..."
"$BIN/reed-client" init-authority -state "$STATE"
"$BIN/reed-client" issue -state "$STATE" -user alice
"$BIN/reed-client" publish -state "$STATE" -users alice

echo "starting key manager + storage servers (disk backends)..."
"$BIN/reed-keymanager" -listen "$KM_ADDR" -bits 1024 -admin "$KM_ADMIN" &
KM_PID=$!
start_storage
wait_healthz "$KM_ADMIN"

echo "uploading corpus (file-b duplicates file-a's content)..."
head -c 300000 /dev/urandom >"$CORPUS/file-a"
cp "$CORPUS/file-a" "$CORPUS/file-b"
head -c 150000 /dev/urandom >"$CORPUS/file-c"
for f in file-a file-b file-c; do
    client upload -file "$CORPUS/$f" -as "/$f" -policy alice
done

echo "snapshotting dedup accounting before the crash..."
snapshot_metrics "$DATA_ADMIN" >"$WORK/data-pre.txt"
snapshot_metrics "$KEYSTORE_ADMIN" >"$WORK/keystore-pre.txt"
cat "$WORK/data-pre.txt"

dup=$(grep '^dedup_deduped_puts=' "$WORK/data-pre.txt" | cut -d= -f2)
[ "$dup" != "0" ] || { echo "corpus produced no duplicate chunks; dedup recovery untested" >&2; exit 1; }

echo "kill -9 both storage servers..."
kill -9 "$DATA_PID" "$KEYSTORE_PID"
wait "$DATA_PID" 2>/dev/null || true
wait "$KEYSTORE_PID" 2>/dev/null || true

echo "restarting on the same directories..."
start_storage

echo "comparing recovered accounting..."
snapshot_metrics "$DATA_ADMIN" >"$WORK/data-post.txt"
snapshot_metrics "$KEYSTORE_ADMIN" >"$WORK/keystore-post.txt"
diff -u "$WORK/data-pre.txt" "$WORK/data-post.txt" \
    || { echo "data server dedup accounting changed across kill -9" >&2; exit 1; }
diff -u "$WORK/keystore-pre.txt" "$WORK/keystore-post.txt" \
    || { echo "keystore dedup accounting changed across kill -9" >&2; exit 1; }

echo "downloading corpus after recovery..."
for f in file-a file-b file-c; do
    client download -path "/$f" -out "$OUT/$f"
    cmp "$CORPUS/$f" "$OUT/$f" || { echo "$f differs after recovery" >&2; exit 1; }
done

echo "phase B: kill -9 in the middle of an upload..."
head -c 8000000 /dev/urandom >"$CORPUS/file-d"
client upload -file "$CORPUS/file-d" -as "/file-d" -policy alice &
UPLOAD_PID=$!
sleep 0.3
kill -9 "$DATA_PID" "$KEYSTORE_PID"
wait "$DATA_PID" 2>/dev/null || true
wait "$KEYSTORE_PID" 2>/dev/null || true
if wait "$UPLOAD_PID" 2>/dev/null; then UPLOAD_OK=1; else UPLOAD_OK=0; fi

echo "restarting after mid-upload kill (upload acked: $UPLOAD_OK)..."
start_storage

echo "checking acknowledged data survived..."
for f in file-a file-b file-c; do
    client download -path "/$f" -out "$OUT/$f.2"
    cmp "$CORPUS/$f" "$OUT/$f.2" || { echo "$f differs after mid-upload crash" >&2; exit 1; }
done
if [ "$UPLOAD_OK" = 1 ]; then
    client download -path "/file-d" -out "$OUT/file-d"
    cmp "$CORPUS/file-d" "$OUT/file-d" || { echo "acked file-d differs after crash" >&2; exit 1; }
fi

echo "checking the recovered server accepts new work..."
head -c 100000 /dev/urandom >"$CORPUS/file-e"
client upload -file "$CORPUS/file-e" -as "/file-e" -policy alice
client download -path "/file-e" -out "$OUT/file-e"
cmp "$CORPUS/file-e" "$OUT/file-e" || { echo "file-e round trip failed" >&2; exit 1; }

echo "crash recovery: OK"
