package store

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
)

// HTTP is a Backend over an S3-style HTTP object server: one URL per
// blob at {base}/{ns}/{name}, with PUT/GET/HEAD/DELETE for single
// blobs, GET {base}/{ns}/ for a JSON name listing, and HTTP Range
// requests backing GetRange. NewObjectHandler is the matching server
// side; any store that honors single-part Range requests strictly
// (416, no silent clamping) works.
type HTTP struct {
	base   string
	client *http.Client
}

var _ Backend = (*HTTP)(nil)

// NewHTTP returns a backend talking to the object server at baseURL
// (scheme://host[/prefix]). A nil client uses http.DefaultClient.
func NewHTTP(baseURL string, client *http.Client) (*HTTP, error) {
	u, err := url.Parse(baseURL)
	if err != nil {
		return nil, fmt.Errorf("store: parse base URL: %w", err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return nil, fmt.Errorf("store: base URL %q: scheme must be http or https", baseURL)
	}
	if u.Host == "" {
		return nil, fmt.Errorf("store: base URL %q: missing host", baseURL)
	}
	if client == nil {
		client = http.DefaultClient
	}
	return &HTTP{base: strings.TrimRight(u.String(), "/"), client: client}, nil
}

func (h *HTTP) blobURL(ns, name string) string {
	return h.base + "/" + url.PathEscape(ns) + "/" + url.PathEscape(name)
}

// do runs one request and returns the response; non-2xx statuses other
// than those the caller whitelists become errors carrying the body.
func (h *HTTP) do(req *http.Request, okStatus ...int) (*http.Response, error) {
	resp, err := h.client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("store: %s %s: %w", req.Method, req.URL.Path, err)
	}
	for _, s := range okStatus {
		if resp.StatusCode == s {
			return resp, nil
		}
	}
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
	resp.Body.Close()
	return nil, fmt.Errorf("store: %s %s: %s: %s",
		req.Method, req.URL.Path, resp.Status, strings.TrimSpace(string(body)))
}

// Put implements Backend. Atomicity is delegated to the object server:
// a conforming server (NewObjectHandler over Memory or Disk) publishes
// the blob atomically.
func (h *HTTP) Put(ctx context.Context, ns, name string, data []byte) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPut, h.blobURL(ns, name), bytes.NewReader(data))
	if err != nil {
		return fmt.Errorf("store: build request: %w", err)
	}
	req.ContentLength = int64(len(data))
	resp, err := h.do(req, http.StatusOK, http.StatusCreated, http.StatusNoContent)
	if err != nil {
		return err
	}
	resp.Body.Close()
	return nil
}

// Get implements Backend.
func (h *HTTP) Get(ctx context.Context, ns, name string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, h.blobURL(ns, name), nil)
	if err != nil {
		return nil, fmt.Errorf("store: build request: %w", err)
	}
	resp, err := h.client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("store: GET %s: %w", req.URL.Path, err)
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		data, err := io.ReadAll(resp.Body)
		if err != nil {
			return nil, fmt.Errorf("store: read body: %w", err)
		}
		return data, nil
	case http.StatusNotFound:
		return nil, fmt.Errorf("%w: %s/%s", ErrNotFound, ns, name)
	default:
		return nil, fmt.Errorf("store: GET %s: %s", req.URL.Path, resp.Status)
	}
}

// GetRange implements Backend via an HTTP Range request. The (off, n)
// window maps onto a single range spec; a server that clamps instead
// of rejecting an over-long range is caught by the length check, so
// the strict ErrRange contract holds either way.
func (h *HTTP) GetRange(ctx context.Context, ns, name string, off, n int64) ([]byte, error) {
	if n == 0 {
		// A zero-length window has no HTTP range spelling; validate the
		// bounds against the whole blob instead.
		blob, err := h.Get(ctx, ns, name)
		if err != nil {
			return nil, err
		}
		if _, _, err := resolveRange(off, n, int64(len(blob))); err != nil {
			return nil, fmt.Errorf("%s/%s: %w", ns, name, err)
		}
		return []byte{}, nil
	}

	var spec string
	var want int64 // exact expected length, -1 if open-ended
	switch {
	case off < 0:
		if n > -off {
			return nil, fmt.Errorf("%s/%s: %w: suffix %d shorter than length %d", ns, name, ErrRange, -off, n)
		}
		spec = fmt.Sprintf("bytes=%d", off) // bytes=-N suffix form
		want = -off
	case n < 0:
		spec = fmt.Sprintf("bytes=%d-", off)
		want = -1
	default:
		spec = fmt.Sprintf("bytes=%d-%d", off, off+n-1)
		want = n
	}

	req, err := http.NewRequestWithContext(ctx, http.MethodGet, h.blobURL(ns, name), nil)
	if err != nil {
		return nil, fmt.Errorf("store: build request: %w", err)
	}
	req.Header.Set("Range", spec)
	resp, err := h.client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("store: GET %s: %w", req.URL.Path, err)
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusPartialContent:
		data, err := io.ReadAll(resp.Body)
		if err != nil {
			return nil, fmt.Errorf("store: read body: %w", err)
		}
		if want >= 0 && int64(len(data)) != want {
			return nil, fmt.Errorf("%s/%s: %w: server returned %d of %d bytes",
				ns, name, ErrRange, len(data), want)
		}
		if off < 0 && n >= 0 {
			data = data[:n] // first n bytes of the suffix window
		}
		return data, nil
	case http.StatusOK:
		// Server ignored the Range header; apply the window locally.
		blob, err := io.ReadAll(resp.Body)
		if err != nil {
			return nil, fmt.Errorf("store: read body: %w", err)
		}
		start, end, err := resolveRange(off, n, int64(len(blob)))
		if err != nil {
			return nil, fmt.Errorf("%s/%s: %w", ns, name, err)
		}
		return blob[start:end], nil
	case http.StatusNotFound:
		return nil, fmt.Errorf("%w: %s/%s", ErrNotFound, ns, name)
	case http.StatusRequestedRangeNotSatisfiable:
		return nil, fmt.Errorf("%s/%s: %w: %s", ns, name, ErrRange, spec)
	default:
		return nil, fmt.Errorf("store: GET %s (%s): %s", req.URL.Path, spec, resp.Status)
	}
}

// Has implements Backend.
func (h *HTTP) Has(ctx context.Context, ns, name string) (bool, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodHead, h.blobURL(ns, name), nil)
	if err != nil {
		return false, fmt.Errorf("store: build request: %w", err)
	}
	resp, err := h.client.Do(req)
	if err != nil {
		return false, fmt.Errorf("store: HEAD %s: %w", req.URL.Path, err)
	}
	resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK, http.StatusNoContent:
		return true, nil
	case http.StatusNotFound:
		return false, nil
	default:
		return false, fmt.Errorf("store: HEAD %s: %s", req.URL.Path, resp.Status)
	}
}

// Delete implements Backend; deleting a missing blob is not an error.
func (h *HTTP) Delete(ctx context.Context, ns, name string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete, h.blobURL(ns, name), nil)
	if err != nil {
		return fmt.Errorf("store: build request: %w", err)
	}
	resp, err := h.do(req, http.StatusOK, http.StatusNoContent, http.StatusNotFound)
	if err != nil {
		return err
	}
	resp.Body.Close()
	return nil
}

// List implements Backend.
func (h *HTTP) List(ctx context.Context, ns string) ([]string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, h.base+"/"+url.PathEscape(ns)+"/", nil)
	if err != nil {
		return nil, fmt.Errorf("store: build request: %w", err)
	}
	resp, err := h.do(req, http.StatusOK, http.StatusNotFound)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		return nil, nil
	}
	var names []string
	if err := json.NewDecoder(resp.Body).Decode(&names); err != nil {
		return nil, fmt.Errorf("store: decode listing: %w", err)
	}
	return names, nil
}

// Close implements Backend.
func (h *HTTP) Close() error {
	h.client.CloseIdleConnections()
	return nil
}

// objectHandler serves a Backend over the HTTP object protocol.
type objectHandler struct {
	backend Backend
}

// NewObjectHandler returns an http.Handler exposing backend with the
// URL scheme the HTTP backend speaks: PUT/GET/HEAD/DELETE on
// /{ns}/{name}, GET /{ns}/ for a JSON listing, and strict single-part
// Range support on GET (a range not fully inside the blob is 416,
// never clamped). cmd/reed-objectserver wraps this into a standalone
// object server.
func NewObjectHandler(backend Backend) http.Handler {
	return &objectHandler{backend: backend}
}

// parseRange parses a single-part Range header into GetRange's (off, n)
// semantics. ok is false when the header is absent or unparseable —
// the caller then serves the whole blob, per RFC 9110's
// ignore-invalid-ranges advice.
func parseRange(header string) (off, n int64, ok bool) {
	spec, found := strings.CutPrefix(header, "bytes=")
	if !found || strings.Contains(spec, ",") {
		return 0, 0, false
	}
	first, last, found := strings.Cut(spec, "-")
	if !found {
		return 0, 0, false
	}
	if first == "" { // bytes=-N: suffix
		s, err := strconv.ParseInt(last, 10, 64)
		if err != nil || s <= 0 {
			return 0, 0, false
		}
		return -s, -1, true
	}
	a, err := strconv.ParseInt(first, 10, 64)
	if err != nil || a < 0 {
		return 0, 0, false
	}
	if last == "" { // bytes=N-: open-ended
		return a, -1, true
	}
	b, err := strconv.ParseInt(last, 10, 64)
	if err != nil || b < a {
		return 0, 0, false
	}
	return a, b - a + 1, true
}

func (o *objectHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	path := strings.TrimPrefix(r.URL.EscapedPath(), "/")
	nsEsc, nameEsc, _ := strings.Cut(path, "/")
	ns, err := url.PathUnescape(nsEsc)
	if err != nil || ns == "" {
		http.Error(w, "bad namespace", http.StatusBadRequest)
		return
	}
	name, err := url.PathUnescape(nameEsc)
	if err != nil {
		http.Error(w, "bad name", http.StatusBadRequest)
		return
	}

	if name == "" {
		if r.Method != http.MethodGet && r.Method != http.MethodHead {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		o.list(w, r, ns)
		return
	}

	switch r.Method {
	case http.MethodPut:
		data, err := io.ReadAll(r.Body)
		if err != nil {
			http.Error(w, "read body: "+err.Error(), http.StatusBadRequest)
			return
		}
		if err := o.backend.Put(r.Context(), ns, name, data); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.WriteHeader(http.StatusCreated)
	case http.MethodGet:
		o.get(w, r, ns, name)
	case http.MethodHead:
		ok, err := o.backend.Has(r.Context(), ns, name)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		if !ok {
			w.WriteHeader(http.StatusNotFound)
			return
		}
		w.WriteHeader(http.StatusOK)
	case http.MethodDelete:
		if err := o.backend.Delete(r.Context(), ns, name); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

func (o *objectHandler) list(w http.ResponseWriter, r *http.Request, ns string) {
	names, err := o.backend.List(r.Context(), ns)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	if names == nil {
		names = []string{}
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(names); err != nil {
		return // client went away; nothing to report
	}
}

func (o *objectHandler) get(w http.ResponseWriter, r *http.Request, ns, name string) {
	if off, n, ok := parseRange(r.Header.Get("Range")); ok {
		data, err := o.backend.GetRange(r.Context(), ns, name, off, n)
		switch {
		case err == nil:
			if off >= 0 {
				w.Header().Set("Content-Range",
					fmt.Sprintf("bytes %d-%d/*", off, off+int64(len(data))-1))
			}
			w.WriteHeader(http.StatusPartialContent)
			_, _ = w.Write(data)
		case errors.Is(err, ErrRange):
			http.Error(w, err.Error(), http.StatusRequestedRangeNotSatisfiable)
		case errors.Is(err, ErrNotFound):
			http.Error(w, err.Error(), http.StatusNotFound)
		default:
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
		return
	}
	data, err := o.backend.Get(r.Context(), ns, name)
	switch {
	case err == nil:
		w.Header().Set("Content-Length", strconv.Itoa(len(data)))
		_, _ = w.Write(data)
	case errors.Is(err, ErrNotFound):
		http.Error(w, err.Error(), http.StatusNotFound)
	default:
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
