package store

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
)

// backends returns one of each Backend implementation for shared tests.
func backends(t *testing.T) map[string]Backend {
	t.Helper()
	disk, err := NewDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Backend{
		"memory": NewMemory(),
		"disk":   disk,
	}
}

func TestPutGetRoundTrip(t *testing.T) {
	for name, b := range backends(t) {
		t.Run(name, func(t *testing.T) {
			defer b.Close()
			if err := b.Put(NSRecipes, "file-1", []byte("recipe data")); err != nil {
				t.Fatal(err)
			}
			got, err := b.Get(NSRecipes, "file-1")
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, []byte("recipe data")) {
				t.Fatalf("Get = %q", got)
			}
		})
	}
}

func TestGetMissing(t *testing.T) {
	for name, b := range backends(t) {
		t.Run(name, func(t *testing.T) {
			defer b.Close()
			if _, err := b.Get(NSRecipes, "absent"); !errors.Is(err, ErrNotFound) {
				t.Fatalf("error = %v, want ErrNotFound", err)
			}
		})
	}
}

func TestHas(t *testing.T) {
	for name, b := range backends(t) {
		t.Run(name, func(t *testing.T) {
			defer b.Close()
			if ok, err := b.Has(NSStubs, "x"); err != nil || ok {
				t.Fatalf("Has(absent) = %v, %v", ok, err)
			}
			if err := b.Put(NSStubs, "x", []byte("s")); err != nil {
				t.Fatal(err)
			}
			if ok, err := b.Has(NSStubs, "x"); err != nil || !ok {
				t.Fatalf("Has(present) = %v, %v", ok, err)
			}
		})
	}
}

func TestOverwrite(t *testing.T) {
	for name, b := range backends(t) {
		t.Run(name, func(t *testing.T) {
			defer b.Close()
			b.Put(NSMeta, "k", []byte("v1"))
			b.Put(NSMeta, "k", []byte("v2"))
			got, err := b.Get(NSMeta, "k")
			if err != nil || !bytes.Equal(got, []byte("v2")) {
				t.Fatalf("Get after overwrite = %q, %v", got, err)
			}
		})
	}
}

func TestDelete(t *testing.T) {
	for name, b := range backends(t) {
		t.Run(name, func(t *testing.T) {
			defer b.Close()
			b.Put(NSMeta, "k", []byte("v"))
			if err := b.Delete(NSMeta, "k"); err != nil {
				t.Fatal(err)
			}
			if _, err := b.Get(NSMeta, "k"); !errors.Is(err, ErrNotFound) {
				t.Fatalf("error = %v, want ErrNotFound", err)
			}
			// Deleting a missing blob is not an error.
			if err := b.Delete(NSMeta, "k"); err != nil {
				t.Fatalf("Delete(missing) = %v", err)
			}
		})
	}
}

func TestList(t *testing.T) {
	for name, b := range backends(t) {
		t.Run(name, func(t *testing.T) {
			defer b.Close()
			names, err := b.List(NSContainers)
			if err != nil || len(names) != 0 {
				t.Fatalf("List(empty) = %v, %v", names, err)
			}
			for _, n := range []string{"c", "a", "b"} {
				b.Put(NSContainers, n, []byte(n))
			}
			names, err = b.List(NSContainers)
			if err != nil {
				t.Fatal(err)
			}
			want := []string{"a", "b", "c"}
			if len(names) != 3 {
				t.Fatalf("List = %v", names)
			}
			for i := range want {
				if names[i] != want[i] {
					t.Fatalf("List = %v, want sorted %v", names, want)
				}
			}
		})
	}
}

func TestNamespaceIsolation(t *testing.T) {
	for name, b := range backends(t) {
		t.Run(name, func(t *testing.T) {
			defer b.Close()
			b.Put(NSRecipes, "k", []byte("recipe"))
			b.Put(NSStubs, "k", []byte("stub"))
			got, err := b.Get(NSRecipes, "k")
			if err != nil || !bytes.Equal(got, []byte("recipe")) {
				t.Fatal("namespace collision")
			}
		})
	}
}

func TestAwkwardNames(t *testing.T) {
	awkward := []string{
		"path/with/slashes",
		"spaces and %percent",
		"unicode-日本語",
		"..",
		"trailing.",
	}
	for name, b := range backends(t) {
		t.Run(name, func(t *testing.T) {
			defer b.Close()
			for _, key := range awkward {
				if err := b.Put(NSRecipes, key, []byte(key)); err != nil {
					t.Fatalf("Put(%q): %v", key, err)
				}
				got, err := b.Get(NSRecipes, key)
				if err != nil || !bytes.Equal(got, []byte(key)) {
					t.Fatalf("Get(%q) = %q, %v", key, got, err)
				}
			}
			names, err := b.List(NSRecipes)
			if err != nil {
				t.Fatal(err)
			}
			if len(names) != len(awkward) {
				t.Fatalf("List returned %d names, want %d: %v", len(names), len(awkward), names)
			}
		})
	}
}

func TestPutCopiesData(t *testing.T) {
	m := NewMemory()
	data := []byte("mutable")
	m.Put(NSMeta, "k", data)
	data[0] ^= 0xFF
	got, _ := m.Get(NSMeta, "k")
	if got[0] == data[0] {
		t.Fatal("memory backend aliased the caller's slice")
	}
}

func TestMemoryTotalBytes(t *testing.T) {
	m := NewMemory()
	m.Put(NSContainers, "a", make([]byte, 100))
	m.Put(NSContainers, "b", make([]byte, 50))
	m.Put(NSStubs, "c", make([]byte, 7))
	if got := m.TotalBytes(NSContainers); got != 150 {
		t.Fatalf("TotalBytes = %d, want 150", got)
	}
}

func TestDiskPersistsAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	d1, err := NewDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := d1.Put(NSRecipes, "persist", []byte("durable")); err != nil {
		t.Fatal(err)
	}
	d1.Close()

	d2, err := NewDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	got, err := d2.Get(NSRecipes, "persist")
	if err != nil || !bytes.Equal(got, []byte("durable")) {
		t.Fatalf("Get after reopen = %q, %v", got, err)
	}
}

func TestEscapeRoundTrip(t *testing.T) {
	names := []string{"plain", "a/b", "%", "%%25", "ü", ""}
	for _, n := range names {
		got, err := unescape(escape(n))
		if err != nil {
			t.Fatalf("unescape(escape(%q)): %v", n, err)
		}
		if got != n {
			t.Fatalf("round trip %q -> %q", n, got)
		}
	}
}

func TestUnescapeErrors(t *testing.T) {
	for _, bad := range []string{"%", "%2", "%zz"} {
		if _, err := unescape(bad); err == nil {
			t.Fatalf("unescape(%q) expected error", bad)
		}
	}
}

func TestConcurrentBackendAccess(t *testing.T) {
	for name, b := range backends(t) {
		t.Run(name, func(t *testing.T) {
			defer b.Close()
			var wg sync.WaitGroup
			for g := 0; g < 8; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for i := 0; i < 50; i++ {
						key := fmt.Sprintf("%d-%d", g, i)
						if err := b.Put(NSMeta, key, []byte(key)); err != nil {
							t.Errorf("Put: %v", err)
							return
						}
						if _, err := b.Get(NSMeta, key); err != nil {
							t.Errorf("Get: %v", err)
							return
						}
					}
				}(g)
			}
			wg.Wait()
		})
	}
}

// TestDiskConcurrentSameBlob hammers one blob name with overwrites while
// readers and listers run. Striped locking serializes same-name writers;
// rename publication means a reader sees one complete value, never a
// torn mix, and List never errors mid-write.
func TestDiskConcurrentSameBlob(t *testing.T) {
	d, err := NewDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	vals := [][]byte{
		bytes.Repeat([]byte{0xAA}, 4096),
		bytes.Repeat([]byte{0xBB}, 4096),
	}
	if err := d.Put(NSMeta, "hot", vals[0]); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if err := d.Put(NSMeta, "hot", vals[(g+i)%2]); err != nil {
					t.Errorf("Put: %v", err)
					return
				}
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				got, err := d.Get(NSMeta, "hot")
				if err != nil {
					t.Errorf("Get: %v", err)
					return
				}
				if !bytes.Equal(got, vals[0]) && !bytes.Equal(got, vals[1]) {
					t.Errorf("Get returned torn value (len %d)", len(got))
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			names, err := d.List(NSMeta)
			if err != nil {
				t.Errorf("List: %v", err)
				return
			}
			for _, n := range names {
				if n != "hot" {
					t.Errorf("List saw unexpected name %q", n)
					return
				}
			}
		}
	}()
	wg.Wait()
}

// TestDiskConcurrentDisjointBlobs runs put/get/delete cycles on disjoint
// names from many goroutines; stripes must never cross-corrupt.
func TestDiskConcurrentDisjointBlobs(t *testing.T) {
	d, err := NewDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				name := fmt.Sprintf("blob-%d-%d", g, i)
				want := []byte(name)
				if err := d.Put(NSContainers, name, want); err != nil {
					t.Errorf("Put: %v", err)
					return
				}
				got, err := d.Get(NSContainers, name)
				if err != nil || !bytes.Equal(got, want) {
					t.Errorf("Get %s = %q, %v", name, got, err)
					return
				}
				if i%3 == 0 {
					if err := d.Delete(NSContainers, name); err != nil {
						t.Errorf("Delete: %v", err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
}
