package store

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

var ctx = context.Background()

// backends returns one of each Backend implementation for shared
// conformance tests: memory, disk (synced and unsynced), and the HTTP
// backend talking to an object handler over memory.
func backends(t *testing.T) map[string]Backend {
	t.Helper()
	disk, err := NewDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	nosync, err := NewDisk(t.TempDir(), WithNoSync())
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewObjectHandler(NewMemory()))
	t.Cleanup(srv.Close)
	httpBackend, err := NewHTTP(srv.URL, srv.Client())
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Backend{
		"memory":      NewMemory(),
		"disk":        disk,
		"disk-nosync": nosync,
		"http":        httpBackend,
	}
}

func TestPutGetRoundTrip(t *testing.T) {
	for name, b := range backends(t) {
		t.Run(name, func(t *testing.T) {
			defer b.Close()
			if err := b.Put(ctx, NSRecipes, "file-1", []byte("recipe data")); err != nil {
				t.Fatal(err)
			}
			got, err := b.Get(ctx, NSRecipes, "file-1")
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, []byte("recipe data")) {
				t.Fatalf("Get = %q", got)
			}
		})
	}
}

func TestGetMissing(t *testing.T) {
	for name, b := range backends(t) {
		t.Run(name, func(t *testing.T) {
			defer b.Close()
			if _, err := b.Get(ctx, NSRecipes, "absent"); !errors.Is(err, ErrNotFound) {
				t.Fatalf("error = %v, want ErrNotFound", err)
			}
			if _, err := b.GetRange(ctx, NSRecipes, "absent", 0, 1); !errors.Is(err, ErrNotFound) {
				t.Fatalf("GetRange error = %v, want ErrNotFound", err)
			}
		})
	}
}

func TestGetRange(t *testing.T) {
	blob := []byte("0123456789abcdef")
	cases := []struct {
		off, n int64
		want   string
	}{
		{0, 4, "0123"},
		{4, 4, "4567"},
		{0, -1, "0123456789abcdef"},
		{12, -1, "cdef"},
		{-4, -1, "cdef"},
		{-4, 4, "cdef"},
		{-16, 3, "012"},
		{-4, 2, "cd"},
		{16, -1, ""},
		{0, 0, ""},
		{16, 0, ""},
	}
	for name, b := range backends(t) {
		t.Run(name, func(t *testing.T) {
			defer b.Close()
			if err := b.Put(ctx, NSContainers, "r", blob); err != nil {
				t.Fatal(err)
			}
			for _, c := range cases {
				got, err := b.GetRange(ctx, NSContainers, "r", c.off, c.n)
				if err != nil {
					t.Fatalf("GetRange(%d, %d): %v", c.off, c.n, err)
				}
				if string(got) != c.want {
					t.Fatalf("GetRange(%d, %d) = %q, want %q", c.off, c.n, got, c.want)
				}
			}
		})
	}
}

func TestGetRangeOutOfBounds(t *testing.T) {
	blob := []byte("0123456789")
	cases := []struct{ off, n int64 }{
		{0, 11},   // past the end
		{10, 1},   // starts at EOF, wants a byte
		{11, -1},  // starts past EOF
		{-11, -1}, // suffix longer than the blob
		{-4, 5},   // suffix window shorter than requested
		{8, 3},    // tail overrun
	}
	for name, b := range backends(t) {
		t.Run(name, func(t *testing.T) {
			defer b.Close()
			if err := b.Put(ctx, NSContainers, "r", blob); err != nil {
				t.Fatal(err)
			}
			for _, c := range cases {
				if _, err := b.GetRange(ctx, NSContainers, "r", c.off, c.n); !errors.Is(err, ErrRange) {
					t.Fatalf("GetRange(%d, %d) = %v, want ErrRange", c.off, c.n, err)
				}
			}
		})
	}
}

func TestHas(t *testing.T) {
	for name, b := range backends(t) {
		t.Run(name, func(t *testing.T) {
			defer b.Close()
			if ok, err := b.Has(ctx, NSStubs, "x"); err != nil || ok {
				t.Fatalf("Has(absent) = %v, %v", ok, err)
			}
			if err := b.Put(ctx, NSStubs, "x", []byte("s")); err != nil {
				t.Fatal(err)
			}
			if ok, err := b.Has(ctx, NSStubs, "x"); err != nil || !ok {
				t.Fatalf("Has(present) = %v, %v", ok, err)
			}
		})
	}
}

func TestOverwrite(t *testing.T) {
	for name, b := range backends(t) {
		t.Run(name, func(t *testing.T) {
			defer b.Close()
			b.Put(ctx, NSMeta, "k", []byte("v1"))
			b.Put(ctx, NSMeta, "k", []byte("v2"))
			got, err := b.Get(ctx, NSMeta, "k")
			if err != nil || !bytes.Equal(got, []byte("v2")) {
				t.Fatalf("Get after overwrite = %q, %v", got, err)
			}
		})
	}
}

func TestDelete(t *testing.T) {
	for name, b := range backends(t) {
		t.Run(name, func(t *testing.T) {
			defer b.Close()
			b.Put(ctx, NSMeta, "k", []byte("v"))
			if err := b.Delete(ctx, NSMeta, "k"); err != nil {
				t.Fatal(err)
			}
			if _, err := b.Get(ctx, NSMeta, "k"); !errors.Is(err, ErrNotFound) {
				t.Fatalf("error = %v, want ErrNotFound", err)
			}
			// Deleting a missing blob is not an error.
			if err := b.Delete(ctx, NSMeta, "k"); err != nil {
				t.Fatalf("Delete(missing) = %v", err)
			}
		})
	}
}

func TestList(t *testing.T) {
	for name, b := range backends(t) {
		t.Run(name, func(t *testing.T) {
			defer b.Close()
			names, err := b.List(ctx, NSContainers)
			if err != nil || len(names) != 0 {
				t.Fatalf("List(empty) = %v, %v", names, err)
			}
			for _, n := range []string{"c", "a", "b"} {
				b.Put(ctx, NSContainers, n, []byte(n))
			}
			names, err = b.List(ctx, NSContainers)
			if err != nil {
				t.Fatal(err)
			}
			want := []string{"a", "b", "c"}
			if len(names) != 3 {
				t.Fatalf("List = %v", names)
			}
			for i := range want {
				if names[i] != want[i] {
					t.Fatalf("List = %v, want sorted %v", names, want)
				}
			}
		})
	}
}

func TestNamespaceIsolation(t *testing.T) {
	for name, b := range backends(t) {
		t.Run(name, func(t *testing.T) {
			defer b.Close()
			b.Put(ctx, NSRecipes, "k", []byte("recipe"))
			b.Put(ctx, NSStubs, "k", []byte("stub"))
			got, err := b.Get(ctx, NSRecipes, "k")
			if err != nil || !bytes.Equal(got, []byte("recipe")) {
				t.Fatal("namespace collision")
			}
		})
	}
}

func TestAwkwardNames(t *testing.T) {
	awkward := []string{
		"path/with/slashes",
		"spaces and %percent",
		"unicode-日本語",
		"..",
		"trailing.",
	}
	for name, b := range backends(t) {
		t.Run(name, func(t *testing.T) {
			defer b.Close()
			for _, key := range awkward {
				if err := b.Put(ctx, NSRecipes, key, []byte(key)); err != nil {
					t.Fatalf("Put(%q): %v", key, err)
				}
				got, err := b.Get(ctx, NSRecipes, key)
				if err != nil || !bytes.Equal(got, []byte(key)) {
					t.Fatalf("Get(%q) = %q, %v", key, got, err)
				}
			}
			names, err := b.List(ctx, NSRecipes)
			if err != nil {
				t.Fatal(err)
			}
			if len(names) != len(awkward) {
				t.Fatalf("List returned %d names, want %d: %v", len(names), len(awkward), names)
			}
		})
	}
}

func TestCanceledContext(t *testing.T) {
	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	for name, b := range backends(t) {
		t.Run(name, func(t *testing.T) {
			defer b.Close()
			if err := b.Put(canceled, NSMeta, "k", []byte("v")); err == nil {
				t.Fatal("Put with canceled context succeeded")
			}
			if _, err := b.Get(canceled, NSMeta, "k"); err == nil {
				t.Fatal("Get with canceled context succeeded")
			}
			if _, err := b.List(canceled, NSMeta); err == nil {
				t.Fatal("List with canceled context succeeded")
			}
		})
	}
}

func TestPutCopiesData(t *testing.T) {
	m := NewMemory()
	data := []byte("mutable")
	m.Put(ctx, NSMeta, "k", data)
	data[0] ^= 0xFF
	got, _ := m.Get(ctx, NSMeta, "k")
	if got[0] == data[0] {
		t.Fatal("memory backend aliased the caller's slice")
	}
}

func TestMemoryTotalBytes(t *testing.T) {
	m := NewMemory()
	m.Put(ctx, NSContainers, "a", make([]byte, 100))
	m.Put(ctx, NSContainers, "b", make([]byte, 50))
	m.Put(ctx, NSStubs, "c", make([]byte, 7))
	if got := m.TotalBytes(NSContainers); got != 150 {
		t.Fatalf("TotalBytes = %d, want 150", got)
	}
}

func TestDiskPersistsAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	d1, err := NewDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := d1.Put(ctx, NSRecipes, "persist", []byte("durable")); err != nil {
		t.Fatal(err)
	}
	d1.Close()

	d2, err := NewDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	got, err := d2.Get(ctx, NSRecipes, "persist")
	if err != nil || !bytes.Equal(got, []byte("durable")) {
		t.Fatalf("Get after reopen = %q, %v", got, err)
	}
}

// TestDiskPutLeavesNoTemp verifies Put cleans up: after a successful
// Put only the published file remains — no .tmp-* litter for List to
// skip forever or for recovery to misread.
func TestDiskPutLeavesNoTemp(t *testing.T) {
	dir := t.TempDir()
	d, err := NewDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if err := d.Put(ctx, NSContainers, "c1", []byte("data")); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(filepath.Join(dir, "containers"))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), ".tmp-") {
			t.Fatalf("temp file %s left behind", e.Name())
		}
	}
	if len(entries) != 1 {
		t.Fatalf("expected 1 entry, got %d", len(entries))
	}
}

func TestEscapeRoundTrip(t *testing.T) {
	names := []string{"plain", "a/b", "%", "%%25", "ü", ""}
	for _, n := range names {
		got, err := unescape(escape(n))
		if err != nil {
			t.Fatalf("unescape(escape(%q)): %v", n, err)
		}
		if got != n {
			t.Fatalf("round trip %q -> %q", n, got)
		}
	}
}

func TestUnescapeErrors(t *testing.T) {
	for _, bad := range []string{"%", "%2", "%zz"} {
		if _, err := unescape(bad); err == nil {
			t.Fatalf("unescape(%q) expected error", bad)
		}
	}
}

func TestParseRange(t *testing.T) {
	cases := []struct {
		header string
		off, n int64
		ok     bool
	}{
		{"bytes=0-3", 0, 4, true},
		{"bytes=5-5", 5, 1, true},
		{"bytes=7-", 7, -1, true},
		{"bytes=-32", -32, -1, true},
		{"", 0, 0, false},
		{"bytes=", 0, 0, false},
		{"bytes=3-1", 0, 0, false},
		{"bytes=-0", 0, 0, false},
		{"bytes=0-3,5-7", 0, 0, false},
		{"chars=0-3", 0, 0, false},
	}
	for _, c := range cases {
		off, n, ok := parseRange(c.header)
		if ok != c.ok || (ok && (off != c.off || n != c.n)) {
			t.Errorf("parseRange(%q) = (%d, %d, %v), want (%d, %d, %v)",
				c.header, off, n, ok, c.off, c.n, c.ok)
		}
	}
}

func TestHTTPBackendOverDisk(t *testing.T) {
	disk, err := NewDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewObjectHandler(disk))
	defer srv.Close()
	h, err := NewHTTP(srv.URL, srv.Client())
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()

	blob := bytes.Repeat([]byte("xyz"), 100)
	if err := h.Put(ctx, NSContainers, "c1", blob); err != nil {
		t.Fatal(err)
	}
	tail, err := h.GetRange(ctx, NSContainers, "c1", -6, -1)
	if err != nil || !bytes.Equal(tail, []byte("xyzxyz")) {
		t.Fatalf("suffix read = %q, %v", tail, err)
	}
	// The blob went through to disk, readable directly.
	got, err := disk.Get(ctx, NSContainers, "c1")
	if err != nil || !bytes.Equal(got, blob) {
		t.Fatalf("disk read-through = %d bytes, %v", len(got), err)
	}
}

func TestNewHTTPRejectsBadURLs(t *testing.T) {
	for _, bad := range []string{"ftp://host/x", "http://", "://nope", "relative/path"} {
		if _, err := NewHTTP(bad, nil); err == nil {
			t.Errorf("NewHTTP(%q) succeeded, want error", bad)
		}
	}
}

func TestConcurrentBackendAccess(t *testing.T) {
	for name, b := range backends(t) {
		t.Run(name, func(t *testing.T) {
			defer b.Close()
			var wg sync.WaitGroup
			for g := 0; g < 8; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for i := 0; i < 50; i++ {
						key := fmt.Sprintf("%d-%d", g, i)
						if err := b.Put(ctx, NSMeta, key, []byte(key)); err != nil {
							t.Errorf("Put: %v", err)
							return
						}
						if _, err := b.Get(ctx, NSMeta, key); err != nil {
							t.Errorf("Get: %v", err)
							return
						}
					}
				}(g)
			}
			wg.Wait()
		})
	}
}

// TestDiskConcurrentSameBlob hammers one blob name with overwrites while
// readers and listers run. Striped locking serializes same-name writers;
// rename publication means a reader sees one complete value, never a
// torn mix, and List never errors mid-write.
func TestDiskConcurrentSameBlob(t *testing.T) {
	d, err := NewDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	vals := [][]byte{
		bytes.Repeat([]byte{0xAA}, 4096),
		bytes.Repeat([]byte{0xBB}, 4096),
	}
	if err := d.Put(ctx, NSMeta, "hot", vals[0]); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if err := d.Put(ctx, NSMeta, "hot", vals[(g+i)%2]); err != nil {
					t.Errorf("Put: %v", err)
					return
				}
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				got, err := d.Get(ctx, NSMeta, "hot")
				if err != nil {
					t.Errorf("Get: %v", err)
					return
				}
				if !bytes.Equal(got, vals[0]) && !bytes.Equal(got, vals[1]) {
					t.Errorf("Get returned torn value (len %d)", len(got))
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			names, err := d.List(ctx, NSMeta)
			if err != nil {
				t.Errorf("List: %v", err)
				return
			}
			for _, n := range names {
				if n != "hot" {
					t.Errorf("List saw unexpected name %q", n)
					return
				}
			}
		}
	}()
	wg.Wait()
}

// TestDiskConcurrentDisjointBlobs runs put/get/delete cycles on disjoint
// names from many goroutines; stripes must never cross-corrupt.
func TestDiskConcurrentDisjointBlobs(t *testing.T) {
	d, err := NewDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				name := fmt.Sprintf("blob-%d-%d", g, i)
				want := []byte(name)
				if err := d.Put(ctx, NSContainers, name, want); err != nil {
					t.Errorf("Put: %v", err)
					return
				}
				got, err := d.Get(ctx, NSContainers, name)
				if err != nil || !bytes.Equal(got, want) {
					t.Errorf("Get %s = %q, %v", name, got, err)
					return
				}
				if i%3 == 0 {
					if err := d.Delete(ctx, NSContainers, name); err != nil {
						t.Errorf("Delete: %v", err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
}
