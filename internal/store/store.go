// Package store provides the flat blob storage backends behind REED's
// data store and key store.
//
// The paper separates the storage backend into a data store (file
// recipes, trimmed packages in containers, stub files) and a key store
// (encrypted key states). Both are namespace/key → blob maps; this
// package supplies an in-memory backend for tests and benchmarks, a
// disk backend mirroring the prototype's local-disk deployment, and an
// HTTP object backend for S3-style remote stores.
//
// # Backend contract
//
// Every method is ctx-first and every implementation must be safe for
// concurrent use. Two guarantees matter to callers:
//
//   - Put is atomic: a reader (Get, GetRange, List) never observes a
//     torn or partially written blob — it sees either the old blob, the
//     new blob, or ErrNotFound. The disk backend implements this with
//     write-to-temp + fsync + rename; the dedup layer's checkpoints
//     depend on it.
//   - GetRange reads a byte range without transferring the whole blob,
//     so packfile index reads skip whole-container copies. A negative
//     offset addresses from the end (off=-32 reads the final 32 bytes,
//     like an HTTP suffix range); a negative length means "to the end".
//     Ranges extending past either edge of the blob fail with ErrRange
//     rather than being silently clamped.
package store

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Well-known namespaces.
const (
	NSContainers = "containers"
	NSRecipes    = "recipes"
	NSStubs      = "stubs"
	NSKeyStates  = "keystates"
	NSMeta       = "meta"
	// NSWAL holds the dedup store's write-ahead log segments. Like
	// NSContainers and NSMeta it is server-internal: clients cannot
	// address it through the blob plane.
	NSWAL = "wal"
	// NSFileWAL holds the whole-file index's write-ahead log segments
	// (internal/fileindex). A separate namespace from NSWAL because a
	// wal.Log treats any blob it does not own in its namespace as
	// corruption. Server-internal like NSWAL.
	NSFileWAL = "filewal"
)

// ErrNotFound is returned when a blob does not exist.
var ErrNotFound = errors.New("store: not found")

// ErrRange is returned by GetRange when the requested byte range does
// not lie within the blob.
var ErrRange = errors.New("store: range out of bounds")

// Backend is a flat blob store keyed by (namespace, name).
// Implementations must be safe for concurrent use.
type Backend interface {
	// Put stores data under (ns, name), overwriting any existing blob.
	// The write is atomic: concurrent readers see the old blob or the
	// new one, never a mixture, and a crash mid-Put never leaves a torn
	// blob behind.
	Put(ctx context.Context, ns, name string, data []byte) error
	// Get returns the blob at (ns, name) or ErrNotFound.
	Get(ctx context.Context, ns, name string) ([]byte, error)
	// GetRange returns n bytes of the blob starting at off. off < 0
	// addresses from the end of the blob (a suffix read); n < 0 means
	// "through the end". A range that does not fit the blob returns
	// ErrRange; a missing blob returns ErrNotFound.
	GetRange(ctx context.Context, ns, name string, off, n int64) ([]byte, error)
	// Has reports whether (ns, name) exists.
	Has(ctx context.Context, ns, name string) (bool, error)
	// Delete removes (ns, name); deleting a missing blob is not an
	// error.
	Delete(ctx context.Context, ns, name string) error
	// List returns the names in ns, sorted.
	List(ctx context.Context, ns string) ([]string, error)
	// Close flushes any buffered state and releases resources.
	Close() error
}

// resolveRange maps a (off, n) request onto a blob of the given size,
// returning the [start, end) window. It implements the GetRange
// contract shared by every backend: off < 0 is a suffix read, n < 0
// means "to the end", and anything not fully inside the blob is
// ErrRange.
func resolveRange(off, n, size int64) (start, end int64, err error) {
	start = off
	if off < 0 {
		start = size + off
	}
	if start < 0 || start > size {
		return 0, 0, fmt.Errorf("%w: offset %d of %d bytes", ErrRange, off, size)
	}
	if n < 0 {
		return start, size, nil
	}
	end = start + n
	if end > size {
		return 0, 0, fmt.Errorf("%w: [%d, %d) of %d bytes", ErrRange, start, end, size)
	}
	return start, end, nil
}

// Memory is an in-memory Backend.
type Memory struct {
	mu   sync.RWMutex
	data map[string]map[string][]byte
}

var _ Backend = (*Memory)(nil)

// NewMemory returns an empty in-memory backend.
func NewMemory() *Memory {
	return &Memory{data: make(map[string]map[string][]byte)}
}

// Put implements Backend.
func (m *Memory) Put(ctx context.Context, ns, name string, data []byte) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	nsMap, ok := m.data[ns]
	if !ok {
		nsMap = make(map[string][]byte)
		m.data[ns] = nsMap
	}
	nsMap[name] = append([]byte(nil), data...)
	return nil
}

// Get implements Backend.
func (m *Memory) Get(ctx context.Context, ns, name string) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	blob, ok := m.data[ns][name]
	if !ok {
		return nil, fmt.Errorf("%w: %s/%s", ErrNotFound, ns, name)
	}
	return append([]byte(nil), blob...), nil
}

// GetRange implements Backend.
func (m *Memory) GetRange(ctx context.Context, ns, name string, off, n int64) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	blob, ok := m.data[ns][name]
	if !ok {
		return nil, fmt.Errorf("%w: %s/%s", ErrNotFound, ns, name)
	}
	start, end, err := resolveRange(off, n, int64(len(blob)))
	if err != nil {
		return nil, fmt.Errorf("%s/%s: %w", ns, name, err)
	}
	return append([]byte(nil), blob[start:end]...), nil
}

// Has implements Backend.
func (m *Memory) Has(ctx context.Context, ns, name string) (bool, error) {
	if err := ctx.Err(); err != nil {
		return false, err
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	_, ok := m.data[ns][name]
	return ok, nil
}

// Delete implements Backend.
func (m *Memory) Delete(ctx context.Context, ns, name string) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.data[ns], name)
	return nil
}

// List implements Backend.
func (m *Memory) List(ctx context.Context, ns string) ([]string, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	names := make([]string, 0, len(m.data[ns]))
	for name := range m.data[ns] {
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// Close implements Backend.
func (m *Memory) Close() error { return nil }

// TotalBytes returns the summed blob sizes (for storage accounting).
func (m *Memory) TotalBytes(ns string) int64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	var total int64
	for _, blob := range m.data[ns] {
		total += int64(len(blob))
	}
	return total
}
