// Package store provides the flat blob storage backends behind REED's
// data store and key store.
//
// The paper separates the storage backend into a data store (file
// recipes, trimmed packages in containers, stub files) and a key store
// (encrypted key states). Both are namespace/key → blob maps; this
// package supplies an in-memory backend for tests and benchmarks and a
// disk backend mirroring the prototype's local-disk deployment.
package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Well-known namespaces.
const (
	NSContainers = "containers"
	NSRecipes    = "recipes"
	NSStubs      = "stubs"
	NSKeyStates  = "keystates"
	NSMeta       = "meta"
)

// ErrNotFound is returned when a blob does not exist.
var ErrNotFound = errors.New("store: not found")

// Backend is a flat blob store keyed by (namespace, name).
// Implementations must be safe for concurrent use.
type Backend interface {
	// Put stores data under (ns, name), overwriting any existing blob.
	Put(ns, name string, data []byte) error
	// Get returns the blob at (ns, name) or ErrNotFound.
	Get(ns, name string) ([]byte, error)
	// Has reports whether (ns, name) exists.
	Has(ns, name string) (bool, error)
	// Delete removes (ns, name); deleting a missing blob is not an
	// error.
	Delete(ns, name string) error
	// List returns the names in ns, sorted.
	List(ns string) ([]string, error)
	// Close releases resources.
	Close() error
}

// Memory is an in-memory Backend.
type Memory struct {
	mu   sync.RWMutex
	data map[string]map[string][]byte
}

var _ Backend = (*Memory)(nil)

// NewMemory returns an empty in-memory backend.
func NewMemory() *Memory {
	return &Memory{data: make(map[string]map[string][]byte)}
}

// Put implements Backend.
func (m *Memory) Put(ns, name string, data []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	nsMap, ok := m.data[ns]
	if !ok {
		nsMap = make(map[string][]byte)
		m.data[ns] = nsMap
	}
	nsMap[name] = append([]byte(nil), data...)
	return nil
}

// Get implements Backend.
func (m *Memory) Get(ns, name string) ([]byte, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	blob, ok := m.data[ns][name]
	if !ok {
		return nil, fmt.Errorf("%w: %s/%s", ErrNotFound, ns, name)
	}
	return append([]byte(nil), blob...), nil
}

// Has implements Backend.
func (m *Memory) Has(ns, name string) (bool, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	_, ok := m.data[ns][name]
	return ok, nil
}

// Delete implements Backend.
func (m *Memory) Delete(ns, name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.data[ns], name)
	return nil
}

// List implements Backend.
func (m *Memory) List(ns string) ([]string, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	names := make([]string, 0, len(m.data[ns]))
	for name := range m.data[ns] {
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// Close implements Backend.
func (m *Memory) Close() error { return nil }

// TotalBytes returns the summed blob sizes (for storage accounting).
func (m *Memory) TotalBytes(ns string) int64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	var total int64
	for _, blob := range m.data[ns] {
		total += int64(len(blob))
	}
	return total
}

// diskStripes is the number of lock stripes in a Disk backend. Power
// of two so the stripe index is a mask.
const diskStripes = 64

// Disk is a Backend storing each blob as a file under root/ns/name.
// Names are percent-escaped to stay within a single directory level.
//
// Locking is striped per (namespace, name): operations on different
// blobs proceed in parallel (the server's concurrent handlers convoy
// otherwise), while operations on the same blob serialize through its
// stripe. List takes no lock at all — Put publishes blobs atomically
// via rename, so a directory scan never observes a torn blob, only a
// point-in-time name set, the same guarantee a global lock gave.
type Disk struct {
	root    string
	stripes [diskStripes]sync.RWMutex
}

var _ Backend = (*Disk)(nil)

// NewDisk returns a disk backend rooted at dir, creating it if needed.
func NewDisk(dir string) (*Disk, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: create root: %w", err)
	}
	return &Disk{root: dir}, nil
}

// stripe returns the lock guarding (ns, name), via FNV-1a over the
// joined key.
func (d *Disk) stripe(ns, name string) *sync.RWMutex {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(ns); i++ {
		h = (h ^ uint64(ns[i])) * prime64
	}
	h = (h ^ '/') * prime64
	for i := 0; i < len(name); i++ {
		h = (h ^ uint64(name[i])) * prime64
	}
	return &d.stripes[h&(diskStripes-1)]
}

// escape makes a blob name filesystem-safe.
func escape(name string) string {
	var sb strings.Builder
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '-', c == '_':
			sb.WriteByte(c)
		default:
			fmt.Fprintf(&sb, "%%%02X", c)
		}
	}
	return sb.String()
}

// unescape inverts escape.
func unescape(name string) (string, error) {
	var sb strings.Builder
	for i := 0; i < len(name); i++ {
		c := name[i]
		if c != '%' {
			sb.WriteByte(c)
			continue
		}
		if i+2 >= len(name) {
			return "", fmt.Errorf("store: bad escape in %q", name)
		}
		var v int
		if _, err := fmt.Sscanf(name[i+1:i+3], "%02X", &v); err != nil {
			return "", fmt.Errorf("store: bad escape in %q: %w", name, err)
		}
		sb.WriteByte(byte(v))
		i += 2
	}
	return sb.String(), nil
}

func (d *Disk) path(ns, name string) string {
	return filepath.Join(d.root, escape(ns), escape(name))
}

// Put implements Backend. Writes go through a temp file + rename so a
// crash never leaves a torn blob.
func (d *Disk) Put(ns, name string, data []byte) error {
	mu := d.stripe(ns, name)
	mu.Lock()
	defer mu.Unlock()
	dir := filepath.Join(d.root, escape(ns))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("store: mkdir: %w", err)
	}
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return fmt.Errorf("store: temp file: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("store: write: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("store: close: %w", err)
	}
	if err := os.Rename(tmpName, d.path(ns, name)); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("store: rename: %w", err)
	}
	return nil
}

// Get implements Backend.
func (d *Disk) Get(ns, name string) ([]byte, error) {
	mu := d.stripe(ns, name)
	mu.RLock()
	defer mu.RUnlock()
	data, err := os.ReadFile(d.path(ns, name))
	if errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("%w: %s/%s", ErrNotFound, ns, name)
	}
	if err != nil {
		return nil, fmt.Errorf("store: read: %w", err)
	}
	return data, nil
}

// Has implements Backend.
func (d *Disk) Has(ns, name string) (bool, error) {
	mu := d.stripe(ns, name)
	mu.RLock()
	defer mu.RUnlock()
	_, err := os.Stat(d.path(ns, name))
	if errors.Is(err, os.ErrNotExist) {
		return false, nil
	}
	if err != nil {
		return false, fmt.Errorf("store: stat: %w", err)
	}
	return true, nil
}

// Delete implements Backend.
func (d *Disk) Delete(ns, name string) error {
	mu := d.stripe(ns, name)
	mu.Lock()
	defer mu.Unlock()
	err := os.Remove(d.path(ns, name))
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("store: delete: %w", err)
	}
	return nil
}

// List implements Backend. Lock-free: rename-published blobs mean the
// scan sees a consistent name set without excluding writers.
func (d *Disk) List(ns string) ([]string, error) {
	entries, err := os.ReadDir(filepath.Join(d.root, escape(ns)))
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("store: list: %w", err)
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		// Escaped names never start with '.'; skip temp files and
		// other dotfiles.
		if strings.HasPrefix(e.Name(), ".") {
			continue
		}
		name, err := unescape(e.Name())
		if err != nil {
			return nil, err
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// Close implements Backend.
func (d *Disk) Close() error { return nil }
