package store

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// diskStripes is the number of lock stripes in a Disk backend. Power
// of two so the stripe index is a mask.
const diskStripes = 64

// Disk is a Backend storing each blob as a file under root/ns/name.
// Names are percent-escaped to stay within a single directory level.
//
// Durability: Put writes to a temp file, fsyncs it, renames it into
// place, and fsyncs the parent directory, so a published blob survives
// both process kill and power loss — the dedup WAL's crash-recovery
// guarantee rests on exactly this. WithNoSync trades the per-Put fsyncs
// for speed (benchmarks, throwaway runs); Close still flushes every
// directory so the name set, at least, is durable on a clean shutdown.
//
// Locking is striped per (namespace, name): operations on different
// blobs proceed in parallel (the server's concurrent handlers convoy
// otherwise), while operations on the same blob serialize through its
// stripe. List takes no lock at all — Put publishes blobs atomically
// via rename, so a directory scan never observes a torn blob, only a
// point-in-time name set, the same guarantee a global lock gave.
type Disk struct {
	root    string
	nosync  bool
	stripes [diskStripes]sync.RWMutex

	// dirMu guards dirs, the set of namespace directories already
	// created and made durable (root fsynced after mkdir), so steady-
	// state Puts skip the mkdir/fsync pair.
	dirMu sync.Mutex
	dirs  map[string]bool
}

var _ Backend = (*Disk)(nil)

// DiskOption configures a Disk backend.
type DiskOption func(*Disk)

// WithNoSync disables the fsync calls in Put. Blobs are still published
// atomically via rename, but survive only process crashes, not power
// loss. Intended for benchmarks and tests; durability-sensitive callers
// (the storage server's default path) must not use it.
func WithNoSync() DiskOption {
	return func(d *Disk) { d.nosync = true }
}

// NewDisk returns a disk backend rooted at dir, creating it if needed.
func NewDisk(dir string, opts ...DiskOption) (*Disk, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: create root: %w", err)
	}
	d := &Disk{root: dir, dirs: make(map[string]bool)}
	for _, o := range opts {
		o(d)
	}
	return d, nil
}

// stripe returns the lock guarding (ns, name), via FNV-1a over the
// joined key.
func (d *Disk) stripe(ns, name string) *sync.RWMutex {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(ns); i++ {
		h = (h ^ uint64(ns[i])) * prime64
	}
	h = (h ^ '/') * prime64
	for i := 0; i < len(name); i++ {
		h = (h ^ uint64(name[i])) * prime64
	}
	return &d.stripes[h&(diskStripes-1)]
}

// escape makes a blob name filesystem-safe.
func escape(name string) string {
	var sb strings.Builder
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '-', c == '_':
			sb.WriteByte(c)
		default:
			fmt.Fprintf(&sb, "%%%02X", c)
		}
	}
	return sb.String()
}

// unescape inverts escape.
func unescape(name string) (string, error) {
	var sb strings.Builder
	for i := 0; i < len(name); i++ {
		c := name[i]
		if c != '%' {
			sb.WriteByte(c)
			continue
		}
		if i+2 >= len(name) {
			return "", fmt.Errorf("store: bad escape in %q", name)
		}
		var v int
		if _, err := fmt.Sscanf(name[i+1:i+3], "%02X", &v); err != nil {
			return "", fmt.Errorf("store: bad escape in %q: %w", name, err)
		}
		sb.WriteByte(byte(v))
		i += 2
	}
	return sb.String(), nil
}

func (d *Disk) path(ns, name string) string {
	return filepath.Join(d.root, escape(ns), escape(name))
}

// syncDir fsyncs a directory so a rename (or mkdir) inside it is
// durable, not just ordered.
func syncDir(dir string) error {
	f, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("store: open dir: %w", err)
	}
	defer f.Close()
	if err := f.Sync(); err != nil {
		return fmt.Errorf("store: fsync dir: %w", err)
	}
	return nil
}

// ensureDir creates the namespace directory on first use and fsyncs the
// root so the new directory entry is durable before any blob lands in
// it.
func (d *Disk) ensureDir(ns string) (string, error) {
	dir := filepath.Join(d.root, escape(ns))
	d.dirMu.Lock()
	defer d.dirMu.Unlock()
	if d.dirs[ns] {
		return dir, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("store: mkdir: %w", err)
	}
	if !d.nosync {
		if err := syncDir(d.root); err != nil {
			return "", err
		}
	}
	d.dirs[ns] = true
	return dir, nil
}

// Put implements Backend. Writes go through temp file → fsync → rename
// → parent-directory fsync, so a published blob is atomic against
// readers and durable against power loss.
func (d *Disk) Put(ctx context.Context, ns, name string, data []byte) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	dir, err := d.ensureDir(ns)
	if err != nil {
		return err
	}
	mu := d.stripe(ns, name)
	mu.Lock()
	defer mu.Unlock()
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return fmt.Errorf("store: temp file: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("store: write: %w", err)
	}
	if !d.nosync {
		if err := tmp.Sync(); err != nil {
			tmp.Close()
			os.Remove(tmpName)
			return fmt.Errorf("store: fsync: %w", err)
		}
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("store: close: %w", err)
	}
	if err := os.Rename(tmpName, d.path(ns, name)); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("store: rename: %w", err)
	}
	if !d.nosync {
		if err := syncDir(dir); err != nil {
			return err
		}
	}
	return nil
}

// Get implements Backend.
func (d *Disk) Get(ctx context.Context, ns, name string) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	mu := d.stripe(ns, name)
	mu.RLock()
	defer mu.RUnlock()
	data, err := os.ReadFile(d.path(ns, name))
	if errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("%w: %s/%s", ErrNotFound, ns, name)
	}
	if err != nil {
		return nil, fmt.Errorf("store: read: %w", err)
	}
	return data, nil
}

// GetRange implements Backend via pread, so a 48-byte packfile footer
// read does not drag a 4 MB container through memory.
func (d *Disk) GetRange(ctx context.Context, ns, name string, off, n int64) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	mu := d.stripe(ns, name)
	mu.RLock()
	defer mu.RUnlock()
	f, err := os.Open(d.path(ns, name))
	if errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("%w: %s/%s", ErrNotFound, ns, name)
	}
	if err != nil {
		return nil, fmt.Errorf("store: open: %w", err)
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("store: stat: %w", err)
	}
	start, end, err := resolveRange(off, n, fi.Size())
	if err != nil {
		return nil, fmt.Errorf("%s/%s: %w", ns, name, err)
	}
	buf := make([]byte, end-start)
	if _, err := f.ReadAt(buf, start); err != nil {
		return nil, fmt.Errorf("store: read range: %w", err)
	}
	return buf, nil
}

// Has implements Backend.
func (d *Disk) Has(ctx context.Context, ns, name string) (bool, error) {
	if err := ctx.Err(); err != nil {
		return false, err
	}
	mu := d.stripe(ns, name)
	mu.RLock()
	defer mu.RUnlock()
	_, err := os.Stat(d.path(ns, name))
	if errors.Is(err, os.ErrNotExist) {
		return false, nil
	}
	if err != nil {
		return false, fmt.Errorf("store: stat: %w", err)
	}
	return true, nil
}

// Delete implements Backend.
func (d *Disk) Delete(ctx context.Context, ns, name string) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	mu := d.stripe(ns, name)
	mu.Lock()
	defer mu.Unlock()
	err := os.Remove(d.path(ns, name))
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("store: delete: %w", err)
	}
	return nil
}

// List implements Backend. Lock-free: rename-published blobs mean the
// scan sees a consistent name set without excluding writers.
func (d *Disk) List(ctx context.Context, ns string) ([]string, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	entries, err := os.ReadDir(filepath.Join(d.root, escape(ns)))
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("store: list: %w", err)
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		// Escaped names never start with '.'; skip temp files and
		// other dotfiles.
		if strings.HasPrefix(e.Name(), ".") {
			continue
		}
		name, err := unescape(e.Name())
		if err != nil {
			return nil, err
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// Close implements Backend: it fsyncs the root and every namespace
// directory so all rename-published blobs are durable, then forgets the
// directory cache. Under WithNoSync this is the only fsync the backend
// ever issues — a clean shutdown still lands the name set on disk.
func (d *Disk) Close() error {
	d.dirMu.Lock()
	defer d.dirMu.Unlock()
	var errs []error
	for ns := range d.dirs {
		if err := syncDir(filepath.Join(d.root, escape(ns))); err != nil {
			errs = append(errs, err)
		}
	}
	if err := syncDir(d.root); err != nil {
		errs = append(errs, err)
	}
	d.dirs = make(map[string]bool)
	return errors.Join(errs...)
}
