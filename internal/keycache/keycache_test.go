package keycache

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/fingerprint"
)

func fp(s string) fingerprint.Fingerprint { return fingerprint.New([]byte(s)) }

func TestPutGet(t *testing.T) {
	c, err := New(DefaultCapacity)
	if err != nil {
		t.Fatal(err)
	}
	key := []byte("0123456789abcdef0123456789abcdef")
	c.Put(fp("a"), key)
	got, ok := c.Get(fp("a"))
	if !ok || !bytes.Equal(got, key) {
		t.Fatalf("Get = %v, %v", got, ok)
	}
	if _, ok := c.Get(fp("missing")); ok {
		t.Fatal("Get on missing fingerprint returned ok")
	}
}

func TestNewInvalidCapacity(t *testing.T) {
	if _, err := New(0); err == nil {
		t.Fatal("New(0) expected error")
	}
	if _, err := New(-5); err == nil {
		t.Fatal("New(-5) expected error")
	}
}

func TestPutCopiesKey(t *testing.T) {
	c, _ := New(DefaultCapacity)
	key := []byte("mutable-key-bytes-mutable-key-by")
	c.Put(fp("a"), key)
	key[0] ^= 0xFF
	got, _ := c.Get(fp("a"))
	if got[0] == key[0] {
		t.Fatal("cache stored a reference to the caller's slice")
	}
}

func TestLRUEviction(t *testing.T) {
	// Each entry costs 32 (fp) + 32 (key) + 64 overhead = 128 bytes.
	c, _ := New(128 * 3)
	key := make([]byte, 32)
	c.Put(fp("1"), key)
	c.Put(fp("2"), key)
	c.Put(fp("3"), key)
	if c.Len() != 3 {
		t.Fatalf("Len = %d, want 3", c.Len())
	}
	// Touch 1 so 2 becomes LRU, then insert 4.
	c.Get(fp("1"))
	c.Put(fp("4"), key)
	if c.Len() != 3 {
		t.Fatalf("Len after eviction = %d, want 3", c.Len())
	}
	if _, ok := c.Get(fp("2")); ok {
		t.Fatal("expected LRU entry 2 to be evicted")
	}
	for _, s := range []string{"1", "3", "4"} {
		if _, ok := c.Get(fp(s)); !ok {
			t.Fatalf("entry %s unexpectedly evicted", s)
		}
	}
}

func TestPutRefreshExisting(t *testing.T) {
	c, _ := New(DefaultCapacity)
	c.Put(fp("a"), []byte("old-key-old-key-old-key-old-key-"))
	c.Put(fp("a"), []byte("new-key-new-key-new-key-new-key-"))
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
	got, _ := c.Get(fp("a"))
	if !bytes.Equal(got, []byte("new-key-new-key-new-key-new-key-")) {
		t.Fatal("refresh did not replace the key")
	}
}

func TestUsedAccounting(t *testing.T) {
	c, _ := New(DefaultCapacity)
	if c.Used() != 0 {
		t.Fatalf("initial Used = %d", c.Used())
	}
	c.Put(fp("a"), make([]byte, 32))
	want := int64(32 + 32 + 64)
	if c.Used() != want {
		t.Fatalf("Used = %d, want %d", c.Used(), want)
	}
	c.Clear()
	if c.Used() != 0 || c.Len() != 0 {
		t.Fatal("Clear did not reset the cache")
	}
}

func TestStats(t *testing.T) {
	c, _ := New(DefaultCapacity)
	c.Put(fp("a"), make([]byte, 32))
	c.Get(fp("a"))
	c.Get(fp("a"))
	c.Get(fp("b"))
	hits, misses := c.Stats()
	if hits != 2 || misses != 1 {
		t.Fatalf("Stats = %d hits, %d misses; want 2, 1", hits, misses)
	}
}

func TestOversizedEntryEvictsEverything(t *testing.T) {
	c, _ := New(100)
	c.Put(fp("big"), make([]byte, 200))
	// Entry cannot fit; the cache must not exceed capacity and must not
	// wedge.
	if c.Used() > 100 {
		t.Fatalf("Used = %d exceeds capacity", c.Used())
	}
	if c.Len() != 0 {
		t.Fatalf("oversized entry retained, Len = %d", c.Len())
	}
}

func TestConcurrentAccess(t *testing.T) {
	c, _ := New(1 << 20)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				id := fp(fmt.Sprintf("%d-%d", g, i%50))
				c.Put(id, make([]byte, 32))
				c.Get(id)
			}
		}(g)
	}
	wg.Wait()
	if c.Used() > 1<<20 {
		t.Fatalf("Used = %d exceeds capacity after concurrent load", c.Used())
	}
}

func BenchmarkGetHit(b *testing.B) {
	c, _ := New(DefaultCapacity)
	id := fp("hot")
	c.Put(id, make([]byte, 32))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := c.Get(id); !ok {
			b.Fatal("miss")
		}
	}
}

// TestRandomOpsNeverExceedCapacity drives the cache with random
// put/get/clear sequences and checks the byte bound and hit coherence
// after every operation.
func TestRandomOpsNeverExceedCapacity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		capacity := int64(256 + rng.Intn(4096))
		c, err := New(capacity)
		if err != nil {
			t.Fatal(err)
		}
		live := make(map[fingerprint.Fingerprint][]byte)
		for step := 0; step < 500; step++ {
			switch rng.Intn(10) {
			case 9:
				c.Clear()
				live = make(map[fingerprint.Fingerprint][]byte)
			default:
				id := fp(fmt.Sprintf("%d-%d", seed, rng.Intn(40)))
				key := make([]byte, 16+rng.Intn(48))
				rng.Read(key)
				c.Put(id, key)
				live[id] = append([]byte(nil), key...)
				if got, ok := c.Get(id); ok {
					if !bytes.Equal(got, live[id]) {
						t.Fatalf("seed %d step %d: stale value", seed, step)
					}
				}
			}
			if used := c.Used(); used > capacity {
				t.Fatalf("seed %d step %d: used %d exceeds capacity %d", seed, step, used, capacity)
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestZeroizeOnDrop pins the scrubbing behavior: keys leaving the cache
// (eviction or Clear) are zeroized in place, and Get hands out copies so
// scrubbing can never corrupt a key a caller is still using.
func TestZeroizeOnDrop(t *testing.T) {
	c, err := New(2 * (32 + 32 + entryOverhead))
	if err != nil {
		t.Fatal(err)
	}
	key := bytes.Repeat([]byte{0xAA}, 32)
	fp := fingerprint.New([]byte("a"))
	c.Put(fp, key)

	got, ok := c.Get(fp)
	if !ok {
		t.Fatal("key missing")
	}
	if &got[0] == &c.entries[fp].Value.(*entry).key[0] {
		t.Fatal("Get returned the interior buffer, not a copy")
	}

	internal := c.entries[fp].Value.(*entry).key
	c.Clear()
	if !bytes.Equal(internal, make([]byte, 32)) {
		t.Fatal("Clear did not zeroize the dropped key")
	}
	if !bytes.Equal(got, key) {
		t.Fatal("caller's copy was clobbered by Clear")
	}

	// Refill past capacity: the evicted LRU entry must be scrubbed too.
	c.Put(fp, key)
	evictee := c.entries[fp].Value.(*entry).key
	for i := 0; i < 2; i++ {
		c.Put(fingerprint.New([]byte{byte(i)}), key)
	}
	if _, ok := c.Get(fp); ok {
		t.Fatal("expected fp to be evicted")
	}
	if !bytes.Equal(evictee, make([]byte, 32)) {
		t.Fatal("eviction did not zeroize the dropped key")
	}
}
