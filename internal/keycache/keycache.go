// Package keycache provides the byte-bounded LRU cache of MLE keys the
// REED client keeps in memory (Section V-B, "Caching").
//
// MLE key generation is expensive: every key costs an RSA exponentiation
// at the key manager. Adjacent uploads (e.g. daily backups) share most of
// their chunks, so the client caches recently generated keys, keyed by
// chunk fingerprint, and only contacts the key manager for misses. The
// default capacity is 512 MB of accounted memory.
//
// The cache is safe for concurrent use.
package keycache

import (
	"container/list"
	"errors"
	"sync"

	"repro/internal/core"
	"repro/internal/fingerprint"
)

// DefaultCapacity is the paper's default cache size: 512 MB.
const DefaultCapacity = 512 << 20

// entryOverhead approximates the bookkeeping bytes per entry (map bucket
// share, list element, headers) on top of the fingerprint and key.
const entryOverhead = 64

// Cache is a byte-bounded LRU mapping chunk fingerprints to MLE keys.
type Cache struct {
	mu       sync.Mutex
	capacity int64
	used     int64
	order    *list.List // front = most recently used
	entries  map[fingerprint.Fingerprint]*list.Element

	hits   uint64
	misses uint64
}

type entry struct {
	fp  fingerprint.Fingerprint
	key []byte
}

// New returns a cache bounded to capacity bytes. Capacity must be
// positive.
func New(capacity int64) (*Cache, error) {
	if capacity <= 0 {
		return nil, errors.New("keycache: capacity must be positive")
	}
	return &Cache{
		capacity: capacity,
		order:    list.New(),
		entries:  make(map[fingerprint.Fingerprint]*list.Element),
	}, nil
}

// Get returns a copy of the cached key for fp, marking it most recently
// used. Returning a copy (rather than the interior slice) lets eviction
// zeroize cache buffers without yanking key material out from under a
// caller that is still encrypting with it.
func (c *Cache) Get(fp fingerprint.Fingerprint) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[fp]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.order.MoveToFront(el)
	e, _ := el.Value.(*entry)
	return append([]byte(nil), e.key...), true
}

// Put inserts or refreshes the key for fp, evicting least recently used
// entries as needed. The key is copied.
func (c *Cache) Put(fp fingerprint.Fingerprint, key []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[fp]; ok {
		e, _ := el.Value.(*entry)
		c.used += int64(len(key)) - int64(len(e.key))
		e.key = append(e.key[:0], key...)
		c.order.MoveToFront(el)
		c.evictLocked()
		return
	}
	e := &entry{fp: fp, key: append([]byte(nil), key...)}
	c.entries[fp] = c.order.PushFront(e)
	c.used += c.cost(e)
	c.evictLocked()
}

// cost returns the accounted size of an entry.
func (c *Cache) cost(e *entry) int64 {
	return int64(len(e.fp) + len(e.key) + entryOverhead)
}

// evictLocked drops LRU entries until the cache fits its capacity.
// Evicted keys are zeroized: the cache owns its buffers (Put copies),
// so a dropped MLE key must not linger in freed heap memory.
func (c *Cache) evictLocked() {
	for c.used > c.capacity {
		back := c.order.Back()
		if back == nil {
			return
		}
		e, _ := back.Value.(*entry)
		c.order.Remove(back)
		delete(c.entries, e.fp)
		c.used -= c.cost(e)
		core.Wipe(e.key) //reed:secret — evicted MLE key
	}
}

// Len returns the number of cached keys.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Used returns the accounted bytes in use.
func (c *Cache) Used() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.used
}

// Clear empties the cache, zeroizing every cached key. REED's trace
// experiments clear the cache between users so users do not share key
// locality.
func (c *Cache) Clear() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for el := c.order.Front(); el != nil; el = el.Next() {
		e, _ := el.Value.(*entry)
		core.Wipe(e.key) //reed:secret — dropped MLE key
	}
	c.order.Init()
	c.entries = make(map[fingerprint.Fingerprint]*list.Element)
	c.used = 0
}

// Stats reports cumulative hit/miss counts.
func (c *Cache) Stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}
