package baseline

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/fingerprint"
	"repro/internal/mle"
	"repro/internal/store"
)

var ctx = context.Background()

func newTestStore(t *testing.T) *Store {
	t.Helper()
	deriver, err := mle.NewSecretDeriver([]byte("baseline-test"))
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(ctx, store.NewMemory(), deriver)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Close(ctx) })
	return s
}

func testChunks(t *testing.T, n, size int, seed int64) [][]byte {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	out := make([][]byte, n)
	for i := range out {
		out[i] = make([]byte, size)
		rng.Read(out[i])
	}
	return out
}

func TestUploadDownloadRoundTrip(t *testing.T) {
	s := newTestStore(t)
	master, err := NewMasterKey()
	if err != nil {
		t.Fatal(err)
	}
	chunks := testChunks(t, 10, 4096, 1)
	if _, err := s.Upload(ctx, "/f", chunks, master); err != nil {
		t.Fatal(err)
	}
	got, err := s.Download(ctx, "/f", master)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, bytes.Join(chunks, nil)) {
		t.Fatal("round trip mismatch")
	}
}

func TestDeduplication(t *testing.T) {
	s := newTestStore(t)
	master, _ := NewMasterKey()
	chunks := testChunks(t, 10, 4096, 2)
	if _, err := s.Upload(ctx, "/a", chunks, master); err != nil {
		t.Fatal(err)
	}
	dups, err := s.Upload(ctx, "/b", chunks, master)
	if err != nil {
		t.Fatal(err)
	}
	if dups != len(chunks) {
		t.Fatalf("dups = %d, want %d", dups, len(chunks))
	}
}

func TestRekeyPreservesAccess(t *testing.T) {
	s := newTestStore(t)
	oldMaster, _ := NewMasterKey()
	newMaster, _ := NewMasterKey()
	chunks := testChunks(t, 5, 2048, 3)
	if _, err := s.Upload(ctx, "/r", chunks, oldMaster); err != nil {
		t.Fatal(err)
	}
	if err := s.Rekey(ctx, "/r", oldMaster, newMaster); err != nil {
		t.Fatal(err)
	}
	// New key works; old key does not.
	if got, err := s.Download(ctx, "/r", newMaster); err != nil || !bytes.Equal(got, bytes.Join(chunks, nil)) {
		t.Fatalf("download with new master: %v", err)
	}
	if _, err := s.Download(ctx, "/r", oldMaster); err == nil {
		t.Fatal("old master key still decrypts the key file")
	}
}

// TestLayeredLeakSurvivesRekey demonstrates the flaw that motivates REED
// (Section II-C): in layered encryption, a leaked MLE key decrypts its
// chunk from the stored ciphertext even after any number of rekeys. The
// matching REED-side test (internal/core) shows the same leak is useless
// against the enhanced scheme without the stub.
func TestLayeredLeakSurvivesRekey(t *testing.T) {
	deriver, err := mle.NewSecretDeriver([]byte("baseline-test-leak"))
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(ctx, store.NewMemory(), deriver)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close(ctx)

	master, _ := NewMasterKey()
	secret := bytes.Repeat([]byte("confidential genome record "), 100)
	if _, err := s.Upload(ctx, "/victim", [][]byte{secret}, master); err != nil {
		t.Fatal(err)
	}

	// The adversary monitored the client and learned this chunk's MLE
	// key (paper threat model, Section III-B).
	leakedKey, err := deriver.DeriveKey(fingerprint.New(secret))
	if err != nil {
		t.Fatal(err)
	}

	// The owner rekeys — twice, actively rotating master keys.
	m2, _ := NewMasterKey()
	m3, _ := NewMasterKey()
	if err := s.Rekey(ctx, "/victim", master, m2); err != nil {
		t.Fatal(err)
	}
	if err := s.Rekey(ctx, "/victim", m2, m3); err != nil {
		t.Fatal(err)
	}

	// The adversary reads the (deduplicated, unchanged) ciphertext from
	// the compromised store and decrypts it with the old MLE key.
	ct, err := s.Ciphertext(ctx, secret)
	if err != nil {
		t.Fatal(err)
	}
	pt, err := mle.Decrypt(leakedKey, ct)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pt, secret) {
		t.Fatal("expected the layered-encryption baseline to leak despite rekeying")
	}

	// Contrast: REED's enhanced scheme under the same leak. The
	// adversary holds the MLE key and the trimmed package, but not the
	// stub.
	codec, err := core.New(core.SchemeEnhanced)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := codec.Encrypt(secret, leakedKey)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := codec.Decrypt(core.Package{Trimmed: pkg.Trimmed, Stub: make([]byte, len(pkg.Stub))}); err == nil {
		t.Fatal("REED enhanced scheme decrypted without the stub")
	}
}

func TestDownloadMissing(t *testing.T) {
	s := newTestStore(t)
	master, _ := NewMasterKey()
	if _, err := s.Download(ctx, "/absent", master); !errors.Is(err, ErrNotFound) {
		t.Fatalf("error = %v, want ErrNotFound", err)
	}
	if err := s.Rekey(ctx, "/absent", master, master); !errors.Is(err, ErrNotFound) {
		t.Fatalf("error = %v, want ErrNotFound", err)
	}
}

func TestUploadEmptyChunkRejected(t *testing.T) {
	s := newTestStore(t)
	master, _ := NewMasterKey()
	if _, err := s.Upload(ctx, "/bad", [][]byte{{}}, master); err == nil {
		t.Fatal("empty chunk accepted")
	}
}

// TestNoStubStorageTax quantifies the trade-off: the baseline stores no
// stubs, so its physical data is smaller than REED's by roughly the stub
// share — that is the price REED pays for rekeyable security.
func TestNoStubStorageTax(t *testing.T) {
	s := newTestStore(t)
	master, _ := NewMasterKey()
	chunks := testChunks(t, 100, 8192, 4)
	if _, err := s.Upload(ctx, "/tax", chunks, master); err != nil {
		t.Fatal(err)
	}
	stats := s.Stats()
	logical := uint64(100 * 8192)
	if stats.PhysicalBytes != logical {
		t.Fatalf("baseline physical bytes = %d, want exactly logical %d", stats.PhysicalBytes, logical)
	}
}

func BenchmarkLayeredRekey(b *testing.B) {
	deriver, err := mle.NewSecretDeriver([]byte("baseline-bench"))
	if err != nil {
		b.Fatal(err)
	}
	s, err := New(ctx, store.NewMemory(), deriver)
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close(ctx)
	master, _ := NewMasterKey()
	chunks := make([][]byte, 1000)
	rng := rand.New(rand.NewSource(1))
	for i := range chunks {
		chunks[i] = make([]byte, 8192)
		rng.Read(chunks[i])
	}
	if _, err := s.Upload(ctx, "/bench", chunks, master); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	cur := master
	for i := 0; i < b.N; i++ {
		next, _ := NewMasterKey()
		if err := s.Rekey(ctx, "/bench", cur, next); err != nil {
			b.Fatal(err)
		}
		cur = next
	}
}
