// Package baseline implements the layered-encryption rekeying approach
// the paper contrasts REED against (Section II-C), as a comparator for
// benchmarks and security demonstrations.
//
// In layered encryption, each chunk is MLE-encrypted as usual and
// deduplicated on the ciphertext; the chunk's MLE key is then wrapped
// under a per-file master key and stored as file metadata. Rekeying
// replaces the master key and re-wraps the (small) key file — cheap,
// and deduplication is untouched.
//
// Its weakness, which motivates REED: every ciphertext remains encrypted
// under its original MLE key forever. An adversary who learns a chunk's
// MLE key (e.g. by monitoring a client, Section III-B) can decrypt that
// chunk from the stored ciphertext no matter how many rekeys happened
// since. REED's all-or-nothing split makes the same leak useless without
// the per-file stub. TestLayeredLeak* in this package and
// TestBasicSchemeLeaksUnderMLEKeyCompromise in internal/core demonstrate
// the two sides.
package baseline

import (
	"context"
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"errors"
	"fmt"
	"io"

	"repro/internal/binenc"
	"repro/internal/dedup"
	"repro/internal/fingerprint"
	"repro/internal/mle"
	"repro/internal/store"
)

// MasterKeySize is the per-file master key size.
const MasterKeySize = 32

// ErrNotFound is returned for unknown paths.
var ErrNotFound = errors.New("baseline: file not found")

// Store is a layered-encryption deduplicating store. It is a local
// library (no network): the comparison of interest is the rekeying
// model, not the transport.
type Store struct {
	chunks  *dedup.Store
	backend store.Backend
	deriver mle.KeyDeriver
}

// New builds a store over a backend, deriving MLE keys with deriver.
func New(ctx context.Context, backend store.Backend, deriver mle.KeyDeriver) (*Store, error) {
	chunks, err := dedup.Open(ctx, backend, dedup.DefaultContainerSize)
	if err != nil {
		return nil, err
	}
	return &Store{chunks: chunks, backend: backend, deriver: deriver}, nil
}

// NewMasterKey draws a fresh master key.
func NewMasterKey() ([]byte, error) {
	key := make([]byte, MasterKeySize)
	if _, err := io.ReadFull(rand.Reader, key); err != nil {
		return nil, fmt.Errorf("baseline: master key: %w", err)
	}
	return key, nil
}

// fileMeta is the per-file metadata: ciphertext fingerprints plus the
// wrapped MLE keys.
type fileMeta struct {
	fps   []fingerprint.Fingerprint
	sizes []uint32
}

// Upload stores chunks, deduplicating ciphertexts, and wraps the MLE
// keys under masterKey. Returns the number of deduplicated chunks.
func (s *Store) Upload(ctx context.Context, path string, chunks [][]byte, masterKey []byte) (int, error) {
	var (
		meta fileMeta
		keys [][]byte
		dups int
	)
	for i, chunk := range chunks {
		if len(chunk) == 0 {
			return 0, fmt.Errorf("baseline: empty chunk %d", i)
		}
		key, err := s.deriver.DeriveKey(fingerprint.New(chunk))
		if err != nil {
			return 0, err
		}
		ct, err := mle.Encrypt(key, chunk)
		if err != nil {
			return 0, err
		}
		fp := fingerprint.New(ct)
		dup, err := s.chunks.Put(ctx, fp, ct)
		if err != nil {
			return 0, err
		}
		if dup {
			dups++
		}
		meta.fps = append(meta.fps, fp)
		meta.sizes = append(meta.sizes, uint32(len(chunk)))
		keys = append(keys, key)
	}

	blob, err := sealKeyFile(meta, keys, masterKey, path)
	if err != nil {
		return 0, err
	}
	if err := s.backend.Put(ctx, store.NSRecipes, path, blob); err != nil {
		return 0, err
	}
	return dups, nil
}

// Download reassembles a file using masterKey to unwrap its MLE keys.
func (s *Store) Download(ctx context.Context, path string, masterKey []byte) ([]byte, error) {
	blob, err := s.backend.Get(ctx, store.NSRecipes, path)
	if errors.Is(err, store.ErrNotFound) {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, path)
	}
	if err != nil {
		return nil, err
	}
	meta, keys, err := openKeyFile(blob, masterKey, path)
	if err != nil {
		return nil, err
	}
	var out []byte
	for i, fp := range meta.fps {
		ct, err := s.chunks.Get(ctx, fp)
		if err != nil {
			return nil, err
		}
		pt, err := mle.Decrypt(keys[i], ct)
		if err != nil {
			return nil, err
		}
		if uint32(len(pt)) != meta.sizes[i] {
			return nil, fmt.Errorf("baseline: chunk %d size mismatch", i)
		}
		out = append(out, pt...)
	}
	return out, nil
}

// Rekey re-wraps the file's MLE keys under a new master key. This is
// the operation layered encryption makes cheap — but note what it does
// NOT do: the stored ciphertexts and their MLE keys are unchanged.
func (s *Store) Rekey(ctx context.Context, path string, oldMaster, newMaster []byte) error {
	blob, err := s.backend.Get(ctx, store.NSRecipes, path)
	if errors.Is(err, store.ErrNotFound) {
		return fmt.Errorf("%w: %s", ErrNotFound, path)
	}
	if err != nil {
		return err
	}
	meta, keys, err := openKeyFile(blob, oldMaster, path)
	if err != nil {
		return err
	}
	reblob, err := sealKeyFile(meta, keys, newMaster, path)
	if err != nil {
		return err
	}
	return s.backend.Put(ctx, store.NSRecipes, path, reblob)
}

// Ciphertext returns the stored ciphertext of the chunk with the given
// plaintext, if present — the adversary's view used by the leak
// demonstration tests.
func (s *Store) Ciphertext(ctx context.Context, chunk []byte) ([]byte, error) {
	key, err := s.deriver.DeriveKey(fingerprint.New(chunk))
	if err != nil {
		return nil, err
	}
	ct, err := mle.Encrypt(key, chunk)
	if err != nil {
		return nil, err
	}
	return s.chunks.Get(ctx, fingerprint.New(ct))
}

// Stats exposes dedup statistics.
func (s *Store) Stats() dedup.Stats { return s.chunks.Stats() }

// Close flushes the store.
func (s *Store) Close(ctx context.Context) error { return s.chunks.Close(ctx) }

// sealKeyFile encodes the metadata and wraps it with AES-256-GCM under
// the master key.
func sealKeyFile(meta fileMeta, keys [][]byte, masterKey []byte, path string) ([]byte, error) {
	w := binenc.NewWriter(64 * len(keys))
	w.Uvarint(uint64(len(keys)))
	for i := range keys {
		w.Raw(meta.fps[i][:])
		w.Uint32(meta.sizes[i])
		w.WriteBytes(keys[i])
	}

	aead, err := masterAEAD(masterKey)
	if err != nil {
		return nil, err
	}
	nonce := make([]byte, aead.NonceSize())
	if _, err := io.ReadFull(rand.Reader, nonce); err != nil {
		return nil, err
	}
	return append(nonce, aead.Seal(nil, nonce, w.Bytes(), []byte(path))...), nil
}

// openKeyFile inverts sealKeyFile.
func openKeyFile(blob, masterKey []byte, path string) (fileMeta, [][]byte, error) {
	var meta fileMeta
	aead, err := masterAEAD(masterKey)
	if err != nil {
		return meta, nil, err
	}
	if len(blob) < aead.NonceSize() {
		return meta, nil, errors.New("baseline: key file too short")
	}
	plain, err := aead.Open(nil, blob[:aead.NonceSize()], blob[aead.NonceSize():], []byte(path))
	if err != nil {
		return meta, nil, fmt.Errorf("baseline: key file authentication: %w", err)
	}

	r := binenc.NewReader(plain)
	count, err := r.Uvarint()
	if err != nil {
		return meta, nil, err
	}
	if count > 1<<28 {
		return meta, nil, errors.New("baseline: key file too large")
	}
	keys := make([][]byte, 0, count)
	for i := uint64(0); i < count; i++ {
		raw, err := r.ReadRaw(fingerprint.Size)
		if err != nil {
			return meta, nil, err
		}
		fp, err := fingerprint.FromSlice(raw)
		if err != nil {
			return meta, nil, err
		}
		size, err := r.Uint32()
		if err != nil {
			return meta, nil, err
		}
		key, err := r.ReadBytesCopy()
		if err != nil {
			return meta, nil, err
		}
		meta.fps = append(meta.fps, fp)
		meta.sizes = append(meta.sizes, size)
		keys = append(keys, key)
	}
	if !r.Done() {
		return meta, nil, errors.New("baseline: trailing bytes in key file")
	}
	return meta, keys, nil
}

func masterAEAD(masterKey []byte) (cipher.AEAD, error) {
	block, err := aes.NewCipher(masterKey)
	if err != nil {
		return nil, fmt.Errorf("baseline: master cipher: %w", err)
	}
	return cipher.NewGCM(block)
}
