package experiments

import (
	"bytes"
	"context"
	"fmt"
	"time"

	"repro/internal/chunker"
	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/fingerprint"
	"repro/internal/keymanager"
	"repro/internal/mle"
	"repro/internal/policy"
	"repro/internal/testenv"
)

// --- Experiment A.1: MLE key generation performance (Figure 5) ---

// KeyGenPoint is one point of Figure 5.
type KeyGenPoint struct {
	// ChunkKB is the average chunk size (Figure 5a) and BatchSize the
	// request batch (Figure 5b); the swept variable depends on the
	// figure.
	ChunkKB   int
	BatchSize int
	// MBps is the key generation speed: file bytes divided by the time
	// from sending the first blinded fingerprint to holding all keys.
	MBps float64
	// Chunks is how many chunks (and hence OPRF evaluations) were
	// needed.
	Chunks int
}

// Fig5aKeyGenVsChunkSize reproduces Figure 5(a): key generation speed
// versus average chunk size with the batch fixed at 256.
func Fig5aKeyGenVsChunkSize(o Options) ([]KeyGenPoint, error) {
	o, err := o.WithDefaults()
	if err != nil {
		return nil, err
	}
	cluster, err := startCluster(o)
	if err != nil {
		return nil, err
	}
	defer cluster.Close()

	var out []KeyGenPoint
	for _, kb := range PaperChunkSizesKB {
		point, err := keyGenRun(cluster, o, kb, keymanager.DefaultBatchSize, o.FileBytes)
		if err != nil {
			return nil, fmt.Errorf("chunk size %dKB: %w", kb, err)
		}
		out = append(out, point)
	}
	return out, nil
}

// Fig5bKeyGenVsBatchSize reproduces Figure 5(b): key generation speed
// versus batch size with the average chunk size fixed at 8 KB.
func Fig5bKeyGenVsBatchSize(o Options) ([]KeyGenPoint, error) {
	o, err := o.WithDefaults()
	if err != nil {
		return nil, err
	}
	cluster, err := startCluster(o)
	if err != nil {
		return nil, err
	}
	defer cluster.Close()

	var out []KeyGenPoint
	for _, batch := range PaperBatchSizes {
		// Small batches pay a round trip per few chunks; bound their
		// runtime by shrinking the file (speed normalizes by size).
		size := o.FileBytes
		if batch < 64 {
			size = o.FileBytes / 4
		}
		point, err := keyGenRun(cluster, o, 8, batch, size)
		if err != nil {
			return nil, fmt.Errorf("batch %d: %w", batch, err)
		}
		out = append(out, point)
	}
	return out, nil
}

// keyGenRun chunks a synthetic file and measures pure key generation.
func keyGenRun(cluster *testenv.Cluster, o Options, avgKB, batch, fileBytes int) (KeyGenPoint, error) {
	data := uniqueData(fileBytes, o.Seed+int64(avgKB)*1000+int64(batch))
	chunks, err := chunker.Split(data, chunkOpts(avgKB))
	if err != nil {
		return KeyGenPoint{}, err
	}
	fps := make([]fingerprint.Fingerprint, len(chunks))
	for i, c := range chunks {
		fps[i] = fingerprint.New(c)
	}

	kmOpts := []keymanager.ClientOption{keymanager.WithBatchSize(batch)}
	if dialer := cluster.Dialer(); dialer != nil {
		kmOpts = append(kmOpts, keymanager.WithDialer(dialer))
	}
	km, err := keymanager.Dial(context.Background(), cluster.KMAddr, kmOpts...)
	if err != nil {
		return KeyGenPoint{}, err
	}
	defer km.Close()

	start := time.Now()
	if _, err := km.GenerateKeys(context.Background(), fps); err != nil {
		return KeyGenPoint{}, err
	}
	return KeyGenPoint{
		ChunkKB:   avgKB,
		BatchSize: batch,
		MBps:      mbps(fileBytes, time.Since(start)),
		Chunks:    len(chunks),
	}, nil
}

// --- Experiment A.2: encryption performance (Figure 6) ---

// EncryptionPoint is one point of Figure 6.
type EncryptionPoint struct {
	ChunkKB int
	Scheme  string
	MBps    float64
}

// Fig6EncryptionSpeed reproduces Figure 6: chunk encryption speed for
// the basic and enhanced schemes versus average chunk size, with the
// paper's two worker threads. Keys are derived locally so the
// measurement isolates encryption, as in the paper (keys are assumed
// already fetched).
func Fig6EncryptionSpeed(o Options) ([]EncryptionPoint, error) {
	return encryptionSpeed(o, 2, PaperChunkSizesKB)
}

// encryptionSpeed measures both schemes at each chunk size with the
// given worker count.
func encryptionSpeed(o Options, workers int, chunkSizesKB []int) ([]EncryptionPoint, error) {
	o, err := o.WithDefaults()
	if err != nil {
		return nil, err
	}
	deriver, err := mle.NewSecretDeriver([]byte("experiments-fig6"))
	if err != nil {
		return nil, err
	}

	var out []EncryptionPoint
	for _, kb := range chunkSizesKB {
		data := uniqueData(o.FileBytes, o.Seed+int64(kb))
		chunks, err := chunker.Split(data, chunkOpts(kb))
		if err != nil {
			return nil, err
		}
		keys := make([][]byte, len(chunks))
		for i, c := range chunks {
			keys[i], err = deriver.DeriveKey(fingerprint.New(c))
			if err != nil {
				return nil, err
			}
		}

		for _, scheme := range []core.Scheme{core.SchemeBasic, core.SchemeEnhanced} {
			codec, err := core.New(scheme)
			if err != nil {
				return nil, err
			}
			start := time.Now()
			if err := encryptPool(codec, chunks, keys, workers); err != nil {
				return nil, err
			}
			out = append(out, EncryptionPoint{
				ChunkKB: kb,
				Scheme:  scheme.String(),
				MBps:    mbps(o.FileBytes, time.Since(start)),
			})
		}
	}
	return out, nil
}

// encryptPool encrypts all chunks across the given worker count.
func encryptPool(codec *core.Codec, chunks [][]byte, keys [][]byte, workers int) error {
	if workers < 1 {
		workers = 1
	}
	return parallel(workers, func(w int) error {
		for i := w; i < len(chunks); i += workers {
			if _, err := codec.Encrypt(chunks[i], keys[i]); err != nil {
				return err
			}
		}
		return nil
	})
}

// --- Experiment A.3: upload and download performance (Figure 7) ---

// TransferPoint is one point of Figures 7(a) and 7(b).
type TransferPoint struct {
	ChunkKB        int
	Scheme         string
	FirstUpMBps    float64 // first upload (unique data)
	SecondUpMBps   float64 // second upload (identical data, keys cached)
	DownloadMBps   float64
	UploadedChunks int
}

// Fig7UploadDownload reproduces Figures 7(a) and 7(b): single-client
// upload speed (first and second upload of the same 2 GB-equivalent
// file) and download speed, for both schemes across chunk sizes, with
// all optimizations enabled (batch 256, 512 MB key cache, two worker
// threads).
func Fig7UploadDownload(o Options) ([]TransferPoint, error) {
	o, err := o.WithDefaults()
	if err != nil {
		return nil, err
	}
	cluster, err := startCluster(o)
	if err != nil {
		return nil, err
	}
	defer cluster.Close()

	var out []TransferPoint
	for _, kb := range PaperChunkSizesKB {
		for _, scheme := range []core.Scheme{core.SchemeBasic, core.SchemeEnhanced} {
			user := fmt.Sprintf("u-%d-%s", kb, scheme)
			c, err := newClient(cluster, o, clientParams{
				user: user, scheme: scheme, avgKB: kb,
				batch: keymanager.DefaultBatchSize, cache: true, workers: 2,
			})
			if err != nil {
				return nil, err
			}
			// Unique content per combination so each first upload is
			// cold.
			data := uniqueData(o.FileBytes, o.Seed+int64(kb)*10+int64(scheme))
			pol := policy.OrOfUsers([]string{user})

			p := TransferPoint{ChunkKB: kb, Scheme: scheme.String()}
			path1 := fmt.Sprintf("/fig7/%d/%s/1", kb, scheme)
			path2 := fmt.Sprintf("/fig7/%d/%s/2", kb, scheme)
			if p.FirstUpMBps, err = timeUpload(c, path1, data, pol); err != nil {
				c.Close()
				return nil, err
			}
			if p.SecondUpMBps, err = timeUpload(c, path2, data, pol); err != nil {
				c.Close()
				return nil, err
			}
			if p.DownloadMBps, err = timeDownload(c, path1, len(data)); err != nil {
				c.Close()
				return nil, err
			}
			c.Close()
			out = append(out, p)
		}
	}
	return out, nil
}

// MultiClientPoint is one point of Figure 7(c).
type MultiClientPoint struct {
	Clients      int
	FirstUpMBps  float64 // aggregate, unique data
	SecondUpMBps float64 // aggregate, identical re-upload
}

// Fig7cMultiClient reproduces Figure 7(c): aggregate upload speed versus
// the number of concurrent clients (enhanced scheme, 8 KB chunks). Each
// client gets its own emulated NIC, as each testbed machine has its own
// 1 Gb/s port.
func Fig7cMultiClient(o Options, clientCounts []int) ([]MultiClientPoint, error) {
	o, err := o.WithDefaults()
	if err != nil {
		return nil, err
	}
	if len(clientCounts) == 0 {
		clientCounts = []int{1, 2, 4, 8}
	}
	cluster, err := startCluster(o)
	if err != nil {
		return nil, err
	}
	defer cluster.Close()

	var out []MultiClientPoint
	for _, n := range clientCounts {
		clients := make([]*testClient, n)
		for i := 0; i < n; i++ {
			user := fmt.Sprintf("mc-%d-%d", n, i)
			c, err := newClient(cluster, o, clientParams{
				user: user, scheme: core.SchemeEnhanced, avgKB: 8,
				batch: keymanager.DefaultBatchSize, cache: true, workers: 2,
				ownLink: true,
			})
			if err != nil {
				return nil, err
			}
			clients[i] = &testClient{
				c:    c,
				data: uniqueData(o.FileBytes, o.Seed+int64(n)*100+int64(i)),
				pol:  policy.OrOfUsers([]string{user}),
			}
		}

		point := MultiClientPoint{Clients: n}
		for round := 0; round < 2; round++ {
			start := time.Now()
			err := parallel(n, func(i int) error {
				path := fmt.Sprintf("/fig7c/%d/%d/%d", n, i, round)
				_, err := timeUpload(clients[i].c, path, clients[i].data, clients[i].pol)
				return err
			})
			if err != nil {
				return nil, err
			}
			aggregate := mbps(o.FileBytes*n, time.Since(start))
			if round == 0 {
				point.FirstUpMBps = aggregate
			} else {
				point.SecondUpMBps = aggregate
			}
		}
		for _, tc := range clients {
			tc.c.Close()
		}
		out = append(out, point)
	}
	return out, nil
}

type testClient struct {
	c    *client.Client
	data []byte
	pol  *policy.Node
}

// --- Experiment A.4: rekeying performance (Figure 8) ---

// RekeyPoint is one point of Figure 8.
type RekeyPoint struct {
	// X is the swept variable: total users (8a), revocation percent
	// (8b), or file megabytes (8c).
	X int
	// LazySec and ActiveSec are the end-to-end rekeying delays.
	LazySec   float64
	ActiveSec float64
}

// Fig8aRekeyVsUsers reproduces Figure 8(a): rekeying delay versus the
// total number of authorized users, at a fixed 20% revocation ratio and
// fixed file size.
func Fig8aRekeyVsUsers(o Options, userCounts []int) ([]RekeyPoint, error) {
	o, err := o.WithDefaults()
	if err != nil {
		return nil, err
	}
	if len(userCounts) == 0 {
		userCounts = []int{100, 200, 300, 400, 500}
	}
	cluster, err := startCluster(o)
	if err != nil {
		return nil, err
	}
	defer cluster.Close()

	var out []RekeyPoint
	for _, users := range userCounts {
		point, err := rekeyRun(cluster, o, users, 20, o.FileBytes)
		if err != nil {
			return nil, fmt.Errorf("users=%d: %w", users, err)
		}
		point.X = users
		out = append(out, point)
	}
	return out, nil
}

// Fig8bRekeyVsRatio reproduces Figure 8(b): rekeying delay versus the
// revocation ratio with `users` total users (0 selects the paper's 500).
func Fig8bRekeyVsRatio(o Options, users int, ratios []int) ([]RekeyPoint, error) {
	o, err := o.WithDefaults()
	if err != nil {
		return nil, err
	}
	if users <= 0 {
		users = 500
	}
	if len(ratios) == 0 {
		ratios = []int{5, 10, 20, 30, 40, 50}
	}
	cluster, err := startCluster(o)
	if err != nil {
		return nil, err
	}
	defer cluster.Close()

	var out []RekeyPoint
	for _, ratio := range ratios {
		point, err := rekeyRun(cluster, o, users, ratio, o.FileBytes)
		if err != nil {
			return nil, fmt.Errorf("ratio=%d%%: %w", ratio, err)
		}
		point.X = ratio
		out = append(out, point)
	}
	return out, nil
}

// Fig8cRekeyVsFileSize reproduces Figure 8(c): rekeying delay versus
// the rekeyed file's size (the paper sweeps 1–8 GB; sizes here are
// multiples of Options.FileBytes standing in for that range), with
// `users` total users (0 selects the paper's 500) and a 20% revocation
// ratio.
func Fig8cRekeyVsFileSize(o Options, users int, multipliers []int) ([]RekeyPoint, error) {
	o, err := o.WithDefaults()
	if err != nil {
		return nil, err
	}
	if users <= 0 {
		users = 500
	}
	if len(multipliers) == 0 {
		multipliers = []int{1, 2, 4, 8}
	}
	cluster, err := startCluster(o)
	if err != nil {
		return nil, err
	}
	defer cluster.Close()

	var out []RekeyPoint
	for _, m := range multipliers {
		size := o.FileBytes / 2 * m
		point, err := rekeyRun(cluster, o, users, 20, size)
		if err != nil {
			return nil, fmt.Errorf("size=%dMB: %w", size>>20, err)
		}
		point.X = size >> 20
		out = append(out, point)
	}
	return out, nil
}

// rekeyRun uploads a file under a policy of `users` identities, then
// measures lazy and active rekeying to a policy with `ratio` percent of
// the users revoked.
func rekeyRun(cluster *testenv.Cluster, o Options, users, ratio, fileBytes int) (RekeyPoint, error) {
	names := userNames(users, "r")
	owner := names[0]

	c, err := newClient(cluster, o, clientParams{
		user: owner, scheme: core.SchemeEnhanced, avgKB: 8,
		batch: 256, cache: true, workers: 2,
	})
	if err != nil {
		return RekeyPoint{}, err
	}
	defer c.Close()

	data := uniqueData(fileBytes, o.Seed+int64(users)*7+int64(ratio)*13+int64(fileBytes))
	path := fmt.Sprintf("/fig8/%d/%d/%d", users, ratio, fileBytes)
	oldPol := policy.OrOfUsers(names)
	if _, err := c.Upload(context.Background(), path, bytes.NewReader(data), oldPol); err != nil {
		return RekeyPoint{}, err
	}

	// The new policy keeps (100-ratio)% of the users (the owner always
	// stays).
	keep := users - users*ratio/100
	if keep < 1 {
		keep = 1
	}
	newPol := policy.OrOfUsers(names[:keep])

	// Warm up code paths once, then average a few timed runs; rekeying
	// is idempotent in structure (each run winds the chain one step).
	if _, err := c.Rekey(context.Background(), path, newPol, false); err != nil {
		return RekeyPoint{}, fmt.Errorf("warmup rekey: %w", err)
	}
	const reps = 3
	var point RekeyPoint
	for r := 0; r < reps; r++ {
		start := time.Now()
		if _, err := c.Rekey(context.Background(), path, newPol, false); err != nil {
			return RekeyPoint{}, fmt.Errorf("lazy rekey: %w", err)
		}
		point.LazySec += time.Since(start).Seconds() / reps

		start = time.Now()
		if _, err := c.Rekey(context.Background(), path, newPol, true); err != nil {
			return RekeyPoint{}, fmt.Errorf("active rekey: %w", err)
		}
		point.ActiveSec += time.Since(start).Seconds() / reps
	}
	return point, nil
}
