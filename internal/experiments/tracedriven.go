package experiments

import (
	"context"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/dedup"
	"repro/internal/fingerprint"
	"repro/internal/keymanager"
	"repro/internal/mle"
	"repro/internal/policy"
	"repro/internal/store"
	"repro/internal/trace"
)

// TraceOptions scales the trace-driven experiments (Section VI-B). The
// paper's FSL dataset has 9 users and 147 daily snapshots totalling
// 56.2 TB; defaults here keep runtimes in seconds.
type TraceOptions struct {
	Users           int
	Days            int
	BytesPerUserDay uint64
	Seed            int64
}

// WithDefaults fills unset fields.
func (t TraceOptions) WithDefaults() TraceOptions {
	if t.Users <= 0 {
		t.Users = 9
	}
	if t.Days <= 0 {
		t.Days = 30
	}
	if t.BytesPerUserDay == 0 {
		t.BytesPerUserDay = 4 << 20
	}
	if t.Seed == 0 {
		t.Seed = 1
	}
	return t
}

func (t TraceOptions) traceConfig() trace.Config {
	cfg := trace.DefaultConfig()
	cfg.Users = t.Users
	cfg.Days = t.Days
	cfg.BytesPerUserDay = t.BytesPerUserDay
	cfg.Seed = t.Seed
	return cfg
}

// --- Experiment B.1: storage overhead (Figure 9) ---

// StorageDay is one day of Figure 9: cumulative sizes in bytes.
type StorageDay struct {
	Day           int
	LogicalBytes  uint64 // pre-dedup data (Figure 9a, upper curve)
	PhysicalBytes uint64 // unique trimmed packages (Figure 9b)
	StubBytes     uint64 // encrypted stubs, never deduplicated (Figure 9b)
}

// Saving returns the storage saving 1 - (physical+stub)/logical, the
// paper's headline 98.6% metric.
func (d StorageDay) Saving() float64 {
	if d.LogicalBytes == 0 {
		return 0
	}
	return 1 - float64(d.PhysicalBytes+d.StubBytes)/float64(d.LogicalBytes)
}

// Fig9StorageOverhead reproduces Figure 9: cumulative logical versus
// stored (physical + stub) data over daily backups of all users. Every
// chunk is materialized and transformed with the enhanced scheme, and
// trimmed packages are deduplicated through the real dedup store; stubs
// are accounted per chunk since stub files never deduplicate.
func Fig9StorageOverhead(o Options, to TraceOptions) ([]StorageDay, error) {
	o, err := o.WithDefaults()
	if err != nil {
		return nil, err
	}
	to = to.WithDefaults()

	gen, err := trace.NewGenerator(to.traceConfig())
	if err != nil {
		return nil, err
	}
	codec, err := core.New(core.SchemeEnhanced)
	if err != nil {
		return nil, err
	}
	deriver, err := mle.NewSecretDeriver([]byte("experiments-fig9"))
	if err != nil {
		return nil, err
	}
	ctx := context.Background() // offline experiment, no caller to inherit from
	chunkStore, err := dedup.Open(ctx, store.NewMemory(), dedup.DefaultContainerSize)
	if err != nil {
		return nil, err
	}

	var (
		out       []StorageDay
		stubBytes uint64
	)
	for day := 0; day < to.Days; day++ {
		snaps, err := gen.Day(day)
		if err != nil {
			return nil, err
		}
		for _, snap := range snaps {
			for _, ch := range snap.Chunks {
				data := trace.Materialize(ch)
				key, err := deriver.DeriveKey(ch.FP)
				if err != nil {
					return nil, err
				}
				pkg, err := codec.Encrypt(data, key)
				if err != nil {
					return nil, err
				}
				if _, err := chunkStore.Put(ctx, fingerprint.New(pkg.Trimmed), pkg.Trimmed); err != nil {
					return nil, err
				}
				stubBytes += uint64(len(pkg.Stub))
			}
		}
		stats := chunkStore.Stats()
		out = append(out, StorageDay{
			Day:           day + 1,
			LogicalBytes:  stats.LogicalBytes,
			PhysicalBytes: stats.PhysicalBytes,
			StubBytes:     stubBytes,
		})
	}
	return out, nil
}

// --- Experiment B.2: trace-driven upload/download performance
// (Figure 10) ---

// TraceDay is one day of Figure 10.
type TraceDay struct {
	Day          int
	UploadMBps   float64
	DownloadMBps float64
	LogicalBytes uint64

	uploadSecs   float64
	downloadSecs float64
}

// Fig10TraceDriven reproduces Figure 10: a single client uploads every
// user's daily backups in user order (clearing the key cache between
// users so users do not share key locality), then downloads them; both
// speeds are reported per day. Chunking time is excluded by
// construction: the trace supplies chunks directly, as in the paper.
func Fig10TraceDriven(o Options, to TraceOptions) ([]TraceDay, error) {
	o, err := o.WithDefaults()
	if err != nil {
		return nil, err
	}
	to = to.WithDefaults()
	if to.Days > 7 {
		to.Days = 7 // the paper replays one week (March 19–25, 2013)
	}

	cluster, err := startCluster(o)
	if err != nil {
		return nil, err
	}
	defer cluster.Close()

	c, err := newClient(cluster, o, clientParams{
		user: "trace", scheme: core.SchemeEnhanced, avgKB: 8,
		batch: keymanager.DefaultBatchSize, cache: true, workers: 2,
	})
	if err != nil {
		return nil, err
	}
	defer c.Close()
	pol := policy.OrOfUsers([]string{"trace"})

	gen, err := trace.NewGenerator(to.traceConfig())
	if err != nil {
		return nil, err
	}

	// The paper uploads user-by-user, day-by-day within each user;
	// generating all days up front preserves that order.
	days := make([][]trace.Snapshot, to.Days)
	for d := 0; d < to.Days; d++ {
		if days[d], err = gen.Day(d); err != nil {
			return nil, err
		}
	}

	out := make([]TraceDay, to.Days)
	for d := range out {
		out[d].Day = d + 1
	}

	// Upload pass. The trace supplies chunk boundaries, so the client's
	// pre-chunked path is used (no chunking time, as in the paper).
	// Key caches are per-user: clear between users.
	for u := 0; u < to.Users; u++ {
		c.ClearKeyCache()
		for d := 0; d < to.Days; d++ {
			snap := days[d][u]
			chunks := make([][]byte, len(snap.Chunks))
			for i, ch := range snap.Chunks {
				chunks[i] = trace.Materialize(ch)
			}
			out[d].LogicalBytes += snap.LogicalBytes()
			start := time.Now()
			if _, err := c.UploadPrechunked(context.Background(), tracePath(snap), chunks, pol); err != nil {
				return nil, fmt.Errorf("upload %s day %d: %w", snap.User, d, err)
			}
			out[d].uploadSecs += time.Since(start).Seconds()
		}
	}
	// Download pass.
	for u := 0; u < to.Users; u++ {
		for d := 0; d < to.Days; d++ {
			snap := days[d][u]
			start := time.Now()
			got, err := c.Download(context.Background(), tracePath(snap))
			if err != nil {
				return nil, fmt.Errorf("download %s day %d: %w", snap.User, d, err)
			}
			if uint64(len(got)) != snap.LogicalBytes() {
				return nil, fmt.Errorf("download %s day %d: size mismatch", snap.User, d)
			}
			out[d].downloadSecs += time.Since(start).Seconds()
		}
	}
	for d := range out {
		out[d].UploadMBps = float64(out[d].LogicalBytes) / (1 << 20) / out[d].uploadSecs
		out[d].DownloadMBps = float64(out[d].LogicalBytes) / (1 << 20) / out[d].downloadSecs
	}
	return out, nil
}

func tracePath(s trace.Snapshot) string {
	return fmt.Sprintf("/trace/%s/day%03d", s.User, s.Day)
}
