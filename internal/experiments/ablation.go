package experiments

import (
	"bytes"
	"context"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/keymanager"
	"repro/internal/policy"
)

// Ablations quantify the design choices DESIGN.md calls out: request
// batching, the MLE key cache, encryption parallelism, and the stub
// size. Each returns the same structured-point style as the figure
// reproductions.

// AblationBatchingPoint compares keygen speed with and without request
// batching.
type AblationBatchingPoint struct {
	Batched   bool
	BatchSize int
	MBps      float64
}

// AblationBatching measures MLE key generation with batch sizes 1 (no
// batching: one round trip per chunk) and 256 (the paper's default).
func AblationBatching(o Options) ([]AblationBatchingPoint, error) {
	o, err := o.WithDefaults()
	if err != nil {
		return nil, err
	}
	cluster, err := startCluster(o)
	if err != nil {
		return nil, err
	}
	defer cluster.Close()

	var out []AblationBatchingPoint
	for _, batch := range []int{1, keymanager.DefaultBatchSize} {
		size := o.FileBytes
		if batch == 1 {
			size = o.FileBytes / 8 // bound the unbatched run's wall time
		}
		p, err := keyGenRun(cluster, o, 8, batch, size)
		if err != nil {
			return nil, err
		}
		out = append(out, AblationBatchingPoint{
			Batched:   batch > 1,
			BatchSize: batch,
			MBps:      p.MBps,
		})
	}
	return out, nil
}

// AblationCachePoint compares the second upload with and without the
// MLE key cache.
type AblationCachePoint struct {
	CacheEnabled bool
	SecondUpMBps float64
}

// AblationKeyCache uploads a file twice with the cache on and with it
// off; without the cache the second upload pays full key generation
// again.
func AblationKeyCache(o Options) ([]AblationCachePoint, error) {
	o, err := o.WithDefaults()
	if err != nil {
		return nil, err
	}
	cluster, err := startCluster(o)
	if err != nil {
		return nil, err
	}
	defer cluster.Close()

	var out []AblationCachePoint
	for _, enabled := range []bool{true, false} {
		user := fmt.Sprintf("cache-%v", enabled)
		c, err := newClient(cluster, o, clientParams{
			user: user, scheme: core.SchemeEnhanced, avgKB: 8,
			batch: keymanager.DefaultBatchSize, cache: enabled, workers: 2,
			// The second upload must exercise key generation, not the
			// whole-file fast path.
			noTwoPhase: true,
		})
		if err != nil {
			return nil, err
		}
		data := uniqueData(o.FileBytes, o.Seed+int64(len(out))*31)
		pol := policy.OrOfUsers([]string{user})
		if _, err := timeUpload(c, "/ab-cache/"+user+"/1", data, pol); err != nil {
			c.Close()
			return nil, err
		}
		second, err := timeUpload(c, "/ab-cache/"+user+"/2", data, pol)
		if err != nil {
			c.Close()
			return nil, err
		}
		c.Close()
		out = append(out, AblationCachePoint{CacheEnabled: enabled, SecondUpMBps: second})
	}
	return out, nil
}

// AblationThreadsPoint reports encryption speed at one worker count.
type AblationThreadsPoint struct {
	Workers int
	Scheme  string
	MBps    float64
}

// AblationThreads sweeps the encryption worker count (the paper fixes
// two threads on a quad-core machine; this shows the scaling that
// justified it).
func AblationThreads(o Options, workerCounts []int) ([]AblationThreadsPoint, error) {
	o, err := o.WithDefaults()
	if err != nil {
		return nil, err
	}
	if len(workerCounts) == 0 {
		workerCounts = []int{1, 2, 4, 8}
	}
	var out []AblationThreadsPoint
	for _, w := range workerCounts {
		points, err := encryptionSpeedAt(o, w, 8)
		if err != nil {
			return nil, err
		}
		for _, p := range points {
			out = append(out, AblationThreadsPoint{Workers: w, Scheme: p.Scheme, MBps: p.MBps})
		}
	}
	return out, nil
}

// encryptionSpeedAt measures both schemes at one chunk size and worker
// count.
func encryptionSpeedAt(o Options, workers, chunkKB int) ([]EncryptionPoint, error) {
	return encryptionSpeed(o, workers, []int{chunkKB})
}

// AblationStubPoint reports the cost of one stub size.
type AblationStubPoint struct {
	StubSize int
	// StorageOverheadPct is stub bytes as a percentage of logical bytes
	// for a fully unique file (the per-chunk tax).
	StorageOverheadPct float64
	// ActiveRekeySec is the end-to-end active rekey delay, dominated by
	// stub-file transfer and re-encryption.
	ActiveRekeySec float64
}

// AblationStubSize sweeps the stub size: larger stubs strengthen the
// withheld share and raise both the storage tax and the rekey cost; the
// paper picks 64 bytes (0.78% of an 8 KB chunk).
func AblationStubSize(o Options, stubSizes []int) ([]AblationStubPoint, error) {
	o, err := o.WithDefaults()
	if err != nil {
		return nil, err
	}
	if len(stubSizes) == 0 {
		stubSizes = []int{32, 64, 128, 256}
	}
	cluster, err := startCluster(o)
	if err != nil {
		return nil, err
	}
	defer cluster.Close()

	var out []AblationStubPoint
	for _, stub := range stubSizes {
		user := fmt.Sprintf("stub-%d", stub)
		c, err := newClient(cluster, o, clientParams{
			user: user, scheme: core.SchemeEnhanced, avgKB: 8,
			batch: keymanager.DefaultBatchSize, cache: true, workers: 2,
			stubSize: stub,
		})
		if err != nil {
			return nil, err
		}
		data := uniqueData(o.FileBytes, o.Seed+int64(stub))
		pol := policy.OrOfUsers([]string{user})
		path := "/ab-stub/" + user
		res, err := c.Upload(context.Background(), path, bytes.NewReader(data), pol)
		if err != nil {
			c.Close()
			return nil, err
		}
		start := time.Now()
		if _, err := c.Rekey(context.Background(), path, pol, true); err != nil {
			c.Close()
			return nil, err
		}
		active := time.Since(start).Seconds()
		c.Close()

		out = append(out, AblationStubPoint{
			StubSize:           stub,
			StorageOverheadPct: float64(res.Chunks*stub) / float64(len(data)) * 100,
			ActiveRekeySec:     active,
		})
	}
	return out, nil
}
