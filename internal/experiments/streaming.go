package experiments

// Streaming-pipeline experiment: quantifies the segment pipeline's
// overlap of chunking, OPRF key fetch, CAONT encryption, and striped
// upload against a sequential baseline (one segment spanning the whole
// file, so every stage drains before the next starts).

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/keymanager"
	"repro/internal/policy"
)

// StreamingPoint is one row of the streaming-upload experiment.
type StreamingPoint struct {
	Scheme string
	// SegmentMB is the pipelined client's segment budget.
	SegmentMB int
	// PipelinedMBps is first-upload speed with multi-segment pipelining.
	PipelinedMBps float64
	// SequentialMBps is first-upload speed with a file-sized segment
	// (no cross-stage overlap between segments).
	SequentialMBps float64
	// Speedup is PipelinedMBps / SequentialMBps.
	Speedup float64
	// PeakBufferedMB is the pipelined client's high-water buffered
	// bytes, demonstrating O(segment) memory.
	PeakBufferedMB float64
}

// StreamingUpload measures cold-upload speed with the segment pipeline
// against the sequential baseline for both encryption schemes. The
// segment budget is FileBytes/8 so the pipeline has eight segments to
// overlap; the baseline uses a single file-sized segment.
func StreamingUpload(o Options) ([]StreamingPoint, error) {
	o, err := o.WithDefaults()
	if err != nil {
		return nil, err
	}
	cluster, err := startCluster(o)
	if err != nil {
		return nil, err
	}
	defer cluster.Close()

	segBytes := o.FileBytes / 8
	if segBytes < 1<<20 {
		segBytes = 1 << 20
	}
	var out []StreamingPoint
	for _, scheme := range []core.Scheme{core.SchemeBasic, core.SchemeEnhanced} {
		p := StreamingPoint{Scheme: scheme.String(), SegmentMB: segBytes >> 20}
		// Distinct content per client: identical chunks would
		// deduplicate and hand the second run a free ride.
		for i, mode := range []string{"seq", "pipe"} {
			user := fmt.Sprintf("stream-%s-%s", mode, scheme)
			// workers 0: take the client's GOMAXPROCS-sized pool
			// default so the hot-path benchmark reflects the machine.
			params := clientParams{
				user: user, scheme: scheme, avgKB: 8,
				batch: keymanager.DefaultBatchSize, cache: true, workers: 0,
				segBytes: segBytes, ownLink: true,
			}
			if mode == "seq" {
				// Pipeline units are a quarter of the budget; a 4×file
				// budget yields a single unit, i.e. no overlap.
				params.segBytes = 4 * (o.FileBytes + 1)
			}
			c, err := newClient(cluster, o, params)
			if err != nil {
				return nil, err
			}
			data := uniqueData(o.FileBytes, o.Seed+int64(scheme)*100+int64(i))
			speed, res, err := timeUploadResult(c, "/stream/"+user, data, policy.OrOfUsers([]string{user}))
			c.Close()
			if err != nil {
				return nil, err
			}
			if mode == "seq" {
				p.SequentialMBps = speed
			} else {
				p.PipelinedMBps = speed
				p.PeakBufferedMB = float64(res.PeakBuffered) / (1 << 20)
			}
		}
		if p.SequentialMBps > 0 {
			p.Speedup = p.PipelinedMBps / p.SequentialMBps
		}
		out = append(out, p)
	}
	return out, nil
}
