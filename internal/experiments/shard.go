package experiments

// Shard-saturation experiment: quantifies what the consistent-hash ring
// buys — aggregate PUT bandwidth. Each shard gets its own emulated
// ingress port (one netem.Link per shard address, shared by every
// client dialing it, like one switch port per server). With one shard,
// concurrent clients contend for a single port; with N shards the ring
// spreads each client's chunk batches across N ports, so aggregate
// throughput grows until client-side work saturates.

import (
	"context"
	"fmt"
	"net"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/keyreg"
	"repro/internal/netem"
	"repro/internal/policy"
	"repro/internal/testenv"
)

// ShardPoint is one row of the shard-saturation experiment.
type ShardPoint struct {
	// Shards is the storage shard count.
	Shards int
	// Clients is the number of concurrent uploading clients.
	Clients int
	// AggregateMBps is total PUT throughput: clients × file size over
	// the wall-clock time for all uploads to finish.
	AggregateMBps float64
}

// shardPortDialer throttles connections to each shard through that
// shard's own link, modelling per-server switch ports; connections to
// other addresses (key manager, key store) pass through unthrottled.
func shardPortDialer(addrs []string, bytesPerSecond float64, rtt time.Duration) (func(addr string) (net.Conn, error), error) {
	ports := make(map[string]*netem.Link, len(addrs))
	for _, addr := range addrs {
		link, err := netem.NewLinkRTT(bytesPerSecond, rtt)
		if err != nil {
			return nil, err
		}
		ports[addr] = link
	}
	return func(addr string) (net.Conn, error) {
		c, err := net.Dial("tcp", addr)
		if err != nil {
			return nil, err
		}
		if link, ok := ports[addr]; ok {
			return link.Wrap(c), nil
		}
		return c, nil
	}, nil
}

// ShardSaturation uploads distinct data from `clients` concurrent
// clients against deployments of each shard count and measures
// aggregate PUT throughput. Chunks are fixed at 128 KB so OPRF key
// fetches stay off the critical path and the shard ports are the
// bottleneck; o.LinkBandwidth sets the per-port bandwidth (default
// 24 MB/s, low enough that a laptop saturates four ports).
func ShardSaturation(o Options, shardCounts []int, clients int) ([]ShardPoint, error) {
	o, err := o.WithDefaults()
	if err != nil {
		return nil, err
	}
	portBW := o.LinkBandwidth
	if portBW <= 0 {
		portBW = 24 << 20
	}
	if clients <= 0 {
		clients = 3
	}

	var out []ShardPoint
	for _, shards := range shardCounts {
		cluster, err := testenv.StartSharded(testenv.ShardedOptions{
			Shards: shards,
			KMKey:  o.KMKey,
		})
		if err != nil {
			return nil, err
		}
		point, err := shardSaturationRun(cluster, o, shards, clients, portBW)
		cluster.Close()
		if err != nil {
			return nil, err
		}
		out = append(out, point)
	}
	return out, nil
}

func shardSaturationRun(cluster *testenv.ShardedCluster, o Options, shards, clients int, portBW float64) (ShardPoint, error) {
	users := userNames(clients, "shard")
	cs := make([]*client.Client, clients)
	defer func() {
		for _, c := range cs {
			if c != nil {
				c.Close()
			}
		}
	}()
	// One set of port links shared by every client: the cap models the
	// server's switch port, not a per-client NIC.
	dialer, err := shardPortDialer(cluster.ShardAddrs(), portBW, o.LinkRTT)
	if err != nil {
		return ShardPoint{}, err
	}
	for i, user := range users {
		owner, err := keyreg.NewOwner(keyreg.DefaultBits, nil)
		if err != nil {
			return ShardPoint{}, err
		}
		cs[i], err = client.New(context.Background(), client.Config{
			UserID:         user,
			Scheme:         core.SchemeBasic,
			DataServers:    cluster.ShardAddrs(),
			KeyStoreServer: cluster.KeyAddr,
			KeyManager:     cluster.KMAddr,
			FixedChunkSize: 128 << 10,
			Workers:        4,
			PrivateKey:     cluster.Authority.IssueKey(user, []string{user}),
			Directory:      cluster.Authority,
			Owner:          owner,
			Dialer:         dialer,
		})
		if err != nil {
			return ShardPoint{}, err
		}
	}

	// Distinct content per client: shared chunks would deduplicate and
	// skip the very transfers under measurement.
	datas := make([][]byte, clients)
	for i := range datas {
		datas[i] = uniqueData(o.FileBytes, o.Seed+int64(shards)*1000+int64(i))
	}

	start := time.Now()
	err = parallel(clients, func(i int) error {
		path := fmt.Sprintf("/shard/%d/%s", shards, users[i])
		_, err := timeUpload(cs[i], path, datas[i], policy.OrOfUsers([]string{users[i]}))
		return err
	})
	if err != nil {
		return ShardPoint{}, err
	}
	return ShardPoint{
		Shards:        shards,
		Clients:       clients,
		AggregateMBps: mbps(clients*o.FileBytes, time.Since(start)),
	}, nil
}
