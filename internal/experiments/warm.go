package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/keymanager"
	"repro/internal/metrics"
	"repro/internal/policy"
)

// WarmUploadPoint is one phase of the warm-upload experiment.
type WarmUploadPoint struct {
	// Phase is "cold" (first upload of unique data) or "warm"
	// (identical re-upload under a new name).
	Phase string
	// UploadMBps is the end-to-end upload speed for the phase.
	UploadMBps float64
	// WireBytes is how many trimmed-package bytes the phase put on the
	// chunk plane (the client's upload_wire_bytes counter delta).
	WireBytes uint64
	// WholeFileHit reports whether the phase took the clone path.
	WholeFileHit bool
}

// WarmUpload measures the two-phase upload protocol end to end: a cold
// upload of unique data (the protocol is on, but there is nothing to
// hit — it pays the pre-check and the negative lookups), then a warm
// re-upload of the same bytes under a new name, which the whole-file
// index collapses to a recipe clone. The wire-byte deltas come from
// the client's own metrics registry, so the numbers are the ones an
// operator's dashboard would show.
func WarmUpload(o Options) ([]WarmUploadPoint, error) {
	o, err := o.WithDefaults()
	if err != nil {
		return nil, err
	}
	cluster, err := startCluster(o)
	if err != nil {
		return nil, err
	}
	defer cluster.Close()

	reg := metrics.NewRegistry()
	c, err := newClient(cluster, o, clientParams{
		user: "warm", scheme: core.SchemeEnhanced, avgKB: 8,
		batch: keymanager.DefaultBatchSize, cache: true, workers: 2,
		metrics: reg,
	})
	if err != nil {
		return nil, err
	}
	defer c.Close()

	data := uniqueData(o.FileBytes, o.Seed)
	pol := policy.OrOfUsers([]string{"warm"})

	coldMBps, coldRes, err := timeUploadResult(c, "/warm/cold", data, pol)
	if err != nil {
		return nil, fmt.Errorf("experiments: cold upload: %w", err)
	}
	coldWire := reg.Snapshot().Counters["upload_wire_bytes"]

	warmMBps, warmRes, err := timeUploadResult(c, "/warm/warm", data, pol)
	if err != nil {
		return nil, fmt.Errorf("experiments: warm upload: %w", err)
	}
	warmWire := reg.Snapshot().Counters["upload_wire_bytes"] - coldWire

	return []WarmUploadPoint{
		{Phase: "cold", UploadMBps: coldMBps, WireBytes: coldWire, WholeFileHit: coldRes.WholeFileHit},
		{Phase: "warm", UploadMBps: warmMBps, WireBytes: warmWire, WholeFileHit: warmRes.WholeFileHit},
	}, nil
}
