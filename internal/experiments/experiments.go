// Package experiments regenerates every figure of the REED paper's
// evaluation (Section VI) against this implementation.
//
// Each FigNN function reproduces one figure's series and returns
// structured points; cmd/reed-bench prints them as tables and the
// root-level bench_test.go wraps them as testing.B benchmarks. Data
// volumes are scaled down from the paper's (2 GB files → 64 MB by
// default) via Options.FileBytes; the reproduction target is the shape
// of each curve — who wins, by what factor, where it saturates — not
// absolute numbers, since the substrate is an in-process testbed rather
// than the authors' LAN.
//
// The paper's testbed network (1 Gb/s switch, ~116 MB/s effective) is
// emulated with internal/netem so network-bound plateaus appear at the
// paper's level regardless of host speed.
package experiments

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/chunker"
	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/keyreg"
	"repro/internal/metrics"
	"repro/internal/netem"
	"repro/internal/oprf"
	"repro/internal/policy"
	"repro/internal/testenv"
)

// Options scales and wires the experiments.
type Options struct {
	// FileBytes stands in for the paper's 2 GB test file (default
	// 64 MB). Experiment A.4(c) uses multiples of it for its file-size
	// sweep.
	FileBytes int
	// KMKey reuses one OPRF key across experiments (RSA keygen
	// dominates setup time otherwise). Generated on demand if nil.
	KMKey *oprf.ServerKey
	// LinkBandwidth emulates the testbed LAN in bytes/second; 0
	// disables emulation, netem.GigabitEffective reproduces the paper's
	// switch.
	LinkBandwidth float64
	// LinkRTT adds per-request latency on the emulated link (default
	// netem.DefaultRTT when LinkBandwidth is set); without it loopback
	// round trips are free and the batching effect of Figure 5(b)
	// vanishes.
	LinkRTT time.Duration
	// DataServers is the data-store server count (default 4, as in the
	// paper).
	DataServers int
	// Seed randomizes workloads deterministically.
	Seed int64
}

// WithDefaults fills unset fields.
func (o Options) WithDefaults() (Options, error) {
	if o.FileBytes <= 0 {
		o.FileBytes = 64 << 20
	}
	if o.DataServers <= 0 {
		o.DataServers = 4
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.LinkBandwidth > 0 && o.LinkRTT == 0 {
		o.LinkRTT = netem.DefaultRTT
	}
	if o.KMKey == nil {
		key, err := oprf.GenerateServerKey(oprf.DefaultBits, nil)
		if err != nil {
			return o, fmt.Errorf("experiments: key manager key: %w", err)
		}
		o.KMKey = key
	}
	return o, nil
}

// PaperChunkSizesKB are the average chunk sizes the paper sweeps.
var PaperChunkSizesKB = []int{2, 4, 8, 16}

// PaperBatchSizes are the key-generation batch sizes of Figure 5(b).
var PaperBatchSizes = []int{1, 4, 16, 64, 256, 1024, 4096}

// uniqueData returns deterministic random bytes (globally unique
// chunks, as the paper's synthetic dataset).
func uniqueData(n int, seed int64) []byte {
	data := make([]byte, n)
	rand.New(rand.NewSource(seed)).Read(data)
	return data
}

// chunkOpts builds the paper's chunking options for an average size.
func chunkOpts(avgKB int) chunker.Options {
	return chunker.Options{
		MinSize: 2 * 1024,
		MaxSize: 16 * 1024,
		AvgSize: avgKB * 1024,
	}
}

// startCluster boots a testbed deployment for one experiment.
func startCluster(o Options) (*testenv.Cluster, error) {
	return testenv.Start(testenv.Options{
		DataServers:   o.DataServers,
		KMKey:         o.KMKey,
		LinkBandwidth: o.LinkBandwidth,
		LinkRTT:       o.LinkRTT,
	})
}

// clientConfig assembles a client config against a cluster.
type clientParams struct {
	user     string
	scheme   core.Scheme
	avgKB    int
	batch    int
	cache    bool
	workers  int
	stubSize int
	segBytes int  // pipeline segment budget (0 = default 64 MB)
	ownLink  bool // give this client its own emulated NIC
	// noTwoPhase disables the two-phase upload protocol, for
	// experiments that measure the chunk pipeline on duplicate data
	// (which the whole-file fast path would otherwise skip).
	noTwoPhase bool
	// metrics instruments the client (the warm-upload experiment reads
	// wire-byte counters off the registry).
	metrics *metrics.Registry
}

func newClient(cluster *testenv.Cluster, o Options, p clientParams) (*client.Client, error) {
	owner, err := keyreg.NewOwner(keyreg.DefaultBits, nil)
	if err != nil {
		return nil, err
	}
	cfg := client.Config{
		UserID:          p.user,
		Scheme:          p.scheme,
		DataServers:     cluster.DataAddrs,
		KeyStoreServer:  cluster.KeyAddr,
		KeyManager:      cluster.KMAddr,
		Chunking:        chunkOpts(maxInt(p.avgKB, 2)),
		KeyGenBatch:     p.batch,
		Workers:         p.workers,
		StubSize:        p.stubSize,
		SegmentBytes:    p.segBytes,
		PrivateKey:      cluster.Authority.IssueKey(p.user, []string{p.user}),
		Directory:       cluster.Authority,
		Owner:           owner,
		DisableTwoPhase: p.noTwoPhase,
		Metrics:         p.metrics,
	}
	if !p.cache {
		cfg.CacheCapacity = -1
	}
	if p.ownLink && o.LinkBandwidth > 0 {
		link, err := netem.NewLinkRTT(o.LinkBandwidth, o.LinkRTT)
		if err != nil {
			return nil, err
		}
		cfg.Dialer = link.Dialer(nil)
	} else {
		cfg.Dialer = cluster.Dialer()
	}
	return client.New(context.Background(), cfg)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// mbps converts a byte count and duration into MB/s.
func mbps(bytes int, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(bytes) / (1 << 20) / d.Seconds()
}

// timeUpload uploads data and returns the measured speed.
func timeUpload(c *client.Client, path string, data []byte, pol *policy.Node) (float64, error) {
	start := time.Now()
	if _, err := c.Upload(context.Background(), path, bytes.NewReader(data), pol); err != nil {
		return 0, err
	}
	return mbps(len(data), time.Since(start)), nil
}

// timeUploadResult uploads data and returns the measured speed along
// with the full upload result.
func timeUploadResult(c *client.Client, path string, data []byte, pol *policy.Node) (float64, *client.UploadResult, error) {
	start := time.Now()
	res, err := c.Upload(context.Background(), path, bytes.NewReader(data), pol)
	if err != nil {
		return 0, nil, err
	}
	return mbps(len(data), time.Since(start)), res, nil
}

// timeDownload downloads a file and returns the measured speed.
func timeDownload(c *client.Client, path string, wantBytes int) (float64, error) {
	start := time.Now()
	got, err := c.Download(context.Background(), path)
	if err != nil {
		return 0, err
	}
	if len(got) != wantBytes {
		return 0, fmt.Errorf("experiments: downloaded %d bytes, want %d", len(got), wantBytes)
	}
	return mbps(wantBytes, time.Since(start)), nil
}

// parallel runs fn(i) for i in [0,n) concurrently and returns the first
// error.
func parallel(n int, fn func(int) error) error {
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := fn(i); err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
			}
		}(i)
	}
	wg.Wait()
	return firstErr
}

// userNames builds n distinct user identities.
func userNames(n int, prefix string) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("%s%04d", prefix, i)
	}
	return out
}
