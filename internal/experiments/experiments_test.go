package experiments

import (
	"sync"
	"testing"

	"repro/internal/oprf"
)

// Tiny scale so the full figure suite smoke-tests in seconds. These
// tests assert structure and shape, not absolute performance.
var (
	keyOnce sync.Once
	kmKey   *oprf.ServerKey
)

func tinyOptions(t *testing.T) Options {
	t.Helper()
	keyOnce.Do(func() {
		k, err := oprf.GenerateServerKey(oprf.DefaultBits, nil)
		if err != nil {
			t.Fatalf("oprf key: %v", err)
		}
		kmKey = k
	})
	return Options{
		FileBytes:   1 << 20, // 1 MB stands in for the 2 GB file
		DataServers: 2,
		KMKey:       kmKey,
		Seed:        7,
	}
}

func TestFig5aShape(t *testing.T) {
	points, err := Fig5aKeyGenVsChunkSize(tinyOptions(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != len(PaperChunkSizesKB) {
		t.Fatalf("points = %d", len(points))
	}
	for _, p := range points {
		if p.MBps <= 0 || p.Chunks <= 0 {
			t.Fatalf("degenerate point %+v", p)
		}
	}
	// Paper shape: speed increases with chunk size (fewer chunks to
	// process). Compare the extremes.
	if points[len(points)-1].MBps <= points[0].MBps {
		t.Errorf("keygen speed did not increase with chunk size: %v -> %v",
			points[0].MBps, points[len(points)-1].MBps)
	}
}

func TestFig5bShape(t *testing.T) {
	points, err := Fig5bKeyGenVsBatchSize(tinyOptions(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != len(PaperBatchSizes) {
		t.Fatalf("points = %d", len(points))
	}
	// Paper shape: batch 256 beats batch 1 decisively.
	var b1, b256 float64
	for _, p := range points {
		switch p.BatchSize {
		case 1:
			b1 = p.MBps
		case 256:
			b256 = p.MBps
		}
	}
	if b256 <= b1 {
		t.Errorf("batching did not help: batch1=%v batch256=%v", b1, b256)
	}
}

func TestFig6Shape(t *testing.T) {
	o := tinyOptions(t)
	o.FileBytes = 4 << 20
	points, err := Fig6EncryptionSpeed(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2*len(PaperChunkSizesKB) {
		t.Fatalf("points = %d", len(points))
	}
	// Paper shape: basic is faster than enhanced at the same chunk
	// size (enhanced pays an extra AES pass).
	speeds := make(map[string]map[int]float64)
	for _, p := range points {
		if speeds[p.Scheme] == nil {
			speeds[p.Scheme] = make(map[int]float64)
		}
		speeds[p.Scheme][p.ChunkKB] = p.MBps
	}
	if speeds["basic"][8] <= speeds["enhanced"][8] {
		t.Errorf("basic (%.0f MB/s) not faster than enhanced (%.0f MB/s) at 8KB",
			speeds["basic"][8], speeds["enhanced"][8])
	}
}

func TestFig7Shape(t *testing.T) {
	points, err := Fig7UploadDownload(tinyOptions(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range points {
		if p.FirstUpMBps <= 0 || p.SecondUpMBps <= 0 || p.DownloadMBps <= 0 {
			t.Fatalf("degenerate point %+v", p)
		}
		// Paper shape: the second upload (cached keys + dedup) is much
		// faster than the first (keygen-bound).
		if p.SecondUpMBps <= p.FirstUpMBps {
			t.Errorf("%dKB/%s: second upload (%.1f) not faster than first (%.1f)",
				p.ChunkKB, p.Scheme, p.SecondUpMBps, p.FirstUpMBps)
		}
	}
}

func TestFig7cShape(t *testing.T) {
	points, err := Fig7cMultiClient(tinyOptions(t), []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("points = %d", len(points))
	}
	for _, p := range points {
		if p.FirstUpMBps <= 0 || p.SecondUpMBps <= 0 {
			t.Fatalf("degenerate point %+v", p)
		}
	}
	// The paper's aggregate-scaling shape needs per-client NICs and a
	// saturating key manager, both of which only emerge at full scale
	// (everything here shares one process's cores). Require only that
	// aggregate throughput does not collapse when clients are added.
	if points[1].SecondUpMBps < points[0].SecondUpMBps/2 {
		t.Errorf("aggregate second-upload speed collapsed: %v -> %v",
			points[0].SecondUpMBps, points[1].SecondUpMBps)
	}
}

func TestFig8Shape(t *testing.T) {
	o := tinyOptions(t)
	points, err := Fig8aRekeyVsUsers(o, []int{20, 60})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("points = %d", len(points))
	}
	for _, p := range points {
		if p.LazySec <= 0 || p.ActiveSec <= 0 {
			t.Fatalf("degenerate point %+v", p)
		}
		// At this tiny scale the stub file is a few KB, so lazy and
		// active should be close; the lazy < active gap is a
		// full-scale property checked by the benchmark harness.
		if p.ActiveSec < p.LazySec/2 {
			t.Errorf("users=%d: active (%.3fs) implausibly below lazy (%.3fs)",
				p.X, p.ActiveSec, p.LazySec)
		}
	}
	// Delay grows with the number of users (policy encryption cost).
	if points[1].LazySec <= points[0].LazySec {
		t.Errorf("rekey delay did not grow with users: %v -> %v",
			points[0].LazySec, points[1].LazySec)
	}
}

func TestFig8bAnd8cRun(t *testing.T) {
	o := tinyOptions(t)
	b, err := Fig8bRekeyVsRatio(o, 30, []int{20, 50})
	if err != nil {
		t.Fatal(err)
	}
	if len(b) != 2 {
		t.Fatalf("8b points = %d", len(b))
	}
	c, err := Fig8cRekeyVsFileSize(o, 30, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(c) != 2 {
		t.Fatalf("8c points = %d", len(c))
	}
}

func TestFig9Shape(t *testing.T) {
	to := TraceOptions{Users: 3, Days: 10, BytesPerUserDay: 1 << 20, Seed: 3}
	days, err := Fig9StorageOverhead(tinyOptions(t), to)
	if err != nil {
		t.Fatal(err)
	}
	if len(days) != 10 {
		t.Fatalf("days = %d", len(days))
	}
	last := days[len(days)-1]
	// Paper shape: high cumulative savings (98.6% in the full trace;
	// smaller scaled runs still save the overwhelming majority).
	if s := last.Saving(); s < 0.8 {
		t.Errorf("cumulative saving = %.3f, want >= 0.8", s)
	}
	// Stub data grows monotonically and is never deduplicated.
	for i := 1; i < len(days); i++ {
		if days[i].StubBytes <= days[i-1].StubBytes {
			t.Errorf("stub bytes not strictly growing at day %d", i+1)
		}
		if days[i].LogicalBytes <= days[i-1].LogicalBytes {
			t.Errorf("logical bytes not growing at day %d", i+1)
		}
	}
}

func TestFig10Shape(t *testing.T) {
	to := TraceOptions{Users: 2, Days: 3, BytesPerUserDay: 512 << 10, Seed: 4}
	days, err := Fig10TraceDriven(tinyOptions(t), to)
	if err != nil {
		t.Fatal(err)
	}
	if len(days) != 3 {
		t.Fatalf("days = %d", len(days))
	}
	for _, d := range days {
		if d.UploadMBps <= 0 || d.DownloadMBps <= 0 {
			t.Fatalf("degenerate day %+v", d)
		}
	}
	// Paper shape: day 1 is keygen-bound; later days ride the key
	// cache and dedup.
	if days[2].UploadMBps <= days[0].UploadMBps {
		t.Errorf("upload speed did not improve after day 1: %v -> %v",
			days[0].UploadMBps, days[2].UploadMBps)
	}
}

func TestAblations(t *testing.T) {
	o := tinyOptions(t)

	batching, err := AblationBatching(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(batching) != 2 || batching[1].MBps <= batching[0].MBps {
		t.Errorf("batching ablation shape wrong: %+v", batching)
	}

	cache, err := AblationKeyCache(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(cache) != 2 {
		t.Fatalf("cache points = %d", len(cache))
	}
	var withCache, withoutCache float64
	for _, p := range cache {
		if p.CacheEnabled {
			withCache = p.SecondUpMBps
		} else {
			withoutCache = p.SecondUpMBps
		}
	}
	if withCache <= withoutCache {
		t.Errorf("cache ablation: cached second upload (%.1f) not faster than uncached (%.1f)",
			withCache, withoutCache)
	}

	threads, err := AblationThreads(o, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(threads) != 4 {
		t.Fatalf("threads points = %d", len(threads))
	}

	stubs, err := AblationStubSize(o, []int{32, 128})
	if err != nil {
		t.Fatal(err)
	}
	if len(stubs) != 2 {
		t.Fatalf("stub points = %d", len(stubs))
	}
	if stubs[1].StorageOverheadPct <= stubs[0].StorageOverheadPct {
		t.Errorf("stub overhead did not grow with stub size: %+v", stubs)
	}
}
