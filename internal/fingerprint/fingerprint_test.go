package fingerprint

import (
	"bytes"
	"crypto/sha256"
	"testing"
	"testing/quick"
)

func TestNewMatchesSHA256(t *testing.T) {
	data := []byte("hello reed")
	want := sha256.Sum256(data)
	got := New(data)
	if !bytes.Equal(got[:], want[:]) {
		t.Fatalf("New() = %x, want %x", got, want)
	}
}

func TestNewDeterministic(t *testing.T) {
	f := func(data []byte) bool {
		return New(data) == New(append([]byte(nil), data...))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNewDistinctInputsDistinctOutputs(t *testing.T) {
	// Not a collision proof, just a sanity property over random inputs.
	f := func(a, b []byte) bool {
		if bytes.Equal(a, b) {
			return New(a) == New(b)
		}
		return New(a) != New(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFromSlice(t *testing.T) {
	tests := []struct {
		name    string
		give    []byte
		wantErr bool
	}{
		{name: "exact size", give: make([]byte, Size), wantErr: false},
		{name: "too short", give: make([]byte, Size-1), wantErr: true},
		{name: "too long", give: make([]byte, Size+1), wantErr: true},
		{name: "empty", give: nil, wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := FromSlice(tt.give)
			if (err != nil) != tt.wantErr {
				t.Fatalf("FromSlice() error = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestParseRoundTrip(t *testing.T) {
	fp := New([]byte("roundtrip"))
	got, err := Parse(fp.String())
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if got != fp {
		t.Fatalf("Parse(String()) = %v, want %v", got, fp)
	}
}

func TestParseErrors(t *testing.T) {
	tests := []struct {
		name string
		give string
	}{
		{name: "not hex", give: "zz"},
		{name: "wrong length", give: "abcd"},
		{name: "empty", give: ""},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Parse(tt.give); err == nil {
				t.Fatal("Parse() expected error, got nil")
			}
		})
	}
}

func TestShort(t *testing.T) {
	fp := New([]byte("short"))
	if got := fp.Short(); len(got) != 8 {
		t.Fatalf("Short() length = %d, want 8", len(got))
	}
}

func TestIsZero(t *testing.T) {
	var zero Fingerprint
	if !zero.IsZero() {
		t.Error("zero fingerprint should report IsZero")
	}
	if New([]byte("x")).IsZero() {
		t.Error("non-zero fingerprint should not report IsZero")
	}
}
