// Package fingerprint computes and manipulates chunk fingerprints.
//
// A fingerprint is the SHA-256 digest of a chunk's content. Following the
// REED paper (and the compare-by-hash analysis it cites), two chunks are
// treated as identical if and only if their fingerprints are identical; the
// collision probability of SHA-256 is negligible for any realistic store.
package fingerprint

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
)

// Size is the length of a fingerprint in bytes.
const Size = sha256.Size

// Fingerprint identifies a chunk by the SHA-256 digest of its content.
type Fingerprint [Size]byte

// New computes the fingerprint of data.
func New(data []byte) Fingerprint {
	return Fingerprint(sha256.Sum256(data))
}

// FromSlice converts a raw byte slice into a Fingerprint. It returns an
// error if the slice is not exactly Size bytes.
func FromSlice(b []byte) (Fingerprint, error) {
	var fp Fingerprint
	if len(b) != Size {
		return fp, fmt.Errorf("fingerprint: invalid length %d, want %d", len(b), Size)
	}
	copy(fp[:], b)
	return fp, nil
}

// Parse decodes a hex-encoded fingerprint as produced by String.
func Parse(s string) (Fingerprint, error) {
	var fp Fingerprint
	b, err := hex.DecodeString(s)
	if err != nil {
		return fp, fmt.Errorf("fingerprint: parse: %w", err)
	}
	return FromSlice(b)
}

// String returns the hex encoding of the fingerprint.
func (f Fingerprint) String() string {
	return hex.EncodeToString(f[:])
}

// Short returns the first eight hex characters, for logs.
func (f Fingerprint) Short() string {
	return hex.EncodeToString(f[:4])
}

// IsZero reports whether the fingerprint is the all-zero value.
func (f Fingerprint) IsZero() bool {
	return f == Fingerprint{}
}
