package recipe

import (
	"errors"
	"testing"

	"repro/internal/fingerprint"
)

func sampleRecipe() *Recipe {
	return &Recipe{
		Path:       "/backups/day-001.tar",
		Size:       8192 + 4096,
		Scheme:     2,
		KeyVersion: 7,
		Chunks: []ChunkRef{
			{Fingerprint: fingerprint.New([]byte("chunk-a")), Size: 8192},
			{Fingerprint: fingerprint.New([]byte("chunk-b")), Size: 4096},
		},
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	r := sampleRecipe()
	got, err := Unmarshal(r.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.Path != r.Path || got.Size != r.Size || got.Scheme != r.Scheme || got.KeyVersion != r.KeyVersion {
		t.Fatalf("header mismatch: %+v", got)
	}
	if len(got.Chunks) != len(r.Chunks) {
		t.Fatalf("chunk count = %d", len(got.Chunks))
	}
	for i := range r.Chunks {
		if got.Chunks[i] != r.Chunks[i] {
			t.Fatalf("chunk %d mismatch", i)
		}
	}
}

func TestEmptyFileRecipe(t *testing.T) {
	r := &Recipe{Path: "/empty", Size: 0, Scheme: 1, KeyVersion: 1}
	got, err := Unmarshal(r.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Chunks) != 0 {
		t.Fatal("empty recipe grew chunks")
	}
}

func TestValidateSizeMismatch(t *testing.T) {
	r := sampleRecipe()
	r.Size++
	if err := r.Validate(); !errors.Is(err, ErrBadRecipe) {
		t.Fatalf("error = %v, want ErrBadRecipe", err)
	}
	// Unmarshal enforces Validate too.
	if _, err := Unmarshal(r.Marshal()); !errors.Is(err, ErrBadRecipe) {
		t.Fatalf("Unmarshal error = %v, want ErrBadRecipe", err)
	}
}

func TestUnmarshalErrors(t *testing.T) {
	valid := sampleRecipe().Marshal()
	tests := []struct {
		name string
		give []byte
	}{
		{"empty", nil},
		{"bad version", append([]byte{99}, valid[1:]...)},
		{"truncated", valid[:10]},
		{"trailing", append(append([]byte(nil), valid...), 0x00)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Unmarshal(tt.give); !errors.Is(err, ErrBadRecipe) {
				t.Fatalf("error = %v, want ErrBadRecipe", err)
			}
		})
	}
}

func TestLargeRecipe(t *testing.T) {
	r := &Recipe{Path: "/big", Scheme: 1, KeyVersion: 1}
	for i := 0; i < 10000; i++ {
		r.Chunks = append(r.Chunks, ChunkRef{
			Fingerprint: fingerprint.New([]byte{byte(i), byte(i >> 8)}),
			Size:        8192,
		})
		r.Size += 8192
	}
	got, err := Unmarshal(r.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Chunks) != 10000 {
		t.Fatalf("chunk count = %d", len(got.Chunks))
	}
}
