package recipe

import (
	"testing"

	"repro/internal/fingerprint"
)

func FuzzUnmarshal(f *testing.F) {
	valid := (&Recipe{
		Path:       "/f",
		Size:       100,
		Scheme:     2,
		KeyVersion: 3,
		Chunks:     []ChunkRef{{Fingerprint: fingerprint.New([]byte("c")), Size: 100}},
	}).Marshal()
	f.Add(valid)
	f.Add([]byte{1})
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := Unmarshal(data)
		if err != nil {
			return
		}
		if err := r.Validate(); err != nil {
			t.Fatalf("decoded recipe fails validation: %v", err)
		}
		if _, err := Unmarshal(r.Marshal()); err != nil {
			t.Fatalf("re-marshal round trip failed: %v", err)
		}
	})
}
