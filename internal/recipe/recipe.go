// Package recipe defines file recipes: the per-file metadata a REED
// client uploads so files can be reassembled from deduplicated chunks.
//
// A recipe records the file's name, size, the encryption scheme used,
// the key-state version that protects its stub file, and the ordered
// list of chunk references (fingerprint of the trimmed package plus the
// chunk's plaintext size).
package recipe

import (
	"errors"
	"fmt"

	"repro/internal/binenc"
	"repro/internal/fingerprint"
)

// formatVersion guards against decoding recipes from incompatible
// builds. Version 2 added FileHash (the whole-file SHA-256 backing the
// two-phase upload's clone verification); version 1 recipes are not
// readable.
const formatVersion = 2

// maxChunks bounds decoded recipes (a 1 TB file at 2 KB chunks).
const maxChunks = 1 << 29

// ErrBadRecipe is returned for malformed recipe encodings.
var ErrBadRecipe = errors.New("recipe: malformed recipe")

// ChunkRef references one chunk of a file.
type ChunkRef struct {
	// Fingerprint identifies the trimmed package in the data store.
	Fingerprint fingerprint.Fingerprint
	// Size is the plaintext chunk size in bytes.
	Size uint32
}

// Recipe describes an uploaded file.
type Recipe struct {
	// Path is the file's logical pathname (the paper obfuscates it at a
	// higher layer; the recipe itself travels encrypted or in the clear
	// per deployment policy).
	Path string
	// Size is the plaintext file size in bytes.
	Size uint64
	// Scheme is the chunk encryption scheme (core.Scheme numeric
	// value).
	Scheme uint8
	// KeyVersion is the key-regression version of the file key that
	// encrypts this file's stub file.
	KeyVersion uint64
	// FileHash is the linear SHA-256 of the whole plaintext file. The
	// two-phase upload's clone path verifies a whole-file index hit
	// against it, which makes stale index entries harmless (see
	// internal/fileindex).
	FileHash [32]byte
	// Chunks lists the file's chunks in order.
	Chunks []ChunkRef
}

// Validate checks internal consistency: chunk sizes must sum to Size.
func (r *Recipe) Validate() error {
	var total uint64
	for _, c := range r.Chunks {
		total += uint64(c.Size)
	}
	if total != r.Size {
		return fmt.Errorf("%w: chunk sizes sum to %d, file size %d", ErrBadRecipe, total, r.Size)
	}
	return nil
}

// Marshal encodes the recipe.
func (r *Recipe) Marshal() []byte {
	w := binenc.NewWriter(96 + len(r.Chunks)*(fingerprint.Size+4))
	w.Uint8(formatVersion)
	w.String(r.Path)
	w.Uint64(r.Size)
	w.Uint8(r.Scheme)
	w.Uint64(r.KeyVersion)
	w.Raw(r.FileHash[:])
	w.Uvarint(uint64(len(r.Chunks)))
	for _, c := range r.Chunks {
		w.Raw(c.Fingerprint[:])
		w.Uint32(c.Size)
	}
	return w.Bytes()
}

// Unmarshal decodes a recipe produced by Marshal.
func Unmarshal(b []byte) (*Recipe, error) {
	rd := binenc.NewReader(b)
	version, err := rd.Uint8()
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRecipe, err)
	}
	if version != formatVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadRecipe, version)
	}
	var r Recipe
	if r.Path, err = rd.ReadString(); err != nil {
		return nil, fmt.Errorf("%w: path: %v", ErrBadRecipe, err)
	}
	if r.Size, err = rd.Uint64(); err != nil {
		return nil, fmt.Errorf("%w: size: %v", ErrBadRecipe, err)
	}
	if r.Scheme, err = rd.Uint8(); err != nil {
		return nil, fmt.Errorf("%w: scheme: %v", ErrBadRecipe, err)
	}
	if r.KeyVersion, err = rd.Uint64(); err != nil {
		return nil, fmt.Errorf("%w: key version: %v", ErrBadRecipe, err)
	}
	hash, err := rd.ReadRaw(len(r.FileHash))
	if err != nil {
		return nil, fmt.Errorf("%w: file hash: %v", ErrBadRecipe, err)
	}
	copy(r.FileHash[:], hash)
	count, err := rd.Uvarint()
	if err != nil {
		return nil, fmt.Errorf("%w: chunk count: %v", ErrBadRecipe, err)
	}
	if count > maxChunks {
		return nil, fmt.Errorf("%w: %d chunks exceeds limit", ErrBadRecipe, count)
	}
	r.Chunks = make([]ChunkRef, 0, count)
	for i := uint64(0); i < count; i++ {
		raw, err := rd.ReadRaw(fingerprint.Size)
		if err != nil {
			return nil, fmt.Errorf("%w: chunk %d: %v", ErrBadRecipe, i, err)
		}
		fp, err := fingerprint.FromSlice(raw)
		if err != nil {
			return nil, err
		}
		size, err := rd.Uint32()
		if err != nil {
			return nil, fmt.Errorf("%w: chunk %d size: %v", ErrBadRecipe, i, err)
		}
		r.Chunks = append(r.Chunks, ChunkRef{Fingerprint: fp, Size: size})
	}
	if !rd.Done() {
		return nil, fmt.Errorf("%w: trailing bytes", ErrBadRecipe)
	}
	if err := r.Validate(); err != nil {
		return nil, err
	}
	return &r, nil
}
