package client

import (
	"bytes"
	"runtime"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/keyreg"
	"repro/internal/netem"
	"repro/internal/policy"
	"repro/internal/retry"
	"repro/internal/testenv"
)

// Chaos tests: scripted connection faults (internal/netem) fire at
// deterministic byte offsets while real uploads and downloads run, and
// the client must recover transparently — reconnect, re-issue or
// re-send, and produce byte-identical results. Seeded fault plans make
// every run hit the same failure point.
//
// Dial order in New pins the plan indices: conn 0 is the key manager,
// conns 1..len(DataServers) are the data servers in order, and the last
// conn is the key-store server. Redials take fresh indices past those,
// which the plans leave unscripted, so a replacement connection is
// healthy.

// chaosPolicy keeps fault-recovery backoff short so chaos tests stay
// fast; the seed makes the jitter sequence reproducible.
func chaosPolicy() retry.Policy {
	return retry.Policy{
		InitialDelay: time.Millisecond,
		MaxDelay:     20 * time.Millisecond,
		MaxAttempts:  6,
		Seed:         7,
	}
}

// chaosConfig builds a client Config routing through plan's dialer with
// small fixed chunks and upload batches, so a 256 KiB file crosses many
// PUT frames and a byte-offset cut lands mid-conversation.
func chaosConfig(cluster *testenv.Cluster, user string, owner *keyreg.Owner, plan *netem.Plan) Config {
	return Config{
		UserID:         user,
		Scheme:         core.SchemeBasic,
		DataServers:    cluster.DataAddrs,
		KeyStoreServer: cluster.KeyAddr,
		KeyManager:     cluster.KMAddr,
		PrivateKey:     cluster.Authority.IssueKey(user, []string{user}),
		Directory:      cluster.Authority,
		Owner:          owner,
		FixedChunkSize: 4 << 10,
		UploadBuffer:   16 << 10,
		Dialer:         plan.Dialer(nil),
		Retry:          chaosPolicy(),
	}
}

func newChaosUser(t testing.TB, cluster *testenv.Cluster, user string, plan *netem.Plan) *Client {
	t.Helper()
	owner, err := keyreg.NewOwner(keyreg.DefaultBits, nil)
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(ctx, chaosConfig(cluster, user, owner, plan))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	return c
}

// TestChaosUploadSurvivesDataServerCut kills the first data server's
// connection mid-PUT — the cut fires once 48 KiB of requests have gone
// out, i.e. during the 3rd 16 KiB batch — and the upload must complete
// via automatic reconnect plus the pipeline's segment-batch re-send,
// with a byte-identical download afterwards.
func TestChaosUploadSurvivesDataServerCut(t *testing.T) {
	cluster := startCluster(t)
	plan := netem.NewPlan(42)
	plan.OnDial(1, netem.Fault{CutAfterWriteBytes: 48 << 10})
	c := newChaosUser(t, cluster, "alice", plan)

	data := randomFile(t, 256<<10, 71)
	pol := policy.OrOfUsers([]string{"alice"})
	res, err := c.Upload(ctx, "/chaos/putcut", bytes.NewReader(data), pol)
	if err != nil {
		t.Fatalf("upload across data-server cut: %v", err)
	}
	if plan.Injected() != 1 {
		t.Fatalf("Injected() = %d, want 1 (the scripted cut must actually fire)", plan.Injected())
	}
	if res.Retry.Reconnects < 1 {
		t.Fatalf("Retry.Reconnects = %d, want >= 1", res.Retry.Reconnects)
	}
	if res.Retry.RetriedBatches < 1 {
		t.Fatalf("Retry.RetriedBatches = %d, want >= 1 (the killed PUT batch must be re-sent)", res.Retry.RetriedBatches)
	}

	got, err := c.Download(ctx, "/chaos/putcut")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("round trip across injected fault is not byte-identical")
	}
}

// TestChaosUploadSurvivesKeyManagerFault cuts the key-manager
// connection during the first OPRF keygen batch. Key-manager RPCs are
// idempotent (deterministic evaluations of blinded inputs), so the
// transport re-issues them on the replacement connection without the
// pipeline noticing.
func TestChaosUploadSurvivesKeyManagerFault(t *testing.T) {
	cluster := startCluster(t)
	plan := netem.NewPlan(43)
	// Past the tiny params fetch, inside the first keygen request frame
	// (64 blinded values of 128 bytes each).
	plan.OnDial(0, netem.Fault{CutAfterWriteBytes: 4 << 10})
	c := newChaosUser(t, cluster, "alice", plan)

	data := randomFile(t, 256<<10, 72)
	pol := policy.OrOfUsers([]string{"alice"})
	res, err := c.Upload(ctx, "/chaos/kmcut", bytes.NewReader(data), pol)
	if err != nil {
		t.Fatalf("upload across key-manager cut: %v", err)
	}
	if plan.Injected() != 1 {
		t.Fatalf("Injected() = %d, want 1", plan.Injected())
	}
	if res.Retry.Reconnects < 1 || res.Retry.RetriedCalls < 1 {
		t.Fatalf("Retry = %+v, want >= 1 reconnect and >= 1 transparently retried call", res.Retry)
	}

	got, err := c.Download(ctx, "/chaos/kmcut")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("round trip across key-manager fault is not byte-identical")
	}
}

// TestChaosDownloadSurvivesReadCut uploads over a healthy network, then
// downloads through connections whose data-server links die after
// 32 KiB of responses. GetChunks is read-only, so recovery is entirely
// transparent transport re-issue.
func TestChaosDownloadSurvivesReadCut(t *testing.T) {
	cluster := startCluster(t)
	healthy := newUser(t, cluster, "alice", core.SchemeBasic)
	data := randomFile(t, 256<<10, 73)
	pol := policy.OrOfUsers([]string{"alice"})
	if _, err := healthy.Upload(ctx, "/chaos/readcut", bytes.NewReader(data), pol); err != nil {
		t.Fatal(err)
	}

	plan := netem.NewPlan(44)
	// Both data-server connections die partway through their response
	// streams (each serves ~128 KiB of this file).
	plan.OnDial(1, netem.Fault{CutAfterReadBytes: 32 << 10})
	plan.OnDial(2, netem.Fault{CutAfterReadBytes: 32 << 10})
	reader := newChaosUser(t, cluster, "alice", plan)

	var sink bytes.Buffer
	res, err := reader.DownloadTo(ctx, "/chaos/readcut", &sink)
	if err != nil {
		t.Fatalf("download across read cuts: %v", err)
	}
	if plan.Injected() < 1 {
		t.Fatal("no scripted cut fired")
	}
	if res.Retry.Reconnects < 1 || res.Retry.RetriedCalls < 1 {
		t.Fatalf("Retry = %+v, want >= 1 reconnect and >= 1 retried call", res.Retry)
	}
	if !bytes.Equal(sink.Bytes(), data) {
		t.Fatal("download across injected faults is not byte-identical")
	}
}

// TestChaosFaultUnderLatency composes the fault plan with an emulated
// 200 Mb/s, 1 ms-RTT link: the cut must fire at the same byte offset
// and recovery must still work when every connection is shaped.
func TestChaosFaultUnderLatency(t *testing.T) {
	cluster := startCluster(t)
	link, err := netem.NewLinkRTT(25<<20, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	plan := netem.NewPlan(45)
	// 16 KiB, not 48: chunk→shard routing hashes the cluster's ephemeral
	// port addresses, so data server 0's share of this 128 KiB file
	// varies run to run (observed as low as ~10 of 32 chunks). The
	// first data connection always carries at least one 16 KiB PUT
	// batch, so this offset fires deterministically mid-PUT.
	plan.OnDial(1, netem.Fault{CutAfterWriteBytes: 16 << 10})

	owner, err := keyreg.NewOwner(keyreg.DefaultBits, nil)
	if err != nil {
		t.Fatal(err)
	}
	cfg := chaosConfig(cluster, "alice", owner, plan)
	cfg.Dialer = plan.Dialer(link.Dialer(nil))
	c, err := New(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })

	data := randomFile(t, 128<<10, 74)
	pol := policy.OrOfUsers([]string{"alice"})
	res, err := c.Upload(ctx, "/chaos/latency", bytes.NewReader(data), pol)
	if err != nil {
		t.Fatalf("upload across cut on shaped link: %v", err)
	}
	if plan.Injected() != 1 {
		t.Fatalf("Injected() = %d, want 1", plan.Injected())
	}
	if res.Retry.Reconnects < 1 {
		t.Fatalf("Retry.Reconnects = %d, want >= 1", res.Retry.Reconnects)
	}
	got, err := c.Download(ctx, "/chaos/latency")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("round trip on faulty shaped link is not byte-identical")
	}
}

// TestChaosRecoveryLeaksNoGoroutines runs a full fault-recovery upload
// with inline setup and teardown, then verifies the process quiesces:
// retired connections, redials, and serve loops all clean up after
// themselves.
func TestChaosRecoveryLeaksNoGoroutines(t *testing.T) {
	kmKey := sharedKMKey(t) // warm the shared fixture before counting
	before := runtime.NumGoroutine()

	cluster, err := testenv.Start(testenv.Options{DataServers: 2, KMKey: kmKey})
	if err != nil {
		t.Fatal(err)
	}
	owner, err := keyreg.NewOwner(keyreg.DefaultBits, nil)
	if err != nil {
		cluster.Close()
		t.Fatal(err)
	}
	plan := netem.NewPlan(46)
	plan.OnDial(1, netem.Fault{CutAfterWriteBytes: 48 << 10})
	c, err := New(ctx, chaosConfig(cluster, "alice", owner, plan))
	if err != nil {
		cluster.Close()
		t.Fatal(err)
	}

	data := randomFile(t, 256<<10, 75)
	res, uploadErr := c.Upload(ctx, "/chaos/leak", bytes.NewReader(data), policy.OrOfUsers([]string{"alice"}))
	_ = c.Close()
	cluster.Close()
	if uploadErr != nil {
		t.Fatalf("upload: %v", uploadErr)
	}
	if res.Retry.Reconnects < 1 {
		t.Fatalf("Retry.Reconnects = %d, want >= 1", res.Retry.Reconnects)
	}

	// Connection teardown is asynchronous; give the runtime a moment.
	deadline := time.Now().Add(3 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak: %d before, %d after teardown\n%s",
				before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}
