package client

import (
	"context"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/keyreg"
	"repro/internal/policy"
	"repro/internal/recipe"
	"repro/internal/store"
)

// GroupRekeyResult summarizes a group rekey.
type GroupRekeyResult struct {
	// Files is the number of files rekeyed.
	Files int
	// NewVersion is the key-state version now protecting all of them.
	NewVersion uint64
	// StubBytes is the total stub data re-encrypted in bytes (active
	// revocation only).
	StubBytes int64
	// PolicyEncryptions counts CP-ABE encryptions performed — 1,
	// versus len(paths) for file-by-file rekeying; this amortization is
	// the point of group rekeying (the paper's Section IV-D poses it as
	// future work).
	PolicyEncryptions int
	// Elapsed is the wall-clock duration of the whole operation.
	Elapsed time.Duration
}

// RekeyGroup rekeys a set of files owned by this client to one new
// policy, winding the key-regression chain once and performing a single
// policy encryption shared by every file. Semantics per file match
// Rekey: lazy revocation replaces only the key states; active
// revocation also re-encrypts each file's stub file.
func (c *Client) RekeyGroup(ctx context.Context, paths []string, newPol *policy.Node, active bool) (*GroupRekeyResult, error) {
	start := time.Now()
	if c.cfg.Owner == nil {
		return nil, ErrNoOwner
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("client: rekey group: no paths")
	}
	if err := newPol.Validate(); err != nil {
		return nil, err
	}
	names := make([]string, len(paths))
	for i, p := range paths {
		names[i] = c.remoteName(p)
	}

	// Decrypt every file's current key state first (and fail early if
	// any file is inaccessible) so a partial failure cannot strand a
	// file whose state was already replaced.
	oldStates := make([]keyreg.State, len(names))
	derivPubs := make([]keyreg.Public, len(names))
	for i, name := range names {
		state, pub, err := c.fetchKeyState(ctx, name)
		if err != nil {
			return nil, fmt.Errorf("client: rekey group %q: %w", paths[i], err)
		}
		oldStates[i] = state
		derivPubs[i] = pub
	}

	// One wind, one policy encryption, shared by all files.
	newState := c.cfg.Owner.Wind()
	stateBlob, err := c.sealKeyState(newState, newPol)
	if err != nil {
		return nil, err
	}

	result := &GroupRekeyResult{
		Files:             len(names),
		NewVersion:        newState.Version,
		PolicyEncryptions: 1,
	}
	for i, name := range names {
		if err := c.putBlob(ctx, c.keyConn, store.NSKeyStates, name, stateBlob); err != nil {
			return nil, fmt.Errorf("client: rekey group %q: upload key state: %w", paths[i], err)
		}
		if !active {
			continue
		}
		stubBytes, err := c.reencryptStubs(ctx, name, oldStates[i], derivPubs[i], newState)
		if err != nil {
			return nil, fmt.Errorf("client: rekey group %q: %w", paths[i], err)
		}
		result.StubBytes += int64(stubBytes)
	}
	result.Elapsed = time.Since(start)
	return result, nil
}

// reencryptStubs downloads a file's stub file, re-encrypts it under the
// new state's file key, uploads it, and bumps the recipe's key version.
// It returns the re-encrypted stub file size.
func (c *Client) reencryptStubs(ctx context.Context, name string, oldState keyreg.State, derivPub keyreg.Public, newState keyreg.State) (int, error) {
	recBytes, err := c.router.GetBlob(ctx, store.NSRecipes, name)
	if err != nil {
		return 0, fmt.Errorf("%w: recipe: %w", ErrNotFound, err)
	}
	rec, err := recipe.Unmarshal(recBytes)
	if err != nil {
		return 0, err
	}
	stubFile, err := c.router.GetBlob(ctx, store.NSStubs, name)
	if err != nil {
		return 0, fmt.Errorf("%w: stub file: %w", ErrNotFound, err)
	}

	fileState := oldState
	if rec.KeyVersion != oldState.Version {
		fileState, err = keyreg.Unwind(derivPub, oldState, rec.KeyVersion)
		if err != nil {
			return 0, fmt.Errorf("client: unwind key state: %w", err)
		}
	}
	oldKey := fileState.Key() //reed:secret — transient file-key copy
	defer core.Wipe(oldKey[:])
	stubs, err := openStubFile(stubFile, oldKey[:], name, c.cfg.StubSize, len(rec.Chunks))
	if err != nil {
		return 0, err
	}
	newKey := newState.Key() //reed:secret — transient file-key copy
	defer core.Wipe(newKey[:])
	reStubFile, err := sealStubs(stubs, newKey[:], name)
	if err != nil {
		return 0, err
	}
	if err := c.router.PutBlob(ctx, store.NSStubs, name, reStubFile); err != nil {
		return 0, fmt.Errorf("client: re-upload stub file: %w", err)
	}
	rec.KeyVersion = newState.Version
	if err := c.router.PutBlob(ctx, store.NSRecipes, name, rec.Marshal()); err != nil {
		return 0, fmt.Errorf("client: re-upload recipe: %w", err)
	}
	return len(reStubFile), nil
}
