// Package client implements the REED client: the user-side software
// layer that chunks, encrypts, uploads, downloads, and rekeys files
// (Sections IV-D and V).
//
// Upload runs as a segment pipeline: the input stream is split into
// fixed-budget segments (Config.SegmentBytes, 64 MB by default) and
// the stages overlap — segment i+1 is chunked and fingerprinted while
// segment i's MLE keys are fetched over batched OPRF, segment i−1 is
// CAONT-transformed on the worker pool, and segment i−2's trimmed
// packages are striped to the data servers. Peak client memory is
// O(segment), not O(file); a byte-budget gate enforces the bound. The
// file recipe, the stub file (all stubs encrypted under the file key),
// and the policy-encrypted key state are written only after every
// segment has uploaded, so a cancelled upload leaves no file metadata
// behind.
//
// Download is symmetric: DownloadTo streams the file to an io.Writer
// with windowed chunk prefetch — the next window's trimmed packages are
// fetched while the current window decrypts and writes in recipe order.
//
// Every public method takes a context.Context as its first argument;
// cancellation aborts pipeline stages and interrupts blocked network
// I/O promptly. A connection interrupted mid-frame is retired (its
// stream may be desynchronized), so a cancelled client should be
// discarded with Close.
//
// The file key is the hash of a key-regression state owned by the file's
// owner; the state travels CP-ABE-encrypted so only users satisfying the
// file policy can recover it. Rekeying winds the state forward and
// re-encrypts it under the new policy (lazy revocation); active
// revocation additionally re-encrypts the stub file immediately.
package client

import (
	"bytes"
	"context"
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/abe"
	"repro/internal/audit"
	"repro/internal/binenc"
	"repro/internal/chunker"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/fingerprint"
	"repro/internal/keycache"
	"repro/internal/keymanager"
	"repro/internal/keyreg"
	"repro/internal/metrics"
	"repro/internal/policy"
	"repro/internal/proto"
	"repro/internal/retry"
	"repro/internal/server"
	"repro/internal/store"
)

// DefaultWorkers is the minimum default encryption worker count (the
// paper's thread count). When Config.Workers is unset the client sizes
// its worker pool at max(DefaultWorkers, GOMAXPROCS) so CAONT
// package/unpackage scales across available cores.
const DefaultWorkers = 2

// DefaultUploadBuffer is the paper's upload batch size: 4 MB.
const DefaultUploadBuffer = 4 << 20

// DefaultSegmentBytes is the streaming pipeline's per-segment budget:
// 64 MB of plaintext chunks travel through the stages together.
const DefaultSegmentBytes = 64 << 20

var (
	// ErrNoOwner is returned when an operation needs the private
	// derivation key but the client has none configured.
	ErrNoOwner = errors.New("client: no key-regression owner configured")
	// ErrNotFound is returned when a file does not exist remotely.
	ErrNotFound = errors.New("client: file not found")
)

// PublicKeyDirectory resolves per-attribute ABE public keys; the
// authority implements it.
type PublicKeyDirectory interface {
	PublicKeys(attrs []string) abe.PublicKeys
}

var _ PublicKeyDirectory = (*abe.Authority)(nil)

// Config configures a client.
type Config struct {
	// UserID is this user's identity (also their ABE attribute).
	UserID string
	// Scheme selects basic or enhanced chunk encryption.
	Scheme core.Scheme
	// DataServers are the storage shard addresses (the paper uses
	// four). Chunks are placed on shards by a consistent-hash ring over
	// the fingerprint space, so every client configured with the same
	// shard set — in any order — routes each chunk to the same shard.
	DataServers []string
	// RingVirtualNodes overrides the placement ring's per-shard
	// virtual-node count (default ring.DefaultVirtualNodes). All
	// clients of one cluster must agree on it.
	RingVirtualNodes int
	// RingSeed keys the placement ring's hash (default 0). All clients
	// of one cluster must agree on it.
	RingSeed uint64
	// KeyStoreServer is the key-store server address.
	KeyStoreServer string
	// KeyManager is the key manager address.
	KeyManager string

	// Chunking selects variable-size parameters; FixedChunkSize > 0
	// switches to fixed-size chunking instead.
	Chunking       chunker.Options
	FixedChunkSize int

	// StubSize overrides the 64-byte default stub.
	StubSize int
	// Workers is the encryption/decryption worker count (default 2).
	Workers int
	// UploadBuffer is the per-server upload batch size (default 4 MB).
	UploadBuffer int
	// SegmentBytes is the streaming pipeline's segment budget (default
	// 64 MB): chunking yields a new segment to the key/encrypt/upload
	// stages every SegmentBytes of plaintext, and peak buffered bytes
	// stay under twice this budget.
	SegmentBytes int
	// KeyGenBatch is the key-generation batch size (default 256).
	KeyGenBatch int
	// CacheCapacity sizes the MLE key cache; 0 means the 512 MB
	// default, negative disables caching.
	CacheCapacity int64
	// CallTimeout, when positive, bounds every individual storage or
	// key-manager RPC: each call runs under the caller's context plus
	// this deadline. Zero disables per-call deadlines.
	CallTimeout time.Duration

	// PrivateKey is this user's private access key (ABE).
	PrivateKey *abe.PrivateKey
	// Directory resolves ABE public keys for policy encryption.
	Directory PublicKeyDirectory
	// Owner is this user's key-regression owner state; required to
	// upload or rekey files, not to download.
	Owner *keyreg.Owner

	// AuditTickets, when positive, makes every upload generate a book
	// of that many single-use remote-data-checking tickets
	// (internal/audit), returned in UploadResult.AuditBook. Spend them
	// later with Audit. The streaming pipeline reservoir-samples the
	// ticket chunks so audit generation stays O(segment) too.
	AuditTickets int

	// DisableTwoPhase turns off the two-phase upload protocol (see
	// fastpath.go): no whole-file pre-check with recipe cloning, no
	// warm-upload chunk filtering, no whole-file registration. Every
	// upload then chunks, keys, encrypts, and sends all of its bytes —
	// the paper's baseline behavior, and the cold side of the warm
	// upload experiment.
	DisableTwoPhase bool

	// ObfuscatePaths hides file pathnames from the cloud: every remote
	// object is addressed by a salted hash of its path instead of the
	// path itself (the metadata obfuscation the paper's Section IV-D
	// discussion describes). All clients sharing files must use the
	// same PathSalt.
	ObfuscatePaths bool
	// PathSalt keys the pathname obfuscation; required when
	// ObfuscatePaths is set.
	PathSalt []byte

	// Dialer overrides connection establishment (e.g. to route through
	// internal/netem). Nil uses plain TCP.
	Dialer server.Dialer

	// Retry bounds fault recovery on every connection: reconnect
	// backoff, transparent re-issue of idempotent RPCs, and the upload
	// pipeline's chunk-batch re-sends. The zero value uses the retry
	// package defaults (10 ms initial, 500 ms cap, 4 attempts), which
	// ride out a flapping server in well under the paper's per-request
	// timeouts while keeping a truly dead server's failure bounded.
	Retry retry.Policy

	// Metrics, when set, instruments the client: per-op RPC latency and
	// in-flight counts on every connection, pipeline stage latencies,
	// bytes in flight, and retry counters (the same numbers RetryStats
	// reports, exposed as registry families). Nil leaves the client
	// uninstrumented at zero cost.
	Metrics *metrics.Registry
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = DefaultWorkers
		if n := runtime.GOMAXPROCS(0); n > c.Workers {
			c.Workers = n
		}
	}
	if c.UploadBuffer <= 0 {
		c.UploadBuffer = DefaultUploadBuffer
	}
	if c.SegmentBytes <= 0 {
		c.SegmentBytes = DefaultSegmentBytes
	}
	if c.KeyGenBatch <= 0 {
		c.KeyGenBatch = keymanager.DefaultBatchSize
	}
	if c.StubSize <= 0 {
		c.StubSize = core.DefaultStubSize
	}
	return c
}

// Client is a connected REED client. It is safe for concurrent use by a
// single user's operations, though individual uploads internally
// parallelize already.
type Client struct {
	cfg   Config
	codec *core.Codec
	cache *keycache.Cache

	// pool is the persistent CAONT worker pool all encrypt/decrypt
	// fan-out (parallelEach) runs on; see workpool.go.
	pool *workPool

	km      *keymanager.Client
	router  *cluster.Router
	keyConn *server.Client

	// retriedBatches counts the upload pipeline's chunk-batch re-sends.
	// It backs both RetryStats.RetriedBatches and, when a registry is
	// configured, the upload_retried_batches family — one counter, two
	// views (see initMetrics).
	retriedBatches *metrics.Counter

	// Two-phase upload accounting (fastpath.go), always allocated like
	// retriedBatches so UploadResult and the metrics registry read the
	// same source: whole-file pre-check outcomes, bytes the protocol
	// kept off the wire, and trimmed bytes actually sent.
	wholeFileHits   *metrics.Counter
	wholeFileMisses *metrics.Counter
	skippedBytes    *metrics.Counter
	wireBytes       *metrics.Counter

	// Pipeline instruments; nil (and hence no-ops) when Config.Metrics
	// is unset.
	stageChunk    *metrics.Histogram
	stageKeys     *metrics.Histogram
	stageEncrypt  *metrics.Histogram
	stageUpload   *metrics.Histogram
	bytesInFlight *metrics.Gauge
}

// New dials the key manager and all storage servers. ctx bounds the
// initial connection handshakes, not the client's lifetime.
func New(ctx context.Context, cfg Config) (*Client, error) {
	cfg = cfg.withDefaults()
	if cfg.UserID == "" {
		return nil, errors.New("client: UserID required")
	}
	if len(cfg.DataServers) == 0 {
		return nil, errors.New("client: at least one data server required")
	}
	if cfg.KeyStoreServer == "" {
		return nil, errors.New("client: key-store server required")
	}
	if cfg.KeyManager == "" {
		return nil, errors.New("client: key manager required")
	}
	if cfg.PrivateKey == nil || cfg.Directory == nil {
		return nil, errors.New("client: access-control material required")
	}
	if cfg.ObfuscatePaths && len(cfg.PathSalt) < 16 {
		return nil, errors.New("client: ObfuscatePaths requires a PathSalt of at least 16 bytes")
	}

	codec, err := core.New(cfg.Scheme, core.WithStubSize(cfg.StubSize))
	if err != nil {
		return nil, err
	}

	var cache *keycache.Cache
	if cfg.CacheCapacity >= 0 {
		capacity := cfg.CacheCapacity
		if capacity == 0 {
			capacity = keycache.DefaultCapacity
		}
		cache, err = keycache.New(capacity)
		if err != nil {
			return nil, err
		}
	}

	kmOpts := []keymanager.ClientOption{
		keymanager.WithBatchSize(cfg.KeyGenBatch),
		keymanager.WithRetryPolicy(cfg.Retry),
	}
	if cache != nil {
		kmOpts = append(kmOpts, keymanager.WithCache(cache))
	}
	if cfg.Dialer != nil {
		kmOpts = append(kmOpts, keymanager.WithDialer(keymanager.Dialer(cfg.Dialer)))
	}
	km, err := keymanager.Dial(ctx, cfg.KeyManager, kmOpts...)
	if err != nil {
		return nil, err
	}

	c := &Client{
		cfg: cfg, codec: codec, cache: cache, km: km,
		retriedBatches:  metrics.NewCounter(),
		wholeFileHits:   metrics.NewCounter(),
		wholeFileMisses: metrics.NewCounter(),
		skippedBytes:    metrics.NewCounter(),
		wireBytes:       metrics.NewCounter(),
	}
	c.pool = newWorkPool(cfg.Workers)
	c.router, err = cluster.Dial(ctx, cluster.Config{
		Shards:       cfg.DataServers,
		Dialer:       cfg.Dialer,
		Retry:        cfg.Retry,
		CallTimeout:  cfg.CallTimeout,
		BatchBytes:   cfg.UploadBuffer,
		VirtualNodes: cfg.RingVirtualNodes,
		RingSeed:     cfg.RingSeed,
		OnBatchRetry: c.retriedBatches.Inc,
	})
	if err != nil {
		c.Close()
		return nil, err
	}
	c.keyConn, err = server.DialStore(ctx, cfg.KeyStoreServer, cfg.Dialer, cfg.Retry)
	if err != nil {
		c.Close()
		return nil, err
	}
	c.initMetrics()
	return c, nil
}

// Close closes all connections and stops the worker pool.
func (c *Client) Close() error {
	var firstErr error
	if c.pool != nil {
		c.pool.close()
	}
	if c.km != nil {
		if err := c.km.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if c.router != nil {
		if err := c.router.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if c.keyConn != nil {
		if err := c.keyConn.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// ClearKeyCache empties the MLE key cache (the trace experiments clear
// it between users).
func (c *Client) ClearKeyCache() {
	if c.cache != nil {
		c.cache.Clear()
	}
}

// CacheStats reports MLE key cache hits and misses.
func (c *Client) CacheStats() (hits, misses uint64) {
	if c.cache == nil {
		return 0, 0
	}
	return c.cache.Stats()
}

// --- fault-recovery accounting ---

// RetryStats summarizes the fault recovery one operation needed. All
// zeros means the operation saw a healthy network.
type RetryStats struct {
	// Reconnects is how many times a connection (key manager, data
	// server, or key-store server) was re-established mid-operation.
	Reconnects uint64
	// RetriedCalls is how many RPCs the transport re-issued
	// transparently after a connection fault (idempotent calls only).
	RetriedCalls uint64
	// RetriedBatches is how many chunk-upload batches the upload
	// pipeline re-sent after a transport failure. Re-sending is
	// dedup-safe for the stored bytes (see internal/dedup); it can only
	// over-retain via refcounts, never corrupt.
	RetriedBatches uint64
}

// retrySnapshot sums reconnect/retry counters across every connection
// the client holds. Operation results report the delta between two
// snapshots.
func (c *Client) retrySnapshot() RetryStats {
	var s RetryStats
	if c.km != nil {
		s.Reconnects += c.km.Reconnects()
		s.RetriedCalls += c.km.Retries()
	}
	if c.router != nil {
		s.Reconnects += c.router.Reconnects()
		s.RetriedCalls += c.router.Retries()
	}
	if c.keyConn != nil {
		s.Reconnects += c.keyConn.Reconnects()
		s.RetriedCalls += c.keyConn.Retries()
	}
	s.RetriedBatches = c.retriedBatches.Value()
	return s
}

// retryDelta reports the recovery work since an earlier snapshot.
func (c *Client) retryDelta(before RetryStats) RetryStats {
	now := c.retrySnapshot()
	return RetryStats{
		Reconnects:     now.Reconnects - before.Reconnects,
		RetriedCalls:   now.RetriedCalls - before.RetriedCalls,
		RetriedBatches: now.RetriedBatches - before.RetriedBatches,
	}
}

// --- per-call deadlines ---

// rpc derives the context one network call runs under: the caller's
// context, bounded by Config.CallTimeout when one is set. The returned
// cancel must always be called.
func (c *Client) rpc(ctx context.Context) (context.Context, context.CancelFunc) {
	if c.cfg.CallTimeout > 0 {
		return context.WithTimeout(ctx, c.cfg.CallTimeout)
	}
	return ctx, func() {}
}

func (c *Client) putBlob(ctx context.Context, conn *server.Client, ns, name string, data []byte) error {
	rctx, cancel := c.rpc(ctx)
	defer cancel()
	return conn.PutBlob(rctx, ns, name, data)
}

func (c *Client) getBlob(ctx context.Context, conn *server.Client, ns, name string) ([]byte, error) {
	rctx, cancel := c.rpc(ctx)
	defer cancel()
	return conn.GetBlob(rctx, ns, name)
}

func (c *Client) deleteBlob(ctx context.Context, conn *server.Client, ns, name string) error {
	rctx, cancel := c.rpc(ctx)
	defer cancel()
	return conn.DeleteBlob(rctx, ns, name)
}

func (c *Client) generateKeys(ctx context.Context, fps []fingerprint.Fingerprint) ([][]byte, error) {
	rctx, cancel := c.rpc(ctx)
	defer cancel()
	return c.km.GenerateKeys(rctx, fps)
}

// --- results ---

// UploadResult summarizes an upload.
type UploadResult struct {
	// Chunks is the number of chunks the file split into.
	Chunks int
	// LogicalBytes is the plaintext size in bytes.
	LogicalBytes int64
	// DuplicateChunks is how many trimmed packages the servers already
	// had.
	DuplicateChunks int
	// Segments is how many pipeline segments the stream split into
	// (units of a quarter of Config.SegmentBytes).
	Segments int
	// PeakBuffered is the peak number of chunk bytes (plaintext plus
	// ciphertext) buffered in the pipeline at once; it stays below
	// roughly twice Config.SegmentBytes regardless of file size.
	PeakBuffered int64
	// KeyVersion is the key-state version protecting the stub file.
	KeyVersion uint64
	// WholeFileHit reports that the two-phase fast path satisfied the
	// upload: the cluster already stored an identical file under the
	// same policy, so the client cloned its recipe instead of chunking
	// and encrypting (fastpath.go).
	WholeFileHit bool
	// SkippedChunks counts chunks whose bytes never crossed the wire:
	// every chunk on a whole-file hit, the already-stored ones on a
	// filtered warm upload.
	SkippedChunks int
	// SkippedBytes is the corresponding byte count — plaintext bytes
	// for a whole-file hit, trimmed-package bytes for filtered chunks.
	SkippedBytes int64
	// AuditBook holds remote-data-checking tickets when
	// Config.AuditTickets is set; it is a client-side secret.
	AuditBook *audit.Book
	// Retry reports the fault recovery this upload needed: reconnects,
	// transparently re-issued RPCs, and re-sent chunk batches.
	Retry RetryStats
	// Elapsed is the wall-clock duration of the whole operation.
	Elapsed time.Duration
}

// encChunk carries one chunk through the upload pipeline. After the
// encrypt stage drops the plaintext, size remembers its length for the
// recipe.
type encChunk struct {
	data    []byte
	size    int
	fpPlain fingerprint.Fingerprint
	key     []byte
	pkg     core.Package
	fpTrim  fingerprint.Fingerprint
}

// Audit spends one ticket from the book: it challenges the data server
// holding the sampled chunk and verifies the response. A false return
// means the server no longer possesses the exact bytes — corruption or
// loss.
func (c *Client) Audit(ctx context.Context, book *audit.Book) (bool, error) {
	ticket, err := book.Next()
	if err != nil {
		return false, err
	}
	resp, err := c.router.Challenge(ctx, ticket.FP, ticket.Nonce[:])
	if err != nil {
		return false, fmt.Errorf("client: audit challenge: %w", err)
	}
	return len(resp) == audit.DigestSize && bytes.Equal(resp, ticket.Expected[:]), nil
}

// RekeyResult summarizes a rekey operation.
type RekeyResult struct {
	// OldVersion and NewVersion are the key-state versions before and
	// after.
	OldVersion, NewVersion uint64
	// StubBytes is the size in bytes of the re-encrypted stub file
	// (active revocation only).
	StubBytes int64
	// Elapsed is the wall-clock duration of the whole operation.
	Elapsed time.Duration
}

// Rekey renews the file key for path and re-encrypts the key state under
// newPol. With active revocation the stub file is immediately
// re-encrypted under the new file key; with lazy revocation it is left
// until the next update (old versions remain derivable via key
// regression). Requires the Owner (private derivation key).
func (c *Client) Rekey(ctx context.Context, path string, newPol *policy.Node, active bool) (*RekeyResult, error) {
	start := time.Now()
	path = c.remoteName(path)
	if c.cfg.Owner == nil {
		return nil, ErrNoOwner
	}
	if err := newPol.Validate(); err != nil {
		return nil, err
	}

	// Retrieve and decrypt the current key state (CP-ABE decryption
	// with the original policy).
	oldState, derivPub, err := c.fetchKeyState(ctx, path)
	if err != nil {
		return nil, err
	}

	// Derive the new key state (key regression wind).
	newState := c.cfg.Owner.Wind()

	// Encrypt the new state via CP-ABE under the new policy and upload
	// it with its metadata.
	stateBlob, err := c.sealKeyState(newState, newPol)
	if err != nil {
		return nil, err
	}
	if err := c.putBlob(ctx, c.keyConn, store.NSKeyStates, path, stateBlob); err != nil {
		return nil, fmt.Errorf("client: upload key state: %w", err)
	}

	result := &RekeyResult{OldVersion: oldState.Version, NewVersion: newState.Version}
	if !active {
		result.Elapsed = time.Since(start)
		return result, nil
	}

	// Active revocation: download the stubs, re-encrypt them with the
	// new file key, and upload them again.
	stubBytes, err := c.reencryptStubs(ctx, path, oldState, derivPub, newState)
	if err != nil {
		return nil, err
	}
	result.StubBytes = int64(stubBytes)
	result.Elapsed = time.Since(start)
	return result, nil
}

// List returns the remote names of all stored files, sorted. Recipes
// spread across shards by home placement, so the listing fans out to
// every shard. With pathname obfuscation these are the salted hashes,
// not the logical paths — by design, the cloud (and hence this
// listing) never sees plaintext names.
func (c *Client) List(ctx context.Context) ([]string, error) {
	names, err := c.router.ListBlobs(ctx, store.NSRecipes)
	if err != nil {
		return nil, fmt.Errorf("client: list: %w", err)
	}
	return names, nil
}

// ServerStats returns per-shard dedup statistics plus the key-store
// server's (last entry).
func (c *Client) ServerStats(ctx context.Context) ([]proto.Stats, error) {
	out, err := c.router.Stats(ctx)
	if err != nil {
		return nil, err
	}
	rctx, cancel := c.rpc(ctx)
	defer cancel()
	s, err := c.keyConn.Stats(rctx)
	if err != nil {
		return nil, err
	}
	return append(out, s), nil
}

// ShardHealth reports the routing plane's per-shard health view: how
// many consecutive transport failures each shard has accumulated and
// whether non-idempotent operations currently fail fast against it.
func (c *Client) ShardHealth() []cluster.ShardHealth {
	return c.router.Health()
}

// fetchKeyState downloads and decrypts the key state for path, returning
// it with the owner's public derivation key.
func (c *Client) fetchKeyState(ctx context.Context, path string) (keyreg.State, keyreg.Public, error) {
	blob, err := c.getBlob(ctx, c.keyConn, store.NSKeyStates, path)
	if err != nil {
		return keyreg.State{}, keyreg.Public{}, fmt.Errorf("%w: key state: %w", ErrNotFound, err)
	}
	r := binenc.NewReader(blob)
	ctBytes, err := r.ReadBytes()
	if err != nil {
		return keyreg.State{}, keyreg.Public{}, fmt.Errorf("client: key state blob: %w", err)
	}
	pubBytes, err := r.ReadBytes()
	if err != nil {
		return keyreg.State{}, keyreg.Public{}, fmt.Errorf("client: key state blob: %w", err)
	}
	ct, err := abe.UnmarshalCiphertext(ctBytes)
	if err != nil {
		return keyreg.State{}, keyreg.Public{}, err
	}
	statePlain, err := abe.Decrypt(c.cfg.PrivateKey, ct)
	if err != nil {
		return keyreg.State{}, keyreg.Public{}, fmt.Errorf("client: decrypt key state: %w", err)
	}
	state, err := keyreg.UnmarshalState(statePlain)
	if err != nil {
		return keyreg.State{}, keyreg.Public{}, err
	}
	pub, err := keyreg.UnmarshalPublic(pubBytes)
	if err != nil {
		return keyreg.State{}, keyreg.Public{}, err
	}
	return state, pub, nil
}

// sealKeyState policy-encrypts a key state and bundles the public
// derivation key.
func (c *Client) sealKeyState(state keyreg.State, pol *policy.Node) ([]byte, error) {
	pub := c.cfg.Directory.PublicKeys(pol.Leaves())
	ct, err := abe.Encrypt(pub, pol, state.Marshal(), nil)
	if err != nil {
		return nil, fmt.Errorf("client: encrypt key state: %w", err)
	}
	w := binenc.NewWriter(512)
	w.WriteBytes(ct.Marshal())
	w.WriteBytes(c.cfg.Owner.Public().Marshal())
	return w.Bytes(), nil
}

// remoteName maps a logical path to its remote object name: the path
// itself, or a salted hash of it when pathname obfuscation is on
// (Section IV-D). The mapping is deterministic so any client holding
// the salt addresses the same objects.
func (c *Client) remoteName(path string) string {
	if !c.cfg.ObfuscatePaths {
		return path
	}
	mac := hmac.New(sha256.New, c.cfg.PathSalt)
	mac.Write([]byte(path))
	return hex.EncodeToString(mac.Sum(nil))
}

// parallelEach runs fn(i) for i in [0,n) on the client's persistent
// worker pool, returning the first error. Cancelling ctx stops workers
// from claiming further indices. Up to Config.Workers runners execute
// concurrently; because every parallelEach in the process shares one
// pool, concurrent operations cannot oversubscribe the CPU.
func (c *Client) parallelEach(ctx context.Context, n int, fn func(int) error) error {
	workers := c.cfg.Workers
	if workers > n {
		workers = n
	}
	if workers <= 1 || c.pool == nil {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		next     int
	)
	claim := func() int {
		mu.Lock()
		defer mu.Unlock()
		if firstErr != nil || next >= n {
			return -1
		}
		i := next
		next++
		return i
	}
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	runner := func() {
		defer wg.Done()
		for {
			if err := ctx.Err(); err != nil {
				fail(err)
				return
			}
			i := claim()
			if i < 0 {
				return
			}
			if err := fn(i); err != nil {
				fail(err)
				return
			}
		}
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		c.pool.submit(runner)
	}
	wg.Wait()
	return firstErr
}

// sealStubs encrypts concatenated stubs with AES-256-GCM under the file
// key, binding the file path as associated data.
func sealStubs(stubs [][]byte, fileKey []byte, path string) ([]byte, error) {
	plain := bytes.Join(stubs, nil)
	aead, err := stubAEAD(fileKey)
	if err != nil {
		return nil, err
	}
	nonce := make([]byte, aead.NonceSize())
	if _, err := rand.Read(nonce); err != nil {
		return nil, fmt.Errorf("client: stub nonce: %w", err)
	}
	ct := aead.Seal(nil, nonce, plain, []byte(path))
	return append(nonce, ct...), nil
}

// openStubFile decrypts a stub file and splits it into per-chunk stubs.
func openStubFile(blob, fileKey []byte, path string, stubSize, chunkCount int) ([][]byte, error) {
	aead, err := stubAEAD(fileKey)
	if err != nil {
		return nil, err
	}
	if len(blob) < aead.NonceSize() {
		return nil, errors.New("client: stub file too short")
	}
	plain, err := aead.Open(nil, blob[:aead.NonceSize()], blob[aead.NonceSize():], []byte(path))
	if err != nil {
		return nil, fmt.Errorf("client: stub file authentication failed: %w", err)
	}
	if len(plain) != stubSize*chunkCount {
		return nil, fmt.Errorf("client: stub file holds %d bytes, want %d", len(plain), stubSize*chunkCount)
	}
	stubs := make([][]byte, chunkCount)
	for i := range stubs {
		stubs[i] = plain[i*stubSize : (i+1)*stubSize]
	}
	return stubs, nil
}

func stubAEAD(fileKey []byte) (cipher.AEAD, error) {
	block, err := aes.NewCipher(fileKey)
	if err != nil {
		return nil, fmt.Errorf("client: stub cipher: %w", err)
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("client: stub aead: %w", err)
	}
	return aead, nil
}
