// Package client implements the REED client: the user-side software
// layer that chunks, encrypts, uploads, downloads, and rekeys files
// (Sections IV-D and V).
//
// Upload pipeline: chunk the file (Rabin or fixed-size) → obtain MLE
// keys from the key manager (LRU key cache first, then batched OPRF) →
// transform every chunk into a trimmed package and stub with the basic
// or enhanced scheme (worker pool) → write all stubs of the file into a
// single stub file encrypted with the file key → batch trimmed packages
// into 4 MB requests striped across the data servers → upload the file
// recipe and the policy-encrypted key state.
//
// The file key is the hash of a key-regression state owned by the file's
// owner; the state travels CP-ABE-encrypted so only users satisfying the
// file policy can recover it. Rekeying winds the state forward and
// re-encrypts it under the new policy (lazy revocation); active
// revocation additionally re-encrypts the stub file immediately.
package client

import (
	"bytes"
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"sort"
	"sync"

	"repro/internal/abe"
	"repro/internal/audit"
	"repro/internal/binenc"
	"repro/internal/chunker"
	"repro/internal/core"
	"repro/internal/fingerprint"
	"repro/internal/keycache"
	"repro/internal/keymanager"
	"repro/internal/keyreg"
	"repro/internal/policy"
	"repro/internal/proto"
	"repro/internal/recipe"
	"repro/internal/server"
	"repro/internal/store"
)

// DefaultWorkers is the paper's encryption thread count.
const DefaultWorkers = 2

// DefaultUploadBuffer is the paper's upload batch size: 4 MB.
const DefaultUploadBuffer = 4 << 20

var (
	// ErrNoOwner is returned when an operation needs the private
	// derivation key but the client has none configured.
	ErrNoOwner = errors.New("client: no key-regression owner configured")
	// ErrNotFound is returned when a file does not exist remotely.
	ErrNotFound = errors.New("client: file not found")
)

// PublicKeyDirectory resolves per-attribute ABE public keys; the
// authority implements it.
type PublicKeyDirectory interface {
	PublicKeys(attrs []string) abe.PublicKeys
}

var _ PublicKeyDirectory = (*abe.Authority)(nil)

// Config configures a client.
type Config struct {
	// UserID is this user's identity (also their ABE attribute).
	UserID string
	// Scheme selects basic or enhanced chunk encryption.
	Scheme core.Scheme
	// DataServers are the data-store server addresses (the paper uses
	// four).
	DataServers []string
	// KeyStoreServer is the key-store server address.
	KeyStoreServer string
	// KeyManager is the key manager address.
	KeyManager string

	// Chunking selects variable-size parameters; FixedChunkSize > 0
	// switches to fixed-size chunking instead.
	Chunking       chunker.Options
	FixedChunkSize int

	// StubSize overrides the 64-byte default stub.
	StubSize int
	// Workers is the encryption/decryption worker count (default 2).
	Workers int
	// UploadBuffer is the per-server upload batch size (default 4 MB).
	UploadBuffer int
	// KeyGenBatch is the key-generation batch size (default 256).
	KeyGenBatch int
	// CacheCapacity sizes the MLE key cache; 0 means the 512 MB
	// default, negative disables caching.
	CacheCapacity int64

	// PrivateKey is this user's private access key (ABE).
	PrivateKey *abe.PrivateKey
	// Directory resolves ABE public keys for policy encryption.
	Directory PublicKeyDirectory
	// Owner is this user's key-regression owner state; required to
	// upload or rekey files, not to download.
	Owner *keyreg.Owner

	// AuditTickets, when positive, makes every upload generate a book
	// of that many single-use remote-data-checking tickets
	// (internal/audit), returned in UploadResult.AuditBook. Spend them
	// later with Audit.
	AuditTickets int

	// ObfuscatePaths hides file pathnames from the cloud: every remote
	// object is addressed by a salted hash of its path instead of the
	// path itself (the metadata obfuscation the paper's Section IV-D
	// discussion describes). All clients sharing files must use the
	// same PathSalt.
	ObfuscatePaths bool
	// PathSalt keys the pathname obfuscation; required when
	// ObfuscatePaths is set.
	PathSalt []byte

	// Dialer overrides connection establishment (e.g. to route through
	// internal/netem). Nil uses plain TCP.
	Dialer server.Dialer
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = DefaultWorkers
	}
	if c.UploadBuffer <= 0 {
		c.UploadBuffer = DefaultUploadBuffer
	}
	if c.KeyGenBatch <= 0 {
		c.KeyGenBatch = keymanager.DefaultBatchSize
	}
	if c.StubSize <= 0 {
		c.StubSize = core.DefaultStubSize
	}
	return c
}

// Client is a connected REED client. It is safe for concurrent use by a
// single user's operations, though individual uploads internally
// parallelize already.
type Client struct {
	cfg   Config
	codec *core.Codec
	cache *keycache.Cache

	km      *keymanager.Client
	data    []*server.Client
	keyConn *server.Client
}

// New dials the key manager and all storage servers.
func New(cfg Config) (*Client, error) {
	cfg = cfg.withDefaults()
	if cfg.UserID == "" {
		return nil, errors.New("client: UserID required")
	}
	if len(cfg.DataServers) == 0 {
		return nil, errors.New("client: at least one data server required")
	}
	if cfg.KeyStoreServer == "" {
		return nil, errors.New("client: key-store server required")
	}
	if cfg.KeyManager == "" {
		return nil, errors.New("client: key manager required")
	}
	if cfg.PrivateKey == nil || cfg.Directory == nil {
		return nil, errors.New("client: access-control material required")
	}
	if cfg.ObfuscatePaths && len(cfg.PathSalt) < 16 {
		return nil, errors.New("client: ObfuscatePaths requires a PathSalt of at least 16 bytes")
	}

	codec, err := core.New(cfg.Scheme, core.WithStubSize(cfg.StubSize))
	if err != nil {
		return nil, err
	}

	var cache *keycache.Cache
	if cfg.CacheCapacity >= 0 {
		capacity := cfg.CacheCapacity
		if capacity == 0 {
			capacity = keycache.DefaultCapacity
		}
		cache, err = keycache.New(capacity)
		if err != nil {
			return nil, err
		}
	}

	kmOpts := []keymanager.ClientOption{keymanager.WithBatchSize(cfg.KeyGenBatch)}
	if cache != nil {
		kmOpts = append(kmOpts, keymanager.WithCache(cache))
	}
	if cfg.Dialer != nil {
		kmOpts = append(kmOpts, keymanager.WithDialer(keymanager.Dialer(cfg.Dialer)))
	}
	km, err := keymanager.Dial(cfg.KeyManager, kmOpts...)
	if err != nil {
		return nil, err
	}

	c := &Client{cfg: cfg, codec: codec, cache: cache, km: km}
	for _, addr := range cfg.DataServers {
		conn, err := server.DialStore(addr, cfg.Dialer)
		if err != nil {
			c.Close()
			return nil, err
		}
		c.data = append(c.data, conn)
	}
	c.keyConn, err = server.DialStore(cfg.KeyStoreServer, cfg.Dialer)
	if err != nil {
		c.Close()
		return nil, err
	}
	return c, nil
}

// Close closes all connections.
func (c *Client) Close() error {
	var firstErr error
	if c.km != nil {
		if err := c.km.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	for _, conn := range c.data {
		if err := conn.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if c.keyConn != nil {
		if err := c.keyConn.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// ClearKeyCache empties the MLE key cache (the trace experiments clear
// it between users).
func (c *Client) ClearKeyCache() {
	if c.cache != nil {
		c.cache.Clear()
	}
}

// CacheStats reports MLE key cache hits and misses.
func (c *Client) CacheStats() (hits, misses uint64) {
	if c.cache == nil {
		return 0, 0
	}
	return c.cache.Stats()
}

// UploadResult summarizes an upload.
type UploadResult struct {
	// Chunks is the number of chunks the file split into.
	Chunks int
	// LogicalBytes is the plaintext size.
	LogicalBytes uint64
	// DuplicateChunks is how many trimmed packages the servers already
	// had.
	DuplicateChunks int
	// KeyVersion is the key-state version protecting the stub file.
	KeyVersion uint64
	// AuditBook holds remote-data-checking tickets when
	// Config.AuditTickets is set; it is a client-side secret.
	AuditBook *audit.Book
}

// encChunk carries one chunk through the upload pipeline.
type encChunk struct {
	data    []byte
	fpPlain fingerprint.Fingerprint
	key     []byte
	pkg     core.Package
	fpTrim  fingerprint.Fingerprint
}

// Upload stores the file read from r under path, accessible per pol.
// The client must have an Owner (the file key comes from the owner's
// key-regression chain).
func (c *Client) Upload(path string, r io.Reader, pol *policy.Node) (*UploadResult, error) {
	if c.cfg.Owner == nil {
		return nil, ErrNoOwner
	}
	if err := pol.Validate(); err != nil {
		return nil, err
	}
	chunks, logical, err := c.chunkStream(r)
	if err != nil {
		return nil, err
	}
	return c.uploadPrepared(c.remoteName(path), chunks, logical, pol)
}

// UploadPrechunked uploads a file whose chunk boundaries the caller
// already determined (trace replay feeds recorded chunks directly, so
// chunking time is excluded as in the paper's Experiment B.2). Chunks
// must be non-empty.
func (c *Client) UploadPrechunked(path string, rawChunks [][]byte, pol *policy.Node) (*UploadResult, error) {
	if c.cfg.Owner == nil {
		return nil, ErrNoOwner
	}
	if err := pol.Validate(); err != nil {
		return nil, err
	}
	chunks := make([]encChunk, len(rawChunks))
	var logical uint64
	for i, data := range rawChunks {
		if len(data) == 0 {
			return nil, fmt.Errorf("client: pre-chunked upload: empty chunk %d", i)
		}
		chunks[i] = encChunk{data: data, fpPlain: fingerprint.New(data)}
		logical += uint64(len(data))
	}
	return c.uploadPrepared(c.remoteName(path), chunks, logical, pol)
}

// uploadPrepared runs the upload pipeline after chunking.
func (c *Client) uploadPrepared(path string, chunks []encChunk, logical uint64, pol *policy.Node) (*UploadResult, error) {
	// MLE keys: cache, then batched OPRF.
	fps := make([]fingerprint.Fingerprint, len(chunks))
	for i := range chunks {
		fps[i] = chunks[i].fpPlain
	}
	keys, err := c.km.GenerateKeys(fps)
	if err != nil {
		return nil, fmt.Errorf("client: key generation: %w", err)
	}
	for i := range chunks {
		chunks[i].key = keys[i]
	}

	// Encrypt with the worker pool.
	if err := c.encryptAll(chunks); err != nil {
		return nil, err
	}

	// File key from the owner's current key state.
	state := c.cfg.Owner.Current()
	fileKey := state.Key()

	// Stub file: concatenated stubs encrypted under the file key.
	stubFile, err := sealStubFile(chunks, fileKey[:], path, c.cfg.StubSize)
	if err != nil {
		return nil, err
	}

	// Upload trimmed packages, striped and batched.
	dups, err := c.uploadChunks(chunks)
	if err != nil {
		return nil, err
	}

	// Recipe.
	rec := &recipe.Recipe{
		Path:       path,
		Size:       logical,
		Scheme:     uint8(c.cfg.Scheme),
		KeyVersion: state.Version,
	}
	for i := range chunks {
		rec.Chunks = append(rec.Chunks, recipe.ChunkRef{
			Fingerprint: chunks[i].fpTrim,
			Size:        uint32(len(chunks[i].data)),
		})
	}

	// Key state, encrypted under the policy, plus the public
	// derivation key members need for unwinding.
	stateBlob, err := c.sealKeyState(state, pol)
	if err != nil {
		return nil, err
	}

	home := c.homeServer(path)
	if err := home.PutBlob(store.NSStubs, path, stubFile); err != nil {
		return nil, fmt.Errorf("client: upload stub file: %w", err)
	}
	if err := home.PutBlob(store.NSRecipes, path, rec.Marshal()); err != nil {
		return nil, fmt.Errorf("client: upload recipe: %w", err)
	}
	if err := c.keyConn.PutBlob(store.NSKeyStates, path, stateBlob); err != nil {
		return nil, fmt.Errorf("client: upload key state: %w", err)
	}

	result := &UploadResult{
		Chunks:          len(chunks),
		LogicalBytes:    logical,
		DuplicateChunks: dups,
		KeyVersion:      state.Version,
	}
	if c.cfg.AuditTickets > 0 && len(chunks) > 0 {
		// Generate remote-data-checking tickets while the trimmed
		// packages are still in hand — no later download needed.
		chunkData := make([]audit.ChunkData, len(chunks))
		for i := range chunks {
			chunkData[i] = audit.ChunkData{FP: chunks[i].fpTrim, Data: chunks[i].pkg.Trimmed}
		}
		book, err := audit.Generate(path, chunkData, c.cfg.AuditTickets, nil)
		if err != nil {
			return nil, fmt.Errorf("client: audit book: %w", err)
		}
		result.AuditBook = book
	}
	return result, nil
}

// Audit spends one ticket from the book: it challenges the data server
// holding the sampled chunk and verifies the response. A false return
// means the server no longer possesses the exact bytes — corruption or
// loss.
func (c *Client) Audit(book *audit.Book) (bool, error) {
	ticket, err := book.Next()
	if err != nil {
		return false, err
	}
	srv := c.data[c.serverFor(ticket.FP)]
	resp, err := srv.Challenge(ticket.FP, ticket.Nonce[:])
	if err != nil {
		return false, fmt.Errorf("client: audit challenge: %w", err)
	}
	return len(resp) == audit.DigestSize && bytes.Equal(resp, ticket.Expected[:]), nil
}

// Download retrieves and reassembles the file stored under path,
// verifying chunk integrity.
func (c *Client) Download(path string) ([]byte, error) {
	path = c.remoteName(path)
	// Key state → file key. After a lazy revocation the stored state is
	// newer than the one that sealed this file's stubs; key regression
	// lets any authorized user unwind to the file's version using the
	// public derivation key stored beside the state.
	state, derivPub, err := c.fetchKeyState(path)
	if err != nil {
		return nil, err
	}

	home := c.homeServer(path)
	recBytes, err := home.GetBlob(store.NSRecipes, path)
	if err != nil {
		return nil, fmt.Errorf("%w: recipe: %v", ErrNotFound, err)
	}
	rec, err := recipe.Unmarshal(recBytes)
	if err != nil {
		return nil, err
	}
	if rec.Scheme != uint8(c.cfg.Scheme) {
		return nil, fmt.Errorf("client: file uses scheme %d, client configured for %v", rec.Scheme, c.cfg.Scheme)
	}

	fileState := state
	if rec.KeyVersion != state.Version {
		fileState, err = keyreg.Unwind(derivPub, state, rec.KeyVersion)
		if err != nil {
			return nil, fmt.Errorf("client: unwind key state: %w", err)
		}
	}
	fileKey := fileState.Key()

	stubFile, err := home.GetBlob(store.NSStubs, path)
	if err != nil {
		return nil, fmt.Errorf("%w: stub file: %v", ErrNotFound, err)
	}
	stubs, err := openStubFile(stubFile, fileKey[:], path, c.cfg.StubSize, len(rec.Chunks))
	if err != nil {
		return nil, err
	}

	trimmed, err := c.downloadChunks(rec)
	if err != nil {
		return nil, err
	}

	// Decrypt and reassemble with the worker pool.
	out := make([]byte, 0, rec.Size)
	plain := make([][]byte, len(rec.Chunks))
	if err := c.parallelEach(len(rec.Chunks), func(i int) error {
		chunk, err := c.codec.Decrypt(core.Package{Trimmed: trimmed[i], Stub: stubs[i]})
		if err != nil {
			return fmt.Errorf("chunk %d: %w", i, err)
		}
		if uint32(len(chunk)) != rec.Chunks[i].Size {
			return fmt.Errorf("chunk %d: size %d, recipe says %d", i, len(chunk), rec.Chunks[i].Size)
		}
		plain[i] = chunk
		return nil
	}); err != nil {
		return nil, err
	}
	for _, p := range plain {
		out = append(out, p...)
	}
	if uint64(len(out)) != rec.Size {
		return nil, fmt.Errorf("client: reassembled %d bytes, recipe says %d", len(out), rec.Size)
	}
	return out, nil
}

// RekeyResult summarizes a rekey operation.
type RekeyResult struct {
	// OldVersion and NewVersion are the key-state versions before and
	// after.
	OldVersion, NewVersion uint64
	// StubBytes is the size of the re-encrypted stub file (active
	// revocation only).
	StubBytes int
}

// Rekey renews the file key for path and re-encrypts the key state under
// newPol. With active revocation the stub file is immediately
// re-encrypted under the new file key; with lazy revocation it is left
// until the next update (old versions remain derivable via key
// regression). Requires the Owner (private derivation key).
func (c *Client) Rekey(path string, newPol *policy.Node, active bool) (*RekeyResult, error) {
	path = c.remoteName(path)
	if c.cfg.Owner == nil {
		return nil, ErrNoOwner
	}
	if err := newPol.Validate(); err != nil {
		return nil, err
	}

	// Retrieve and decrypt the current key state (CP-ABE decryption
	// with the original policy).
	oldState, derivPub, err := c.fetchKeyState(path)
	if err != nil {
		return nil, err
	}

	// Derive the new key state (key regression wind).
	newState := c.cfg.Owner.Wind()

	// Encrypt the new state via CP-ABE under the new policy and upload
	// it with its metadata.
	stateBlob, err := c.sealKeyState(newState, newPol)
	if err != nil {
		return nil, err
	}
	if err := c.keyConn.PutBlob(store.NSKeyStates, path, stateBlob); err != nil {
		return nil, fmt.Errorf("client: upload key state: %w", err)
	}

	result := &RekeyResult{OldVersion: oldState.Version, NewVersion: newState.Version}
	if !active {
		return result, nil
	}

	// Active revocation: download the stubs, re-encrypt them with the
	// new file key, and upload them again.
	stubBytes, err := c.reencryptStubs(path, oldState, derivPub, newState)
	if err != nil {
		return nil, err
	}
	result.StubBytes = stubBytes
	return result, nil
}

// List returns the remote names of all stored files, sorted. With
// pathname obfuscation these are the salted hashes, not the logical
// paths — by design, the cloud (and hence this listing) never sees
// plaintext names.
func (c *Client) List() ([]string, error) {
	seen := make(map[string]bool)
	for i, conn := range c.data {
		names, err := conn.ListBlobs(store.NSRecipes)
		if err != nil {
			return nil, fmt.Errorf("client: list server %d: %w", i, err)
		}
		for _, n := range names {
			seen[n] = true
		}
	}
	out := make([]string, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Strings(out)
	return out, nil
}

// ServerStats returns per-data-server dedup statistics plus the
// key-store server's (last entry).
func (c *Client) ServerStats() ([]proto.Stats, error) {
	out := make([]proto.Stats, 0, len(c.data)+1)
	for _, conn := range c.data {
		s, err := conn.Stats()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	s, err := c.keyConn.Stats()
	if err != nil {
		return nil, err
	}
	return append(out, s), nil
}

// --- pipeline stages ---

// chunkStream splits the input into chunks and fingerprints them.
func (c *Client) chunkStream(r io.Reader) ([]encChunk, uint64, error) {
	var (
		ck  chunker.Chunker
		err error
	)
	if c.cfg.FixedChunkSize > 0 {
		ck, err = chunker.NewFixed(r, c.cfg.FixedChunkSize)
	} else {
		ck, err = chunker.NewRabin(r, c.cfg.Chunking)
	}
	if err != nil {
		return nil, 0, err
	}

	var (
		chunks  []encChunk
		logical uint64
	)
	for {
		data, err := ck.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return nil, 0, fmt.Errorf("client: chunking: %w", err)
		}
		owned := append([]byte(nil), data...)
		chunks = append(chunks, encChunk{
			data:    owned,
			fpPlain: fingerprint.New(owned),
		})
		logical += uint64(len(owned))
	}
	return chunks, logical, nil
}

// encryptAll transforms every chunk with the worker pool and computes
// trimmed-package fingerprints.
func (c *Client) encryptAll(chunks []encChunk) error {
	return c.parallelEach(len(chunks), func(i int) error {
		pkg, err := c.codec.Encrypt(chunks[i].data, chunks[i].key)
		if err != nil {
			return fmt.Errorf("chunk %d: %w", i, err)
		}
		chunks[i].pkg = pkg
		chunks[i].fpTrim = fingerprint.New(pkg.Trimmed)
		return nil
	})
}

// uploadChunks stripes trimmed packages across data servers in 4 MB
// batches, in parallel, and returns the number of duplicates reported.
func (c *Client) uploadChunks(chunks []encChunk) (int, error) {
	perServer := make([][]proto.ChunkUpload, len(c.data))
	for i := range chunks {
		s := c.serverFor(chunks[i].fpTrim)
		perServer[s] = append(perServer[s], proto.ChunkUpload{
			FP:   chunks[i].fpTrim,
			Data: chunks[i].pkg.Trimmed,
		})
	}

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		dups     int
	)
	for s := range c.data {
		if len(perServer[s]) == 0 {
			continue
		}
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for _, batch := range splitBatches(perServer[s], c.cfg.UploadBuffer) {
				flags, err := c.data[s].PutChunks(batch)
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("client: upload to server %d: %w", s, err)
					}
					mu.Unlock()
					return
				}
				mu.Lock()
				for _, d := range flags {
					if d {
						dups++
					}
				}
				mu.Unlock()
			}
		}(s)
	}
	wg.Wait()
	return dups, firstErr
}

// downloadChunks fetches every trimmed package referenced by the recipe,
// preserving order.
func (c *Client) downloadChunks(rec *recipe.Recipe) ([][]byte, error) {
	type want struct {
		idx int
		fp  fingerprint.Fingerprint
	}
	perServer := make([][]want, len(c.data))
	for i, ref := range rec.Chunks {
		s := c.serverFor(ref.Fingerprint)
		perServer[s] = append(perServer[s], want{idx: i, fp: ref.Fingerprint})
	}

	out := make([][]byte, len(rec.Chunks))
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	for s := range c.data {
		if len(perServer[s]) == 0 {
			continue
		}
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			wants := perServer[s]
			const batch = 4096
			for start := 0; start < len(wants); start += batch {
				end := start + batch
				if end > len(wants) {
					end = len(wants)
				}
				fps := make([]fingerprint.Fingerprint, 0, end-start)
				for _, w := range wants[start:end] {
					fps = append(fps, w.fp)
				}
				datas, err := c.data[s].GetChunks(fps)
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("client: download from server %d: %w", s, err)
					}
					mu.Unlock()
					return
				}
				for i, w := range wants[start:end] {
					out[w.idx] = datas[i]
				}
			}
		}(s)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// fetchKeyState downloads and decrypts the key state for path, returning
// it with the owner's public derivation key.
func (c *Client) fetchKeyState(path string) (keyreg.State, keyreg.Public, error) {
	blob, err := c.keyConn.GetBlob(store.NSKeyStates, path)
	if err != nil {
		return keyreg.State{}, keyreg.Public{}, fmt.Errorf("%w: key state: %v", ErrNotFound, err)
	}
	r := binenc.NewReader(blob)
	ctBytes, err := r.ReadBytes()
	if err != nil {
		return keyreg.State{}, keyreg.Public{}, fmt.Errorf("client: key state blob: %w", err)
	}
	pubBytes, err := r.ReadBytes()
	if err != nil {
		return keyreg.State{}, keyreg.Public{}, fmt.Errorf("client: key state blob: %w", err)
	}
	ct, err := abe.UnmarshalCiphertext(ctBytes)
	if err != nil {
		return keyreg.State{}, keyreg.Public{}, err
	}
	statePlain, err := abe.Decrypt(c.cfg.PrivateKey, ct)
	if err != nil {
		return keyreg.State{}, keyreg.Public{}, fmt.Errorf("client: decrypt key state: %w", err)
	}
	state, err := keyreg.UnmarshalState(statePlain)
	if err != nil {
		return keyreg.State{}, keyreg.Public{}, err
	}
	pub, err := keyreg.UnmarshalPublic(pubBytes)
	if err != nil {
		return keyreg.State{}, keyreg.Public{}, err
	}
	return state, pub, nil
}

// sealKeyState policy-encrypts a key state and bundles the public
// derivation key.
func (c *Client) sealKeyState(state keyreg.State, pol *policy.Node) ([]byte, error) {
	pub := c.cfg.Directory.PublicKeys(pol.Leaves())
	ct, err := abe.Encrypt(pub, pol, state.Marshal(), nil)
	if err != nil {
		return nil, fmt.Errorf("client: encrypt key state: %w", err)
	}
	w := binenc.NewWriter(512)
	w.WriteBytes(ct.Marshal())
	w.WriteBytes(c.cfg.Owner.Public().Marshal())
	return w.Bytes(), nil
}

// serverFor picks the data server responsible for a fingerprint.
func (c *Client) serverFor(fp fingerprint.Fingerprint) int {
	return int(fp[0]) % len(c.data)
}

// remoteName maps a logical path to its remote object name: the path
// itself, or a salted hash of it when pathname obfuscation is on
// (Section IV-D). The mapping is deterministic so any client holding
// the salt addresses the same objects.
func (c *Client) remoteName(path string) string {
	if !c.cfg.ObfuscatePaths {
		return path
	}
	mac := hmac.New(sha256.New, c.cfg.PathSalt)
	mac.Write([]byte(path))
	return hex.EncodeToString(mac.Sum(nil))
}

// homeServer picks the data server holding a file's recipe and stub
// file.
func (c *Client) homeServer(path string) *server.Client {
	h := fnv.New32a()
	h.Write([]byte(path))
	return c.data[int(h.Sum32())%len(c.data)]
}

// parallelEach runs fn(i) for i in [0,n) over the configured worker
// count, returning the first error.
func (c *Client) parallelEach(n int, fn func(int) error) error {
	workers := c.cfg.Workers
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		next     int
	)
	claim := func() int {
		mu.Lock()
		defer mu.Unlock()
		if firstErr != nil || next >= n {
			return -1
		}
		i := next
		next++
		return i
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := claim()
				if i < 0 {
					return
				}
				if err := fn(i); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}

// splitBatches groups uploads so each batch stays under maxBytes (always
// at least one chunk per batch).
func splitBatches(chunks []proto.ChunkUpload, maxBytes int) [][]proto.ChunkUpload {
	var (
		out   [][]proto.ChunkUpload
		cur   []proto.ChunkUpload
		bytes int
	)
	for _, c := range chunks {
		if len(cur) > 0 && bytes+len(c.Data) > maxBytes {
			out = append(out, cur)
			cur, bytes = nil, 0
		}
		cur = append(cur, c)
		bytes += len(c.Data)
	}
	if len(cur) > 0 {
		out = append(out, cur)
	}
	return out
}

// sealStubFile concatenates the chunks' stubs and encrypts them under
// the file key.
func sealStubFile(chunks []encChunk, fileKey []byte, path string, stubSize int) ([]byte, error) {
	stubs := make([][]byte, len(chunks))
	for i := range chunks {
		if len(chunks[i].pkg.Stub) != stubSize {
			return nil, fmt.Errorf("client: chunk %d stub size %d, want %d", i, len(chunks[i].pkg.Stub), stubSize)
		}
		stubs[i] = chunks[i].pkg.Stub
	}
	return sealStubs(stubs, fileKey, path)
}

// sealStubs encrypts concatenated stubs with AES-256-GCM under the file
// key, binding the file path as associated data.
func sealStubs(stubs [][]byte, fileKey []byte, path string) ([]byte, error) {
	plain := bytes.Join(stubs, nil)
	aead, err := stubAEAD(fileKey)
	if err != nil {
		return nil, err
	}
	nonce := make([]byte, aead.NonceSize())
	if _, err := io.ReadFull(rand.Reader, nonce); err != nil {
		return nil, fmt.Errorf("client: stub nonce: %w", err)
	}
	ct := aead.Seal(nil, nonce, plain, []byte(path))
	return append(nonce, ct...), nil
}

// openStubFile decrypts a stub file and splits it into per-chunk stubs.
func openStubFile(blob, fileKey []byte, path string, stubSize, chunkCount int) ([][]byte, error) {
	aead, err := stubAEAD(fileKey)
	if err != nil {
		return nil, err
	}
	if len(blob) < aead.NonceSize() {
		return nil, errors.New("client: stub file too short")
	}
	plain, err := aead.Open(nil, blob[:aead.NonceSize()], blob[aead.NonceSize():], []byte(path))
	if err != nil {
		return nil, fmt.Errorf("client: stub file authentication failed: %w", err)
	}
	if len(plain) != stubSize*chunkCount {
		return nil, fmt.Errorf("client: stub file holds %d bytes, want %d", len(plain), stubSize*chunkCount)
	}
	stubs := make([][]byte, chunkCount)
	for i := range stubs {
		stubs[i] = plain[i*stubSize : (i+1)*stubSize]
	}
	return stubs, nil
}

func stubAEAD(fileKey []byte) (cipher.AEAD, error) {
	block, err := aes.NewCipher(fileKey)
	if err != nil {
		return nil, fmt.Errorf("client: stub cipher: %w", err)
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("client: stub aead: %w", err)
	}
	return aead, nil
}
