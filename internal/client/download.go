package client

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/fingerprint"
	"repro/internal/keyreg"
	"repro/internal/recipe"
	"repro/internal/store"
)

// DownloadResult summarizes a download.
type DownloadResult struct {
	// Chunks is the number of chunks the file reassembled from.
	Chunks int
	// LogicalBytes is the plaintext size in bytes written out.
	LogicalBytes int64
	// KeyVersion is the key-state version the stub file was sealed
	// under.
	KeyVersion uint64
	// Retry reports the fault recovery this download needed. Every RPC
	// a download issues is a read, so recovery is entirely transparent
	// re-issue at the transport layer.
	Retry RetryStats
	// Elapsed is the wall-clock duration of the whole operation.
	Elapsed time.Duration
}

// fetchedWindow is one prefetched window of ciphertext chunks.
type fetchedWindow struct {
	lo, hi  int // recipe index range [lo, hi)
	trimmed [][]byte
}

// DownloadTo streams the file stored under path into w, verifying chunk
// integrity and writing strictly in recipe order. Windows of up to
// Config.SegmentBytes of chunks are prefetched in parallel from the
// data servers while the previous window decrypts on the worker pool,
// so peak memory is O(segment), not O(file). Cancelling ctx aborts the
// prefetch and decrypt promptly; w may have received a prefix of the
// file.
func (c *Client) DownloadTo(ctx context.Context, path string, w io.Writer) (*DownloadResult, error) {
	return c.downloadStream(ctx, c.remoteName(path), func(*recipe.Recipe) (io.Writer, error) {
		return w, nil
	})
}

// Download retrieves and reassembles the file stored under path. It is
// a thin wrapper over the streaming path that collects into a buffer
// pre-sized from the recipe; prefer DownloadTo for large files.
func (c *Client) Download(ctx context.Context, path string) ([]byte, error) {
	var buf bytes.Buffer
	_, err := c.downloadStream(ctx, c.remoteName(path), func(rec *recipe.Recipe) (io.Writer, error) {
		buf.Grow(int(rec.Size))
		return &buf, nil
	})
	if err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// downloadStream fetches the file's metadata, then pipelines windowed
// chunk prefetch against decryption, writing plaintext in recipe order
// to the writer open returns. open runs after the recipe is known so
// callers can size their sink.
func (c *Client) downloadStream(ctx context.Context, name string, open func(*recipe.Recipe) (io.Writer, error)) (*DownloadResult, error) {
	start := time.Now()
	retryBefore := c.retrySnapshot()
	// Key state → file key. After a lazy revocation the stored state is
	// newer than the one that sealed this file's stubs; key regression
	// lets any authorized user unwind to the file's version using the
	// public derivation key stored beside the state.
	state, derivPub, err := c.fetchKeyState(ctx, name)
	if err != nil {
		return nil, err
	}

	recBytes, err := c.router.GetBlob(ctx, store.NSRecipes, name)
	if err != nil {
		return nil, fmt.Errorf("%w: recipe: %w", ErrNotFound, err)
	}
	rec, err := recipe.Unmarshal(recBytes)
	if err != nil {
		return nil, err
	}
	if rec.Scheme != uint8(c.cfg.Scheme) {
		return nil, fmt.Errorf("client: file uses scheme %d, client configured for %v", rec.Scheme, c.cfg.Scheme)
	}

	fileState := state
	if rec.KeyVersion != state.Version {
		fileState, err = keyreg.Unwind(derivPub, state, rec.KeyVersion)
		if err != nil {
			return nil, fmt.Errorf("client: unwind key state: %w", err)
		}
	}
	fileKey := fileState.Key() //reed:secret — transient file-key copy
	defer core.Wipe(fileKey[:])

	stubFile, err := c.router.GetBlob(ctx, store.NSStubs, name)
	if err != nil {
		return nil, fmt.Errorf("%w: stub file: %w", ErrNotFound, err)
	}
	stubs, err := openStubFile(stubFile, fileKey[:], name, c.cfg.StubSize, len(rec.Chunks))
	if err != nil {
		return nil, err
	}

	w, err := open(rec)
	if err != nil {
		return nil, err
	}

	windows := splitWindows(rec, int64(c.cfg.SegmentBytes))
	pctx, cancel := context.WithCancel(ctx)
	defer cancel()

	// Producer: prefetch window i+1 while the consumer below decrypts
	// and writes window i.
	fetched := make(chan fetchedWindow, 1)
	var (
		wg          sync.WaitGroup
		producerErr error
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(fetched)
		for _, win := range windows {
			trimmed, err := c.fetchWindow(pctx, rec, win[0], win[1])
			if err != nil {
				producerErr = err
				cancel()
				return
			}
			select {
			case fetched <- fetchedWindow{lo: win[0], hi: win[1], trimmed: trimmed}:
			case <-pctx.Done():
				return
			}
		}
	}()

	var (
		total      int64
		consumeErr error
	)
	for fw := range fetched {
		n := fw.hi - fw.lo
		plain := make([][]byte, n)
		err := c.parallelEach(pctx, n, func(i int) error {
			idx := fw.lo + i
			chunk, err := c.codec.Decrypt(core.Package{Trimmed: fw.trimmed[i], Stub: stubs[idx]})
			if err != nil {
				return fmt.Errorf("chunk %d: %w", idx, err)
			}
			if uint32(len(chunk)) != rec.Chunks[idx].Size {
				return fmt.Errorf("chunk %d: size %d, recipe says %d", idx, len(chunk), rec.Chunks[idx].Size)
			}
			plain[i] = chunk
			return nil
		})
		if err != nil {
			consumeErr = err
			cancel()
			break
		}
		for _, p := range plain {
			// Writes are the only stage the context cannot interrupt
			// (w is caller-owned); re-check between chunks so a
			// cancelled download stops at chunk granularity.
			if err := pctx.Err(); err != nil {
				consumeErr = err
				break
			}
			if _, err := w.Write(p); err != nil {
				consumeErr = fmt.Errorf("client: write output: %w", err)
				cancel()
				break
			}
			total += int64(len(p))
		}
		if consumeErr != nil {
			break
		}
	}
	cancel()
	wg.Wait()
	// Drain anything the producer managed to enqueue after we broke out.
	for range fetched {
	}
	if consumeErr != nil {
		return nil, consumeErr
	}
	if producerErr != nil {
		return nil, producerErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if uint64(total) != rec.Size {
		return nil, fmt.Errorf("client: reassembled %d bytes, recipe says %d", total, rec.Size)
	}
	return &DownloadResult{
		Chunks:       len(rec.Chunks),
		LogicalBytes: total,
		KeyVersion:   rec.KeyVersion,
		Retry:        c.retryDelta(retryBefore),
		Elapsed:      time.Since(start),
	}, nil
}

// splitWindows cuts the recipe's chunk list into [lo, hi) index ranges
// of at most budget plaintext bytes each (at least one chunk per
// window).
func splitWindows(rec *recipe.Recipe, budget int64) [][2]int {
	var (
		out   [][2]int
		lo    int
		bytes int64
	)
	for i, ref := range rec.Chunks {
		if i > lo && bytes+int64(ref.Size) > budget {
			out = append(out, [2]int{lo, i})
			lo, bytes = i, 0
		}
		bytes += int64(ref.Size)
	}
	if lo < len(rec.Chunks) {
		out = append(out, [2]int{lo, len(rec.Chunks)})
	}
	return out
}

// fetchWindow fetches trimmed packages [lo, hi) of the recipe through
// the cluster router, which stripes the fingerprints across their
// owning shards in parallel and reassembles the results in recipe
// order.
func (c *Client) fetchWindow(ctx context.Context, rec *recipe.Recipe, lo, hi int) ([][]byte, error) {
	fps := make([]fingerprint.Fingerprint, hi-lo)
	for i := lo; i < hi; i++ {
		fps[i-lo] = rec.Chunks[i].Fingerprint
	}
	out, err := c.router.GetChunks(ctx, fps)
	if err != nil {
		return nil, fmt.Errorf("client: download chunks: %w", err)
	}
	return out, nil
}
