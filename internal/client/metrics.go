package client

import (
	"context"
	"fmt"

	"repro/internal/metrics"
	"repro/internal/proto"
	"repro/internal/rpcmux"
)

// initMetrics attaches the configured registry to every connection and
// registers the client-level views. Counters that other layers already
// own — the per-connection reconnect/retry counters behind RetryStats —
// are exposed as snapshot-time sums rather than copied, so the Metrics
// path and the RetryStats path always report the same numbers.
func (c *Client) initMetrics() {
	reg := c.cfg.Metrics
	if reg == nil {
		return
	}
	inst := &rpcmux.Instruments{
		Ops:      metrics.NewOpSet(reg, "rpc", proto.OpNames()),
		Inflight: reg.Gauge("rpc_inflight"),
	}
	c.km.Instrument(inst)
	for _, conn := range c.data {
		conn.Instrument(inst)
	}
	c.keyConn.Instrument(inst)

	c.stageChunk = reg.Histogram("pipeline_stage_latency", "stage", "chunk")
	c.stageKeys = reg.Histogram("pipeline_stage_latency", "stage", "keys")
	c.stageEncrypt = reg.Histogram("pipeline_stage_latency", "stage", "encrypt")
	c.stageUpload = reg.Histogram("pipeline_stage_latency", "stage", "upload")
	c.bytesInFlight = reg.Gauge("pipeline_bytes_in_flight")

	reg.SetCounterFunc("rpc_reconnects", func() uint64 { return c.retrySnapshot().Reconnects })
	reg.SetCounterFunc("rpc_retried_calls", func() uint64 { return c.retrySnapshot().RetriedCalls })
	reg.SetCounterFunc("upload_retried_batches", c.retriedBatches.Value)
}

// Metrics returns the client's registry (nil when uninstrumented).
func (c *Client) Metrics() *metrics.Registry { return c.cfg.Metrics }

// ClusterMetrics fetches a metrics snapshot from every server the
// client is connected to and merges them — plus the client's own
// registry, when configured — into one cluster-wide view. Servers
// running uninstrumented contribute empty snapshots. The key-store
// connection is skipped when it targets one of the data servers, so a
// shared server is never counted twice.
func (c *Client) ClusterMetrics(ctx context.Context) (metrics.Snapshot, error) {
	snaps := make([]metrics.Snapshot, 0, len(c.data)+3)
	if c.cfg.Metrics != nil {
		snaps = append(snaps, c.cfg.Metrics.Snapshot())
	}
	rctx, cancel := c.rpc(ctx)
	s, err := c.km.Metrics(rctx)
	cancel()
	if err != nil {
		return metrics.Snapshot{}, fmt.Errorf("client: key manager metrics: %w", err)
	}
	snaps = append(snaps, s)
	for i, conn := range c.data {
		rctx, cancel := c.rpc(ctx)
		s, err := conn.Metrics(rctx)
		cancel()
		if err != nil {
			return metrics.Snapshot{}, fmt.Errorf("client: server %d metrics: %w", i, err)
		}
		snaps = append(snaps, s)
	}
	shared := false
	for _, addr := range c.cfg.DataServers {
		if addr == c.cfg.KeyStoreServer {
			shared = true
			break
		}
	}
	if !shared {
		rctx, cancel := c.rpc(ctx)
		s, err := c.keyConn.Metrics(rctx)
		cancel()
		if err != nil {
			return metrics.Snapshot{}, fmt.Errorf("client: key-store metrics: %w", err)
		}
		snaps = append(snaps, s)
	}
	merged := metrics.Merge(snaps...)
	// Ratios are per-process and sum under Merge (two servers at 0.5
	// would read 1.0); recompute the cluster-wide value from the byte
	// gauges, which do sum meaningfully.
	if logical := merged.Gauges["dedup_logical_bytes"]; logical > 0 {
		merged.Gauges["dedup_savings_ratio"] = 1 - merged.Gauges["dedup_physical_bytes"]/logical
	}
	return merged, nil
}
