package client

import (
	"context"
	"fmt"

	"repro/internal/metrics"
	"repro/internal/proto"
	"repro/internal/rpcmux"
)

// Reserved shard-label values for the client's non-shard connections.
// Shard addresses never collide with them (they are not host:port).
const (
	sourceKeyManager = "keymanager"
	sourceKeyStore   = "keystore"
)

// initMetrics attaches the configured registry to every connection and
// registers the client-level views. Routed-call families carry a shard
// label — the shard's address on storage connections, "keymanager" and
// "keystore" on the control connections — so per-shard balance stays
// visible in one registry. Counters that other layers already own —
// the per-connection reconnect/retry counters behind RetryStats — are
// exposed as snapshot-time sums rather than copied, so the Metrics
// path and the RetryStats path always report the same numbers.
func (c *Client) initMetrics() {
	reg := c.cfg.Metrics
	if reg == nil {
		return
	}
	c.km.Instrument(&rpcmux.Instruments{
		Ops:      metrics.NewOpSet(reg, "rpc", proto.OpNames(), "shard", sourceKeyManager),
		Inflight: reg.Gauge("rpc_inflight", "shard", sourceKeyManager),
	})
	c.router.Instrument(reg)
	c.keyConn.Instrument(&rpcmux.Instruments{
		Ops:      metrics.NewOpSet(reg, "rpc", proto.OpNames(), "shard", sourceKeyStore),
		Inflight: reg.Gauge("rpc_inflight", "shard", sourceKeyStore),
	})

	c.stageChunk = reg.Histogram("pipeline_stage_latency", "stage", "chunk")
	c.stageKeys = reg.Histogram("pipeline_stage_latency", "stage", "keys")
	c.stageEncrypt = reg.Histogram("pipeline_stage_latency", "stage", "encrypt")
	c.stageUpload = reg.Histogram("pipeline_stage_latency", "stage", "upload")
	c.bytesInFlight = reg.Gauge("pipeline_bytes_in_flight")

	reg.SetCounterFunc("rpc_reconnects", func() uint64 { return c.retrySnapshot().Reconnects })
	reg.SetCounterFunc("rpc_retried_calls", func() uint64 { return c.retrySnapshot().RetriedCalls })
	reg.SetCounterFunc("upload_retried_batches", c.retriedBatches.Value)

	// Two-phase upload accounting: pre-check outcomes, trimmed bytes
	// actually sent, and — as a gauge, so dashboards can read it next
	// to the byte gauges — the bytes the protocol kept off the wire.
	reg.SetCounterFunc("upload_wholefile_hits", c.wholeFileHits.Value)
	reg.SetCounterFunc("upload_wholefile_misses", c.wholeFileMisses.Value)
	reg.SetCounterFunc("upload_wire_bytes", c.wireBytes.Value)
	reg.SetGaugeFunc("upload_skipped_bytes", func() float64 { return float64(c.skippedBytes.Value()) })
}

// Metrics returns the client's registry (nil when uninstrumented).
func (c *Client) Metrics() *metrics.Registry { return c.cfg.Metrics }

// SourceMetrics is one process's metrics snapshot, labeled with where
// it came from: "client", "keymanager", "keystore", or a storage
// shard's address.
type SourceMetrics struct {
	Source   string
	Snapshot metrics.Snapshot
}

// ClusterMetricsBySource fetches a metrics snapshot from every process
// the client is connected to — its own registry (when configured), the
// key manager, each storage shard, and the key-store server — each
// labeled with its source, so per-shard imbalance stays visible
// instead of vanishing into an anonymous merge. The key-store entry is
// omitted when it targets one of the shards, so a shared server is
// never counted twice.
func (c *Client) ClusterMetricsBySource(ctx context.Context) ([]SourceMetrics, error) {
	out := make([]SourceMetrics, 0, len(c.cfg.DataServers)+3)
	if c.cfg.Metrics != nil {
		out = append(out, SourceMetrics{Source: "client", Snapshot: c.cfg.Metrics.Snapshot()})
	}
	rctx, cancel := c.rpc(ctx)
	s, err := c.km.Metrics(rctx)
	cancel()
	if err != nil {
		return nil, fmt.Errorf("client: key manager metrics: %w", err)
	}
	out = append(out, SourceMetrics{Source: sourceKeyManager, Snapshot: s})
	shardSnaps, err := c.router.ShardMetrics(ctx)
	if err != nil {
		return nil, fmt.Errorf("client: shard metrics: %w", err)
	}
	for i, addr := range c.router.Addrs() {
		out = append(out, SourceMetrics{Source: addr, Snapshot: shardSnaps[i]})
	}
	shared := false
	for _, addr := range c.cfg.DataServers {
		if addr == c.cfg.KeyStoreServer {
			shared = true
			break
		}
	}
	if !shared {
		rctx, cancel := c.rpc(ctx)
		s, err := c.keyConn.Metrics(rctx)
		cancel()
		if err != nil {
			return nil, fmt.Errorf("client: key-store metrics: %w", err)
		}
		out = append(out, SourceMetrics{Source: sourceKeyStore, Snapshot: s})
	}
	return out, nil
}

// ClusterMetrics fetches a metrics snapshot from every server the
// client is connected to and merges them — plus the client's own
// registry, when configured — into one cluster-wide view. Servers
// running uninstrumented contribute empty snapshots. Prefer
// ClusterMetricsBySource when per-shard attribution matters.
func (c *Client) ClusterMetrics(ctx context.Context) (metrics.Snapshot, error) {
	sources, err := c.ClusterMetricsBySource(ctx)
	if err != nil {
		return metrics.Snapshot{}, err
	}
	snaps := make([]metrics.Snapshot, len(sources))
	for i, src := range sources {
		snaps[i] = src.Snapshot
	}
	merged := metrics.Merge(snaps...)
	// Ratios are per-process and sum under Merge (two servers at 0.5
	// would read 1.0); recompute the cluster-wide value from the byte
	// gauges, which do sum meaningfully.
	if logical := merged.Gauges["dedup_logical_bytes"]; logical > 0 {
		merged.Gauges["dedup_savings_ratio"] = 1 - merged.Gauges["dedup_physical_bytes"]/logical
	}
	return merged, nil
}
