package client

import (
	"context"
	"crypto/sha256"
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/fileindex"
	"repro/internal/fingerprint"
	"repro/internal/keyreg"
	"repro/internal/policy"
	"repro/internal/recipe"
	"repro/internal/store"
)

// The whole-file half of the two-phase upload protocol. Before
// chunking anything, the client hashes the file linearly and asks the
// cluster's whole-file index whether an identical file — same SHA-256,
// same size, same protection policy — is already stored. On a hit the
// upload collapses to a recipe clone: the client fetches the source
// file's recipe and stub file, takes one fresh reference on every
// chunk, and re-publishes the metadata under the new name with a
// freshly minted file key. No chunking, no OPRF round-trips, no CAONT
// transforms, and no chunk bytes on the wire.
//
// The clone preserves REED's rekeying model because nothing protected
// by the source file's key material is shared: the stubs are decrypted
// with the source file key (which requires CP-ABE-decrypting the
// source key state — the same authorization a download needs) and
// immediately re-sealed under the clone's own key-regression state,
// bound to the clone's name. Rekeying, downloading, or deleting either
// file afterwards proceeds exactly as if both had been uploaded the
// long way.
//
// Index entries are advisory: every hit is re-verified against the
// recipe's embedded FileHash before any bytes are skipped, so a stale
// entry (source overwritten or deleted) costs a round trip and a
// fallback to the full pipeline, never a wrong file.

// policyFingerprint canonicalizes a protection policy into the
// whole-file index's policy dimension. Keying the index per policy
// means a pre-check can only hit files the caller could have uploaded
// identically, and the CheckFile oracle never reveals that some
// *other* policy's user stored a given file (DESIGN.md §11).
func policyFingerprint(pol *policy.Node) [fileindex.HashSize]byte {
	return sha256.Sum256(pol.Marshal())
}

// wholeFileKey builds the index key for a file's content hash and size
// under pol.
func wholeFileKey(hash [sha256.Size]byte, size uint64, pol *policy.Node) fileindex.Key {
	return fileindex.Key{Hash: hash, Size: size, Policy: policyFingerprint(pol)}
}

// tryFastUpload attempts the whole-file fast path on a seekable
// source: hash the stream linearly, ask the index, and clone on a hit.
// Returns (result, true, nil) when the clone completed. A false second
// return means the caller must run the full pipeline; the reader has
// been repositioned at its starting offset. Errors are returned only
// for failures that doom the full pipeline too: hashing or seeking the
// source failed, or the context was cancelled.
func (c *Client) tryFastUpload(ctx context.Context, name string, rs io.ReadSeeker, pol *policy.Node) (*UploadResult, bool, error) {
	start, err := rs.Seek(0, io.SeekCurrent)
	if err != nil {
		return nil, false, fmt.Errorf("client: fast path: seek: %w", err)
	}
	h := sha256.New()
	size, err := io.Copy(h, rs)
	if err != nil {
		return nil, false, fmt.Errorf("client: fast path: hash: %w", err)
	}
	var hash [sha256.Size]byte
	h.Sum(hash[:0])

	res, err := c.checkAndClone(ctx, name, wholeFileKey(hash, uint64(size), pol), pol)
	if err != nil {
		return nil, false, err
	}
	if res != nil {
		return res, true, nil
	}
	if _, err := rs.Seek(start, io.SeekStart); err != nil {
		return nil, false, fmt.Errorf("client: fast path: rewind: %w", err)
	}
	return nil, false, nil
}

// checkAndClone runs the whole-file pre-check and, on a hit, clones
// the stored recipe. A nil, nil return means the caller should run the
// full pipeline: the index had no entry, the entry was stale, or the
// clone lost a race with a delete — all cases the full upload handles
// by construction. Only cancellation is fatal. The hit/miss counters
// count completed clones as hits and everything else as misses, so
// upload_wholefile_hits is exactly the number of uploads that skipped
// the pipeline.
func (c *Client) checkAndClone(ctx context.Context, name string, key fileindex.Key, pol *policy.Node) (*UploadResult, error) {
	srcName, found, err := c.router.CheckFile(ctx, key)
	if err != nil || !found {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		c.wholeFileMisses.Inc()
		return nil, nil
	}
	res, err := c.cloneFromRecipe(ctx, name, key, srcName, pol)
	if err != nil {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		c.wholeFileMisses.Inc()
		return nil, nil
	}
	c.wholeFileHits.Inc()
	c.skippedBytes.Add(key.Size)
	return res, nil
}

// cloneFromRecipe stores name as a clone of the recipe at srcName:
// the same chunk references (each with one fresh reference taken), a
// freshly minted file key, and a new policy-sealed key state. The
// index hit is verified against the recipe's embedded file hash before
// anything is skipped, and the chunk references are secured before any
// metadata becomes visible, so a concurrent delete of the source can
// abort the clone but never free chunks the clone already published.
func (c *Client) cloneFromRecipe(ctx context.Context, name string, key fileindex.Key, srcName string, pol *policy.Node) (*UploadResult, error) {
	start := time.Now()
	retryBefore := c.retrySnapshot()

	recBytes, err := c.router.GetBlob(ctx, store.NSRecipes, srcName)
	if err != nil {
		return nil, fmt.Errorf("client: clone: recipe %q: %w", srcName, err)
	}
	rec, err := recipe.Unmarshal(recBytes)
	if err != nil {
		return nil, fmt.Errorf("client: clone: %w", err)
	}
	// Ground-truth check: the recipe must describe exactly the bytes we
	// are about to not upload. A mismatch means the index entry went
	// stale (the source was overwritten since registration).
	if rec.FileHash != key.Hash || rec.Size != key.Size {
		return nil, fmt.Errorf("client: clone: index entry for %q is stale", srcName)
	}
	if rec.Scheme != uint8(c.cfg.Scheme) {
		return nil, fmt.Errorf("client: clone: source uses scheme %d, client scheme %d", rec.Scheme, c.cfg.Scheme)
	}

	// Authorization gate: recovering the source file key requires
	// CP-ABE-decrypting its key state — the same capability the policy
	// grants a downloader. A client that cannot open the source cannot
	// clone it.
	srcState, srcPub, err := c.fetchKeyState(ctx, srcName)
	if err != nil {
		return nil, fmt.Errorf("client: clone: %w", err)
	}
	fileState := srcState
	if srcState.Version != rec.KeyVersion {
		// Lazy revocation: the key state may have wound past the version
		// the stub file is still sealed under.
		fileState, err = keyreg.Unwind(srcPub, srcState, rec.KeyVersion)
		if err != nil {
			return nil, fmt.Errorf("client: clone: unwind key state: %w", err)
		}
	}
	srcKey := fileState.Key() //reed:secret — transient file-key copy
	defer core.Wipe(srcKey[:])
	stubBlob, err := c.router.GetBlob(ctx, store.NSStubs, srcName)
	if err != nil {
		return nil, fmt.Errorf("client: clone: stub file %q: %w", srcName, err)
	}
	stubs, err := openStubFile(stubBlob, srcKey[:], srcName, c.cfg.StubSize, len(rec.Chunks))
	if err != nil {
		return nil, fmt.Errorf("client: clone: %w", err)
	}

	// Take one fresh reference on every chunk — duplicates within the
	// recipe included, each occurrence needs its own — before any
	// metadata is published, so deleting the source cannot free chunks
	// the clone relies on.
	fps := make([]fingerprint.Fingerprint, len(rec.Chunks))
	for i := range rec.Chunks {
		fps[i] = rec.Chunks[i].Fingerprint
	}
	found, err := c.router.RefChunks(ctx, fps)
	if err != nil {
		return nil, fmt.Errorf("client: clone: ref chunks: %w", err)
	}
	missing := 0
	for _, ok := range found {
		if !ok {
			missing++
		}
	}
	if missing > 0 {
		// A concurrent delete freed some of the source's chunks between
		// the index hit and the ref. Compensate the references we did
		// take, best-effort: a failure here over-retains (the same
		// algebra as a re-sent PUT batch), never dangles data.
		taken := make([]fingerprint.Fingerprint, 0, len(fps)-missing)
		for i, ok := range found {
			if ok {
				taken = append(taken, fps[i])
			}
		}
		if len(taken) > 0 {
			_, _ = c.router.DerefChunks(ctx, taken)
		}
		return nil, fmt.Errorf("client: clone: %d source chunks no longer stored", missing)
	}

	// Mint a fresh file key: the clone's stubs seal under this client's
	// current key-regression state, bound to the clone's own name, so
	// rekey and delete treat the clone exactly like a fresh upload.
	state := c.cfg.Owner.Current()
	newKey := state.Key() //reed:secret — transient file-key copy
	defer core.Wipe(newKey[:])
	stubFile, err := c.sealStubsChecked(stubs, newKey[:], name)
	if err != nil {
		return nil, err
	}
	stateBlob, err := c.sealKeyState(state, pol)
	if err != nil {
		return nil, err
	}
	newRec := &recipe.Recipe{
		Path:       name,
		Size:       rec.Size,
		Scheme:     rec.Scheme,
		KeyVersion: state.Version,
		FileHash:   rec.FileHash,
		Chunks:     rec.Chunks,
	}
	if err := c.router.PutBlob(ctx, store.NSStubs, name, stubFile); err != nil {
		return nil, fmt.Errorf("client: upload stub file: %w", err)
	}
	if err := c.router.PutBlob(ctx, store.NSRecipes, name, newRec.Marshal()); err != nil {
		return nil, fmt.Errorf("client: upload recipe: %w", err)
	}
	if err := c.putBlob(ctx, c.keyConn, store.NSKeyStates, name, stateBlob); err != nil {
		return nil, fmt.Errorf("client: upload key state: %w", err)
	}
	c.registerWholeFile(ctx, key, name)

	return &UploadResult{
		Chunks:          len(rec.Chunks),
		LogicalBytes:    int64(rec.Size),
		DuplicateChunks: len(rec.Chunks),
		KeyVersion:      state.Version,
		WholeFileHit:    true,
		SkippedChunks:   len(rec.Chunks),
		SkippedBytes:    int64(rec.Size),
		Retry:           c.retryDelta(retryBefore),
		Elapsed:         time.Since(start),
	}, nil
}

// registerWholeFile records the (hash, size, policy) → recipe-name
// entry after a fully landed upload. Best-effort by design: the entry
// is an advisory shortcut, so a failed or cancelled registration costs
// future warm uploads their fast path, never correctness — it cannot
// fail the upload that tried it.
func (c *Client) registerWholeFile(ctx context.Context, key fileindex.Key, name string) {
	_ = c.router.RegisterFile(ctx, key, name)
}
