package client

import (
	"context"
	crand "crypto/rand"
	"crypto/sha256"
	"errors"
	"fmt"
	"io"
	mrand "math/rand"
	"sync"
	"time"

	"repro/internal/audit"
	"repro/internal/chunker"
	"repro/internal/core"
	"repro/internal/fileindex"
	"repro/internal/fingerprint"
	"repro/internal/metrics"
	"repro/internal/policy"
	"repro/internal/proto"
	"repro/internal/recipe"
	"repro/internal/store"
)

// The streaming upload engine. The input is cut into pipeline segments
// of at most a quarter of Config.SegmentBytes of plaintext chunks;
// segments flow through four overlapped stages connected by capacity-1
// channels:
//
//	chunk+fingerprint → MLE keys (batched OPRF) → CAONT encrypt → upload
//
// so segment i+1 is being chunked while segment i resolves keys,
// segment i−1 encrypts on the worker pool, and segment i−2 stripes to
// the data servers. A byteGate admission controller bounds the bytes
// alive across all stages to ~2× the segment budget; with
// quarter-budget units, the stages plus their connecting channels hold
// at most ~7/4 of the budget, so every stage keeps a unit in flight
// without the chunking stage starving. The chunking stage blocks when
// the pipeline is full and resumes as uploaded segments release their
// budget. Each stage is a single goroutine (encryption fans out
// internally but joins before emitting), so segments — and therefore
// recipe entries and stubs — stay in file order.
//
// File metadata (stub file, recipe, policy-sealed key state) is written
// only after the last segment uploads: cancelling mid-flight leaves no
// partial file visible, only unreferenced chunks that deduplicate or
// age out.

// byteGate is the pipeline's admission controller: a byte-counted
// semaphore that also records its high-water mark.
type byteGate struct {
	mu       sync.Mutex
	cond     *sync.Cond
	capacity int64
	used     int64
	peak     int64
	// gauge mirrors used for the metrics registry (nil when the client
	// is uninstrumented; a nil gauge is a no-op).
	gauge *metrics.Gauge
}

func newByteGate(capacity int64) *byteGate {
	g := &byteGate{capacity: capacity}
	g.cond = sync.NewCond(&g.mu)
	return g
}

// acquire blocks until n bytes fit under the capacity. A request larger
// than the whole capacity is admitted once the gate is empty, so one
// oversized chunk cannot deadlock the pipeline. The pipeline wakes the
// gate on cancellation; acquire then returns the context's error.
func (g *byteGate) acquire(ctx context.Context, n int64) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	for g.used > 0 && g.used+n > g.capacity {
		if err := ctx.Err(); err != nil {
			return err
		}
		g.cond.Wait()
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	g.used += n
	if g.used > g.peak {
		g.peak = g.used
	}
	g.gauge.Add(n)
	return nil
}

// force charges n bytes without blocking. The encrypt stage uses it for
// the ciphertext it just produced: blocking there would deadlock (the
// bytes already exist), and the overshoot is bounded by one segment's
// expansion because the matching plaintext is released immediately
// after.
func (g *byteGate) force(n int64) {
	g.mu.Lock()
	g.used += n
	if g.used > g.peak {
		g.peak = g.used
	}
	g.gauge.Add(n)
	g.mu.Unlock()
}

func (g *byteGate) release(n int64) {
	g.mu.Lock()
	g.used -= n
	g.gauge.Add(-n)
	g.mu.Unlock()
	g.cond.Broadcast()
}

// wake pokes blocked acquirers so they re-check their context.
func (g *byteGate) wake() { g.cond.Broadcast() }

func (g *byteGate) peakBytes() int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.peak
}

// chunkSource yields the upload's chunks one at a time. next returns
// io.EOF after the last chunk; the returned slice must be owned by the
// callee (not reused for the following chunk).
type chunkSource interface {
	next() ([]byte, error)
}

// readerSource chunks an io.Reader with the configured chunker.
type readerSource struct {
	ck chunker.Chunker
}

func (c *Client) newReaderSource(r io.Reader) (*readerSource, error) {
	var (
		ck  chunker.Chunker
		err error
	)
	if c.cfg.FixedChunkSize > 0 {
		ck, err = chunker.NewFixed(r, c.cfg.FixedChunkSize)
	} else {
		ck, err = chunker.NewRabin(r, c.cfg.Chunking)
	}
	if err != nil {
		return nil, err
	}
	return &readerSource{ck: ck}, nil
}

func (s *readerSource) next() ([]byte, error) {
	data, err := s.ck.Next()
	if err != nil {
		if errors.Is(err, io.EOF) {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("client: chunking: %w", err)
	}
	// The chunker reuses its window buffer; take ownership.
	return append([]byte(nil), data...), nil
}

// sliceSource replays caller-provided chunks (trace-driven uploads).
type sliceSource struct {
	chunks [][]byte
	pos    int
}

func (s *sliceSource) next() ([]byte, error) {
	if s.pos >= len(s.chunks) {
		return nil, io.EOF
	}
	data := s.chunks[s.pos]
	s.pos++
	return data, nil
}

// segment is one pipeline unit: up to a quarter of Config.SegmentBytes
// of chunks.
type segment struct {
	index  int
	chunks []encChunk
	bytes  int64 // plaintext bytes
}

// Upload stores the file read from r under path, accessible per pol,
// streaming it through the segment pipeline. The client must have an
// Owner (the file key comes from the owner's key-regression chain).
// Cancelling ctx aborts the pipeline without leaving a recipe or stub
// file behind, even while r blocks in Read; a Read that never returns
// strands only its reading goroutine, not the Upload call.
func (c *Client) Upload(ctx context.Context, path string, r io.Reader, pol *policy.Node) (*UploadResult, error) {
	if c.cfg.Owner == nil {
		return nil, ErrNoOwner
	}
	if err := pol.Validate(); err != nil {
		return nil, err
	}
	name := c.remoteName(path)
	// Whole-file fast path: seekable sources can be hashed and rewound,
	// so the pre-check costs one extra read pass on a miss. Audit-book
	// uploads always take the pipeline — tickets need the ciphertext
	// stream the clone never produces.
	if !c.cfg.DisableTwoPhase && c.cfg.AuditTickets == 0 {
		if rs, ok := r.(io.ReadSeeker); ok {
			res, done, err := c.tryFastUpload(ctx, name, rs, pol)
			if err != nil {
				return nil, err
			}
			if done {
				return res, nil
			}
		}
	}
	src, err := c.newReaderSource(r)
	if err != nil {
		return nil, err
	}
	return c.runUpload(ctx, name, src, pol)
}

// UploadPrechunked uploads a file whose chunk boundaries the caller
// already determined (trace replay feeds recorded chunks directly, so
// chunking time is excluded as in the paper's Experiment B.2). Chunks
// must be non-empty.
func (c *Client) UploadPrechunked(ctx context.Context, path string, rawChunks [][]byte, pol *policy.Node) (*UploadResult, error) {
	if c.cfg.Owner == nil {
		return nil, ErrNoOwner
	}
	if err := pol.Validate(); err != nil {
		return nil, err
	}
	for i, data := range rawChunks {
		if len(data) == 0 {
			return nil, fmt.Errorf("client: pre-chunked upload: empty chunk %d", i)
		}
	}
	name := c.remoteName(path)
	// The chunks are all in memory, so the whole-file pre-check costs
	// one hash pass. Same audit-book carve-out as Upload.
	if !c.cfg.DisableTwoPhase && c.cfg.AuditTickets == 0 {
		h := sha256.New()
		var size int64
		for _, data := range rawChunks {
			h.Write(data)
			size += int64(len(data))
		}
		var hash [sha256.Size]byte
		h.Sum(hash[:0])
		res, err := c.checkAndClone(ctx, name, wholeFileKey(hash, uint64(size), pol), pol)
		if err != nil {
			return nil, err
		}
		if res != nil {
			return res, nil
		}
	}
	return c.runUpload(ctx, name, &sliceSource{chunks: rawChunks}, pol)
}

// pipeFail records the pipeline's first error and cancels everything
// downstream.
type pipeFail struct {
	once   sync.Once
	err    error
	cancel context.CancelFunc
	gate   *byteGate
}

func (p *pipeFail) fail(err error) {
	p.once.Do(func() {
		p.err = err
		p.cancel()
		p.gate.wake()
	})
}

// sendSeg delivers s unless the pipeline is cancelled first.
func sendSeg(ctx context.Context, ch chan<- *segment, s *segment) bool {
	select {
	case ch <- s:
		return true
	case <-ctx.Done():
		return false
	}
}

// runUpload drives the four-stage pipeline and, once every segment has
// uploaded, finalizes the file: stub file, recipe, and key state.
func (c *Client) runUpload(ctx context.Context, name string, src chunkSource, pol *policy.Node) (*UploadResult, error) {
	start := time.Now()
	state := c.cfg.Owner.Current()
	fileKey := state.Key() //reed:secret — transient file-key copy
	defer core.Wipe(fileKey[:])

	segBytes := int64(c.cfg.SegmentBytes)
	gate := newByteGate(2 * segBytes)
	gate.gauge = c.bytesInFlight
	// Quarter-budget pipeline units: four stages and three capacity-1
	// channels hold at most ~7 units, comfortably under the gate, so
	// every stage stays busy while memory remains O(SegmentBytes).
	unit := segBytes / 4
	if unit < 1 {
		unit = 1
	}
	pctx, cancel := context.WithCancel(ctx)
	defer cancel()
	fail := &pipeFail{cancel: cancel, gate: gate}

	// If the caller cancels (rather than a stage failing), blocked
	// acquirers still need a wake-up.
	wakeDone := make(chan struct{})
	go func() {
		<-pctx.Done()
		gate.wake()
		close(wakeDone)
	}()

	chunked := make(chan *segment, 1)
	keyed := make(chan *segment, 1)
	encrypted := make(chan *segment, 1)

	var wg sync.WaitGroup

	// Source pump: reads run on their own goroutine with a select
	// handoff so cancellation returns promptly even while a read is
	// blocked (a stalled pipe, a hung network filesystem). The pump is
	// deliberately outside wg — an uninterruptible Read keeps only this
	// goroutine until it returns, never the Upload call.
	type readResult struct {
		data []byte
		err  error
	}
	reads := make(chan readResult)
	go func() {
		defer close(reads)
		for {
			data, err := src.next()
			select {
			case reads <- readResult{data, err}:
				if err != nil {
					return
				}
			case <-pctx.Done():
				return
			}
		}
	}()

	// Stage 1: chunk + fingerprint, cutting segments at the budget. The
	// per-segment latency observation covers everything from the
	// segment's first byte to its handoff — including source reads and
	// gate waits, which is what an operator watching a slow upload needs
	// to see. The stage also folds every chunk into a linear SHA-256 of
	// the whole file (chunks arrive in file order on this one
	// goroutine); the finalizer reads it after wg.Wait, stamping the
	// recipe's FileHash and registering the whole-file index entry.
	lin := sha256.New()
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(chunked)
		seg := &segment{}
		segStart := time.Now()
		for {
			var rr readResult
			var ok bool
			select {
			case rr, ok = <-reads:
			case <-pctx.Done():
				return
			}
			if !ok { // pump exited on cancellation
				return
			}
			if errors.Is(rr.err, io.EOF) {
				break
			}
			if rr.err != nil {
				fail.fail(rr.err)
				return
			}
			data := rr.data
			lin.Write(data)
			if err := gate.acquire(pctx, int64(len(data))); err != nil {
				fail.fail(err)
				return
			}
			seg.chunks = append(seg.chunks, encChunk{
				data:    data,
				size:    len(data),
				fpPlain: fingerprint.New(data),
			})
			seg.bytes += int64(len(data))
			if seg.bytes >= unit {
				c.stageChunk.Observe(time.Since(segStart))
				if !sendSeg(pctx, chunked, seg) {
					return
				}
				seg = &segment{index: seg.index + 1}
				segStart = time.Now()
			}
		}
		if len(seg.chunks) > 0 {
			c.stageChunk.Observe(time.Since(segStart))
			sendSeg(pctx, chunked, seg)
		}
	}()

	// Stage 2: MLE keys via the key manager (cache, then batched OPRF).
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(keyed)
		for seg := range chunked {
			stageStart := time.Now()
			fps := make([]fingerprint.Fingerprint, len(seg.chunks))
			for i := range seg.chunks {
				fps[i] = seg.chunks[i].fpPlain
			}
			keys, err := c.generateKeys(pctx, fps)
			if err != nil {
				fail.fail(fmt.Errorf("client: key generation: %w", err))
				return
			}
			for i := range seg.chunks {
				seg.chunks[i].key = keys[i]
			}
			c.stageKeys.Observe(time.Since(stageStart))
			if !sendSeg(pctx, keyed, seg) {
				return
			}
		}
	}()

	// Stage 3: CAONT-encrypt on the worker pool. The ciphertext is
	// force-charged and the plaintext released right after, so the gate
	// tracks live bytes without the stage ever blocking on itself.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(encrypted)
		for seg := range keyed {
			stageStart := time.Now()
			err := c.parallelEach(pctx, len(seg.chunks), func(i int) error {
				ch := &seg.chunks[i]
				pkg, err := c.codec.Encrypt(ch.data, ch.key)
				if err != nil {
					return fmt.Errorf("chunk %d: %w", i, err)
				}
				ch.pkg = pkg
				ch.fpTrim = fingerprint.New(pkg.Trimmed)
				gate.force(int64(len(pkg.Trimmed)))
				ch.data = nil
				ch.key = nil
				gate.release(int64(ch.size))
				return nil
			})
			if err != nil {
				fail.fail(err)
				return
			}
			c.stageEncrypt.Observe(time.Since(stageStart))
			if !sendSeg(pctx, encrypted, seg) {
				return
			}
		}
	}()

	// Stage 4 (this goroutine): stripe each segment to the data servers,
	// then accumulate the file-level state — recipe refs and stubs in
	// segment order, plus a reservoir sample of ciphertext chunks for
	// the audit book.
	rec := &recipe.Recipe{
		Path:       name,
		Scheme:     uint8(c.cfg.Scheme),
		KeyVersion: state.Version,
	}
	var (
		stubs    [][]byte
		logical  int64
		stats    segStats
		segments int
		resv     *auditReservoir
	)
	retryBefore := c.retrySnapshot()
	if c.cfg.AuditTickets > 0 {
		resv = newAuditReservoir(c.cfg.AuditTickets)
	}
	for seg := range encrypted {
		stageStart := time.Now()
		st, err := c.uploadSegment(pctx, seg)
		if err != nil {
			fail.fail(err)
			break
		}
		c.stageUpload.Observe(time.Since(stageStart))
		stats.dups += st.dups
		stats.skipped += st.skipped
		stats.skippedBytes += st.skippedBytes
		segments++
		logical += seg.bytes
		var released int64
		for i := range seg.chunks {
			ch := &seg.chunks[i]
			rec.Chunks = append(rec.Chunks, recipe.ChunkRef{
				Fingerprint: ch.fpTrim,
				Size:        uint32(ch.size),
			})
			stubs = append(stubs, ch.pkg.Stub)
			if resv != nil {
				resv.offer(audit.ChunkData{FP: ch.fpTrim, Data: ch.pkg.Trimmed})
			}
			released += int64(len(ch.pkg.Trimmed))
			ch.pkg.Trimmed = nil
		}
		gate.release(released)
	}
	cancel() // release the wake-up goroutine and any straggling stage
	wg.Wait()
	<-wakeDone
	if fail.err != nil {
		return nil, fail.err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Finalize: everything below is file metadata — nothing was visible
	// to a downloader before this point.
	rec.Size = uint64(logical)
	lin.Sum(rec.FileHash[:0])
	stubFile, err := c.sealStubsChecked(stubs, fileKey[:], name)
	if err != nil {
		return nil, err
	}
	stateBlob, err := c.sealKeyState(state, pol)
	if err != nil {
		return nil, err
	}
	if err := c.router.PutBlob(ctx, store.NSStubs, name, stubFile); err != nil {
		return nil, fmt.Errorf("client: upload stub file: %w", err)
	}
	if err := c.router.PutBlob(ctx, store.NSRecipes, name, rec.Marshal()); err != nil {
		return nil, fmt.Errorf("client: upload recipe: %w", err)
	}
	if err := c.putBlob(ctx, c.keyConn, store.NSKeyStates, name, stateBlob); err != nil {
		return nil, fmt.Errorf("client: upload key state: %w", err)
	}
	if !c.cfg.DisableTwoPhase {
		c.registerWholeFile(ctx, fileindex.Key{Hash: rec.FileHash, Size: rec.Size, Policy: policyFingerprint(pol)}, name)
	}

	retryStats := c.retryDelta(retryBefore)
	result := &UploadResult{
		Chunks:          len(rec.Chunks),
		LogicalBytes:    logical,
		DuplicateChunks: stats.dups,
		Segments:        segments,
		PeakBuffered:    gate.peakBytes(),
		KeyVersion:      state.Version,
		SkippedChunks:   stats.skipped,
		SkippedBytes:    stats.skippedBytes,
		Retry:           retryStats,
		Elapsed:         time.Since(start),
	}
	if resv != nil && len(resv.sample) > 0 {
		book, err := audit.Generate(name, resv.sample, c.cfg.AuditTickets, nil)
		if err != nil {
			return nil, fmt.Errorf("client: audit book: %w", err)
		}
		result.AuditBook = book
	}
	return result, nil
}

// sealStubsChecked validates stub sizes before sealing the stub file.
func (c *Client) sealStubsChecked(stubs [][]byte, fileKey []byte, name string) ([]byte, error) {
	for i, s := range stubs {
		if len(s) != c.cfg.StubSize {
			return nil, fmt.Errorf("client: chunk %d stub size %d, want %d", i, len(s), c.cfg.StubSize)
		}
	}
	return sealStubs(stubs, fileKey, name)
}

// segStats is one segment's upload accounting: duplicates the shards
// already had (including filtered ones), plus the chunks and trimmed
// bytes the two-phase filter kept off the wire entirely.
type segStats struct {
	dups         int
	skipped      int
	skippedBytes int64
}

// uploadSegment hands one segment's trimmed packages to the cluster
// router, which partitions them by ring owner, stripes each shard's
// share in parallel UploadBuffer-sized batches, and re-sends batches
// that die with their connection under Config.Retry (re-PUT is
// dedup-safe; see internal/cluster and internal/dedup). With the
// two-phase protocol on, a batched negative lookup first filters out
// chunks the cluster already stores, so warm uploads send only the
// genuinely new bytes. Filtered chunks count as duplicates — they are
// exactly the chunks a full re-PUT would have reported as dups — so
// dedup accounting is identical either way. Re-sent batches land in
// the client-level counter via the router's OnBatchRetry hook, so
// RetryStats deltas and the metrics registry read the same number.
func (c *Client) uploadSegment(ctx context.Context, seg *segment) (segStats, error) {
	ups := make([]proto.ChunkUpload, len(seg.chunks))
	for i := range seg.chunks {
		ups[i] = proto.ChunkUpload{
			FP:   seg.chunks[i].fpTrim,
			Data: seg.chunks[i].pkg.Trimmed,
		}
	}
	var st segStats
	if !c.cfg.DisableTwoPhase {
		ups, st = c.filterKnownChunks(ctx, ups)
		if err := ctx.Err(); err != nil {
			return segStats{}, err
		}
	}
	flags, err := c.router.PutChunks(ctx, ups)
	if err != nil {
		return segStats{}, fmt.Errorf("client: upload chunks: %w", err)
	}
	var sent int64
	for i := range ups {
		sent += int64(len(ups[i].Data))
	}
	c.wireBytes.Add(uint64(sent))
	st.dups = st.skipped
	for _, d := range flags {
		if d {
			st.dups++
		}
	}
	return st, nil
}

// filterKnownChunks is the warm-upload half of the two-phase protocol:
// it asks the cluster which trimmed packages it already stores
// (HasChunks, read-only) and converts the confirmed hits into
// data-free reference bumps (RefChunks), so only missing chunks ride
// the PutChunks path. Within-segment duplicates are referenced once
// per occurrence, exactly as repeated PUTs would be. Fail-open by
// design: on any transport error the full set is sent and PutChunks
// re-derives the answer from the bytes — a lost filter answer costs
// wire traffic, and a lost RefChunks ack at worst over-retains a
// reference, the same algebra as a re-sent PUT batch.
func (c *Client) filterKnownChunks(ctx context.Context, ups []proto.ChunkUpload) ([]proto.ChunkUpload, segStats) {
	fps := make([]fingerprint.Fingerprint, len(ups))
	for i := range ups {
		fps[i] = ups[i].FP
	}
	present, err := c.router.HasChunks(ctx, fps)
	if err != nil {
		return ups, segStats{}
	}
	var hitIdx []int
	for i, p := range present {
		if p {
			hitIdx = append(hitIdx, i)
		}
	}
	if len(hitIdx) == 0 {
		return ups, segStats{}
	}
	hitFPs := make([]fingerprint.Fingerprint, len(hitIdx))
	for j, i := range hitIdx {
		hitFPs[j] = fps[i]
	}
	found, err := c.router.RefChunks(ctx, hitFPs)
	if err != nil {
		return ups, segStats{}
	}
	var st segStats
	skip := make([]bool, len(ups))
	for j, i := range hitIdx {
		if found[j] {
			skip[i] = true
			st.skipped++
			st.skippedBytes += int64(len(ups[i].Data))
		}
	}
	if st.skipped == 0 {
		return ups, segStats{}
	}
	rest := ups[:0]
	for i := range ups {
		if !skip[i] {
			rest = append(rest, ups[i])
		}
	}
	c.skippedBytes.Add(uint64(st.skippedBytes))
	return rest, st
}

// auditReservoir keeps a uniform sample of at most k ciphertext chunks
// from the upload stream (reservoir sampling), so the audit book can be
// generated without retaining every trimmed package.
type auditReservoir struct {
	k      int
	seen   int
	sample []audit.ChunkData
	rng    *mrand.Rand
}

func newAuditReservoir(k int) *auditReservoir {
	var seed [8]byte
	_, _ = crand.Read(seed[:])
	var seedInt int64
	for _, b := range seed {
		seedInt = seedInt<<8 | int64(b)
	}
	return &auditReservoir{k: k, rng: mrand.New(mrand.NewSource(seedInt))}
}

func (r *auditReservoir) offer(cd audit.ChunkData) {
	r.seen++
	if len(r.sample) < r.k {
		r.sample = append(r.sample, cd)
		return
	}
	if j := r.rng.Intn(r.seen); j < r.k {
		r.sample[j] = cd
	}
}
