package client

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/keyreg"
	"repro/internal/metrics"
	"repro/internal/netem"
	"repro/internal/policy"
	"repro/internal/testenv"
)

// startSharded boots an n-shard deployment sharing the test OPRF key.
func startSharded(t testing.TB, n int) *testenv.ShardedCluster {
	t.Helper()
	sc, err := testenv.StartSharded(testenv.ShardedOptions{Shards: n, KMKey: sharedKMKey(t)})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sc.Close)
	return sc
}

// shardUser builds a client on a sharded cluster with fixed 4 KiB
// chunks, so corpora composed from shared 4 KiB-aligned blocks
// deduplicate across files and across deployments.
func shardUser(t testing.TB, sc *testenv.ShardedCluster, user string) *Client {
	t.Helper()
	owner, err := keyreg.NewOwner(keyreg.DefaultBits, nil)
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(ctx, Config{
		UserID:         user,
		Scheme:         core.SchemeBasic,
		DataServers:    sc.ShardAddrs(),
		KeyStoreServer: sc.KeyAddr,
		KeyManager:     sc.KMAddr,
		PrivateKey:     sc.Authority.IssueKey(user, []string{user}),
		Directory:      sc.Authority,
		Owner:          owner,
		FixedChunkSize: 4 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	return c
}

// shardCorpus builds files with deliberate duplicate content: /b is a
// block rotation of /a (same 4 KiB-aligned chunks, different order)
// and /c shares its first half with /a, so dedup must fire within and
// across files identically on any deployment.
func shardCorpus(t testing.TB) map[string][]byte {
	t.Helper()
	base := randomFile(t, 256<<10, 1234)
	rot := append(append([]byte(nil), base[64<<10:]...), base[:64<<10]...)
	mixed := append(append([]byte(nil), base[:128<<10]...), randomFile(t, 128<<10, 5678)...)
	return map[string][]byte{"/corpus/a": base, "/corpus/b": rot, "/corpus/c": mixed}
}

// dedupTotals sums the dedup byte gauges across a deployment's storage
// servers (read directly from the in-process registries, the same
// numbers the Metrics RPC serves).
func dedupTotals(t testing.TB, sc *testenv.ShardedCluster) (logical, physical float64) {
	t.Helper()
	for _, srv := range sc.Shards() {
		snap := srv.MetricsSnapshot()
		logical += snap.Gauges["dedup_logical_bytes"]
		physical += snap.Gauges["dedup_physical_bytes"]
	}
	return logical, physical
}

// TestShardedRoundTripAndAccounting is the tentpole acceptance test: a
// 4-shard cluster must round-trip upload → download → rekey → delete
// byte-identically, and its per-shard dedup accounting must sum to
// exactly what a single-node deployment reports for the same corpus
// (placement only partitions the fingerprint space — it must never
// change what is stored).
func TestShardedRoundTripAndAccounting(t *testing.T) {
	corpus := shardCorpus(t)
	paths := []string{"/corpus/a", "/corpus/b", "/corpus/c"}

	single := startSharded(t, 1)
	sharded := startSharded(t, 4)
	cs := shardUser(t, single, "alice")
	c4 := shardUser(t, sharded, "alice")

	for _, path := range paths {
		pol := policy.OrOfUsers([]string{"alice"})
		rs, err := cs.Upload(ctx, path, bytes.NewReader(corpus[path]), pol)
		if err != nil {
			t.Fatalf("single-node upload %s: %v", path, err)
		}
		r4, err := c4.Upload(ctx, path, bytes.NewReader(corpus[path]), pol)
		if err != nil {
			t.Fatalf("sharded upload %s: %v", path, err)
		}
		// Dedup decisions must be placement-independent.
		if rs.Chunks != r4.Chunks || rs.DuplicateChunks != r4.DuplicateChunks {
			t.Fatalf("%s: single-node %d chunks (%d dups), sharded %d chunks (%d dups)",
				path, rs.Chunks, rs.DuplicateChunks, r4.Chunks, r4.DuplicateChunks)
		}
	}

	// Per-shard dedup accounting sums to the single-node totals.
	sl, sp := dedupTotals(t, single)
	ml, mp := dedupTotals(t, sharded)
	if sl <= 0 || sp <= 0 {
		t.Fatalf("single-node totals not positive: logical=%v physical=%v", sl, sp)
	}
	if ml != sl || mp != sp {
		t.Fatalf("sharded dedup totals logical=%v physical=%v, single-node logical=%v physical=%v",
			ml, mp, sl, sp)
	}
	// Every shard took a share of the corpus — the ring actually
	// spread the fingerprint space.
	for i, srv := range sharded.Shards() {
		if srv.MetricsSnapshot().Gauges["dedup_physical_bytes"] <= 0 {
			t.Errorf("shard %d holds no chunk bytes; placement collapsed onto fewer shards", i)
		}
	}

	// Download: byte-identical on the sharded deployment.
	for _, path := range paths {
		got, err := c4.Download(ctx, path)
		if err != nil || !bytes.Equal(got, corpus[path]) {
			t.Fatalf("sharded download %s: %v", path, err)
		}
	}

	// Rekey with active revocation (stub re-encryption crosses the
	// file plane), then download again.
	if _, err := c4.Rekey(ctx, "/corpus/a", policy.OrOfUsers([]string{"alice"}), true); err != nil {
		t.Fatalf("sharded rekey: %v", err)
	}
	got, err := c4.Download(ctx, "/corpus/a")
	if err != nil || !bytes.Equal(got, corpus["/corpus/a"]) {
		t.Fatalf("download after rekey: %v", err)
	}

	// Delete every file; chunks must be fully reclaimed across shards.
	for _, path := range paths {
		if _, err := c4.Delete(ctx, path); err != nil {
			t.Fatalf("sharded delete %s: %v", path, err)
		}
		if _, err := c4.Download(ctx, path); !errors.Is(err, ErrNotFound) {
			t.Fatalf("download after delete %s: %v, want ErrNotFound", path, err)
		}
	}
	if _, mp := dedupTotals(t, sharded); mp != 0 {
		t.Fatalf("%v physical bytes survive full deletion", mp)
	}
}

// TestSingleShardDegenerate pins the 1-shard ring to today's
// single-server behavior: every chunk and every blob lands on shard 0,
// nothing routes anywhere else, and the round trip is byte-identical.
func TestSingleShardDegenerate(t *testing.T) {
	sc := startSharded(t, 1)
	c := shardUser(t, sc, "alice")
	data := randomFile(t, 128<<10, 77)
	res, err := c.Upload(ctx, "/solo", bytes.NewReader(data), policy.OrOfUsers([]string{"alice"}))
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Download(ctx, "/solo")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("round trip: %v", err)
	}
	snap := sc.Shards()[0].MetricsSnapshot()
	if uint64(snap.Counters["dedup_total_puts"]) != uint64(res.Chunks) {
		t.Fatalf("shard 0 saw %d chunk puts, upload sent %d", snap.Counters["dedup_total_puts"], res.Chunks)
	}
	health := c.ShardHealth()
	if len(health) != 1 || health[0].Down {
		t.Fatalf("unexpected shard health %+v", health)
	}
}

// TestShardedStatsBySource checks the labeled cluster-metrics view: one
// snapshot per source, attributed to the shard address, the key
// manager, or the key store — per-shard imbalance must stay visible.
func TestShardedStatsBySource(t *testing.T) {
	sc := startSharded(t, 4)
	owner, err := keyreg.NewOwner(keyreg.DefaultBits, nil)
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(ctx, Config{
		UserID:         "alice",
		Scheme:         core.SchemeBasic,
		DataServers:    sc.ShardAddrs(),
		KeyStoreServer: sc.KeyAddr,
		KeyManager:     sc.KMAddr,
		PrivateKey:     sc.Authority.IssueKey("alice", []string{"alice"}),
		Directory:      sc.Authority,
		Owner:          owner,
		FixedChunkSize: 4 << 10,
		Metrics:        metrics.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })

	data := randomFile(t, 128<<10, 99)
	if _, err := c.Upload(ctx, "/labeled", bytes.NewReader(data), policy.OrOfUsers([]string{"alice"})); err != nil {
		t.Fatal(err)
	}

	sources, err := c.ClusterMetricsBySource(ctx)
	if err != nil {
		t.Fatal(err)
	}
	bySource := make(map[string]metrics.Snapshot, len(sources))
	for _, src := range sources {
		if _, dup := bySource[src.Source]; dup {
			t.Fatalf("source %q listed twice", src.Source)
		}
		bySource[src.Source] = src.Snapshot
	}
	for _, want := range append([]string{"client", "keymanager", "keystore"}, sc.ShardAddrs()...) {
		if _, ok := bySource[want]; !ok {
			t.Fatalf("source %q missing from ClusterMetricsBySource (have %d sources)", want, len(sources))
		}
	}
	// Shard snapshots carry that shard's own accounting, not a merge.
	var chunkBytes float64
	for _, addr := range sc.ShardAddrs() {
		chunkBytes += bySource[addr].Gauges["dedup_physical_bytes"]
	}
	if chunkBytes <= 0 {
		t.Fatal("shard-attributed snapshots hold no dedup accounting")
	}
	// The client's own registry carries shard-labeled RPC families.
	labeled := 0
	for name := range bySource["client"].Histograms {
		if name == metrics.Label("rpc_latency", "op", "PutChunks", "shard", sc.ShardAddrs()[0]) {
			labeled++
		}
	}
	if labeled == 0 {
		t.Fatal("client registry has no shard-labeled rpc_latency families")
	}
}

// TestChaosShardedUploadSurvivesShardCut runs a 3-shard upload with a
// scripted mid-upload connection cut on one shard (dial order: conn 0
// is the key manager, conns 1..3 the shards): the upload must recover
// via redial plus the router's batch re-send, byte-identically.
func TestChaosShardedUploadSurvivesShardCut(t *testing.T) {
	sc := startSharded(t, 3)
	plan := netem.NewPlan(42)
	plan.OnDial(2, netem.Fault{CutAfterWriteBytes: 32 << 10})
	c := newChaosUser(t, sc.Cluster, "alice", plan)

	data := randomFile(t, 256<<10, 4242)
	pol := policy.OrOfUsers([]string{"alice"})
	res, err := c.Upload(ctx, "/chaos/shardcut", bytes.NewReader(data), pol)
	if err != nil {
		t.Fatalf("sharded upload across shard cut: %v", err)
	}
	if plan.Injected() == 0 {
		t.Fatal("fault never fired; cut offset no longer on the upload path")
	}
	if res.Retry.Reconnects < 1 {
		t.Fatalf("Retry.Reconnects = %d, want >= 1", res.Retry.Reconnects)
	}
	if res.Retry.RetriedBatches < 1 {
		t.Fatalf("Retry.RetriedBatches = %d, want >= 1 (PutChunks batches are router-retried)", res.Retry.RetriedBatches)
	}
	got, err := c.Download(ctx, "/chaos/shardcut")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("download after recovered sharded upload: %v", err)
	}
	// No shard may be marked down — the cut was transient and healed.
	for _, h := range c.ShardHealth() {
		if h.Down {
			t.Fatalf("shard %s still marked down after recovery", h.Addr)
		}
	}
}
