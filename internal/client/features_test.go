package client

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/keyreg"
	"repro/internal/policy"
	"repro/internal/store"
	"repro/internal/testenv"
)

// newObfuscatedUser builds a client with pathname obfuscation on.
func newObfuscatedUser(t testing.TB, cluster *testenv.Cluster, user string, salt []byte) *Client {
	t.Helper()
	owner, err := keyreg.NewOwner(keyreg.DefaultBits, nil)
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(ctx, Config{
		UserID:         user,
		Scheme:         core.SchemeEnhanced,
		DataServers:    cluster.DataAddrs,
		KeyStoreServer: cluster.KeyAddr,
		KeyManager:     cluster.KMAddr,
		PrivateKey:     cluster.Authority.IssueKey(user, []string{user}),
		Directory:      cluster.Authority,
		Owner:          owner,
		ObfuscatePaths: true,
		PathSalt:       salt,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	return c
}

func TestPathObfuscationRoundTrip(t *testing.T) {
	cluster := startCluster(t)
	salt := []byte("0123456789abcdef0123456789abcdef")
	c := newObfuscatedUser(t, cluster, "alice", salt)

	data := randomFile(t, 64<<10, 21)
	secretPath := "/hr/salaries-2016.xlsx"
	if _, err := c.Upload(ctx, secretPath, bytes.NewReader(data), policy.OrOfUsers([]string{"alice"})); err != nil {
		t.Fatal(err)
	}
	got, err := c.Download(ctx, secretPath)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("obfuscated round trip: %v", err)
	}
	// Rekeying works through the obfuscated name too.
	if _, err := c.Rekey(ctx, secretPath, policy.OrOfUsers([]string{"alice"}), true); err != nil {
		t.Fatal(err)
	}
	if got, err := c.Download(ctx, secretPath); err != nil || !bytes.Equal(got, data) {
		t.Fatalf("download after rekey: %v", err)
	}
}

// TestPathObfuscationHidesNames inspects what the servers actually store:
// no remote object name may contain the sensitive pathname.
func TestPathObfuscationHidesNames(t *testing.T) {
	cluster := startCluster(t)
	salt := []byte("0123456789abcdef0123456789abcdef")
	c := newObfuscatedUser(t, cluster, "alice", salt)

	data := randomFile(t, 32<<10, 22)
	if _, err := c.Upload(ctx, "/secret-project/plan.doc", bytes.NewReader(data), policy.OrOfUsers([]string{"alice"})); err != nil {
		t.Fatal(err)
	}
	for _, srv := range cluster.DataServers {
		for _, ns := range []string{store.NSRecipes, store.NSStubs} {
			names, err := srv.Backend().List(ctx, ns)
			if err != nil {
				t.Fatal(err)
			}
			for _, name := range names {
				if bytes.Contains([]byte(name), []byte("secret-project")) ||
					bytes.Contains([]byte(name), []byte("plan.doc")) {
					t.Fatalf("pathname leaked into %s blob name %q", ns, name)
				}
			}
		}
	}
}

func TestPathObfuscationSaltMatters(t *testing.T) {
	cluster := startCluster(t)
	c1 := newObfuscatedUser(t, cluster, "alice", []byte("salt-one-salt-one-salt-one-32byt"))
	c2 := newObfuscatedUser(t, cluster, "alice2", []byte("salt-two-salt-two-salt-two-32byt"))

	data := randomFile(t, 16<<10, 23)
	if _, err := c1.Upload(ctx, "/x", bytes.NewReader(data), policy.OrOfUsers([]string{"alice", "alice2"})); err != nil {
		t.Fatal(err)
	}
	// A client with a different salt addresses a different object.
	if _, err := c2.Download(ctx, "/x"); err == nil {
		t.Fatal("client with different salt found the file")
	}
}

func TestObfuscationRequiresSalt(t *testing.T) {
	cluster := startCluster(t)
	owner, err := keyreg.NewOwner(keyreg.DefaultBits, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, err = New(ctx, Config{
		UserID:         "alice",
		Scheme:         core.SchemeBasic,
		DataServers:    cluster.DataAddrs,
		KeyStoreServer: cluster.KeyAddr,
		KeyManager:     cluster.KMAddr,
		PrivateKey:     cluster.Authority.IssueKey("alice", []string{"alice"}),
		Directory:      cluster.Authority,
		Owner:          owner,
		ObfuscatePaths: true,
		PathSalt:       []byte("short"),
	})
	if err == nil {
		t.Fatal("short salt accepted")
	}
}

func TestRekeyGroup(t *testing.T) {
	cluster := startCluster(t)
	alice := newUser(t, cluster, "alice", core.SchemeEnhanced)
	bob := newUser(t, cluster, "bob", core.SchemeEnhanced)

	shared := policy.OrOfUsers([]string{"alice", "bob"})
	var paths []string
	files := make(map[string][]byte)
	for i := 0; i < 4; i++ {
		path := fmt.Sprintf("/group/file-%d", i)
		data := randomFile(t, 32<<10, int64(40+i))
		if _, err := alice.Upload(ctx, path, bytes.NewReader(data), shared); err != nil {
			t.Fatal(err)
		}
		paths = append(paths, path)
		files[path] = data
	}

	res, err := alice.RekeyGroup(ctx, paths, policy.OrOfUsers([]string{"alice"}), true)
	if err != nil {
		t.Fatal(err)
	}
	if res.Files != 4 {
		t.Fatalf("Files = %d", res.Files)
	}
	if res.PolicyEncryptions != 1 {
		t.Fatalf("PolicyEncryptions = %d, want 1 (amortized)", res.PolicyEncryptions)
	}
	if res.StubBytes == 0 {
		t.Fatal("active group rekey re-encrypted no stubs")
	}

	// Alice keeps access to every file; bob loses all of them.
	for path, data := range files {
		got, err := alice.Download(ctx, path)
		if err != nil || !bytes.Equal(got, data) {
			t.Fatalf("alice download %s after group rekey: %v", path, err)
		}
		if _, err := bob.Download(ctx, path); err == nil {
			t.Fatalf("bob still reads %s after group revocation", path)
		}
	}
}

func TestRekeyGroupLazy(t *testing.T) {
	cluster := startCluster(t)
	alice := newUser(t, cluster, "alice", core.SchemeBasic)
	pol := policy.OrOfUsers([]string{"alice"})

	var paths []string
	for i := 0; i < 3; i++ {
		path := fmt.Sprintf("/lazy-group/%d", i)
		data := randomFile(t, 16<<10, int64(50+i))
		if _, err := alice.Upload(ctx, path, bytes.NewReader(data), pol); err != nil {
			t.Fatal(err)
		}
		paths = append(paths, path)
	}
	res, err := alice.RekeyGroup(ctx, paths, pol, false)
	if err != nil {
		t.Fatal(err)
	}
	if res.StubBytes != 0 {
		t.Fatal("lazy group rekey touched stubs")
	}
	// Files remain readable via key regression.
	for _, path := range paths {
		if _, err := alice.Download(ctx, path); err != nil {
			t.Fatalf("download %s after lazy group rekey: %v", path, err)
		}
	}
}

func TestRekeyGroupValidation(t *testing.T) {
	cluster := startCluster(t)
	alice := newUser(t, cluster, "alice", core.SchemeBasic)
	pol := policy.OrOfUsers([]string{"alice"})
	if _, err := alice.RekeyGroup(ctx, nil, pol, false); err == nil {
		t.Fatal("empty path list accepted")
	}
	if _, err := alice.RekeyGroup(ctx, []string{"/absent"}, pol, false); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestList(t *testing.T) {
	cluster := startCluster(t)
	c := newUser(t, cluster, "alice", core.SchemeBasic)
	pol := policy.OrOfUsers([]string{"alice"})
	for _, path := range []string{"/z", "/a", "/m"} {
		if _, err := c.Upload(ctx, path, bytes.NewReader(randomFile(t, 8<<10, 70)), pol); err != nil {
			t.Fatal(err)
		}
	}
	names, err := c.List(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 3 || names[0] != "/a" || names[1] != "/m" || names[2] != "/z" {
		t.Fatalf("List = %v, want sorted [/a /m /z]", names)
	}
}
