package client

import (
	"context"
	"fmt"
	"time"

	"repro/internal/fingerprint"
	"repro/internal/recipe"
	"repro/internal/store"
)

// DeleteResult summarizes a deletion.
type DeleteResult struct {
	// Chunks is how many chunk references the file held.
	Chunks int
	// FreedChunks is how many of them were freed outright (no other
	// file references them); the rest remain for other files.
	FreedChunks int
	// Elapsed is the wall-clock duration of the whole operation.
	Elapsed time.Duration
}

// Delete removes the file at path with secure-deletion semantics (the
// AONT-based cryptographic deletion REED builds on [42]):
//
//  1. authorization: the caller must be able to decrypt the file's key
//     state — exactly the users the policy admits may delete;
//  2. cryptographic deletion: the key state and the encrypted stub file
//     are destroyed first, so the file is unrecoverable the moment the
//     call returns, even by an adversary holding every trimmed package;
//  3. space reclamation: each trimmed package loses one reference, and
//     chunks no other file references are garbage-collected
//     (reference-counted, since deduplication shares chunks across
//     files and users).
func (c *Client) Delete(ctx context.Context, path string) (*DeleteResult, error) {
	start := time.Now()
	path = c.remoteName(path)

	// Authorization: decrypting the key state requires a satisfying
	// private access key.
	if _, _, err := c.fetchKeyState(ctx, path); err != nil {
		return nil, err
	}

	recBytes, err := c.router.GetBlob(ctx, store.NSRecipes, path)
	if err != nil {
		return nil, fmt.Errorf("%w: recipe: %w", ErrNotFound, err)
	}
	rec, err := recipe.Unmarshal(recBytes)
	if err != nil {
		return nil, err
	}

	// Cryptographic deletion first: without the key state and stub
	// file the content is gone even if everything below fails midway.
	if err := c.deleteBlob(ctx, c.keyConn, store.NSKeyStates, path); err != nil {
		return nil, fmt.Errorf("client: delete key state: %w", err)
	}
	if err := c.router.DeleteBlob(ctx, store.NSStubs, path); err != nil {
		return nil, fmt.Errorf("client: delete stub file: %w", err)
	}
	if err := c.router.DeleteBlob(ctx, store.NSRecipes, path); err != nil {
		return nil, fmt.Errorf("client: delete recipe: %w", err)
	}

	// Space reclamation: drop one reference per chunk, fanned out to
	// the owning shards the same way uploads were.
	fps := make([]fingerprint.Fingerprint, len(rec.Chunks))
	for i, ref := range rec.Chunks {
		fps[i] = ref.Fingerprint
	}
	freed, err := c.router.DerefChunks(ctx, fps)
	if err != nil {
		return nil, fmt.Errorf("client: deref chunks: %w", err)
	}
	return &DeleteResult{
		Chunks:      len(rec.Chunks),
		FreedChunks: int(freed),
		Elapsed:     time.Since(start),
	}, nil
}
