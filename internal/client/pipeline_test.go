package client

import (
	"bytes"
	"context"
	"io"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/keyreg"
	"repro/internal/policy"
	"repro/internal/store"
	"repro/internal/testenv"
)

// newUserSegmented builds a client with a small pipeline segment so
// multi-segment behavior shows up on small test files.
func newUserSegmented(t testing.TB, cluster *testenv.Cluster, user string, segBytes, chunkSize int) *Client {
	t.Helper()
	owner, err := keyreg.NewOwner(keyreg.DefaultBits, nil)
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(ctx, Config{
		UserID:         user,
		Scheme:         core.SchemeEnhanced,
		DataServers:    cluster.DataAddrs,
		KeyStoreServer: cluster.KeyAddr,
		KeyManager:     cluster.KMAddr,
		FixedChunkSize: chunkSize,
		SegmentBytes:   segBytes,
		PrivateKey:     cluster.Authority.IssueKey(user, []string{user}),
		Directory:      cluster.Authority,
		Owner:          owner,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	return c
}

// TestStreamingBoundedMemory uploads a file 8× larger than the segment
// budget and asserts the pipeline's peak buffered bytes stay under
// twice the budget (plus per-chunk ciphertext slack), i.e. memory is
// O(segment), not O(file).
func TestStreamingBoundedMemory(t *testing.T) {
	cluster := startCluster(t)
	const (
		segBytes  = 256 << 10
		chunkSize = 8 << 10
		fileSize  = 8 * segBytes
	)
	c := newUserSegmented(t, cluster, "stream-mem", segBytes, chunkSize)
	data := randomFile(t, fileSize, 42)
	pol := policy.OrOfUsers([]string{"stream-mem"})

	res, err := c.Upload(ctx, "/stream/mem", bytes.NewReader(data), pol)
	if err != nil {
		t.Fatal(err)
	}
	if res.LogicalBytes != int64(fileSize) {
		t.Fatalf("LogicalBytes = %d, want %d", res.LogicalBytes, fileSize)
	}
	// Pipeline units are a quarter of the segment budget.
	if want := fileSize / (segBytes / 4); res.Segments != want {
		t.Fatalf("Segments = %d, want %d", res.Segments, want)
	}
	if res.Elapsed <= 0 {
		t.Fatal("Elapsed not recorded")
	}
	// The gate admits up to 2×segment; encryption transiently overshoots
	// by at most the workers' in-flight ciphertext (≈ chunk + stub each).
	slack := int64(DefaultWorkers * 2 * chunkSize)
	if limit := 2*int64(segBytes) + slack; res.PeakBuffered > limit {
		t.Fatalf("PeakBuffered = %d, want ≤ %d (2×segment + slack) for a %d-byte file",
			res.PeakBuffered, limit, fileSize)
	}
	if res.PeakBuffered <= 0 {
		t.Fatal("PeakBuffered not recorded")
	}

	// Round-trip through the streaming download path.
	var out bytes.Buffer
	dres, err := c.DownloadTo(ctx, "/stream/mem", &out)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), data) {
		t.Fatal("DownloadTo output differs from upload")
	}
	if dres.LogicalBytes != int64(fileSize) || dres.Chunks != res.Chunks {
		t.Fatalf("DownloadResult = %+v, want %d bytes / %d chunks", dres, fileSize, res.Chunks)
	}
}

// cancelAfterReader cancels a context once n bytes have been read
// through it, simulating a caller aborting mid-stream.
type cancelAfterReader struct {
	r      io.Reader
	n      int64
	read   int64
	cancel context.CancelFunc
	once   sync.Once
}

func (c *cancelAfterReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.read += int64(n)
	if c.read >= c.n {
		c.once.Do(c.cancel)
	}
	return n, err
}

// waitGoroutines polls until the goroutine count settles at or below
// the baseline (plus tolerance), failing the test otherwise.
func waitGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if g := runtime.NumGoroutine(); g <= baseline {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d running, baseline %d", runtime.NumGoroutine(), baseline)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// assertNoFileMetadata asserts no recipe or stub blob exists on any
// data server — the invariant a cancelled upload must preserve.
func assertNoFileMetadata(t *testing.T, cluster *testenv.Cluster) {
	t.Helper()
	for i, srv := range cluster.DataServers {
		for _, ns := range []string{store.NSRecipes, store.NSStubs} {
			names, err := srv.Backend().List(ctx, ns)
			if err != nil {
				t.Fatal(err)
			}
			if len(names) != 0 {
				t.Fatalf("server %d: cancelled upload left %s blobs %v", i, ns, names)
			}
		}
	}
}

func TestUploadCancellation(t *testing.T) {
	cluster := startCluster(t)
	const (
		segBytes  = 64 << 10
		chunkSize = 4 << 10
		fileSize  = 16 * segBytes
	)
	c := newUserSegmented(t, cluster, "cancel-up", segBytes, chunkSize)
	data := randomFile(t, fileSize, 7)
	pol := policy.OrOfUsers([]string{"cancel-up"})

	baseline := runtime.NumGoroutine()
	cctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	src := &cancelAfterReader{r: bytes.NewReader(data), n: fileSize / 4, cancel: cancel}

	if _, err := c.Upload(cctx, "/cancel/upload", src, pol); err == nil {
		t.Fatal("cancelled upload succeeded")
	}
	// Pipeline goroutines (stages, gate watcher, per-call conn guards)
	// must all unwind; allow a little tolerance for runtime/test-harness
	// background churn.
	waitGoroutines(t, baseline+2)
	assertNoFileMetadata(t, cluster)
}

// blockingReader yields n bytes, then blocks in Read until released —
// a stalled pipe or hung network filesystem.
type blockingReader struct {
	r       io.Reader
	n       int64
	read    int64
	stalled chan struct{}
	unblock chan struct{}
	once    sync.Once
}

func (b *blockingReader) Read(p []byte) (int, error) {
	if b.read >= b.n {
		b.once.Do(func() { close(b.stalled) })
		<-b.unblock
		return 0, io.EOF
	}
	if int64(len(p)) > b.n-b.read {
		p = p[:b.n-b.read]
	}
	n, err := b.r.Read(p)
	b.read += int64(n)
	return n, err
}

// TestUploadCancelWhileReaderBlocked verifies cancellation returns
// promptly even while the input reader is stuck in an uninterruptible
// Read (only the detached reading goroutine waits for the Read).
func TestUploadCancelWhileReaderBlocked(t *testing.T) {
	cluster := startCluster(t)
	c := newUserSegmented(t, cluster, "cancel-stall", 64<<10, 4<<10)
	pol := policy.OrOfUsers([]string{"cancel-stall"})
	src := &blockingReader{
		r:       bytes.NewReader(randomFile(t, 1<<20, 11)),
		n:       512 << 10,
		stalled: make(chan struct{}),
		unblock: make(chan struct{}),
	}
	baseline := runtime.NumGoroutine()
	cctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	errc := make(chan error, 1)
	go func() {
		_, err := c.Upload(cctx, "/cancel/stalled", src, pol)
		errc <- err
	}()
	<-src.stalled
	cancel()
	select {
	case err := <-errc:
		if err == nil {
			t.Fatal("cancelled upload succeeded")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Upload did not return while reader was blocked")
	}
	close(src.unblock) // release the stranded read, then check for leaks
	waitGoroutines(t, baseline+2)
	assertNoFileMetadata(t, cluster)
}

// cancelAfterWriter cancels a context on the first write, simulating a
// consumer aborting mid-download.
type cancelAfterWriter struct {
	cancel context.CancelFunc
	once   sync.Once
	n      int
}

func (w *cancelAfterWriter) Write(p []byte) (int, error) {
	w.n += len(p)
	w.once.Do(w.cancel)
	return len(p), nil
}

func TestDownloadCancellation(t *testing.T) {
	cluster := startCluster(t)
	const (
		segBytes  = 64 << 10
		chunkSize = 4 << 10
		fileSize  = 16 * segBytes
	)
	up := newUserSegmented(t, cluster, "cancel-down", segBytes, chunkSize)
	data := randomFile(t, fileSize, 9)
	pol := policy.OrOfUsers([]string{"cancel-down"})
	if _, err := up.Upload(ctx, "/cancel/download", bytes.NewReader(data), pol); err != nil {
		t.Fatal(err)
	}

	// A separate client downloads: cancellation retires its in-flight
	// connections, so the uploader's stay usable.
	down := newUserSegmented(t, cluster, "cancel-down", segBytes, chunkSize)
	baseline := runtime.NumGoroutine()
	cctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	w := &cancelAfterWriter{cancel: cancel}

	if _, err := down.DownloadTo(cctx, "/cancel/download", w); err == nil {
		t.Fatal("cancelled download succeeded")
	}
	if w.n >= fileSize {
		t.Fatalf("cancelled download still wrote the whole file (%d bytes)", w.n)
	}
	waitGoroutines(t, baseline+2)

	// The file itself is untouched: a fresh client still reads it back.
	got, err := up.Download(ctx, "/cancel/download")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("file corrupted after cancelled download")
	}
}

// TestUploadCancelledBeforeStart verifies an already-cancelled context
// fails fast without touching the servers.
func TestUploadCancelledBeforeStart(t *testing.T) {
	cluster := startCluster(t)
	c := newUserSegmented(t, cluster, "cancel-pre", 64<<10, 4<<10)
	pol := policy.OrOfUsers([]string{"cancel-pre"})
	cctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.Upload(cctx, "/cancel/pre", bytes.NewReader(randomFile(t, 32<<10, 3)), pol); err == nil {
		t.Fatal("upload with pre-cancelled context succeeded")
	}
	assertNoFileMetadata(t, cluster)
}
