package client

import "sync"

// workPool is the client's persistent CAONT worker pool: a fixed set of
// goroutines, sized by Config.Workers (GOMAXPROCS by default), that all
// encrypt/decrypt fan-out runs through. Persisting the workers across
// pipeline stages avoids a goroutine spawn per stage per segment, and —
// because upload encryption and download decryption share one pool —
// bounds the client's total crypto concurrency at Workers no matter how
// many operations are in flight.
//
// Locking discipline (enforced by reed-vet lockguard): pool jobs are
// submitted only from plain goroutine context, never while holding a
// pipeline or client lock — a blocked submit while holding a lock the
// running jobs need would deadlock the pipeline.
type workPool struct {
	jobs chan func()
	stop chan struct{}
	once sync.Once
	wg   sync.WaitGroup
}

func newWorkPool(workers int) *workPool {
	if workers < 1 {
		workers = 1
	}
	p := &workPool{
		jobs: make(chan func()),
		stop: make(chan struct{}),
	}
	for i := 0; i < workers; i++ {
		p.wg.Add(1)
		go p.worker()
	}
	return p
}

func (p *workPool) worker() {
	defer p.wg.Done()
	for {
		select {
		case job := <-p.jobs:
			job()
		case <-p.stop:
			return
		}
	}
}

// submit hands job to a pool worker, blocking until one accepts it. If
// the pool has been closed (Close racing a late pipeline stage), the
// job runs on a fresh goroutine instead so no caller ever deadlocks on
// a dead pool.
func (p *workPool) submit(job func()) {
	select {
	case p.jobs <- job:
	case <-p.stop:
		go job()
	}
}

// close stops the workers after their current jobs finish. Idempotent.
func (p *workPool) close() {
	p.once.Do(func() { close(p.stop) })
	p.wg.Wait()
}
