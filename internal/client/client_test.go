package client

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/keyreg"
	"repro/internal/oprf"
	"repro/internal/policy"
	"repro/internal/store"
	"repro/internal/testenv"
)

// ctx is the default context test call sites run under.
var ctx = context.Background()

// Shared expensive fixtures: one OPRF key, one keyreg owner template.
var (
	fixtureOnce sync.Once
	kmKey       *oprf.ServerKey
)

func sharedKMKey(t testing.TB) *oprf.ServerKey {
	t.Helper()
	fixtureOnce.Do(func() {
		k, err := oprf.GenerateServerKey(oprf.DefaultBits, nil)
		if err != nil {
			t.Fatalf("oprf key: %v", err)
		}
		kmKey = k
	})
	return kmKey
}

// startCluster boots a small in-process deployment.
func startCluster(t testing.TB) *testenv.Cluster {
	t.Helper()
	cluster, err := testenv.Start(testenv.Options{DataServers: 2, KMKey: sharedKMKey(t)})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cluster.Close)
	return cluster
}

// newUser builds a connected client for a user with a fresh keyreg
// owner.
func newUser(t testing.TB, cluster *testenv.Cluster, user string, scheme core.Scheme) *Client {
	t.Helper()
	owner, err := keyreg.NewOwner(keyreg.DefaultBits, nil)
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(ctx, Config{
		UserID:         user,
		Scheme:         scheme,
		DataServers:    cluster.DataAddrs,
		KeyStoreServer: cluster.KeyAddr,
		KeyManager:     cluster.KMAddr,
		PrivateKey:     cluster.Authority.IssueKey(user, []string{user}),
		Directory:      cluster.Authority,
		Owner:          owner,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	return c
}

func randomFile(t testing.TB, size int, seed int64) []byte {
	t.Helper()
	data := make([]byte, size)
	rand.New(rand.NewSource(seed)).Read(data)
	return data
}

func TestUploadDownloadRoundTrip(t *testing.T) {
	cluster := startCluster(t)
	for _, scheme := range []core.Scheme{core.SchemeBasic, core.SchemeEnhanced} {
		t.Run(scheme.String(), func(t *testing.T) {
			c := newUser(t, cluster, "alice-"+scheme.String(), scheme)
			data := randomFile(t, 256<<10, 1)
			pol := policy.OrOfUsers([]string{"alice-" + scheme.String()})

			res, err := c.Upload(ctx, "/f/"+scheme.String(), bytes.NewReader(data), pol)
			if err != nil {
				t.Fatal(err)
			}
			if res.LogicalBytes != int64(len(data)) {
				t.Fatalf("LogicalBytes = %d, want %d", res.LogicalBytes, len(data))
			}
			if res.Chunks == 0 {
				t.Fatal("no chunks")
			}

			got, err := c.Download(ctx, "/f/"+scheme.String())
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, data) {
				t.Fatal("download differs from upload")
			}
		})
	}
}

func TestDeduplicationAcrossUploads(t *testing.T) {
	cluster := startCluster(t)
	c := newUser(t, cluster, "alice", core.SchemeEnhanced)
	data := randomFile(t, 256<<10, 2)
	pol := policy.OrOfUsers([]string{"alice"})

	res1, err := c.Upload(ctx, "/v1", bytes.NewReader(data), pol)
	if err != nil {
		t.Fatal(err)
	}
	if res1.DuplicateChunks != 0 {
		t.Fatalf("first upload had %d duplicates", res1.DuplicateChunks)
	}
	res2, err := c.Upload(ctx, "/v2", bytes.NewReader(data), pol)
	if err != nil {
		t.Fatal(err)
	}
	if res2.DuplicateChunks != res2.Chunks {
		t.Fatalf("second upload: %d/%d duplicates, want all", res2.DuplicateChunks, res2.Chunks)
	}

	// Both copies still download correctly.
	for _, path := range []string{"/v1", "/v2"} {
		got, err := c.Download(ctx, path)
		if err != nil || !bytes.Equal(got, data) {
			t.Fatalf("download %s failed: %v", path, err)
		}
	}
}

func TestCrossUserDeduplication(t *testing.T) {
	cluster := startCluster(t)
	alice := newUser(t, cluster, "alice", core.SchemeEnhanced)
	bob := newUser(t, cluster, "bob", core.SchemeEnhanced)
	data := randomFile(t, 128<<10, 3)

	if _, err := alice.Upload(ctx, "/alice-file", bytes.NewReader(data), policy.OrOfUsers([]string{"alice"})); err != nil {
		t.Fatal(err)
	}
	res, err := bob.Upload(ctx, "/bob-file", bytes.NewReader(data), policy.OrOfUsers([]string{"bob"}))
	if err != nil {
		t.Fatal(err)
	}
	// Identical content under server-aided MLE deduplicates across
	// users even though the files have different policies and keys.
	if res.DuplicateChunks != res.Chunks {
		t.Fatalf("cross-user dedup: %d/%d duplicates", res.DuplicateChunks, res.Chunks)
	}
	// Each user still reads their own file.
	got, err := bob.Download(ctx, "/bob-file")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("bob download: %v", err)
	}
}

func TestAccessControl(t *testing.T) {
	cluster := startCluster(t)
	alice := newUser(t, cluster, "alice", core.SchemeEnhanced)
	mallory := newUser(t, cluster, "mallory", core.SchemeEnhanced)
	data := randomFile(t, 64<<10, 4)

	if _, err := alice.Upload(ctx, "/secret", bytes.NewReader(data), policy.OrOfUsers([]string{"alice"})); err != nil {
		t.Fatal(err)
	}
	if _, err := mallory.Download(ctx, "/secret"); err == nil {
		t.Fatal("unauthorized user downloaded the file")
	}
}

func TestSharedFileBothUsersCanRead(t *testing.T) {
	cluster := startCluster(t)
	alice := newUser(t, cluster, "alice", core.SchemeEnhanced)
	bob := newUser(t, cluster, "bob", core.SchemeEnhanced)
	data := randomFile(t, 64<<10, 5)

	pol := policy.OrOfUsers([]string{"alice", "bob"})
	if _, err := alice.Upload(ctx, "/shared", bytes.NewReader(data), pol); err != nil {
		t.Fatal(err)
	}
	for name, c := range map[string]*Client{"alice": alice, "bob": bob} {
		got, err := c.Download(ctx, "/shared")
		if err != nil || !bytes.Equal(got, data) {
			t.Fatalf("%s download: %v", name, err)
		}
	}
}

func TestLazyRevocation(t *testing.T) {
	cluster := startCluster(t)
	alice := newUser(t, cluster, "alice", core.SchemeEnhanced)
	bob := newUser(t, cluster, "bob", core.SchemeEnhanced)
	data := randomFile(t, 64<<10, 6)

	if _, err := alice.Upload(ctx, "/doc", bytes.NewReader(data), policy.OrOfUsers([]string{"alice", "bob"})); err != nil {
		t.Fatal(err)
	}

	res, err := alice.Rekey(ctx, "/doc", policy.OrOfUsers([]string{"alice"}), false /* lazy */)
	if err != nil {
		t.Fatal(err)
	}
	if res.NewVersion <= res.OldVersion {
		t.Fatalf("rekey did not advance the key state: %+v", res)
	}
	if res.StubBytes != 0 {
		t.Fatal("lazy revocation re-encrypted stubs")
	}

	// Alice can still read (stub is under the old version; key
	// regression unwinds).
	got, err := alice.Download(ctx, "/doc")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("alice download after lazy rekey: %v", err)
	}
	// Bob cannot decrypt the new key state.
	if _, err := bob.Download(ctx, "/doc"); err == nil {
		t.Fatal("revoked user still downloads after lazy revocation")
	}
}

func TestActiveRevocation(t *testing.T) {
	cluster := startCluster(t)
	alice := newUser(t, cluster, "alice", core.SchemeEnhanced)
	bob := newUser(t, cluster, "bob", core.SchemeEnhanced)
	data := randomFile(t, 64<<10, 7)

	if _, err := alice.Upload(ctx, "/doc2", bytes.NewReader(data), policy.OrOfUsers([]string{"alice", "bob"})); err != nil {
		t.Fatal(err)
	}
	res, err := alice.Rekey(ctx, "/doc2", policy.OrOfUsers([]string{"alice"}), true /* active */)
	if err != nil {
		t.Fatal(err)
	}
	if res.StubBytes == 0 {
		t.Fatal("active revocation did not re-encrypt stubs")
	}
	got, err := alice.Download(ctx, "/doc2")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("alice download after active rekey: %v", err)
	}
	if _, err := bob.Download(ctx, "/doc2"); err == nil {
		t.Fatal("revoked user still downloads after active revocation")
	}
}

func TestMultipleRekeys(t *testing.T) {
	cluster := startCluster(t)
	alice := newUser(t, cluster, "alice", core.SchemeBasic)
	data := randomFile(t, 64<<10, 8)

	if _, err := alice.Upload(ctx, "/multi", bytes.NewReader(data), policy.OrOfUsers([]string{"alice"})); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		active := i%2 == 0
		if _, err := alice.Rekey(ctx, "/multi", policy.OrOfUsers([]string{"alice"}), active); err != nil {
			t.Fatalf("rekey %d: %v", i, err)
		}
		got, err := alice.Download(ctx, "/multi")
		if err != nil || !bytes.Equal(got, data) {
			t.Fatalf("download after rekey %d: %v", i, err)
		}
	}
}

func TestDownloadMissingFile(t *testing.T) {
	cluster := startCluster(t)
	c := newUser(t, cluster, "alice", core.SchemeBasic)
	if _, err := c.Download(ctx, "/absent"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("error = %v, want ErrNotFound", err)
	}
}

func TestUploadWithoutOwner(t *testing.T) {
	cluster := startCluster(t)
	c, err := New(ctx, Config{
		UserID:         "noowner",
		Scheme:         core.SchemeBasic,
		DataServers:    cluster.DataAddrs,
		KeyStoreServer: cluster.KeyAddr,
		KeyManager:     cluster.KMAddr,
		PrivateKey:     cluster.Authority.IssueKey("noowner", []string{"noowner"}),
		Directory:      cluster.Authority,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, err = c.Upload(ctx, "/x", bytes.NewReader([]byte("data")), policy.OrOfUsers([]string{"noowner"}))
	if !errors.Is(err, ErrNoOwner) {
		t.Fatalf("error = %v, want ErrNoOwner", err)
	}
}

func TestConfigValidation(t *testing.T) {
	cluster := startCluster(t)
	owner, err := keyreg.NewOwner(keyreg.DefaultBits, nil)
	if err != nil {
		t.Fatal(err)
	}
	valid := Config{
		UserID:         "u",
		Scheme:         core.SchemeBasic,
		DataServers:    cluster.DataAddrs,
		KeyStoreServer: cluster.KeyAddr,
		KeyManager:     cluster.KMAddr,
		PrivateKey:     cluster.Authority.IssueKey("u", []string{"u"}),
		Directory:      cluster.Authority,
		Owner:          owner,
	}
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{"no user", func(c *Config) { c.UserID = "" }},
		{"no data servers", func(c *Config) { c.DataServers = nil }},
		{"no key store", func(c *Config) { c.KeyStoreServer = "" }},
		{"no key manager", func(c *Config) { c.KeyManager = "" }},
		{"no private key", func(c *Config) { c.PrivateKey = nil }},
		{"no directory", func(c *Config) { c.Directory = nil }},
		{"bad scheme", func(c *Config) { c.Scheme = 0 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := valid
			tt.mutate(&cfg)
			if _, err := New(ctx, cfg); err == nil {
				t.Fatal("expected error")
			}
		})
	}
}

func TestEmptyFileUpload(t *testing.T) {
	cluster := startCluster(t)
	c := newUser(t, cluster, "alice", core.SchemeBasic)
	res, err := c.Upload(ctx, "/empty", bytes.NewReader(nil), policy.OrOfUsers([]string{"alice"}))
	if err != nil {
		t.Fatal(err)
	}
	if res.Chunks != 0 {
		t.Fatalf("empty file produced %d chunks", res.Chunks)
	}
	got, err := c.Download(ctx, "/empty")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("empty file downloaded %d bytes", len(got))
	}
}

func TestFixedChunking(t *testing.T) {
	cluster := startCluster(t)
	owner, err := keyreg.NewOwner(keyreg.DefaultBits, nil)
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(ctx, Config{
		UserID:         "alice",
		Scheme:         core.SchemeEnhanced,
		DataServers:    cluster.DataAddrs,
		KeyStoreServer: cluster.KeyAddr,
		KeyManager:     cluster.KMAddr,
		FixedChunkSize: 4096,
		PrivateKey:     cluster.Authority.IssueKey("alice", []string{"alice"}),
		Directory:      cluster.Authority,
		Owner:          owner,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	data := randomFile(t, 100<<10, 9)
	res, err := c.Upload(ctx, "/fixed", bytes.NewReader(data), policy.OrOfUsers([]string{"alice"}))
	if err != nil {
		t.Fatal(err)
	}
	if want := (len(data) + 4095) / 4096; res.Chunks != want {
		t.Fatalf("fixed chunking produced %d chunks, want %d", res.Chunks, want)
	}
	got, err := c.Download(ctx, "/fixed")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("fixed chunking round trip: %v", err)
	}
}

func TestKeyCacheSpeedsSecondUpload(t *testing.T) {
	cluster := startCluster(t)
	c := newUser(t, cluster, "alice", core.SchemeEnhanced)
	// This test exercises the MLE key cache on a duplicate upload; the
	// whole-file fast path would skip key generation entirely.
	c.cfg.DisableTwoPhase = true
	data := randomFile(t, 128<<10, 10)
	pol := policy.OrOfUsers([]string{"alice"})

	if _, err := c.Upload(ctx, "/c1", bytes.NewReader(data), pol); err != nil {
		t.Fatal(err)
	}
	evalsAfterFirst := cluster.KMEvaluations()
	if _, err := c.Upload(ctx, "/c2", bytes.NewReader(data), pol); err != nil {
		t.Fatal(err)
	}
	if cluster.KMEvaluations() != evalsAfterFirst {
		t.Fatal("second upload of identical data hit the key manager despite the cache")
	}
	hits, _ := c.CacheStats()
	if hits == 0 {
		t.Fatal("no cache hits recorded")
	}
}

func TestClearKeyCache(t *testing.T) {
	cluster := startCluster(t)
	c := newUser(t, cluster, "alice", core.SchemeEnhanced)
	// Same carve-out as TestKeyCacheSpeedsSecondUpload: the clone path
	// would bypass the key manager with or without a cache.
	c.cfg.DisableTwoPhase = true
	data := randomFile(t, 64<<10, 11)
	pol := policy.OrOfUsers([]string{"alice"})

	if _, err := c.Upload(ctx, "/cc1", bytes.NewReader(data), pol); err != nil {
		t.Fatal(err)
	}
	c.ClearKeyCache()
	evals := cluster.KMEvaluations()
	if _, err := c.Upload(ctx, "/cc2", bytes.NewReader(data), pol); err != nil {
		t.Fatal(err)
	}
	if cluster.KMEvaluations() == evals {
		t.Fatal("cache cleared but no new key manager evaluations")
	}
}

func TestTamperedChunkDetected(t *testing.T) {
	cluster := startCluster(t)
	c := newUser(t, cluster, "alice", core.SchemeEnhanced)
	data := randomFile(t, 64<<10, 12)
	if _, err := c.Upload(ctx, "/tamper", bytes.NewReader(data), policy.OrOfUsers([]string{"alice"})); err != nil {
		t.Fatal(err)
	}
	// Seal open containers to the backends, then corrupt them.
	for _, srv := range cluster.DataServers {
		if err := srv.Flush(ctx); err != nil {
			t.Fatal(err)
		}
	}
	corruptAll(t, cluster)
	if _, err := c.Download(ctx, "/tamper"); err == nil {
		t.Fatal("download of tampered data succeeded")
	}
}

// corruptAll flips a byte in every stored container on every data
// server.
func corruptAll(t *testing.T, cluster *testenv.Cluster) {
	t.Helper()
	for _, srv := range cluster.DataServers {
		backend := srv.Backend()
		names, err := backend.List(ctx, store.NSContainers)
		if err != nil {
			t.Fatal(err)
		}
		for _, name := range names {
			blob, err := backend.Get(ctx, store.NSContainers, name)
			if err != nil {
				t.Fatal(err)
			}
			if len(blob) == 0 {
				continue
			}
			blob[len(blob)/2] ^= 0xFF
			if err := backend.Put(ctx, store.NSContainers, name, blob); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestServerStats(t *testing.T) {
	cluster := startCluster(t)
	c := newUser(t, cluster, "alice", core.SchemeBasic)
	data := randomFile(t, 128<<10, 13)
	if _, err := c.Upload(ctx, "/stats", bytes.NewReader(data), policy.OrOfUsers([]string{"alice"})); err != nil {
		t.Fatal(err)
	}
	stats, err := c.ServerStats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// 2 data servers + 1 key store.
	if len(stats) != 3 {
		t.Fatalf("stats count = %d", len(stats))
	}
	var physical uint64
	for _, s := range stats {
		physical += s.PhysicalBytes
	}
	if physical == 0 {
		t.Fatal("no physical bytes recorded")
	}
}

func TestLargeFileManyBatches(t *testing.T) {
	if testing.Short() {
		t.Skip("large file test")
	}
	cluster := startCluster(t)
	c := newUser(t, cluster, "alice", core.SchemeEnhanced)
	// 12 MB forces multiple 4 MB upload batches per server.
	data := randomFile(t, 12<<20, 14)
	if _, err := c.Upload(ctx, "/large", bytes.NewReader(data), policy.OrOfUsers([]string{"alice"})); err != nil {
		t.Fatal(err)
	}
	got, err := c.Download(ctx, "/large")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("large file round trip: %v", err)
	}
}
