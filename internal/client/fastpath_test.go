package client

import (
	"bytes"
	"testing"

	"repro/internal/core"
	"repro/internal/policy"
)

// TestWholeFileFastPath: re-uploading identical bytes under the same
// policy must take the clone path — no chunk data on the wire — and
// both files must download bit-identically.
func TestWholeFileFastPath(t *testing.T) {
	cluster := startCluster(t)
	c := newUser(t, cluster, "alice", core.SchemeEnhanced)
	data := randomFile(t, 256<<10, 71)
	pol := policy.OrOfUsers([]string{"alice"})

	cold, err := c.Upload(ctx, "/fp/source", bytes.NewReader(data), pol)
	if err != nil {
		t.Fatal(err)
	}
	if cold.WholeFileHit {
		t.Fatal("first upload of unique data reported a whole-file hit")
	}
	warm, err := c.Upload(ctx, "/fp/clone", bytes.NewReader(data), pol)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.WholeFileHit {
		t.Fatal("identical re-upload did not take the fast path")
	}
	if warm.SkippedBytes != int64(len(data)) {
		t.Fatalf("SkippedBytes = %d, want %d", warm.SkippedBytes, len(data))
	}
	if warm.Chunks != cold.Chunks || warm.DuplicateChunks != warm.Chunks {
		t.Fatalf("clone chunks = %d (dups %d), want %d all-dup", warm.Chunks, warm.DuplicateChunks, cold.Chunks)
	}
	for _, path := range []string{"/fp/source", "/fp/clone"} {
		got, err := c.Download(ctx, path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("%s: downloaded bytes differ", path)
		}
	}
}

// TestClonedFileEquivalence is the acceptance bar for the clone path:
// a cloned file must be indistinguishable from a freshly uploaded one
// under every later operation — download, lazy rekey, active rekey,
// and delete — on a sharded cluster.
func TestClonedFileEquivalence(t *testing.T) {
	cluster := startCluster(t) // two shards: clone spans the ring
	c := newUser(t, cluster, "alice", core.SchemeEnhanced)
	data := randomFile(t, 300<<10, 72)
	pol := policy.OrOfUsers([]string{"alice"})

	if _, err := c.Upload(ctx, "/eq/fresh", bytes.NewReader(data), pol); err != nil {
		t.Fatal(err)
	}
	warm, err := c.Upload(ctx, "/eq/clone", bytes.NewReader(data), pol)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.WholeFileHit {
		t.Fatal("clone path not taken")
	}

	// Lazy rekey on the clone, active rekey on the fresh file: both
	// must keep downloading the original bytes.
	newPol := policy.OrOfUsers([]string{"alice", "carol"})
	if _, err := c.Rekey(ctx, "/eq/clone", newPol, false); err != nil {
		t.Fatalf("lazy rekey of clone: %v", err)
	}
	if _, err := c.Rekey(ctx, "/eq/fresh", newPol, true); err != nil {
		t.Fatalf("active rekey of fresh: %v", err)
	}
	// Active rekey on the clone too — it re-seals the clone's own stub
	// file, which only works if the clone's stubs are sealed exactly
	// like a fresh upload's.
	if _, err := c.Rekey(ctx, "/eq/clone", newPol, true); err != nil {
		t.Fatalf("active rekey of clone: %v", err)
	}
	for _, path := range []string{"/eq/fresh", "/eq/clone"} {
		got, err := c.Download(ctx, path)
		if err != nil {
			t.Fatalf("%s after rekey: %v", path, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("%s after rekey: bytes differ", path)
		}
	}

	// Deleting the source must not free chunks the clone references.
	del, err := c.Delete(ctx, "/eq/fresh")
	if err != nil {
		t.Fatal(err)
	}
	if del.FreedChunks != 0 {
		t.Fatalf("deleting the source freed %d chunks the clone references", del.FreedChunks)
	}
	got, err := c.Download(ctx, "/eq/clone")
	if err != nil {
		t.Fatalf("clone after source delete: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("clone corrupted by source delete")
	}
	// Deleting the clone — now the last reference — frees everything.
	del, err = c.Delete(ctx, "/eq/clone")
	if err != nil {
		t.Fatal(err)
	}
	if del.FreedChunks != del.Chunks {
		t.Fatalf("deleting the last file freed %d of %d chunks", del.FreedChunks, del.Chunks)
	}
	if _, err := c.Download(ctx, "/eq/clone"); err == nil {
		t.Fatal("deleted clone still downloads")
	}
}

// TestWarmUploadFiltering: a file sharing most of its chunks with a
// stored one misses the whole-file index but must skip the shared
// chunks via the batched negative lookup — and the skipped references
// must count, so deleting the first file cannot corrupt the second.
func TestWarmUploadFiltering(t *testing.T) {
	cluster := startCluster(t)
	c := newUser(t, cluster, "alice", core.SchemeEnhanced)
	data := randomFile(t, 256<<10, 73)
	pol := policy.OrOfUsers([]string{"alice"})

	if _, err := c.Upload(ctx, "/warm/a", bytes.NewReader(data), pol); err != nil {
		t.Fatal(err)
	}
	// Same prefix, different tail: whole-file hash differs, most chunk
	// fingerprints do not.
	edited := append(append([]byte(nil), data...), randomFile(t, 4<<10, 74)...)
	res, err := c.Upload(ctx, "/warm/b", bytes.NewReader(edited), pol)
	if err != nil {
		t.Fatal(err)
	}
	if res.WholeFileHit {
		t.Fatal("edited file reported a whole-file hit")
	}
	if res.SkippedChunks == 0 {
		t.Fatal("warm upload filtered no chunks")
	}
	if res.SkippedChunks > res.DuplicateChunks {
		t.Fatalf("SkippedChunks %d > DuplicateChunks %d", res.SkippedChunks, res.DuplicateChunks)
	}
	if _, err := c.Delete(ctx, "/warm/a"); err != nil {
		t.Fatal(err)
	}
	got, err := c.Download(ctx, "/warm/b")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, edited) {
		t.Fatal("filtered upload corrupted by deleting its dedup sibling")
	}
}

// TestFastPathPolicyIsolation: identical bytes under a different
// protection policy must not hit the whole-file index — the pre-check
// must never become an oracle across policy boundaries.
func TestFastPathPolicyIsolation(t *testing.T) {
	cluster := startCluster(t)
	c := newUser(t, cluster, "alice", core.SchemeEnhanced)
	data := randomFile(t, 128<<10, 75)

	if _, err := c.Upload(ctx, "/pol/a", bytes.NewReader(data), policy.OrOfUsers([]string{"alice"})); err != nil {
		t.Fatal(err)
	}
	res, err := c.Upload(ctx, "/pol/b", bytes.NewReader(data), policy.OrOfUsers([]string{"alice", "dave"}))
	if err != nil {
		t.Fatal(err)
	}
	if res.WholeFileHit {
		t.Fatal("fast path crossed a policy boundary")
	}
	// Chunk-level dedup still applies across policies (REED's point):
	// the bytes dedupe, only the fast path is policy-scoped.
	if res.DuplicateChunks != res.Chunks {
		t.Fatalf("cross-policy re-upload deduped %d of %d chunks", res.DuplicateChunks, res.Chunks)
	}
}

// TestFastPathDisabled: the opt-out must restore the baseline pipeline
// wholesale — no hit, no filtering, full duplicate detection via PUT.
func TestFastPathDisabled(t *testing.T) {
	cluster := startCluster(t)
	c := newUser(t, cluster, "alice", core.SchemeEnhanced)
	c.cfg.DisableTwoPhase = true
	data := randomFile(t, 128<<10, 76)
	pol := policy.OrOfUsers([]string{"alice"})

	if _, err := c.Upload(ctx, "/off/a", bytes.NewReader(data), pol); err != nil {
		t.Fatal(err)
	}
	res, err := c.Upload(ctx, "/off/b", bytes.NewReader(data), pol)
	if err != nil {
		t.Fatal(err)
	}
	if res.WholeFileHit || res.SkippedChunks != 0 || res.SkippedBytes != 0 {
		t.Fatalf("two-phase artifacts with the protocol disabled: %+v", res)
	}
	if res.DuplicateChunks != res.Chunks {
		t.Fatalf("baseline dedup broken: %d of %d dups", res.DuplicateChunks, res.Chunks)
	}
}

// TestFastPathStaleEntryFallsBack: overwriting a registered file makes
// its index entry stale; a later identical upload of the *old* bytes
// must detect the mismatch against the recipe's FileHash and fall back
// to the full pipeline instead of cloning the wrong file.
func TestFastPathStaleEntryFallsBack(t *testing.T) {
	cluster := startCluster(t)
	c := newUser(t, cluster, "alice", core.SchemeEnhanced)
	pol := policy.OrOfUsers([]string{"alice"})
	v1 := randomFile(t, 128<<10, 77)
	v2 := randomFile(t, 96<<10, 78)

	if _, err := c.Upload(ctx, "/stale/f", bytes.NewReader(v1), pol); err != nil {
		t.Fatal(err)
	}
	// Overwrite in place with DisableTwoPhase so no fresh v2 entry is
	// registered; the v1 entry now points at a recipe holding v2.
	c.cfg.DisableTwoPhase = true
	if _, err := c.Upload(ctx, "/stale/f", bytes.NewReader(v2), pol); err != nil {
		t.Fatal(err)
	}
	c.cfg.DisableTwoPhase = false

	res, err := c.Upload(ctx, "/stale/copy", bytes.NewReader(v1), pol)
	if err != nil {
		t.Fatal(err)
	}
	if res.WholeFileHit {
		t.Fatal("stale index entry produced a clone")
	}
	got, err := c.Download(ctx, "/stale/copy")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, v1) {
		t.Fatal("fallback upload stored wrong bytes")
	}
}

// TestPrechunkedFastPath: the pre-chunked entry point shares the
// whole-file pre-check.
func TestPrechunkedFastPath(t *testing.T) {
	cluster := startCluster(t)
	c := newUser(t, cluster, "alice", core.SchemeEnhanced)
	pol := policy.OrOfUsers([]string{"alice"})
	chunks := [][]byte{
		randomFile(t, 8<<10, 79),
		randomFile(t, 8<<10, 80),
		randomFile(t, 4<<10, 81),
	}
	if _, err := c.UploadPrechunked(ctx, "/pc/a", chunks, pol); err != nil {
		t.Fatal(err)
	}
	res, err := c.UploadPrechunked(ctx, "/pc/b", chunks, pol)
	if err != nil {
		t.Fatal(err)
	}
	if !res.WholeFileHit {
		t.Fatal("pre-chunked re-upload did not take the fast path")
	}
	var want []byte
	for _, ch := range chunks {
		want = append(want, ch...)
	}
	got, err := c.Download(ctx, "/pc/b")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("pre-chunked clone downloads wrong bytes")
	}
}
