package client

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/keyreg"
	"repro/internal/policy"
	"repro/internal/store"
)

func TestDeleteRemovesFile(t *testing.T) {
	cluster := startCluster(t)
	c := newUser(t, cluster, "alice", core.SchemeEnhanced)
	data := randomFile(t, 128<<10, 80)
	pol := policy.OrOfUsers([]string{"alice"})

	up, err := c.Upload(ctx, "/del-me", bytes.NewReader(data), pol)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Delete(ctx, "/del-me")
	if err != nil {
		t.Fatal(err)
	}
	if res.Chunks != up.Chunks {
		t.Fatalf("deleted %d chunk refs, uploaded %d", res.Chunks, up.Chunks)
	}
	if res.FreedChunks != up.Chunks {
		t.Fatalf("freed %d of %d chunks; nothing else references them", res.FreedChunks, up.Chunks)
	}
	if _, err := c.Download(ctx, "/del-me"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("download after delete = %v, want ErrNotFound", err)
	}
	// Physical space was reclaimed.
	stats, err := c.ServerStats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	var physical uint64
	for _, s := range stats {
		physical += s.PhysicalBytes
	}
	if physical != 0 {
		t.Fatalf("physical bytes after deleting the only file = %d", physical)
	}
}

// TestDeleteRespectsSharing is the dedup-critical property: deleting one
// file must not free chunks another file still references.
func TestDeleteRespectsSharing(t *testing.T) {
	cluster := startCluster(t)
	c := newUser(t, cluster, "alice", core.SchemeEnhanced)
	data := randomFile(t, 128<<10, 81)
	pol := policy.OrOfUsers([]string{"alice"})

	if _, err := c.Upload(ctx, "/copy-1", bytes.NewReader(data), pol); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Upload(ctx, "/copy-2", bytes.NewReader(data), pol); err != nil {
		t.Fatal(err)
	}

	res, err := c.Delete(ctx, "/copy-1")
	if err != nil {
		t.Fatal(err)
	}
	if res.FreedChunks != 0 {
		t.Fatalf("deleting one of two identical files freed %d chunks", res.FreedChunks)
	}
	// The surviving copy stays fully restorable.
	got, err := c.Download(ctx, "/copy-2")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("surviving copy: %v", err)
	}
	// Deleting the second file frees everything.
	res2, err := c.Delete(ctx, "/copy-2")
	if err != nil {
		t.Fatal(err)
	}
	if res2.FreedChunks != res2.Chunks {
		t.Fatalf("final delete freed %d of %d", res2.FreedChunks, res2.Chunks)
	}
}

func TestDeleteRequiresAuthorization(t *testing.T) {
	cluster := startCluster(t)
	alice := newUser(t, cluster, "alice", core.SchemeEnhanced)
	mallory := newUser(t, cluster, "mallory", core.SchemeEnhanced)
	data := randomFile(t, 32<<10, 82)

	if _, err := alice.Upload(ctx, "/mine", bytes.NewReader(data), policy.OrOfUsers([]string{"alice"})); err != nil {
		t.Fatal(err)
	}
	if _, err := mallory.Delete(ctx, "/mine"); err == nil {
		t.Fatal("unauthorized user deleted the file")
	}
	// File untouched.
	if got, err := alice.Download(ctx, "/mine"); err != nil || !bytes.Equal(got, data) {
		t.Fatalf("file damaged by failed delete: %v", err)
	}
}

func TestDeleteMissingFile(t *testing.T) {
	cluster := startCluster(t)
	c := newUser(t, cluster, "alice", core.SchemeBasic)
	if _, err := c.Delete(ctx, "/never-existed"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("error = %v, want ErrNotFound", err)
	}
}

func TestDeleteThenReupload(t *testing.T) {
	cluster := startCluster(t)
	c := newUser(t, cluster, "alice", core.SchemeBasic)
	data := randomFile(t, 64<<10, 83)
	pol := policy.OrOfUsers([]string{"alice"})

	if _, err := c.Upload(ctx, "/cycle", bytes.NewReader(data), pol); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Delete(ctx, "/cycle"); err != nil {
		t.Fatal(err)
	}
	// Re-uploading the same content after full deletion works and is
	// not spuriously deduplicated against freed chunks.
	res, err := c.Upload(ctx, "/cycle", bytes.NewReader(data), pol)
	if err != nil {
		t.Fatal(err)
	}
	if res.DuplicateChunks != 0 {
		t.Fatalf("re-upload after full deletion reported %d duplicates", res.DuplicateChunks)
	}
	got, err := c.Download(ctx, "/cycle")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("re-upload round trip: %v", err)
	}
}

func TestAuditDetectsCorruption(t *testing.T) {
	cluster := startCluster(t)
	owner, err := keyreg.NewOwner(keyreg.DefaultBits, nil)
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(ctx, Config{
		UserID:         "auditor",
		Scheme:         core.SchemeEnhanced,
		DataServers:    cluster.DataAddrs,
		KeyStoreServer: cluster.KeyAddr,
		KeyManager:     cluster.KMAddr,
		AuditTickets:   16,
		PrivateKey:     cluster.Authority.IssueKey("auditor", []string{"auditor"}),
		Directory:      cluster.Authority,
		Owner:          owner,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	data := randomFile(t, 128<<10, 90)
	res, err := c.Upload(ctx, "/audited", bytes.NewReader(data), policy.OrOfUsers([]string{"auditor"}))
	if err != nil {
		t.Fatal(err)
	}
	if res.AuditBook == nil || res.AuditBook.Remaining() != 16 {
		t.Fatalf("audit book = %+v", res.AuditBook)
	}

	// Healthy server: audits pass.
	for i := 0; i < 4; i++ {
		ok, err := c.Audit(ctx, res.AuditBook)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("audit %d failed against a healthy server", i)
		}
	}

	// Corrupt every stored container, then audit until a sampled chunk
	// hits the damage. With every chunk corrupted, the next audit of
	// any chunk must fail or error (the dedup layer itself may detect
	// the loss).
	for _, srv := range cluster.DataServers {
		if err := srv.Flush(ctx); err != nil {
			t.Fatal(err)
		}
		backend := srv.Backend()
		names, err := backend.List(ctx, store.NSContainers)
		if err != nil {
			t.Fatal(err)
		}
		for _, name := range names {
			blob, err := backend.Get(ctx, store.NSContainers, name)
			if err != nil {
				t.Fatal(err)
			}
			for off := 0; off < len(blob); off += 256 {
				blob[off] ^= 0xFF
			}
			if err := backend.Put(ctx, store.NSContainers, name, blob); err != nil {
				t.Fatal(err)
			}
		}
	}
	ok, err := c.Audit(ctx, res.AuditBook)
	if err == nil && ok {
		t.Fatal("audit passed against fully corrupted storage")
	}
}

func TestAuditExhaustion(t *testing.T) {
	cluster := startCluster(t)
	owner, err := keyreg.NewOwner(keyreg.DefaultBits, nil)
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(ctx, Config{
		UserID:         "auditor2",
		Scheme:         core.SchemeBasic,
		DataServers:    cluster.DataAddrs,
		KeyStoreServer: cluster.KeyAddr,
		KeyManager:     cluster.KMAddr,
		AuditTickets:   2,
		PrivateKey:     cluster.Authority.IssueKey("auditor2", []string{"auditor2"}),
		Directory:      cluster.Authority,
		Owner:          owner,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	res, err := c.Upload(ctx, "/small-book", bytes.NewReader(randomFile(t, 16<<10, 91)), policy.OrOfUsers([]string{"auditor2"}))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if ok, err := c.Audit(ctx, res.AuditBook); err != nil || !ok {
			t.Fatalf("audit %d: %v %v", i, ok, err)
		}
	}
	if _, err := c.Audit(ctx, res.AuditBook); err == nil {
		t.Fatal("exhausted book still issued audits")
	}
}
