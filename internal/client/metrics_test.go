package client

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/keyreg"
	"repro/internal/metrics"
	"repro/internal/netem"
	"repro/internal/policy"
)

// TestChaosClusterMetricsAfterFaultedUpload is the observability
// acceptance path: upload through a scripted data-server cut, then ask
// ClusterMetrics for the merged client+server view. RPC latency
// histograms, dedup effectiveness, and the fault-recovery counters must
// all be nonzero, and the RPC-visible retry counters must agree with
// the RetryStats the upload reported.
func TestChaosClusterMetricsAfterFaultedUpload(t *testing.T) {
	cluster := startCluster(t)
	plan := netem.NewPlan(42)
	plan.OnDial(1, netem.Fault{CutAfterWriteBytes: 48 << 10})

	owner, err := keyreg.NewOwner(keyreg.DefaultBits, nil)
	if err != nil {
		t.Fatal(err)
	}
	cfg := chaosConfig(cluster, "alice", owner, plan)
	cfg.Metrics = metrics.NewRegistry()
	c, err := New(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })

	data := randomFile(t, 256<<10, 99)
	res, err := c.Upload(ctx, "/metrics/faulted", bytes.NewReader(data), policy.OrOfUsers([]string{"alice"}))
	if err != nil {
		t.Fatalf("upload across data-server cut: %v", err)
	}
	if res.Retry.Reconnects < 1 {
		t.Fatalf("Retry.Reconnects = %d, want >= 1 (fault must fire)", res.Retry.Reconnects)
	}

	snap, err := c.ClusterMetrics(ctx)
	if err != nil {
		t.Fatal(err)
	}

	// Client-side RPC latency for the chunk plane. The routed-call
	// families carry a shard label now, so sum over shards.
	putPrefix := metrics.Label("rpc_latency", "op", "PutChunks")
	putPrefix = strings.TrimSuffix(putPrefix, "}") + ","
	var put string
	var putCount uint64
	for name, h := range snap.Histograms {
		if strings.HasPrefix(name, putPrefix) {
			put = name
			putCount += h.Count
		}
	}
	if putCount == 0 {
		t.Fatalf("rpc_latency{op=\"PutChunks\",shard=...} is empty; client RPC instrumentation missing")
	}
	// Server-side dispatch latency, merged in over the Metrics RPC.
	disp := metrics.Label("dispatch_latency", "op", "PutChunks")
	if h, ok := snap.Histograms[disp]; !ok || h.Count == 0 {
		t.Fatalf("%s is empty; server snapshots not merged", disp)
	}
	// Pipeline stage latencies recorded during the upload.
	for _, stage := range []string{"chunk", "keys", "encrypt", "upload"} {
		name := metrics.Label("pipeline_stage_latency", "stage", stage)
		if h, ok := snap.Histograms[name]; !ok || h.Count == 0 {
			t.Errorf("%s is empty", name)
		}
	}
	// Dedup effectiveness from the data servers.
	if snap.Gauges["dedup_logical_bytes"] <= 0 {
		t.Error("dedup_logical_bytes not positive after upload")
	}
	if snap.Gauges["dedup_physical_bytes"] <= 0 {
		t.Error("dedup_physical_bytes not positive after upload")
	}
	// Merged ratio must be recomputed from bytes, not summed per-server
	// (summing two servers at 0.5 would read 1.0).
	if r := snap.Gauges["dedup_savings_ratio"]; r < 0 || r >= 1 {
		t.Errorf("dedup_savings_ratio = %v, want [0, 1)", r)
	}
	// OPRF work reached the key manager.
	if snap.Counters["oprf_evaluations"] == 0 {
		t.Error("oprf_evaluations = 0; key manager snapshot not merged")
	}
	// Fault recovery is visible through metrics and agrees with
	// RetryStats — the satellite contract: one count, two views.
	if snap.Counters["rpc_reconnects"] != res.Retry.Reconnects {
		t.Errorf("rpc_reconnects = %d, RetryStats.Reconnects = %d; must match",
			snap.Counters["rpc_reconnects"], res.Retry.Reconnects)
	}
	if snap.Counters["upload_retried_batches"] != res.Retry.RetriedBatches {
		t.Errorf("upload_retried_batches = %d, RetryStats.RetriedBatches = %d; must match",
			snap.Counters["upload_retried_batches"], res.Retry.RetriedBatches)
	}

	// The human-readable rendering carries the same families.
	text := snap.Text()
	for _, want := range []string{"rpc_latency", "dedup_logical_bytes", "oprf_evaluations"} {
		if !strings.Contains(text, want) {
			t.Errorf("Text() missing %q", want)
		}
	}
	// And the whole snapshot survives the wire encoding.
	b, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var back metrics.Snapshot
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Histograms[put].Count != snap.Histograms[put].Count {
		t.Error("JSON round trip lost histogram observations")
	}
}

// TestClusterMetricsUninstrumentedClient checks ClusterMetrics still
// works when the client itself has no registry: server-side snapshots
// alone come back merged.
func TestClusterMetricsUninstrumentedClient(t *testing.T) {
	cluster := startCluster(t)
	c := newUser(t, cluster, "bob", core.SchemeBasic)
	if c.Metrics() != nil {
		t.Fatal("newUser should build an uninstrumented client")
	}
	data := randomFile(t, 64<<10, 7)
	if _, err := c.Upload(ctx, "/metrics/plain", bytes.NewReader(data), policy.OrOfUsers([]string{"bob"})); err != nil {
		t.Fatal(err)
	}
	snap, err := c.ClusterMetrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	disp := metrics.Label("dispatch_latency", "op", "PutChunks")
	if h, ok := snap.Histograms[disp]; !ok || h.Count == 0 {
		t.Fatalf("%s is empty; server snapshots not merged", disp)
	}
	if snap.Counters["oprf_evaluations"] == 0 {
		t.Error("oprf_evaluations = 0")
	}
}
