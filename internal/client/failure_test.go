package client

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/keyreg"
	"repro/internal/policy"
	"repro/internal/store"
	"repro/internal/testenv"
)

// Failure-injection tests: REED clients must fail cleanly (error, not
// hang or corrupt) when infrastructure disappears mid-session. The
// extra killable servers come from testenv.StartServer, whose cleanup
// waits for the serve loop to exit — these tests leak no goroutines
// even when they fail early.

func TestUploadFailsCleanlyWhenDataServerDies(t *testing.T) {
	cluster := startCluster(t)
	srv, addr := testenv.StartServer(t)

	owner, err := keyreg.NewOwner(keyreg.DefaultBits, nil)
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(ctx, Config{
		UserID:         "alice",
		Scheme:         core.SchemeBasic,
		DataServers:    []string{addr}, // only the stoppable server
		KeyStoreServer: cluster.KeyAddr,
		KeyManager:     cluster.KMAddr,
		PrivateKey:     cluster.Authority.IssueKey("alice", []string{"alice"}),
		Directory:      cluster.Authority,
		Owner:          owner,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	data := randomFile(t, 64<<10, 61)
	pol := policy.OrOfUsers([]string{"alice"})
	if _, err := c.Upload(ctx, "/ok", bytes.NewReader(data), pol); err != nil {
		t.Fatal(err)
	}

	// Kill the data plane, then try again: must error within a bounded
	// time, not hang.
	if err := srv.Shutdown(); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := c.Upload(ctx, "/after-crash", bytes.NewReader(data), pol)
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("upload succeeded against a dead server")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("upload hung against a dead server")
	}
}

func TestDownloadFailsCleanlyWhenKeyStoreDies(t *testing.T) {
	cluster := startCluster(t)
	keySrv, keyAddr := testenv.StartServer(t)

	owner, err := keyreg.NewOwner(keyreg.DefaultBits, nil)
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(ctx, Config{
		UserID:         "alice",
		Scheme:         core.SchemeBasic,
		DataServers:    cluster.DataAddrs,
		KeyStoreServer: keyAddr,
		KeyManager:     cluster.KMAddr,
		PrivateKey:     cluster.Authority.IssueKey("alice", []string{"alice"}),
		Directory:      cluster.Authority,
		Owner:          owner,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	data := randomFile(t, 32<<10, 62)
	pol := policy.OrOfUsers([]string{"alice"})
	if _, err := c.Upload(ctx, "/k", bytes.NewReader(data), pol); err != nil {
		t.Fatal(err)
	}
	if err := keySrv.Shutdown(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Download(ctx, "/k"); err == nil {
		t.Fatal("download succeeded without the key store")
	}
}

func TestUploadFailsCleanlyWhenKeyManagerDies(t *testing.T) {
	// A dedicated cluster whose KM we can kill without affecting other
	// tests' shared fixtures.
	cluster, err := testenv.Start(testenv.Options{DataServers: 1, KMKey: sharedKMKey(t)})
	if err != nil {
		t.Fatal(err)
	}
	// Intentionally no cluster cleanup order issues: Close is
	// idempotent for the parts we kill early.
	t.Cleanup(cluster.Close)

	c := newUser(t, cluster, "alice", core.SchemeBasic)
	data := randomFile(t, 32<<10, 63)
	pol := policy.OrOfUsers([]string{"alice"})
	if _, err := c.Upload(ctx, "/pre", bytes.NewReader(data), pol); err != nil {
		t.Fatal(err)
	}

	cluster.Close() // kills the key manager (and everything else)

	other := randomFile(t, 32<<10, 64)
	if _, err := c.Upload(ctx, "/post", bytes.NewReader(other), pol); err == nil {
		t.Fatal("upload succeeded without a key manager")
	}
}

func TestDownloadAfterDataLoss(t *testing.T) {
	// Deleting a container from the backend must surface as an error on
	// download, not a silent wrong result.
	cluster := startCluster(t)
	c := newUser(t, cluster, "alice", core.SchemeEnhanced)
	data := randomFile(t, 128<<10, 65)
	if _, err := c.Upload(ctx, "/lost", bytes.NewReader(data), policy.OrOfUsers([]string{"alice"})); err != nil {
		t.Fatal(err)
	}
	for _, srv := range cluster.DataServers {
		if err := srv.Flush(ctx); err != nil {
			t.Fatal(err)
		}
		backend := srv.Backend()
		names, err := backend.List(ctx, store.NSContainers)
		if err != nil {
			t.Fatal(err)
		}
		for _, name := range names {
			if err := backend.Delete(ctx, store.NSContainers, name); err != nil {
				t.Fatal(err)
			}
		}
	}
	if _, err := c.Download(ctx, "/lost"); err == nil {
		t.Fatal("download succeeded after container loss")
	}
}
