package wal

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"testing"

	"repro/internal/store"
)

var ctx = context.Background()

func openLog(t *testing.T, b store.Backend) *Log {
	t.Helper()
	l, err := Open(ctx, b, store.NSWAL, "w")
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// segment frames each payload into one segment blob.
func segment(payloads ...[]byte) []byte {
	var seg []byte
	for _, p := range payloads {
		seg = AppendRecord(seg, p)
	}
	return seg
}

func TestAppendReplayRoundTrip(t *testing.T) {
	b := store.NewMemory()
	l := openLog(t, b)

	batches := [][][]byte{
		{[]byte("a"), []byte("bb")},
		{[]byte("ccc")},
		{[]byte(""), []byte("dddd"), []byte("e")},
	}
	var want [][]byte
	for _, batch := range batches {
		if err := l.Append(ctx, segment(batch...)); err != nil {
			t.Fatal(err)
		}
		want = append(want, batch...)
	}
	if l.Next() != 3 {
		t.Fatalf("Next = %d, want 3", l.Next())
	}

	// A fresh Open must see the same position and replay everything.
	l2 := openLog(t, b)
	if l2.Next() != 3 {
		t.Fatalf("reopened Next = %d, want 3", l2.Next())
	}
	var got [][]byte
	err := l2.Replay(ctx, 0, func(rec []byte) error {
		got = append(got, append([]byte(nil), rec...))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("record %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestReplayFrom(t *testing.T) {
	b := store.NewMemory()
	l := openLog(t, b)
	for i := 0; i < 4; i++ {
		if err := l.Append(ctx, segment([]byte{byte(i)})); err != nil {
			t.Fatal(err)
		}
	}
	var got []byte
	if err := l.Replay(ctx, 2, func(rec []byte) error {
		got = append(got, rec[0])
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte{2, 3}) {
		t.Fatalf("Replay(2) saw %v", got)
	}
}

// TestTornTailEveryByteBoundary truncates the final segment at every
// byte boundary: replay must never fail; a partial segment is discarded
// whole (its Append never returned, so nothing in it was acknowledged)
// and only the intact full segment replays all of its records.
func TestTornTailEveryByteBoundary(t *testing.T) {
	payloads := [][]byte{
		[]byte("first-record"),
		[]byte("second"),
		bytes.Repeat([]byte{0x5A}, 100),
	}
	full := sealSegment(segment(payloads...))

	for cut := 0; cut <= len(full); cut++ {
		b := store.NewMemory()
		l := openLog(t, b)
		if err := l.Append(ctx, segment([]byte("earlier-segment"))); err != nil {
			t.Fatal(err)
		}
		if err := b.Put(ctx, store.NSWAL, "w0000000000000001", full[:cut]); err != nil {
			t.Fatal(err)
		}
		l2 := openLog(t, b)

		wantRecs := 1 // the earlier segment's record always survives
		if cut == len(full) {
			wantRecs += len(payloads) // fully intact: everything replays
		}
		var got int
		if err := l2.Replay(ctx, 0, func(rec []byte) error {
			got++
			return nil
		}); err != nil {
			t.Fatalf("cut %d: replay failed: %v", cut, err)
		}
		if got != wantRecs {
			t.Fatalf("cut %d: replayed %d records, want %d", cut, got, wantRecs)
		}

		// The tear is healed: after appending another segment the once-
		// torn one is no longer final, and replay must still succeed.
		if err := l2.Append(ctx, segment([]byte("post-recovery"))); err != nil {
			t.Fatal(err)
		}
		l3 := openLog(t, b)
		var again int
		if err := l3.Replay(ctx, 0, func(rec []byte) error {
			again++
			return nil
		}); err != nil {
			t.Fatalf("cut %d: replay after heal failed: %v", cut, err)
		}
		if again != wantRecs+1 {
			t.Fatalf("cut %d: replay after heal saw %d records, want %d", cut, again, wantRecs+1)
		}
	}
}

// TestCorruptTailBitFlip flips one byte in the final segment: the CRC
// catches it and the whole segment is discarded as a torn tail.
func TestCorruptTailBitFlip(t *testing.T) {
	b := store.NewMemory()
	l := openLog(t, b)
	if err := l.Append(ctx, segment([]byte("committed-earlier"))); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(ctx, segment([]byte("good-one"), []byte("good-two"), []byte("gets-corrupted"))); err != nil {
		t.Fatal(err)
	}
	sealed, err := b.Get(ctx, store.NSWAL, "w0000000000000001")
	if err != nil {
		t.Fatal(err)
	}
	mut := append([]byte(nil), sealed...)
	mut[len(mut)-segmentTrailer-3] ^= 0x40
	if err := b.Put(ctx, store.NSWAL, "w0000000000000001", mut); err != nil {
		t.Fatal(err)
	}

	l2 := openLog(t, b)
	var got int
	if err := l2.Replay(ctx, 0, func(rec []byte) error {
		got++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Fatalf("replayed %d records, want 1 (corrupt final segment discarded)", got)
	}
}

// TestCorruptionBeforeFinalSegmentIsFatal: damage in a non-final
// segment means acknowledged writes are gone — replay must error, not
// skip.
func TestCorruptionBeforeFinalSegmentIsFatal(t *testing.T) {
	b := store.NewMemory()
	l := openLog(t, b)
	if err := l.Append(ctx, segment([]byte("segment-zero"))); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(ctx, segment([]byte("segment-one"))); err != nil {
		t.Fatal(err)
	}
	seg0, err := b.Get(ctx, store.NSWAL, "w0000000000000000")
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Put(ctx, store.NSWAL, "w0000000000000000", seg0[:len(seg0)-1]); err != nil {
		t.Fatal(err)
	}

	l2 := openLog(t, b)
	err = l2.Replay(ctx, 0, func(rec []byte) error { return nil })
	if !errors.Is(err, ErrTorn) {
		t.Fatalf("Replay = %v, want ErrTorn", err)
	}
}

func TestMissingSegmentIsFatal(t *testing.T) {
	b := store.NewMemory()
	l := openLog(t, b)
	for i := 0; i < 3; i++ {
		if err := l.Append(ctx, segment([]byte{byte(i)})); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Delete(ctx, store.NSWAL, "w0000000000000001"); err != nil {
		t.Fatal(err)
	}
	l2 := openLog(t, b)
	if err := l2.Replay(ctx, 0, func(rec []byte) error { return nil }); err == nil {
		t.Fatal("Replay with a missing middle segment succeeded")
	}
}

func TestTruncateBefore(t *testing.T) {
	b := store.NewMemory()
	l := openLog(t, b)
	for i := 0; i < 5; i++ {
		if err := l.Append(ctx, segment([]byte{byte(i)})); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.TruncateBefore(ctx, 3); err != nil {
		t.Fatal(err)
	}
	names, err := b.List(ctx, store.NSWAL)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 {
		t.Fatalf("segments after truncate = %v", names)
	}
	// Replay from the checkpoint position still works.
	var got []byte
	if err := l.Replay(ctx, 3, func(rec []byte) error {
		got = append(got, rec[0])
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte{3, 4}) {
		t.Fatalf("Replay(3) saw %v", got)
	}
	// A reopened log appends after the surviving segments.
	l2 := openLog(t, b)
	if l2.Next() != 5 {
		t.Fatalf("Next after truncate+reopen = %d, want 5", l2.Next())
	}
}

func TestForeignBlobRejected(t *testing.T) {
	b := store.NewMemory()
	if err := b.Put(ctx, store.NSWAL, "not-a-segment", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(ctx, b, store.NSWAL, "w"); err == nil {
		t.Fatal("Open accepted a foreign blob in the WAL namespace")
	}
}

func TestSegmentNameRoundTrip(t *testing.T) {
	l := &Log{prefix: "w"}
	for _, seq := range []uint64{0, 1, 255, 1 << 40, ^uint64(0)} {
		name := l.segmentName(seq)
		got, ok := l.parseSegmentName(name)
		if !ok || got != seq {
			t.Fatalf("round trip %d -> %q -> %d, %v", seq, name, got, ok)
		}
	}
	for _, bad := range []string{"", "w", "w123", "x" + fmt.Sprintf("%016x", 7), "w000000000000000G"} {
		if _, ok := l.parseSegmentName(bad); ok {
			t.Fatalf("parseSegmentName(%q) accepted", bad)
		}
	}
}
