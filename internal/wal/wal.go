// Package wal implements the dedup store's write-ahead log as a
// sequence of immutable segment blobs over a store.Backend.
//
// Each segment is one atomic backend Put holding a batch of records,
// each framed as [length u32 | CRC-32 u32 | payload]. Segment names
// are the prefix plus a 16-hex-digit sequence number, so a sorted
// List enumerates them in append order.
//
// Recovery semantics follow physical journaling practice: a torn or
// corrupt record terminates decoding of that segment (ErrTorn), and a
// tear is tolerated only on the final segment — the one a crash could
// have interrupted. Because the segment Put is the commit point (an
// Append whose Put tore was never acknowledged), a torn final segment
// is discarded whole rather than replayed up to the tear, which keeps
// multi-record batches atomic. Damage anywhere earlier, or a gap in
// the sequence numbers, is real corruption and fails the replay loudly
// rather than silently dropping acknowledged writes. (On backends with
// atomic Put, e.g. this repo's disk backend, whole segments are the
// torn unit; the per-record framing additionally catches backends or
// filesystems that tear writes mid-blob.)
package wal

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"repro/internal/store"
)

// ErrTorn reports a segment that is truncated or corrupt — the state a
// crash mid-write could leave behind.
var ErrTorn = errors.New("wal: torn segment")

// recordHeader is the per-record frame: payload length + CRC-32.
const recordHeader = 8

// segmentTrailer seals a whole segment: body length + body CRC-32. The
// trailer is what makes tears detectable even when the truncation lands
// exactly on a record frame boundary — a prefix of frames decodes
// cleanly, but it cannot carry a valid trailer for the full body.
const segmentTrailer = 8

// maxRecordLen bounds a single record (matches binenc's sanity cap) so
// a corrupt length prefix cannot drive a giant allocation.
const maxRecordLen = 64 << 20

// AppendRecord frames payload onto buf and returns the extended slice.
func AppendRecord(buf, payload []byte) []byte {
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(payload)))
	buf = binary.BigEndian.AppendUint32(buf, crc32.ChecksumIEEE(payload))
	return append(buf, payload...)
}

// sealSegment appends the whole-segment trailer to a run of framed
// records, producing the bytes Append writes to the backend.
func sealSegment(body []byte) []byte {
	seg := binary.BigEndian.AppendUint32(body, uint32(len(body)))
	return binary.BigEndian.AppendUint32(seg, crc32.ChecksumIEEE(seg))
}

// DecodeRecords validates a sealed segment and splits it into its
// framed payloads. Decoding is all-or-nothing: a segment whose trailer
// does not match (truncated, partially written, bit-flipped) yields no
// records and ErrTorn, because the segment's Put never completed and
// none of its records were acknowledged. A segment whose trailer IS
// valid but whose frames are malformed is not a tear — it is a writer
// bug or targeted corruption, reported as a non-ErrTorn error.
func DecodeRecords(seg []byte) ([][]byte, error) {
	if len(seg) < segmentTrailer {
		return nil, fmt.Errorf("%w: %d bytes, shorter than the trailer", ErrTorn, len(seg))
	}
	body := seg[:len(seg)-segmentTrailer]
	bodyLen := binary.BigEndian.Uint32(seg[len(seg)-8:])
	sum := binary.BigEndian.Uint32(seg[len(seg)-4:])
	if uint64(bodyLen) != uint64(len(body)) {
		return nil, fmt.Errorf("%w: trailer claims %d body bytes, have %d", ErrTorn, bodyLen, len(body))
	}
	if crc32.ChecksumIEEE(seg[:len(seg)-4]) != sum {
		return nil, fmt.Errorf("%w: segment checksum mismatch", ErrTorn)
	}

	var recs [][]byte
	for len(body) > 0 {
		if len(body) < recordHeader {
			return nil, fmt.Errorf("wal: %d trailing bytes inside a sealed segment", len(body))
		}
		n := binary.BigEndian.Uint32(body[0:4])
		recSum := binary.BigEndian.Uint32(body[4:8])
		if n > maxRecordLen || uint64(recordHeader)+uint64(n) > uint64(len(body)) {
			return nil, fmt.Errorf("wal: record of %d bytes with %d remaining inside a sealed segment", n, len(body)-recordHeader)
		}
		payload := body[recordHeader : recordHeader+n]
		if crc32.ChecksumIEEE(payload) != recSum {
			return nil, errors.New("wal: record checksum mismatch inside a sealed segment")
		}
		recs = append(recs, payload)
		body = body[recordHeader+n:]
	}
	return recs, nil
}

// Log is an append-only segment log in one backend namespace.
type Log struct {
	backend store.Backend
	ns      string
	prefix  string
	next    uint64
}

// segmentName formats the blob name for sequence number seq.
func (l *Log) segmentName(seq uint64) string {
	return fmt.Sprintf("%s%016x", l.prefix, seq)
}

// parseSegmentName inverts segmentName.
func (l *Log) parseSegmentName(name string) (uint64, bool) {
	if len(name) != len(l.prefix)+16 || name[:len(l.prefix)] != l.prefix {
		return 0, false
	}
	var seq uint64
	for _, c := range name[len(l.prefix):] {
		switch {
		case c >= '0' && c <= '9':
			seq = seq<<4 | uint64(c-'0')
		case c >= 'a' && c <= 'f':
			seq = seq<<4 | uint64(c-'a'+10)
		default:
			return 0, false
		}
	}
	return seq, true
}

// Open scans ns for existing segments and positions the log to append
// after the highest one. Foreign blob names in the namespace are an
// error — the WAL owns its namespace.
func Open(ctx context.Context, backend store.Backend, ns, prefix string) (*Log, error) {
	l := &Log{backend: backend, ns: ns, prefix: prefix}
	names, err := backend.List(ctx, ns)
	if err != nil {
		return nil, fmt.Errorf("wal: list segments: %w", err)
	}
	for _, name := range names {
		seq, ok := l.parseSegmentName(name)
		if !ok {
			return nil, fmt.Errorf("wal: foreign blob %q in namespace %s", name, ns)
		}
		if seq+1 > l.next {
			l.next = seq + 1
		}
	}
	return l, nil
}

// Next returns the sequence number the next Append will use. It is
// also the exclusive upper bound of existing segments, which makes it
// the natural "WAL position" to record in a checkpoint.
func (l *Log) Next() uint64 { return l.next }

// Advance raises the append position to at least seq. A checkpoint
// that truncates every segment leaves the namespace empty, so a
// reopened log would otherwise restart numbering at zero — below the
// snapshot's replay position, making new segments invisible to the
// next recovery. Callers pass their checkpoint position here right
// after Open.
func (l *Log) Advance(seq uint64) {
	if seq > l.next {
		l.next = seq
	}
}

// Append seals one segment (a run of records framed with AppendRecord)
// and writes it as the next sequence number. The segment is durable
// when Append returns — the backend's atomic Put is the commit point.
func (l *Log) Append(ctx context.Context, body []byte) error {
	if err := l.backend.Put(ctx, l.ns, l.segmentName(l.next), sealSegment(body)); err != nil {
		return fmt.Errorf("wal: append segment %d: %w", l.next, err)
	}
	l.next++
	return nil
}

// Replay streams every record in segments [from, Next()) through fn in
// order. A missing segment in that window fails the replay; a torn
// final segment — the one a crash mid-Put could legally leave behind on
// a non-atomic backend — is tolerated but discarded WHOLE: the segment
// Put is the commit point, so a torn segment's Append never returned
// and none of its records were acknowledged, while applying a record
// prefix could split a multi-record batch that callers rely on being
// atomic. The discarded segment is then healed to an empty blob so the
// next recovery does not mistake it for mid-log corruption once later
// appends make it non-final.
func (l *Log) Replay(ctx context.Context, from uint64, fn func(rec []byte) error) error {
	for seq := from; seq < l.next; seq++ {
		seg, err := l.backend.Get(ctx, l.ns, l.segmentName(seq))
		if err != nil {
			return fmt.Errorf("wal: segment %d missing during replay: %w", seq, err)
		}
		recs, derr := DecodeRecords(seg)
		if derr != nil {
			if seq != l.next-1 || !errors.Is(derr, ErrTorn) {
				return fmt.Errorf("wal: segment %d corrupt during replay: %w", seq, derr)
			}
			if err := l.backend.Put(ctx, l.ns, l.segmentName(seq), sealSegment(nil)); err != nil {
				return fmt.Errorf("wal: heal torn segment %d: %w", seq, err)
			}
			return nil
		}
		for _, rec := range recs {
			if err := fn(rec); err != nil {
				return err
			}
		}
	}
	return nil
}

// TruncateBefore deletes every segment with sequence number < seq —
// the post-checkpoint cleanup. Deletion failures are returned but the
// log stays usable: stale segments below a checkpoint are ignored by
// the next Replay anyway.
func (l *Log) TruncateBefore(ctx context.Context, seq uint64) error {
	names, err := l.backend.List(ctx, l.ns)
	if err != nil {
		return fmt.Errorf("wal: list segments: %w", err)
	}
	var errs []error
	for _, name := range names {
		s, ok := l.parseSegmentName(name)
		if ok && s < seq {
			if err := l.backend.Delete(ctx, l.ns, name); err != nil {
				errs = append(errs, err)
			}
		}
	}
	return errors.Join(errs...)
}
