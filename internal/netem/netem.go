// Package netem emulates the paper's testbed network: a 1 Gb/s switched
// LAN. It wraps net.Conn so that bytes in each direction drain through a
// shared token bucket, reproducing the bandwidth ceiling that makes
// REED's second (deduplicated) upload "approach the effective network
// speed" in Experiment A.3 regardless of how fast the host actually is.
//
// Wrap only one end of each connection (the client side); each byte then
// pays the link cost exactly once per direction.
package netem

import (
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/ratelimit"
)

// GigabitEffective is the paper's measured effective LAN bandwidth:
// ~116 MB/s on a 1 Gb/s switch.
const GigabitEffective = 116 << 20

// DefaultRTT approximates the per-request overhead of the paper's
// testbed (switched LAN round trip plus SSL record processing).
// Loopback round trips are otherwise free, which would erase the
// batching effect Figure 5(b) measures.
const DefaultRTT = time.Millisecond

// Link models a shared network link with a bandwidth cap and optional
// per-request latency. Multiple connections through one Link share its
// capacity, like clients behind one switch port.
type Link struct {
	limiter *ratelimit.Limiter
	rtt     time.Duration
}

// NewLink returns a link capped at bytesPerSecond with no added
// latency.
func NewLink(bytesPerSecond float64) (*Link, error) {
	return NewLinkRTT(bytesPerSecond, 0)
}

// NewLinkRTT returns a link capped at bytesPerSecond that additionally
// delays each request (each Write call on a wrapped connection) by rtt,
// modelling one network round trip per request/response exchange.
func NewLinkRTT(bytesPerSecond float64, rtt time.Duration) (*Link, error) {
	if bytesPerSecond <= 0 {
		return nil, fmt.Errorf("netem: bandwidth must be positive, got %v", bytesPerSecond)
	}
	if rtt < 0 {
		return nil, fmt.Errorf("netem: rtt must be non-negative, got %v", rtt)
	}
	// Allow ~20 ms of burst so small messages do not serialize on the
	// limiter, with a floor of one typical frame.
	burst := bytesPerSecond / 50
	if burst < 64<<10 {
		burst = 64 << 10
	}
	limiter, err := ratelimit.New(bytesPerSecond, burst)
	if err != nil {
		return nil, err
	}
	return &Link{limiter: limiter, rtt: rtt}, nil
}

// Wrap returns a connection whose reads and writes are throttled by the
// link.
func (l *Link) Wrap(c net.Conn) net.Conn {
	return &conn{Conn: c, link: l}
}

// Dialer wraps a dial function so every new connection is throttled.
func (l *Link) Dialer(next func(addr string) (net.Conn, error)) func(addr string) (net.Conn, error) {
	if next == nil {
		next = func(addr string) (net.Conn, error) { return net.Dial("tcp", addr) }
	}
	return func(addr string) (net.Conn, error) {
		c, err := next(addr)
		if err != nil {
			return nil, err
		}
		return l.Wrap(c), nil
	}
}

type conn struct {
	net.Conn

	link *Link
}

// Read throttles inbound bytes after they arrive (pacing the receive
// path).
func (c *conn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	if n > 0 {
		if werr := c.link.limiter.Wait(context.Background(), float64(n)); werr != nil && err == nil {
			err = werr
		}
	}
	return n, err
}

// Write throttles outbound bytes before sending them and charges the
// link's per-request latency once per call.
func (c *conn) Write(p []byte) (int, error) {
	if c.link.rtt > 0 {
		time.Sleep(c.link.rtt)
	}
	// Charge in slices so one huge write cannot overdraw the bucket in
	// a single reservation and distort pacing for other connections.
	const sliceSize = 256 << 10
	var written int
	for written < len(p) {
		end := written + sliceSize
		if end > len(p) {
			end = len(p)
		}
		if err := c.link.limiter.Wait(context.Background(), float64(end-written)); err != nil {
			return written, err
		}
		n, err := c.Conn.Write(p[written:end])
		written += n
		if err != nil {
			return written, err
		}
	}
	return written, nil
}

// Delay wraps c so that every written byte is delivered after a fixed
// one-way propagation delay, without blocking the writer. This is the
// crucial difference from Link's rtt (a sleep inside Write): a blocking
// sleep serializes concurrent requests on the sender, so pipelining
// could never hide it. Delay instead stamps each write with a due time
// and a pump goroutine delivers it when due — requests in flight overlap
// their latency exactly as they would over a real long link.
//
// Wrap the client side only; requests then pay the delay and responses
// return undelayed, giving each round trip one delay of hideable
// latency. Close drops any bytes not yet delivered.
func Delay(c net.Conn, d time.Duration) net.Conn {
	dc := &delayConn{Conn: c, delay: d}
	dc.cond = sync.NewCond(&dc.mu)
	go dc.pump()
	return dc
}

// delayedChunk is one Write's bytes waiting for their due time.
type delayedChunk struct {
	due  time.Time
	data []byte
}

type delayConn struct {
	net.Conn
	delay time.Duration

	mu     sync.Mutex
	cond   *sync.Cond
	queue  []delayedChunk
	closed bool
	werr   error // first delivery error, surfaced to later Writes
}

// Write queues the bytes for delayed delivery and returns immediately.
func (c *delayConn) Write(p []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return 0, net.ErrClosed
	}
	if c.werr != nil {
		return 0, c.werr
	}
	c.queue = append(c.queue, delayedChunk{
		due:  time.Now().Add(c.delay),
		data: append([]byte(nil), p...),
	})
	c.cond.Signal()
	return len(p), nil
}

// Close stops the pump and closes the underlying connection; queued
// bytes not yet due are discarded.
func (c *delayConn) Close() error {
	c.mu.Lock()
	c.closed = true
	c.cond.Broadcast()
	c.mu.Unlock()
	return c.Conn.Close()
}

// pump delivers queued chunks in order once their due time arrives.
func (c *delayConn) pump() {
	for {
		c.mu.Lock()
		for len(c.queue) == 0 && !c.closed {
			c.cond.Wait()
		}
		if c.closed {
			c.mu.Unlock()
			return
		}
		chunk := c.queue[0]
		c.queue = c.queue[1:]
		c.mu.Unlock()

		if wait := time.Until(chunk.due); wait > 0 {
			time.Sleep(wait)
		}
		if _, err := c.Conn.Write(chunk.data); err != nil {
			c.mu.Lock()
			if c.werr == nil {
				c.werr = err
			}
			c.mu.Unlock()
		}
	}
}
