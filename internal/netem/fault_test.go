package netem

import (
	"bytes"
	"errors"
	"io"
	"net"
	"testing"
	"time"
)

// tcpPair returns two ends of a loopback TCP connection.
func tcpPair(t *testing.T) (client, server net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	type accepted struct {
		conn net.Conn
		err  error
	}
	ch := make(chan accepted, 1)
	go func() {
		c, err := ln.Accept()
		ch <- accepted{c, err}
	}()
	client, err = net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	a := <-ch
	if a.err != nil {
		t.Fatal(a.err)
	}
	t.Cleanup(func() {
		client.Close()
		a.conn.Close()
	})
	return client, a.conn
}

func TestFaultyWriteCutSeversMidWrite(t *testing.T) {
	raw, peer := tcpPair(t)
	trips := 0
	c := Faulty(raw, Fault{CutAfterWriteBytes: 15}, func() { trips++ })

	if n, err := c.Write(make([]byte, 10)); n != 10 || err != nil {
		t.Fatalf("first write = (%d, %v), want (10, nil)", n, err)
	}
	n, err := c.Write(make([]byte, 10))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("cut write error = %v, want ErrInjected", err)
	}
	if n != 5 {
		t.Fatalf("cut write delivered %d bytes, want the 5-byte prefix", n)
	}
	if trips != 1 {
		t.Fatalf("trips = %d, want 1", trips)
	}

	// The peer sees exactly the 15 delivered bytes, then a dead socket.
	got, _ := io.ReadAll(peer)
	if len(got) != 15 {
		t.Fatalf("peer received %d bytes, want 15", len(got))
	}

	// Everything after the trip fails fast.
	if _, err := c.Write([]byte("x")); !errors.Is(err, ErrInjected) {
		t.Fatalf("post-trip write error = %v, want ErrInjected", err)
	}
	if _, err := c.Read(make([]byte, 1)); !errors.Is(err, ErrInjected) {
		t.Fatalf("post-trip read error = %v, want ErrInjected", err)
	}
}

func TestFaultyReadCutStopsAtOffset(t *testing.T) {
	raw, peer := tcpPair(t)
	c := Faulty(raw, Fault{CutAfterReadBytes: 10}, nil)

	if _, err := peer.Write(bytes.Repeat([]byte("a"), 20)); err != nil {
		t.Fatal(err)
	}
	var got []byte
	buf := make([]byte, 8)
	for {
		n, err := c.Read(buf)
		got = append(got, buf[:n]...)
		if err != nil {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("read error = %v, want ErrInjected", err)
			}
			break
		}
	}
	if len(got) != 10 {
		t.Fatalf("read %d bytes before the cut, want exactly 10", len(got))
	}
}

func TestFaultyReadStallDelaysOnce(t *testing.T) {
	raw, peer := tcpPair(t)
	const stall = 80 * time.Millisecond
	c := Faulty(raw, Fault{StallFor: stall}, nil)

	if _, err := peer.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	buf := make([]byte, 5)
	if _, err := io.ReadFull(c, buf); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < stall {
		t.Fatalf("stalled read returned after %v, want >= %v", d, stall)
	}

	// The stall is one-shot: the next read is prompt.
	if _, err := peer.Write([]byte("again")); err != nil {
		t.Fatal(err)
	}
	start = time.Now()
	if _, err := io.ReadFull(c, buf); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d >= stall {
		t.Fatalf("second read stalled %v, stall must fire once", d)
	}
}

// TestFaultUnderLatency composes the fault wrapper with the bandwidth-
// capped Link and the propagation-delay wrapper: the cut still fires at
// its exact byte offset even when bytes drain through a throttled,
// delayed path.
func TestFaultUnderLatency(t *testing.T) {
	link, err := NewLinkRTT(1<<20, 100*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}

	raw, peer := tcpPair(t)
	c := link.Wrap(Faulty(Delay(raw, time.Millisecond), Fault{CutAfterWriteBytes: 1000}, nil))

	done := make(chan []byte, 1)
	go func() {
		got, _ := io.ReadAll(peer)
		done <- got
	}()

	var sent int
	var lastErr error
	for sent < 4096 {
		n, err := c.Write(make([]byte, 256))
		sent += n
		if err != nil {
			lastErr = err
			break
		}
	}
	if !errors.Is(lastErr, ErrInjected) {
		t.Fatalf("write through link+delay+fault = %v, want ErrInjected", lastErr)
	}
	if sent != 1000 {
		t.Fatalf("delivered %d bytes before the cut, want exactly 1000", sent)
	}
	select {
	case got := <-done:
		// Delay's pump may drop not-yet-due bytes at close; the peer can
		// see at most the cut threshold.
		if len(got) > 1000 {
			t.Fatalf("peer received %d bytes, scripted cut was 1000", len(got))
		}
	case <-time.After(5 * time.Second):
		t.Fatal("peer read never finished after the cut")
	}
}

func TestPlanScriptsFaultPerDialIndex(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				_, _ = io.Copy(io.Discard, c)
			}(c)
		}
	}()

	plan := NewPlan(42)
	plan.OnDial(1, Fault{CutAfterWriteBytes: 4})
	dial := plan.Dialer(nil)

	conns := make([]net.Conn, 3)
	for i := range conns {
		c, err := dial(ln.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		conns[i] = c
	}
	if got := plan.Dialed(); got != 3 {
		t.Fatalf("Dialed() = %d, want 3", got)
	}

	// Connections 0 and 2 are clean; connection 1 dies at byte 4.
	for _, i := range []int{0, 2} {
		if _, err := conns[i].Write(make([]byte, 64)); err != nil {
			t.Fatalf("conn %d write failed: %v", i, err)
		}
	}
	if _, err := conns[1].Write(make([]byte, 64)); !errors.Is(err, ErrInjected) {
		t.Fatalf("scripted conn write error = %v, want ErrInjected", err)
	}
	if got := plan.Injected(); got != 1 {
		t.Fatalf("Injected() = %d, want 1", got)
	}
}

func TestPlanSeededRandIsDeterministic(t *testing.T) {
	a, b := NewPlan(7), NewPlan(7)
	for i := 0; i < 16; i++ {
		if x, y := a.Rand().Int63(), b.Rand().Int63(); x != y {
			t.Fatalf("seeded plans diverged at draw %d: %d vs %d", i, x, y)
		}
	}
}
