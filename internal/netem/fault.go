package netem

// Fault injection. Faulty wraps a net.Conn so that a scripted fault
// fires at a deterministic byte offset: the connection is severed after
// N written bytes (mid-write, as a real RST would land), after N read
// bytes, or a read stalls for a fixed duration at a chosen offset.
// Because triggers are byte counts rather than timers, the same script
// produces the same failure point on every run — chaos tests are
// seeded, not flaky.
//
// Plan scripts faults across the connections of one client: it counts
// dials and applies each scripted fault to the matching dial index, so a
// test can express "kill the second connection the client opens (the
// first data server) once 48 KiB of requests have gone out" — i.e. the
// link dies during the 3rd PUT — and nothing else.

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"
)

// ErrInjected is the error surfaced by reads and writes that trip an
// injected fault. The underlying connection is closed at the same
// moment, so the peer observes a genuine connection reset.
var ErrInjected = errors.New("netem: injected fault")

// Fault describes one scripted connection fault. Byte thresholds are
// cumulative over the connection's lifetime; zero fields disable that
// trigger. A Fault value is a script, not live state: wrapping a
// connection copies it.
type Fault struct {
	// CutAfterWriteBytes severs the connection once that many bytes
	// have been written. The triggering Write delivers the bytes up to
	// the threshold (a half-written frame, exactly what a mid-stream
	// reset leaves behind), closes the connection, and returns
	// ErrInjected.
	CutAfterWriteBytes int64

	// CutAfterReadBytes severs the connection once that many bytes have
	// been read: the triggering Read returns the bytes up to the
	// threshold, then the next Read fails with ErrInjected.
	CutAfterReadBytes int64

	// StallReadAfterBytes, with StallFor, delays the first Read at or
	// beyond that byte offset by StallFor (a stalled-but-alive link).
	// The stall fires once.
	StallReadAfterBytes int64
	StallFor            time.Duration
}

// zero reports whether the fault does nothing.
func (f Fault) zero() bool {
	return f.CutAfterWriteBytes <= 0 && f.CutAfterReadBytes <= 0 && f.StallFor <= 0
}

// Faulty wraps c so the scripted fault fires at its byte thresholds.
// onTrip, if non-nil, is called exactly once when any cut fires (stalls
// do not count as trips).
func Faulty(c net.Conn, f Fault, onTrip func()) net.Conn {
	return &faultConn{Conn: c, fault: f, onTrip: onTrip}
}

type faultConn struct {
	net.Conn
	fault  Fault
	onTrip func()

	mu       sync.Mutex
	written  int64
	read     int64
	stalled  bool
	tripped  bool
	tripOnce sync.Once
}

// trip closes the transport and fires the one-shot notification so
// both ends observe the failure. Callers must have set c.tripped under
// c.mu already.
func (c *faultConn) trip() {
	c.tripOnce.Do(func() {
		if c.onTrip != nil {
			c.onTrip()
		}
	})
	_ = c.Conn.Close()
}

func (c *faultConn) Write(p []byte) (int, error) {
	c.mu.Lock()
	if c.tripped {
		c.mu.Unlock()
		return 0, fmt.Errorf("write: %w", ErrInjected)
	}
	cut := c.fault.CutAfterWriteBytes
	if cut > 0 && c.written+int64(len(p)) >= cut {
		// Deliver only the prefix that fits under the threshold, then
		// sever: the peer sees a truncated frame and a dead socket.
		keep := cut - c.written
		if keep < 0 {
			keep = 0
		}
		c.written = cut
		c.tripped = true
		c.mu.Unlock()
		var n int
		if keep > 0 {
			n, _ = c.Conn.Write(p[:keep])
		}
		c.trip()
		return n, fmt.Errorf("write after %d bytes: %w", cut, ErrInjected)
	}
	c.written += int64(len(p))
	c.mu.Unlock()
	return c.Conn.Write(p)
}

func (c *faultConn) Read(p []byte) (int, error) {
	c.mu.Lock()
	if c.tripped {
		c.mu.Unlock()
		return 0, fmt.Errorf("read: %w", ErrInjected)
	}
	var stall time.Duration
	if c.fault.StallFor > 0 && !c.stalled && c.read >= c.fault.StallReadAfterBytes {
		c.stalled = true
		stall = c.fault.StallFor
	}
	cut := c.fault.CutAfterReadBytes
	if cut > 0 && c.read >= cut {
		c.tripped = true
		c.mu.Unlock()
		c.trip()
		return 0, fmt.Errorf("read after %d bytes: %w", cut, ErrInjected)
	}
	// Clamp the read so it cannot overshoot the cut threshold; the cut
	// then fires exactly at its offset on the following Read.
	limit := len(p)
	if cut > 0 && c.read+int64(limit) > cut {
		limit = int(cut - c.read)
	}
	c.mu.Unlock()

	if stall > 0 {
		time.Sleep(stall)
	}
	n, err := c.Conn.Read(p[:limit])
	c.mu.Lock()
	c.read += int64(n)
	c.mu.Unlock()
	return n, err
}

// Close closes the underlying connection without counting as a trip.
func (c *faultConn) Close() error {
	c.mu.Lock()
	c.tripped = true
	c.mu.Unlock()
	return c.Conn.Close()
}

// Plan scripts faults across the sequence of connections a client
// dials. Dials are numbered from zero in the order they happen; each
// scripted index gets its fault exactly once, and connections without a
// script pass through untouched. The seed feeds Rand for tests that
// want reproducible randomized cut points.
type Plan struct {
	mu       sync.Mutex
	rng      *rand.Rand
	scripts  map[int]Fault
	dialed   int
	injected int
}

// NewPlan returns an empty fault plan whose Rand is seeded with seed.
func NewPlan(seed int64) *Plan {
	return &Plan{
		rng:     rand.New(rand.NewSource(seed)),
		scripts: make(map[int]Fault),
	}
}

// OnDial scripts a fault for the nth (0-based) connection dialed
// through the plan. Scripting the same index twice replaces the fault.
func (p *Plan) OnDial(n int, f Fault) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.scripts[n] = f
}

// Rand exposes the plan's seeded random source so tests can derive
// reproducible cut offsets.
func (p *Plan) Rand() *rand.Rand {
	return p.rng
}

// Dialed returns how many connections have been dialed through the
// plan.
func (p *Plan) Dialed() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.dialed
}

// Injected returns how many scripted cuts have fired.
func (p *Plan) Injected() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.injected
}

func (p *Plan) noteTrip() {
	p.mu.Lock()
	p.injected++
	p.mu.Unlock()
}

// Wrap applies the next dial slot's scripted fault (if any) to c.
func (p *Plan) Wrap(c net.Conn) net.Conn {
	p.mu.Lock()
	f, ok := p.scripts[p.dialed]
	p.dialed++
	p.mu.Unlock()
	if !ok || f.zero() {
		return c
	}
	return Faulty(c, f, p.noteTrip)
}

// Dialer wraps a dial function so every new connection consults the
// plan. A nil next dials plain TCP. Compose with Link.Dialer or Delay
// to test faults under bandwidth caps and latency.
func (p *Plan) Dialer(next func(addr string) (net.Conn, error)) func(addr string) (net.Conn, error) {
	if next == nil {
		next = func(addr string) (net.Conn, error) { return net.Dial("tcp", addr) }
	}
	return func(addr string) (net.Conn, error) {
		c, err := next(addr)
		if err != nil {
			return nil, err
		}
		return p.Wrap(c), nil
	}
}
