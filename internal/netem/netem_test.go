package netem

import (
	"io"
	"net"
	"testing"
	"time"
)

// pipePair returns a connected TCP pair on loopback.
func pipePair(t *testing.T) (net.Conn, net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	type accepted struct {
		conn net.Conn
		err  error
	}
	ch := make(chan accepted, 1)
	go func() {
		c, err := ln.Accept()
		ch <- accepted{conn: c, err: err}
	}()
	client, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	srv := <-ch
	if srv.err != nil {
		t.Fatal(srv.err)
	}
	t.Cleanup(func() {
		client.Close()
		srv.conn.Close()
	})
	return client, srv.conn
}

func TestNewLinkValidation(t *testing.T) {
	if _, err := NewLink(0); err == nil {
		t.Fatal("NewLink(0) expected error")
	}
	if _, err := NewLink(-1); err == nil {
		t.Fatal("NewLink(-1) expected error")
	}
}

func TestDataIntegrityThroughLink(t *testing.T) {
	link, err := NewLink(100 << 20)
	if err != nil {
		t.Fatal(err)
	}
	client, srv := pipePair(t)
	wrapped := link.Wrap(client)

	payload := make([]byte, 1<<20)
	for i := range payload {
		payload[i] = byte(i)
	}
	go func() {
		wrapped.Write(payload)
	}()
	got := make([]byte, len(payload))
	if _, err := io.ReadFull(srv, got); err != nil {
		t.Fatal(err)
	}
	for i := range payload {
		if got[i] != payload[i] {
			t.Fatalf("byte %d corrupted through link", i)
		}
	}
}

func TestThrottleLimitsThroughput(t *testing.T) {
	// 4 MB through a 16 MB/s link must take at least ~150 ms (allowing
	// for the burst allowance).
	link, err := NewLink(16 << 20)
	if err != nil {
		t.Fatal(err)
	}
	client, srv := pipePair(t)
	wrapped := link.Wrap(client)

	const total = 4 << 20
	done := make(chan struct{})
	go func() {
		defer close(done)
		buf := make([]byte, 64<<10)
		var n int
		for n < total {
			r, err := srv.Read(buf)
			if err != nil {
				return
			}
			n += r
		}
	}()

	start := time.Now()
	payload := make([]byte, total)
	if _, err := wrapped.Write(payload); err != nil {
		t.Fatal(err)
	}
	<-done
	elapsed := time.Since(start)
	if elapsed < 150*time.Millisecond {
		t.Fatalf("4MB through 16MB/s link took only %v", elapsed)
	}
}

func TestUnthrottledIsFaster(t *testing.T) {
	// Sanity: a 1 GB/s link must move 4 MB much faster than the 16 MB/s
	// link above.
	link, err := NewLink(1 << 30)
	if err != nil {
		t.Fatal(err)
	}
	client, srv := pipePair(t)
	wrapped := link.Wrap(client)

	const total = 4 << 20
	done := make(chan struct{})
	go func() {
		defer close(done)
		io.CopyN(io.Discard, srv, total)
	}()
	start := time.Now()
	if _, err := wrapped.Write(make([]byte, total)); err != nil {
		t.Fatal(err)
	}
	<-done
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("4MB through 1GB/s link took %v", elapsed)
	}
}

func TestDialerWrapping(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		io.Copy(io.Discard, c)
	}()

	link, err := NewLink(1 << 30)
	if err != nil {
		t.Fatal(err)
	}
	dial := link.Dialer(nil)
	conn, err := dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("through the dialer")); err != nil {
		t.Fatal(err)
	}
}

// TestDelayDeliversIntactAndOrdered checks that bytes pass through a
// Delay wrapper unmodified and in write order.
func TestDelayDeliversIntactAndOrdered(t *testing.T) {
	client, srv := pipePair(t)
	dc := Delay(client, 5*time.Millisecond)
	defer dc.Close()

	want := []byte("hello delayed world; hello again")
	go func() {
		dc.Write(want[:10])
		dc.Write(want[10:])
	}()

	got := make([]byte, len(want))
	if _, err := io.ReadFull(srv, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatalf("got %q, want %q", got, want)
	}
}

// TestDelayDoesNotBlockWriter is the property the mux benchmark relies
// on: N back-to-back writes complete in far less than N*delay because
// the delay applies to delivery, not to the Write call.
func TestDelayDoesNotBlockWriter(t *testing.T) {
	client, srv := pipePair(t)
	const delay = 20 * time.Millisecond
	dc := Delay(client, delay)
	defer dc.Close()

	// Drain the server side so TCP buffers never push back.
	go io.Copy(io.Discard, srv)

	start := time.Now()
	const writes = 8
	for i := 0; i < writes; i++ {
		if _, err := dc.Write([]byte("ping")); err != nil {
			t.Fatal(err)
		}
	}
	if elapsed := time.Since(start); elapsed > delay {
		t.Fatalf("%d writes took %v; a blocking delay would take %v", writes, elapsed, writes*delay)
	}
}

// TestDelayCloseUnblocks: Close while chunks are queued returns promptly
// and later writes fail.
func TestDelayCloseUnblocks(t *testing.T) {
	client, _ := pipePair(t)
	dc := Delay(client, time.Hour)
	if _, err := dc.Write([]byte("never delivered")); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		dc.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Close did not return")
	}
	if _, err := dc.Write([]byte("x")); err == nil {
		t.Fatal("Write after Close succeeded")
	}
}
