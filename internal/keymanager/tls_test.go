package keymanager

import (
	"bytes"
	"crypto/tls"
	"net"
	"testing"

	"repro/internal/fingerprint"
	"repro/internal/tlsutil"
)

// TestKeyManagerOverTLS runs the full OPRF protocol through the
// encrypted, certificate-pinned channel the paper's threat model
// assumes between clients and the key manager.
func TestKeyManagerOverTLS(t *testing.T) {
	id, err := tlsutil.NewIdentity(nil, 0)
	if err != nil {
		t.Fatal(err)
	}

	srv := NewServer(serverKey(t))
	rawLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ln := tls.NewListener(rawLn, id.ServerConfig)
	go func() { _ = srv.Serve(ln) }()
	t.Cleanup(srv.Shutdown)

	client, err := Dial(ctx, rawLn.Addr().String(), WithDialer(TLSDialer(id.ClientConfig)))
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	fp := fingerprint.New([]byte("over tls"))
	key, err := client.DeriveKey(fp)
	if err != nil {
		t.Fatal(err)
	}
	want, err := serverKey(t).Derive(fp[:])
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(key, want) {
		t.Fatal("TLS-channel key differs from direct derivation")
	}
}

// TestTLSRejectsPlaintextClient verifies that a client without TLS
// cannot complete the protocol against a TLS key manager.
func TestTLSRejectsPlaintextClient(t *testing.T) {
	id, err := tlsutil.NewIdentity(nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(serverKey(t))
	rawLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(tls.NewListener(rawLn, id.ServerConfig)) }()
	t.Cleanup(srv.Shutdown)

	if _, err := Dial(ctx, rawLn.Addr().String()); err == nil {
		t.Fatal("plaintext client completed against TLS server")
	}
}
