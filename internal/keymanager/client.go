package keymanager

import (
	"bufio"
	"context"
	"crypto/tls"
	"errors"
	"fmt"
	"net"
	"sync"

	"repro/internal/fingerprint"
	"repro/internal/keycache"
	"repro/internal/mle"
	"repro/internal/oprf"
	"repro/internal/proto"
)

// ErrConnClosed is returned for calls on a connection torn down by Close
// or by a context cancellation that interrupted an in-flight frame.
var ErrConnClosed = errors.New("keymanager: connection closed")

// Dialer opens a connection to an address; injectable so benchmarks can
// route through internal/netem's emulated link.
type Dialer func(addr string) (net.Conn, error)

// TLSDialer returns a Dialer that connects over TLS with the given
// configuration, securing the client–key-manager channel as the paper's
// threat model assumes. Serve the key manager through
// tls.NewListener(ln, serverConfig) on the other side.
func TLSDialer(cfg *tls.Config) Dialer {
	return func(addr string) (net.Conn, error) {
		host, _, err := net.SplitHostPort(addr)
		if err != nil {
			return nil, fmt.Errorf("keymanager: tls dial: %w", err)
		}
		c := cfg.Clone()
		if c.ServerName == "" {
			c.ServerName = host
		}
		return tls.Dial("tcp", addr, c)
	}
}

// Client talks to a key manager. It batches per-chunk key requests and
// optionally consults an MLE key cache before going to the network. It
// is safe for concurrent use; requests on one connection serialize.
type Client struct {
	mu     sync.Mutex
	conn   net.Conn
	br     *bufio.Reader
	bw     *bufio.Writer
	params oprf.PublicParams
	closed bool

	batchSize int
	cache     *keycache.Cache
}

// ClientOption configures a Client.
type ClientOption interface {
	applyClient(*clientConfig)
}

type clientConfig struct {
	batchSize int
	cache     *keycache.Cache
	dialer    Dialer
}

type batchSizeOption int

func (o batchSizeOption) applyClient(c *clientConfig) { c.batchSize = int(o) }

// WithBatchSize sets how many per-chunk requests are packed into one
// network round trip (default 256, the paper's setting).
func WithBatchSize(n int) ClientOption { return batchSizeOption(n) }

type cacheOption struct{ cache *keycache.Cache }

func (o cacheOption) applyClient(c *clientConfig) { c.cache = o.cache }

// WithCache attaches an MLE key cache consulted before the network.
func WithCache(cache *keycache.Cache) ClientOption { return cacheOption{cache: cache} }

type dialerOption struct{ d Dialer }

func (o dialerOption) applyClient(c *clientConfig) { c.dialer = o.d }

// WithDialer overrides how the client connects (e.g. a bandwidth-
// throttled link).
func WithDialer(d Dialer) ClientOption { return dialerOption{d: d} }

// Dial connects to the key manager at addr and fetches its public
// parameters.
func Dial(addr string, opts ...ClientOption) (*Client, error) {
	cfg := clientConfig{batchSize: DefaultBatchSize}
	for _, o := range opts {
		o.applyClient(&cfg)
	}
	if cfg.batchSize <= 0 {
		return nil, errors.New("keymanager: batch size must be positive")
	}
	dial := cfg.dialer
	if dial == nil {
		dial = func(addr string) (net.Conn, error) { return net.Dial("tcp", addr) }
	}
	conn, err := dial(addr)
	if err != nil {
		return nil, fmt.Errorf("keymanager: dial: %w", err)
	}
	c := &Client{
		conn:      conn,
		br:        bufio.NewReaderSize(conn, 256<<10),
		bw:        bufio.NewWriterSize(conn, 256<<10),
		batchSize: cfg.batchSize,
		cache:     cfg.cache,
	}
	if err := c.fetchParams(); err != nil {
		conn.Close()
		return nil, err
	}
	return c, nil
}

// Close closes the connection.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	return c.conn.Close()
}

// Params returns the key manager's public parameters.
func (c *Client) Params() oprf.PublicParams { return c.params }

func (c *Client) fetchParams() error {
	typ, payload, err := c.call(context.Background(), proto.MsgKMParamsReq, nil)
	if err != nil {
		return err
	}
	if typ != proto.MsgKMParamsResp {
		return fmt.Errorf("keymanager: unexpected response %v", typ)
	}
	params, err := oprf.UnmarshalPublicParams(payload)
	if err != nil {
		return fmt.Errorf("keymanager: params: %w", err)
	}
	c.params = params
	return nil
}

// call performs one synchronous RPC. Cancelling ctx interrupts blocked
// network I/O; the connection is then closed (the frame stream may be
// desynchronized) and later calls fail with ErrConnClosed.
func (c *Client) call(ctx context.Context, typ proto.MsgType, payload []byte) (proto.MsgType, []byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return 0, nil, ErrConnClosed
	}
	release := proto.GuardConn(ctx, c.conn)
	respType, respPayload, err := c.roundTrip(typ, payload)
	if cerr := release(); cerr != nil {
		c.closed = true
		_ = c.conn.Close()
		return 0, nil, fmt.Errorf("keymanager: %w", cerr)
	}
	if err != nil {
		return 0, nil, err
	}
	if respType == proto.MsgError {
		re, derr := proto.DecodeError(respPayload)
		if derr != nil {
			return 0, nil, derr
		}
		return 0, nil, re
	}
	return respType, respPayload, nil
}

// roundTrip writes one frame and reads the response. Callers hold c.mu.
func (c *Client) roundTrip(typ proto.MsgType, payload []byte) (proto.MsgType, []byte, error) {
	if err := proto.WriteFrame(c.bw, typ, payload); err != nil {
		return 0, nil, err
	}
	if err := c.bw.Flush(); err != nil {
		return 0, nil, err
	}
	return proto.ReadFrame(c.br)
}

// GenerateKeys returns the MLE key for every fingerprint, in order. Keys
// found in the cache skip the network; the rest are blinded, batched
// into round trips of the configured batch size, evaluated remotely,
// unblinded, verified, and cached. Cancelling ctx aborts between and
// during batches.
func (c *Client) GenerateKeys(ctx context.Context, fps []fingerprint.Fingerprint) ([][]byte, error) {
	keys := make([][]byte, len(fps))
	var missIdx []int
	if c.cache != nil {
		for i, fp := range fps {
			if key, ok := c.cache.Get(fp); ok {
				keys[i] = key
			} else {
				missIdx = append(missIdx, i)
			}
		}
	} else {
		missIdx = make([]int, len(fps))
		for i := range fps {
			missIdx[i] = i
		}
	}

	for start := 0; start < len(missIdx); start += c.batchSize {
		end := start + c.batchSize
		if end > len(missIdx) {
			end = len(missIdx)
		}
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("keymanager: %w", err)
		}
		if err := c.generateBatch(ctx, fps, keys, missIdx[start:end]); err != nil {
			return nil, err
		}
	}
	return keys, nil
}

// generateBatch resolves one batch of cache misses.
func (c *Client) generateBatch(ctx context.Context, fps []fingerprint.Fingerprint, keys [][]byte, idx []int) error {
	blinded := make([][]byte, len(idx))
	unblinders := make([]*oprf.Unblinder, len(idx))
	for i, j := range idx {
		b, u, err := oprf.Blind(c.params, fps[j][:], nil)
		if err != nil {
			return fmt.Errorf("keymanager: blind: %w", err)
		}
		blinded[i] = b
		unblinders[i] = u
	}

	typ, payload, err := c.call(ctx, proto.MsgKeyGenReq, proto.EncodeBlobList(blinded))
	if err != nil {
		return fmt.Errorf("keymanager: keygen rpc: %w", err)
	}
	if typ != proto.MsgKeyGenResp {
		return fmt.Errorf("keymanager: unexpected response %v", typ)
	}
	responses, err := proto.DecodeBlobList(payload, len(idx))
	if err != nil {
		return err
	}
	if len(responses) != len(idx) {
		return fmt.Errorf("keymanager: got %d responses for %d requests", len(responses), len(idx))
	}
	for i, j := range idx {
		key, err := oprf.Finalize(c.params, unblinders[i], responses[i])
		if err != nil {
			return fmt.Errorf("keymanager: finalize: %w", err)
		}
		keys[j] = key
		if c.cache != nil {
			c.cache.Put(fps[j], key)
		}
	}
	return nil
}

// DeriveKey implements mle.KeyDeriver for single-chunk callers (the
// interface carries no context, so the call is not cancellable).
func (c *Client) DeriveKey(fp fingerprint.Fingerprint) ([]byte, error) {
	keys, err := c.GenerateKeys(context.Background(), []fingerprint.Fingerprint{fp})
	if err != nil {
		return nil, err
	}
	return keys[0], nil
}

var _ mle.KeyDeriver = (*Client)(nil)
