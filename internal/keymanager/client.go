package keymanager

import (
	"context"
	"crypto/tls"
	"errors"
	"fmt"
	"net"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/fingerprint"
	"repro/internal/keycache"
	"repro/internal/metrics"
	"repro/internal/mle"
	"repro/internal/oprf"
	"repro/internal/proto"
	"repro/internal/retry"
	"repro/internal/rpcmux"
)

// ErrConnClosed is returned for calls on a connection torn down by Close
// or by a context cancellation that interrupted an in-flight frame.
var ErrConnClosed = rpcmux.ErrClosed

// Dialer opens a connection to an address; injectable so benchmarks can
// route through internal/netem's emulated link.
type Dialer func(addr string) (net.Conn, error)

// TLSDialer returns a Dialer that connects over TLS with the given
// configuration, securing the client–key-manager channel as the paper's
// threat model assumes. Serve the key manager through
// tls.NewListener(ln, serverConfig) on the other side.
func TLSDialer(cfg *tls.Config) Dialer {
	return func(addr string) (net.Conn, error) {
		host, _, err := net.SplitHostPort(addr)
		if err != nil {
			return nil, fmt.Errorf("keymanager: tls dial: %w", err)
		}
		c := cfg.Clone()
		if c.ServerName == "" {
			c.ServerName = host
		}
		return tls.Dial("tcp", addr, c)
	}
}

// Client talks to a key manager. It batches per-chunk key requests and
// optionally consults an MLE key cache before going to the network. It
// is safe for concurrent use; requests on one connection multiplex by
// request ID (internal/rpcmux), so concurrent batches overlap their
// round trips instead of serializing.
//
// The connection heals itself: a mid-session fault triggers a redial
// with capped-jitter backoff, and OPRF evaluations — deterministic,
// stateless on the server beyond a counter — are re-issued
// transparently.
type Client struct {
	mux    *rpcmux.Redialer
	params oprf.PublicParams

	// blinder precomputes blinding factors in the background so the
	// per-chunk blinding on the upload hot path is a single modular
	// multiplication. Created after the parameter fetch; nil only if
	// construction failed (Blind then falls back to inline generation).
	blinder *oprf.Blinder

	batchSize int
	cache     *keycache.Cache
}

// ClientOption configures a Client.
type ClientOption interface {
	applyClient(*clientConfig)
}

type clientConfig struct {
	batchSize int
	cache     *keycache.Cache
	dialer    Dialer
	retry     retry.Policy
}

type batchSizeOption int

func (o batchSizeOption) applyClient(c *clientConfig) { c.batchSize = int(o) }

// WithBatchSize sets how many per-chunk requests are packed into one
// network round trip (default 256, the paper's setting).
func WithBatchSize(n int) ClientOption { return batchSizeOption(n) }

type cacheOption struct{ cache *keycache.Cache }

func (o cacheOption) applyClient(c *clientConfig) { c.cache = o.cache }

// WithCache attaches an MLE key cache consulted before the network.
func WithCache(cache *keycache.Cache) ClientOption { return cacheOption{cache: cache} }

type dialerOption struct{ d Dialer }

func (o dialerOption) applyClient(c *clientConfig) { c.dialer = o.d }

// WithDialer overrides how the client connects (e.g. a bandwidth-
// throttled link).
func WithDialer(d Dialer) ClientOption { return dialerOption{d: d} }

type retryOption struct{ p retry.Policy }

func (o retryOption) applyClient(c *clientConfig) { c.retry = o.p }

// WithRetryPolicy sets the reconnect/retry backoff policy applied after
// mid-session connection faults (zero value: retry package defaults).
func WithRetryPolicy(p retry.Policy) ClientOption { return retryOption{p: p} }

// Dial connects to the key manager at addr and fetches its public
// parameters. ctx bounds the initial connection attempt and the
// parameter fetch; it does not govern the connection's lifetime.
func Dial(ctx context.Context, addr string, opts ...ClientOption) (*Client, error) {
	cfg := clientConfig{batchSize: DefaultBatchSize}
	for _, o := range opts {
		o.applyClient(&cfg)
	}
	if cfg.batchSize <= 0 {
		return nil, errors.New("keymanager: batch size must be positive")
	}
	// Redials happen long after the dialing context has expired, so the
	// redial path always uses the context-free Dialer form.
	dial := cfg.dialer
	if dial == nil {
		dial = func(addr string) (net.Conn, error) { return net.Dial("tcp", addr) }
	}
	var conn net.Conn
	var err error
	if cfg.dialer != nil {
		conn, err = cfg.dialer(addr)
	} else {
		conn, err = (&net.Dialer{}).DialContext(ctx, "tcp", addr)
	}
	if err != nil {
		return nil, fmt.Errorf("keymanager: dial: %w", err)
	}
	redial := func() (net.Conn, error) { return dial(addr) }
	c := &Client{
		mux:       rpcmux.NewRedialer(conn, redial, 256<<10, 256<<10, cfg.retry),
		batchSize: cfg.batchSize,
		cache:     cfg.cache,
	}
	if err := c.fetchParams(ctx); err != nil {
		c.mux.Close()
		return nil, err
	}
	// Pool blinding factors; the refill goroutine does its work while
	// GenerateKeys waits on the network. Depth is capped well below the
	// batch size: a huge pool is pure overproduction for short sessions
	// (each unused factor costs ~30 µs of CPU that competes with the
	// upload on small machines), while a modest one still hides the
	// per-batch round trip.
	depth := 2 * cfg.batchSize
	if depth > 256 {
		depth = 256
	}
	if bl, err := oprf.NewBlinder(c.params, depth, nil); err == nil {
		c.blinder = bl
	}
	return c, nil
}

// Close closes the connection.
func (c *Client) Close() error {
	if c.blinder != nil {
		c.blinder.Close()
	}
	return c.mux.Close()
}

// Reconnects reports how many times the connection has been
// re-established after a fault.
func (c *Client) Reconnects() uint64 { return c.mux.Reconnects() }

// Retries reports how many RPCs were transparently re-issued after a
// transport fault.
func (c *Client) Retries() uint64 { return c.mux.Retries() }

// Params returns the key manager's public parameters.
func (c *Client) Params() oprf.PublicParams { return c.params }

// Metrics fetches the key manager's metrics snapshot (empty when it
// runs uninstrumented). Read-only: re-issued transparently.
func (c *Client) Metrics(ctx context.Context) (metrics.Snapshot, error) {
	payload, err := c.call(ctx, proto.MsgMetricsReq, nil, proto.MsgMetricsResp)
	if err != nil {
		return metrics.Snapshot{}, err
	}
	return proto.DecodeMetricsResp(payload)
}

// Instrument attaches client-side RPC instrumentation (per-op latency
// and in-flight gauge) to this connection. Passing nil detaches.
func (c *Client) Instrument(in *rpcmux.Instruments) { c.mux.Instrument(in) }

func (c *Client) fetchParams(ctx context.Context) error {
	payload, err := c.call(ctx, proto.MsgKMParamsReq, nil, proto.MsgKMParamsResp)
	if err != nil {
		return err
	}
	params, err := oprf.UnmarshalPublicParams(payload)
	if err != nil {
		return fmt.Errorf("keymanager: params: %w", err)
	}
	c.params = params
	return nil
}

// call performs one RPC over the multiplexed connection. Concurrent
// calls overlap their round trips. Every key-manager RPC is idempotent
// — parameter fetches are reads and OPRF evaluations are deterministic
// functions of the blinded input — so all calls are re-issued
// transparently after a connection fault. Cancelling a call waiting
// for its response abandons just that call; cancellation that
// interrupts the request frame write retires the connection and the
// next call redials.
func (c *Client) call(ctx context.Context, typ proto.MsgType, payload []byte, want proto.MsgType) ([]byte, error) {
	resp, err := c.mux.Call(ctx, typ, payload, want, true)
	if err != nil {
		var re *proto.RemoteError
		if errors.As(err, &re) {
			return nil, re
		}
		return nil, fmt.Errorf("keymanager: %w", err)
	}
	return resp, nil
}

// GenerateKeys returns the MLE key for every fingerprint, in order. Keys
// found in the cache skip the network; the rest are blinded, batched
// into round trips of the configured batch size, evaluated remotely,
// unblinded, verified, and cached. Cancelling ctx aborts between and
// during batches.
func (c *Client) GenerateKeys(ctx context.Context, fps []fingerprint.Fingerprint) ([][]byte, error) {
	keys := make([][]byte, len(fps))
	var missIdx []int
	if c.cache != nil {
		for i, fp := range fps {
			if key, ok := c.cache.Get(fp); ok {
				keys[i] = key
			} else {
				missIdx = append(missIdx, i)
			}
		}
	} else {
		missIdx = make([]int, len(fps))
		for i := range fps {
			missIdx[i] = i
		}
	}

	for start := 0; start < len(missIdx); start += c.batchSize {
		end := start + c.batchSize
		if end > len(missIdx) {
			end = len(missIdx)
		}
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("keymanager: %w", err)
		}
		if err := c.generateBatch(ctx, fps, keys, missIdx[start:end]); err != nil {
			return nil, err
		}
	}
	return keys, nil
}

// generateBatch resolves one batch of cache misses.
func (c *Client) generateBatch(ctx context.Context, fps []fingerprint.Fingerprint, keys [][]byte, idx []int) error {
	blinded := make([][]byte, len(idx))
	unblinders := make([]*oprf.Unblinder, len(idx))
	for i, j := range idx {
		b, u, err := c.blind(fps[j][:])
		if err != nil {
			return fmt.Errorf("keymanager: blind: %w", err)
		}
		blinded[i] = b
		unblinders[i] = u
	}

	// Encode the batch into a pooled buffer: the request frame is
	// written before call returns, so the buffer can go straight back.
	buf := proto.GetBuffer()
	enc := proto.AppendBlobList((*buf)[:0], blinded)
	*buf = enc
	payload, err := c.call(ctx, proto.MsgKeyGenReq, enc, proto.MsgKeyGenResp)
	proto.PutBuffer(buf)
	if err != nil {
		return fmt.Errorf("keymanager: keygen rpc: %w", err)
	}
	responses, err := proto.DecodeBlobList(payload, len(idx))
	if err != nil {
		return err
	}
	if len(responses) != len(idx) {
		return fmt.Errorf("keymanager: got %d responses for %d requests", len(responses), len(idx))
	}
	if err := c.finalizeBatch(unblinders, responses, keys, idx); err != nil {
		return err
	}
	if c.cache != nil {
		for _, j := range idx {
			c.cache.Put(fps[j], keys[j])
		}
	}
	return nil
}

// blind produces one blinded element, preferring the precompute pool.
func (c *Client) blind(fp []byte) ([]byte, *oprf.Unblinder, error) {
	if c.blinder != nil {
		return c.blinder.Blind(fp)
	}
	return oprf.Blind(c.params, fp, nil)
}

// finalizeBatch unblinds and verifies a batch of responses, fanning out
// across cores when there are enough of them to pay for the goroutines.
// Each finalize is an independent verification exponentiation.
func (c *Client) finalizeBatch(unblinders []*oprf.Unblinder, responses [][]byte, keys [][]byte, idx []int) error {
	workers := runtime.GOMAXPROCS(0)
	if workers > len(idx) {
		workers = len(idx)
	}
	if workers <= 1 || len(idx) < 16 {
		for i, j := range idx {
			key, err := oprf.Finalize(c.params, unblinders[i], responses[i])
			if err != nil {
				return fmt.Errorf("keymanager: finalize: %w", err)
			}
			keys[j] = key
		}
		return nil
	}
	var (
		next    atomic.Int64
		wg      sync.WaitGroup
		errOnce sync.Once
		firstE  error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(idx) {
					return
				}
				key, err := oprf.Finalize(c.params, unblinders[i], responses[i])
				if err != nil {
					errOnce.Do(func() { firstE = fmt.Errorf("keymanager: finalize: %w", err) })
					return
				}
				keys[idx[i]] = key
			}
		}()
	}
	wg.Wait()
	return firstE
}

// DeriveKey implements mle.KeyDeriver for single-chunk callers (the
// interface carries no context, so the call is not cancellable).
func (c *Client) DeriveKey(fp fingerprint.Fingerprint) ([]byte, error) {
	//reed-vet:ignore ctxrule — mle.KeyDeriver's signature carries no context.
	keys, err := c.GenerateKeys(context.Background(), []fingerprint.Fingerprint{fp})
	if err != nil {
		return nil, err
	}
	return keys[0], nil
}

var _ mle.KeyDeriver = (*Client)(nil)
