// Package keymanager implements REED's dedicated key manager: the
// network service that turns chunk fingerprints into MLE keys via the
// blinded-RSA OPRF (internal/oprf), plus the client used by REED
// clients.
//
// The key manager never sees fingerprints — only blinded group elements —
// so it cannot infer chunk content (oblivious key generation). It
// rate-limits evaluation requests per remote client to resist online
// brute-force probing, and serves batched requests to amortize round
// trips (Section V-B, "Batching").
package keymanager

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
	"repro/internal/oprf"
	"repro/internal/proto"
	"repro/internal/ratelimit"
)

// DefaultBatchSize is the default key-generation batch. The paper uses
// 256 per-chunk requests; we widen the window to 1024 — Fig. 5b shows
// throughput still climbing at 256, and the wider batch amortizes the
// round trip and frame overhead further at a cost of ~256 KiB per
// in-flight request frame.
const DefaultBatchSize = 1024

// maxBatch bounds a single key-generation request.
const maxBatch = 1 << 16

// DefaultWorkers is the per-connection handler pool size.
const DefaultWorkers = 4

// Server is the key manager process.
type Server struct {
	key      *oprf.ServerKey
	params   []byte // marshaled public params
	rate     float64
	burst    float64
	workers  int
	limiters sync.Map // remote host -> *ratelimit.Limiter

	// baseCtx is the server's lifecycle context: rate-limit waits and
	// other blocking work inside request handlers select on it so
	// Shutdown can interrupt them instead of waiting out the limiter.
	baseCtx    context.Context
	cancelBase context.CancelFunc

	mu       sync.Mutex
	ln       net.Listener
	conns    map[net.Conn]struct{}
	wg       sync.WaitGroup
	shutdown bool

	evaluations uint64

	// Observability (see WithMetrics); all nil when uninstrumented.
	reg          *metrics.Registry
	ops          *metrics.OpSet
	connsGauge   *metrics.Gauge
	inflightReqs *metrics.Gauge
	rateDrops    *metrics.Counter
}

// ServerOption configures a Server.
type ServerOption interface {
	applyServer(*Server)
}

type rateLimitOption struct{ rate, burst float64 }

func (o rateLimitOption) applyServer(s *Server) { s.rate, s.burst = o.rate, o.burst }

// WithRateLimit enables per-client rate limiting: rate evaluations per
// second with the given burst. Zero rate (the default) disables
// limiting — benchmarks measure raw key-generation throughput, while a
// hardened deployment would always set this.
func WithRateLimit(rate, burst float64) ServerOption {
	return rateLimitOption{rate: rate, burst: burst}
}

type workersOption int

func (o workersOption) applyServer(s *Server) { s.workers = int(o) }

// WithWorkers sets the per-connection handler pool size (default
// DefaultWorkers): how many key-generation batches from one connection
// may evaluate concurrently.
func WithWorkers(n int) ServerOption { return workersOption(n) }

type metricsOption struct{ reg *metrics.Registry }

func (o metricsOption) applyServer(s *Server) { s.reg = o.reg }

// WithMetrics instruments the key manager: per-op dispatch latency,
// connection/worker gauges, OPRF evaluation and rate-limit-drop
// counters. A nil registry leaves the server uninstrumented.
func WithMetrics(reg *metrics.Registry) ServerOption { return metricsOption{reg} }

// NewServer returns a key manager serving the given OPRF key.
func NewServer(key *oprf.ServerKey, opts ...ServerOption) *Server {
	s := &Server{
		key:     key,
		params:  key.PublicParams().Marshal(),
		workers: DefaultWorkers,
		conns:   make(map[net.Conn]struct{}),
	}
	//reed-vet:ignore ctxrule — the server's lifecycle root, canceled by Shutdown.
	s.baseCtx, s.cancelBase = context.WithCancel(context.Background())
	for _, o := range opts {
		o.applyServer(s)
	}
	if s.workers < 1 {
		s.workers = 1
	}
	if s.reg != nil {
		s.ops = metrics.NewOpSet(s.reg, "dispatch", proto.OpNames())
		s.connsGauge = s.reg.Gauge("km_connections")
		s.inflightReqs = s.reg.Gauge("dispatch_inflight")
		s.rateDrops = s.reg.Counter("oprf_ratelimit_drops")
		s.reg.SetCounterFunc("oprf_evaluations", s.Evaluations)
	}
	return s
}

// Serve accepts connections on ln until Shutdown. It always returns a
// non-nil error; after Shutdown the error is net.ErrClosed.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.shutdown {
		s.mu.Unlock()
		return errors.New("keymanager: server already shut down")
	}
	s.ln = ln
	s.mu.Unlock()

	for {
		conn, err := ln.Accept()
		if err != nil {
			// Shutdown closes the listener out from under Accept;
			// normalize the raw closed-connection error to net.ErrClosed
			// so callers can test for a clean stop.
			s.mu.Lock()
			down := s.shutdown
			s.mu.Unlock()
			if down {
				return net.ErrClosed
			}
			return err
		}
		s.mu.Lock()
		if s.shutdown {
			s.mu.Unlock()
			conn.Close()
			return net.ErrClosed
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			s.handleConn(conn)
		}()
	}
}

// Shutdown stops accepting, closes active connections, and waits for
// handlers to drain.
func (s *Server) Shutdown() {
	s.cancelBase()
	s.mu.Lock()
	s.shutdown = true
	if s.ln != nil {
		s.ln.Close()
	}
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
}

// Evaluations returns the number of OPRF evaluations served (for tests
// and the batching ablation).
func (s *Server) Evaluations() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.evaluations
}

// Metrics returns the key manager's registry (nil when uninstrumented).
func (s *Server) Metrics() *metrics.Registry { return s.reg }

// MetricsSnapshot captures the key manager's registry; empty when
// uninstrumented.
func (s *Server) MetricsSnapshot() metrics.Snapshot { return s.reg.Snapshot() }

// outFrame is one response queued for a connection's writer goroutine.
type outFrame struct {
	typ     proto.MsgType
	id      uint64
	payload []byte
}

// handleConn serves one connection with concurrent dispatch: the read
// loop keeps draining frames while up to s.workers key-generation
// batches evaluate, and responses return tagged with their request IDs
// (possibly out of order). See server.Server.handleConn for the shape;
// the two stay deliberately parallel.
func (s *Server) handleConn(conn net.Conn) {
	s.connsGauge.Inc()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		s.connsGauge.Dec()
	}()

	limiter := s.limiterFor(conn)
	br := bufio.NewReaderSize(conn, 256<<10)
	bw := bufio.NewWriterSize(conn, 256<<10)

	respCh := make(chan outFrame, s.workers)
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		var werr error
		for f := range respCh {
			if werr != nil {
				continue // drain so handlers never block on a dead writer
			}
			if werr = proto.WriteFrame(bw, f.typ, f.id, f.payload); werr == nil && len(respCh) == 0 {
				werr = bw.Flush()
			}
			if werr != nil {
				conn.Close() // unblock the read loop
			}
		}
	}()

	sem := make(chan struct{}, s.workers)
	var handlers sync.WaitGroup
	for {
		typ, id, payload, err := proto.ReadFrame(br)
		if err != nil {
			break // EOF or broken conn: drop silently
		}
		sem <- struct{}{} // backpressure: pool full ⇒ stop reading
		handlers.Add(1)
		go func() {
			defer func() {
				<-sem
				handlers.Done()
			}()
			respType, respPayload := s.dispatchTimed(typ, payload, limiter)
			respCh <- outFrame{typ: respType, id: id, payload: respPayload}
		}()
	}
	handlers.Wait()
	close(respCh)
	<-writerDone
}

// dispatchTimed wraps dispatch with per-op accounting; a plain tail
// call when uninstrumented.
func (s *Server) dispatchTimed(typ proto.MsgType, payload []byte, limiter *ratelimit.Limiter) (proto.MsgType, []byte) {
	if s.ops == nil {
		return s.dispatch(typ, payload, limiter)
	}
	s.inflightReqs.Inc()
	start := time.Now()
	respType, respPayload := s.dispatch(typ, payload, limiter)
	s.inflightReqs.Dec()
	s.ops.Observe(int(typ), time.Since(start), respType == proto.MsgError)
	return respType, respPayload
}

func (s *Server) dispatch(typ proto.MsgType, payload []byte, limiter *ratelimit.Limiter) (proto.MsgType, []byte) {
	switch typ {
	case proto.MsgKMParamsReq:
		return proto.MsgKMParamsResp, s.params

	case proto.MsgMetricsReq:
		resp, err := proto.EncodeMetricsResp(s.reg.Snapshot())
		if err != nil {
			return proto.MsgError, proto.EncodeError(err.Error())
		}
		return proto.MsgMetricsResp, resp

	case proto.MsgKeyGenReq:
		blinded, err := proto.DecodeBlobList(payload, maxBatch)
		if err != nil {
			return proto.MsgError, proto.EncodeError(err.Error())
		}
		if limiter != nil {
			if err := limiter.Wait(s.baseCtx, float64(len(blinded))); err != nil {
				s.rateDrops.Inc()
				return proto.MsgError, proto.EncodeError("rate limited: " + err.Error())
			}
		}
		responses, err := s.evaluateBatch(blinded)
		if err != nil {
			return proto.MsgError, proto.EncodeError(err.Error())
		}
		s.mu.Lock()
		s.evaluations += uint64(len(blinded))
		s.mu.Unlock()
		return proto.MsgKeyGenResp, proto.EncodeBlobList(responses)

	default:
		return proto.MsgError, proto.EncodeError("keymanager: unexpected message " + typ.String())
	}
}

// minParallelBatch is the smallest key-gen batch worth fanning out
// across cores; below it goroutine overhead beats the RSA savings.
const minParallelBatch = 16

// evaluateBatch runs the OPRF over a decoded batch. Large batches on a
// multi-core host fan out across GOMAXPROCS goroutines — each
// evaluation is an independent modular exponentiation, so the batch
// parallelizes perfectly; single-core hosts keep the serial path.
func (s *Server) evaluateBatch(blinded [][]byte) ([][]byte, error) {
	responses := make([][]byte, len(blinded))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(blinded) {
		workers = len(blinded)
	}
	if workers <= 1 || len(blinded) < minParallelBatch {
		for i, b := range blinded {
			resp, err := s.key.Evaluate(b)
			if err != nil {
				return nil, fmt.Errorf("evaluate %d: %w", i, err)
			}
			responses[i] = resp
		}
		return responses, nil
	}

	var (
		next    atomic.Int64
		wg      sync.WaitGroup
		errOnce sync.Once
		firstE  error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(blinded) {
					return
				}
				resp, err := s.key.Evaluate(blinded[i])
				if err != nil {
					errOnce.Do(func() { firstE = fmt.Errorf("evaluate %d: %w", i, err) })
					return
				}
				responses[i] = resp
			}
		}()
	}
	wg.Wait()
	if firstE != nil {
		return nil, firstE
	}
	return responses, nil
}

// limiterFor returns the per-remote-host limiter, creating it on first
// use. Returns nil when rate limiting is disabled.
func (s *Server) limiterFor(conn net.Conn) *ratelimit.Limiter {
	if s.rate <= 0 {
		return nil
	}
	host, _, err := net.SplitHostPort(conn.RemoteAddr().String())
	if err != nil {
		host = conn.RemoteAddr().String()
	}
	if l, ok := s.limiters.Load(host); ok {
		lim, _ := l.(*ratelimit.Limiter)
		return lim
	}
	lim, err := ratelimit.New(s.rate, s.burst)
	if err != nil {
		return nil
	}
	actual, _ := s.limiters.LoadOrStore(host, lim)
	stored, _ := actual.(*ratelimit.Limiter)
	return stored
}
