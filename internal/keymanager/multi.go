package keymanager

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"repro/internal/fingerprint"
	"repro/internal/mle"
	"repro/internal/oprf"
)

// MultiClient adds key-manager availability: it holds a list of replica
// addresses and fails over when the active replica becomes unreachable.
//
// The paper notes its single-key-manager design "can be generalized for
// multiple key managers for improved availability" (citing Duan's
// threshold-signature construction). This implementation models the
// availability dimension with replicas that share one OPRF key — all
// replicas must return identical MLE keys or deduplication would
// silently fracture, so MultiClient verifies each replica's public
// parameters on failover and refuses mismatched replicas. Splitting the
// key itself across managers (threshold RSA) would additionally remove
// the single point of key compromise; that is out of scope here.
type MultiClient struct {
	addrs []string
	opts  []ClientOption

	mu     sync.Mutex
	cur    *Client
	idx    int
	params *oprf.PublicParams // pinned at first connect
}

// ErrNoKeyManager is returned when every replica is unreachable.
var ErrNoKeyManager = errors.New("keymanager: no reachable key manager")

// DialMulti connects to the first reachable replica. ctx bounds the
// initial connection sweep.
func DialMulti(ctx context.Context, addrs []string, opts ...ClientOption) (*MultiClient, error) {
	if len(addrs) == 0 {
		return nil, errors.New("keymanager: no addresses")
	}
	m := &MultiClient{addrs: addrs, opts: opts}
	if err := m.connectLocked(ctx); err != nil {
		return nil, err
	}
	return m, nil
}

// connectLocked dials replicas starting at the current index until one
// answers. Callers hold m.mu (or are the constructor).
func (m *MultiClient) connectLocked(ctx context.Context) error {
	var lastErr error
	for attempt := 0; attempt < len(m.addrs); attempt++ {
		addr := m.addrs[m.idx]
		client, err := Dial(ctx, addr, m.opts...)
		if err == nil {
			// Replicas must share the OPRF key: identical public
			// parameters mean identical MLE keys. Pin the first
			// replica's parameters and hold every later one to them.
			got := client.Params()
			if m.params == nil {
				m.params = &got
			} else if m.params.N.Cmp(got.N) != 0 || m.params.E.Cmp(got.E) != 0 {
				client.Close()
				return fmt.Errorf("keymanager: replica %s serves a different OPRF key", addr)
			}
			if m.cur != nil {
				m.cur.Close()
			}
			m.cur = client
			return nil
		}
		lastErr = err
		m.idx = (m.idx + 1) % len(m.addrs)
	}
	if lastErr != nil {
		return fmt.Errorf("%w: %w", ErrNoKeyManager, lastErr)
	}
	return ErrNoKeyManager
}

// GenerateKeys resolves MLE keys with failover: a transport error
// triggers reconnection to the next replica and one retry per replica.
// Context cancellation is terminal — it aborts the call without trying
// further replicas.
func (m *MultiClient) GenerateKeys(ctx context.Context, fps []fingerprint.Fingerprint) ([][]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	var lastErr error
	for attempt := 0; attempt <= len(m.addrs); attempt++ {
		if m.cur == nil {
			if err := m.connectLocked(ctx); err != nil {
				return nil, err
			}
		}
		keys, err := m.cur.GenerateKeys(ctx, fps)
		if err == nil {
			return keys, nil
		}
		if ctx.Err() != nil {
			return nil, err
		}
		lastErr = err
		m.cur.Close()
		m.cur = nil
		m.idx = (m.idx + 1) % len(m.addrs)
	}
	return nil, fmt.Errorf("%w: %w", ErrNoKeyManager, lastErr)
}

// DeriveKey implements mle.KeyDeriver (the interface carries no
// context, so the call is not cancellable).
func (m *MultiClient) DeriveKey(fp fingerprint.Fingerprint) ([]byte, error) {
	//reed-vet:ignore ctxrule — mle.KeyDeriver's signature carries no context.
	keys, err := m.GenerateKeys(context.Background(), []fingerprint.Fingerprint{fp})
	if err != nil {
		return nil, err
	}
	return keys[0], nil
}

var _ mle.KeyDeriver = (*MultiClient)(nil)

// Close closes the active connection.
func (m *MultiClient) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.cur == nil {
		return nil
	}
	err := m.cur.Close()
	m.cur = nil
	return err
}
