package keymanager

import (
	"bytes"
	"errors"
	"net"
	"testing"

	"repro/internal/oprf"
)

func TestMultiClientFailover(t *testing.T) {
	// Two replicas sharing one OPRF key.
	key := serverKey(t)
	srvA := NewServer(key)
	lnA, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srvA.Serve(lnA) }()

	srvB := NewServer(key)
	lnB, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srvB.Serve(lnB) }()
	t.Cleanup(srvB.Shutdown)

	mc, err := DialMulti(ctx, []string{lnA.Addr().String(), lnB.Addr().String()})
	if err != nil {
		t.Fatal(err)
	}
	defer mc.Close()

	ids := fps(5)
	before, err := mc.GenerateKeys(ctx, ids)
	if err != nil {
		t.Fatal(err)
	}

	// Kill the active replica; the next request must fail over and
	// return identical keys.
	srvA.Shutdown()
	after, err := mc.GenerateKeys(ctx, ids)
	if err != nil {
		t.Fatalf("failover failed: %v", err)
	}
	for i := range before {
		if !bytes.Equal(before[i], after[i]) {
			t.Fatalf("key %d differs across replicas", i)
		}
	}
	if got := srvB.Evaluations(); got == 0 {
		t.Fatal("replica B served no evaluations after failover")
	}
}

func TestMultiClientRejectsMismatchedReplica(t *testing.T) {
	keyA := serverKey(t)
	keyB, err := oprf.GenerateServerKey(oprf.DefaultBits, nil)
	if err != nil {
		t.Fatal(err)
	}

	srvA := NewServer(keyA)
	lnA, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srvA.Serve(lnA) }()

	srvB := NewServer(keyB) // different OPRF key!
	lnB, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srvB.Serve(lnB) }()
	t.Cleanup(srvB.Shutdown)

	mc, err := DialMulti(ctx, []string{lnA.Addr().String(), lnB.Addr().String()})
	if err != nil {
		t.Fatal(err)
	}
	defer mc.Close()
	if _, err := mc.GenerateKeys(ctx, fps(1)); err != nil {
		t.Fatal(err)
	}

	// Failover to the mismatched replica must be refused, not silently
	// accepted (it would fracture deduplication).
	srvA.Shutdown()
	if _, err := mc.GenerateKeys(ctx, fps(1)); err == nil {
		t.Fatal("mismatched replica accepted")
	}
}

func TestMultiClientAllDown(t *testing.T) {
	if _, err := DialMulti(ctx, []string{"127.0.0.1:1", "127.0.0.1:2"}); !errors.Is(err, ErrNoKeyManager) {
		t.Fatalf("error = %v, want ErrNoKeyManager", err)
	}
}

func TestMultiClientNoAddrs(t *testing.T) {
	if _, err := DialMulti(ctx, nil); err == nil {
		t.Fatal("empty address list accepted")
	}
}

func TestMultiClientDeriveKey(t *testing.T) {
	key := serverKey(t)
	srv := NewServer(key)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(ln) }()
	t.Cleanup(srv.Shutdown)

	mc, err := DialMulti(ctx, []string{ln.Addr().String()})
	if err != nil {
		t.Fatal(err)
	}
	defer mc.Close()
	got, err := mc.DeriveKey(fps(1)[0])
	if err != nil {
		t.Fatal(err)
	}
	want, _ := key.Derive(fps(1)[0][:])
	if !bytes.Equal(got, want) {
		t.Fatal("DeriveKey mismatch")
	}
}
