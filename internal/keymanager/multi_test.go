package keymanager

import (
	"bytes"
	"errors"
	"net"
	"runtime"
	"testing"
	"time"

	"repro/internal/netem"
	"repro/internal/oprf"
)

func TestMultiClientFailover(t *testing.T) {
	// Two replicas sharing one OPRF key.
	key := serverKey(t)
	srvA := NewServer(key)
	lnA, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srvA.Serve(lnA) }()

	srvB := NewServer(key)
	lnB, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srvB.Serve(lnB) }()
	t.Cleanup(srvB.Shutdown)

	mc, err := DialMulti(ctx, []string{lnA.Addr().String(), lnB.Addr().String()})
	if err != nil {
		t.Fatal(err)
	}
	defer mc.Close()

	ids := fps(5)
	before, err := mc.GenerateKeys(ctx, ids)
	if err != nil {
		t.Fatal(err)
	}

	// Kill the active replica; the next request must fail over and
	// return identical keys.
	srvA.Shutdown()
	after, err := mc.GenerateKeys(ctx, ids)
	if err != nil {
		t.Fatalf("failover failed: %v", err)
	}
	for i := range before {
		if !bytes.Equal(before[i], after[i]) {
			t.Fatalf("key %d differs across replicas", i)
		}
	}
	if got := srvB.Evaluations(); got == 0 {
		t.Fatal("replica B served no evaluations after failover")
	}
}

// TestMultiClientFaultMidBatchFailover cuts the primary's connection
// partway through a single GenerateKeys batch — not between calls — so
// the transport error surfaces mid-RPC. The call itself must complete
// through the secondary replica with the exact same keys the primary
// would have served, and the torn connection must not leak a goroutine.
func TestMultiClientFaultMidBatchFailover(t *testing.T) {
	key := serverKey(t) // warm the shared fixture before counting
	before := runtime.NumGoroutine()

	srvA := NewServer(key)
	lnA, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srvA.Serve(lnA) }()
	srvB := NewServer(key)
	lnB, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		srvA.Shutdown()
		t.Fatal(err)
	}
	go func() { _ = srvB.Serve(lnB) }()
	teardown := func() {
		srvA.Shutdown()
		srvB.Shutdown()
		_ = lnA.Close()
		_ = lnB.Close()
	}

	// Dial 0 is the primary. The params handshake writes well under
	// 2 KiB; a 64-fingerprint batch of 1024-bit blinded values writes
	// ~8 KiB, so the cut lands inside the batch.
	plan := netem.NewPlan(11)
	plan.OnDial(0, netem.Fault{CutAfterWriteBytes: 2 << 10})
	mc, err := DialMulti(ctx, []string{lnA.Addr().String(), lnB.Addr().String()},
		WithDialer(plan.Dialer(nil)))
	if err != nil {
		teardown()
		t.Fatal(err)
	}

	// Kill the primary's listener while its accepted connection stays
	// up: the underlying client would otherwise heal the cut by
	// redialing the same replica, and MultiClient would never see the
	// fault. With the listener gone, the redial fails and the error
	// surfaces mid-call.
	_ = lnA.Close()

	ids := fps(64)
	keys, genErr := mc.GenerateKeys(ctx, ids)
	_ = mc.Close()
	teardown()
	if genErr != nil {
		t.Fatalf("GenerateKeys across mid-batch cut: %v", genErr)
	}
	if plan.Injected() == 0 {
		t.Fatal("fault never fired; cut offset no longer inside the batch")
	}
	for i, fp := range ids {
		want, err := key.Derive(fp[:])
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(keys[i], want) {
			t.Fatalf("key %d differs from direct derivation after failover", i)
		}
	}
	if srvB.Evaluations() == 0 {
		t.Fatal("secondary replica served no evaluations; batch did not fail over")
	}

	// Connection teardown is asynchronous; give the runtime a moment.
	deadline := time.Now().Add(3 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak: %d before, %d after teardown\n%s",
				before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestMultiClientRejectsMismatchedReplica(t *testing.T) {
	keyA := serverKey(t)
	keyB, err := oprf.GenerateServerKey(oprf.DefaultBits, nil)
	if err != nil {
		t.Fatal(err)
	}

	srvA := NewServer(keyA)
	lnA, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srvA.Serve(lnA) }()

	srvB := NewServer(keyB) // different OPRF key!
	lnB, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srvB.Serve(lnB) }()
	t.Cleanup(srvB.Shutdown)

	mc, err := DialMulti(ctx, []string{lnA.Addr().String(), lnB.Addr().String()})
	if err != nil {
		t.Fatal(err)
	}
	defer mc.Close()
	if _, err := mc.GenerateKeys(ctx, fps(1)); err != nil {
		t.Fatal(err)
	}

	// Failover to the mismatched replica must be refused, not silently
	// accepted (it would fracture deduplication).
	srvA.Shutdown()
	if _, err := mc.GenerateKeys(ctx, fps(1)); err == nil {
		t.Fatal("mismatched replica accepted")
	}
}

func TestMultiClientAllDown(t *testing.T) {
	if _, err := DialMulti(ctx, []string{"127.0.0.1:1", "127.0.0.1:2"}); !errors.Is(err, ErrNoKeyManager) {
		t.Fatalf("error = %v, want ErrNoKeyManager", err)
	}
}

func TestMultiClientNoAddrs(t *testing.T) {
	if _, err := DialMulti(ctx, nil); err == nil {
		t.Fatal("empty address list accepted")
	}
}

func TestMultiClientDeriveKey(t *testing.T) {
	key := serverKey(t)
	srv := NewServer(key)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(ln) }()
	t.Cleanup(srv.Shutdown)

	mc, err := DialMulti(ctx, []string{ln.Addr().String()})
	if err != nil {
		t.Fatal(err)
	}
	defer mc.Close()
	got, err := mc.DeriveKey(fps(1)[0])
	if err != nil {
		t.Fatal(err)
	}
	want, _ := key.Derive(fps(1)[0][:])
	if !bytes.Equal(got, want) {
		t.Fatal("DeriveKey mismatch")
	}
}
