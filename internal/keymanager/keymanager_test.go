package keymanager

import (
	"bytes"
	"context"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/fingerprint"
	"repro/internal/keycache"
	"repro/internal/oprf"
)

// ctx is the default context test call sites run under.
var ctx = context.Background()

var (
	kmKeyOnce sync.Once
	kmKey     *oprf.ServerKey
)

func serverKey(t testing.TB) *oprf.ServerKey {
	t.Helper()
	kmKeyOnce.Do(func() {
		k, err := oprf.GenerateServerKey(oprf.DefaultBits, nil)
		if err != nil {
			t.Fatalf("generate key: %v", err)
		}
		kmKey = k
	})
	return kmKey
}

// startServer runs a key manager on a loopback listener and returns its
// address plus a shutdown func.
func startServer(t testing.TB, opts ...ServerOption) (*Server, string) {
	t.Helper()
	srv := NewServer(serverKey(t), opts...)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(ln) }()
	t.Cleanup(srv.Shutdown)
	return srv, ln.Addr().String()
}

func fps(n int) []fingerprint.Fingerprint {
	out := make([]fingerprint.Fingerprint, n)
	for i := range out {
		out[i] = fingerprint.New([]byte{byte(i), byte(i >> 8), 0xAA})
	}
	return out
}

func TestGenerateKeysMatchesDirectDerivation(t *testing.T) {
	_, addr := startServer(t)
	client, err := Dial(ctx, addr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	ids := fps(10)
	keys, err := client.GenerateKeys(ctx, ids)
	if err != nil {
		t.Fatal(err)
	}
	for i, fp := range ids {
		want, err := serverKey(t).Derive(fp[:])
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(keys[i], want) {
			t.Fatalf("key %d does not match direct derivation", i)
		}
	}
}

func TestGenerateKeysBatches(t *testing.T) {
	srv, addr := startServer(t)
	client, err := Dial(ctx, addr, WithBatchSize(4))
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	before := srv.Evaluations()
	if _, err := client.GenerateKeys(ctx, fps(10)); err != nil {
		t.Fatal(err)
	}
	if got := srv.Evaluations() - before; got != 10 {
		t.Fatalf("evaluations = %d, want 10", got)
	}
}

func TestCacheAvoidsNetwork(t *testing.T) {
	srv, addr := startServer(t)
	cache, err := keycache.New(keycache.DefaultCapacity)
	if err != nil {
		t.Fatal(err)
	}
	client, err := Dial(ctx, addr, WithCache(cache))
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	ids := fps(8)
	first, err := client.GenerateKeys(ctx, ids)
	if err != nil {
		t.Fatal(err)
	}
	evalsAfterFirst := srv.Evaluations()

	second, err := client.GenerateKeys(ctx, ids)
	if err != nil {
		t.Fatal(err)
	}
	if srv.Evaluations() != evalsAfterFirst {
		t.Fatal("cached keys still hit the key manager")
	}
	for i := range first {
		if !bytes.Equal(first[i], second[i]) {
			t.Fatalf("cached key %d differs", i)
		}
	}
}

func TestDeriveKeyInterface(t *testing.T) {
	_, addr := startServer(t)
	client, err := Dial(ctx, addr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	fp := fingerprint.New([]byte("single"))
	key, err := client.DeriveKey(fp)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := serverKey(t).Derive(fp[:])
	if !bytes.Equal(key, want) {
		t.Fatal("DeriveKey mismatch")
	}
}

func TestMultipleClients(t *testing.T) {
	_, addr := startServer(t)
	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			client, err := Dial(ctx, addr)
			if err != nil {
				errs <- err
				return
			}
			defer client.Close()
			if _, err := client.GenerateKeys(ctx, fps(20)); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestRateLimitSlowsClients(t *testing.T) {
	// Generous burst so the test stays fast, but verify the limiter
	// path executes without error.
	_, addr := startServer(t, WithRateLimit(10000, 10000))
	client, err := Dial(ctx, addr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if _, err := client.GenerateKeys(ctx, fps(5)); err != nil {
		t.Fatal(err)
	}
}

func TestDialBadBatchSize(t *testing.T) {
	if _, err := Dial(ctx, "127.0.0.1:1", WithBatchSize(0)); err == nil {
		t.Fatal("batch size 0 expected error")
	}
}

func TestDialUnreachable(t *testing.T) {
	if _, err := Dial(ctx, "127.0.0.1:1"); err == nil {
		t.Fatal("unreachable address expected error")
	}
}

func TestGenerateKeysEmpty(t *testing.T) {
	_, addr := startServer(t)
	client, err := Dial(ctx, addr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	keys, err := client.GenerateKeys(ctx, nil)
	if err != nil || len(keys) != 0 {
		t.Fatalf("GenerateKeys(nil) = %v, %v", keys, err)
	}
}

func TestShutdownClosesConnections(t *testing.T) {
	srv := NewServer(serverKey(t))
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = srv.Serve(ln)
	}()
	client, err := Dial(ctx, ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	srv.Shutdown()
	<-done
	// Requests after shutdown must fail, not hang.
	if _, err := client.GenerateKeys(ctx, fps(1)); err == nil {
		t.Fatal("request after shutdown expected error")
	}
}

// TestServeReturnsErrClosedAfterShutdown mirrors the storage server's
// contract: a Serve loop stopped by Shutdown reports net.ErrClosed.
func TestServeReturnsErrClosedAfterShutdown(t *testing.T) {
	srv := NewServer(serverKey(t))
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	conn.Close()

	srv.Shutdown()
	select {
	case err := <-errCh:
		if !errors.Is(err, net.ErrClosed) {
			t.Fatalf("Serve returned %v, want net.ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after Shutdown")
	}
}

// TestConcurrentBatchesOneConnection issues key-generation batches from
// several goroutines over one client connection. The mux tags each
// batch with a request ID, so responses returning out of order must
// still unblind to the same keys direct derivation produces.
func TestConcurrentBatchesOneConnection(t *testing.T) {
	_, addr := startServer(t)
	client, err := Dial(ctx, addr, WithBatchSize(4))
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	all := fps(32)
	want := make([][]byte, len(all))
	for i, fp := range all {
		k, err := serverKey(t).Derive(fp[:])
		if err != nil {
			t.Fatal(err)
		}
		want[i] = k
	}

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Each goroutine requests an overlapping window, in several
			// batches (batch size 4 over 16 fingerprints).
			window := all[(g*4)%16 : (g*4)%16+16]
			keys, err := client.GenerateKeys(ctx, window)
			if err != nil {
				t.Errorf("goroutine %d: %v", g, err)
				return
			}
			for i, k := range keys {
				j := (g*4)%16 + i
				if !bytes.Equal(k, want[j]) {
					t.Errorf("goroutine %d: key %d mismatched its fingerprint", g, i)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
