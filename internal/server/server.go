// Package server implements the REED storage server: the cloud-side
// process that performs server-side deduplication on trimmed packages
// and manages the data store and key store (Section III-A).
//
// A server exposes two planes over the wire protocol:
//
//   - the chunk plane: batched puts of trimmed packages (deduplicated
//     into 4 MB containers via internal/dedup) and batched gets;
//   - the blob plane: file recipes, encrypted stub files, and encrypted
//     key states, stored verbatim.
//
// The paper deploys four data-store servers plus one key-store server;
// both roles run this same server type, differing only in which planes
// clients use.
package server

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"

	"repro/internal/audit"
	"repro/internal/dedup"
	"repro/internal/fileindex"
	"repro/internal/fingerprint"
	"repro/internal/metrics"
	"repro/internal/proto"
	"repro/internal/store"
)

// allowedNamespaces lists the blob namespaces clients may touch.
var allowedNamespaces = map[string]bool{
	store.NSRecipes:   true,
	store.NSStubs:     true,
	store.NSKeyStates: true,
}

// DefaultWorkers is the per-connection handler pool size: how many
// request frames from one connection may execute concurrently.
const DefaultWorkers = 8

// Server is one REED storage server.
type Server struct {
	backend store.Backend
	chunks  *dedup.Store
	// files is the whole-file fingerprint index behind the two-phase
	// upload's CheckFile/RegisterFile RPCs (see internal/fileindex).
	files   *fileindex.Index
	workers int

	// baseCtx is the lifecycle root for request handling: it parents
	// every dispatched request and is canceled by Shutdown once the
	// final flush has completed.
	baseCtx    context.Context
	cancelBase context.CancelFunc

	mu       sync.Mutex
	ln       net.Listener
	conns    map[net.Conn]struct{}
	wg       sync.WaitGroup
	shutdown bool

	// stubMu guards stub-size accounting separately from the
	// connection-tracking mutex so blob handlers never contend with
	// accept/shutdown bookkeeping.
	stubMu    sync.Mutex
	stubSizes map[string]int // stub blob name -> current size
	stubBytes uint64

	// Observability (see metrics.go); all nil when uninstrumented.
	reg          *metrics.Registry
	ops          *metrics.OpSet
	connsGauge   *metrics.Gauge
	inflightReqs *metrics.Gauge
}

// Option configures a Server.
type Option interface {
	applyServer(*Server)
}

type workersOption int

func (o workersOption) applyServer(s *Server) { s.workers = int(o) }

// WithWorkers sets the per-connection handler pool size (default
// DefaultWorkers). One connection executes at most this many requests
// concurrently; further frames queue in the socket, which is the
// protocol's backpressure.
func WithWorkers(n int) Option { return workersOption(n) }

// New returns a server over the given backend. The context governs
// construction only — it bounds the dedup store's crash recovery
// (snapshot load, WAL replay, container scrub), which can take real
// time on a large store.
func New(ctx context.Context, backend store.Backend, opts ...Option) (*Server, error) {
	chunks, err := dedup.Open(ctx, backend, dedup.DefaultContainerSize)
	if err != nil {
		return nil, fmt.Errorf("server: open dedup store: %w", err)
	}
	files, err := fileindex.Open(ctx, backend)
	if err != nil {
		return nil, fmt.Errorf("server: open file index: %w", err)
	}
	s := &Server{
		backend:   backend,
		chunks:    chunks,
		files:     files,
		workers:   DefaultWorkers,
		conns:     make(map[net.Conn]struct{}),
		stubSizes: make(map[string]int),
	}
	//reed-vet:ignore ctxrule — the server's lifecycle root, canceled by Shutdown.
	s.baseCtx, s.cancelBase = context.WithCancel(context.Background())
	for _, o := range opts {
		o.applyServer(s)
	}
	if s.workers < 1 {
		s.workers = 1
	}
	s.initMetrics()
	return s, nil
}

// Serve accepts connections until Shutdown. It always returns a
// non-nil error; after a clean Shutdown the error is net.ErrClosed.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.shutdown {
		s.mu.Unlock()
		return errors.New("server: already shut down")
	}
	s.ln = ln
	s.mu.Unlock()

	for {
		conn, err := ln.Accept()
		if err != nil {
			// Shutdown closes the listener out from under Accept, which
			// surfaces as a raw "use of closed network connection";
			// normalize that to net.ErrClosed so callers can test for a
			// clean stop.
			s.mu.Lock()
			down := s.shutdown
			s.mu.Unlock()
			if down {
				return net.ErrClosed
			}
			return err
		}
		s.mu.Lock()
		if s.shutdown {
			s.mu.Unlock()
			conn.Close()
			return net.ErrClosed
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			s.handleConn(conn)
		}()
	}
}

// Shutdown stops the server and flushes the dedup store. The final
// flush runs under the lifecycle context, which is canceled only after
// the flush finishes (or fails).
func (s *Server) Shutdown() error {
	s.mu.Lock()
	s.shutdown = true
	if s.ln != nil {
		s.ln.Close()
	}
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	err := s.chunks.Flush(s.baseCtx)
	if ferr := s.files.Flush(s.baseCtx); ferr != nil && err == nil {
		err = ferr
	}
	s.cancelBase()
	return err
}

// Stats returns the server's dedup statistics.
func (s *Server) Stats() proto.Stats {
	d := s.chunks.Stats()
	s.stubMu.Lock()
	stub := s.stubBytes
	s.stubMu.Unlock()
	return proto.Stats{
		TotalPuts:     d.TotalPuts,
		DedupedPuts:   d.DedupedPuts,
		LogicalBytes:  d.LogicalBytes,
		PhysicalBytes: d.PhysicalBytes,
		StubBytes:     stub,
	}
}

// outFrame is one response queued for a connection's writer goroutine.
type outFrame struct {
	typ     proto.MsgType
	id      uint64
	payload []byte
}

// handleConn serves one connection with concurrent dispatch: the read
// loop keeps draining request frames while up to s.workers handlers for
// earlier frames run; each response is written back tagged with its
// request's ID by a dedicated writer goroutine, so responses may return
// out of order. A full pool blocks the read loop (backpressure), and a
// closed connection — peer disconnect or Shutdown — unwinds cleanly:
// in-flight handlers finish, their responses are drained, and only then
// does the connection retire.
func (s *Server) handleConn(conn net.Conn) {
	s.connsGauge.Inc()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		s.connsGauge.Dec()
	}()

	br := bufio.NewReaderSize(conn, 1<<20)
	bw := bufio.NewWriterSize(conn, 1<<20)

	respCh := make(chan outFrame, s.workers)
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		var werr error
		for f := range respCh {
			if werr != nil {
				continue // drain so handlers never block on a dead writer
			}
			if werr = proto.WriteFrame(bw, f.typ, f.id, f.payload); werr == nil && len(respCh) == 0 {
				// Flush only when no more responses are queued,
				// coalescing bursts into one syscall.
				werr = bw.Flush()
			}
			if werr != nil {
				conn.Close() // unblock the read loop
			}
		}
	}()

	sem := make(chan struct{}, s.workers)
	var handlers sync.WaitGroup
	for {
		typ, id, payload, err := proto.ReadFrame(br)
		if err != nil {
			break
		}
		sem <- struct{}{} // backpressure: pool full ⇒ stop reading
		handlers.Add(1)
		go func() {
			defer func() {
				<-sem
				handlers.Done()
			}()
			respType, respPayload := s.dispatchTimed(s.baseCtx, typ, payload)
			respCh <- outFrame{typ: respType, id: id, payload: respPayload}
		}()
	}
	handlers.Wait()
	close(respCh)
	<-writerDone
}

func (s *Server) dispatch(ctx context.Context, typ proto.MsgType, payload []byte) (proto.MsgType, []byte) {
	switch typ {
	case proto.MsgPutChunksReq:
		return s.putChunks(ctx, payload)
	case proto.MsgGetChunksReq:
		return s.getChunks(ctx, payload)
	case proto.MsgPutBlobReq:
		return s.putBlob(ctx, payload)
	case proto.MsgGetBlobReq:
		return s.getBlob(ctx, payload)
	case proto.MsgListBlobsReq:
		return s.listBlobs(ctx, payload)
	case proto.MsgDerefChunksReq:
		return s.derefChunks(ctx, payload)
	case proto.MsgDeleteBlobReq:
		return s.deleteBlob(ctx, payload)
	case proto.MsgChallengeReq:
		return s.challenge(ctx, payload)
	case proto.MsgCheckFileReq:
		return s.checkFile(ctx, payload)
	case proto.MsgRegisterFileReq:
		return s.registerFile(ctx, payload)
	case proto.MsgHasChunksReq:
		return s.hasChunks(ctx, payload)
	case proto.MsgRefChunksReq:
		return s.refChunks(ctx, payload)
	case proto.MsgStatsReq:
		return proto.MsgStatsResp, proto.EncodeStats(s.Stats())
	case proto.MsgMetricsReq:
		return s.metricsResp()
	default:
		return proto.MsgError, proto.EncodeError("server: unexpected message " + typ.String())
	}
}

func (s *Server) putChunks(ctx context.Context, payload []byte) (proto.MsgType, []byte) {
	chunks, err := proto.DecodePutChunksReq(payload)
	if err != nil {
		return proto.MsgError, proto.EncodeError(err.Error())
	}
	dups := make([]bool, len(chunks))
	for i, c := range chunks {
		// Verify the claimed fingerprint. Deduplication stores one copy
		// per fingerprint across all users, so accepting an unverified
		// (fingerprint, data) pair would let a malicious client poison
		// chunks that other users' recipes reference. (The paper's
		// honest-but-curious model doesn't require this check; a
		// deployed system does.)
		if fingerprint.New(c.Data) != c.FP {
			return proto.MsgError, proto.EncodeError(fmt.Sprintf(
				"put chunk %d: fingerprint mismatch (possible poisoning attempt)", i))
		}
		dup, err := s.chunks.Put(ctx, c.FP, c.Data)
		if err != nil {
			return proto.MsgError, proto.EncodeError(fmt.Sprintf("put chunk %d: %v", i, err))
		}
		dups[i] = dup
	}
	// The response is the durability acknowledgment: once the client sees
	// it, these chunks must survive kill -9, so the batch's WAL records
	// are committed before replying.
	if err := s.chunks.Commit(ctx); err != nil {
		return proto.MsgError, proto.EncodeError(fmt.Sprintf("commit chunks: %v", err))
	}
	return proto.MsgPutChunksResp, proto.EncodePutChunksResp(dups)
}

func (s *Server) getChunks(ctx context.Context, payload []byte) (proto.MsgType, []byte) {
	fps, err := proto.DecodeGetChunksReq(payload)
	if err != nil {
		return proto.MsgError, proto.EncodeError(err.Error())
	}
	datas := make([][]byte, len(fps))
	for i, fp := range fps {
		data, err := s.chunks.Get(ctx, fp)
		if err != nil {
			return proto.MsgError, proto.EncodeError(fmt.Sprintf("get chunk %s: %v", fp.Short(), err))
		}
		datas[i] = data
	}
	return proto.MsgGetChunksResp, proto.EncodeBlobList(datas)
}

func (s *Server) putBlob(ctx context.Context, payload []byte) (proto.MsgType, []byte) {
	ns, name, data, err := proto.DecodeBlobReq(payload)
	if err != nil {
		return proto.MsgError, proto.EncodeError(err.Error())
	}
	if !allowedNamespaces[ns] {
		return proto.MsgError, proto.EncodeError("server: namespace not allowed: " + ns)
	}
	if err := s.backend.Put(ctx, ns, name, data); err != nil {
		return proto.MsgError, proto.EncodeError(err.Error())
	}
	if ns == store.NSStubs {
		s.stubMu.Lock()
		s.stubBytes -= uint64(s.stubSizes[name])
		s.stubSizes[name] = len(data)
		s.stubBytes += uint64(len(data))
		s.stubMu.Unlock()
	}
	return proto.MsgPutBlobResp, nil
}

func (s *Server) getBlob(ctx context.Context, payload []byte) (proto.MsgType, []byte) {
	ns, name, _, err := proto.DecodeBlobReq(payload)
	if err != nil {
		return proto.MsgError, proto.EncodeError(err.Error())
	}
	if !allowedNamespaces[ns] {
		return proto.MsgError, proto.EncodeError("server: namespace not allowed: " + ns)
	}
	data, err := s.backend.Get(ctx, ns, name)
	if err != nil {
		return proto.MsgError, proto.EncodeError(err.Error())
	}
	return proto.MsgGetBlobResp, data
}

func (s *Server) listBlobs(ctx context.Context, payload []byte) (proto.MsgType, []byte) {
	ns, err := proto.DecodeListBlobsReq(payload)
	if err != nil {
		return proto.MsgError, proto.EncodeError(err.Error())
	}
	if !allowedNamespaces[ns] {
		return proto.MsgError, proto.EncodeError("server: namespace not allowed: " + ns)
	}
	names, err := s.backend.List(ctx, ns)
	if err != nil {
		return proto.MsgError, proto.EncodeError(err.Error())
	}
	return proto.MsgListBlobsResp, proto.EncodeListBlobsResp(names)
}

// derefChunks drops one reference per listed fingerprint (MsgGetChunksReq
// wire shape) and reports how many chunks were freed outright.
func (s *Server) derefChunks(ctx context.Context, payload []byte) (proto.MsgType, []byte) {
	fps, err := proto.DecodeGetChunksReq(payload)
	if err != nil {
		return proto.MsgError, proto.EncodeError(err.Error())
	}
	var freed uint64
	for i, fp := range fps {
		left, err := s.chunks.Deref(ctx, fp)
		if err != nil {
			return proto.MsgError, proto.EncodeError(fmt.Sprintf("deref chunk %d: %v", i, err))
		}
		if left == 0 {
			freed++
		}
	}
	// Same durability contract as putChunks: acknowledged derefs must not
	// resurrect after a crash.
	if err := s.chunks.Commit(ctx); err != nil {
		return proto.MsgError, proto.EncodeError(fmt.Sprintf("commit derefs: %v", err))
	}
	return proto.MsgDerefChunksResp, proto.EncodeDerefChunksResp(freed)
}

// deleteBlob removes a blob (MsgBlobReq wire shape, data ignored).
func (s *Server) deleteBlob(ctx context.Context, payload []byte) (proto.MsgType, []byte) {
	ns, name, _, err := proto.DecodeBlobReq(payload)
	if err != nil {
		return proto.MsgError, proto.EncodeError(err.Error())
	}
	if !allowedNamespaces[ns] {
		return proto.MsgError, proto.EncodeError("server: namespace not allowed: " + ns)
	}
	if err := s.backend.Delete(ctx, ns, name); err != nil {
		return proto.MsgError, proto.EncodeError(err.Error())
	}
	if ns == store.NSStubs {
		s.stubMu.Lock()
		s.stubBytes -= uint64(s.stubSizes[name])
		delete(s.stubSizes, name)
		s.stubMu.Unlock()
	}
	return proto.MsgDeleteBlobResp, nil
}

// challenge answers a remote-data-checking probe: H(nonce || chunk).
// Possession of the exact stored bytes is required; the nonce prevents
// precomputation and replay.
func (s *Server) challenge(ctx context.Context, payload []byte) (proto.MsgType, []byte) {
	fp, nonce, err := proto.DecodeChallengeReq(payload)
	if err != nil {
		return proto.MsgError, proto.EncodeError(err.Error())
	}
	data, err := s.chunks.Get(ctx, fp)
	if err != nil {
		return proto.MsgError, proto.EncodeError(fmt.Sprintf("challenge %s: %v", fp.Short(), err))
	}
	digest := audit.Response(nonce, data)
	return proto.MsgChallengeResp, digest[:]
}

// checkFile answers the two-phase upload's whole-file pre-check: does
// the index map (hash, size, policy) to a stored recipe? Read-only and
// advisory — the client verifies any hit against the recipe's own
// FileHash before cloning, so a stale answer is harmless.
func (s *Server) checkFile(_ context.Context, payload []byte) (proto.MsgType, []byte) {
	key, err := proto.DecodeCheckFileReq(payload)
	if err != nil {
		return proto.MsgError, proto.EncodeError(err.Error())
	}
	name, found := s.files.Lookup(key)
	return proto.MsgCheckFileResp, proto.EncodeCheckFileResp(name, found)
}

// registerFile records a whole-file index entry. An upsert — replaying
// it after a connection fault converges to the same state — and the
// response is the durability acknowledgment, so the index commits
// before replying (same contract as putChunks).
func (s *Server) registerFile(ctx context.Context, payload []byte) (proto.MsgType, []byte) {
	key, name, err := proto.DecodeRegisterFileReq(payload)
	if err != nil {
		return proto.MsgError, proto.EncodeError(err.Error())
	}
	if err := s.files.Register(ctx, key, name); err != nil {
		return proto.MsgError, proto.EncodeError(fmt.Sprintf("register file: %v", err))
	}
	if err := s.files.Commit(ctx); err != nil {
		return proto.MsgError, proto.EncodeError(fmt.Sprintf("commit file index: %v", err))
	}
	return proto.MsgRegisterFileResp, nil
}

// hasChunks answers the batched negative lookup (MsgGetChunksReq wire
// shape in, MsgPutChunksResp shape out): one presence flag per
// fingerprint, no refcount or accounting effect.
func (s *Server) hasChunks(_ context.Context, payload []byte) (proto.MsgType, []byte) {
	fps, err := proto.DecodeGetChunksReq(payload)
	if err != nil {
		return proto.MsgError, proto.EncodeError(err.Error())
	}
	present := make([]bool, len(fps))
	for i, fp := range fps {
		present[i] = s.chunks.Has(fp)
	}
	return proto.MsgHasChunksResp, proto.EncodePutChunksResp(present)
}

// refChunks adds one reference per listed fingerprint without the
// bytes — the data-free duplicate put behind clone and filtered warm
// uploads. Flags report which fingerprints were present (a false means
// the chunk vanished since the client's lookup; the client must send
// its bytes). Refcounts are the delete path's ground truth, so the
// batch commits before the reply, like putChunks.
func (s *Server) refChunks(ctx context.Context, payload []byte) (proto.MsgType, []byte) {
	fps, err := proto.DecodeGetChunksReq(payload)
	if err != nil {
		return proto.MsgError, proto.EncodeError(err.Error())
	}
	found := make([]bool, len(fps))
	for i, fp := range fps {
		ok, err := s.chunks.Ref(ctx, fp)
		if err != nil {
			return proto.MsgError, proto.EncodeError(fmt.Sprintf("ref chunk %d: %v", i, err))
		}
		found[i] = ok
	}
	if err := s.chunks.Commit(ctx); err != nil {
		return proto.MsgError, proto.EncodeError(fmt.Sprintf("commit refs: %v", err))
	}
	return proto.MsgRefChunksResp, proto.EncodePutChunksResp(found)
}

// HasChunk reports whether the fingerprint is stored (test helper).
func (s *Server) HasChunk(fp fingerprint.Fingerprint) bool {
	return s.chunks.Has(fp)
}

// FileIndexLen reports how many whole-file entries the index holds
// (test helper).
func (s *Server) FileIndexLen() int {
	return s.files.Len()
}

// Flush seals the open container and checkpoints the dedup and
// whole-file indexes without stopping the server.
func (s *Server) Flush(ctx context.Context) error {
	if err := s.chunks.Flush(ctx); err != nil {
		return err
	}
	return s.files.Flush(ctx)
}

// Backend exposes the underlying blob store (fault-injection tests and
// storage accounting use it).
func (s *Server) Backend() store.Backend {
	return s.backend
}
