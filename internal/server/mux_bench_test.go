package server

import (
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/fingerprint"
	"repro/internal/netem"
	"repro/internal/retry"
)

// BenchmarkMuxedGets measures single-chunk gets over ONE connection with
// an emulated one-way propagation delay on the request path
// (netem.Delay, 2 ms). inflight=1 is the lockstep baseline — each
// request waits for its response before the next is sent — and higher
// inflight counts issue concurrent calls that the rpcmux layer pipelines
// over the same connection, overlapping their latency. The wire refactor
// is working when inflight=8 beats inflight=1 by well over 2x
// (ideally ~8x: 64 round trips collapse into 8 waves).
func BenchmarkMuxedGets(b *testing.B) {
	const (
		delay = 2 * time.Millisecond
		gets  = 64
	)

	_, addr := startServer(b)
	dialer := func(addr string) (net.Conn, error) {
		c, err := net.Dial("tcp", addr)
		if err != nil {
			return nil, err
		}
		return netem.Delay(c, delay), nil
	}
	client, err := DialStore(ctx, addr, dialer, retry.Policy{})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { _ = client.Close() })

	chunks := uploads(gets, "mux-bench")
	if _, err := client.PutChunks(ctx, chunks); err != nil {
		b.Fatal(err)
	}

	for _, inflight := range []int{1, 2, 4, 8, 16} {
		b.Run(fmt.Sprintf("inflight=%d", inflight), func(b *testing.B) {
			per := gets / inflight
			for i := 0; i < b.N; i++ {
				var (
					wg       sync.WaitGroup
					errMu    sync.Mutex
					firstErr error
				)
				for w := 0; w < inflight; w++ {
					wg.Add(1)
					go func(w int) {
						defer wg.Done()
						for j := 0; j < per; j++ {
							fp := chunks[w*per+j].FP
							if _, err := client.GetChunks(ctx, []fingerprint.Fingerprint{fp}); err != nil {
								errMu.Lock()
								if firstErr == nil {
									firstErr = err
								}
								errMu.Unlock()
								return
							}
						}
					}(w)
				}
				wg.Wait()
				if firstErr != nil {
					b.Fatal(firstErr)
				}
			}
		})
	}
}
