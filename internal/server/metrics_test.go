package server

import (
	"testing"

	"repro/internal/fingerprint"
	"repro/internal/metrics"
	"repro/internal/proto"
	"repro/internal/store"
)

// TestNilRegistryAddsNoAllocations pins the "disabled means free"
// contract: on an uninstrumented server the timed dispatch wrapper must
// add zero allocations to the PutChunks hot path over calling dispatch
// directly.
func TestNilRegistryAddsNoAllocations(t *testing.T) {
	// Each dispatch commits a WAL segment, so a server's allocation
	// profile drifts as segments accumulate in the backend. Measuring
	// direct and timed dispatch on two identically-prepared servers
	// keeps the comparison stationary.
	newProbe := func() *Server {
		srv, err := New(ctx, store.NewMemory())
		if err != nil {
			t.Fatal(err)
		}
		if srv.reg != nil || srv.ops != nil {
			t.Fatal("server without WithMetrics must stay uninstrumented")
		}
		return srv
	}
	data := []byte("metrics-alloc-probe")
	payload := proto.EncodePutChunksReq([]proto.ChunkUpload{
		{FP: fingerprint.New(data), Data: data},
	})
	directSrv, timedSrv := newProbe(), newProbe()
	// Warm up so both measurements see the steady dedup-hit path, not
	// the first-insert path.
	if typ, _ := directSrv.dispatch(ctx, proto.MsgPutChunksReq, payload); typ != proto.MsgPutChunksResp {
		t.Fatalf("warmup dispatch returned %v", typ)
	}
	if typ, _ := timedSrv.dispatchTimed(ctx, proto.MsgPutChunksReq, payload); typ != proto.MsgPutChunksResp {
		t.Fatalf("warmup dispatchTimed returned %v", typ)
	}

	direct := testing.AllocsPerRun(200, func() {
		directSrv.dispatch(ctx, proto.MsgPutChunksReq, payload)
	})
	timed := testing.AllocsPerRun(200, func() {
		timedSrv.dispatchTimed(ctx, proto.MsgPutChunksReq, payload)
	})
	if timed > direct {
		t.Fatalf("dispatchTimed allocates %.1f/op vs dispatch %.1f/op; nil registry must add zero", timed, direct)
	}
}

// TestInstrumentedDispatchCounts sanity-checks the other side of the
// contract: with a registry attached, PutChunks dispatches show up in
// the per-op families and the dedup gauges reflect the store.
func TestInstrumentedDispatchCounts(t *testing.T) {
	reg := metrics.NewRegistry()
	srv, err := New(ctx, store.NewMemory(), WithMetrics(reg))
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("instrumented-dispatch-probe")
	payload := proto.EncodePutChunksReq([]proto.ChunkUpload{
		{FP: fingerprint.New(data), Data: data},
	})
	for i := 0; i < 3; i++ {
		if typ, _ := srv.dispatchTimed(ctx, proto.MsgPutChunksReq, payload); typ != proto.MsgPutChunksResp {
			t.Fatalf("dispatch %d returned %v", i, typ)
		}
	}

	snap := srv.MetricsSnapshot()
	op := metrics.Label("dispatch_total", "op", "PutChunks")
	if got := snap.Counters[op]; got != 3 {
		t.Fatalf("%s = %d, want 3", op, got)
	}
	lat := metrics.Label("dispatch_latency", "op", "PutChunks")
	if h, ok := snap.Histograms[lat]; !ok || h.Count != 3 {
		t.Fatalf("%s count = %v, want 3 observations", lat, h.Count)
	}
	if got := snap.Counters["dedup_total_puts"]; got != 3 {
		t.Fatalf("dedup_total_puts = %d, want 3", got)
	}
	if got := snap.Counters["dedup_deduped_puts"]; got != 2 {
		t.Fatalf("dedup_deduped_puts = %d, want 2 (same chunk re-put twice)", got)
	}
	if got := snap.Gauges["dedup_logical_bytes"]; got != float64(3*len(data)) {
		t.Fatalf("dedup_logical_bytes = %v, want %d", got, 3*len(data))
	}
	if got := snap.Gauges["dedup_container_count"]; got < 1 {
		t.Fatalf("dedup_container_count = %v, want >= 1", got)
	}
}
