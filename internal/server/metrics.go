package server

import (
	"context"
	"time"

	"repro/internal/metrics"
	"repro/internal/proto"
)

// metricsOption attaches a registry at construction.
type metricsOption struct{ reg *metrics.Registry }

func (o metricsOption) applyServer(s *Server) { s.reg = o.reg }

// WithMetrics instruments the server with the given registry: per-op
// dispatch counters and latency histograms, connection/worker gauges,
// and snapshot-time views over the dedup store's accounting. A nil
// registry leaves the server uninstrumented at zero cost.
func WithMetrics(reg *metrics.Registry) Option { return metricsOption{reg} }

// initMetrics builds the instruments once at construction so the
// per-request path never touches the registry's maps.
func (s *Server) initMetrics() {
	if s.reg == nil {
		return
	}
	s.ops = metrics.NewOpSet(s.reg, "dispatch", proto.OpNames())
	s.connsGauge = s.reg.Gauge("server_connections")
	s.inflightReqs = s.reg.Gauge("dispatch_inflight")

	// Dedup accounting is already maintained under the store's own lock;
	// snapshot-time functions expose it without a second copy to drift.
	s.reg.SetCounterFunc("dedup_total_puts", func() uint64 { return s.chunks.Stats().TotalPuts })
	s.reg.SetCounterFunc("dedup_deduped_puts", func() uint64 { return s.chunks.Stats().DedupedPuts })
	s.reg.SetCounterFunc("dedup_gc_freed_chunks", func() uint64 { return s.chunks.Stats().FreedChunks })
	s.reg.SetCounterFunc("dedup_gc_reclaimed_bytes", func() uint64 { return s.chunks.Stats().FreedBytes })
	s.reg.SetCounterFunc("dedup_gc_compacted_containers", func() uint64 { return s.chunks.Stats().CompactedContainers })
	s.reg.SetGaugeFunc("dedup_logical_bytes", func() float64 { return float64(s.chunks.Stats().LogicalBytes) })
	s.reg.SetGaugeFunc("dedup_physical_bytes", func() float64 { return float64(s.chunks.Stats().PhysicalBytes) })
	s.reg.SetGaugeFunc("dedup_savings_ratio", func() float64 { return s.chunks.Stats().SavingsRatio() })
	s.reg.SetGaugeFunc("dedup_container_count", func() float64 { return float64(s.chunks.ContainerCount()) })
	s.reg.SetGaugeFunc("dedup_unique_chunk_count", func() float64 { return float64(s.chunks.UniqueChunks()) })
	s.reg.SetGaugeFunc("dedup_ref_inflation", func() float64 { return float64(s.chunks.RefInflation()) })
	s.reg.SetGaugeFunc("fileindex_entry_count", func() float64 { return float64(s.files.Len()) })
	s.reg.SetGaugeFunc("blob_stub_bytes", func() float64 {
		s.stubMu.Lock()
		defer s.stubMu.Unlock()
		return float64(s.stubBytes)
	})
}

// Metrics returns the server's registry (nil when uninstrumented).
func (s *Server) Metrics() *metrics.Registry { return s.reg }

// MetricsSnapshot captures the server's registry; empty when
// uninstrumented.
func (s *Server) MetricsSnapshot() metrics.Snapshot { return s.reg.Snapshot() }

// dispatchTimed wraps dispatch with per-op accounting. With no registry
// attached it is a plain tail call — instrumentation must cost nothing
// when disabled.
func (s *Server) dispatchTimed(ctx context.Context, typ proto.MsgType, payload []byte) (proto.MsgType, []byte) {
	if s.ops == nil {
		return s.dispatch(ctx, typ, payload)
	}
	s.inflightReqs.Inc()
	start := time.Now()
	respType, respPayload := s.dispatch(ctx, typ, payload)
	s.inflightReqs.Dec()
	s.ops.Observe(int(typ), time.Since(start), respType == proto.MsgError)
	return respType, respPayload
}

// metricsResp serves MsgMetricsReq: the registry snapshot as JSON (an
// empty snapshot when uninstrumented, so the RPC always succeeds).
func (s *Server) metricsResp() (proto.MsgType, []byte) {
	payload, err := proto.EncodeMetricsResp(s.reg.Snapshot())
	if err != nil {
		return proto.MsgError, proto.EncodeError(err.Error())
	}
	return proto.MsgMetricsResp, payload
}
