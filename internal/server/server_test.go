package server

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"

	"repro/internal/fingerprint"
	"repro/internal/proto"
	"repro/internal/retry"
	"repro/internal/store"
)

// ctx is the default context test call sites run under.
var ctx = context.Background()

// startServer runs a storage server over an in-memory backend.
func startServer(t testing.TB) (*Server, string) {
	t.Helper()
	srv, err := New(ctx, store.NewMemory())
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(ln) }()
	t.Cleanup(func() { _ = srv.Shutdown() })
	return srv, ln.Addr().String()
}

func dialTest(t testing.TB, addr string) *Client {
	t.Helper()
	c, err := DialStore(ctx, addr, nil, retry.Policy{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	return c
}

func uploads(n int, tag string) []proto.ChunkUpload {
	out := make([]proto.ChunkUpload, n)
	for i := range out {
		data := []byte(fmt.Sprintf("%s-chunk-%d-%s", tag, i, strings.Repeat("x", 100)))
		out[i] = proto.ChunkUpload{FP: fingerprint.New(data), Data: data}
	}
	return out
}

func TestPutGetChunks(t *testing.T) {
	_, addr := startServer(t)
	c := dialTest(t, addr)

	chunks := uploads(5, "a")
	dups, err := c.PutChunks(ctx, chunks)
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range dups {
		if d {
			t.Fatalf("chunk %d reported duplicate on first upload", i)
		}
	}

	fps := make([]fingerprint.Fingerprint, len(chunks))
	for i := range chunks {
		fps[i] = chunks[i].FP
	}
	datas, err := c.GetChunks(ctx, fps)
	if err != nil {
		t.Fatal(err)
	}
	for i := range chunks {
		if !bytes.Equal(datas[i], chunks[i].Data) {
			t.Fatalf("chunk %d corrupted", i)
		}
	}
}

func TestServerSideDedup(t *testing.T) {
	_, addr := startServer(t)
	c := dialTest(t, addr)

	chunks := uploads(5, "dup")
	if _, err := c.PutChunks(ctx, chunks); err != nil {
		t.Fatal(err)
	}
	dups, err := c.PutChunks(ctx, chunks)
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range dups {
		if !d {
			t.Fatalf("chunk %d not deduplicated on second upload", i)
		}
	}
	stats, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.TotalPuts != 10 || stats.DedupedPuts != 5 {
		t.Fatalf("stats = %+v", stats)
	}
	if stats.PhysicalBytes*2 != stats.LogicalBytes {
		t.Fatalf("expected 50%% savings, stats = %+v", stats)
	}
}

func TestCrossClientDedup(t *testing.T) {
	// Deduplication must work across clients ("uploaded by the same or
	// a different client", Section III-A).
	_, addr := startServer(t)
	c1 := dialTest(t, addr)
	c2 := dialTest(t, addr)

	chunks := uploads(3, "shared")
	if _, err := c1.PutChunks(ctx, chunks); err != nil {
		t.Fatal(err)
	}
	dups, err := c2.PutChunks(ctx, chunks)
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range dups {
		if !d {
			t.Fatalf("chunk %d from second client not deduplicated", i)
		}
	}
}

func TestGetMissingChunk(t *testing.T) {
	_, addr := startServer(t)
	c := dialTest(t, addr)
	if _, err := c.GetChunks(ctx, []fingerprint.Fingerprint{fingerprint.New([]byte("absent"))}); err == nil {
		t.Fatal("missing chunk expected error")
	}
}

func TestBlobRoundTrip(t *testing.T) {
	_, addr := startServer(t)
	c := dialTest(t, addr)

	for _, ns := range []string{store.NSRecipes, store.NSStubs, store.NSKeyStates} {
		if err := c.PutBlob(ctx, ns, "file-1", []byte(ns+" payload")); err != nil {
			t.Fatalf("PutBlob(%s): %v", ns, err)
		}
		got, err := c.GetBlob(ctx, ns, "file-1")
		if err != nil {
			t.Fatalf("GetBlob(%s): %v", ns, err)
		}
		if !bytes.Equal(got, []byte(ns+" payload")) {
			t.Fatalf("blob in %s corrupted", ns)
		}
	}
}

func TestBlobNamespaceRestricted(t *testing.T) {
	_, addr := startServer(t)
	c := dialTest(t, addr)
	if err := c.PutBlob(ctx, store.NSContainers, "evil", []byte("x")); err == nil {
		t.Fatal("write to containers namespace should be rejected")
	}
	if err := c.PutBlob(ctx, store.NSMeta, "evil", []byte("x")); err == nil {
		t.Fatal("write to meta namespace should be rejected")
	}
	if _, err := c.GetBlob(ctx, store.NSMeta, "dedup-index"); err == nil {
		t.Fatal("read of meta namespace should be rejected")
	}
}

func TestGetMissingBlob(t *testing.T) {
	_, addr := startServer(t)
	c := dialTest(t, addr)
	if _, err := c.GetBlob(ctx, store.NSRecipes, "absent"); err == nil {
		t.Fatal("missing blob expected error")
	}
}

func TestStubByteAccounting(t *testing.T) {
	_, addr := startServer(t)
	c := dialTest(t, addr)

	if err := c.PutBlob(ctx, store.NSStubs, "f1", make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	if err := c.PutBlob(ctx, store.NSStubs, "f2", make([]byte, 50)); err != nil {
		t.Fatal(err)
	}
	stats, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.StubBytes != 150 {
		t.Fatalf("StubBytes = %d, want 150", stats.StubBytes)
	}
	// Re-uploading a stub file (active revocation) must not double
	// count.
	if err := c.PutBlob(ctx, store.NSStubs, "f1", make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	stats, _ = c.Stats(ctx)
	if stats.StubBytes != 150 {
		t.Fatalf("StubBytes after re-upload = %d, want 150", stats.StubBytes)
	}
}

func TestEmptyBatches(t *testing.T) {
	_, addr := startServer(t)
	c := dialTest(t, addr)
	if dups, err := c.PutChunks(ctx, nil); err != nil || dups != nil {
		t.Fatalf("PutChunks(nil) = %v, %v", dups, err)
	}
	if datas, err := c.GetChunks(ctx, nil); err != nil || datas != nil {
		t.Fatalf("GetChunks(nil) = %v, %v", datas, err)
	}
}

func TestConcurrentClients(t *testing.T) {
	_, addr := startServer(t)
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c, err := DialStore(ctx, addr, nil, retry.Policy{})
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			chunks := uploads(20, fmt.Sprintf("g%d", g%4))
			if _, err := c.PutChunks(ctx, chunks); err != nil {
				errs <- err
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestPersistenceAcrossRestart(t *testing.T) {
	backend := store.NewMemory()
	srv1, err := New(ctx, backend)
	if err != nil {
		t.Fatal(err)
	}
	ln1, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv1.Serve(ln1) }()
	c1, err := DialStore(ctx, ln1.Addr().String(), nil, retry.Policy{})
	if err != nil {
		t.Fatal(err)
	}
	chunks := uploads(3, "persist")
	if _, err := c1.PutChunks(ctx, chunks); err != nil {
		t.Fatal(err)
	}
	c1.Close()
	if err := srv1.Shutdown(); err != nil {
		t.Fatal(err)
	}

	// Restart over the same backend.
	srv2, err := New(ctx, backend)
	if err != nil {
		t.Fatal(err)
	}
	ln2, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv2.Serve(ln2) }()
	defer srv2.Shutdown()
	c2 := dialTest(t, ln2.Addr().String())

	fps := []fingerprint.Fingerprint{chunks[0].FP, chunks[1].FP, chunks[2].FP}
	datas, err := c2.GetChunks(ctx, fps)
	if err != nil {
		t.Fatal(err)
	}
	for i := range chunks {
		if !bytes.Equal(datas[i], chunks[i].Data) {
			t.Fatalf("chunk %d lost across restart", i)
		}
	}
}

// TestPoisoningRejected verifies the server refuses a chunk whose data
// does not match its claimed fingerprint — the classic dedup poisoning
// attack, where a malicious client plants garbage under a fingerprint
// other users' recipes will later reference.
func TestPoisoningRejected(t *testing.T) {
	_, addr := startServer(t)
	c := dialTest(t, addr)

	victim := []byte("the chunk an honest user will upload later")
	poisoned := proto.ChunkUpload{
		FP:   fingerprint.New(victim),
		Data: []byte("attacker-controlled garbage of any length"),
	}
	if _, err := c.PutChunks(ctx, []proto.ChunkUpload{poisoned}); err == nil {
		t.Fatal("server accepted a poisoned chunk")
	}

	// The honest upload must still go through and round-trip.
	honest := proto.ChunkUpload{FP: fingerprint.New(victim), Data: victim}
	if _, err := c.PutChunks(ctx, []proto.ChunkUpload{honest}); err != nil {
		t.Fatal(err)
	}
	got, err := c.GetChunks(ctx, []fingerprint.Fingerprint{honest.FP})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got[0], victim) {
		t.Fatal("honest chunk corrupted")
	}
}

func TestListBlobs(t *testing.T) {
	_, addr := startServer(t)
	c := dialTest(t, addr)

	for _, name := range []string{"/b", "/a"} {
		if err := c.PutBlob(ctx, store.NSRecipes, name, []byte("r")); err != nil {
			t.Fatal(err)
		}
	}
	names, err := c.ListBlobs(ctx, store.NSRecipes)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || names[0] != "/a" || names[1] != "/b" {
		t.Fatalf("ListBlobs = %v, want sorted [/a /b]", names)
	}
	// Restricted namespaces stay restricted.
	if _, err := c.ListBlobs(ctx, store.NSContainers); err == nil {
		t.Fatal("listing containers namespace should be rejected")
	}
}
