package server

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/fingerprint"
	"repro/internal/proto"
	"repro/internal/retry"
	"repro/internal/store"
)

// TestServeReturnsErrClosedAfterShutdown: a Serve loop stopped by
// Shutdown reports the normalized net.ErrClosed, so callers can
// distinguish a clean stop from a real accept failure.
func TestServeReturnsErrClosedAfterShutdown(t *testing.T) {
	srv, err := New(ctx, store.NewMemory())
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()

	// Prove the loop is live before shutting it down.
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	conn.Close()

	if err := srv.Shutdown(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errCh:
		if !errors.Is(err, net.ErrClosed) {
			t.Fatalf("Serve returned %v, want net.ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after Shutdown")
	}
}

// TestOneConnectionMixedPlanes drives every RPC plane — chunk puts and
// gets, blob puts/gets/deletes, listing, stats — from many goroutines
// over a single multiplexed connection. Every response must match its
// request (the returned bytes are derived from the request's inputs),
// which fails loudly if the request-ID plumbing ever crosses wires. The
// test then shuts everything down and verifies no goroutines leak.
func TestOneConnectionMixedPlanes(t *testing.T) {
	before := runtime.NumGoroutine()

	srv, err := New(ctx, store.NewMemory())
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()

	client, err := DialStore(ctx, ln.Addr().String(), nil, retry.Policy{})
	if err != nil {
		t.Fatal(err)
	}

	const (
		workers = 8
		rounds  = 25
	)
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				switch (g + i) % 4 {
				case 0: // chunk plane: put then read back
					data := []byte(fmt.Sprintf("mixed-%d-%d-payload", g, i))
					fp := fingerprint.New(data)
					if _, err := client.PutChunks(ctx, []proto.ChunkUpload{{FP: fp, Data: data}}); err != nil {
						t.Errorf("PutChunks: %v", err)
						return
					}
					got, err := client.GetChunks(ctx, []fingerprint.Fingerprint{fp})
					if err != nil {
						t.Errorf("GetChunks: %v", err)
						return
					}
					if !bytes.Equal(got[0], data) {
						t.Errorf("goroutine %d round %d: chunk response mismatched request", g, i)
						return
					}
				case 1: // blob plane: put, get, delete
					name := fmt.Sprintf("recipe-%d-%d", g, i)
					want := []byte("blob-" + name)
					if err := client.PutBlob(ctx, store.NSRecipes, name, want); err != nil {
						t.Errorf("PutBlob: %v", err)
						return
					}
					got, err := client.GetBlob(ctx, store.NSRecipes, name)
					if err != nil || !bytes.Equal(got, want) {
						t.Errorf("GetBlob %s = %q, %v", name, got, err)
						return
					}
					if i%5 == 0 {
						if err := client.DeleteBlob(ctx, store.NSRecipes, name); err != nil {
							t.Errorf("DeleteBlob: %v", err)
							return
						}
					}
				case 2: // control plane: stats
					if _, err := client.Stats(ctx); err != nil {
						t.Errorf("Stats: %v", err)
						return
					}
				case 3: // listing plane
					if _, err := client.ListBlobs(ctx, store.NSRecipes); err != nil {
						t.Errorf("ListBlobs: %v", err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()

	if err := client.Close(); err != nil {
		t.Errorf("client close: %v", err)
	}
	if err := srv.Shutdown(); err != nil {
		t.Fatal(err)
	}
	if err := <-serveDone; !errors.Is(err, net.ErrClosed) {
		t.Fatalf("Serve returned %v, want net.ErrClosed", err)
	}

	// All server handler/writer goroutines and the client's read loop
	// must be gone. Give the runtime a moment to retire them.
	deadline := time.Now().Add(3 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak: %d before, %d after shutdown\n%s",
				before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}
