package server

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"

	"repro/internal/fingerprint"
	"repro/internal/proto"
)

// Dialer opens a connection to an address (injectable for link
// emulation).
type Dialer func(addr string) (net.Conn, error)

// Client is the client side of one storage-server connection. Requests
// serialize on the connection; open several Clients to the same server
// for parallelism, as the REED client does (Section V-B).
type Client struct {
	mu   sync.Mutex
	conn net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer
}

// DialStore connects to the storage server at addr. A nil dialer uses
// plain TCP.
func DialStore(addr string, dialer Dialer) (*Client, error) {
	if dialer == nil {
		dialer = func(addr string) (net.Conn, error) { return net.Dial("tcp", addr) }
	}
	conn, err := dialer(addr)
	if err != nil {
		return nil, fmt.Errorf("server client: dial %s: %w", addr, err)
	}
	return &Client{
		conn: conn,
		br:   bufio.NewReaderSize(conn, 1<<20),
		bw:   bufio.NewWriterSize(conn, 1<<20),
	}, nil
}

// Close closes the connection.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.conn.Close()
}

func (c *Client) call(typ proto.MsgType, payload []byte, want proto.MsgType) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := proto.WriteFrame(c.bw, typ, payload); err != nil {
		return nil, err
	}
	if err := c.bw.Flush(); err != nil {
		return nil, err
	}
	respType, respPayload, err := proto.ReadFrame(c.br)
	if err != nil {
		return nil, err
	}
	if respType == proto.MsgError {
		re, derr := proto.DecodeError(respPayload)
		if derr != nil {
			return nil, derr
		}
		return nil, re
	}
	if respType != want {
		return nil, fmt.Errorf("server client: unexpected response %v, want %v", respType, want)
	}
	return respPayload, nil
}

// PutChunks uploads a batch of trimmed packages and returns per-chunk
// duplicate flags.
func (c *Client) PutChunks(chunks []proto.ChunkUpload) ([]bool, error) {
	if len(chunks) == 0 {
		return nil, nil
	}
	payload, err := c.call(proto.MsgPutChunksReq, proto.EncodePutChunksReq(chunks), proto.MsgPutChunksResp)
	if err != nil {
		return nil, err
	}
	dups, err := proto.DecodePutChunksResp(payload)
	if err != nil {
		return nil, err
	}
	if len(dups) != len(chunks) {
		return nil, errors.New("server client: dup count mismatch")
	}
	return dups, nil
}

// GetChunks fetches a batch of trimmed packages by fingerprint, in
// order.
func (c *Client) GetChunks(fps []fingerprint.Fingerprint) ([][]byte, error) {
	if len(fps) == 0 {
		return nil, nil
	}
	payload, err := c.call(proto.MsgGetChunksReq, proto.EncodeGetChunksReq(fps), proto.MsgGetChunksResp)
	if err != nil {
		return nil, err
	}
	datas, err := proto.DecodeBlobList(payload, len(fps))
	if err != nil {
		return nil, err
	}
	if len(datas) != len(fps) {
		return nil, errors.New("server client: chunk count mismatch")
	}
	return datas, nil
}

// PutBlob stores a blob (recipe, stub file, or key state).
func (c *Client) PutBlob(ns, name string, data []byte) error {
	_, err := c.call(proto.MsgPutBlobReq, proto.EncodeBlobReq(ns, name, data), proto.MsgPutBlobResp)
	return err
}

// GetBlob fetches a blob.
func (c *Client) GetBlob(ns, name string) ([]byte, error) {
	return c.call(proto.MsgGetBlobReq, proto.EncodeBlobReq(ns, name, nil), proto.MsgGetBlobResp)
}

// DerefChunks drops one reference from each listed chunk, returning how
// many were freed entirely.
func (c *Client) DerefChunks(fps []fingerprint.Fingerprint) (uint64, error) {
	if len(fps) == 0 {
		return 0, nil
	}
	payload, err := c.call(proto.MsgDerefChunksReq, proto.EncodeGetChunksReq(fps), proto.MsgDerefChunksResp)
	if err != nil {
		return 0, err
	}
	return proto.DecodeDerefChunksResp(payload)
}

// DeleteBlob removes a blob.
func (c *Client) DeleteBlob(ns, name string) error {
	_, err := c.call(proto.MsgDeleteBlobReq, proto.EncodeBlobReq(ns, name, nil), proto.MsgDeleteBlobResp)
	return err
}

// Challenge asks the server to prove possession of a chunk: it returns
// H(nonce || stored bytes).
func (c *Client) Challenge(fp fingerprint.Fingerprint, nonce []byte) ([]byte, error) {
	return c.call(proto.MsgChallengeReq, proto.EncodeChallengeReq(fp, nonce), proto.MsgChallengeResp)
}

// ListBlobs lists the blob names in a namespace.
func (c *Client) ListBlobs(ns string) ([]string, error) {
	payload, err := c.call(proto.MsgListBlobsReq, proto.EncodeListBlobsReq(ns), proto.MsgListBlobsResp)
	if err != nil {
		return nil, err
	}
	return proto.DecodeListBlobsResp(payload)
}

// Stats fetches the server's dedup statistics.
func (c *Client) Stats() (proto.Stats, error) {
	payload, err := c.call(proto.MsgStatsReq, nil, proto.MsgStatsResp)
	if err != nil {
		return proto.Stats{}, err
	}
	return proto.DecodeStats(payload)
}
