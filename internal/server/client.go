package server

import (
	"context"
	"errors"
	"fmt"
	"net"

	"repro/internal/fingerprint"
	"repro/internal/proto"
	"repro/internal/rpcmux"
)

// Dialer opens a connection to an address (injectable for link
// emulation).
type Dialer func(addr string) (net.Conn, error)

// ErrConnClosed is returned for calls on a connection that was torn
// down, either by Close or by a context cancellation that interrupted an
// in-flight frame (after which the stream is desynchronized and cannot
// be reused).
var ErrConnClosed = rpcmux.ErrClosed

// Client is the client side of one storage-server connection. Requests
// multiplex over the connection: concurrent calls are tagged with
// request IDs and their round trips overlap (internal/rpcmux), so a
// single connection pipelines. Opening several Clients still helps when
// the bottleneck is a single TCP stream, as in the paper's multi-
// connection deployment (Section V-B).
//
// Every RPC takes a context. Cancelling a call that is waiting for its
// response abandons just that call; cancellation that interrupts an
// in-flight frame write closes the connection and all later calls fail
// with ErrConnClosed.
type Client struct {
	mux *rpcmux.Conn
}

// DialStore connects to the storage server at addr. A nil dialer uses
// plain TCP.
func DialStore(addr string, dialer Dialer) (*Client, error) {
	if dialer == nil {
		dialer = func(addr string) (net.Conn, error) { return net.Dial("tcp", addr) }
	}
	conn, err := dialer(addr)
	if err != nil {
		return nil, fmt.Errorf("server client: dial %s: %w", addr, err)
	}
	return &Client{mux: rpcmux.New(conn, 1<<20, 1<<20)}, nil
}

// Close closes the connection.
func (c *Client) Close() error {
	return c.mux.Close()
}

func (c *Client) call(ctx context.Context, typ proto.MsgType, payload []byte, want proto.MsgType) ([]byte, error) {
	resp, err := c.mux.Call(ctx, typ, payload, want)
	if err != nil {
		var re *proto.RemoteError
		if errors.As(err, &re) {
			return nil, re
		}
		return nil, fmt.Errorf("server client: %w", err)
	}
	return resp, nil
}

// PutChunks uploads a batch of trimmed packages and returns per-chunk
// duplicate flags.
func (c *Client) PutChunks(ctx context.Context, chunks []proto.ChunkUpload) ([]bool, error) {
	if len(chunks) == 0 {
		return nil, nil
	}
	payload, err := c.call(ctx, proto.MsgPutChunksReq, proto.EncodePutChunksReq(chunks), proto.MsgPutChunksResp)
	if err != nil {
		return nil, err
	}
	dups, err := proto.DecodePutChunksResp(payload)
	if err != nil {
		return nil, err
	}
	if len(dups) != len(chunks) {
		return nil, errors.New("server client: dup count mismatch")
	}
	return dups, nil
}

// GetChunks fetches a batch of trimmed packages by fingerprint, in
// order.
func (c *Client) GetChunks(ctx context.Context, fps []fingerprint.Fingerprint) ([][]byte, error) {
	if len(fps) == 0 {
		return nil, nil
	}
	payload, err := c.call(ctx, proto.MsgGetChunksReq, proto.EncodeGetChunksReq(fps), proto.MsgGetChunksResp)
	if err != nil {
		return nil, err
	}
	datas, err := proto.DecodeBlobList(payload, len(fps))
	if err != nil {
		return nil, err
	}
	if len(datas) != len(fps) {
		return nil, errors.New("server client: chunk count mismatch")
	}
	return datas, nil
}

// PutBlob stores a blob (recipe, stub file, or key state).
func (c *Client) PutBlob(ctx context.Context, ns, name string, data []byte) error {
	_, err := c.call(ctx, proto.MsgPutBlobReq, proto.EncodeBlobReq(ns, name, data), proto.MsgPutBlobResp)
	return err
}

// GetBlob fetches a blob.
func (c *Client) GetBlob(ctx context.Context, ns, name string) ([]byte, error) {
	return c.call(ctx, proto.MsgGetBlobReq, proto.EncodeBlobReq(ns, name, nil), proto.MsgGetBlobResp)
}

// DerefChunks drops one reference from each listed chunk, returning how
// many were freed entirely.
func (c *Client) DerefChunks(ctx context.Context, fps []fingerprint.Fingerprint) (uint64, error) {
	if len(fps) == 0 {
		return 0, nil
	}
	payload, err := c.call(ctx, proto.MsgDerefChunksReq, proto.EncodeGetChunksReq(fps), proto.MsgDerefChunksResp)
	if err != nil {
		return 0, err
	}
	return proto.DecodeDerefChunksResp(payload)
}

// DeleteBlob removes a blob.
func (c *Client) DeleteBlob(ctx context.Context, ns, name string) error {
	_, err := c.call(ctx, proto.MsgDeleteBlobReq, proto.EncodeBlobReq(ns, name, nil), proto.MsgDeleteBlobResp)
	return err
}

// Challenge asks the server to prove possession of a chunk: it returns
// H(nonce || stored bytes).
func (c *Client) Challenge(ctx context.Context, fp fingerprint.Fingerprint, nonce []byte) ([]byte, error) {
	return c.call(ctx, proto.MsgChallengeReq, proto.EncodeChallengeReq(fp, nonce), proto.MsgChallengeResp)
}

// ListBlobs lists the blob names in a namespace.
func (c *Client) ListBlobs(ctx context.Context, ns string) ([]string, error) {
	payload, err := c.call(ctx, proto.MsgListBlobsReq, proto.EncodeListBlobsReq(ns), proto.MsgListBlobsResp)
	if err != nil {
		return nil, err
	}
	return proto.DecodeListBlobsResp(payload)
}

// Stats fetches the server's dedup statistics.
func (c *Client) Stats(ctx context.Context) (proto.Stats, error) {
	payload, err := c.call(ctx, proto.MsgStatsReq, nil, proto.MsgStatsResp)
	if err != nil {
		return proto.Stats{}, err
	}
	return proto.DecodeStats(payload)
}
