package server

import (
	"context"
	"errors"
	"fmt"
	"net"

	"repro/internal/fileindex"
	"repro/internal/fingerprint"
	"repro/internal/metrics"
	"repro/internal/proto"
	"repro/internal/retry"
	"repro/internal/rpcmux"
)

// Dialer opens a connection to an address (injectable for link
// emulation).
type Dialer func(addr string) (net.Conn, error)

// ErrConnClosed is returned for calls on a connection that was torn
// down, either by Close or by a context cancellation that interrupted an
// in-flight frame (after which the stream is desynchronized and cannot
// be reused).
var ErrConnClosed = rpcmux.ErrClosed

// Client is the client side of one storage-server connection. Requests
// multiplex over the connection: concurrent calls are tagged with
// request IDs and their round trips overlap (internal/rpcmux), so a
// single connection pipelines. Opening several Clients still helps when
// the bottleneck is a single TCP stream, as in the paper's multi-
// connection deployment (Section V-B).
//
// The connection heals itself: when it dies mid-session (peer reset,
// transient network fault) the client redials with capped-jitter
// backoff, and idempotent RPCs — all reads, plus blob puts, which are
// verbatim overwrites — are re-issued transparently. Chunk puts and the
// reference-counted mutations (DerefChunks, DeleteBlob) are never
// auto-re-issued once their frame may have reached the server; their
// callers own the retry decision (see internal/client's segment retry
// and DESIGN.md on idempotency).
//
// Every RPC takes a context. Cancelling a call that is waiting for its
// response abandons just that call; cancellation that interrupts an
// in-flight frame write retires the connection, and the next call
// redials.
type Client struct {
	mux *rpcmux.Redialer
}

// DialStore connects to the storage server at addr. ctx bounds the
// initial connection attempt only. A nil dialer uses plain TCP. The
// retry policy governs reconnection backoff after mid-session faults; a
// zero policy uses the retry package defaults.
func DialStore(ctx context.Context, addr string, dialer Dialer, policy retry.Policy) (*Client, error) {
	// Redials run long after the dialing context has expired, so the
	// redial closure uses the context-free Dialer form.
	redialer := dialer
	if redialer == nil {
		redialer = func(addr string) (net.Conn, error) { return net.Dial("tcp", addr) }
	}
	var conn net.Conn
	var err error
	if dialer != nil {
		conn, err = dialer(addr)
	} else {
		conn, err = (&net.Dialer{}).DialContext(ctx, "tcp", addr)
	}
	if err != nil {
		return nil, fmt.Errorf("server client: dial %s: %w", addr, err)
	}
	redial := func() (net.Conn, error) { return redialer(addr) }
	return &Client{mux: rpcmux.NewRedialer(conn, redial, 1<<20, 1<<20, policy)}, nil
}

// Close closes the connection.
func (c *Client) Close() error {
	return c.mux.Close()
}

// Reconnects reports how many times the underlying connection has been
// re-established after a fault.
func (c *Client) Reconnects() uint64 { return c.mux.Reconnects() }

// Retries reports how many RPCs were transparently re-issued after a
// transport fault.
func (c *Client) Retries() uint64 { return c.mux.Retries() }

func (c *Client) call(ctx context.Context, typ proto.MsgType, payload []byte, want proto.MsgType, idempotent bool) ([]byte, error) {
	resp, err := c.mux.Call(ctx, typ, payload, want, idempotent)
	if err != nil {
		var re *proto.RemoteError
		if errors.As(err, &re) {
			return nil, re
		}
		return nil, fmt.Errorf("server client: %w", err)
	}
	return resp, nil
}

// PutChunks uploads a batch of trimmed packages and returns per-chunk
// duplicate flags. It is not auto-re-issued after a mid-flight
// connection fault: re-PUT is dedup-safe for the stored bytes, but it
// inflates reference counts (see internal/dedup), so the upload
// pipeline owns that retry.
func (c *Client) PutChunks(ctx context.Context, chunks []proto.ChunkUpload) ([]bool, error) {
	if len(chunks) == 0 {
		return nil, nil
	}
	payload, err := c.call(ctx, proto.MsgPutChunksReq, proto.EncodePutChunksReq(chunks), proto.MsgPutChunksResp, false)
	if err != nil {
		return nil, err
	}
	dups, err := proto.DecodePutChunksResp(payload)
	if err != nil {
		return nil, err
	}
	if len(dups) != len(chunks) {
		return nil, errors.New("server client: dup count mismatch")
	}
	return dups, nil
}

// GetChunks fetches a batch of trimmed packages by fingerprint, in
// order. Read-only: re-issued transparently after connection faults.
func (c *Client) GetChunks(ctx context.Context, fps []fingerprint.Fingerprint) ([][]byte, error) {
	if len(fps) == 0 {
		return nil, nil
	}
	payload, err := c.call(ctx, proto.MsgGetChunksReq, proto.EncodeGetChunksReq(fps), proto.MsgGetChunksResp, true)
	if err != nil {
		return nil, err
	}
	datas, err := proto.DecodeBlobList(payload, len(fps))
	if err != nil {
		return nil, err
	}
	if len(datas) != len(fps) {
		return nil, errors.New("server client: chunk count mismatch")
	}
	return datas, nil
}

// PutBlob stores a blob (recipe, stub file, or key state). Blob puts
// are verbatim whole-object overwrites, so replaying one after a
// connection fault converges to the same state; the call is re-issued
// transparently.
func (c *Client) PutBlob(ctx context.Context, ns, name string, data []byte) error {
	_, err := c.call(ctx, proto.MsgPutBlobReq, proto.EncodeBlobReq(ns, name, data), proto.MsgPutBlobResp, true)
	return err
}

// GetBlob fetches a blob. Read-only: re-issued transparently.
func (c *Client) GetBlob(ctx context.Context, ns, name string) ([]byte, error) {
	return c.call(ctx, proto.MsgGetBlobReq, proto.EncodeBlobReq(ns, name, nil), proto.MsgGetBlobResp, true)
}

// DerefChunks drops one reference from each listed chunk, returning how
// many were freed entirely. Each delivery decrements refcounts, so the
// call is never auto-re-issued once it may have executed.
func (c *Client) DerefChunks(ctx context.Context, fps []fingerprint.Fingerprint) (uint64, error) {
	if len(fps) == 0 {
		return 0, nil
	}
	payload, err := c.call(ctx, proto.MsgDerefChunksReq, proto.EncodeGetChunksReq(fps), proto.MsgDerefChunksResp, false)
	if err != nil {
		return 0, err
	}
	return proto.DecodeDerefChunksResp(payload)
}

// DeleteBlob removes a blob. A replay would turn success into a
// spurious not-found error, so the call is never auto-re-issued once it
// may have executed.
func (c *Client) DeleteBlob(ctx context.Context, ns, name string) error {
	_, err := c.call(ctx, proto.MsgDeleteBlobReq, proto.EncodeBlobReq(ns, name, nil), proto.MsgDeleteBlobResp, false)
	return err
}

// CheckFile asks the whole-file index whether (hash, size, policy) is
// already stored, returning the owning recipe's remote name on a hit.
// Read-only: re-issued transparently after connection faults.
func (c *Client) CheckFile(ctx context.Context, key fileindex.Key) (string, bool, error) {
	payload, err := c.call(ctx, proto.MsgCheckFileReq, proto.EncodeCheckFileReq(key), proto.MsgCheckFileResp, true)
	if err != nil {
		return "", false, err
	}
	return proto.DecodeCheckFileResp(payload)
}

// RegisterFile records a whole-file index entry mapping key to the
// recipe stored under name. An idempotent upsert — like PutBlob, a
// replay converges to the same state — so the transport re-issues it
// transparently after connection faults.
func (c *Client) RegisterFile(ctx context.Context, key fileindex.Key, name string) error {
	_, err := c.call(ctx, proto.MsgRegisterFileReq, proto.EncodeRegisterFileReq(key, name), proto.MsgRegisterFileResp, true)
	return err
}

// HasChunks reports which of the listed fingerprints the server
// stores, with no refcount effect. Read-only: re-issued transparently
// after connection faults.
func (c *Client) HasChunks(ctx context.Context, fps []fingerprint.Fingerprint) ([]bool, error) {
	if len(fps) == 0 {
		return nil, nil
	}
	payload, err := c.call(ctx, proto.MsgHasChunksReq, proto.EncodeGetChunksReq(fps), proto.MsgHasChunksResp, true)
	if err != nil {
		return nil, err
	}
	present, err := proto.DecodePutChunksResp(payload)
	if err != nil {
		return nil, err
	}
	if len(present) != len(fps) {
		return nil, errors.New("server client: presence count mismatch")
	}
	return present, nil
}

// RefChunks adds one reference to each listed fingerprint without
// re-sending its bytes, returning which were present. Like PutChunks
// it mutates refcounts, so it is never auto-re-issued once its frame
// may have reached the server; the cluster router owns that retry
// (a replay can only over-retain, exactly like a re-PUT).
func (c *Client) RefChunks(ctx context.Context, fps []fingerprint.Fingerprint) ([]bool, error) {
	if len(fps) == 0 {
		return nil, nil
	}
	payload, err := c.call(ctx, proto.MsgRefChunksReq, proto.EncodeGetChunksReq(fps), proto.MsgRefChunksResp, false)
	if err != nil {
		return nil, err
	}
	found, err := proto.DecodePutChunksResp(payload)
	if err != nil {
		return nil, err
	}
	if len(found) != len(fps) {
		return nil, errors.New("server client: ref count mismatch")
	}
	return found, nil
}

// Challenge asks the server to prove possession of a chunk: it returns
// H(nonce || stored bytes). Read-only: re-issued transparently.
func (c *Client) Challenge(ctx context.Context, fp fingerprint.Fingerprint, nonce []byte) ([]byte, error) {
	return c.call(ctx, proto.MsgChallengeReq, proto.EncodeChallengeReq(fp, nonce), proto.MsgChallengeResp, true)
}

// ListBlobs lists the blob names in a namespace. Read-only: re-issued
// transparently.
func (c *Client) ListBlobs(ctx context.Context, ns string) ([]string, error) {
	payload, err := c.call(ctx, proto.MsgListBlobsReq, proto.EncodeListBlobsReq(ns), proto.MsgListBlobsResp, true)
	if err != nil {
		return nil, err
	}
	return proto.DecodeListBlobsResp(payload)
}

// Stats fetches the server's dedup statistics. Read-only: re-issued
// transparently.
func (c *Client) Stats(ctx context.Context) (proto.Stats, error) {
	payload, err := c.call(ctx, proto.MsgStatsReq, nil, proto.MsgStatsResp, true)
	if err != nil {
		return proto.Stats{}, err
	}
	return proto.DecodeStats(payload)
}

// Metrics fetches the server's metrics snapshot (empty when the server
// runs uninstrumented). Read-only: re-issued transparently.
func (c *Client) Metrics(ctx context.Context) (metrics.Snapshot, error) {
	payload, err := c.call(ctx, proto.MsgMetricsReq, nil, proto.MsgMetricsResp, true)
	if err != nil {
		return metrics.Snapshot{}, err
	}
	return proto.DecodeMetricsResp(payload)
}

// Instrument attaches client-side RPC instrumentation (per-op latency
// and in-flight gauge) to this connection. Passing nil detaches.
func (c *Client) Instrument(in *rpcmux.Instruments) { c.mux.Instrument(in) }
