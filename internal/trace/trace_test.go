package trace

import (
	"bytes"
	"testing"

	"repro/internal/fingerprint"
)

// smallConfig keeps tests fast.
func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.Users = 3
	cfg.Days = 10
	cfg.BytesPerUserDay = 1 << 20
	return cfg
}

func TestConfigValidate(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{"zero users", func(c *Config) { c.Users = 0 }},
		{"zero days", func(c *Config) { c.Days = 0 }},
		{"zero bytes", func(c *Config) { c.BytesPerUserDay = 0 }},
		{"zero chunk", func(c *Config) { c.AvgChunkSize = 0 }},
		{"bad change rate", func(c *Config) { c.ChangeRate = 1.5 }},
		{"bad shared fraction", func(c *Config) { c.SharedFraction = -0.1 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := DefaultConfig()
			tt.mutate(&cfg)
			if err := cfg.Validate(); err == nil {
				t.Fatal("expected validation error")
			}
		})
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	g1, err := NewGenerator(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	g2, err := NewGenerator(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	for day := 0; day < 3; day++ {
		s1, err := g1.Day(day)
		if err != nil {
			t.Fatal(err)
		}
		s2, err := g2.Day(day)
		if err != nil {
			t.Fatal(err)
		}
		for u := range s1 {
			if len(s1[u].Chunks) != len(s2[u].Chunks) {
				t.Fatalf("day %d user %d: chunk counts differ", day, u)
			}
			for i := range s1[u].Chunks {
				if s1[u].Chunks[i] != s2[u].Chunks[i] {
					t.Fatalf("day %d user %d chunk %d differs", day, u, i)
				}
			}
		}
	}
}

func TestDayOverDaySimilarity(t *testing.T) {
	// Consecutive days must share the vast majority of chunks (that is
	// what makes the dedup savings of Experiment B.1 possible).
	g, err := NewGenerator(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	day0, err := g.Day(0)
	if err != nil {
		t.Fatal(err)
	}
	day1, err := g.Day(1)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[fingerprint.Fingerprint]bool)
	for _, c := range day0[0].Chunks {
		seen[c.FP] = true
	}
	var shared int
	for _, c := range day1[0].Chunks {
		if seen[c.FP] {
			shared++
		}
	}
	ratio := float64(shared) / float64(len(day1[0].Chunks))
	if ratio < 0.95 {
		t.Fatalf("day-over-day similarity = %.3f, want >= 0.95", ratio)
	}
	if ratio == 1.0 {
		t.Fatal("consecutive days identical; churn not applied")
	}
}

func TestCrossUserSharing(t *testing.T) {
	g, err := NewGenerator(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	day0, err := g.Day(0)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[fingerprint.Fingerprint]bool)
	for _, c := range day0[0].Chunks {
		seen[c.FP] = true
	}
	var shared int
	for _, c := range day0[1].Chunks {
		if seen[c.FP] {
			shared++
		}
	}
	if shared == 0 {
		t.Fatal("no cross-user duplicate chunks")
	}
}

func TestCumulativeDedupSavings(t *testing.T) {
	// Over many days, unique data must be a small fraction of logical
	// data, in the spirit of the paper's 98.6% saving.
	cfg := smallConfig()
	cfg.Days = 30
	g, err := NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var logical, physical uint64
	unique := make(map[fingerprint.Fingerprint]bool)
	for day := 0; day < cfg.Days; day++ {
		snaps, err := g.Day(day)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range snaps {
			for _, c := range s.Chunks {
				logical += uint64(c.Size)
				if !unique[c.FP] {
					unique[c.FP] = true
					physical += uint64(c.Size)
				}
			}
		}
	}
	saving := 1 - float64(physical)/float64(logical)
	if saving < 0.9 {
		t.Fatalf("cumulative saving = %.3f, want >= 0.9", saving)
	}
	t.Logf("cumulative dedup saving over %d days: %.2f%%", cfg.Days, saving*100)
}

func TestChunkSizesInRange(t *testing.T) {
	g, err := NewGenerator(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	snaps, err := g.Day(0)
	if err != nil {
		t.Fatal(err)
	}
	var total uint64
	var count int
	for _, s := range snaps {
		for _, c := range s.Chunks {
			if c.Size < 2*1024 || c.Size > 16*1024 {
				t.Fatalf("chunk size %d outside [2KB,16KB]", c.Size)
			}
			total += uint64(c.Size)
			count++
		}
	}
	avg := int(total) / count
	if avg < 6*1024 || avg > 10*1024 {
		t.Fatalf("average chunk size %d too far from 8KB", avg)
	}
}

func TestDayOutOfRange(t *testing.T) {
	g, err := NewGenerator(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Day(-1); err == nil {
		t.Fatal("Day(-1) expected error")
	}
	if _, err := g.Day(10_000); err == nil {
		t.Fatal("Day beyond config expected error")
	}
}

func TestMaterialize(t *testing.T) {
	c := Chunk{FP: fingerprint.New([]byte("m")), Size: 100}
	data := Materialize(c)
	if len(data) != 100 {
		t.Fatalf("materialized length = %d", len(data))
	}
	// The data must start with the fingerprint and repeat it.
	if !bytes.Equal(data[:fingerprint.Size], c.FP[:]) {
		t.Fatal("materialized chunk does not start with the fingerprint")
	}
	if !bytes.Equal(data[fingerprint.Size:2*fingerprint.Size], c.FP[:]) {
		t.Fatal("fingerprint not repeated")
	}
	// Identical chunk -> identical bytes; distinct -> distinct.
	if !bytes.Equal(Materialize(c), data) {
		t.Fatal("Materialize not deterministic")
	}
	other := Chunk{FP: fingerprint.New([]byte("n")), Size: 100}
	if bytes.Equal(Materialize(other), data) {
		t.Fatal("distinct fingerprints materialized identically")
	}
}

func TestSnapshotMarshalRoundTrip(t *testing.T) {
	g, err := NewGenerator(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	snaps, err := g.Day(0)
	if err != nil {
		t.Fatal(err)
	}
	s := &snaps[0]
	got, err := UnmarshalSnapshot(s.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.User != s.User || got.Day != s.Day || len(got.Chunks) != len(s.Chunks) {
		t.Fatalf("header mismatch: %+v", got)
	}
	for i := range s.Chunks {
		if got.Chunks[i] != s.Chunks[i] {
			t.Fatalf("chunk %d mismatch", i)
		}
	}
}

func TestUnmarshalSnapshotErrors(t *testing.T) {
	if _, err := UnmarshalSnapshot(nil); err == nil {
		t.Fatal("empty input expected error")
	}
	if _, err := UnmarshalSnapshot([]byte{0x01, 0x41, 0xFF}); err == nil {
		t.Fatal("truncated input expected error")
	}
}

func TestLogicalBytes(t *testing.T) {
	s := Snapshot{Chunks: []Chunk{{Size: 100}, {Size: 200}}}
	if got := s.LogicalBytes(); got != 300 {
		t.Fatalf("LogicalBytes = %d, want 300", got)
	}
}
