// Package trace generates and replays FSL-style backup workloads for
// REED's trace-driven experiments (Section VI-B).
//
// The paper evaluates on the FSL Fslhomes 2013 dataset: 147 daily
// snapshots of nine users' home directories, each snapshot a list of
// chunk fingerprints and sizes, 56.2 TB of pre-deduplicated data with
// ~98.6% cumulative dedup savings. That dataset is an external download,
// so this package synthesizes statistically similar snapshots instead:
//
//   - each user owns a working set of chunks, part of which is shared
//     with other users (a shared file system);
//   - each day a small fraction of the working set is modified and the
//     set grows slightly, so day-over-day snapshots are highly similar
//     (high dedup ratio) but never identical;
//   - chunk sizes follow the variable-size chunking profile (2–16 KB,
//     8 KB average).
//
// Chunk bytes are reconstructed from fingerprints exactly as the paper
// does for its trace runs: "we reconstruct a chunk by repeatedly writing
// its fingerprint to a spare chunk until reaching the specified chunk
// size", so identical (distinct) fingerprints yield identical (distinct)
// chunks.
package trace

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/binenc"
	"repro/internal/fingerprint"
)

// Chunk is one entry of a snapshot: a fingerprint plus chunk size.
type Chunk struct {
	FP   fingerprint.Fingerprint
	Size uint32
}

// Snapshot is one user's backup for one day.
type Snapshot struct {
	User   string
	Day    int
	Chunks []Chunk
}

// LogicalBytes is the pre-deduplication size of the snapshot.
func (s *Snapshot) LogicalBytes() uint64 {
	var total uint64
	for _, c := range s.Chunks {
		total += uint64(c.Size)
	}
	return total
}

// Config tunes the generator. The zero value is not valid; use
// DefaultConfig and adjust.
type Config struct {
	// Users is the number of users (the FSL trace has 9).
	Users int
	// Days is the number of daily snapshots (the FSL trace has 147).
	Days int
	// BytesPerUserDay is each user's approximate daily logical backup
	// size.
	BytesPerUserDay uint64
	// AvgChunkSize is the mean chunk size (8 KB in the trace).
	AvgChunkSize int
	// ChangeRate is the fraction of a user's working set modified each
	// day. The FSL-like default (~0.005) yields ≈98–99% cumulative
	// savings over 147 days.
	ChangeRate float64
	// SharedFraction is the fraction of each user's working set drawn
	// from a file-system-wide shared pool (cross-user duplicates).
	SharedFraction float64
	// GrowthRate is the daily working-set growth fraction.
	GrowthRate float64
	// Seed makes generation deterministic.
	Seed int64
}

// DefaultConfig mirrors the FSL Fslhomes 2013 shape, scaled down so the
// full run fits in memory; scale BytesPerUserDay up for larger runs.
func DefaultConfig() Config {
	return Config{
		Users:           9,
		Days:            147,
		BytesPerUserDay: 48 << 20, // scaled stand-in for ~48 GB/user/day
		AvgChunkSize:    8 * 1024,
		ChangeRate:      0.005,
		SharedFraction:  0.2,
		GrowthRate:      0.002,
		Seed:            1,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Users <= 0 || c.Days <= 0 {
		return errors.New("trace: users and days must be positive")
	}
	if c.BytesPerUserDay == 0 || c.AvgChunkSize <= 0 {
		return errors.New("trace: sizes must be positive")
	}
	if c.ChangeRate < 0 || c.ChangeRate > 1 || c.SharedFraction < 0 || c.SharedFraction > 1 || c.GrowthRate < 0 {
		return errors.New("trace: rates out of range")
	}
	return nil
}

// chunkID identifies a logical chunk slot; its fingerprint changes when
// its version bumps.
type chunkID struct {
	shared  bool
	owner   int
	index   int
	version int
}

// Generator produces snapshots day by day, maintaining per-user working
// sets.
type Generator struct {
	cfg Config
	rng *rand.Rand

	users  [][]chunkID // per-user working set (slots)
	shared []int       // version per shared-pool slot
}

// NewGenerator builds a generator with day-0 working sets.
func NewGenerator(cfg Config) (*Generator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	g := &Generator{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}

	slotsPerUser := int(cfg.BytesPerUserDay / uint64(cfg.AvgChunkSize))
	if slotsPerUser < 1 {
		slotsPerUser = 1
	}
	sharedSlots := int(float64(slotsPerUser) * cfg.SharedFraction)
	g.shared = make([]int, sharedSlots)

	g.users = make([][]chunkID, cfg.Users)
	for u := range g.users {
		set := make([]chunkID, 0, slotsPerUser)
		for i := 0; i < slotsPerUser; i++ {
			if i < sharedSlots {
				// Shared slots reference the common pool.
				set = append(set, chunkID{shared: true, index: i})
			} else {
				set = append(set, chunkID{owner: u, index: i})
			}
		}
		g.users[u] = set
	}
	return g, nil
}

// Day generates the snapshots for one day (all users) and then applies
// the daily mutation so the next call reflects the following day. Days
// must be requested in order starting from 0.
func (g *Generator) Day(day int) ([]Snapshot, error) {
	if day < 0 || day >= g.cfg.Days {
		return nil, fmt.Errorf("trace: day %d out of range [0,%d)", day, g.cfg.Days)
	}
	out := make([]Snapshot, g.cfg.Users)
	for u := range g.users {
		snap := Snapshot{
			User:   fmt.Sprintf("user%03d", u),
			Day:    day,
			Chunks: make([]Chunk, 0, len(g.users[u])),
		}
		for _, id := range g.users[u] {
			snap.Chunks = append(snap.Chunks, g.chunkFor(id))
		}
		out[u] = snap
	}
	g.mutate()
	return out, nil
}

// chunkFor derives the deterministic chunk for a slot at its current
// version.
func (g *Generator) chunkFor(id chunkID) Chunk {
	version := id.version
	if id.shared {
		version = g.shared[id.index]
	}
	var tag string
	if id.shared {
		tag = fmt.Sprintf("shared/%d@%d", id.index, version)
	} else {
		tag = fmt.Sprintf("user%d/%d@%d", id.owner, id.index, version)
	}
	fp := fingerprint.New([]byte(tag))
	return Chunk{FP: fp, Size: sizeFor(fp, g.cfg.AvgChunkSize)}
}

// sizeFor derives a deterministic pseudo-random size around avg from the
// fingerprint, clamped to the paper's 2–16 KB chunking bounds (scaled
// when avg differs from 8 KB).
func sizeFor(fp fingerprint.Fingerprint, avg int) uint32 {
	// Spread in [avg/2, avg*1.5) keeps the mean at avg.
	spread := uint32(avg)
	base := uint32(avg / 2)
	v := uint32(fp[0])<<8 | uint32(fp[1])
	return base + v%spread
}

// mutate applies day-over-day churn: version bumps and growth.
func (g *Generator) mutate() {
	// Shared pool churn (affects every user referencing the slot).
	sharedChanges := int(float64(len(g.shared)) * g.cfg.ChangeRate)
	for i := 0; i < sharedChanges; i++ {
		g.shared[g.rng.Intn(len(g.shared))]++
	}
	for u := range g.users {
		set := g.users[u]
		// Private churn; every daily backup differs at least a little,
		// so small scaled-down working sets still see one change.
		changes := int(float64(len(set)) * g.cfg.ChangeRate)
		if changes < 1 {
			changes = 1
		}
		for i := 0; i < changes; i++ {
			j := g.rng.Intn(len(set))
			if !set[j].shared {
				set[j].version++
			} else {
				g.shared[set[j].index]++
			}
		}
		// Growth: new private slots.
		growth := int(float64(len(set)) * g.cfg.GrowthRate)
		for i := 0; i < growth; i++ {
			set = append(set, chunkID{owner: u, index: len(set) + 1_000_000})
		}
		g.users[u] = set
	}
}

// Materialize reconstructs the chunk's bytes from its fingerprint by
// repetition, the paper's method for trace-driven runs.
func Materialize(c Chunk) []byte {
	out := make([]byte, c.Size)
	for off := 0; off < len(out); off += fingerprint.Size {
		copy(out[off:], c.FP[:])
	}
	return out
}

// Marshal encodes a snapshot (for writing trace files to disk).
func (s *Snapshot) Marshal() []byte {
	w := binenc.NewWriter(32 + len(s.Chunks)*(fingerprint.Size+4))
	w.String(s.User)
	w.Uint32(uint32(s.Day))
	w.Uvarint(uint64(len(s.Chunks)))
	for _, c := range s.Chunks {
		w.Raw(c.FP[:])
		w.Uint32(c.Size)
	}
	return w.Bytes()
}

// UnmarshalSnapshot decodes a snapshot produced by Marshal.
func UnmarshalSnapshot(b []byte) (*Snapshot, error) {
	r := binenc.NewReader(b)
	var s Snapshot
	var err error
	if s.User, err = r.ReadString(); err != nil {
		return nil, fmt.Errorf("trace: user: %w", err)
	}
	day, err := r.Uint32()
	if err != nil {
		return nil, fmt.Errorf("trace: day: %w", err)
	}
	s.Day = int(day)
	count, err := r.Uvarint()
	if err != nil {
		return nil, fmt.Errorf("trace: chunk count: %w", err)
	}
	if count > 1<<28 {
		return nil, errors.New("trace: snapshot too large")
	}
	s.Chunks = make([]Chunk, 0, count)
	for i := uint64(0); i < count; i++ {
		raw, err := r.ReadRaw(fingerprint.Size)
		if err != nil {
			return nil, fmt.Errorf("trace: chunk %d: %w", i, err)
		}
		fp, err := fingerprint.FromSlice(raw)
		if err != nil {
			return nil, err
		}
		size, err := r.Uint32()
		if err != nil {
			return nil, fmt.Errorf("trace: chunk %d size: %w", i, err)
		}
		s.Chunks = append(s.Chunks, Chunk{FP: fp, Size: size})
	}
	if !r.Done() {
		return nil, errors.New("trace: trailing bytes")
	}
	return &s, nil
}
