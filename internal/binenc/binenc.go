// Package binenc provides a small, explicit binary encoding used by REED's
// persistent formats (recipes, key states, ABE ciphertexts, trace
// snapshots) and its wire protocol.
//
// The format is deliberately simple: fixed-width big-endian integers and
// uvarint-length-prefixed byte strings. Every Reader method reports
// malformed input as an error instead of panicking, so untrusted bytes
// (anything arriving from the network or the storage backend) can be
// decoded safely.
package binenc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// ErrTruncated is returned when the input ends before a value completes.
var ErrTruncated = errors.New("binenc: truncated input")

// maxBytesLen caps a single length-prefixed byte string (64 MiB) so a
// corrupt length cannot trigger a huge allocation.
const maxBytesLen = 64 << 20

// Writer accumulates an encoded message. The zero value is ready to use.
type Writer struct {
	buf []byte
}

// NewWriter returns a Writer with the given initial capacity.
func NewWriter(capacity int) *Writer {
	return &Writer{buf: make([]byte, 0, capacity)}
}

// Bytes returns the encoded message. The slice aliases the Writer's
// internal buffer; it is valid until the next Write call.
func (w *Writer) Bytes() []byte { return w.buf }

// Len returns the number of encoded bytes so far.
func (w *Writer) Len() int { return len(w.buf) }

// Uint8 appends a single byte.
func (w *Writer) Uint8(v uint8) { w.buf = append(w.buf, v) }

// Uint32 appends a big-endian 32-bit integer.
func (w *Writer) Uint32(v uint32) {
	w.buf = binary.BigEndian.AppendUint32(w.buf, v)
}

// Uint64 appends a big-endian 64-bit integer.
func (w *Writer) Uint64(v uint64) {
	w.buf = binary.BigEndian.AppendUint64(w.buf, v)
}

// Uvarint appends a varint-encoded unsigned integer.
func (w *Writer) Uvarint(v uint64) {
	w.buf = binary.AppendUvarint(w.buf, v)
}

// Bool appends a boolean as one byte.
func (w *Writer) Bool(v bool) {
	if v {
		w.Uint8(1)
	} else {
		w.Uint8(0)
	}
}

// Bytes appends a uvarint length prefix followed by b.
func (w *Writer) WriteBytes(b []byte) {
	w.Uvarint(uint64(len(b)))
	w.buf = append(w.buf, b...)
}

// String appends a uvarint length prefix followed by the string bytes.
func (w *Writer) String(s string) {
	w.Uvarint(uint64(len(s)))
	w.buf = append(w.buf, s...)
}

// Raw appends b with no length prefix (for fixed-size fields).
func (w *Writer) Raw(b []byte) { w.buf = append(w.buf, b...) }

// Reader decodes a message produced by Writer.
type Reader struct {
	buf []byte
	off int
}

// NewReader returns a Reader over buf. The Reader does not copy buf;
// byte-string reads alias it.
func NewReader(buf []byte) *Reader { return &Reader{buf: buf} }

// Remaining returns the number of unread bytes.
func (r *Reader) Remaining() int { return len(r.buf) - r.off }

// Done reports whether the entire input has been consumed; decoding
// routines should check it to reject trailing garbage.
func (r *Reader) Done() bool { return r.off == len(r.buf) }

// Uint8 reads one byte.
func (r *Reader) Uint8() (uint8, error) {
	if r.Remaining() < 1 {
		return 0, ErrTruncated
	}
	v := r.buf[r.off]
	r.off++
	return v, nil
}

// Uint32 reads a big-endian 32-bit integer.
func (r *Reader) Uint32() (uint32, error) {
	if r.Remaining() < 4 {
		return 0, ErrTruncated
	}
	v := binary.BigEndian.Uint32(r.buf[r.off:])
	r.off += 4
	return v, nil
}

// Uint64 reads a big-endian 64-bit integer.
func (r *Reader) Uint64() (uint64, error) {
	if r.Remaining() < 8 {
		return 0, ErrTruncated
	}
	v := binary.BigEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return v, nil
}

// Uvarint reads a varint-encoded unsigned integer.
func (r *Reader) Uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		return 0, ErrTruncated
	}
	r.off += n
	return v, nil
}

// Bool reads a boolean.
func (r *Reader) Bool() (bool, error) {
	v, err := r.Uint8()
	if err != nil {
		return false, err
	}
	switch v {
	case 0:
		return false, nil
	case 1:
		return true, nil
	default:
		return false, fmt.Errorf("binenc: invalid bool byte %#x", v)
	}
}

// ReadBytes reads a uvarint length prefix and the following bytes. The
// returned slice aliases the Reader's buffer.
func (r *Reader) ReadBytes() ([]byte, error) {
	n, err := r.Uvarint()
	if err != nil {
		return nil, err
	}
	if n > maxBytesLen {
		return nil, fmt.Errorf("binenc: byte string length %d exceeds limit", n)
	}
	if uint64(r.Remaining()) < n {
		return nil, ErrTruncated
	}
	b := r.buf[r.off : r.off+int(n)]
	r.off += int(n)
	return b, nil
}

// ReadBytesCopy is ReadBytes but returns a copy that does not alias the
// input buffer.
func (r *Reader) ReadBytesCopy() ([]byte, error) {
	b, err := r.ReadBytes()
	if err != nil {
		return nil, err
	}
	return append([]byte(nil), b...), nil
}

// ReadString reads a uvarint length prefix and the following string.
func (r *Reader) ReadString() (string, error) {
	b, err := r.ReadBytes()
	if err != nil {
		return "", err
	}
	return string(b), nil
}

// ReadRaw reads exactly n bytes with no length prefix. The returned slice
// aliases the Reader's buffer.
func (r *Reader) ReadRaw(n int) ([]byte, error) {
	if n < 0 || n > math.MaxInt32 {
		return nil, fmt.Errorf("binenc: invalid raw length %d", n)
	}
	if r.Remaining() < n {
		return nil, ErrTruncated
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b, nil
}
