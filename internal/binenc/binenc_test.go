package binenc

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func TestRoundTripAllTypes(t *testing.T) {
	w := NewWriter(64)
	w.Uint8(0xAB)
	w.Uint32(0xDEADBEEF)
	w.Uint64(0x0123456789ABCDEF)
	w.Uvarint(300)
	w.Bool(true)
	w.Bool(false)
	w.WriteBytes([]byte("payload"))
	w.String("hello")
	w.Raw([]byte{1, 2, 3})

	r := NewReader(w.Bytes())
	if v, err := r.Uint8(); err != nil || v != 0xAB {
		t.Fatalf("Uint8 = %v, %v", v, err)
	}
	if v, err := r.Uint32(); err != nil || v != 0xDEADBEEF {
		t.Fatalf("Uint32 = %v, %v", v, err)
	}
	if v, err := r.Uint64(); err != nil || v != 0x0123456789ABCDEF {
		t.Fatalf("Uint64 = %v, %v", v, err)
	}
	if v, err := r.Uvarint(); err != nil || v != 300 {
		t.Fatalf("Uvarint = %v, %v", v, err)
	}
	if v, err := r.Bool(); err != nil || v != true {
		t.Fatalf("Bool = %v, %v", v, err)
	}
	if v, err := r.Bool(); err != nil || v != false {
		t.Fatalf("Bool = %v, %v", v, err)
	}
	if v, err := r.ReadBytes(); err != nil || !bytes.Equal(v, []byte("payload")) {
		t.Fatalf("ReadBytes = %q, %v", v, err)
	}
	if v, err := r.ReadString(); err != nil || v != "hello" {
		t.Fatalf("ReadString = %q, %v", v, err)
	}
	if v, err := r.ReadRaw(3); err != nil || !bytes.Equal(v, []byte{1, 2, 3}) {
		t.Fatalf("ReadRaw = %v, %v", v, err)
	}
	if !r.Done() {
		t.Fatalf("Reader not done, %d bytes remain", r.Remaining())
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(a uint64, b []byte, s string, flag bool) bool {
		w := NewWriter(0)
		w.Uvarint(a)
		w.WriteBytes(b)
		w.String(s)
		w.Bool(flag)

		r := NewReader(w.Bytes())
		ga, err := r.Uvarint()
		if err != nil || ga != a {
			return false
		}
		gb, err := r.ReadBytesCopy()
		if err != nil || !bytes.Equal(gb, b) {
			return false
		}
		gs, err := r.ReadString()
		if err != nil || gs != s {
			return false
		}
		gf, err := r.Bool()
		if err != nil || gf != flag {
			return false
		}
		return r.Done()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTruncatedReads(t *testing.T) {
	tests := []struct {
		name string
		read func(*Reader) error
	}{
		{"Uint8", func(r *Reader) error { _, err := r.Uint8(); return err }},
		{"Uint32", func(r *Reader) error { _, err := r.Uint32(); return err }},
		{"Uint64", func(r *Reader) error { _, err := r.Uint64(); return err }},
		{"Uvarint", func(r *Reader) error { _, err := r.Uvarint(); return err }},
		{"Bool", func(r *Reader) error { _, err := r.Bool(); return err }},
		{"ReadBytes", func(r *Reader) error { _, err := r.ReadBytes(); return err }},
		{"ReadString", func(r *Reader) error { _, err := r.ReadString(); return err }},
		{"ReadRaw", func(r *Reader) error { _, err := r.ReadRaw(1); return err }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			r := NewReader(nil)
			if err := tt.read(r); !errors.Is(err, ErrTruncated) {
				t.Fatalf("error = %v, want ErrTruncated", err)
			}
		})
	}
}

func TestBytesLengthPrefixTruncated(t *testing.T) {
	w := NewWriter(0)
	w.Uvarint(100) // claims 100 bytes follow
	w.Raw([]byte{1, 2})
	r := NewReader(w.Bytes())
	if _, err := r.ReadBytes(); !errors.Is(err, ErrTruncated) {
		t.Fatalf("error = %v, want ErrTruncated", err)
	}
}

func TestBytesLengthLimit(t *testing.T) {
	w := NewWriter(0)
	w.Uvarint(1 << 40) // absurd length
	r := NewReader(w.Bytes())
	if _, err := r.ReadBytes(); err == nil {
		t.Fatal("huge length prefix expected error")
	}
}

func TestInvalidBool(t *testing.T) {
	r := NewReader([]byte{7})
	if _, err := r.Bool(); err == nil {
		t.Fatal("invalid bool byte expected error")
	}
}

func TestReadBytesCopyDoesNotAlias(t *testing.T) {
	w := NewWriter(0)
	w.WriteBytes([]byte("alias"))
	buf := w.Bytes()
	r := NewReader(buf)
	got, err := r.ReadBytesCopy()
	if err != nil {
		t.Fatal(err)
	}
	buf[len(buf)-1] ^= 0xFF
	if !bytes.Equal(got, []byte("alias")) {
		t.Fatal("ReadBytesCopy result aliased the input buffer")
	}
}

func TestReadRawNegative(t *testing.T) {
	r := NewReader([]byte{1, 2, 3})
	if _, err := r.ReadRaw(-1); err == nil {
		t.Fatal("negative raw length expected error")
	}
}
