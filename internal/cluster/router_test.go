package cluster

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"repro/internal/fingerprint"
	"repro/internal/proto"
	"repro/internal/retry"
	"repro/internal/ring"
	"repro/internal/store"
	"repro/internal/testenv"
)

var ctx = context.Background()

// startShards boots n independent storage servers and a router over
// them.
func startShards(t *testing.T, n int, cfg Config) (*Router, []string) {
	t.Helper()
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		_, addrs[i] = testenv.StartServer(t)
	}
	cfg.Shards = addrs
	r, err := Dial(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = r.Close() })
	return r, addrs
}

// randomChunks builds n random chunk uploads with valid fingerprints.
func randomChunks(t *testing.T, n int, seed int64) []proto.ChunkUpload {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	out := make([]proto.ChunkUpload, n)
	for i := range out {
		data := make([]byte, 512+rng.Intn(512))
		rng.Read(data)
		out[i] = proto.ChunkUpload{FP: fingerprint.New(data), Data: data}
	}
	return out
}

func TestPutGetAcrossShards(t *testing.T) {
	r, addrs := startShards(t, 3, Config{})
	chunks := randomChunks(t, 200, 1)

	flags, err := r.PutChunks(ctx, chunks)
	if err != nil {
		t.Fatal(err)
	}
	if len(flags) != len(chunks) {
		t.Fatalf("flag count = %d, want %d", len(flags), len(chunks))
	}
	for i, d := range flags {
		if d {
			t.Fatalf("chunk %d reported duplicate on first upload", i)
		}
	}

	// Second upload: every chunk deduplicates on its owning shard —
	// the placement function is total, so a fingerprint never lands on
	// a shard that hasn't seen it.
	flags, err = r.PutChunks(ctx, chunks)
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range flags {
		if !d {
			t.Fatalf("chunk %d not deduplicated on re-upload", i)
		}
	}

	fps := make([]fingerprint.Fingerprint, len(chunks))
	for i, c := range chunks {
		fps[i] = c.FP
	}
	datas, err := r.GetChunks(ctx, fps)
	if err != nil {
		t.Fatal(err)
	}
	for i := range chunks {
		if string(datas[i]) != string(chunks[i].Data) {
			t.Fatalf("chunk %d corrupted through shard fan-out", i)
		}
	}

	// Per-shard unique counts must match the ring's local placement
	// computation and sum to the global total.
	rg, err := ring.New(addrs)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]uint64, len(addrs))
	for _, fp := range fps {
		want[rg.Owner(fp)]++
	}
	stats, err := r.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	var total uint64
	for s, st := range stats {
		unique := st.TotalPuts - st.DedupedPuts
		if unique != want[s] {
			t.Errorf("shard %d holds %d unique chunks, ring places %d", s, unique, want[s])
		}
		total += unique
	}
	if total != uint64(len(chunks)) {
		t.Fatalf("shards hold %d unique chunks total, want %d", total, len(chunks))
	}
}

func TestDerefAcrossShards(t *testing.T) {
	r, _ := startShards(t, 3, Config{})
	chunks := randomChunks(t, 100, 2)
	if _, err := r.PutChunks(ctx, chunks); err != nil {
		t.Fatal(err)
	}
	fps := make([]fingerprint.Fingerprint, len(chunks))
	for i, c := range chunks {
		fps[i] = c.FP
	}
	freed, err := r.DerefChunks(ctx, fps)
	if err != nil {
		t.Fatal(err)
	}
	if freed != uint64(len(chunks)) {
		t.Fatalf("freed %d chunks, want %d", freed, len(chunks))
	}
	stats, err := r.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for s, st := range stats {
		if st.PhysicalBytes != 0 {
			t.Errorf("shard %d still holds %d physical bytes after full deref", s, st.PhysicalBytes)
		}
	}
}

func TestFilePlaneCoLocationAndList(t *testing.T) {
	r, _ := startShards(t, 4, Config{})
	names := []string{"/a", "/b/c", "/d/e/f", "/g", "/hh", "/iii"}
	for _, name := range names {
		if err := r.PutBlob(ctx, store.NSRecipes, name, []byte("recipe:"+name)); err != nil {
			t.Fatal(err)
		}
		if err := r.PutBlob(ctx, store.NSStubs, name, []byte("stub:"+name)); err != nil {
			t.Fatal(err)
		}
	}
	// A file's recipe and stub must land on the same home shard.
	for _, name := range names {
		home := r.Home(name)
		for _, ns := range []string{store.NSRecipes, store.NSStubs} {
			listed, err := r.conns[home].ListBlobs(ctx, ns)
			if err != nil {
				t.Fatal(err)
			}
			found := false
			for _, n := range listed {
				if n == name {
					found = true
				}
			}
			if !found {
				t.Fatalf("%s %q not on its home shard %d", ns, name, home)
			}
		}
		got, err := r.GetBlob(ctx, store.NSRecipes, name)
		if err != nil || string(got) != "recipe:"+name {
			t.Fatalf("GetBlob(%q) = %q, %v", name, got, err)
		}
	}
	// The merged listing sees every name exactly once, sorted.
	listed, err := r.ListBlobs(ctx, store.NSRecipes)
	if err != nil {
		t.Fatal(err)
	}
	if len(listed) != len(names) {
		t.Fatalf("ListBlobs = %v, want %d names", listed, len(names))
	}
	for i := 1; i < len(listed); i++ {
		if listed[i-1] >= listed[i] {
			t.Fatalf("ListBlobs not sorted: %v", listed)
		}
	}
	for _, name := range names {
		if err := r.DeleteBlob(ctx, store.NSRecipes, name); err != nil {
			t.Fatal(err)
		}
	}
	listed, err = r.ListBlobs(ctx, store.NSRecipes)
	if err != nil {
		t.Fatal(err)
	}
	if len(listed) != 0 {
		t.Fatalf("names survive deletion: %v", listed)
	}
}

// A dead shard must transition to down after consecutive transport
// failures, after which non-idempotent operations fail fast with
// ErrShardDown instead of burning their retry budget.
func TestFailFastOnDownShard(t *testing.T) {
	fast := retry.Policy{InitialDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond, MaxAttempts: 2}
	srv, addr := testenv.StartServer(t)
	r, err := Dial(ctx, Config{Shards: []string{addr}, Retry: fast, DownAfter: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = r.Close() })

	if err := r.PutBlob(ctx, store.NSRecipes, "/x", []byte("x")); err != nil {
		t.Fatal(err)
	}
	for _, h := range r.Health() {
		if h.Down || h.ConsecutiveFailures != 0 {
			t.Fatalf("healthy shard reported %+v", h)
		}
	}

	_ = srv.Shutdown()

	// Idempotent reads keep probing; each failed probe counts.
	for i := 0; i < 2; i++ {
		if _, err := r.GetBlob(ctx, store.NSRecipes, "/x"); err == nil {
			t.Fatal("read from dead shard succeeded")
		}
	}
	h := r.Health()[0]
	if !h.Down {
		t.Fatalf("shard not marked down after %d transport failures: %+v", h.ConsecutiveFailures, h)
	}

	// Non-idempotent operations now fail fast.
	chunks := randomChunks(t, 1, 3)
	if _, err := r.PutChunks(ctx, chunks); !errors.Is(err, ErrShardDown) {
		t.Fatalf("PutChunks to down shard: %v, want ErrShardDown", err)
	}
	if _, err := r.DerefChunks(ctx, []fingerprint.Fingerprint{chunks[0].FP}); !errors.Is(err, ErrShardDown) {
		t.Fatalf("DerefChunks on down shard: %v, want ErrShardDown", err)
	}
	if err := r.DeleteBlob(ctx, store.NSRecipes, "/x"); !errors.Is(err, ErrShardDown) {
		t.Fatalf("DeleteBlob on down shard: %v, want ErrShardDown", err)
	}
	// Reads are still attempted — they are what heals the mark — and
	// report the transport error, not ErrShardDown.
	if _, err := r.GetBlob(ctx, store.NSRecipes, "/x"); errors.Is(err, ErrShardDown) {
		t.Fatalf("idempotent read refused on down shard: %v", err)
	}
}

func TestDialRejectsBadConfig(t *testing.T) {
	if _, err := Dial(ctx, Config{}); err == nil {
		t.Fatal("want error for empty shard list")
	}
	if _, err := Dial(ctx, Config{Shards: []string{"a:1", "a:1"}}); err == nil {
		t.Fatal("want error for duplicate shards")
	}
}

func TestSplitBatches(t *testing.T) {
	mk := func(sizes ...int) []proto.ChunkUpload {
		out := make([]proto.ChunkUpload, len(sizes))
		for i, s := range sizes {
			out[i] = proto.ChunkUpload{Data: make([]byte, s)}
		}
		return out
	}
	tests := []struct {
		name     string
		give     []proto.ChunkUpload
		maxBytes int
		want     []int // batch lengths
	}{
		{"empty", nil, 100, nil},
		{"one small", mk(10), 100, []int{1}},
		{"fits in one", mk(30, 30, 30), 100, []int{3}},
		{"splits", mk(60, 60, 60), 100, []int{1, 1, 1}},
		{"pairs", mk(40, 40, 40, 40), 100, []int{2, 2}},
		{"oversized alone", mk(200, 10), 100, []int{1, 1}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := splitBatches(tt.give, tt.maxBytes)
			if len(got) != len(tt.want) {
				t.Fatalf("batch count = %d, want %d", len(got), len(tt.want))
			}
			for i := range tt.want {
				if len(got[i]) != tt.want[i] {
					t.Fatalf("batch %d length = %d, want %d", i, len(got[i]), tt.want[i])
				}
			}
		})
	}
}
