// Package cluster implements the client-side routing plane for a
// sharded REED deployment: a Router owns one rpcmux-backed connection
// per storage shard and fans every storage RPC out by placement.
//
// Two routing planes share one consistent-hash ring (internal/ring):
//
//   - chunk plane — PutChunks, GetChunks, DerefChunks, Challenge route
//     each fingerprint to its ring owner, so a chunk deduplicates
//     globally (every client sends a given fingerprint to the same
//     shard) and per-shard dedup accounting sums to the single-node
//     totals;
//   - file plane — PutBlob, GetBlob, DeleteBlob route by a hash of the
//     object name, so a file's recipe and stub file co-locate on one
//     "home" shard while different files spread across the cluster.
//
// Batched calls are partitioned by owner, issued concurrently per
// shard, and reassembled in the caller's order, so the pipeline above
// sees exactly the single-connection semantics it always had. Fault
// handling splits by idempotency: reads ride the transport's
// transparent redial/re-issue machinery, chunk-batch puts are re-sent
// here under the retry policy (re-PUT is dedup-safe; see
// internal/dedup), and the reference-counted mutations fail fast when
// a shard is marked down — the caller must decide, not a blind replay.
//
// A shard is marked down after DownAfter consecutive transport
// failures and marked up again by any successful call (application
// errors from a live shard count as successes — the shard answered).
// Idempotent calls always try, which is also what heals the mark.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fileindex"
	"repro/internal/fingerprint"
	"repro/internal/metrics"
	"repro/internal/proto"
	"repro/internal/retry"
	"repro/internal/ring"
	"repro/internal/rpcmux"
	"repro/internal/server"
)

// DefaultDownAfter is how many consecutive transport failures mark a
// shard down for non-idempotent operations.
const DefaultDownAfter = 3

// DefaultGetBatchChunks bounds one GetChunks RPC's fingerprint count.
const DefaultGetBatchChunks = 4096

// ErrShardDown wraps errors returned when a non-idempotent operation is
// refused because its target shard is marked down.
var ErrShardDown = errors.New("cluster: shard down")

// Config configures a Router.
type Config struct {
	// Shards are the storage shard addresses. Order does not affect
	// placement (the ring hashes addresses), but it fixes the index
	// space Stats, Health, and error messages report in.
	Shards []string
	// Dialer overrides connection establishment (nil uses plain TCP).
	Dialer server.Dialer
	// Retry bounds reconnection backoff on every shard connection and
	// the router-owned chunk-batch re-sends.
	Retry retry.Policy
	// CallTimeout, when positive, bounds each individual shard RPC.
	CallTimeout time.Duration
	// BatchBytes caps one PutChunks batch's payload (default 4 MB).
	BatchBytes int
	// GetBatchChunks caps one GetChunks RPC's fingerprint count
	// (default DefaultGetBatchChunks).
	GetBatchChunks int
	// VirtualNodes and RingSeed configure the placement ring; zero
	// values use the ring package defaults.
	VirtualNodes int
	RingSeed     uint64
	// OnBatchRetry, when set, is called once per re-sent chunk batch
	// (the client wires its RetryStats counter here).
	OnBatchRetry func()
	// DownAfter overrides DefaultDownAfter.
	DownAfter int
}

// ShardHealth is one shard's routing-plane health view.
type ShardHealth struct {
	// Addr is the shard's address.
	Addr string
	// ConsecutiveFailures counts transport failures since the last
	// successful call.
	ConsecutiveFailures int
	// Down reports whether non-idempotent operations currently fail
	// fast against this shard.
	Down bool
}

// Router routes storage RPCs across the shards of one cluster. It is
// safe for concurrent use.
type Router struct {
	cfg   Config
	ring  *ring.Ring
	conns []*server.Client
	// fails[s] counts consecutive transport failures against shard s;
	// crossing cfg.DownAfter marks the shard down.
	fails []atomic.Int64
}

// Dial connects to every shard. ctx bounds the initial handshakes, not
// the router's lifetime. Placement is fixed at construction: the same
// shard list (in any order), virtual-node count, and seed yield the
// same chunk→shard mapping on every client.
func Dial(ctx context.Context, cfg Config) (*Router, error) {
	var ringOpts []ring.Option
	if cfg.VirtualNodes > 0 {
		ringOpts = append(ringOpts, ring.WithVirtualNodes(cfg.VirtualNodes))
	}
	if cfg.RingSeed != 0 {
		ringOpts = append(ringOpts, ring.WithSeed(cfg.RingSeed))
	}
	rg, err := ring.New(cfg.Shards, ringOpts...)
	if err != nil {
		return nil, fmt.Errorf("cluster: %w", err)
	}
	if cfg.BatchBytes <= 0 {
		cfg.BatchBytes = 4 << 20
	}
	if cfg.GetBatchChunks <= 0 {
		cfg.GetBatchChunks = DefaultGetBatchChunks
	}
	if cfg.DownAfter <= 0 {
		cfg.DownAfter = DefaultDownAfter
	}
	r := &Router{cfg: cfg, ring: rg, fails: make([]atomic.Int64, len(cfg.Shards))}
	for _, addr := range cfg.Shards {
		conn, err := server.DialStore(ctx, addr, cfg.Dialer, cfg.Retry)
		if err != nil {
			_ = r.Close()
			return nil, fmt.Errorf("cluster: dial shard %s: %w", addr, err)
		}
		r.conns = append(r.conns, conn)
	}
	return r, nil
}

// Close closes every shard connection.
func (r *Router) Close() error {
	var firstErr error
	for _, conn := range r.conns {
		if err := conn.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// N returns the shard count.
func (r *Router) N() int { return len(r.conns) }

// Addrs returns the shard addresses in index order.
func (r *Router) Addrs() []string { return r.ring.Members() }

// Owner returns the shard index owning a chunk fingerprint.
func (r *Router) Owner(fp fingerprint.Fingerprint) int { return r.ring.Owner(fp) }

// Home returns the shard index holding an object name's file-plane
// blobs (its recipe and stub file land together).
func (r *Router) Home(name string) int { return r.ring.OwnerKey([]byte(name)) }

// rpc derives the context one shard RPC runs under.
func (r *Router) rpc(ctx context.Context) (context.Context, context.CancelFunc) {
	if r.cfg.CallTimeout > 0 {
		return context.WithTimeout(ctx, r.cfg.CallTimeout)
	}
	return ctx, func() {}
}

// observe feeds one call outcome into shard health. Application errors
// (proto.RemoteError) mean the shard answered — it is up; context
// errors say nothing about the shard and are ignored.
func (r *Router) observe(s int, err error) {
	if err == nil {
		r.fails[s].Store(0)
		return
	}
	var re *proto.RemoteError
	if errors.As(err, &re) {
		r.fails[s].Store(0)
		return
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return
	}
	r.fails[s].Add(1)
}

// downErr returns a fail-fast error when shard s is marked down, nil
// otherwise. Only non-idempotent entry points consult it — reads keep
// probing (and heal the mark on success).
func (r *Router) downErr(s int) error {
	if n := r.fails[s].Load(); n >= int64(r.cfg.DownAfter) {
		return fmt.Errorf("%w: shard %d (%s) after %d consecutive transport failures",
			ErrShardDown, s, r.cfg.Shards[s], n)
	}
	return nil
}

// Health returns every shard's routing-plane health, in index order.
func (r *Router) Health() []ShardHealth {
	out := make([]ShardHealth, len(r.conns))
	for s := range r.conns {
		n := r.fails[s].Load()
		out[s] = ShardHealth{
			Addr:                r.cfg.Shards[s],
			ConsecutiveFailures: int(n),
			Down:                n >= int64(r.cfg.DownAfter),
		}
	}
	return out
}

// Reconnects sums connection re-establishments across all shards.
func (r *Router) Reconnects() uint64 {
	var n uint64
	for _, conn := range r.conns {
		n += conn.Reconnects()
	}
	return n
}

// Retries sums transparently re-issued RPCs across all shards.
func (r *Router) Retries() uint64 {
	var n uint64
	for _, conn := range r.conns {
		n += conn.Retries()
	}
	return n
}

// Instrument attaches per-shard RPC instrumentation to the registry:
// each shard's op families carry a shard="<addr>" label, so a merged
// snapshot still shows per-shard balance.
func (r *Router) Instrument(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	for s, conn := range r.conns {
		addr := r.cfg.Shards[s]
		conn.Instrument(&rpcmux.Instruments{
			Ops:      metrics.NewOpSet(reg, "rpc", proto.OpNames(), "shard", addr),
			Inflight: reg.Gauge("rpc_inflight", "shard", addr),
		})
	}
}

// splitBatches groups uploads so each batch stays under maxBytes
// (always at least one chunk per batch).
func splitBatches(chunks []proto.ChunkUpload, maxBytes int) [][]proto.ChunkUpload {
	var (
		out   [][]proto.ChunkUpload
		cur   []proto.ChunkUpload
		bytes int
	)
	for _, c := range chunks {
		if len(cur) > 0 && bytes+len(c.Data) > maxBytes {
			out = append(out, cur)
			cur, bytes = nil, 0
		}
		cur = append(cur, c)
		bytes += len(c.Data)
	}
	if len(cur) > 0 {
		out = append(out, cur)
	}
	return out
}

// --- chunk plane ---

// PutChunks uploads a batch of trimmed packages, each to its owning
// shard, and returns per-chunk duplicate flags in input order.
//
// This is the router-owned retry layer: PutChunks is not re-issued by
// the transport (a replay inflates refcounts), so a batch that dies
// with its connection is re-sent here under Config.Retry. Re-PUT
// converges byte-identically — the store detects the duplicate
// fingerprint and only bumps a refcount — so a flapping shard costs
// over-retention at worst, never corruption. Application errors from a
// healthy shard are permanent, and a shard marked down fails the call
// immediately.
func (r *Router) PutChunks(ctx context.Context, chunks []proto.ChunkUpload) ([]bool, error) {
	if len(chunks) == 0 {
		return nil, nil
	}
	type slot struct {
		idx int // position in the caller's batch
		up  proto.ChunkUpload
	}
	perShard := make([][]slot, len(r.conns))
	for i, up := range chunks {
		s := r.ring.Owner(up.FP)
		perShard[s] = append(perShard[s], slot{idx: i, up: up})
	}

	policy := r.cfg.Retry
	callerHook := policy.OnRetry
	policy.OnRetry = func(attempt int, err error, delay time.Duration) {
		if r.cfg.OnBatchRetry != nil {
			r.cfg.OnBatchRetry()
		}
		if callerHook != nil {
			callerHook(attempt, err, delay)
		}
	}

	flags := make([]bool, len(chunks))
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	for s := range r.conns {
		if len(perShard[s]) == 0 {
			continue
		}
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			fail := func(err error) {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
			}
			if err := r.downErr(s); err != nil {
				fail(fmt.Errorf("cluster: upload to shard %d: %w", s, err))
				return
			}
			slots := perShard[s]
			ups := make([]proto.ChunkUpload, len(slots))
			for i, sl := range slots {
				ups[i] = sl.up
			}
			done := 0
			for _, batch := range splitBatches(ups, r.cfg.BatchBytes) {
				var dups []bool
				err := retry.Do(ctx, policy, func(ctx context.Context) error {
					rctx, cancel := r.rpc(ctx)
					defer cancel()
					var err error
					dups, err = r.conns[s].PutChunks(rctx, batch)
					r.observe(s, err)
					if err == nil {
						return nil
					}
					var re *proto.RemoteError
					if errors.As(err, &re) {
						return retry.Permanent(err)
					}
					return err
				})
				if err != nil {
					fail(fmt.Errorf("cluster: upload to shard %d (%s): %w", s, r.cfg.Shards[s], err))
					return
				}
				for i, d := range dups {
					flags[slots[done+i].idx] = d
				}
				done += len(batch)
			}
		}(s)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return flags, nil
}

// GetChunks fetches trimmed packages by fingerprint from their owning
// shards, concurrently, returning them in input order. Reads are
// re-issued transparently by the transport after connection faults.
func (r *Router) GetChunks(ctx context.Context, fps []fingerprint.Fingerprint) ([][]byte, error) {
	if len(fps) == 0 {
		return nil, nil
	}
	type want struct {
		idx int
		fp  fingerprint.Fingerprint
	}
	perShard := make([][]want, len(r.conns))
	for i, fp := range fps {
		s := r.ring.Owner(fp)
		perShard[s] = append(perShard[s], want{idx: i, fp: fp})
	}

	out := make([][]byte, len(fps))
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	for s := range r.conns {
		if len(perShard[s]) == 0 {
			continue
		}
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			wants := perShard[s]
			batch := r.cfg.GetBatchChunks
			for start := 0; start < len(wants); start += batch {
				end := start + batch
				if end > len(wants) {
					end = len(wants)
				}
				fps := make([]fingerprint.Fingerprint, 0, end-start)
				for _, w := range wants[start:end] {
					fps = append(fps, w.fp)
				}
				rctx, cancel := r.rpc(ctx)
				datas, err := r.conns[s].GetChunks(rctx, fps)
				cancel()
				r.observe(s, err)
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("cluster: download from shard %d (%s): %w", s, r.cfg.Shards[s], err)
					}
					mu.Unlock()
					return
				}
				for i, w := range wants[start:end] {
					out[w.idx] = datas[i]
				}
			}
		}(s)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// DerefChunks drops one reference from each fingerprint on its owning
// shard, returning the total number freed. Refcount mutations are never
// auto-re-issued, and a shard marked down fails the call immediately.
func (r *Router) DerefChunks(ctx context.Context, fps []fingerprint.Fingerprint) (uint64, error) {
	if len(fps) == 0 {
		return 0, nil
	}
	perShard := make([][]fingerprint.Fingerprint, len(r.conns))
	for _, fp := range fps {
		s := r.ring.Owner(fp)
		perShard[s] = append(perShard[s], fp)
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		freed    uint64
	)
	for s := range r.conns {
		if len(perShard[s]) == 0 {
			continue
		}
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			fail := func(err error) {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
			}
			if err := r.downErr(s); err != nil {
				fail(fmt.Errorf("cluster: deref on shard %d: %w", s, err))
				return
			}
			rctx, cancel := r.rpc(ctx)
			n, err := r.conns[s].DerefChunks(rctx, perShard[s])
			cancel()
			r.observe(s, err)
			if err != nil {
				fail(fmt.Errorf("cluster: deref on shard %d (%s): %w", s, r.cfg.Shards[s], err))
				return
			}
			mu.Lock()
			freed += n
			mu.Unlock()
		}(s)
	}
	wg.Wait()
	if firstErr != nil {
		return 0, firstErr
	}
	return freed, nil
}

// HasChunks reports which fingerprints are already stored, asking each
// fingerprint's owning shard concurrently and reassembling the flags
// in input order. Read-only with no refcount effect: re-issued
// transparently by the transport after connection faults.
func (r *Router) HasChunks(ctx context.Context, fps []fingerprint.Fingerprint) ([]bool, error) {
	if len(fps) == 0 {
		return nil, nil
	}
	type want struct {
		idx int
		fp  fingerprint.Fingerprint
	}
	perShard := make([][]want, len(r.conns))
	for i, fp := range fps {
		s := r.ring.Owner(fp)
		perShard[s] = append(perShard[s], want{idx: i, fp: fp})
	}

	out := make([]bool, len(fps))
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	for s := range r.conns {
		if len(perShard[s]) == 0 {
			continue
		}
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			wants := perShard[s]
			batch := r.cfg.GetBatchChunks
			for start := 0; start < len(wants); start += batch {
				end := start + batch
				if end > len(wants) {
					end = len(wants)
				}
				fps := make([]fingerprint.Fingerprint, 0, end-start)
				for _, w := range wants[start:end] {
					fps = append(fps, w.fp)
				}
				rctx, cancel := r.rpc(ctx)
				present, err := r.conns[s].HasChunks(rctx, fps)
				cancel()
				r.observe(s, err)
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("cluster: lookup on shard %d (%s): %w", s, r.cfg.Shards[s], err)
					}
					mu.Unlock()
					return
				}
				for i, w := range wants[start:end] {
					out[w.idx] = present[i]
				}
			}
		}(s)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// RefChunks adds one reference to each fingerprint on its owning shard
// without re-sending bytes, returning per-fingerprint presence flags
// in input order.
//
// Retry semantics match PutChunks, because the failure algebra is the
// same: a replayed ref can only over-retain (an extra refcount until a
// matching deref), never corrupt, so batches that die with their
// connection are re-sent here under Config.Retry. Application errors
// are permanent and a shard marked down fails the call immediately.
func (r *Router) RefChunks(ctx context.Context, fps []fingerprint.Fingerprint) ([]bool, error) {
	if len(fps) == 0 {
		return nil, nil
	}
	type want struct {
		idx int
		fp  fingerprint.Fingerprint
	}
	perShard := make([][]want, len(r.conns))
	for i, fp := range fps {
		s := r.ring.Owner(fp)
		perShard[s] = append(perShard[s], want{idx: i, fp: fp})
	}

	policy := r.cfg.Retry
	callerHook := policy.OnRetry
	policy.OnRetry = func(attempt int, err error, delay time.Duration) {
		if r.cfg.OnBatchRetry != nil {
			r.cfg.OnBatchRetry()
		}
		if callerHook != nil {
			callerHook(attempt, err, delay)
		}
	}

	out := make([]bool, len(fps))
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	for s := range r.conns {
		if len(perShard[s]) == 0 {
			continue
		}
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			fail := func(err error) {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
			}
			if err := r.downErr(s); err != nil {
				fail(fmt.Errorf("cluster: ref on shard %d: %w", s, err))
				return
			}
			wants := perShard[s]
			batch := r.cfg.GetBatchChunks
			for start := 0; start < len(wants); start += batch {
				end := start + batch
				if end > len(wants) {
					end = len(wants)
				}
				fps := make([]fingerprint.Fingerprint, 0, end-start)
				for _, w := range wants[start:end] {
					fps = append(fps, w.fp)
				}
				var found []bool
				err := retry.Do(ctx, policy, func(ctx context.Context) error {
					rctx, cancel := r.rpc(ctx)
					defer cancel()
					var err error
					found, err = r.conns[s].RefChunks(rctx, fps)
					r.observe(s, err)
					if err == nil {
						return nil
					}
					var re *proto.RemoteError
					if errors.As(err, &re) {
						return retry.Permanent(err)
					}
					return err
				})
				if err != nil {
					fail(fmt.Errorf("cluster: ref on shard %d (%s): %w", s, r.cfg.Shards[s], err))
					return
				}
				for i, w := range wants[start:end] {
					out[w.idx] = found[i]
				}
			}
		}(s)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// Challenge asks a chunk's owning shard to prove possession of it.
func (r *Router) Challenge(ctx context.Context, fp fingerprint.Fingerprint, nonce []byte) ([]byte, error) {
	s := r.ring.Owner(fp)
	rctx, cancel := r.rpc(ctx)
	defer cancel()
	resp, err := r.conns[s].Challenge(rctx, fp, nonce)
	r.observe(s, err)
	if err != nil {
		return nil, fmt.Errorf("cluster: challenge on shard %d (%s): %w", s, r.cfg.Shards[s], err)
	}
	return resp, nil
}

// --- file plane ---

// PutBlob stores a blob on the name's home shard. Blob puts are
// verbatim overwrites (idempotent), so the transport re-issues them
// transparently after connection faults.
func (r *Router) PutBlob(ctx context.Context, ns, name string, data []byte) error {
	s := r.Home(name)
	rctx, cancel := r.rpc(ctx)
	defer cancel()
	err := r.conns[s].PutBlob(rctx, ns, name, data)
	r.observe(s, err)
	return err
}

// GetBlob fetches a blob from the name's home shard.
func (r *Router) GetBlob(ctx context.Context, ns, name string) ([]byte, error) {
	s := r.Home(name)
	rctx, cancel := r.rpc(ctx)
	defer cancel()
	data, err := r.conns[s].GetBlob(rctx, ns, name)
	r.observe(s, err)
	return data, err
}

// DeleteBlob removes a blob from the name's home shard. Deletions are
// never auto-re-issued, and a shard marked down fails the call
// immediately.
func (r *Router) DeleteBlob(ctx context.Context, ns, name string) error {
	s := r.Home(name)
	if err := r.downErr(s); err != nil {
		return fmt.Errorf("cluster: delete blob on shard %d: %w", s, err)
	}
	rctx, cancel := r.rpc(ctx)
	defer cancel()
	err := r.conns[s].DeleteBlob(rctx, ns, name)
	r.observe(s, err)
	return err
}

// CheckFile asks the whole-file index on the key's home shard whether
// (hash, size, policy) is already stored. The home shard is fixed by
// the key's routing name under the same placement rule as recipe
// names, so every client's lookups and registrations for one file meet
// on one shard. Read-only: re-issued transparently.
func (r *Router) CheckFile(ctx context.Context, key fileindex.Key) (string, bool, error) {
	s := r.Home(key.RoutingName())
	rctx, cancel := r.rpc(ctx)
	defer cancel()
	name, found, err := r.conns[s].CheckFile(rctx, key)
	r.observe(s, err)
	if err != nil {
		return "", false, fmt.Errorf("cluster: check file on shard %d (%s): %w", s, r.cfg.Shards[s], err)
	}
	return name, found, nil
}

// RegisterFile records a whole-file index entry on the key's home
// shard. An idempotent upsert like PutBlob: re-issued transparently
// after connection faults.
func (r *Router) RegisterFile(ctx context.Context, key fileindex.Key, name string) error {
	s := r.Home(key.RoutingName())
	rctx, cancel := r.rpc(ctx)
	defer cancel()
	err := r.conns[s].RegisterFile(rctx, key, name)
	r.observe(s, err)
	if err != nil {
		return fmt.Errorf("cluster: register file on shard %d (%s): %w", s, r.cfg.Shards[s], err)
	}
	return nil
}

// ListBlobs lists a namespace across every shard, deduplicated and
// sorted.
func (r *Router) ListBlobs(ctx context.Context, ns string) ([]string, error) {
	seen := make(map[string]bool)
	for s, conn := range r.conns {
		rctx, cancel := r.rpc(ctx)
		names, err := conn.ListBlobs(rctx, ns)
		cancel()
		r.observe(s, err)
		if err != nil {
			return nil, fmt.Errorf("cluster: list shard %d (%s): %w", s, r.cfg.Shards[s], err)
		}
		for _, n := range names {
			seen[n] = true
		}
	}
	out := make([]string, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Strings(out)
	return out, nil
}

// --- operational plane ---

// Stats fetches every shard's dedup statistics, in index order.
func (r *Router) Stats(ctx context.Context) ([]proto.Stats, error) {
	out := make([]proto.Stats, 0, len(r.conns))
	for s, conn := range r.conns {
		rctx, cancel := r.rpc(ctx)
		st, err := conn.Stats(rctx)
		cancel()
		r.observe(s, err)
		if err != nil {
			return nil, fmt.Errorf("cluster: stats from shard %d (%s): %w", s, r.cfg.Shards[s], err)
		}
		out = append(out, st)
	}
	return out, nil
}

// ShardMetrics fetches every shard's metrics snapshot, in index order
// (empty snapshots from uninstrumented shards).
func (r *Router) ShardMetrics(ctx context.Context) ([]metrics.Snapshot, error) {
	out := make([]metrics.Snapshot, 0, len(r.conns))
	for s, conn := range r.conns {
		rctx, cancel := r.rpc(ctx)
		snap, err := conn.Metrics(rctx)
		cancel()
		r.observe(s, err)
		if err != nil {
			return nil, fmt.Errorf("cluster: metrics from shard %d (%s): %w", s, r.cfg.Shards[s], err)
		}
		out = append(out, snap)
	}
	return out, nil
}
