package mle

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/fingerprint"
)

func TestConvergentDeriverDeterministic(t *testing.T) {
	fp := fingerprint.New([]byte("chunk"))
	var d ConvergentDeriver
	k1, err := d.DeriveKey(fp)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := d.DeriveKey(fp)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(k1, k2) {
		t.Fatal("convergent keys differ for identical fingerprint")
	}
	if len(k1) != KeySize {
		t.Fatalf("key length = %d, want %d", len(k1), KeySize)
	}
}

func TestConvergentDeriverDistinct(t *testing.T) {
	var d ConvergentDeriver
	k1, _ := d.DeriveKey(fingerprint.New([]byte("a")))
	k2, _ := d.DeriveKey(fingerprint.New([]byte("b")))
	if bytes.Equal(k1, k2) {
		t.Fatal("distinct fingerprints produced identical keys")
	}
}

func TestSecretDeriver(t *testing.T) {
	d1, err := NewSecretDeriver([]byte("secret-1"))
	if err != nil {
		t.Fatal(err)
	}
	d2, err := NewSecretDeriver([]byte("secret-2"))
	if err != nil {
		t.Fatal(err)
	}
	fp := fingerprint.New([]byte("chunk"))
	k1a, _ := d1.DeriveKey(fp)
	k1b, _ := d1.DeriveKey(fp)
	k2, _ := d2.DeriveKey(fp)
	if !bytes.Equal(k1a, k1b) {
		t.Fatal("secret deriver not deterministic")
	}
	if bytes.Equal(k1a, k2) {
		t.Fatal("different secrets produced identical keys")
	}
}

func TestSecretDeriverEmptySecret(t *testing.T) {
	if _, err := NewSecretDeriver(nil); err == nil {
		t.Fatal("empty secret expected error")
	}
}

func TestSecretDeriverCopiesSecret(t *testing.T) {
	secret := []byte("mutable")
	d, err := NewSecretDeriver(secret)
	if err != nil {
		t.Fatal(err)
	}
	fp := fingerprint.New([]byte("x"))
	k1, _ := d.DeriveKey(fp)
	secret[0] ^= 0xFF
	k2, _ := d.DeriveKey(fp)
	if !bytes.Equal(k1, k2) {
		t.Fatal("deriver affected by caller mutating the secret slice")
	}
}

func TestEncryptDecryptRoundTrip(t *testing.T) {
	var d ConvergentDeriver
	f := func(chunk []byte) bool {
		key, err := d.DeriveKey(fingerprint.New(chunk))
		if err != nil {
			return false
		}
		ct, err := Encrypt(key, chunk)
		if err != nil {
			return false
		}
		pt, err := Decrypt(key, ct)
		if err != nil {
			return false
		}
		return bytes.Equal(pt, chunk)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEncryptDeterministicCiphertext(t *testing.T) {
	// The MLE property: same plaintext, same key, same ciphertext.
	chunk := []byte("deduplicatable content")
	var d ConvergentDeriver
	key, _ := d.DeriveKey(fingerprint.New(chunk))
	c1, err := Encrypt(key, chunk)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := Encrypt(key, chunk)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(c1, c2) {
		t.Fatal("MLE ciphertexts differ for identical plaintexts")
	}
}

func TestEncryptHidesPlaintext(t *testing.T) {
	chunk := bytes.Repeat([]byte("plaintext!"), 100)
	var d ConvergentDeriver
	key, _ := d.DeriveKey(fingerprint.New(chunk))
	ct, err := Encrypt(key, chunk)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(ct, []byte("plaintext!")) {
		t.Fatal("ciphertext contains plaintext")
	}
}

func TestEncryptBadKey(t *testing.T) {
	if _, err := Encrypt([]byte("short"), []byte("x")); err == nil {
		t.Fatal("short key expected error")
	}
}

func BenchmarkEncrypt8KB(b *testing.B) {
	chunk := make([]byte, 8192)
	var d ConvergentDeriver
	key, _ := d.DeriveKey(fingerprint.New(chunk))
	b.SetBytes(int64(len(chunk)))
	for i := 0; i < b.N; i++ {
		if _, err := Encrypt(key, chunk); err != nil {
			b.Fatal(err)
		}
	}
}
