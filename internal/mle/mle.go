// Package mle implements message-locked encryption (MLE) and its
// convergent-encryption (CE) special case.
//
// MLE derives a chunk's encryption key from the chunk itself so that
// identical plaintexts produce identical ciphertexts, preserving
// deduplication over encrypted data. CE uses the cryptographic hash of
// the message directly as the key. Both are inherently brute-forceable
// for predictable messages; REED therefore obtains MLE keys from a
// dedicated key manager via an oblivious PRF (internal/oprf +
// internal/keymanager), and this package supplies the key-derivation
// interface plus the deterministic symmetric cipher both paths share.
//
// This package also serves as the "plain MLE storage" baseline that REED
// is compared against: deduplication-friendly encryption with no rekeying
// capability.
package mle

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/sha256"
	"fmt"

	"repro/internal/fingerprint"
)

// KeySize is the MLE key size in bytes.
const KeySize = 32

// KeyDeriver derives the MLE key for a chunk fingerprint. Implementations
// include the local convergent deriver below and the server-aided OPRF
// client in internal/keymanager.
type KeyDeriver interface {
	// DeriveKey returns the MLE key for the chunk identified by fp.
	DeriveKey(fp fingerprint.Fingerprint) ([]byte, error)
}

// ConvergentDeriver derives keys locally as in convergent encryption:
// the key is a hash of the fingerprint (itself the hash of the message).
// It provides no protection for predictable messages — the weakness
// server-aided MLE exists to fix — but needs no key manager.
type ConvergentDeriver struct{}

var _ KeyDeriver = ConvergentDeriver{}

// DeriveKey implements KeyDeriver.
func (ConvergentDeriver) DeriveKey(fp fingerprint.Fingerprint) ([]byte, error) {
	h := sha256.Sum256(fp[:])
	return h[:], nil
}

// SecretDeriver derives keys from the fingerprint and a system-wide
// secret, emulating what the key manager computes (a keyed PRF). It
// models DupLESS-style server-aided MLE when the transport to a real key
// manager is unnecessary, e.g. single-process tests and benchmarks.
type SecretDeriver struct {
	secret []byte
}

var _ KeyDeriver = (*SecretDeriver)(nil)

// NewSecretDeriver returns a deriver keyed by secret.
func NewSecretDeriver(secret []byte) (*SecretDeriver, error) {
	if len(secret) == 0 {
		return nil, fmt.Errorf("mle: empty secret")
	}
	return &SecretDeriver{secret: append([]byte(nil), secret...)}, nil
}

// DeriveKey implements KeyDeriver: HMAC-SHA256(secret, fp).
func (d *SecretDeriver) DeriveKey(fp fingerprint.Fingerprint) ([]byte, error) {
	mac := hmac.New(sha256.New, d.secret)
	mac.Write(fp[:])
	return mac.Sum(nil), nil
}

// Encrypt deterministically encrypts chunk under key (AES-256-CTR with a
// zero IV). Determinism is the point of MLE: the key is bound one-to-one
// to the plaintext, so IV reuse across distinct plaintexts cannot occur.
func Encrypt(key, chunk []byte) ([]byte, error) {
	out := make([]byte, len(chunk))
	if err := xorKeystream(out, chunk, key); err != nil {
		return nil, err
	}
	return out, nil
}

// Decrypt inverts Encrypt.
func Decrypt(key, ct []byte) ([]byte, error) {
	return Encrypt(key, ct) // CTR is an involution
}

func xorKeystream(dst, src, key []byte) error {
	if len(key) != KeySize {
		return fmt.Errorf("mle: key length %d, want %d", len(key), KeySize)
	}
	block, err := aes.NewCipher(key)
	if err != nil {
		return fmt.Errorf("mle: cipher: %w", err)
	}
	var iv [aes.BlockSize]byte
	cipher.NewCTR(block, iv[:]).XORKeyStream(dst, src)
	return nil
}
