// Package aont implements the all-or-nothing transform (AONT) and its
// deterministic convergent variant (CAONT).
//
// AONT (Rivest's package transform) converts a message M into a package
// (C, t) such that no part of M can be recovered without the entire
// package. The transform picks a random key K, computes a pseudo-random
// mask G(K) = E(K, S) over a publicly known block S, and outputs
//
//	C = M XOR G(K)
//	t = H(C) XOR K
//
// CAONT (used by CDStore and REED) replaces the random K with a
// deterministic message-derived key so that identical messages yield
// identical packages, preserving deduplication.
//
// This package provides the shared machinery — the mask generator, the
// package/tail layout, and the self-XOR tail used by REED's enhanced
// scheme — plus standalone AONT/CAONT transforms. REED's basic and
// enhanced chunk encryption schemes build on these in internal/core.
package aont

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"crypto/sha256"
	"crypto/subtle"
	"errors"
	"fmt"
	"io"
)

const (
	// KeySize is the size of the AONT key (and of SHA-256 output).
	KeySize = sha256.Size
	// TailSize is the size of the package tail t.
	TailSize = sha256.Size
)

// ErrPackageTooShort is returned when a package is shorter than the tail.
var ErrPackageTooShort = errors.New("aont: package shorter than tail")

// Mask returns the pseudo-random mask G(key) of length n: the AES-256-CTR
// keystream over a publicly known all-zero block, i.e. E(key, S) with
// S = 0^n and a zero IV. The mask is deterministic in (key, n).
func Mask(key []byte, n int) ([]byte, error) {
	if len(key) != KeySize {
		return nil, fmt.Errorf("aont: mask key length %d, want %d", len(key), KeySize)
	}
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("aont: mask cipher: %w", err)
	}
	var iv [aes.BlockSize]byte
	stream := cipher.NewCTR(block, iv[:])
	mask := make([]byte, n)
	stream.XORKeyStream(mask, mask)
	return mask, nil
}

// XORBytes XORs src into dst (dst ^= src); the slices must have equal
// length.
func XORBytes(dst, src []byte) error {
	if len(dst) != len(src) {
		return fmt.Errorf("aont: xor length mismatch %d vs %d", len(dst), len(src))
	}
	subtle.XORBytes(dst, dst, src)
	return nil
}

// ApplyMask XORs the mask G(key) into data in place, without ever
// materializing the mask: the CTR keystream is applied directly. It is
// its own inverse, and equivalent to XORBytes(data, Mask(key,
// len(data))) minus the allocation and the extra pass — the hot path
// for CAONT package/unpackage.
func ApplyMask(key, data []byte) error {
	if len(key) != KeySize {
		return fmt.Errorf("aont: mask key length %d, want %d", len(key), KeySize)
	}
	block, err := aes.NewCipher(key)
	if err != nil {
		return fmt.Errorf("aont: mask cipher: %w", err)
	}
	var iv [aes.BlockSize]byte
	cipher.NewCTR(block, iv[:]).XORKeyStream(data, data)
	return nil
}

// Transform applies the randomized AONT to msg, drawing the key from
// randSrc (crypto/rand.Reader if nil). The output package is
// len(msg)+TailSize bytes: head C followed by tail t.
func Transform(msg []byte, randSrc io.Reader) ([]byte, error) {
	if randSrc == nil {
		randSrc = rand.Reader
	}
	key := make([]byte, KeySize)
	if _, err := io.ReadFull(randSrc, key); err != nil {
		return nil, fmt.Errorf("aont: draw key: %w", err)
	}
	return TransformWithKey(msg, key)
}

// TransformWithKey applies the AONT with a caller-supplied key. Supplying
// a deterministic message-derived key yields CAONT. The output package is
// len(msg)+TailSize bytes.
func TransformWithKey(msg, key []byte) ([]byte, error) {
	pkg := make([]byte, len(msg)+TailSize)
	if err := TransformWithKeyInto(pkg, msg, key); err != nil {
		return nil, err
	}
	return pkg, nil
}

// TransformWithKeyInto is TransformWithKey writing into a caller-owned
// buffer of exactly len(msg)+TailSize bytes, performing no allocations:
// the message is copied into the package head and masked in place.
// msg and pkg must not overlap.
func TransformWithKeyInto(pkg, msg, key []byte) error {
	if len(pkg) != len(msg)+TailSize {
		return fmt.Errorf("aont: package buffer %d bytes, want %d", len(pkg), len(msg)+TailSize)
	}
	copy(pkg[:len(msg)], msg)
	return TransformInPlace(pkg, key)
}

// TransformInPlace applies the AONT over a buffer the caller has
// already laid out: pkg[:len(pkg)-TailSize] holds the message and is
// masked in place; the final TailSize bytes are overwritten with the
// tail. This is the allocation-free core of the transform — callers
// that can stage the message directly in the package buffer (the
// upload pipeline builds [chunk || canary] that way) skip every
// intermediate copy.
func TransformInPlace(pkg, key []byte) error {
	if len(pkg) < TailSize {
		return ErrPackageTooShort
	}
	head := pkg[:len(pkg)-TailSize]
	if err := ApplyMask(key, head); err != nil {
		return err
	}
	hc := sha256.Sum256(head)
	subtle.XORBytes(pkg[len(head):], key, hc[:])
	return nil
}

// Revert inverts Transform/TransformWithKey: it recovers the message and
// the key from a package. Callers are responsible for verifying the
// recovered key or an embedded canary; Revert itself only checks the
// package shape.
func Revert(pkg []byte) (msg, key []byte, err error) {
	if len(pkg) < TailSize {
		return nil, nil, ErrPackageTooShort
	}
	scratch := make([]byte, len(pkg))
	copy(scratch, pkg)
	return RevertInPlace(scratch)
}

// RevertInPlace recovers the message and key from a package by
// unmasking the head in place: the returned msg aliases pkg[:len(pkg)-
// TailSize] and pkg's head bytes are overwritten with plaintext. The
// allocation-free inverse of TransformWithKeyInto for callers that own
// the package buffer (the download pipeline does — each package is
// reassembled into a fresh buffer per chunk).
func RevertInPlace(pkg []byte) (msg, key []byte, err error) {
	if len(pkg) < TailSize {
		return nil, nil, ErrPackageTooShort
	}
	head := pkg[:len(pkg)-TailSize]
	tail := pkg[len(pkg)-TailSize:]

	hc := sha256.Sum256(head)
	key = make([]byte, KeySize)
	subtle.XORBytes(key, tail, hc[:])

	if err := ApplyMask(key, head); err != nil {
		return nil, nil, err
	}
	return head, key, nil
}

// ConvergentKey derives the deterministic CAONT key for msg: H(msg).
func ConvergentKey(msg []byte) []byte {
	h := sha256.Sum256(msg)
	return h[:]
}

// VerifyConvergent checks that key is the convergent key of msg; it is the
// CAONT integrity check ("compute the hash of M and check it equals h").
// The comparison is constant-time: an early-exit equality check would
// hand an active adversary a byte-position timing oracle on the
// recovered key, so key material is never compared with bytes.Equal.
func VerifyConvergent(msg, key []byte) bool {
	return subtle.ConstantTimeCompare(ConvergentKey(msg), key) == 1
}

// SelfXOR computes the XOR of all TailSize-aligned pieces of data, zero-
// padding the final partial piece. REED's enhanced scheme uses it to fold
// the package head into the tail cheaply: the result cannot be predicted
// without the entire head.
func SelfXOR(data []byte) [TailSize]byte {
	var acc [TailSize]byte
	for off := 0; off < len(data); off += TailSize {
		end := off + TailSize
		if end > len(data) {
			end = len(data)
		}
		piece := data[off:end]
		for i := range piece {
			acc[i] ^= piece[i]
		}
	}
	return acc
}
