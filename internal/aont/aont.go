// Package aont implements the all-or-nothing transform (AONT) and its
// deterministic convergent variant (CAONT).
//
// AONT (Rivest's package transform) converts a message M into a package
// (C, t) such that no part of M can be recovered without the entire
// package. The transform picks a random key K, computes a pseudo-random
// mask G(K) = E(K, S) over a publicly known block S, and outputs
//
//	C = M XOR G(K)
//	t = H(C) XOR K
//
// CAONT (used by CDStore and REED) replaces the random K with a
// deterministic message-derived key so that identical messages yield
// identical packages, preserving deduplication.
//
// This package provides the shared machinery — the mask generator, the
// package/tail layout, and the self-XOR tail used by REED's enhanced
// scheme — plus standalone AONT/CAONT transforms. REED's basic and
// enhanced chunk encryption schemes build on these in internal/core.
package aont

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"crypto/sha256"
	"crypto/subtle"
	"errors"
	"fmt"
	"io"
)

const (
	// KeySize is the size of the AONT key (and of SHA-256 output).
	KeySize = sha256.Size
	// TailSize is the size of the package tail t.
	TailSize = sha256.Size
)

// ErrPackageTooShort is returned when a package is shorter than the tail.
var ErrPackageTooShort = errors.New("aont: package shorter than tail")

// Mask returns the pseudo-random mask G(key) of length n: the AES-256-CTR
// keystream over a publicly known all-zero block, i.e. E(key, S) with
// S = 0^n and a zero IV. The mask is deterministic in (key, n).
func Mask(key []byte, n int) ([]byte, error) {
	if len(key) != KeySize {
		return nil, fmt.Errorf("aont: mask key length %d, want %d", len(key), KeySize)
	}
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("aont: mask cipher: %w", err)
	}
	var iv [aes.BlockSize]byte
	stream := cipher.NewCTR(block, iv[:])
	mask := make([]byte, n)
	stream.XORKeyStream(mask, mask)
	return mask, nil
}

// XORBytes XORs src into dst (dst ^= src); the slices must have equal
// length.
func XORBytes(dst, src []byte) error {
	if len(dst) != len(src) {
		return fmt.Errorf("aont: xor length mismatch %d vs %d", len(dst), len(src))
	}
	for i := range dst {
		dst[i] ^= src[i]
	}
	return nil
}

// Transform applies the randomized AONT to msg, drawing the key from
// randSrc (crypto/rand.Reader if nil). The output package is
// len(msg)+TailSize bytes: head C followed by tail t.
func Transform(msg []byte, randSrc io.Reader) ([]byte, error) {
	if randSrc == nil {
		randSrc = rand.Reader
	}
	key := make([]byte, KeySize)
	if _, err := io.ReadFull(randSrc, key); err != nil {
		return nil, fmt.Errorf("aont: draw key: %w", err)
	}
	return TransformWithKey(msg, key)
}

// TransformWithKey applies the AONT with a caller-supplied key. Supplying
// a deterministic message-derived key yields CAONT. The output package is
// len(msg)+TailSize bytes.
func TransformWithKey(msg, key []byte) ([]byte, error) {
	mask, err := Mask(key, len(msg))
	if err != nil {
		return nil, err
	}
	pkg := make([]byte, len(msg)+TailSize)
	head := pkg[:len(msg)]
	copy(head, msg)
	if err := XORBytes(head, mask); err != nil {
		return nil, err
	}
	hc := sha256.Sum256(head)
	tail := pkg[len(msg):]
	copy(tail, key)
	if err := XORBytes(tail, hc[:]); err != nil {
		return nil, err
	}
	return pkg, nil
}

// Revert inverts Transform/TransformWithKey: it recovers the message and
// the key from a package. Callers are responsible for verifying the
// recovered key or an embedded canary; Revert itself only checks the
// package shape.
func Revert(pkg []byte) (msg, key []byte, err error) {
	if len(pkg) < TailSize {
		return nil, nil, ErrPackageTooShort
	}
	head := pkg[:len(pkg)-TailSize]
	tail := pkg[len(pkg)-TailSize:]

	hc := sha256.Sum256(head)
	key = make([]byte, KeySize)
	copy(key, tail)
	if err := XORBytes(key, hc[:]); err != nil {
		return nil, nil, err
	}

	mask, err := Mask(key, len(head))
	if err != nil {
		return nil, nil, err
	}
	msg = make([]byte, len(head))
	copy(msg, head)
	if err := XORBytes(msg, mask); err != nil {
		return nil, nil, err
	}
	return msg, key, nil
}

// ConvergentKey derives the deterministic CAONT key for msg: H(msg).
func ConvergentKey(msg []byte) []byte {
	h := sha256.Sum256(msg)
	return h[:]
}

// VerifyConvergent checks that key is the convergent key of msg; it is the
// CAONT integrity check ("compute the hash of M and check it equals h").
// The comparison is constant-time: an early-exit equality check would
// hand an active adversary a byte-position timing oracle on the
// recovered key, so key material is never compared with bytes.Equal.
func VerifyConvergent(msg, key []byte) bool {
	return subtle.ConstantTimeCompare(ConvergentKey(msg), key) == 1
}

// SelfXOR computes the XOR of all TailSize-aligned pieces of data, zero-
// padding the final partial piece. REED's enhanced scheme uses it to fold
// the package head into the tail cheaply: the result cannot be predicted
// without the entire head.
func SelfXOR(data []byte) [TailSize]byte {
	var acc [TailSize]byte
	for off := 0; off < len(data); off += TailSize {
		end := off + TailSize
		if end > len(data) {
			end = len(data)
		}
		piece := data[off:end]
		for i := range piece {
			acc[i] ^= piece[i]
		}
	}
	return acc
}
