package aont

import (
	"bytes"
	"crypto/sha256"
	"testing"
	"testing/quick"
)

func TestTransformRevertRoundTrip(t *testing.T) {
	f := func(msg []byte) bool {
		pkg, err := Transform(msg, nil)
		if err != nil {
			return false
		}
		got, _, err := Revert(pkg)
		if err != nil {
			return false
		}
		return bytes.Equal(got, msg)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTransformRandomized(t *testing.T) {
	msg := []byte("same message transformed twice")
	p1, err := Transform(msg, nil)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Transform(msg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(p1, p2) {
		t.Fatal("randomized AONT produced identical packages for two invocations")
	}
}

func TestTransformWithKeyDeterministic(t *testing.T) {
	msg := []byte("convergent aont message")
	key := ConvergentKey(msg)
	p1, err := TransformWithKey(msg, key)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := TransformWithKey(msg, key)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(p1, p2) {
		t.Fatal("CAONT produced different packages for identical message and key")
	}
}

func TestTransformWithKeyRecoversKey(t *testing.T) {
	f := func(msg []byte, seed [KeySize]byte) bool {
		pkg, err := TransformWithKey(msg, seed[:])
		if err != nil {
			return false
		}
		got, key, err := Revert(pkg)
		if err != nil {
			return false
		}
		return bytes.Equal(got, msg) && bytes.Equal(key, seed[:])
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPackageSize(t *testing.T) {
	for _, n := range []int{0, 1, 31, 32, 33, 4096, 8191} {
		msg := make([]byte, n)
		pkg, err := Transform(msg, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(pkg) != n+TailSize {
			t.Fatalf("package size for %d-byte msg = %d, want %d", n, len(pkg), n+TailSize)
		}
	}
}

func TestRevertTooShort(t *testing.T) {
	if _, _, err := Revert(make([]byte, TailSize-1)); err == nil {
		t.Fatal("Revert on short package expected error")
	}
}

// TestAllOrNothing verifies the defining property: flipping any single
// byte of the package changes the recovered key (and hence the recovered
// message decrypts to garbage under the integrity check).
func TestAllOrNothing(t *testing.T) {
	msg := []byte("the all or nothing property must hold for every byte")
	key := ConvergentKey(msg)
	pkg, err := TransformWithKey(msg, key)
	if err != nil {
		t.Fatal(err)
	}
	for i := range pkg {
		mutated := append([]byte(nil), pkg...)
		mutated[i] ^= 0x01
		got, gotKey, err := Revert(mutated)
		if err != nil {
			t.Fatalf("Revert on mutated package: %v", err)
		}
		if bytes.Equal(got, msg) && bytes.Equal(gotKey, key) {
			t.Fatalf("flipping byte %d left both message and key unchanged", i)
		}
		// The CAONT integrity check must catch the tamper.
		if VerifyConvergent(got, gotKey) {
			t.Fatalf("tampered package at byte %d passed the convergent check", i)
		}
	}
}

func TestMaskDeterministicAndKeyDependent(t *testing.T) {
	k1 := ConvergentKey([]byte("k1"))
	k2 := ConvergentKey([]byte("k2"))
	m1a, err := Mask(k1, 128)
	if err != nil {
		t.Fatal(err)
	}
	m1b, err := Mask(k1, 128)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Mask(k2, 128)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(m1a, m1b) {
		t.Fatal("mask not deterministic")
	}
	if bytes.Equal(m1a, m2) {
		t.Fatal("masks under different keys are identical")
	}
}

func TestMaskRejectsBadKey(t *testing.T) {
	if _, err := Mask(make([]byte, 16), 32); err == nil {
		t.Fatal("Mask with 16-byte key expected error")
	}
}

func TestXORBytes(t *testing.T) {
	dst := []byte{1, 2, 3}
	if err := XORBytes(dst, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dst, []byte{0, 0, 0}) {
		t.Fatalf("xor result = %v", dst)
	}
	if err := XORBytes(dst, []byte{1}); err == nil {
		t.Fatal("length mismatch expected error")
	}
}

func TestSelfXOR(t *testing.T) {
	// XOR of two identical pieces cancels out.
	piece := bytes.Repeat([]byte{0x5A}, TailSize)
	double := append(append([]byte(nil), piece...), piece...)
	if got := SelfXOR(double); got != [TailSize]byte{} {
		t.Fatalf("SelfXOR of duplicated piece = %x, want zero", got)
	}
	// Single partial piece is zero-padded.
	got := SelfXOR([]byte{0xFF, 0x01})
	want := [TailSize]byte{0xFF, 0x01}
	if got != want {
		t.Fatalf("SelfXOR partial = %x, want %x", got, want)
	}
	// Empty input.
	if got := SelfXOR(nil); got != [TailSize]byte{} {
		t.Fatalf("SelfXOR(nil) = %x, want zero", got)
	}
}

func TestSelfXORSensitiveToEveryByte(t *testing.T) {
	data := make([]byte, 100)
	for i := range data {
		data[i] = byte(i)
	}
	base := SelfXOR(data)
	for i := range data {
		mutated := append([]byte(nil), data...)
		mutated[i] ^= 0x80
		if SelfXOR(mutated) == base {
			t.Fatalf("SelfXOR unchanged after flipping byte %d", i)
		}
	}
}

func TestConvergentKeyMatchesHash(t *testing.T) {
	msg := []byte("hash key check")
	want := sha256.Sum256(msg)
	if !bytes.Equal(ConvergentKey(msg), want[:]) {
		t.Fatal("ConvergentKey does not match SHA-256")
	}
}

func BenchmarkTransformWithKey8KB(b *testing.B) {
	msg := make([]byte, 8192)
	key := ConvergentKey(msg)
	b.SetBytes(int64(len(msg)))
	for i := 0; i < b.N; i++ {
		if _, err := TransformWithKey(msg, key); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRevert8KB(b *testing.B) {
	msg := make([]byte, 8192)
	key := ConvergentKey(msg)
	pkg, err := TransformWithKey(msg, key)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(msg)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Revert(pkg); err != nil {
			b.Fatal(err)
		}
	}
}
