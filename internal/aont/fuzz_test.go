package aont

import (
	"bytes"
	"testing"
)

// FuzzAONTRoundTrip drives the CAONT core with arbitrary messages:
// TransformWithKey then Revert must return the original message and
// key, and the recovered key must pass the convergent integrity check.
// Flipping one package byte must break that check — the all-or-nothing
// property the stub/trimmed-package split depends on.
func FuzzAONTRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("m"))
	f.Add(bytes.Repeat([]byte{0xA5}, 8<<10))
	f.Fuzz(func(t *testing.T, msg []byte) {
		key := ConvergentKey(msg)
		pkg, err := TransformWithKey(msg, key)
		if err != nil {
			t.Fatalf("transform: %v", err)
		}
		if len(pkg) != len(msg)+TailSize {
			t.Fatalf("package length %d, want %d", len(pkg), len(msg)+TailSize)
		}
		got, gotKey, err := Revert(pkg)
		if err != nil {
			t.Fatalf("revert: %v", err)
		}
		if !bytes.Equal(got, msg) {
			t.Fatal("revert did not recover the message")
		}
		if !VerifyConvergent(got, gotKey) {
			t.Fatal("recovered key fails the convergent check")
		}

		// All-or-nothing: any single-byte corruption must be caught by
		// the convergent integrity check on the recovered key.
		if len(pkg) > 0 {
			i := len(msg) % len(pkg) // deterministic, input-dependent position
			pkg[i] ^= 0x01
			m2, k2, err := Revert(pkg)
			if err == nil && VerifyConvergent(m2, k2) {
				t.Fatalf("corrupted package at byte %d passed verification", i)
			}
		}
	})
}
