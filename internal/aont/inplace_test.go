package aont

import (
	"bytes"
	"crypto/sha256"
	"testing"
)

func testKeyMsg() (key, msg []byte) {
	k := sha256.Sum256([]byte("key material"))
	msg = bytes.Repeat([]byte("reed in-place transform "), 128)
	return k[:], msg
}

// TestApplyMaskMatchesMask pins the equivalence the hot path relies on:
// applying the keystream in place equals XORing an explicit mask.
func TestApplyMaskMatchesMask(t *testing.T) {
	key, msg := testKeyMsg()
	want := make([]byte, len(msg))
	copy(want, msg)
	mask, err := Mask(key, len(msg))
	if err != nil {
		t.Fatal(err)
	}
	if err := XORBytes(want, mask); err != nil {
		t.Fatal(err)
	}

	got := make([]byte, len(msg))
	copy(got, msg)
	if err := ApplyMask(key, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("ApplyMask differs from explicit Mask+XOR")
	}

	// Involution: applying twice restores the input.
	if err := ApplyMask(key, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("ApplyMask twice did not restore the message")
	}

	if err := ApplyMask(key[:5], got); err == nil {
		t.Fatal("short key expected error")
	}
}

func TestTransformWithKeyIntoMatchesTransformWithKey(t *testing.T) {
	key, msg := testKeyMsg()
	want, err := TransformWithKey(msg, key)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg)+TailSize)
	if err := TransformWithKeyInto(got, msg, key); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("TransformWithKeyInto differs from TransformWithKey")
	}

	if err := TransformWithKeyInto(got[:len(got)-1], msg, key); err == nil {
		t.Fatal("undersized buffer expected error")
	}
}

func TestTransformInPlaceRoundTrip(t *testing.T) {
	key, msg := testKeyMsg()
	pkg := make([]byte, len(msg)+TailSize)
	copy(pkg, msg)
	if err := TransformInPlace(pkg, key); err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(pkg, msg[:64]) {
		t.Fatal("package leaks plaintext prefix")
	}

	gotMsg, gotKey, err := RevertInPlace(pkg)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotMsg, msg) {
		t.Fatal("in-place round trip lost the message")
	}
	if !bytes.Equal(gotKey, key) {
		t.Fatal("in-place round trip lost the key")
	}
	// The returned message must alias the package head.
	if &gotMsg[0] != &pkg[0] {
		t.Fatal("RevertInPlace copied instead of aliasing")
	}

	if err := TransformInPlace(make([]byte, TailSize-1), key); err == nil {
		t.Fatal("short package expected error")
	}
	if _, _, err := RevertInPlace(make([]byte, TailSize-1)); err == nil {
		t.Fatal("short package expected error")
	}
}

// TestRevertLeavesInputIntact: the non-in-place Revert must not mutate
// the caller's package.
func TestRevertLeavesInputIntact(t *testing.T) {
	key, msg := testKeyMsg()
	pkg, err := TransformWithKey(msg, key)
	if err != nil {
		t.Fatal(err)
	}
	before := make([]byte, len(pkg))
	copy(before, pkg)
	if _, _, err := Revert(pkg); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pkg, before) {
		t.Fatal("Revert mutated its input package")
	}
}

// TestTransformIntoZeroAlloc locks in the allocation-free property of
// the in-place CAONT path for a caller-owned buffer.
func TestTransformIntoZeroAlloc(t *testing.T) {
	key, msg := testKeyMsg()
	pkg := make([]byte, len(msg)+TailSize)
	if n := testing.AllocsPerRun(100, func() {
		copy(pkg, msg)
		if err := TransformInPlace(pkg, key); err != nil {
			t.Fatal(err)
		}
	}); n > 3 {
		// The AES cipher and CTR stream state are the only remaining
		// per-op allocations (3 small fixed-size objects); the package
		// itself must never be copied or reallocated.
		t.Fatalf("TransformInPlace allocates %v per run, want <= 3", n)
	}
}

func BenchmarkTransformInPlace8KB(b *testing.B) {
	key, _ := testKeyMsg()
	pkg := make([]byte, 8<<10+TailSize)
	b.SetBytes(8 << 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := TransformInPlace(pkg, key); err != nil {
			b.Fatal(err)
		}
	}
}
