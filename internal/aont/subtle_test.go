package aont

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// TestVerifyConvergent covers the integrity-check semantics: matching
// keys verify, any single-byte corruption and any length mismatch do
// not.
func TestVerifyConvergent(t *testing.T) {
	msg := []byte("the convergent message")
	key := ConvergentKey(msg)
	if !VerifyConvergent(msg, key) {
		t.Fatal("correct key rejected")
	}
	for i := range key {
		bad := append([]byte(nil), key...)
		bad[i] ^= 0x01
		if VerifyConvergent(msg, bad) {
			t.Fatalf("corrupted key byte %d accepted", i)
		}
	}
	if VerifyConvergent(msg, key[:KeySize-1]) {
		t.Fatal("truncated key accepted")
	}
	if VerifyConvergent(msg, append(append([]byte(nil), key...), 0)) {
		t.Fatal("extended key accepted")
	}
}

// TestVerifyConvergentConstantTime pins the comparison primitive at
// the source level: VerifyConvergent must go through crypto/subtle
// and must not regress to bytes.Equal (or ==), whose first-differing-
// byte early exit leaks a timing oracle on the recovered key. A
// source-shape assertion is deterministic where a wall-clock timing
// test is hopelessly flaky; the keyhygiene analyzer enforces the same
// invariant tree-wide.
func TestVerifyConvergentConstantTime(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "aont.go", nil, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse aont.go: %v", err)
	}
	var fn *ast.FuncDecl
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == "VerifyConvergent" {
			fn = fd
		}
	}
	if fn == nil {
		t.Fatal("VerifyConvergent not found in aont.go")
	}

	var usesSubtle, usesBytesEqual, usesEq bool
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			if pkg, ok := n.X.(*ast.Ident); ok {
				if pkg.Name == "subtle" && n.Sel.Name == "ConstantTimeCompare" {
					usesSubtle = true
				}
				if pkg.Name == "bytes" && n.Sel.Name == "Equal" {
					usesBytesEqual = true
				}
			}
		case *ast.BinaryExpr:
			// Comparing the key slices directly would not compile, but
			// guard against an array-conversion workaround too. The
			// `== 1` on ConstantTimeCompare's int result is fine.
			if n.Op == token.EQL || n.Op == token.NEQ {
				if _, isLit := n.Y.(*ast.BasicLit); !isLit {
					usesEq = true
				}
			}
		}
		return true
	})
	if !usesSubtle {
		t.Error("VerifyConvergent does not call subtle.ConstantTimeCompare")
	}
	if usesBytesEqual {
		t.Error("VerifyConvergent compares with bytes.Equal: early-exit comparison leaks a timing oracle")
	}
	if usesEq {
		t.Error("VerifyConvergent compares key material with ==/!=")
	}
}
