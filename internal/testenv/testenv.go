// Package testenv boots a complete in-process REED deployment — key
// manager, data-store servers, and key-store server on loopback TCP —
// for integration tests, benchmarks, and the experiment driver.
//
// It mirrors the paper's testbed topology (one key manager, four data
// servers, one key-store server, clients on separate "machines") with
// goroutines in one process; an optional netem link caps bandwidth at
// the testbed's effective 1 Gb/s.
package testenv

import (
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/abe"
	"repro/internal/keymanager"
	"repro/internal/metrics"
	"repro/internal/netem"
	"repro/internal/oprf"
	"repro/internal/server"
	"repro/internal/store"
)

// Options configures a cluster.
type Options struct {
	// DataServers is the number of data-store servers (default 4, per
	// the paper).
	DataServers int
	// RSABits sizes the key manager's OPRF key (default 1024, per the
	// paper; tests may use 512 for speed).
	RSABits int
	// KMKey reuses an existing OPRF key instead of generating one
	// (RSA keygen is the slowest part of cluster startup).
	KMKey *oprf.ServerKey
	// LinkBandwidth, if positive, caps client connections at this many
	// bytes/second via internal/netem.
	LinkBandwidth float64
	// LinkRTT adds per-request latency on emulated links.
	LinkRTT time.Duration
	// RateLimit, if positive, enables key manager per-client rate
	// limiting.
	RateLimit float64
}

// Cluster is a running deployment.
type Cluster struct {
	KMAddr    string
	DataAddrs []string
	KeyAddr   string

	// Authority issues ABE keys for the deployment.
	Authority *abe.Authority

	// Link is non-nil when bandwidth emulation is on; pass
	// Link.Dialer(nil) as the client dialer.
	Link *netem.Link

	km          *keymanager.Server
	servers     []*server.Server
	DataServers []*server.Server
	listeners   []net.Listener
	serveWG     sync.WaitGroup
}

// Start boots a cluster.
func Start(opts Options) (*Cluster, error) {
	if opts.DataServers <= 0 {
		opts.DataServers = 4
	}
	if opts.RSABits <= 0 {
		opts.RSABits = oprf.DefaultBits
	}

	c := &Cluster{}
	ok := false
	defer func() {
		if !ok {
			c.Close()
		}
	}()

	kmKey := opts.KMKey
	if kmKey == nil {
		var err error
		kmKey, err = oprf.GenerateServerKey(opts.RSABits, nil)
		if err != nil {
			return nil, fmt.Errorf("testenv: key manager key: %w", err)
		}
	}
	kmOpts := []keymanager.ServerOption{keymanager.WithMetrics(metrics.NewRegistry())}
	if opts.RateLimit > 0 {
		kmOpts = append(kmOpts, keymanager.WithRateLimit(opts.RateLimit, opts.RateLimit))
	}
	c.km = keymanager.NewServer(kmKey, kmOpts...)
	kmLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	c.listeners = append(c.listeners, kmLn)
	c.KMAddr = kmLn.Addr().String()
	c.serveWG.Add(1)
	go func() {
		defer c.serveWG.Done()
		_ = c.km.Serve(kmLn)
	}()

	// Data servers plus one key-store server.
	for i := 0; i <= opts.DataServers; i++ {
		srv, err := server.New(context.Background(), store.NewMemory(), server.WithMetrics(metrics.NewRegistry()))
		if err != nil {
			return nil, err
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		c.listeners = append(c.listeners, ln)
		c.servers = append(c.servers, srv)
		c.serveWG.Add(1)
		go func() {
			defer c.serveWG.Done()
			_ = srv.Serve(ln)
		}()
		if i < opts.DataServers {
			c.DataAddrs = append(c.DataAddrs, ln.Addr().String())
			c.DataServers = append(c.DataServers, srv)
		} else {
			c.KeyAddr = ln.Addr().String()
		}
	}

	c.Authority, err = abe.NewAuthority(nil)
	if err != nil {
		return nil, err
	}

	if opts.LinkBandwidth > 0 {
		c.Link, err = netem.NewLinkRTT(opts.LinkBandwidth, opts.LinkRTT)
		if err != nil {
			return nil, err
		}
	}

	ok = true
	return c, nil
}

// Dialer returns the dialer clients should use: the throttled link when
// emulation is on, plain TCP otherwise.
func (c *Cluster) Dialer() func(addr string) (net.Conn, error) {
	if c.Link != nil {
		return c.Link.Dialer(nil)
	}
	return nil
}

// KM returns the cluster's key manager (for metrics inspection and
// direct shutdown in fault tests).
func (c *Cluster) KM() *keymanager.Server { return c.km }

// KMEvaluations returns the number of OPRF evaluations the key manager
// has served.
func (c *Cluster) KMEvaluations() uint64 {
	if c.km == nil {
		return 0
	}
	return c.km.Evaluations()
}

// Close shuts everything down and waits for every serve loop to exit,
// so tests with goroutine-leak checks see a quiet process afterwards.
// It is idempotent.
func (c *Cluster) Close() {
	if c.km != nil {
		c.km.Shutdown()
	}
	for _, s := range c.servers {
		_ = s.Shutdown()
	}
	for _, ln := range c.listeners {
		_ = ln.Close()
	}
	c.serveWG.Wait()
}

// ShardedOptions configures a ShardedCluster.
type ShardedOptions struct {
	// Shards is the number of storage shards (default 4).
	Shards int
	// RSABits sizes the key manager's OPRF key (default 1024; tests may
	// use 512 for speed).
	RSABits int
	// KMKey reuses an existing OPRF key instead of generating one.
	KMKey *oprf.ServerKey
	// LinkBandwidth and LinkRTT emulate the client links via
	// internal/netem, as in Options.
	LinkBandwidth float64
	LinkRTT       time.Duration
	// RateLimit, if positive, enables key manager rate limiting.
	RateLimit float64
}

// ShardedCluster is an N-shard deployment: N storage shards, one key
// manager, one key-store server. It is the cluster topology the ring
// router targets — pass ShardAddrs as the client's DataServers and the
// consistent-hash ring partitions the fingerprint space across the
// shards. The embedded Cluster keeps every single-node helper
// (Dialer, KM, Close) working unchanged, and client connections remain
// netem-wrappable through LinkBandwidth/LinkRTT.
type ShardedCluster struct {
	*Cluster
}

// StartSharded boots an N-shard cluster.
func StartSharded(opts ShardedOptions) (*ShardedCluster, error) {
	if opts.Shards <= 0 {
		opts.Shards = 4
	}
	c, err := Start(Options{
		DataServers:   opts.Shards,
		RSABits:       opts.RSABits,
		KMKey:         opts.KMKey,
		LinkBandwidth: opts.LinkBandwidth,
		LinkRTT:       opts.LinkRTT,
		RateLimit:     opts.RateLimit,
	})
	if err != nil {
		return nil, err
	}
	return &ShardedCluster{Cluster: c}, nil
}

// ShardAddrs returns the storage shard addresses, in boot order.
func (c *ShardedCluster) ShardAddrs() []string { return c.DataAddrs }

// Shards returns the in-process shard servers, index-aligned with
// ShardAddrs (for metrics inspection and targeted shutdown in fault
// tests).
func (c *ShardedCluster) Shards() []*server.Server { return c.DataServers }

// TB is the subset of testing.TB the test helpers need; an interface so
// testenv does not import testing into non-test binaries.
type TB interface {
	Helper()
	Fatalf(format string, args ...any)
	Cleanup(func())
}

// StartServer boots one standalone storage server on loopback TCP —
// for tests that need a server they can kill independently of a shared
// cluster. Cleanup shuts the server down and waits for its serve loop
// to exit, so a test that already killed it (Shutdown is idempotent)
// or failed mid-way leaks neither the goroutine nor the listener.
func StartServer(tb TB) (*server.Server, string) {
	tb.Helper()
	srv, err := server.New(context.Background(), store.NewMemory(), server.WithMetrics(metrics.NewRegistry()))
	if err != nil {
		tb.Fatalf("testenv: start server: %v", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		tb.Fatalf("testenv: listen: %v", err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = srv.Serve(ln)
	}()
	tb.Cleanup(func() {
		_ = srv.Shutdown()
		_ = ln.Close()
		<-done
	})
	return srv, ln.Addr().String()
}
