package testenv

import (
	"context"
	"testing"
	"time"

	"repro/internal/keymanager"
)

func TestStartAndClose(t *testing.T) {
	cluster, err := Start(Options{DataServers: 2, RSABits: 1024})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	if len(cluster.DataAddrs) != 2 {
		t.Fatalf("DataAddrs = %v", cluster.DataAddrs)
	}
	if cluster.KeyAddr == "" || cluster.KMAddr == "" {
		t.Fatal("missing addresses")
	}
	if cluster.Authority == nil {
		t.Fatal("missing authority")
	}
	if cluster.Dialer() != nil {
		t.Fatal("dialer should be nil without link emulation")
	}

	// The key manager answers.
	km, err := keymanager.Dial(context.Background(), cluster.KMAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer km.Close()
}

func TestStartWithLink(t *testing.T) {
	cluster, err := Start(Options{
		DataServers:   1,
		RSABits:       1024,
		LinkBandwidth: 1 << 30,
		LinkRTT:       time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	if cluster.Link == nil || cluster.Dialer() == nil {
		t.Fatal("link emulation not active")
	}
	// Dialing through the link works.
	km, err := keymanager.Dial(context.Background(), cluster.KMAddr, keymanager.WithDialer(cluster.Dialer()))
	if err != nil {
		t.Fatal(err)
	}
	defer km.Close()
}

func TestCloseIdempotent(t *testing.T) {
	cluster, err := Start(Options{DataServers: 1, RSABits: 1024})
	if err != nil {
		t.Fatal(err)
	}
	cluster.Close()
	cluster.Close() // must not panic
}
