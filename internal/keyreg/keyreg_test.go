package keyreg

import (
	"bytes"
	"errors"
	"sync"
	"testing"
)

var (
	ownerOnce sync.Once
	owner     *Owner
)

// sharedOwner returns a process-wide Owner; RSA keygen is slow, and the
// Owner itself is mutated only through Wind, which tests account for.
func newOwner(t testing.TB) *Owner {
	t.Helper()
	o, err := NewOwner(DefaultBits, nil)
	if err != nil {
		t.Fatalf("NewOwner: %v", err)
	}
	return o
}

func cachedOwner(t testing.TB) *Owner {
	t.Helper()
	ownerOnce.Do(func() {
		owner = newOwner(t)
	})
	return owner
}

func TestWindIncrementsVersion(t *testing.T) {
	o := newOwner(t)
	if got := o.Current().Version; got != 1 {
		t.Fatalf("initial version = %d, want 1", got)
	}
	s2 := o.Wind()
	if s2.Version != 2 {
		t.Fatalf("version after wind = %d, want 2", s2.Version)
	}
	if bytes.Equal(s2.Value, o.Current().Value) == false {
		t.Fatal("Wind return value disagrees with Current")
	}
}

// TestUnwindRecoversEarlierStates is the core key-regression property:
// a member holding state i derives states i-1, ..., 1 with the public
// key only, and they match what the owner produced.
func TestUnwindRecoversEarlierStates(t *testing.T) {
	o := newOwner(t)
	pub := o.Public()

	states := []State{o.Current()}
	for i := 0; i < 5; i++ {
		states = append(states, o.Wind())
	}
	newest := states[len(states)-1]

	for i, want := range states {
		got, err := Unwind(pub, newest, uint64(i+1))
		if err != nil {
			t.Fatalf("Unwind to version %d: %v", i+1, err)
		}
		if got.Version != want.Version || !bytes.Equal(got.Value, want.Value) {
			t.Fatalf("Unwind to version %d recovered wrong state", i+1)
		}
	}
}

func TestUnwindRefusesFutureStates(t *testing.T) {
	o := cachedOwner(t)
	cur := o.Current()
	if _, err := Unwind(o.Public(), cur, cur.Version+1); !errors.Is(err, ErrFutureState) {
		t.Fatalf("error = %v, want ErrFutureState", err)
	}
}

func TestUnwindRejectsVersionZero(t *testing.T) {
	o := cachedOwner(t)
	if _, err := Unwind(o.Public(), o.Current(), 0); err == nil {
		t.Fatal("version 0 expected error")
	}
}

func TestUnwindSameVersionIsIdentity(t *testing.T) {
	o := cachedOwner(t)
	cur := o.Current()
	got, err := Unwind(o.Public(), cur, cur.Version)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Value, cur.Value) {
		t.Fatal("unwinding to the same version changed the state")
	}
}

func TestStatesAreDistinct(t *testing.T) {
	o := newOwner(t)
	seen := map[string]bool{string(o.Current().Value): true}
	for i := 0; i < 5; i++ {
		s := o.Wind()
		if seen[string(s.Value)] {
			t.Fatalf("state at version %d repeats an earlier state", s.Version)
		}
		seen[string(s.Value)] = true
	}
}

func TestKeyDerivation(t *testing.T) {
	o := cachedOwner(t)
	s := o.Current()
	k1 := s.Key()
	k2 := s.Key()
	if k1 != k2 {
		t.Fatal("Key() not deterministic")
	}
	// Different versions with the same value must give different keys
	// (version is bound into the hash).
	altered := State{Version: s.Version + 1, Value: s.Value}
	if altered.Key() == k1 {
		t.Fatal("key ignores the version")
	}
}

func TestStateMarshalRoundTrip(t *testing.T) {
	o := cachedOwner(t)
	s := o.Current()
	got, err := UnmarshalState(s.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != s.Version || !bytes.Equal(got.Value, s.Value) {
		t.Fatal("state marshal round trip mismatch")
	}
}

func TestUnmarshalStateErrors(t *testing.T) {
	tests := []struct {
		name string
		give []byte
	}{
		{"empty", nil},
		{"truncated", []byte{1, 2, 3}},
		{"version zero", State{Version: 0, Value: []byte{1}}.Marshal()},
		{"empty value", State{Version: 1, Value: nil}.Marshal()},
		{"trailing bytes", append(State{Version: 1, Value: []byte{1}}.Marshal(), 0xFF)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := UnmarshalState(tt.give); !errors.Is(err, ErrBadState) {
				t.Fatalf("error = %v, want ErrBadState", err)
			}
		})
	}
}

func TestPublicMarshalRoundTrip(t *testing.T) {
	o := cachedOwner(t)
	p := o.Public()
	got, err := UnmarshalPublic(p.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.N.Cmp(p.N) != 0 || got.E.Cmp(p.E) != 0 {
		t.Fatal("public key round trip mismatch")
	}
}

func TestUnmarshalPublicErrors(t *testing.T) {
	if _, err := UnmarshalPublic(nil); err == nil {
		t.Fatal("empty input expected error")
	}
	if _, err := UnmarshalPublic([]byte{0x01, 0xAA}); err == nil {
		t.Fatal("truncated input expected error")
	}
}

func TestNewOwnerTooSmall(t *testing.T) {
	if _, err := NewOwner(128, nil); err == nil {
		t.Fatal("tiny modulus expected error")
	}
}

func TestCurrentReturnsCopy(t *testing.T) {
	o := newOwner(t)
	s := o.Current()
	s.Value[0] ^= 0xFF
	if bytes.Equal(s.Value, o.Current().Value) {
		t.Fatal("Current() exposed internal state slice")
	}
}

func BenchmarkWind(b *testing.B) {
	o, err := NewOwner(DefaultBits, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o.Wind()
	}
}

func BenchmarkUnwindOneStep(b *testing.B) {
	o, err := NewOwner(DefaultBits, nil)
	if err != nil {
		b.Fatal(err)
	}
	o.Wind()
	newest := o.Current()
	pub := o.Public()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Unwind(pub, newest, newest.Version-1); err != nil {
			b.Fatal(err)
		}
	}
}
