// Package keyreg implements RSA-based key regression (Fu, Kamara, and
// Kohno, NDSS'06), the serial key-derivation scheme REED uses for lazy
// revocation.
//
// Key regression produces a sequence of key states st_1, st_2, ... with
// an asymmetric derivation property:
//
//   - the content owner, holding the RSA private key d ("private
//     derivation key"), winds forward:   st_{i+1} = st_i^d mod N;
//   - any member, holding only the public key e ("public derivation
//     key"), unwinds backward:           st_{i-1} = st_i^e mod N,
//
// because (st^d)^e = st mod N. A user given the current state can derive
// every earlier state (and hence every earlier file key), but no future
// state — so revoked users lose access to everything protected by states
// issued after their revocation, while authorized users need to hold only
// the newest state. REED's file key is the SHA-256 hash of the current
// key state.
package keyreg

import (
	"crypto/rand"
	"crypto/rsa"
	"crypto/sha256"
	"errors"
	"fmt"
	"io"
	"math/big"

	"repro/internal/binenc"
)

// DefaultBits is the default RSA modulus size for derivation keys.
const DefaultBits = 1024

// KeySize is the size of the file key derived from a state.
const KeySize = 32

var (
	// ErrFutureState is returned when asked to unwind to a version
	// newer than the supplied state.
	ErrFutureState = errors.New("keyreg: cannot derive a future state")
	// ErrBadState is returned for malformed state encodings.
	ErrBadState = errors.New("keyreg: malformed key state")
)

// State is one element of the regression sequence. Version counts from 1.
type State struct {
	Version uint64
	Value   []byte // fixed-width big-endian element of Z_N
}

// Key derives the symmetric file key from the state: H(version || value).
func (s State) Key() [KeySize]byte {
	h := sha256.New()
	var v [8]byte
	for i := 0; i < 8; i++ {
		v[i] = byte(s.Version >> (56 - 8*i))
	}
	h.Write(v[:])
	h.Write(s.Value)
	var out [KeySize]byte
	copy(out[:], h.Sum(nil))
	return out
}

// Marshal encodes the state.
func (s State) Marshal() []byte {
	w := binenc.NewWriter(16 + len(s.Value))
	w.Uint64(s.Version)
	w.WriteBytes(s.Value)
	return w.Bytes()
}

// UnmarshalState decodes a state produced by Marshal.
func UnmarshalState(b []byte) (State, error) {
	r := binenc.NewReader(b)
	version, err := r.Uint64()
	if err != nil {
		return State{}, fmt.Errorf("%w: %v", ErrBadState, err)
	}
	value, err := r.ReadBytesCopy()
	if err != nil {
		return State{}, fmt.Errorf("%w: %v", ErrBadState, err)
	}
	if !r.Done() {
		return State{}, fmt.Errorf("%w: trailing bytes", ErrBadState)
	}
	if version == 0 || len(value) == 0 {
		return State{}, ErrBadState
	}
	return State{Version: version, Value: value}, nil
}

// Owner holds the private derivation key and the newest state. Each REED
// user owns one Owner per file-owning identity; winding it is the
// rekeying step.
type Owner struct {
	priv    *rsa.PrivateKey
	current State
}

// NewOwner generates a fresh derivation key pair and the initial key
// state (version 1). If randSrc is nil, crypto/rand.Reader is used.
func NewOwner(bits int, randSrc io.Reader) (*Owner, error) {
	if randSrc == nil {
		randSrc = rand.Reader
	}
	if bits < 512 {
		return nil, fmt.Errorf("keyreg: modulus size %d too small", bits)
	}
	priv, err := rsa.GenerateKey(randSrc, bits)
	if err != nil {
		return nil, fmt.Errorf("keyreg: generate derivation key: %w", err)
	}
	st, err := rand.Int(randSrc, priv.N)
	if err != nil {
		return nil, fmt.Errorf("keyreg: initial state: %w", err)
	}
	o := &Owner{priv: priv}
	o.current = State{Version: 1, Value: padToModulus(st, priv.N)}
	return o, nil
}

// Current returns the newest state.
func (o *Owner) Current() State {
	return State{Version: o.current.Version, Value: append([]byte(nil), o.current.Value...)}
}

// Wind advances to the next state using the private derivation key and
// returns it. This is the owner-side rekeying operation.
func (o *Owner) Wind() State {
	v := new(big.Int).SetBytes(o.current.Value)
	next := new(big.Int).Exp(v, o.priv.D, o.priv.N)
	o.current = State{
		Version: o.current.Version + 1,
		Value:   padToModulus(next, o.priv.N),
	}
	return o.Current()
}

// Public returns the public derivation key members use to unwind.
func (o *Owner) Public() Public {
	return Public{
		N: new(big.Int).Set(o.priv.N),
		E: big.NewInt(int64(o.priv.E)),
	}
}

// Public is the public derivation key.
type Public struct {
	N *big.Int
	E *big.Int
}

// Validate checks the key is plausible.
func (p Public) Validate() error {
	if p.N == nil || p.E == nil || p.N.Sign() <= 0 || p.E.Sign() <= 0 {
		return errors.New("keyreg: invalid public derivation key")
	}
	return nil
}

// Marshal encodes the public derivation key.
func (p Public) Marshal() []byte {
	w := binenc.NewWriter(16)
	w.WriteBytes(p.N.Bytes())
	w.WriteBytes(p.E.Bytes())
	return w.Bytes()
}

// UnmarshalPublic decodes a public derivation key.
func UnmarshalPublic(b []byte) (Public, error) {
	r := binenc.NewReader(b)
	nb, err := r.ReadBytes()
	if err != nil {
		return Public{}, fmt.Errorf("keyreg: unmarshal public: %w", err)
	}
	eb, err := r.ReadBytes()
	if err != nil {
		return Public{}, fmt.Errorf("keyreg: unmarshal public: %w", err)
	}
	p := Public{N: new(big.Int).SetBytes(nb), E: new(big.Int).SetBytes(eb)}
	return p, p.Validate()
}

// Unwind derives the state at the target version from a newer (or equal)
// state using only the public derivation key. It returns ErrFutureState
// if target exceeds the supplied state's version.
func Unwind(p Public, from State, target uint64) (State, error) {
	if err := p.Validate(); err != nil {
		return State{}, err
	}
	if target == 0 {
		return State{}, fmt.Errorf("%w: version 0", ErrBadState)
	}
	if target > from.Version {
		return State{}, fmt.Errorf("%w: have version %d, want %d", ErrFutureState, from.Version, target)
	}
	v := new(big.Int).SetBytes(from.Value)
	for ver := from.Version; ver > target; ver-- {
		v.Exp(v, p.E, p.N)
	}
	return State{Version: target, Value: padToModulus(v, p.N)}, nil
}

func padToModulus(v, n *big.Int) []byte {
	out := make([]byte, (n.BitLen()+7)/8)
	v.FillBytes(out)
	return out
}
