package keyreg

import (
	"crypto/x509"
	"errors"
	"fmt"

	"repro/internal/binenc"
)

// Marshal serializes the owner — the RSA private derivation key plus the
// current key state — so a user can persist it between sessions. Treat
// the output as highly sensitive.
func (o *Owner) Marshal() []byte {
	keyDER := x509.MarshalPKCS1PrivateKey(o.priv)
	w := binenc.NewWriter(len(keyDER) + len(o.current.Value) + 32)
	w.WriteBytes(keyDER)
	w.Uint64(o.current.Version)
	w.WriteBytes(o.current.Value)
	return w.Bytes()
}

// UnmarshalOwner restores an owner persisted with Marshal.
func UnmarshalOwner(b []byte) (*Owner, error) {
	r := binenc.NewReader(b)
	keyDER, err := r.ReadBytes()
	if err != nil {
		return nil, fmt.Errorf("keyreg: unmarshal owner: %w", err)
	}
	priv, err := x509.ParsePKCS1PrivateKey(keyDER)
	if err != nil {
		return nil, fmt.Errorf("keyreg: unmarshal owner key: %w", err)
	}
	version, err := r.Uint64()
	if err != nil {
		return nil, fmt.Errorf("keyreg: unmarshal owner: %w", err)
	}
	value, err := r.ReadBytesCopy()
	if err != nil {
		return nil, fmt.Errorf("keyreg: unmarshal owner: %w", err)
	}
	if !r.Done() {
		return nil, errors.New("keyreg: unmarshal owner: trailing bytes")
	}
	if version == 0 || len(value) == 0 {
		return nil, ErrBadState
	}
	return &Owner{priv: priv, current: State{Version: version, Value: value}}, nil
}
