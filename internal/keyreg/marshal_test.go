package keyreg

import (
	"bytes"
	"testing"
)

func TestOwnerMarshalRoundTrip(t *testing.T) {
	o1 := newOwner(t)
	o1.Wind()
	o2, err := UnmarshalOwner(o1.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if o2.Current().Version != o1.Current().Version {
		t.Fatalf("versions differ: %d vs %d", o2.Current().Version, o1.Current().Version)
	}
	if !bytes.Equal(o2.Current().Value, o1.Current().Value) {
		t.Fatal("state values differ")
	}
	// Winding the restored owner must agree with winding the original.
	s1 := o1.Wind()
	s2 := o2.Wind()
	if !bytes.Equal(s1.Value, s2.Value) || s1.Version != s2.Version {
		t.Fatal("restored owner diverged on wind")
	}
	// Public keys must match.
	p1, p2 := o1.Public(), o2.Public()
	if p1.N.Cmp(p2.N) != 0 || p1.E.Cmp(p2.E) != 0 {
		t.Fatal("public derivation keys differ")
	}
}

func TestUnmarshalOwnerErrors(t *testing.T) {
	o := cachedOwner(t)
	valid := o.Marshal()
	tests := [][]byte{
		nil,
		{0x01, 0x02},
		valid[:len(valid)-3],
		append(append([]byte(nil), valid...), 0xFF),
	}
	for i, give := range tests {
		if _, err := UnmarshalOwner(give); err == nil {
			t.Fatalf("case %d: expected error", i)
		}
	}
}
