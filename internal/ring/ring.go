// Package ring implements a consistent-hash ring over the fingerprint
// space: the placement function that decides which storage shard owns a
// chunk. Each member contributes VirtualNodes points hashed onto a
// uint64 circle; a fingerprint is owned by the first point at or after
// its position, wrapping at the top.
//
// Properties the rest of the system builds on:
//
//   - total and deterministic: every fingerprint has exactly one owner
//     for a fixed member set, seed, and virtual-node count, computable
//     by any client without coordination;
//   - order-insensitive: points are hashed from member addresses, not
//     slice indices, so two clients configured with the same shards in
//     different order place every chunk identically;
//   - stable under growth: adding a member moves only the keys that
//     land on its new points (~1/N of the space), which is what makes
//     live rebalancing feasible in a later change — Successors exposes
//     the clockwise ownership order a migration plan needs.
//
// The ring is immutable after construction and safe for concurrent use.
package ring

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"repro/internal/fingerprint"
)

// DefaultVirtualNodes balances construction cost (members × vnodes
// hashes, once) against placement uniformity: 512 points per member
// keeps ownership within a few percent of fair for small clusters.
const DefaultVirtualNodes = 512

// ErrNoMembers is returned when constructing a ring with no members.
var ErrNoMembers = errors.New("ring: no members")

// point is one virtual node: a position on the circle and the member it
// routes to.
type point struct {
	pos    uint64
	member int
}

// Ring is an immutable consistent-hash ring.
type Ring struct {
	members []string
	points  []point
	vnodes  int
	seed    uint64
}

// Option configures ring construction.
type Option func(*Ring)

// WithVirtualNodes sets the number of points each member contributes
// (default DefaultVirtualNodes). Higher is more uniform; construction
// and memory grow linearly.
func WithVirtualNodes(n int) Option {
	return func(r *Ring) {
		if n > 0 {
			r.vnodes = n
		}
	}
}

// WithSeed keys the point-hash function. Rings built with different
// seeds place chunks differently; every client of one cluster must use
// the same seed (the default zero seed is fine and canonical).
func WithSeed(seed uint64) Option {
	return func(r *Ring) { r.seed = seed }
}

// New builds a ring over the given members (shard addresses). Members
// must be non-empty and unique; their order does not affect placement.
func New(members []string, opts ...Option) (*Ring, error) {
	if len(members) == 0 {
		return nil, ErrNoMembers
	}
	r := &Ring{
		members: append([]string(nil), members...),
		vnodes:  DefaultVirtualNodes,
	}
	for _, opt := range opts {
		opt(r)
	}
	seen := make(map[string]bool, len(members))
	for _, m := range members {
		if m == "" {
			return nil, errors.New("ring: empty member address")
		}
		if seen[m] {
			return nil, fmt.Errorf("ring: duplicate member %q", m)
		}
		seen[m] = true
	}

	r.points = make([]point, 0, len(members)*r.vnodes)
	var buf [16]byte
	binary.BigEndian.PutUint64(buf[:8], r.seed)
	for mi, m := range members {
		for v := 0; v < r.vnodes; v++ {
			h := sha256.New()
			binary.BigEndian.PutUint64(buf[8:], uint64(v))
			h.Write(buf[:])
			// Length-prefix the address so (addr, vnode) encodings never
			// collide across members.
			var lenBuf [4]byte
			binary.BigEndian.PutUint32(lenBuf[:], uint32(len(m)))
			h.Write(lenBuf[:])
			h.Write([]byte(m))
			sum := h.Sum(nil)
			r.points = append(r.points, point{
				pos:    binary.BigEndian.Uint64(sum[:8]),
				member: mi,
			})
		}
	}
	// Ties (astronomically unlikely 64-bit collisions) break on member
	// address, not slice index, so placement stays order-insensitive.
	sort.Slice(r.points, func(i, j int) bool {
		a, b := r.points[i], r.points[j]
		if a.pos != b.pos {
			return a.pos < b.pos
		}
		return r.members[a.member] < r.members[b.member]
	})
	return r, nil
}

// N returns the member count.
func (r *Ring) N() int { return len(r.members) }

// Members returns the member addresses in construction order.
func (r *Ring) Members() []string {
	return append([]string(nil), r.members...)
}

// VirtualNodes returns the per-member point count.
func (r *Ring) VirtualNodes() int { return r.vnodes }

// locate returns the index (into members) owning a circle position: the
// first point at or after pos, wrapping to the first point.
func (r *Ring) locate(pos uint64) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].pos >= pos })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].member
}

// Owner returns the member index owning a chunk fingerprint. The
// fingerprint's position is its leading 8 bytes — SHA-256 output is
// uniform, so no re-hash is needed.
func (r *Ring) Owner(fp fingerprint.Fingerprint) int {
	return r.locate(binary.BigEndian.Uint64(fp[:8]))
}

// OwnerKey returns the member index owning an arbitrary key (the
// file-plane router hashes object names through this). The key is
// SHA-256-hashed onto the circle first.
func (r *Ring) OwnerKey(key []byte) int {
	sum := sha256.Sum256(key)
	return r.locate(binary.BigEndian.Uint64(sum[:8]))
}

// Successors returns up to n distinct member indices in clockwise
// ownership order starting at fp's owner. Index 0 is the owner; the
// rest are the members a rebalance or replication plan would spill to.
func (r *Ring) Successors(fp fingerprint.Fingerprint, n int) []int {
	if n <= 0 {
		return nil
	}
	if n > len(r.members) {
		n = len(r.members)
	}
	pos := binary.BigEndian.Uint64(fp[:8])
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].pos >= pos })
	out := make([]int, 0, n)
	seen := make(map[int]bool, n)
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		m := r.points[(start+i)%len(r.points)].member
		if !seen[m] {
			seen[m] = true
			out = append(out, m)
		}
	}
	return out
}
