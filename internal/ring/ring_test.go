package ring

import (
	"math/rand"
	"testing"

	"repro/internal/fingerprint"
)

func randomFPs(n int, seed int64) []fingerprint.Fingerprint {
	rng := rand.New(rand.NewSource(seed))
	fps := make([]fingerprint.Fingerprint, n)
	for i := range fps {
		var b [64]byte
		rng.Read(b[:])
		fps[i] = fingerprint.New(b[:])
	}
	return fps
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Fatal("want error for empty member list")
	}
	if _, err := New([]string{"a", "a"}); err == nil {
		t.Fatal("want error for duplicate members")
	}
	if _, err := New([]string{"a", ""}); err == nil {
		t.Fatal("want error for empty member address")
	}
}

// A 1-member ring must be the identity placement: every fingerprint and
// every key routes to member 0, exactly like the pre-sharding code
// paths that assumed one server.
func TestSingleMemberDegenerates(t *testing.T) {
	r, err := New([]string{"only:1"})
	if err != nil {
		t.Fatal(err)
	}
	for _, fp := range randomFPs(1000, 1) {
		if got := r.Owner(fp); got != 0 {
			t.Fatalf("Owner(%x) = %d, want 0", fp[:4], got)
		}
	}
	for _, key := range []string{"", "a", "path/to/file", "recipes/x"} {
		if got := r.OwnerKey([]byte(key)); got != 0 {
			t.Fatalf("OwnerKey(%q) = %d, want 0", key, got)
		}
	}
}

// Ownership across 4 shards must be uniform within ±10% of fair for
// 100k random fingerprints (the ISSUE's placement-quality bound).
func TestOwnershipUniformity(t *testing.T) {
	members := []string{"s0:1", "s1:1", "s2:1", "s3:1"}
	r, err := New(members)
	if err != nil {
		t.Fatal(err)
	}
	const n = 100_000
	counts := make([]int, len(members))
	for _, fp := range randomFPs(n, 42) {
		counts[r.Owner(fp)]++
	}
	fair := float64(n) / float64(len(members))
	for i, c := range counts {
		dev := (float64(c) - fair) / fair
		if dev < -0.10 || dev > 0.10 {
			t.Errorf("shard %d owns %d fingerprints (%.1f%% off fair %0.f)", i, c, dev*100, fair)
		}
	}
	t.Logf("ownership: %v (fair %.0f)", counts, fair)
}

// Rebuilding the ring with the same members must reproduce every
// placement exactly — clients construct their rings independently, so
// any instability would scatter a file's chunks across shards.
func TestReconstructionStability(t *testing.T) {
	members := []string{"s0:1", "s1:1", "s2:1", "s3:1"}
	a, err := New(members)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(append([]string(nil), members...))
	if err != nil {
		t.Fatal(err)
	}
	for _, fp := range randomFPs(10_000, 7) {
		if a.Owner(fp) != b.Owner(fp) {
			t.Fatalf("Owner(%x) differs across identical reconstructions", fp[:4])
		}
	}
}

// Placement must not depend on the order the member list is written in:
// two clients of the same cluster may list the shards differently.
func TestOrderInsensitivePlacement(t *testing.T) {
	fwd := []string{"s0:1", "s1:1", "s2:1", "s3:1"}
	rev := []string{"s3:1", "s2:1", "s1:1", "s0:1"}
	a, err := New(fwd)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(rev)
	if err != nil {
		t.Fatal(err)
	}
	for _, fp := range randomFPs(10_000, 9) {
		if fwd[a.Owner(fp)] != rev[b.Owner(fp)] {
			t.Fatalf("owner address for %x depends on member order", fp[:4])
		}
	}
	for _, key := range []string{"x", "some/file", "another"} {
		if fwd[a.OwnerKey([]byte(key))] != rev[b.OwnerKey([]byte(key))] {
			t.Fatalf("OwnerKey(%q) depends on member order", key)
		}
	}
}

// Different seeds must produce different placements (the seed actually
// keys the hash), while the same seed reproduces them.
func TestSeededPlacement(t *testing.T) {
	members := []string{"s0:1", "s1:1", "s2:1", "s3:1"}
	a, _ := New(members, WithSeed(1))
	b, _ := New(members, WithSeed(1))
	c, _ := New(members, WithSeed(2))
	diff := 0
	for _, fp := range randomFPs(1000, 11) {
		if a.Owner(fp) != b.Owner(fp) {
			t.Fatal("same seed must place identically")
		}
		if a.Owner(fp) != c.Owner(fp) {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("different seeds produced identical placement for 1000 fingerprints")
	}
}

// Adding a member must move only part of the space: keys that stay must
// keep their owner (the consistent-hashing property live rebalancing
// will rely on).
func TestGrowthMovesBoundedKeys(t *testing.T) {
	small, err := New([]string{"s0:1", "s1:1", "s2:1"})
	if err != nil {
		t.Fatal(err)
	}
	big, err := New([]string{"s0:1", "s1:1", "s2:1", "s3:1"})
	if err != nil {
		t.Fatal(err)
	}
	const n = 20_000
	moved := 0
	for _, fp := range randomFPs(n, 13) {
		was, now := small.Owner(fp), big.Owner(fp)
		if was != now {
			if now != 3 {
				t.Fatalf("fingerprint moved between surviving members %d -> %d", was, now)
			}
			moved++
		}
	}
	// The new member should own ~1/4 of the space; far more than half
	// moving means the hash is not consistent.
	if moved == 0 || moved > n/2 {
		t.Fatalf("adding a member moved %d/%d keys, want roughly %d", moved, n, n/4)
	}
	t.Logf("growth 3->4 members moved %d/%d keys", moved, n)
}

func TestSuccessors(t *testing.T) {
	members := []string{"s0:1", "s1:1", "s2:1", "s3:1"}
	r, err := New(members)
	if err != nil {
		t.Fatal(err)
	}
	for _, fp := range randomFPs(100, 17) {
		succ := r.Successors(fp, len(members))
		if len(succ) != len(members) {
			t.Fatalf("Successors returned %d members, want %d", len(succ), len(members))
		}
		if succ[0] != r.Owner(fp) {
			t.Fatalf("Successors[0] = %d, Owner = %d", succ[0], r.Owner(fp))
		}
		seen := make(map[int]bool)
		for _, m := range succ {
			if seen[m] {
				t.Fatalf("duplicate member %d in successors", m)
			}
			seen[m] = true
		}
	}
	if got := r.Successors(randomFPs(1, 1)[0], 0); got != nil {
		t.Fatalf("Successors(_, 0) = %v, want nil", got)
	}
}

// Asking for more replicas than the ring has members must clamp to the
// membership, not pad or duplicate: a replication plan over a 3-node
// ring with replica factor 5 simply uses all 3 nodes.
func TestSuccessorsFewerMembersThanReplicas(t *testing.T) {
	members := []string{"s0:1", "s1:1", "s2:1"}
	r, err := New(members)
	if err != nil {
		t.Fatal(err)
	}
	for _, fp := range randomFPs(50, 29) {
		succ := r.Successors(fp, len(members)+2)
		if len(succ) != len(members) {
			t.Fatalf("Successors(n=%d) returned %d members, want all %d",
				len(members)+2, len(succ), len(members))
		}
		seen := make(map[int]bool)
		for _, m := range succ {
			if m < 0 || m >= len(members) {
				t.Fatalf("successor index %d out of range", m)
			}
			if seen[m] {
				t.Fatalf("duplicate member %d in clamped successors", m)
			}
			seen[m] = true
		}
	}
}

// A single-node ring has exactly one successor chain: [0], regardless
// of the requested depth.
func TestSuccessorsSingleNode(t *testing.T) {
	r, err := New([]string{"only:1"})
	if err != nil {
		t.Fatal(err)
	}
	for _, fp := range randomFPs(20, 31) {
		for _, n := range []int{1, 2, 8} {
			succ := r.Successors(fp, n)
			if len(succ) != 1 || succ[0] != 0 {
				t.Fatalf("Successors(n=%d) = %v, want [0]", n, succ)
			}
		}
	}
}

// Removing a fingerprint's owner must promote its first surviving
// successor to owner: the property a replica-spill plan relies on when
// a shard goes away. Indices differ between the two rings, so the
// comparison goes through member addresses.
func TestSuccessorsOwnerRemoval(t *testing.T) {
	members := []string{"s0:1", "s1:1", "s2:1", "s3:1", "s4:1"}
	r, err := New(members)
	if err != nil {
		t.Fatal(err)
	}
	for _, fp := range randomFPs(100, 37) {
		succ := r.Successors(fp, len(members))
		ownerAddr := members[succ[0]]
		heirAddr := members[succ[1]]

		var survivors []string
		for _, m := range members {
			if m != ownerAddr {
				survivors = append(survivors, m)
			}
		}
		r2, err := New(survivors)
		if err != nil {
			t.Fatal(err)
		}
		if got := survivors[r2.Owner(fp)]; got != heirAddr {
			t.Fatalf("after removing owner %s, new owner = %s, want old first successor %s",
				ownerAddr, got, heirAddr)
		}
	}
}
