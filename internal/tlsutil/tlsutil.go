// Package tlsutil generates the self-signed TLS material REED uses to
// secure the client–key-manager channel.
//
// The paper's threat model assumes this channel is encrypted and
// authenticated "(e.g., using SSL/TLS)" so that eavesdroppers cannot
// observe blinded fingerprints or returned key material in transit. A
// deployment pins the key manager's certificate on every client.
package tlsutil

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/tls"
	"crypto/x509"
	"crypto/x509/pkix"
	"encoding/pem"
	"fmt"
	"math/big"
	"net"
	"time"
)

// Identity is a generated server certificate plus the client-side
// verification material.
type Identity struct {
	// ServerConfig is ready for tls.NewListener / tls.Server.
	ServerConfig *tls.Config
	// ClientConfig verifies exactly this server (the certificate is
	// pinned via a dedicated root pool).
	ClientConfig *tls.Config
	// CertPEM is the PEM-encoded certificate, for distribution to
	// clients on other machines.
	CertPEM []byte
}

// NewIdentity generates a fresh ECDSA P-256 self-signed certificate for
// the given hostnames/IPs (default: loopback) valid for validity
// (default: one year).
func NewIdentity(hosts []string, validity time.Duration) (*Identity, error) {
	if len(hosts) == 0 {
		hosts = []string{"127.0.0.1", "::1", "localhost"}
	}
	if validity <= 0 {
		validity = 365 * 24 * time.Hour
	}

	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("tlsutil: generate key: %w", err)
	}
	serial, err := rand.Int(rand.Reader, new(big.Int).Lsh(big.NewInt(1), 128))
	if err != nil {
		return nil, fmt.Errorf("tlsutil: serial: %w", err)
	}

	template := x509.Certificate{
		SerialNumber:          serial,
		Subject:               pkix.Name{CommonName: "reed-keymanager"},
		NotBefore:             time.Now().Add(-time.Hour),
		NotAfter:              time.Now().Add(validity),
		KeyUsage:              x509.KeyUsageDigitalSignature | x509.KeyUsageCertSign,
		ExtKeyUsage:           []x509.ExtKeyUsage{x509.ExtKeyUsageServerAuth},
		BasicConstraintsValid: true,
		IsCA:                  true,
	}
	for _, h := range hosts {
		if ip := net.ParseIP(h); ip != nil {
			template.IPAddresses = append(template.IPAddresses, ip)
		} else {
			template.DNSNames = append(template.DNSNames, h)
		}
	}

	der, err := x509.CreateCertificate(rand.Reader, &template, &template, &key.PublicKey, key)
	if err != nil {
		return nil, fmt.Errorf("tlsutil: create certificate: %w", err)
	}
	certPEM := pem.EncodeToMemory(&pem.Block{Type: "CERTIFICATE", Bytes: der})
	keyDER, err := x509.MarshalECPrivateKey(key)
	if err != nil {
		return nil, fmt.Errorf("tlsutil: marshal key: %w", err)
	}
	keyPEM := pem.EncodeToMemory(&pem.Block{Type: "EC PRIVATE KEY", Bytes: keyDER})

	cert, err := tls.X509KeyPair(certPEM, keyPEM)
	if err != nil {
		return nil, fmt.Errorf("tlsutil: key pair: %w", err)
	}

	clientCfg, err := ClientConfig(certPEM)
	if err != nil {
		return nil, err
	}
	return &Identity{
		ServerConfig: &tls.Config{
			Certificates: []tls.Certificate{cert},
			MinVersion:   tls.VersionTLS12,
		},
		ClientConfig: clientCfg,
		CertPEM:      certPEM,
	}, nil
}

// ClientConfig builds a tls.Config that trusts exactly the given
// PEM-encoded certificate (certificate pinning for clients on other
// machines).
func ClientConfig(certPEM []byte) (*tls.Config, error) {
	pool := x509.NewCertPool()
	if !pool.AppendCertsFromPEM(certPEM) {
		return nil, fmt.Errorf("tlsutil: no certificate in PEM input")
	}
	return &tls.Config{
		RootCAs:    pool,
		MinVersion: tls.VersionTLS12,
	}, nil
}
