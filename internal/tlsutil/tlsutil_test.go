package tlsutil

import (
	"crypto/tls"
	"io"
	"net"
	"testing"
	"time"
)

func TestIdentityHandshake(t *testing.T) {
	id, err := NewIdentity(nil, 0)
	if err != nil {
		t.Fatal(err)
	}

	ln, err := tls.Listen("tcp", "127.0.0.1:0", id.ServerConfig)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	done := make(chan error, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			done <- err
			return
		}
		defer conn.Close()
		buf := make([]byte, 5)
		if _, err := io.ReadFull(conn, buf); err != nil {
			done <- err
			return
		}
		_, err = conn.Write(buf)
		done <- err
	}()

	host, _, err := net.SplitHostPort(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	cfg := id.ClientConfig.Clone()
	cfg.ServerName = host
	conn, err := tls.Dial("tcp", ln.Addr().String(), cfg)
	if err != nil {
		t.Fatalf("TLS dial: %v", err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 5)
	if _, err := io.ReadFull(conn, buf); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if string(buf) != "hello" {
		t.Fatalf("echo = %q", buf)
	}
}

func TestUntrustedClientRejected(t *testing.T) {
	// A client pinning a different certificate must fail the
	// handshake.
	idA, err := NewIdentity(nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	idB, err := NewIdentity(nil, 0)
	if err != nil {
		t.Fatal(err)
	}

	ln, err := tls.Listen("tcp", "127.0.0.1:0", idA.ServerConfig)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			// Drive the handshake so the client observes the failure.
			go func() {
				if tc, ok := conn.(*tls.Conn); ok {
					_ = tc.Handshake()
				}
				conn.Close()
			}()
		}
	}()

	host, _, _ := net.SplitHostPort(ln.Addr().String())
	cfg := idB.ClientConfig.Clone()
	cfg.ServerName = host
	dialer := &net.Dialer{Timeout: 2 * time.Second}
	conn, err := tls.DialWithDialer(dialer, "tcp", ln.Addr().String(), cfg)
	if err == nil {
		conn.Close()
		t.Fatal("handshake with unpinned certificate succeeded")
	}
}

func TestClientConfigRejectsGarbage(t *testing.T) {
	if _, err := ClientConfig([]byte("not pem")); err == nil {
		t.Fatal("garbage PEM accepted")
	}
}

func TestIdentityHosts(t *testing.T) {
	id, err := NewIdentity([]string{"10.1.2.3", "km.internal"}, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if len(id.CertPEM) == 0 {
		t.Fatal("empty certificate PEM")
	}
}
