// Package retry implements capped exponential backoff with full jitter
// for transient network faults: dropped connections, flapping servers,
// mid-stream resets.
//
// The policy follows the AWS "full jitter" scheme: the nth retry sleeps
// a uniformly random duration in [0, min(MaxDelay, InitialDelay·2ⁿ)],
// which decorrelates retry storms from many clients hitting the same
// recovering server. Sleeps are context-aware, so a cancelled operation
// never waits out its backoff.
//
// Two mechanisms bound retry amplification:
//
//   - Policy.MaxAttempts caps attempts per operation;
//   - an optional shared Budget caps retries per unit time across all
//     operations on one client, so a hard-down server costs each caller
//     at most its budget share instead of attempts × call sites.
//
// Errors wrapped with Permanent are never retried: they mark
// application-level failures (a remote error response, a non-idempotent
// call whose connection died) as distinct from transport faults.
package retry

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"time"
)

// Defaults applied by Policy.withDefaults for zero fields.
const (
	DefaultInitialDelay = 10 * time.Millisecond
	DefaultMaxDelay     = 500 * time.Millisecond
	DefaultMaxAttempts  = 4
)

// ErrBudgetExhausted is wrapped into the returned error when a retry was
// warranted but the shared budget had no tokens left.
var ErrBudgetExhausted = errors.New("retry: budget exhausted")

// Policy configures one retry loop. The zero value is usable: it
// retries up to DefaultMaxAttempts total attempts with full-jitter
// backoff between DefaultInitialDelay and DefaultMaxDelay.
type Policy struct {
	// InitialDelay is the backoff ceiling before the first retry; each
	// further retry doubles the ceiling up to MaxDelay.
	InitialDelay time.Duration
	// MaxDelay caps the backoff ceiling.
	MaxDelay time.Duration
	// MaxAttempts is the total number of attempts including the first.
	// Zero means DefaultMaxAttempts; 1 disables retries; negative is
	// treated as 1.
	MaxAttempts int
	// Budget, when non-nil, is consulted before every retry (never the
	// first attempt); retries beyond the budget fail with the last error
	// wrapped alongside ErrBudgetExhausted.
	Budget *Budget
	// Seed, when non-zero, makes the jitter sequence deterministic
	// (chaos tests pin it so failures replay exactly).
	Seed int64
	// OnRetry, when set, is called before each backoff sleep with the
	// 1-based number of the attempt that just failed, its error, and
	// the chosen delay. Callers use it to count retries into stats.
	OnRetry func(attempt int, err error, delay time.Duration)
}

func (p Policy) withDefaults() Policy {
	if p.InitialDelay <= 0 {
		p.InitialDelay = DefaultInitialDelay
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = DefaultMaxDelay
	}
	if p.MaxAttempts == 0 {
		p.MaxAttempts = DefaultMaxAttempts
	}
	if p.MaxAttempts < 1 {
		p.MaxAttempts = 1
	}
	return p
}

// permanentError marks an error that must not be retried.
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

// Permanent wraps err so Do stops retrying and returns the original
// error. A nil err returns nil.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanentError{err: err}
}

// IsPermanent reports whether err (or an error it wraps) was marked with
// Permanent.
func IsPermanent(err error) bool {
	var pe *permanentError
	return errors.As(err, &pe)
}

// Do runs op under the policy: it retries transient failures with
// full-jitter backoff until op succeeds, returns a Permanent error, the
// context is cancelled, the attempt cap is reached, or the budget runs
// dry. The returned error is op's last error (unwrapped from Permanent),
// possibly annotated with ErrBudgetExhausted.
func Do(ctx context.Context, p Policy, op func(ctx context.Context) error) error {
	p = p.withDefaults()
	var rng *rand.Rand
	if p.Seed != 0 {
		rng = rand.New(rand.NewSource(p.Seed))
	}

	var lastErr error
	for attempt := 1; ; attempt++ {
		if err := ctx.Err(); err != nil {
			if lastErr != nil {
				return lastErr
			}
			return err
		}
		err := op(ctx)
		if err == nil {
			return nil
		}
		var pe *permanentError
		if errors.As(err, &pe) {
			return pe.err
		}
		lastErr = err
		if attempt >= p.MaxAttempts {
			return lastErr
		}
		if p.Budget != nil && !p.Budget.Take() {
			return errors.Join(ErrBudgetExhausted, lastErr)
		}
		delay := jitter(rng, backoffCeiling(p, attempt))
		if p.OnRetry != nil {
			p.OnRetry(attempt, err, delay)
		}
		if !sleep(ctx, delay) {
			return lastErr
		}
	}
}

// backoffCeiling returns min(MaxDelay, InitialDelay·2^(attempt-1)).
func backoffCeiling(p Policy, attempt int) time.Duration {
	d := p.InitialDelay
	for i := 1; i < attempt; i++ {
		d *= 2
		if d >= p.MaxDelay {
			return p.MaxDelay
		}
	}
	if d > p.MaxDelay {
		return p.MaxDelay
	}
	return d
}

// jitter draws uniformly from [0, ceiling] ("full jitter").
func jitter(rng *rand.Rand, ceiling time.Duration) time.Duration {
	if ceiling <= 0 {
		return 0
	}
	if rng != nil {
		return time.Duration(rng.Int63n(int64(ceiling) + 1))
	}
	return time.Duration(rand.Int63n(int64(ceiling) + 1))
}

// sleep waits d or until ctx is done, reporting whether the full delay
// elapsed.
func sleep(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// Budget is a token bucket shared across retry loops: each retry spends
// one token, and tokens refill at a fixed rate up to the burst cap. It
// bounds the total retry rate of a client no matter how many concurrent
// operations hit a down server. The zero value is invalid; use
// NewBudget.
type Budget struct {
	mu     sync.Mutex
	tokens float64
	burst  float64
	rate   float64 // tokens per second
	last   time.Time
}

// NewBudget returns a budget holding burst tokens that refills at rate
// tokens per second. Non-positive values are clamped to 1.
func NewBudget(burst, rate float64) *Budget {
	if burst < 1 {
		burst = 1
	}
	if rate <= 0 {
		rate = 1
	}
	return &Budget{tokens: burst, burst: burst, rate: rate, last: time.Now()}
}

// Take spends one retry token, reporting false when the budget is dry.
func (b *Budget) Take() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	now := time.Now()
	b.tokens += now.Sub(b.last).Seconds() * b.rate
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
	b.last = now
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}
