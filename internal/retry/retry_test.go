package retry

import (
	"context"
	"errors"
	"testing"
	"time"
)

// fastPolicy keeps test backoffs in the microsecond range.
func fastPolicy() Policy {
	return Policy{InitialDelay: time.Microsecond, MaxDelay: 10 * time.Microsecond, Seed: 1}
}

func TestDoSucceedsAfterTransientFailures(t *testing.T) {
	calls := 0
	err := Do(context.Background(), fastPolicy(), func(context.Context) error {
		calls++
		if calls < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Do returned %v", err)
	}
	if calls != 3 {
		t.Fatalf("op ran %d times, want 3", calls)
	}
}

func TestDoStopsAtMaxAttempts(t *testing.T) {
	calls := 0
	boom := errors.New("boom")
	p := fastPolicy()
	p.MaxAttempts = 3
	err := Do(context.Background(), p, func(context.Context) error {
		calls++
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if calls != 3 {
		t.Fatalf("op ran %d times, want 3", calls)
	}
}

func TestPermanentStopsImmediately(t *testing.T) {
	calls := 0
	boom := errors.New("fatal")
	err := Do(context.Background(), fastPolicy(), func(context.Context) error {
		calls++
		return Permanent(boom)
	})
	// The Permanent wrapper must be stripped so callers match the
	// original error.
	if !errors.Is(err, boom) || IsPermanent(err) {
		t.Fatalf("err = %v, want unwrapped boom", err)
	}
	if calls != 1 {
		t.Fatalf("op ran %d times, want 1", calls)
	}
}

func TestPermanentNil(t *testing.T) {
	if Permanent(nil) != nil {
		t.Fatal("Permanent(nil) != nil")
	}
}

func TestDoRespectsContextDuringBackoff(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	p := Policy{InitialDelay: time.Hour, MaxDelay: time.Hour, MaxAttempts: 5, Seed: 7}
	start := time.Now()
	errCh := make(chan error, 1)
	go func() {
		errCh <- Do(ctx, p, func(context.Context) error {
			calls++
			return errors.New("transient")
		})
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-errCh:
		if err == nil {
			t.Fatal("Do returned nil after cancellation")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Do did not return after cancellation")
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("Do blocked %v through its backoff sleep", elapsed)
	}
}

func TestDoCancelledBeforeFirstAttempt(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	calls := 0
	err := Do(ctx, fastPolicy(), func(context.Context) error {
		calls++
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if calls != 0 {
		t.Fatalf("op ran %d times on a dead context", calls)
	}
}

func TestBudgetExhaustion(t *testing.T) {
	// One token, negligible refill: the first retry spends it, the
	// second is denied.
	b := NewBudget(1, 0.000001)
	p := fastPolicy()
	p.MaxAttempts = 10
	p.Budget = b
	calls := 0
	err := Do(context.Background(), p, func(context.Context) error {
		calls++
		return errors.New("transient")
	})
	if !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("err = %v, want ErrBudgetExhausted", err)
	}
	if calls != 2 {
		t.Fatalf("op ran %d times, want 2 (first attempt + one budgeted retry)", calls)
	}
}

func TestBudgetRefills(t *testing.T) {
	b := NewBudget(1, 1000) // refills a token every millisecond
	if !b.Take() {
		t.Fatal("fresh budget denied a token")
	}
	deadline := time.Now().Add(5 * time.Second)
	for !b.Take() {
		if time.Now().After(deadline) {
			t.Fatal("budget never refilled")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestBackoffCeilingCapsAndSeededJitterDeterministic(t *testing.T) {
	p := Policy{InitialDelay: 10 * time.Millisecond, MaxDelay: 80 * time.Millisecond}.withDefaults()
	want := []time.Duration{
		10 * time.Millisecond, 20 * time.Millisecond, 40 * time.Millisecond,
		80 * time.Millisecond, 80 * time.Millisecond,
	}
	for i, w := range want {
		if got := backoffCeiling(p, i+1); got != w {
			t.Fatalf("ceiling(attempt %d) = %v, want %v", i+1, got, w)
		}
	}

	// Same seed, same observed delays.
	run := func() []time.Duration {
		var delays []time.Duration
		p := fastPolicy()
		p.MaxAttempts = 5
		p.OnRetry = func(_ int, _ error, d time.Duration) { delays = append(delays, d) }
		_ = Do(context.Background(), p, func(context.Context) error { return errors.New("x") })
		return delays
	}
	a, b := run(), run()
	if len(a) != 4 || len(b) != 4 {
		t.Fatalf("delay counts = %d, %d, want 4", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("seeded jitter diverged at retry %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestOnRetryReportsAttemptsAndErrors(t *testing.T) {
	var attempts []int
	p := fastPolicy()
	p.MaxAttempts = 3
	p.OnRetry = func(attempt int, err error, _ time.Duration) {
		if err == nil {
			t.Error("OnRetry called with nil error")
		}
		attempts = append(attempts, attempt)
	}
	_ = Do(context.Background(), p, func(context.Context) error { return errors.New("x") })
	if len(attempts) != 2 || attempts[0] != 1 || attempts[1] != 2 {
		t.Fatalf("OnRetry attempts = %v, want [1 2]", attempts)
	}
}
