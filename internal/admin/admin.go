// Package admin is the opt-in HTTP introspection plane for reed-server
// and reed-keymanager: /metrics (JSON or text table), /healthz, and the
// net/http/pprof handlers. It is a debugging surface, not a public API
// — bind it to localhost (the default in both binaries) or put it
// behind network controls; it has no authentication of its own.
package admin

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	"repro/internal/metrics"
)

// Server serves the introspection endpoints on its own listener so the
// admin plane shares nothing with the storage wire protocol and can be
// shut down independently.
type Server struct {
	ln   net.Listener
	http *http.Server
	done chan struct{}
}

// Handler returns the admin mux for a metrics source. snapshot is
// called per /metrics request; healthy gates /healthz (nil means always
// healthy).
func Handler(snapshot func() metrics.Snapshot, healthy func() error) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		s := snapshot()
		if r.URL.Query().Get("format") == "text" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			_, _ = w.Write([]byte(s.Text()))
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(s)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if healthy != nil {
			if err := healthy(); err != nil {
				http.Error(w, err.Error(), http.StatusServiceUnavailable)
				return
			}
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte("ok\n"))
	})
	// pprof registers on http.DefaultServeMux via init; wire the
	// handlers explicitly so this mux works without the default one.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Start listens on addr (e.g. "127.0.0.1:0") and serves the admin
// endpoints until Close. The serve loop runs in a goroutine; Start
// returns once the listener is bound so Addr is immediately usable.
func Start(addr string, snapshot func() metrics.Snapshot, healthy func() error) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{
		ln: ln,
		http: &http.Server{
			Handler:           Handler(snapshot, healthy),
			ReadHeaderTimeout: 5 * time.Second,
		},
		done: make(chan struct{}),
	}
	go func() {
		defer close(s.done)
		_ = s.http.Serve(ln)
	}()
	return s, nil
}

// Addr returns the bound address (useful with ":0").
func (s *Server) Addr() string {
	if s == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close stops the listener and waits for the serve loop to exit. Safe
// on a nil receiver so callers can unconditionally defer it.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	err := s.http.Close()
	<-s.done
	return err
}
