package admin

import (
	"encoding/json"
	"io"
	"net/http"
	"runtime"
	"testing"
	"time"

	"repro/internal/metrics"
)

func testRegistry() *metrics.Registry {
	r := metrics.NewRegistry()
	r.Counter("puts").Add(42)
	r.Gauge("conns").Set(3)
	r.Histogram("lat").Observe(5 * time.Millisecond)
	return r
}

func TestMetricsEndpointJSON(t *testing.T) {
	r := testRegistry()
	s, err := Start("127.0.0.1:0", r.Snapshot, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	resp, err := http.Get("http://" + s.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content-type = %q", ct)
	}
	var snap metrics.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if snap.Counters["puts"] != 42 {
		t.Fatalf("puts = %d, want 42", snap.Counters["puts"])
	}
	if snap.Histograms["lat"].Count != 1 {
		t.Fatalf("lat count = %d, want 1", snap.Histograms["lat"].Count)
	}
}

func TestMetricsEndpointText(t *testing.T) {
	r := testRegistry()
	s, err := Start("127.0.0.1:0", r.Snapshot, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	resp, err := http.Get("http://" + s.Addr() + "/metrics?format=text")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK || len(body) == 0 {
		t.Fatalf("status = %d, body %q", resp.StatusCode, body)
	}
}

func TestHealthz(t *testing.T) {
	r := testRegistry()
	fail := false
	healthy := func() error {
		if fail {
			return io.ErrClosedPipe
		}
		return nil
	}
	s, err := Start("127.0.0.1:0", r.Snapshot, healthy)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	resp, err := http.Get("http://" + s.Addr() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy status = %d, want 200", resp.StatusCode)
	}

	fail = true
	resp, err = http.Get("http://" + s.Addr() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("unhealthy status = %d, want 503", resp.StatusCode)
	}
}

func TestPprofIndex(t *testing.T) {
	r := testRegistry()
	s, err := Start("127.0.0.1:0", r.Snapshot, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	resp, err := http.Get("http://" + s.Addr() + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof status = %d, want 200", resp.StatusCode)
	}
}

// TestCloseStopsListener is the leak check: Close must tear down the
// listener and the serve goroutine, and further connections must fail.
func TestCloseStopsListener(t *testing.T) {
	before := runtime.NumGoroutine()
	r := testRegistry()
	s, err := Start("127.0.0.1:0", r.Snapshot, nil)
	if err != nil {
		t.Fatal(err)
	}
	addr := s.Addr()
	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	http.DefaultClient.CloseIdleConnections()

	if _, err := http.Get("http://" + addr + "/healthz"); err == nil {
		t.Fatal("request after Close must fail")
	}

	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before {
		buf := make([]byte, 1<<16)
		n2 := runtime.Stack(buf, true)
		t.Fatalf("goroutine leak after Close: %d before, %d after\n%s", before, n, buf[:n2])
	}

	// Double Close and nil Close must be safe.
	_ = s.Close()
	var nilS *Server
	if err := nilS.Close(); err != nil {
		t.Fatal("nil Close must be a no-op")
	}
}
