package chunker

import (
	"fmt"
	"io"
	"math/bits"
)

// windowSize is the length of the rolling-hash window in bytes. 48 bytes
// is the window size used by the Rabin chunkers in LBFS-style systems.
const windowSize = 48

// defaultPolynomial is an irreducible polynomial of degree 53 over GF(2),
// the same default used by several production deduplication systems.
const defaultPolynomial = 0x3DA3358B4DC173

// Rabin is a content-defined chunker using Rabin fingerprinting by random
// polynomials. Chunk boundaries are declared where the rolling hash over
// the trailing window matches a mask derived from the average chunk size,
// subject to the configured minimum and maximum sizes. Because boundaries
// depend only on local content, an insertion or deletion early in a stream
// re-aligns within a few chunks, preserving deduplication downstream.
type Rabin struct {
	r    io.Reader
	opts Options

	tables *rabinTables
	mask   uint64

	buf     []byte // read buffer
	bufLen  int    // valid bytes in buf
	bufOff  int    // consumed bytes in buf
	pending []byte // current chunk being accumulated
	eof     bool
}

// rabinTables holds the precomputed lookup tables for one polynomial.
type rabinTables struct {
	out   [256]uint64
	mod   [256]uint64
	shift uint // deg(poly) - 8
}

// NewRabin returns a variable-size chunker reading from r.
func NewRabin(r io.Reader, opts Options) (*Rabin, error) {
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		return nil, err
	}
	tables, err := buildTables(opts.Polynomial)
	if err != nil {
		return nil, err
	}
	return &Rabin{
		r:      r,
		opts:   opts,
		tables: tables,
		mask:   uint64(opts.AvgSize) - 1,
		buf:    make([]byte, 64*1024),
	}, nil
}

var _ Chunker = (*Rabin)(nil)

// Next returns the next chunk. It returns io.EOF once the stream is
// exhausted. The returned slice is only valid until the next call.
func (c *Rabin) Next() ([]byte, error) {
	c.pending = c.pending[:0]

	var (
		digest uint64
		window [windowSize]byte
		wpos   int
	)

	for {
		if c.bufOff == c.bufLen {
			if c.eof {
				if len(c.pending) == 0 {
					return nil, io.EOF
				}
				return c.pending, nil
			}
			n, err := c.r.Read(c.buf)
			c.bufLen, c.bufOff = n, 0
			if err == io.EOF {
				c.eof = true
				continue
			}
			if err != nil {
				return nil, fmt.Errorf("chunker: read: %w", err)
			}
			if n == 0 {
				continue
			}
		}

		b := c.buf[c.bufOff]
		c.bufOff++
		c.pending = append(c.pending, b)

		// Slide the window: remove the outgoing byte, append b.
		out := window[wpos]
		window[wpos] = b
		wpos++
		if wpos == windowSize {
			wpos = 0
		}
		digest ^= c.tables.out[out]
		digest = appendByte(digest, b, c.tables)

		n := len(c.pending)
		if n >= c.opts.MaxSize {
			return c.pending, nil
		}
		if n >= c.opts.MinSize && digest&c.mask == c.mask {
			return c.pending, nil
		}
	}
}

// appendByte feeds one byte into the rolling hash.
func appendByte(digest uint64, b byte, t *rabinTables) uint64 {
	index := digest >> t.shift
	digest <<= 8
	digest |= uint64(b)
	digest ^= t.mod[index&0xff]
	return digest
}

// buildTables precomputes the slide-out and mod-reduction tables for poly.
func buildTables(poly uint64) (*rabinTables, error) {
	d := polyDeg(poly)
	if d < 8 || d > 63 {
		return nil, fmt.Errorf("chunker: polynomial degree %d outside [8, 63]", d)
	}
	t := &rabinTables{shift: uint(d - 8)}

	// out[b] = hash of (b || 0^(windowSize-1)): XOR-ing it removes the
	// contribution of the byte leaving the window.
	for b := 0; b < 256; b++ {
		var h uint64
		h = appendByteSlow(h, byte(b), poly)
		for i := 0; i < windowSize-1; i++ {
			h = appendByteSlow(h, 0, poly)
		}
		t.out[b] = h
	}

	// mod[b] = (b(x)*x^d mod poly) | (b(x) << d): reduces the top byte
	// after an 8-bit shift in a single XOR.
	for b := 0; b < 256; b++ {
		t.mod[b] = polyMod(uint64(b)<<uint(d), poly) | uint64(b)<<uint(d)
	}
	return t, nil
}

// appendByteSlow feeds one byte using explicit polynomial arithmetic; used
// only for table construction.
func appendByteSlow(digest uint64, b byte, poly uint64) uint64 {
	for i := 7; i >= 0; i-- {
		digest <<= 1
		digest |= uint64(b>>uint(i)) & 1
		digest = polyMod(digest, poly)
	}
	return digest
}

// polyMod reduces p modulo q in GF(2)[x].
func polyMod(p, q uint64) uint64 {
	dq := polyDeg(q)
	for dp := polyDeg(p); dp >= dq; dp = polyDeg(p) {
		p ^= q << uint(dp-dq)
	}
	return p
}

// polyDeg returns the degree of p, or -1 for the zero polynomial.
func polyDeg(p uint64) int {
	return bits.Len64(p) - 1
}
