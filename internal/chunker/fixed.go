package chunker

import (
	"errors"
	"io"
)

// Fixed is a fixed-size chunker. Every chunk has exactly the configured
// size except possibly the final one.
type Fixed struct {
	r    io.Reader
	size int
	buf  []byte
	eof  bool
}

// NewFixed returns a fixed-size chunker reading from r.
func NewFixed(r io.Reader, size int) (*Fixed, error) {
	if size <= 0 {
		return nil, errors.New("chunker: fixed size must be positive")
	}
	return &Fixed{r: r, size: size, buf: make([]byte, size)}, nil
}

var _ Chunker = (*Fixed)(nil)

// Next returns the next chunk, or io.EOF after the final chunk.
func (c *Fixed) Next() ([]byte, error) {
	if c.eof {
		return nil, io.EOF
	}
	n, err := io.ReadFull(c.r, c.buf)
	switch {
	case err == io.EOF:
		c.eof = true
		return nil, io.EOF
	case err == io.ErrUnexpectedEOF:
		c.eof = true
		return c.buf[:n], nil
	case err != nil:
		return nil, err
	}
	return c.buf, nil
}
