// Package chunker divides a data stream into chunks for deduplication.
//
// Two schemes are provided, matching the REED prototype: fixed-size
// chunking and content-defined variable-size chunking based on Rabin
// fingerprinting by random polynomials. The variable-size chunker honors
// minimum, maximum, and average chunk size parameters; the paper's
// defaults are 2 KB minimum, 16 KB maximum, and an 8 KB average.
package chunker

import (
	"errors"
	"fmt"
	"io"
)

// Paper defaults (Section V-A).
const (
	DefaultMinSize = 2 * 1024
	DefaultMaxSize = 16 * 1024
	DefaultAvgSize = 8 * 1024
)

// Chunker produces successive chunks from an underlying stream. Next
// returns io.EOF after the final chunk has been returned. The returned
// slice is only valid until the following call to Next.
type Chunker interface {
	Next() ([]byte, error)
}

// Options configures a variable-size chunker.
type Options struct {
	// MinSize is the minimum chunk size in bytes. Defaults to 2 KB.
	MinSize int
	// MaxSize is the maximum chunk size in bytes. Defaults to 16 KB.
	MaxSize int
	// AvgSize is the target average chunk size in bytes; it must be a
	// power of two between MinSize and MaxSize. Defaults to 8 KB.
	AvgSize int
	// Polynomial is the irreducible polynomial over GF(2) used by the
	// Rabin rolling hash. Zero selects a well-known degree-53 default.
	Polynomial uint64
}

func (o Options) withDefaults() Options {
	if o.MinSize == 0 {
		o.MinSize = DefaultMinSize
	}
	if o.MaxSize == 0 {
		o.MaxSize = DefaultMaxSize
	}
	if o.AvgSize == 0 {
		o.AvgSize = DefaultAvgSize
	}
	if o.Polynomial == 0 {
		o.Polynomial = defaultPolynomial
	}
	return o
}

func (o Options) validate() error {
	if o.MinSize <= 0 || o.MaxSize <= 0 || o.AvgSize <= 0 {
		return errors.New("chunker: sizes must be positive")
	}
	if o.MinSize > o.MaxSize {
		return fmt.Errorf("chunker: min size %d exceeds max size %d", o.MinSize, o.MaxSize)
	}
	if o.AvgSize&(o.AvgSize-1) != 0 {
		return fmt.Errorf("chunker: avg size %d is not a power of two", o.AvgSize)
	}
	if o.AvgSize < o.MinSize || o.AvgSize > o.MaxSize {
		return fmt.Errorf("chunker: avg size %d outside [%d, %d]", o.AvgSize, o.MinSize, o.MaxSize)
	}
	if o.MinSize < windowSize {
		return fmt.Errorf("chunker: min size %d smaller than rolling window %d", o.MinSize, windowSize)
	}
	return nil
}

// Split is a convenience helper that chunks an in-memory buffer with the
// given options and returns the chunk boundaries as sub-slices of data.
func Split(data []byte, opts Options) ([][]byte, error) {
	c, err := NewRabin(newBytesReader(data), opts)
	if err != nil {
		return nil, err
	}
	var out [][]byte
	var off int
	for {
		chunk, err := c.Next()
		if errors.Is(err, io.EOF) {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		// Reference the original buffer instead of copying.
		out = append(out, data[off:off+len(chunk)])
		off += len(chunk)
	}
}

// SplitFixed divides data into fixed-size chunks; the final chunk may be
// shorter. size must be positive.
func SplitFixed(data []byte, size int) ([][]byte, error) {
	if size <= 0 {
		return nil, errors.New("chunker: fixed size must be positive")
	}
	var out [][]byte
	for off := 0; off < len(data); off += size {
		end := off + size
		if end > len(data) {
			end = len(data)
		}
		out = append(out, data[off:end])
	}
	return out, nil
}

// bytesReader is a minimal io.Reader over a byte slice that avoids pulling
// in bytes.Reader's extra state.
type bytesReader struct {
	data []byte
	off  int
}

func newBytesReader(data []byte) *bytesReader { return &bytesReader{data: data} }

func (r *bytesReader) Read(p []byte) (int, error) {
	if r.off >= len(r.data) {
		return 0, io.EOF
	}
	n := copy(p, r.data[r.off:])
	r.off += n
	return n, nil
}
