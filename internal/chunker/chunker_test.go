package chunker

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// randomData returns deterministic pseudo-random bytes for tests.
func randomData(t testing.TB, n int, seed int64) []byte {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	data := make([]byte, n)
	if _, err := rng.Read(data); err != nil {
		t.Fatalf("rand read: %v", err)
	}
	return data
}

func collect(t *testing.T, c Chunker) [][]byte {
	t.Helper()
	var chunks [][]byte
	for {
		chunk, err := c.Next()
		if errors.Is(err, io.EOF) {
			return chunks
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		chunks = append(chunks, append([]byte(nil), chunk...))
	}
}

func TestRabinCoversAllBytes(t *testing.T) {
	data := randomData(t, 1<<20, 1)
	c, err := NewRabin(bytes.NewReader(data), Options{})
	if err != nil {
		t.Fatal(err)
	}
	chunks := collect(t, c)
	got := bytes.Join(chunks, nil)
	if !bytes.Equal(got, data) {
		t.Fatal("concatenated chunks differ from input")
	}
}

func TestRabinRespectsSizeBounds(t *testing.T) {
	data := randomData(t, 1<<20, 2)
	opts := Options{MinSize: 2048, MaxSize: 16384, AvgSize: 8192}
	c, err := NewRabin(bytes.NewReader(data), opts)
	if err != nil {
		t.Fatal(err)
	}
	chunks := collect(t, c)
	for i, chunk := range chunks {
		if i < len(chunks)-1 && len(chunk) < opts.MinSize {
			t.Fatalf("chunk %d size %d below min %d", i, len(chunk), opts.MinSize)
		}
		if len(chunk) > opts.MaxSize {
			t.Fatalf("chunk %d size %d above max %d", i, len(chunk), opts.MaxSize)
		}
	}
}

func TestRabinAverageSizeApproximate(t *testing.T) {
	data := randomData(t, 8<<20, 3)
	c, err := NewRabin(bytes.NewReader(data), Options{})
	if err != nil {
		t.Fatal(err)
	}
	chunks := collect(t, c)
	avg := len(data) / len(chunks)
	// The expected average with min/max clamping sits near the target;
	// accept a generous band since it is a statistical property.
	if avg < DefaultAvgSize/2 || avg > DefaultAvgSize*2 {
		t.Fatalf("average chunk size %d too far from target %d", avg, DefaultAvgSize)
	}
}

func TestRabinDeterministic(t *testing.T) {
	data := randomData(t, 1<<19, 4)
	c1, err := NewRabin(bytes.NewReader(data), Options{})
	if err != nil {
		t.Fatal(err)
	}
	c2, err := NewRabin(bytes.NewReader(data), Options{})
	if err != nil {
		t.Fatal(err)
	}
	a, b := collect(t, c1), collect(t, c2)
	if len(a) != len(b) {
		t.Fatalf("chunk counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if !bytes.Equal(a[i], b[i]) {
			t.Fatalf("chunk %d differs", i)
		}
	}
}

// TestRabinShiftResilience verifies the content-defined property: after an
// insertion near the start, chunk boundaries re-align so that most chunks
// are shared with the original stream.
func TestRabinShiftResilience(t *testing.T) {
	data := randomData(t, 2<<20, 5)
	shifted := append([]byte{0xAB, 0xCD, 0xEF}, data...)

	chunksOf := func(d []byte) map[string]bool {
		c, err := NewRabin(bytes.NewReader(d), Options{})
		if err != nil {
			t.Fatal(err)
		}
		set := make(map[string]bool)
		for _, chunk := range collect(t, c) {
			set[string(chunk)] = true
		}
		return set
	}

	orig := chunksOf(data)
	shift := chunksOf(shifted)

	var shared int
	for chunk := range shift {
		if orig[chunk] {
			shared++
		}
	}
	if ratio := float64(shared) / float64(len(shift)); ratio < 0.9 {
		t.Fatalf("only %.1f%% of chunks shared after a 3-byte insertion; want >= 90%%", ratio*100)
	}
}

func TestRabinEmptyInput(t *testing.T) {
	c, err := NewRabin(bytes.NewReader(nil), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Next(); !errors.Is(err, io.EOF) {
		t.Fatalf("Next on empty input = %v, want io.EOF", err)
	}
}

func TestRabinShortInput(t *testing.T) {
	data := []byte("shorter than min size")
	c, err := NewRabin(bytes.NewReader(data), Options{})
	if err != nil {
		t.Fatal(err)
	}
	chunks := collect(t, c)
	if len(chunks) != 1 || !bytes.Equal(chunks[0], data) {
		t.Fatalf("short input should yield one chunk equal to the input")
	}
}

func TestRabinOptionValidation(t *testing.T) {
	tests := []struct {
		name string
		opts Options
	}{
		{name: "avg not power of two", opts: Options{MinSize: 2048, MaxSize: 16384, AvgSize: 5000}},
		{name: "min above max", opts: Options{MinSize: 32768, MaxSize: 16384, AvgSize: 8192}},
		{name: "avg below min", opts: Options{MinSize: 4096, MaxSize: 16384, AvgSize: 2048}},
		{name: "negative min", opts: Options{MinSize: -1, MaxSize: 16384, AvgSize: 8192}},
		{name: "min below window", opts: Options{MinSize: 16, MaxSize: 16384, AvgSize: 1024}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := NewRabin(bytes.NewReader(nil), tt.opts); err == nil {
				t.Fatal("NewRabin expected error, got nil")
			}
		})
	}
}

func TestSplitMatchesStreaming(t *testing.T) {
	data := randomData(t, 1<<19, 6)
	fromSplit, err := Split(data, Options{})
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewRabin(bytes.NewReader(data), Options{})
	if err != nil {
		t.Fatal(err)
	}
	streamed := collect(t, c)
	if len(fromSplit) != len(streamed) {
		t.Fatalf("Split produced %d chunks, streaming produced %d", len(fromSplit), len(streamed))
	}
	for i := range fromSplit {
		if !bytes.Equal(fromSplit[i], streamed[i]) {
			t.Fatalf("chunk %d differs between Split and streaming", i)
		}
	}
}

func TestFixedChunker(t *testing.T) {
	data := randomData(t, 10000, 7)
	c, err := NewFixed(bytes.NewReader(data), 4096)
	if err != nil {
		t.Fatal(err)
	}
	chunks := collect(t, c)
	if len(chunks) != 3 {
		t.Fatalf("got %d chunks, want 3", len(chunks))
	}
	if len(chunks[0]) != 4096 || len(chunks[1]) != 4096 || len(chunks[2]) != 10000-8192 {
		t.Fatalf("unexpected chunk sizes %d/%d/%d", len(chunks[0]), len(chunks[1]), len(chunks[2]))
	}
	if !bytes.Equal(bytes.Join(chunks, nil), data) {
		t.Fatal("fixed chunks do not reassemble input")
	}
}

func TestFixedChunkerExactMultiple(t *testing.T) {
	data := randomData(t, 8192, 8)
	c, err := NewFixed(bytes.NewReader(data), 4096)
	if err != nil {
		t.Fatal(err)
	}
	chunks := collect(t, c)
	if len(chunks) != 2 {
		t.Fatalf("got %d chunks, want 2", len(chunks))
	}
}

func TestFixedChunkerInvalidSize(t *testing.T) {
	if _, err := NewFixed(bytes.NewReader(nil), 0); err == nil {
		t.Fatal("NewFixed(0) expected error")
	}
}

func TestSplitFixed(t *testing.T) {
	data := randomData(t, 9000, 9)
	chunks, err := SplitFixed(data, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if len(chunks) != 3 {
		t.Fatalf("got %d chunks, want 3", len(chunks))
	}
	if !bytes.Equal(bytes.Join(chunks, nil), data) {
		t.Fatal("SplitFixed chunks do not reassemble input")
	}
	if _, err := SplitFixed(data, -1); err == nil {
		t.Fatal("SplitFixed(-1) expected error")
	}
}

func TestPolyHelpers(t *testing.T) {
	if got := polyDeg(0); got != -1 {
		t.Fatalf("polyDeg(0) = %d, want -1", got)
	}
	if got := polyDeg(1); got != 0 {
		t.Fatalf("polyDeg(1) = %d, want 0", got)
	}
	if got := polyDeg(defaultPolynomial); got != 53 {
		t.Fatalf("polyDeg(default) = %d, want 53", got)
	}
	// x^3 mod (x^2+1) = x * (x^2 mod (x^2+1)) = x*1 = x
	if got := polyMod(0b1000, 0b101); got != 0b10 {
		t.Fatalf("polyMod = %b, want 10", got)
	}
}

func TestBuildTablesRejectsTinyPolynomial(t *testing.T) {
	if _, err := buildTables(0b11); err == nil {
		t.Fatal("buildTables with degree-1 polynomial expected error")
	}
}

func BenchmarkRabinChunking(b *testing.B) {
	data := randomData(b, 8<<20, 42)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, err := NewRabin(bytes.NewReader(data), Options{})
		if err != nil {
			b.Fatal(err)
		}
		for {
			if _, err := c.Next(); errors.Is(err, io.EOF) {
				break
			} else if err != nil {
				b.Fatal(err)
			}
		}
	}
}

// TestRabinReassemblyProperty: for arbitrary inputs, the chunk stream
// must reassemble to the input exactly and respect the size bounds.
func TestRabinReassemblyProperty(t *testing.T) {
	f := func(data []byte) bool {
		chunks, err := Split(data, Options{})
		if err != nil {
			return false
		}
		var total int
		for i, c := range chunks {
			if len(c) > DefaultMaxSize {
				return false
			}
			if i < len(chunks)-1 && len(c) < DefaultMinSize {
				return false
			}
			total += len(c)
		}
		if total != len(data) {
			return false
		}
		return bytes.Equal(bytes.Join(chunks, nil), data)
	}
	cfg := &quick.Config{
		MaxCount: 30,
		Values: func(values []reflect.Value, rng *rand.Rand) {
			// Bias toward multi-chunk inputs; quick's default slices
			// are too small to exercise boundary logic.
			data := make([]byte, rng.Intn(200_000))
			rng.Read(data)
			values[0] = reflect.ValueOf(data)
		},
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
