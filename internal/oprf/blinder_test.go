package oprf

import (
	"bytes"
	"crypto/rsa"
	"math/big"
	"testing"
	"time"
)

// TestCRTMatchesFullExponent checks Garner recombination against the
// textbook full-width exponentiation for many FDH images, including the
// branch where m1 < m2.
func TestCRTMatchesFullExponent(t *testing.T) {
	k := serverKey(t)
	n := k.priv.N
	for i := 0; i < 64; i++ {
		x := fdh([]byte{byte(i)}, n)
		want := new(big.Int).Exp(x, k.priv.D, n)
		if got := k.exp(x); got.Cmp(want) != 0 {
			t.Fatalf("CRT result differs from full exponentiation for input %d", i)
		}
	}
}

// TestEvaluateFallbackWithoutPrecomputed exercises the full-width
// safety net used when the private key lacks CRT values.
func TestEvaluateFallbackWithoutPrecomputed(t *testing.T) {
	k := serverKey(t)
	stripped := &ServerKey{priv: &rsa.PrivateKey{
		PublicKey: k.priv.PublicKey,
		D:         k.priv.D,
		// Primes and Precomputed deliberately absent.
	}}
	p := k.PublicParams()
	blinded, u, err := Blind(p, []byte("fallback"), nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := stripped.Evaluate(blinded)
	if err != nil {
		t.Fatal(err)
	}
	key, err := Finalize(p, u, resp)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := k.Derive([]byte("fallback"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(key, direct) {
		t.Fatal("full-width fallback output differs from direct derivation")
	}
}

func TestBlinderProtocolRoundTrip(t *testing.T) {
	k := serverKey(t)
	p := k.PublicParams()
	bl, err := NewBlinder(p, 16, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer bl.Close()

	fp := []byte("pooled-fingerprint")
	blinded, u, err := bl.Blind(fp)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := k.Evaluate(blinded)
	if err != nil {
		t.Fatal(err)
	}
	key, err := Finalize(p, u, resp)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := k.Derive(fp)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(key, direct) {
		t.Fatal("pooled blinding output differs from direct derivation")
	}
}

// TestBlinderFactorsAreSingleUse: two pooled blindings of the same
// fingerprint must be unlinkable, i.e. produce distinct blinded
// elements.
func TestBlinderFactorsAreSingleUse(t *testing.T) {
	k := serverKey(t)
	bl, err := NewBlinder(k.PublicParams(), 16, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer bl.Close()
	b1, _, err := bl.Blind([]byte("same"))
	if err != nil {
		t.Fatal(err)
	}
	b2, _, err := bl.Blind([]byte("same"))
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(b1, b2) {
		t.Fatal("pooled blinder reused a blinding factor")
	}
}

// TestBlinderFallbackWhenDrained: Blind must keep working (inline
// generation) even when the pool is dry — here, after Close has stopped
// the refill worker and the buffer is exhausted.
func TestBlinderFallbackWhenDrained(t *testing.T) {
	k := serverKey(t)
	p := k.PublicParams()
	bl, err := NewBlinder(p, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	bl.Close()
	// Drain whatever the worker managed to queue before stopping, plus
	// a few more to force the inline path.
	for i := 0; i < 4; i++ {
		blinded, u, err := bl.Blind([]byte("drained"))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := k.Evaluate(blinded)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Finalize(p, u, resp); err != nil {
			t.Fatal(err)
		}
	}
}

func TestBlinderRejectsBadParams(t *testing.T) {
	if _, err := NewBlinder(PublicParams{}, 4, nil); err == nil {
		t.Fatal("expected error for invalid params")
	}
}

func TestBlinderCloseIdempotent(t *testing.T) {
	bl, err := NewBlinder(serverKey(t).PublicParams(), 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	bl.Close()
	bl.Close()
}

// BenchmarkKeygenPerChunk measures end-to-end MLE keygen cost for one
// 8 KiB chunk — pooled blind, CRT server evaluate, finalize — and
// reports it as MB/s of chunk data keyed. This is the paper's Exp#1
// bottleneck (12-14 MB/s on their testbed); the committed BENCH_oprf
// baseline ratchets it.
func BenchmarkKeygenPerChunk(b *testing.B) {
	k := serverKey(b)
	p := k.PublicParams()
	bl, err := NewBlinder(p, DefaultBlinderDepth, nil)
	if err != nil {
		b.Fatal(err)
	}
	defer bl.Close()
	for len(bl.factors) < cap(bl.factors) && len(bl.factors) < b.N {
		time.Sleep(time.Millisecond)
	}
	const chunkSize = 8 << 10
	fp := make([]byte, 32)
	b.SetBytes(chunkSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fp[0], fp[1], fp[2] = byte(i), byte(i>>8), byte(i>>16)
		blinded, u, err := bl.Blind(fp)
		if err != nil {
			b.Fatal(err)
		}
		resp, err := k.Evaluate(blinded)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := Finalize(p, u, resp); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBlinderBlind measures the pooled hot path: the refill
// goroutine keeps the pool warm while the timed loop consumes.
func BenchmarkBlinderBlind(b *testing.B) {
	k := serverKey(b)
	bl, err := NewBlinder(k.PublicParams(), DefaultBlinderDepth, nil)
	if err != nil {
		b.Fatal(err)
	}
	defer bl.Close()
	// Give the refill worker a head start so the benchmark measures the
	// pooled path rather than pool warm-up.
	for len(bl.factors) < cap(bl.factors) && len(bl.factors) < b.N {
		time.Sleep(time.Millisecond)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := bl.Blind([]byte("bench")); err != nil {
			b.Fatal(err)
		}
	}
}
